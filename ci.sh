#!/usr/bin/env bash
# Tier-1 verification, hermetic by construction: every step runs with
# --offline so a registry touch is a hard failure, not a silent fetch.
# See README "Hermetic builds" — the workspace has no external
# dependencies, so a clean checkout must pass this on a network-isolated
# machine with bit-identical test results across runs.
#
# Knobs (see crates/testkit):
#   QNN_TEST_SEED=<u64|0xhex>  base seed for all property suites
#   QNN_TEST_CASES=<n>         cases per property (default 64)
#
# Modes:
#   ci.sh                tier-1: offline release build + full test suite
#                        + clippy
#   ci.sh soak           NOT tier-1: the property suites only, in release,
#                        at QNN_TEST_CASES=1024 (overridable) — a
#                        long-running hunt for rare ring-buffer/stall/
#                        scheduler/shrink bugs (see README).
#   ci.sh release-tests  NOT tier-1: the `#[ignore]`d ImageNet/STL-scale
#                        full-network runs, in release (minutes, not
#                        tier-1 seconds).
#   ci.sh dse            NOT tier-1 (but fast): the folding/FIFO design-
#                        space batteries in release — the DSE frontier
#                        differential suite and the fold-model
#                        monotonicity properties — at the tier-1 case
#                        count (soak reruns both at 1024).
#   ci.sh net            NOT tier-1 (but fast): the loopback-TCP cluster
#                        suites in release — wire protocol properties,
#                        edge/router/autoscaler integration. Loopback
#                        sockets only; still offline.
#   ci.sh bench-smoke    NOT tier-1: every bench once in quick mode
#                        (QNN_BENCH_QUICK=1: 1 iteration, no warmup,
#                        speedup assertions off) — catches bench-harness
#                        rot without waiting for real measurement runs.
#   ci.sh matrix         NOT tier-1: the full test suite in release under
#                        every QNN_SCHED_REPLAY x QNN_MACRO_TICKS x
#                        QNN_SCHEDULER cell, so env-selected defaults get
#                        the same coverage the per-test parameterizations
#                        give the in-process flags.
#   ci.sh transformer    NOT tier-1 (but fast): the streaming-attention
#                        batteries in release — the encoder equivalence
#                        grid/property suite (stall injection, FIFO
#                        stress, both macro-tick modes) and the mixed
#                        CNN+transformer serving suite — at the tier-1
#                        case count (soak reruns the property half at
#                        1024).
#   ci.sh all            NOT tier-1: tier-1 followed by every fast
#                        auxiliary stage (dse, net, transformer,
#                        bench-smoke) — the pre-merge kitchen sink.
set -euo pipefail
cd "$(dirname "$0")"

run() {
  echo "==> $*"
  "$@"
}

if [[ "${1:-}" == "soak" ]]; then
  export QNN_TEST_CASES="${QNN_TEST_CASES:-1024}"
  echo "ci.sh soak: QNN_TEST_CASES=$QNN_TEST_CASES QNN_TEST_SEED=${QNN_TEST_SEED:-<default>}"
  run cargo test -q --release --offline -p qnn-tensor --test proptests
  run cargo test -q --release --offline -p qnn-quant --test proptests
  run cargo test -q --release --offline -p qnn-kernels --test proptests
  run cargo test -q --release --offline -p qnn-kernels --test stall_injection
  run cargo test -q --release --offline -p dfe-platform --test proptests
  run cargo test -q --release --offline -p dfe-platform --test span_conservation
  run cargo test -q --release --offline -p qnn --test property_streaming
  run cargo test -q --release --offline -p qnn --test scheduler_equivalence
  run cargo test -q --release --offline -p qnn --test conv_datapath_equivalence
  run cargo test -q --release --offline -p qnn --test macro_tick_equivalence
  run cargo test -q --release --offline -p qnn --test dse_frontier
  run cargo test -q --release --offline -p hw-model --test folding_monotonic
  run cargo test -q --release --offline -p qnn --test serve_multimodel
  run cargo test -q --release --offline -p qnn --test transformer_equivalence
  run cargo test -q --release --offline -p qnn-cluster --test wire_proptests
  echo "ci.sh soak: all green"
  exit 0
fi

if [[ "${1:-}" == "transformer" ]]; then
  export QNN_TEST_CASES="${QNN_TEST_CASES:-64}"
  echo "ci.sh transformer: QNN_TEST_CASES=$QNN_TEST_CASES QNN_TEST_SEED=${QNN_TEST_SEED:-<default>}"
  run cargo test -q --release --offline -p qnn --test transformer_equivalence
  run cargo test -q --release --offline -p qnn --test serve_transformer
  echo "ci.sh transformer: all green"
  exit 0
fi

if [[ "${1:-}" == "all" ]]; then
  "$0"
  for stage in dse net transformer bench-smoke; do
    "$0" "$stage"
  done
  echo "ci.sh all: all green"
  exit 0
fi

if [[ "${1:-}" == "dse" ]]; then
  export QNN_TEST_CASES="${QNN_TEST_CASES:-64}"
  echo "ci.sh dse: QNN_TEST_CASES=$QNN_TEST_CASES QNN_TEST_SEED=${QNN_TEST_SEED:-<default>}"
  run cargo test -q --release --offline -p hw-model --test folding_monotonic
  run cargo test -q --release --offline -p qnn --test dse_frontier
  echo "ci.sh dse: all green"
  exit 0
fi

if [[ "${1:-}" == "net" ]]; then
  run cargo test -q --release --offline -p qnn-cluster
  echo "ci.sh net: all green"
  exit 0
fi

if [[ "${1:-}" == "matrix" ]]; then
  # The in-process flags (CompileOptions / set_macro_ticks) are covered by
  # the parameterized suites; this sweeps the *env* defaults, which seed
  # every test that never mentions a scheduler or dispatch mode.
  for replay in 0 1; do
    for mt in 0 1; do
      for sched in dense ready; do
        echo "==[ matrix: QNN_SCHED_REPLAY=$replay QNN_MACRO_TICKS=$mt QNN_SCHEDULER=$sched ]=="
        QNN_SCHED_REPLAY="$replay" QNN_MACRO_TICKS="$mt" QNN_SCHEDULER="$sched" \
          run cargo test -q --release --offline
      done
    done
  done
  echo "ci.sh matrix: all green"
  exit 0
fi

if [[ "${1:-}" == "bench-smoke" ]]; then
  export QNN_BENCH_QUICK=1
  for bench in table3_networks fig5_runtime fig6_resources fig7_fig8_power_energy \
               ablations kernels_micro scheduler_overhead serve_throughput conv_datapath \
               macro_tick schedule_replay dse_frontier; do
    run cargo bench -q --offline -p qnn-bench --bench "$bench"
  done
  echo "ci.sh bench-smoke: all green"
  exit 0
fi

if [[ "${1:-}" == "release-tests" ]]; then
  run cargo test -q --release --offline -p qnn --test full_networks -- --ignored
  echo "ci.sh release-tests: all green"
  exit 0
fi

run cargo build --release --offline
run cargo test -q --offline
run cargo clippy --all-targets --offline -- -D warnings

echo "ci.sh: all green"
