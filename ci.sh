#!/usr/bin/env bash
# Tier-1 verification, hermetic by construction: every step runs with
# --offline so a registry touch is a hard failure, not a silent fetch.
# See README "Hermetic builds" — the workspace has no external
# dependencies, so a clean checkout must pass this on a network-isolated
# machine with bit-identical test results across runs.
#
# Knobs (see crates/testkit):
#   QNN_TEST_SEED=<u64|0xhex>  base seed for all property suites
#   QNN_TEST_CASES=<n>         cases per property (default 64)
set -euo pipefail
cd "$(dirname "$0")"

run() {
  echo "==> $*"
  "$@"
}

run cargo build --release --offline
run cargo test -q --offline
run cargo clippy --all-targets --offline -- -D warnings

echo "ci.sh: all green"
