//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **S3** stride speedup — §III-B1's "~13× speedup" for the stride-4
//!   first layer (halt-only-at-valid-positions vs dense halting);
//! * **S4** skip-connection overhead — ResNet-18 vs the skip-less plain
//!   variant (resources + cycles; §III-B5 "almost for free");
//! * **S5** BRAM shape-quantization waste — §III-B1a's ≥25%;
//! * **halt vs overlap** — the literal §III-B1 halt-the-input discipline
//!   vs the overlapped I/O the paper's measurements imply (simulated);
//! * **activation width sweep** — 1–4-bit activations: datapath resources
//!   and pipeline period;
//! * **rejected designs** — LMem-resident weights (§II-B) and the PCIe
//!   parameter-load amortization (§III-B1a);
//! * FIFO-capacity sensitivity of the streaming pipeline.

use qnn::compiler::{run_images, CompileOptions};
use qnn::hw::resources::{cache_alloc_kbits, cache_waste_fraction};
use qnn::hw::{estimate_network, CycleModel};
use qnn::nn::{models, Network};
use qnn_bench::render_table;
use qnn_testkit::{black_box, Bench};

fn stride_ablation() {
    // AlexNet conv1 halts only at the 55×55 valid stride-4 positions; a
    // dense design would halt at every one of the ~218×218.
    let alex = models::alexnet(1000);
    let qnn::nn::Stage::ConvInput { geom } = alex.stages[0] else { unreachable!() };
    let p = geom.padded_input();
    let valid = geom.output().pixels() as f64;
    let dense = ((p.h - geom.filter.k + 1) * (p.w - geom.filter.k + 1)) as f64;
    println!("\n== S3: stride-4 first layer halt reduction ==");
    println!("valid positions {valid}, dense positions {dense}, speedup {:.1}× (paper: ~13×)", dense / valid);
}

fn skip_ablation() {
    println!("\n== S4: skip connections (ResNet-18 vs plain variant) ==");
    let full = models::resnet18(1000);
    let plain = models::resnet18_plain(1000);
    let fu = estimate_network(&full, 3).total;
    let pu = estimate_network(&plain, 3).total;
    let fm = CycleModel::analyze(&full);
    let pm = CycleModel::analyze(&plain);
    let rows = vec![
        vec!["ResNet-18 (skips)".into(), fu.luts.to_string(), fu.ffs.to_string(), fu.bram_kbits.to_string(), fm.latency().to_string()],
        vec!["plain (no skips)".into(), pu.luts.to_string(), pu.ffs.to_string(), pu.bram_kbits.to_string(), pm.latency().to_string()],
        vec![
            "overhead".into(),
            format!("{:+.1}%", 100.0 * (fu.luts as f64 / pu.luts as f64 - 1.0)),
            format!("{:+.1}%", 100.0 * (fu.ffs as f64 / pu.ffs as f64 - 1.0)),
            format!("{:+.1}%", 100.0 * (fu.bram_kbits as f64 / pu.bram_kbits as f64 - 1.0)),
            format!("{:+.1}%", 100.0 * (fm.latency() as f64 / pm.latency() as f64 - 1.0)),
        ],
    ];
    println!("{}", render_table(&["variant", "LUT", "FF", "BRAM Kbit", "latency cycles"], &rows));
}

fn bram_ablation() {
    println!("\n== S5: BRAM shape-quantization waste (512-deep M20K) ==");
    let mut rows = Vec::new();
    for (label, width, entries) in [
        ("ResNet conv2_x cache (576×64)", 576u64, 64u64),
        ("ResNet conv5_x cache (4608×512)", 4608, 512),
        ("AlexNet conv2 cache (2400×256)", 2400, 256),
        ("AlexNet fc6 cache (9216×2048)", 9216, 2048),
        ("paper's worst case (K²I×384)", 576, 384),
    ] {
        rows.push(vec![
            label.to_string(),
            cache_alloc_kbits(width, entries).to_string(),
            format!("{:.0}%", 100.0 * cache_waste_fraction(width, entries)),
        ]);
    }
    println!("{}", render_table(&["weight cache", "allocated Kbit", "waste"], &rows));
}

fn halt_vs_overlap_ablation() {
    use qnn::dfe::{Graph, HostSink, HostSource, StreamSpec};
    use qnn::kernels::{ConvKernel, DotMode};
    use qnn::tensor::{BinaryFilters, ConvGeometry, FilterShape, Shape3, Tensor3};

    println!("\n== Halt-strict (§III-B1 literal) vs overlapped I/O (simulated) ==");
    let geom = ConvGeometry::new(Shape3::new(24, 24, 8), FilterShape::new(3, 8, 16), 1, 0);
    let weights: Vec<f32> =
        (0..geom.filter.total_weights()).map(|i| if i % 3 == 0 { 1.0 } else { -1.0 }).collect();
    let filters = BinaryFilters::from_float_rows(&weights, geom.filter.weights_per_filter());
    let input = Tensor3::from_fn(geom.input, |y, x, ch| ((y * 3 + x + ch) % 4) as u8);
    let data: Vec<i32> = input.as_slice().iter().map(|&q| i32::from(q)).collect();

    let run = |halted: bool| -> u64 {
        let kernel = if halted {
            ConvKernel::new_halted("conv", geom, filters.clone(), None, DotMode::Codes { bits: 2 })
        } else {
            ConvKernel::new("conv", geom, filters.clone(), None, DotMode::Codes { bits: 2 })
        };
        let mut g = Graph::new();
        let a = g.add_stream(StreamSpec::new("in", 2, 64));
        let b = g.add_stream(StreamSpec::new("out", 16, 64));
        g.add_kernel(Box::new(HostSource::new("src", data.clone())), &[], &[a]);
        g.add_kernel(Box::new(kernel), &[a], &[b]);
        let (sink, _h) = HostSink::new("dst", geom.output().len());
        g.add_kernel(Box::new(sink), &[b], &[]);
        g.run(100_000_000).expect("run").cycles
    };
    let overlapped = run(false);
    let halted = run(true);
    println!("  overlapped: {overlapped} cycles;  halted: {halted} cycles;  penalty {:.2}×",
        halted as f64 / overlapped as f64);
    println!("  (inputs {} + outputs {} vs max of the two)", geom.input.len(), geom.output().len());
}

fn act_bits_ablation() {
    println!("\n== Activation-width sweep (VGG-like @ 32×32) ==");
    let mut rows = Vec::new();
    for bits in [1u32, 2, 3, 4] {
        let spec = models::vgg_like(32, 10, bits);
        let u = estimate_network(&spec, 1).total;
        let period = CycleModel::analyze(&spec).period();
        rows.push(vec![
            format!("{bits}-bit"),
            u.luts.to_string(),
            u.ffs.to_string(),
            u.bram_kbits.to_string(),
            period.to_string(),
        ]);
    }
    println!("{}", render_table(&["activations", "LUT", "FF", "BRAM Kbit", "period cycles"], &rows));
    println!("(datapath LUT/FF grow ~linearly with planes; the period is width-independent,");
    println!(" so the paper's 2-bit choice buys accuracy at logic cost, not speed — §IV-B3)");
}

fn rejected_designs_ablation() {
    use qnn::hw::{lmem, pcie};
    println!("\n== Rejected designs: LMem weights and PCIe load (analytic) ==");
    for spec in [models::vgg_like(32, 10, 2), models::alexnet(1000), models::resnet18(1000)] {
        let slow = lmem::lmem_slowdown(&spec, 105.0, 3);
        let load = pcie::parameter_load_ms(&spec);
        let amort = pcie::load_amortization(&spec, 50_000, 10.0);
        println!(
            "  {:<16} LMem-weight slowdown {slow:>5.1}×;  PCIe param load {load:>6.1} ms \
             ({:.4}% of a 50k-image run)",
            spec.name,
            amort * 100.0
        );
    }
}

fn main() {
    stride_ablation();
    skip_ablation();
    bram_ablation();
    halt_vs_overlap_ablation();
    act_bits_ablation();
    rejected_designs_ablation();

    // Measured ablation: simulated cycles (and sim wall time) vs FIFO
    // capacity on a residual network. Backpressure tightness costs cycles
    // but never correctness (asserted in tests/streaming_equivalence.rs).
    let spec = models::test_net(16, 4, 2);
    let data = qnn::data::Dataset { name: "a", side: 16, classes: 4 };
    let net = Network::random(spec, 11);
    let images = data.images(1);
    println!("\n== FIFO capacity sensitivity (simulated cycles) ==");
    for cap in [8usize, 32, 128, 512] {
        let sim = run_images(
            &net,
            &images,
            &CompileOptions { fifo_capacity: cap, ..CompileOptions::default() },
        )
        .expect("run");
        println!("  capacity {cap:>4}: {} cycles", sim.cycles());
    }

    let bench = Bench::from_env().with_iters(2, 10);
    for cap in [8usize, 512] {
        bench.run(&format!("fifo_capacity/{cap}"), || {
            black_box(
                run_images(
                    &net,
                    &images,
                    &CompileOptions { fifo_capacity: cap, ..CompileOptions::default() },
                )
                .expect("run"),
            )
        });
    }
}
