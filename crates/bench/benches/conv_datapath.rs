//! Conv busy-path benchmark: the pack-on-arrival plane-ring + blocked
//! bit-GEMM datapath vs the scalar reference datapath.
//!
//! Both datapaths are bit-identical in outputs and `CycleReport`s
//! (asserted here per workload, and property-tested in
//! `tests/conv_datapath_equivalence.rs`), so the only thing that can
//! differ is the *busy-path* arithmetic: what a conv kernel computes
//! inside its input, latch and emit ticks. Two measurements:
//!
//! * **Busy path (asserted)** — for every conv layer of ResNet-18 @ 224²
//!   the bench replays exactly the per-tick work the kernel performs, at
//!   the layer's real position/element counts: per input element a ring
//!   write (`Vec<i32>` store vs [`PlaneRing::set`]), per output position
//!   a window latch (gather-and-repack vs `K` bit-span copies per plane)
//!   plus the accumulator work (one full window walk per emit tick vs one
//!   blocked bit-GEMM / SWAR i8 pass at latch). Scalar and packed passes
//!   run in interleaved pairs (as in `scheduler_overhead`) and the
//!   medians back the ISSUE's ≥1.3× acceptance assertion.
//! * **End-to-end (logged)** — full-network simulations under both
//!   datapaths. The sim spends most wall-clock in datapath-independent
//!   per-tick bookkeeping (scheduler dispatch, stream state, port I/O),
//!   which dilutes the busy-path win; the number is recorded in
//!   EXPERIMENTS.md for honesty but not asserted.
//!
//! Run via `cargo bench --bench conv_datapath` (tier-1 only builds it).
//! `QNN_BENCH_QUICK=1` (`./ci.sh bench-smoke`) runs every workload once
//! and skips the assertion.

use qnn::compiler::{run_images, CompileOptions, SimResult};
use qnn::data::Dataset;
use qnn::kernels::ConvDatapath;
use qnn::nn::{models, Network, NetworkSpec, Stage};
use qnn::quant::{conv_accumulate_all, conv_accumulate_all_i8, dot_i8, ActPlanes, PlaneRing};
use qnn::tensor::{BinaryFilters, ConvGeometry};
use qnn_bench::render_table;
use qnn_testkit::{black_box, Bench};
use std::time::Instant;

/// Iterations per datapath (after one untimed warmup/identity pair).
const ITERS: usize = 5;

// ---------------------------------------------------------------------------
// Busy-path replay: the asserted measurement.
// ---------------------------------------------------------------------------

/// One conv layer's busy-path workload: the kernel's ring, window and
/// filter state at the layer's exact geometry, plus the per-image tick
/// counts that weight it.
struct Layer {
    geom: ConvGeometry,
    i8_input: bool,
    filters: BinaryFilters,
    /// Ring slots (the depth-first window buffer capacity).
    cap: usize,
    /// Input elements streamed per image (= ring writes).
    in_elems: usize,
    /// Output positions latched per image.
    positions: usize,
    // Scalar-side state.
    scalar_ring: Vec<i32>,
    codes: Vec<u8>,
    window: ActPlanes,
    px_window: Vec<i8>,
    // Packed-side state.
    plane_ring: PlaneRing,
    acc: Vec<i32>,
}

impl Layer {
    fn new(geom: ConvGeometry, i8_input: bool, bits: u32, seed: u64) -> Self {
        let p = geom.padded_input();
        let (k, i, o) = (geom.filter.k, geom.filter.i, geom.filter.o);
        let n = k * k * i;
        let out = geom.output();
        let cap = i * (p.w * (k - 1) + k);
        let weights: Vec<f32> = (0..o * n)
            .map(|x| {
                if (x as u64).wrapping_mul(seed * 2 + 1) % 5 < 2 {
                    1.0
                } else {
                    -1.0
                }
            })
            .collect();
        let scalar_ring: Vec<i32> = (0..cap)
            .map(|s| {
                if i8_input {
                    ((s * 37 + 11) % 255) as i32 - 127
                } else {
                    ((s * 7 + 3) % (1 << bits)) as i32
                }
            })
            .collect();
        let mut plane_ring = PlaneRing::new(bits, cap);
        if !i8_input {
            for (s, &v) in scalar_ring.iter().enumerate() {
                plane_ring.set(s, v as u8);
            }
        }
        Self {
            i8_input,
            filters: BinaryFilters::from_float_rows(&weights, n),
            cap,
            in_elems: p.len(),
            positions: out.h * out.w,
            scalar_ring,
            codes: vec![0; n],
            window: ActPlanes::new(bits, n),
            px_window: vec![0; n],
            plane_ring,
            acc: vec![0; o],
            geom,
        }
    }

    /// One full image of scalar-datapath busy work: every ring write,
    /// every latch gather-and-repack, and one window walk per emit tick.
    fn scalar_pass(&mut self) -> i64 {
        let mut sink = 0i64;
        for e in 0..self.in_elems {
            self.scalar_ring[e % self.cap] = black_box((e % 4) as i32);
        }
        let (k, i) = (self.geom.filter.k, self.geom.filter.i);
        let (row_len, row_stride) = (k * i, self.geom.padded_input().w * i);
        for pos in 0..self.positions {
            let start = (pos * i * self.geom.stride) % self.cap;
            let mut at = 0;
            for r in 0..k {
                let base = start + r * row_stride;
                for j in 0..row_len {
                    let v = self.scalar_ring[(base + j) % self.cap];
                    if self.i8_input {
                        self.px_window[at] = v as i8;
                    } else {
                        self.codes[at] = v as u8;
                    }
                    at += 1;
                }
            }
            if self.i8_input {
                for o in 0..self.filters.num_filters() {
                    sink += i64::from(dot_i8(self.filters.filter(o), &self.px_window));
                }
            } else {
                self.window.pack(&self.codes);
                for o in 0..self.filters.num_filters() {
                    sink += i64::from(self.window.dot(self.filters.filter(o)));
                }
            }
        }
        sink
    }

    /// One full image of packed-datapath busy work: plane-ring writes,
    /// span-copy latches and one blocked accumulator pass per position
    /// (the i8 first layer keeps its scalar ring and gather, as in the
    /// kernel, and batches the dots with the SWAR pass).
    fn packed_pass(&mut self) -> i64 {
        let mut sink = 0i64;
        for e in 0..self.in_elems {
            if self.i8_input {
                self.scalar_ring[e % self.cap] = black_box((e % 4) as i32);
            } else {
                self.plane_ring.set(e % self.cap, black_box((e % 4) as u8));
            }
        }
        let (k, i) = (self.geom.filter.k, self.geom.filter.i);
        let (row_len, row_stride) = (k * i, self.geom.padded_input().w * i);
        for pos in 0..self.positions {
            let start = (pos * i * self.geom.stride) % self.cap;
            if self.i8_input {
                let mut at = 0;
                for r in 0..k {
                    let base = start + r * row_stride;
                    for j in 0..row_len {
                        self.px_window[at] = self.scalar_ring[(base + j) % self.cap] as i8;
                        at += 1;
                    }
                }
                conv_accumulate_all_i8(&self.filters, &self.px_window, &mut self.acc);
            } else {
                self.plane_ring
                    .extract_window(start, k, row_len, row_stride, &mut self.window);
                conv_accumulate_all(&self.filters, &self.window, &mut self.acc);
            }
            for &a in &self.acc {
                sink += i64::from(a);
            }
        }
        sink
    }
}

/// Every conv layer of the spec, in dataflow order.
fn conv_layers(spec: &NetworkSpec) -> Vec<Layer> {
    let bits = spec.act_bits;
    let mut layers = Vec::new();
    for (idx, stage) in spec.stages.iter().enumerate() {
        let seed = idx as u64 + 3;
        match stage {
            Stage::ConvInput { geom } => layers.push(Layer::new(*geom, true, bits, seed)),
            Stage::Conv { geom } => layers.push(Layer::new(*geom, false, bits, seed)),
            Stage::Residual { geom } => {
                layers.push(Layer::new(geom.conv1, false, bits, seed));
                layers.push(Layer::new(geom.conv2, false, bits, seed + 50));
                if let Some(ds) = geom.downsample {
                    layers.push(Layer::new(ds, false, bits, seed + 100));
                }
            }
            _ => {}
        }
    }
    layers
}

/// Replay the busy path of every conv layer under both datapaths and
/// return (scalar ms, packed ms, speedup) — medians over interleaved
/// pairs, or a single pair in quick mode.
fn measure_busy_path(spec: &NetworkSpec) -> (f64, f64, f64) {
    let mut layers = conv_layers(spec);
    // Warmup pair: also checks the two replays agree on the accumulators.
    let mut check = 0i64;
    for l in &mut layers {
        let s = l.scalar_pass();
        let p = l.packed_pass();
        assert_eq!(s, p, "busy-path replays diverged on {:?}", l.geom);
        check += s;
    }
    black_box(check);
    let iters = if Bench::quick_mode() { 1 } else { ITERS };
    let mut t_scalar = Vec::with_capacity(iters);
    let mut t_packed = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = Instant::now();
        for l in &mut layers {
            black_box(l.scalar_pass());
        }
        t_scalar.push(t.elapsed());
        let t = Instant::now();
        for l in &mut layers {
            black_box(l.packed_pass());
        }
        t_packed.push(t.elapsed());
    }
    t_scalar.sort();
    t_packed.sort();
    let s = t_scalar[iters / 2].as_secs_f64() * 1e3;
    let p = t_packed[iters / 2].as_secs_f64() * 1e3;
    (s, p, s / p)
}

// ---------------------------------------------------------------------------
// End-to-end simulations: the logged measurement.
// ---------------------------------------------------------------------------

fn run_datapath(
    net: &Network,
    images: &[qnn::tensor::Tensor3<i8>],
    conv_datapath: ConvDatapath,
) -> SimResult {
    let opts = CompileOptions {
        conv_datapath,
        // Single-image runs never reach steady state, but pin replay off
        // so the datapath A/B can't silently change regime.
        schedule_replay: false,
        ..CompileOptions::default()
    };
    run_images(net, images, &opts).expect("sim")
}

/// Time one workload end to end under both datapaths; returns (scalar ms,
/// packed ms, speedup) after asserting bit-identity of logits and reports.
/// Interleaved pairs and medians, as in `scheduler_overhead`.
fn measure_end_to_end(
    label: &str,
    spec: NetworkSpec,
    classes: usize,
    n_images: usize,
) -> (f64, f64, f64) {
    let side = spec.input.h;
    let data = Dataset {
        name: "bench",
        side,
        classes,
    };
    let net = Network::random(spec, 7);
    let images = data.images(n_images);

    let scalar = run_datapath(&net, &images, ConvDatapath::ScalarReference);
    let packed = run_datapath(&net, &images, ConvDatapath::Packed);
    assert_eq!(
        scalar.logits, packed.logits,
        "{label}: outputs must be bit-identical"
    );
    assert_eq!(
        scalar.reports, packed.reports,
        "{label}: reports must be bit-identical"
    );
    if Bench::quick_mode() {
        return (0.0, 0.0, 1.0);
    }

    let mut t_scalar = Vec::with_capacity(ITERS);
    let mut t_packed = Vec::with_capacity(ITERS);
    for _ in 0..ITERS {
        let t = Instant::now();
        black_box(run_datapath(&net, &images, ConvDatapath::ScalarReference));
        t_scalar.push(t.elapsed());
        let t = Instant::now();
        black_box(run_datapath(&net, &images, ConvDatapath::Packed));
        t_packed.push(t.elapsed());
    }
    t_scalar.sort();
    t_packed.sort();
    let s = t_scalar[ITERS / 2].as_secs_f64() * 1e3;
    let p = t_packed[ITERS / 2].as_secs_f64() * 1e3;
    (s, p, s / p)
}

fn main() {
    // Busy path: the ISSUE's target workload and assertion.
    let (bs, bp, busy_speedup) = measure_busy_path(&models::resnet18(1000));
    println!(
        "\n== Conv busy path, ResNet-18 @ 224² (per-image tick work, bit-identical) ==\n{}",
        render_table(
            &["measurement", "scalar ms", "packed ms", "speedup"],
            &[vec![
                "busy path (all conv layers)".to_string(),
                format!("{bs:.1}"),
                format!("{bp:.1}"),
                format!("{busy_speedup:.2}x"),
            ]]
        )
    );

    let workloads = [
        ("test_net/16 residual", models::test_net(16, 4, 2), 10, 2),
        ("vgg_like/32", models::vgg_like(32, 10, 2), 10, 2),
        ("vgg_like_deep/32", models::vgg_like_deep(32, 10, 2), 10, 1),
        ("resnet18/224", models::resnet18(1000), 1000, 1),
    ];
    let mut rows = Vec::new();
    for (label, spec, classes, n) in workloads {
        let (s, p, x) = measure_end_to_end(label, spec, classes, n);
        rows.push(vec![
            label.to_string(),
            format!("{s:.1}"),
            format!("{p:.1}"),
            format!("{x:.2}x"),
        ]);
    }
    println!(
        "\n== End-to-end full-network sims (wall clock, dominated by tick bookkeeping) ==\n{}",
        render_table(&["workload", "scalar ms", "packed ms", "speedup"], &rows)
    );
    if Bench::quick_mode() {
        println!("(quick mode: workloads executed once, speedup assertion skipped)");
        return;
    }
    assert!(
        busy_speedup >= 1.3,
        "packed conv datapath should be >=1.3x on the ResNet-18 @ 224\u{b2} busy path, \
         got {busy_speedup:.2}x"
    );
}
