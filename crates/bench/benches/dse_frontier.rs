//! DSE frontier bench: the picked ResNet-18 design point vs the uniform
//! default, end-to-end on the cycle simulator.
//!
//! Unlike the wall-clock benches, the figure of merit here is *simulated
//! device cycles* — a deterministic count, so the speedup assertion holds
//! in quick mode too (`QNN_BENCH_QUICK=1` only skips the extra frontier
//! context rows, not the headline comparison). The ≥1.15× floor backs the
//! PR's acceptance criterion: a balanced folding + FIFO assignment from
//! `dse::pick` must measurably beat uniform folding at ImageNet scale,
//! with bit-identical logits.

use qnn::compiler::dse::{explore, pick, DseConfig, ResourceBudget};
use qnn::compiler::{run_images, CompileOptions};
use qnn::data::Dataset;
use qnn::dfe::STRATIX_10_GX2800;
use qnn::hw::CycleModel;
use qnn::nn::{models, Network};
use qnn_bench::render_table;
use qnn_testkit::Bench;

fn main() {
    let spec = models::resnet18(1000);
    let budget = ResourceBudget::new(STRATIX_10_GX2800, 2);
    let point = pick(&spec, &budget).expect("resnet18 must fit two Stratix 10");
    let analytic = CycleModel::analyze_folded(&spec, &point.folding).latency();

    let net = Network::random(spec.clone(), 3);
    let images = Dataset {
        name: "bench",
        side: 224,
        classes: 1000,
    }
    .images(1);

    let uniform = run_images(&net, &images, &CompileOptions::default()).expect("uniform sim");
    let folded = run_images(&net, &images, &point.compile_options()).expect("folded sim");
    assert_eq!(
        uniform.logits, folded.logits,
        "the picked design point must be bit-identical to the uniform default"
    );

    let speedup = uniform.cycles() as f64 / folded.cycles() as f64;
    let rows = vec![
        vec![
            "uniform default".to_string(),
            format!("{}", uniform.cycles()),
            "-".to_string(),
            "1.00x".to_string(),
        ],
        vec![
            format!("picked (fifo={}, {} dev)", point.fifo_capacity, point.num_devices()),
            format!("{}", folded.cycles()),
            format!("{analytic}"),
            format!("{speedup:.2}x"),
        ],
    ];
    println!(
        "\n== DSE frontier: ResNet-18 @224, simulated device cycles ==\n{}",
        render_table(&["config", "sim cycles", "analytic", "speedup"], &rows)
    );

    if !Bench::quick_mode() {
        // Context: the Pareto frontier the pick came from.
        let frontier = explore(&spec, &budget, &DseConfig::default());
        let rows: Vec<Vec<String>> = frontier
            .top(5)
            .iter()
            .map(|p| {
                vec![
                    format!("{}", p.est_latency),
                    format!("{}", p.est_period),
                    format!("{}", p.fifo_capacity),
                    format!("{}", p.num_devices()),
                    format!("{:.2}", p.utilization),
                ]
            })
            .collect();
        println!(
            "== Pareto frontier (fastest 5) ==\n{}",
            render_table(
                &["est latency", "est period", "fifo", "devices", "util"],
                &rows
            )
        );
    }

    assert!(
        speedup >= 1.15,
        "picked ResNet-18 design point should be >=1.15x over the uniform \
         default in simulated cycles, got {speedup:.2}x \
         ({} vs {} cycles, plan {:?})",
        folded.cycles(),
        uniform.cycles(),
        point.folding
    );
}
