//! Figure 5 — runtime comparison, DFE vs GPUs, across input sizes.
//!
//! The timed quantity is the cycle-accurate DFE simulation of the VGG-like
//! network per input size (the paper's measured quantity); the printed
//! table adds the analytic DFE numbers for the 224×224 networks and the
//! GPU baseline model columns.

use qnn::data::CIFAR10;
use qnn::nn::models;
use qnn_bench::{comparison_row, render_table, simulate_one, sweep_specs};
use qnn_testkit::Bench;

fn fig5_table() {
    let mut rows = Vec::new();
    for (label, spec) in sweep_specs() {
        let row = comparison_row(&label, &spec);
        rows.push(vec![
            row.label.clone(),
            format!("{:.3}", row.dfe_ms),
            format!("{:.3}", row.p100_ms),
            format!("{:.3}", row.gtx_ms),
        ]);
    }
    println!(
        "\n== Figure 5 (analytic latency + GPU baseline model) ==\n{}",
        render_table(&["workload", "DFE ms", "P100 ms", "GTX1080 ms"], &rows)
    );
}

fn main() {
    fig5_table();
    // Cycle-accurate simulation per image; 32² in the timing loop, larger
    // sizes once (printed) to keep bench wall-time sane.
    let bench = Bench::from_env().with_iters(2, 10);
    bench.run("fig5_dfe_simulation/vgg_like/32", || {
        simulate_one(&models::vgg_like(32, 10, 2), &CIFAR10, 3)
    });
    for side in [96usize, 144] {
        let data = qnn::data::Dataset { name: "sweep", side, classes: 10 };
        let (cycles, ms) = simulate_one(&models::vgg_like(side, 10, 2), &data, 3);
        println!("[sim] VGG-like @ {side}×{side}: {cycles} cycles = {ms:.3} ms/image");
    }
}
