//! Figure 5 — runtime comparison, DFE vs GPUs, across input sizes.
//!
//! The timed quantity is the cycle-accurate DFE simulation of the VGG-like
//! network per input size (the paper's measured quantity); the printed
//! table adds the analytic DFE numbers for the 224×224 networks and the
//! GPU baseline model columns.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qnn::data::CIFAR10;
use qnn::nn::models;
use qnn_bench::{comparison_row, render_table, simulate_one, sweep_specs};

fn fig5_table() {
    let mut rows = Vec::new();
    for (label, spec) in sweep_specs() {
        let row = comparison_row(&label, &spec);
        rows.push(vec![
            row.label.clone(),
            format!("{:.3}", row.dfe_ms),
            format!("{:.3}", row.p100_ms),
            format!("{:.3}", row.gtx_ms),
        ]);
    }
    println!(
        "\n== Figure 5 (analytic latency + GPU baseline model) ==\n{}",
        render_table(&["workload", "DFE ms", "P100 ms", "GTX1080 ms"], &rows)
    );
}

fn bench_fig5(c: &mut Criterion) {
    fig5_table();
    let mut g = c.benchmark_group("fig5_dfe_simulation");
    g.sample_size(10);
    // Cycle-accurate simulation per image; 32² in the timing loop, larger
    // sizes once (printed) to keep bench wall-time sane.
    g.bench_with_input(BenchmarkId::new("vgg_like", 32), &32usize, |b, _| {
        b.iter(|| simulate_one(&models::vgg_like(32, 10, 2), &CIFAR10, 3))
    });
    g.finish();
    for side in [96usize, 144] {
        let data = qnn::data::Dataset { name: "sweep", side, classes: 10 };
        let (cycles, ms) = simulate_one(&models::vgg_like(side, 10, 2), &data, 3);
        println!("[sim] VGG-like @ {side}×{side}: {cycles} cycles = {ms:.3} ms/image");
    }
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
