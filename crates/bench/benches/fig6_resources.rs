//! Figure 6 — resource utilization vs input size (change from the 32×32
//! baseline). The timed quantity is the resource estimator + partitioner;
//! the printed table is the figure's data series.

use qnn::hw::estimate_network;
use qnn::nn::models;
use qnn_bench::{place, render_table};
use qnn_testkit::{black_box, Bench};

fn fig6_table() {
    let base = estimate_network(&models::vgg_like(32, 10, 2), 1).total;
    let mut rows = Vec::new();
    for side in [32usize, 64, 96, 144, 224] {
        let spec = models::vgg_like(side, 10, 2);
        let u = estimate_network(&spec, 1).total;
        let dfes = place(&spec).num_dfes();
        let pct = |a: u64, b: u64| 100.0 * (a as f64 / b as f64 - 1.0);
        rows.push(vec![
            format!("{side}×{side}"),
            u.luts.to_string(),
            format!("{:+.1}%", pct(u.luts, base.luts)),
            u.ffs.to_string(),
            format!("{:+.1}%", pct(u.ffs, base.ffs)),
            u.bram_kbits.to_string(),
            format!("{:+.1}%", pct(u.bram_kbits, base.bram_kbits)),
            dfes.to_string(),
        ]);
    }
    println!(
        "\n== Figure 6 (resources vs input size) ==\n{}",
        render_table(&["input", "LUT", "ΔLUT", "FF", "ΔFF", "BRAM", "ΔBRAM", "DFEs"], &rows)
    );
}

fn main() {
    fig6_table();
    Bench::from_env().run("estimate_and_place_vgg_sweep", || {
        for side in [32usize, 64, 96, 144, 224] {
            let spec = models::vgg_like(side, 10, 2);
            black_box(estimate_network(&spec, 1).total);
            black_box(place(&spec).num_dfes());
        }
    });
}
