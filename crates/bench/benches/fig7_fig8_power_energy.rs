//! Figures 7 & 8 — power and energy comparisons across the workload sweep.

use qnn_bench::{comparison_row, render_table, sweep_specs};
use qnn_testkit::{black_box, Bench};

fn print_tables() {
    let mut p_rows = Vec::new();
    let mut e_rows = Vec::new();
    for (label, spec) in sweep_specs() {
        let r = comparison_row(&label, &spec);
        p_rows.push(vec![
            r.label.clone(),
            format!("{:.1}", r.dfe_w),
            format!("{:.0}", r.p100_w),
            format!("{:.0}", r.gtx_w),
            format!("{:.1}×", r.p100_w / r.dfe_w),
        ]);
        e_rows.push(vec![
            r.label.clone(),
            format!("{:.4}", r.dfe_j()),
            format!("{:.4}", r.p100_j()),
            format!("{:.4}", r.gtx_j()),
            format!("{:.1}×", r.p100_j() / r.dfe_j()),
        ]);
    }
    println!(
        "\n== Figure 7 (power, W) ==\n{}",
        render_table(&["workload", "DFE", "P100", "GTX1080", "P100/DFE"], &p_rows)
    );
    println!(
        "== Figure 8 (energy per image, J) ==\n{}",
        render_table(&["workload", "DFE", "P100", "GTX1080", "P100/DFE"], &e_rows)
    );
}

fn main() {
    print_tables();
    Bench::from_env().run("power_energy_sweep", || {
        for (label, spec) in sweep_specs() {
            black_box(comparison_row(&label, &spec));
        }
    });
}
