//! Microbenchmarks of the QNN arithmetic primitives — the per-cycle work
//! the simulator performs for each datapath operation.

use qnn::quant::{
    conv_accumulate_all, conv_accumulate_all_reference, dot_codes, dot_i8, ActPlanes, BnParams,
    PlaneRing, QuantSpec, ThresholdUnit,
};
use qnn::tensor::{BinaryFilters, BitVec};
use qnn_testkit::{black_box, Bench};

fn mk_bits(n: usize, seed: u64) -> BitVec {
    BitVec::from_bools(&(0..n).map(|i| (i as u64 * seed) % 3 == 0).collect::<Vec<_>>())
}

fn bench_xnor_dot(bench: &Bench) {
    // Filter sizes of the paper's networks: ResNet conv1, conv2_x, conv5_x,
    // AlexNet fc6.
    for n in [147usize, 576, 4608, 9216] {
        let w = mk_bits(n, 3);
        let x = mk_bits(n, 7);
        bench.run(&format!("xnor_popcount_dot/{n}"), || {
            qnn::quant::dot_pm1(black_box(&w), black_box(&x))
        });
    }
}

fn bench_plane_dot_vs_code_dot(bench: &Bench) {
    for n in [576usize, 2304, 4608] {
        let w = mk_bits(n, 5);
        let codes: Vec<u8> = (0..n).map(|i| (i % 4) as u8).collect();
        let planes = ActPlanes::from_codes(2, &codes);
        bench.run(&format!("2bit_window_dot/bit_planes/{n}"), || {
            black_box(&planes).dot(black_box(&w))
        });
        bench.run(&format!("2bit_window_dot/naive_codes/{n}"), || {
            dot_codes(black_box(&w), black_box(&codes))
        });
    }
}

fn bench_plane_packing(bench: &Bench) {
    let n = 4608;
    let codes: Vec<u8> = (0..n).map(|i| ((i * 7) % 4) as u8).collect();
    let mut planes = ActPlanes::new(2, n);
    bench.run("pack_window_4608x2bit", || planes.pack(black_box(&codes)));
}

fn bench_first_layer_dot(bench: &Bench) {
    let n = 363; // AlexNet conv1: 11·11·3
    let w = mk_bits(n, 9);
    let px: Vec<i8> = (0..n).map(|i| ((i * 37) % 255) as i8).collect();
    bench.run("i8_dot_363", || dot_i8(black_box(&w), black_box(&px)));
}

fn bench_threshold_activate(bench: &Bench) {
    for bits in [1u32, 2, 4, 8] {
        let spec = QuantSpec::new(bits, 0.0, (1u32 << bits) as f32);
        let unit = ThresholdUnit::from_batchnorm(&BnParams::new(1.2, 10.0, 0.01, 1.0), &spec);
        let mut a = -500i32;
        bench.run(&format!("threshold_activate/{bits}"), || {
            a = (a + 7) % 1000;
            unit.activate(black_box(a))
        });
    }
}

fn bench_window_latch(bench: &Bench) {
    // ResNet conv2_x shape: K=3, I=64, W=56 → the latch moves 3 rows of
    // 192 codes out of a ring of I·(W·(K−1)+K) slots. Scalar reference:
    // gather every code and repack the planes; packed: 3 bit-span copies
    // per plane (what `ConvKernel` does under each datapath).
    let (k, i, w) = (3usize, 64usize, 56usize);
    let cap = i * (w * (k - 1) + k);
    let (row_len, row_stride, n) = (k * i, w * i, k * k * i);
    let scalar_ring: Vec<i32> = (0..cap).map(|s| ((s * 7 + 3) % 4) as i32).collect();
    let mut ring = PlaneRing::new(2, cap);
    for (s, &v) in scalar_ring.iter().enumerate() {
        ring.set(s, v as u8);
    }
    let start = 17 * i;
    let mut window = ActPlanes::new(2, n);
    bench.run("window_latch/packed_spans_576x2bit", || {
        ring.extract_window(black_box(start), k, row_len, row_stride, &mut window)
    });
    let mut codes = vec![0u8; n];
    let mut planes = ActPlanes::new(2, n);
    bench.run("window_latch/scalar_gather_pack_576x2bit", || {
        let mut at = 0;
        for r in 0..k {
            let base = black_box(start) + r * row_stride;
            for j in 0..row_len {
                codes[at] = scalar_ring[(base + j) % cap] as u8;
                at += 1;
            }
        }
        planes.pack(&codes)
    });
}

fn bench_accumulate_all(bench: &Bench) {
    // conv2_x: 64 filters of 576 bits — one latched position's emit loop.
    let (o, n) = (64usize, 576usize);
    let weights: Vec<f32> = (0..o * n)
        .map(|x| if (x * 11 + 5) % 3 == 0 { 1.0 } else { -1.0 })
        .collect();
    let filters = BinaryFilters::from_float_rows(&weights, n);
    let codes: Vec<u8> = (0..n).map(|x| ((x * 13 + 1) % 4) as u8).collect();
    let window = ActPlanes::from_codes(2, &codes);
    let mut acc = vec![0i32; o];
    bench.run("accumulate_all/blocked_gemm_64x576", || {
        conv_accumulate_all(black_box(&filters), black_box(&window), &mut acc)
    });
    bench.run("accumulate_all/per_filter_dot_64x576", || {
        conv_accumulate_all_reference(black_box(&filters), black_box(&window), &mut acc)
    });
}

fn main() {
    let bench = Bench::from_env();
    bench_xnor_dot(&bench);
    bench_plane_dot_vs_code_dot(&bench);
    bench_plane_packing(&bench);
    bench_first_layer_dot(&bench);
    bench_threshold_activate(&bench);
    bench_window_latch(&bench);
    bench_accumulate_all(&bench);
}
