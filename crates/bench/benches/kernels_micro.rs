//! Microbenchmarks of the QNN arithmetic primitives — the per-cycle work
//! the simulator performs for each datapath operation.

use qnn::quant::{dot_codes, dot_i8, ActPlanes, BnParams, QuantSpec, ThresholdUnit};
use qnn::tensor::BitVec;
use qnn_testkit::{black_box, Bench};

fn mk_bits(n: usize, seed: u64) -> BitVec {
    BitVec::from_bools(&(0..n).map(|i| (i as u64 * seed) % 3 == 0).collect::<Vec<_>>())
}

fn bench_xnor_dot(bench: &Bench) {
    // Filter sizes of the paper's networks: ResNet conv1, conv2_x, conv5_x,
    // AlexNet fc6.
    for n in [147usize, 576, 4608, 9216] {
        let w = mk_bits(n, 3);
        let x = mk_bits(n, 7);
        bench.run(&format!("xnor_popcount_dot/{n}"), || {
            qnn::quant::dot_pm1(black_box(&w), black_box(&x))
        });
    }
}

fn bench_plane_dot_vs_code_dot(bench: &Bench) {
    for n in [576usize, 2304, 4608] {
        let w = mk_bits(n, 5);
        let codes: Vec<u8> = (0..n).map(|i| (i % 4) as u8).collect();
        let planes = ActPlanes::from_codes(2, &codes);
        bench.run(&format!("2bit_window_dot/bit_planes/{n}"), || {
            black_box(&planes).dot(black_box(&w))
        });
        bench.run(&format!("2bit_window_dot/naive_codes/{n}"), || {
            dot_codes(black_box(&w), black_box(&codes))
        });
    }
}

fn bench_plane_packing(bench: &Bench) {
    let n = 4608;
    let codes: Vec<u8> = (0..n).map(|i| ((i * 7) % 4) as u8).collect();
    let mut planes = ActPlanes::new(2, n);
    bench.run("pack_window_4608x2bit", || planes.pack(black_box(&codes)));
}

fn bench_first_layer_dot(bench: &Bench) {
    let n = 363; // AlexNet conv1: 11·11·3
    let w = mk_bits(n, 9);
    let px: Vec<i8> = (0..n).map(|i| ((i * 37) % 255) as i8).collect();
    bench.run("i8_dot_363", || dot_i8(black_box(&w), black_box(&px)));
}

fn bench_threshold_activate(bench: &Bench) {
    for bits in [1u32, 2, 4, 8] {
        let spec = QuantSpec::new(bits, 0.0, (1u32 << bits) as f32);
        let unit = ThresholdUnit::from_batchnorm(&BnParams::new(1.2, 10.0, 0.01, 1.0), &spec);
        let mut a = -500i32;
        bench.run(&format!("threshold_activate/{bits}"), || {
            a = (a + 7) % 1000;
            unit.activate(black_box(a))
        });
    }
}

fn main() {
    let bench = Bench::from_env();
    bench_xnor_dot(&bench);
    bench_plane_dot_vs_code_dot(&bench);
    bench_plane_packing(&bench);
    bench_first_layer_dot(&bench);
    bench_threshold_activate(&bench);
}
