//! Microbenchmarks of the QNN arithmetic primitives — the per-cycle work
//! the simulator performs for each datapath operation.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use qnn::quant::{dot_codes, dot_i8, ActPlanes, BnParams, QuantSpec, ThresholdUnit};
use qnn::tensor::BitVec;

fn mk_bits(n: usize, seed: u64) -> BitVec {
    BitVec::from_bools(&(0..n).map(|i| (i as u64 * seed) % 3 == 0).collect::<Vec<_>>())
}

fn bench_xnor_dot(c: &mut Criterion) {
    let mut g = c.benchmark_group("xnor_popcount_dot");
    // Filter sizes of the paper's networks: ResNet conv1, conv2_x, conv5_x,
    // AlexNet fc6.
    for n in [147usize, 576, 4608, 9216] {
        let w = mk_bits(n, 3);
        let x = mk_bits(n, 7);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| qnn::quant::dot_pm1(black_box(&w), black_box(&x)))
        });
    }
    g.finish();
}

fn bench_plane_dot_vs_code_dot(c: &mut Criterion) {
    let mut g = c.benchmark_group("2bit_window_dot");
    for n in [576usize, 2304, 4608] {
        let w = mk_bits(n, 5);
        let codes: Vec<u8> = (0..n).map(|i| (i % 4) as u8).collect();
        let planes = ActPlanes::from_codes(2, &codes);
        g.bench_with_input(BenchmarkId::new("bit_planes", n), &n, |b, _| {
            b.iter(|| black_box(&planes).dot(black_box(&w)))
        });
        g.bench_with_input(BenchmarkId::new("naive_codes", n), &n, |b, _| {
            b.iter(|| dot_codes(black_box(&w), black_box(&codes)))
        });
    }
    g.finish();
}

fn bench_plane_packing(c: &mut Criterion) {
    let n = 4608;
    let codes: Vec<u8> = (0..n).map(|i| ((i * 7) % 4) as u8).collect();
    let mut planes = ActPlanes::new(2, n);
    c.bench_function("pack_window_4608x2bit", |b| {
        b.iter(|| planes.pack(black_box(&codes)))
    });
}

fn bench_first_layer_dot(c: &mut Criterion) {
    let n = 363; // AlexNet conv1: 11·11·3
    let w = mk_bits(n, 9);
    let px: Vec<i8> = (0..n).map(|i| ((i * 37) % 255) as i8).collect();
    c.bench_function("i8_dot_363", |b| b.iter(|| dot_i8(black_box(&w), black_box(&px))));
}

fn bench_threshold_activate(c: &mut Criterion) {
    let mut g = c.benchmark_group("threshold_activate");
    for bits in [1u32, 2, 4, 8] {
        let spec = QuantSpec::new(bits, 0.0, (1u32 << bits) as f32);
        let unit = ThresholdUnit::from_batchnorm(&BnParams::new(1.2, 10.0, 0.01, 1.0), &spec);
        g.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |b, _| {
            let mut a = -500i32;
            b.iter(|| {
                a = (a + 7) % 1000;
                unit.activate(black_box(a))
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_xnor_dot,
    bench_plane_dot_vs_code_dot,
    bench_plane_packing,
    bench_first_layer_dot,
    bench_threshold_activate
);
criterion_main!(benches);
