//! Macro-tick micro-benchmark: per-element ready-list stepping vs span
//! dispatch on full-network simulations.
//!
//! Both settings are bit-identical in outputs and `CycleReport`s
//! (asserted here per workload, and property-tested in
//! `tests/macro_tick_equivalence.rs`), so the *entire* difference is
//! dispatch overhead: per-element stepping pays a virtual-dispatch round
//! trip (wake, tick, staged commit) per kernel per cycle, while a burst
//! fast-forwards the whole feasible span — min of input occupancy and
//! output headroom across every awake kernel — in one `run_span` call
//! per kernel and credits the cycles arithmetically. Steady-state
//! pipelines with long uniform stretches (exactly the regime a streaming
//! conv net lives in) amortize best.
//!
//! Run via `cargo bench --bench macro_tick` (tier-1 only builds it). The
//! ≥1.5× assertion below backs the PR's acceptance criterion: ResNet-18
//! at 224² end-to-end against the PR 4 ready-list per-element baseline.

use qnn::compiler::{run_images, CompileOptions, SimResult};
use qnn::data::Dataset;
use qnn::dfe::SchedulerMode;
use qnn::nn::{models, Network, NetworkSpec};
use qnn_bench::render_table;
use qnn_testkit::{black_box, Bench};
use std::time::Instant;

fn run_mode(
    net: &Network,
    images: &[qnn::tensor::Tensor3<i8>],
    macro_ticks: bool,
) -> SimResult {
    let opts = CompileOptions {
        scheduler: SchedulerMode::ReadyList,
        macro_ticks,
        // Keep the A/B about span dispatch alone: steady-state replay is
        // benchmarked separately (`schedule_replay` bench).
        schedule_replay: false,
        ..CompileOptions::default()
    };
    run_images(net, images, &opts).expect("sim")
}

/// Iterations per dispatch mode (after one untimed warmup pair).
const ITERS: usize = 5;

/// Time one workload under both dispatch modes; returns (element ms,
/// span ms, speedup) after asserting bit-identity of logits and reports.
///
/// Interleaved element/span pairs with per-side medians, for the same
/// reason as `scheduler_overhead`: ambient machine drift hits both sides
/// equally, and the median absorbs a noisy pair.
fn measure(label: &str, spec: NetworkSpec, classes: usize, n_images: usize) -> (f64, f64, f64) {
    let side = spec.input.h;
    let data = Dataset {
        name: "bench",
        side,
        classes,
    };
    let net = Network::random(spec, 3);
    let images = data.images(n_images);

    let element = run_mode(&net, &images, false);
    let span = run_mode(&net, &images, true);
    assert_eq!(
        element.logits, span.logits,
        "{label}: outputs must be bit-identical"
    );
    assert_eq!(
        element.reports, span.reports,
        "{label}: reports must be bit-identical"
    );
    if Bench::quick_mode() {
        return (0.0, 0.0, 1.0);
    }

    let mut t_element = Vec::with_capacity(ITERS);
    let mut t_span = Vec::with_capacity(ITERS);
    for _ in 0..ITERS {
        let t = Instant::now();
        black_box(run_mode(&net, &images, false));
        t_element.push(t.elapsed());
        let t = Instant::now();
        black_box(run_mode(&net, &images, true));
        t_span.push(t.elapsed());
    }
    t_element.sort();
    t_span.sort();
    let e = t_element[ITERS / 2].as_secs_f64() * 1e3;
    let s = t_span[ITERS / 2].as_secs_f64() * 1e3;
    (e, s, e / s)
}

fn main() {
    // Small nets burst too — but short pipes hit stream-capacity caps
    // sooner, so spans are shorter and the win smaller. ImageNet scale is
    // the target: conv1 alone emits 112×112×64 elements through a
    // 67-kernel pipeline, in stretches uniform enough for thousand-cycle
    // bursts.
    let workloads = [
        ("test_net/16 residual", models::test_net(16, 4, 2), 10, 2),
        ("vgg_like/32", models::vgg_like(32, 10, 2), 10, 2),
        ("vgg_like_deep/32", models::vgg_like_deep(32, 10, 2), 10, 1),
        ("resnet18/224", models::resnet18(1000), 1000, 1),
    ];
    let mut rows = Vec::new();
    let mut imagenet_speedup = 0.0;
    for (label, spec, classes, n) in workloads {
        let (e, s, x) = measure(label, spec, classes, n);
        if label.starts_with("resnet18") {
            imagenet_speedup = x;
        }
        rows.push(vec![
            label.to_string(),
            format!("{e:.1}"),
            format!("{s:.1}"),
            format!("{x:.2}x"),
        ]);
    }
    println!(
        "\n== Macro-tick dispatch (wall-clock per batch, bit-identical results) ==\n{}",
        render_table(&["workload", "element ms", "span ms", "speedup"], &rows)
    );
    if Bench::quick_mode() {
        println!("(quick mode: workloads executed once, speedup assertion skipped)");
        return;
    }
    assert!(
        imagenet_speedup >= 1.5,
        "macro-tick dispatch should be >=1.5x on an ImageNet-scale full-network sim, \
         got {imagenet_speedup:.2}x"
    );
}
