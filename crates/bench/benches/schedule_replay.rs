//! Schedule-replay micro-benchmark: span dispatch with live burst
//! planning vs replaying the recorded steady-state tape, on multi-image
//! full-network simulations.
//!
//! Both settings are bit-identical in outputs and `CycleReport`s
//! (asserted here per workload, and property-tested in
//! `tests/schedule_replay.rs`), so the *entire* difference is planning
//! overhead (compilation is hoisted out of the timed region — it is
//! bit-identical work in both modes): macro-ticks-only re-derives every
//! burst — span hints across all awake kernels, feasibility minima,
//! ripen bookkeeping — once per
//! dispatch, while replay walks the recorded tape and re-issues each
//! recorded span after O(participants) guard checks. The win scales with
//! stream length: the ramp and the recorded period are paid once, every
//! following image is tape-driven.
//!
//! Run via `cargo bench --bench schedule_replay` (tier-1 only builds it).
//! The ≥1.3× assertion below backs the PR's acceptance criterion:
//! ResNet-18 at 224² end-to-end on a 96-image stream against the
//! macro-ticks-only baseline.

use qnn::compiler::{compile, CompileOptions, CompiledNetwork, SimResult};
use qnn::data::Dataset;
use qnn::dfe::SchedulerMode;
use qnn::nn::{models, Network, NetworkSpec};
use qnn_bench::render_table;
use qnn_testkit::{black_box, Bench};
use std::time::Instant;

/// Compile and run one stream, returning the result and the *run-only*
/// wall-clock. Compilation (lowering, weight packing, source preload) is
/// bit-identical work in both modes and a one-time per-deployment cost in
/// the paper's setting, so timing it would only dilute the scheduler
/// difference being measured.
fn run_mode(
    net: &Network,
    images: &[qnn::tensor::Tensor3<i8>],
    schedule_replay: bool,
) -> (SimResult, f64) {
    let opts = CompileOptions {
        scheduler: SchedulerMode::ReadyList,
        macro_ticks: true,
        schedule_replay,
        ..CompileOptions::default()
    };
    let CompiledNetwork {
        mut graphs,
        sink,
        classes,
        ..
    } = compile(net, images, &opts);
    assert_eq!(graphs.len(), 1, "bench nets are single-device");
    let t = Instant::now();
    let report = graphs[0].run(u64::MAX / 2).expect("sim");
    let ms = t.elapsed().as_secs_f64() * 1e3;
    let flat = sink.take();
    assert_eq!(flat.len(), classes * images.len(), "sink under-filled");
    let logits = flat.chunks_exact(classes).map(<[i32]>::to_vec).collect();
    (
        SimResult {
            logits,
            reports: vec![report],
        },
        ms,
    )
}

/// Iterations per mode (after one untimed warmup pair). Multi-image
/// streams make each iteration long; 3 medians suffice at this length.
const ITERS: usize = 3;

/// Time one workload with replay off and on; returns (planned ms,
/// replayed ms, speedup) after asserting bit-identity of logits and
/// reports and that replay actually engaged (a bench of a feature that
/// silently fell back would measure nothing).
///
/// Interleaved pairs with per-side medians, as in `macro_tick`: ambient
/// machine drift hits both sides equally.
fn measure(label: &str, spec: NetworkSpec, classes: usize, n_images: usize) -> (f64, f64, f64) {
    let side = spec.input.h;
    let data = Dataset {
        name: "bench",
        side,
        classes,
    };
    let net = Network::random(spec, 3);
    // Quick mode only checks bit-identity and that replay engages; a
    // short stream covering ramp + record + replayed frames + tail is
    // enough without paying the full timed stream length. 16 frames is
    // the floor: VGG-like needs one extra settle-and-re-record round
    // before its tape holds.
    let n_images = if Bench::quick_mode() {
        n_images.min(16)
    } else {
        n_images
    };
    let images = data.images(n_images);

    let (planned, _) = run_mode(&net, &images, false);
    let (replayed, _) = run_mode(&net, &images, true);
    assert_eq!(
        planned.logits, replayed.logits,
        "{label}: outputs must be bit-identical"
    );
    assert_eq!(
        planned.reports, replayed.reports,
        "{label}: reports must be bit-identical"
    );
    let diag = replayed.reports[0].replay;
    assert!(
        diag.images_replayed >= 1,
        "{label}: replay never engaged ({diag:?}) — the timing below would be a lie"
    );
    if Bench::quick_mode() {
        return (0.0, 0.0, 1.0);
    }

    let mut t_planned = Vec::with_capacity(ITERS);
    let mut t_replayed = Vec::with_capacity(ITERS);
    for _ in 0..ITERS {
        t_planned.push(black_box(run_mode(&net, &images, false)).1);
        t_replayed.push(black_box(run_mode(&net, &images, true)).1);
    }
    t_planned.sort_by(f64::total_cmp);
    t_replayed.sort_by(f64::total_cmp);
    let p = t_planned[ITERS / 2];
    let r = t_replayed[ITERS / 2];
    (p, r, p / r)
}

fn main() {
    // Stream length is the lever: the ramp (the FIFO occupancies ratchet
    // toward their steady fixed point over the first few frames), one
    // recorded period, and the non-periodic final frame are paid at
    // planned cost; every other image is tape-driven. At 96 ImageNet
    // frames ~91 of them replay, which is still far short of the
    // thousands-per-stream regime the paper's static schedule targets.
    let workloads = [
        ("test_net/16 x24", models::test_net(16, 4, 2), 10, 24),
        ("vgg_like/32 x24", models::vgg_like(32, 10, 2), 10, 24),
        ("resnet18/224 x96", models::resnet18(1000), 1000, 96),
    ];
    let mut rows = Vec::new();
    let mut imagenet_speedup = 0.0;
    for (label, spec, classes, n) in workloads {
        let (p, r, x) = measure(label, spec, classes, n);
        if label.starts_with("resnet18") {
            imagenet_speedup = x;
        }
        rows.push(vec![
            label.to_string(),
            format!("{p:.1}"),
            format!("{r:.1}"),
            format!("{x:.2}x"),
        ]);
    }
    println!(
        "\n== Schedule replay (wall-clock per stream, bit-identical results) ==\n{}",
        render_table(&["workload", "planned ms", "replayed ms", "speedup"], &rows)
    );
    if Bench::quick_mode() {
        println!("(quick mode: workloads executed once, speedup assertion skipped)");
        return;
    }
    assert!(
        imagenet_speedup >= 1.3,
        "schedule replay should be >=1.3x on an ImageNet-scale 96-image stream, \
         got {imagenet_speedup:.2}x"
    );
}
