//! Scheduler micro-benchmark: dense stepping vs the event-driven
//! ready-list stepper on full-network simulations.
//!
//! Both modes are bit-identical in outputs and `CycleReport`s (asserted
//! here per workload, and property-tested in
//! `tests/scheduler_equivalence.rs`), so the *entire* difference is
//! scheduler overhead: the dense stepper pays a virtual tick for every
//! kernel every cycle, while the ready-list stepper skips parked kernels
//! for the price of an array read. Deep pipelines spend most kernel-cycles
//! starved or backpressured — the deeper and more staged the network, the
//! larger the win.
//!
//! Run via `cargo bench --bench scheduler_overhead` (tier-1 only builds
//! it). The ≥2× assertion below backs the PR's acceptance criterion.

use qnn::compiler::{run_images, CompileOptions, SimResult};
use qnn::data::Dataset;
use qnn::dfe::SchedulerMode;
use qnn::nn::{models, Network, NetworkSpec};
use qnn_bench::render_table;
use qnn_testkit::{black_box, Bench};
use std::time::Instant;

fn run_mode(net: &Network, images: &[qnn::tensor::Tensor3<i8>], mode: SchedulerMode) -> SimResult {
    let opts = CompileOptions {
        scheduler: mode,
        // Replay would only help the ready-list side; keep the A/B about
        // scheduler overhead alone (replay has its own bench).
        schedule_replay: false,
        ..CompileOptions::default()
    };
    run_images(net, images, &opts).expect("sim")
}

/// Iterations per scheduler (after one untimed warmup pair).
const ITERS: usize = 5;

/// Time one workload under both schedulers; returns (dense ms, ready ms,
/// speedup) after asserting bit-identity of logits and reports.
///
/// The two modes are timed in *interleaved* dense/ready pairs rather than
/// as two back-to-back blocks: the resnet18 run takes seconds per
/// iteration, long enough for ambient machine drift (frequency scaling,
/// co-tenants) to skew whichever block runs later. Pairing exposes both
/// modes to the same drift, and the median of each side makes the ratio
/// robust to one noisy pair.
fn measure(label: &str, spec: NetworkSpec, classes: usize, n_images: usize) -> (f64, f64, f64) {
    let side = spec.input.h;
    let data = Dataset {
        name: "bench",
        side,
        classes,
    };
    let net = Network::random(spec, 3);
    let images = data.images(n_images);

    let dense = run_mode(&net, &images, SchedulerMode::Dense);
    let ready = run_mode(&net, &images, SchedulerMode::ReadyList);
    assert_eq!(
        dense.logits, ready.logits,
        "{label}: outputs must be bit-identical"
    );
    assert_eq!(
        dense.reports, ready.reports,
        "{label}: reports must be bit-identical"
    );
    if Bench::quick_mode() {
        return (0.0, 0.0, 1.0);
    }

    let mut t_dense = Vec::with_capacity(ITERS);
    let mut t_ready = Vec::with_capacity(ITERS);
    for _ in 0..ITERS {
        let t = Instant::now();
        black_box(run_mode(&net, &images, SchedulerMode::Dense));
        t_dense.push(t.elapsed());
        let t = Instant::now();
        black_box(run_mode(&net, &images, SchedulerMode::ReadyList));
        t_ready.push(t.elapsed());
    }
    t_dense.sort();
    t_ready.sort();
    let d = t_dense[ITERS / 2].as_secs_f64() * 1e3;
    let r = t_ready[ITERS / 2].as_secs_f64() * 1e3;
    (d, r, d / r)
}

fn main() {
    // CIFAR-scale nets are bounded by conv compute (busy ticks are ~1/3 of
    // the dense tick grid), so the win there is modest; the ISSUE's target
    // workload is ImageNet scale, where a 67-kernel pipeline idles behind
    // conv1's 112×112 output and dense stepping wastes ~5 of every 6 ticks.
    let workloads = [
        ("test_net/16 residual", models::test_net(16, 4, 2), 10, 2),
        ("vgg_like/32", models::vgg_like(32, 10, 2), 10, 2),
        ("vgg_like_deep/32", models::vgg_like_deep(32, 10, 2), 10, 1),
        ("resnet18/224", models::resnet18(1000), 1000, 1),
    ];
    let mut rows = Vec::new();
    let mut imagenet_speedup = 0.0;
    for (label, spec, classes, n) in workloads {
        let (d, r, s) = measure(label, spec, classes, n);
        if label.starts_with("resnet18") {
            imagenet_speedup = s;
        }
        rows.push(vec![
            label.to_string(),
            format!("{d:.1}"),
            format!("{r:.1}"),
            format!("{s:.2}x"),
        ]);
    }
    println!(
        "\n== Scheduler overhead (wall-clock per batch, bit-identical results) ==\n{}",
        render_table(&["workload", "dense ms", "ready ms", "speedup"], &rows)
    );
    if Bench::quick_mode() {
        println!("(quick mode: workloads executed once, speedup assertion skipped)");
        return;
    }
    assert!(
        imagenet_speedup >= 2.0,
        "ready-list scheduler should be >=2x on an ImageNet-scale full-network sim, \
         got {imagenet_speedup:.2}x"
    );
}
