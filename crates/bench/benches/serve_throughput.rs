//! Serving throughput vs replica count — scaling of the batch-parallel
//! host runtime (`qnn-serve`).
//!
//! Pushes a fixed 16-request trace through the serving runtime at 1, 2
//! and 4 replicas of the test network's pipeline and reports two
//! throughput numbers per point:
//!
//! * **device images/sec** — at the modeled Maia fabric clock, where the
//!   makespan is the *maximum per-replica cycle load* (replicas model
//!   independent DFE cards running concurrently). Deterministic for a
//!   fixed trace, and the quantity the scaling assertion checks.
//! * **host images/sec** — wall clock of the whole serve call. This one
//!   only scales when the host actually has spare cores for the extra
//!   replica workers, so it is printed for context, not asserted.

use qnn::cluster::{Autoscaler, AutoscalerConfig};
use qnn::dfe::MAIA_FCLK_MHZ;
use qnn::nn::{models, Network};
// The deprecated `serve` shim stays in the bench so the closure path keeps
// a throughput baseline until removal (new code: Server::builder).
#[allow(deprecated)]
use qnn::serve::serve;
use qnn::serve::{
    DispatchPolicy, ModelOptions, Priority, Server, ServerConfig, ServerReport, SubmitOptions,
    Ticket,
};
use qnn::tensor::{Shape3, Tensor3};
use qnn_bench::render_table;
use qnn_testkit::{Bench, Rng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

const REQUESTS: usize = 16;

fn trace() -> Vec<Tensor3<i8>> {
    let mut rng = Rng::seed_from_u64(11);
    (0..REQUESTS)
        .map(|_| {
            Tensor3::from_fn(Shape3::square(8, 3), |_, _, _| rng.gen_range(-127i8..=127))
        })
        .collect()
}

#[allow(deprecated)]
fn serve_trace(net: &Network, images: &[Tensor3<i8>], replicas: usize) -> ServerReport {
    // Long flush deadline + round-robin pinned: the burst always fills
    // batches to max_batch and shard sizes depend only on the flush
    // sequence, so the cycle makespan is deterministic run to run (the
    // default least-loaded policy shards by wall-clock timing).
    let config = ServerConfig {
        replicas,
        max_batch: 2,
        flush_deadline: Duration::from_secs(1),
        dispatch: DispatchPolicy::RoundRobin,
        ..ServerConfig::default()
    };
    let ((), report) = serve(net, &config, |client| {
        let tickets: Vec<Ticket> =
            images.iter().map(|i| client.submit(i.clone()).expect("admitted")).collect();
        for t in tickets {
            t.wait().expect("answered");
        }
    });
    assert_eq!(report.completed, REQUESTS as u64);
    report
}

/// Two-model mixed load: a foreground model ("fg") takes a trickle of
/// latency-sensitive requests while a background model ("bg") keeps batch
/// pressure on the server. Returns the foreground p95 latency when the
/// trickle runs as `Priority::Interactive` (own 1 ms flush deadline,
/// dispatched first) vs. as the default batch class (waits out the 25 ms
/// batch flush deadline in its partial batches).
fn mixed_load_fg_p95(net: &Network, interactive: bool) -> Duration {
    let config = ServerConfig {
        replicas: 1,
        max_batch: 4,
        flush_deadline: Duration::from_millis(25),
        interactive_flush_deadline: Duration::from_millis(1),
        ..ServerConfig::default()
    };
    let server = Server::builder()
        .config(config)
        .model("fg", net)
        .model("bg", net)
        .start()
        .expect("valid server");
    let client = server.client();

    let bg_client = client.clone();
    let background = std::thread::spawn(move || {
        let mut rng = Rng::seed_from_u64(13);
        let tickets: Vec<Ticket> = (0..24)
            .map(|_| {
                let img = Tensor3::from_fn(Shape3::square(8, 3), |_, _, _| {
                    rng.gen_range(-127i8..=127)
                });
                bg_client.submit_with(img, SubmitOptions::model("bg")).expect("admitted")
            })
            .collect();
        for t in tickets {
            t.wait().expect("answered");
        }
    });

    let mut rng = Rng::seed_from_u64(17);
    let mut fg_tickets = Vec::new();
    for _ in 0..10 {
        let img =
            Tensor3::from_fn(Shape3::square(8, 3), |_, _, _| rng.gen_range(-127i8..=127));
        let opts = if interactive {
            SubmitOptions::model("fg").priority(Priority::Interactive)
        } else {
            SubmitOptions::model("fg")
        };
        fg_tickets.push(client.submit_with(img, opts).expect("admitted"));
        std::thread::sleep(Duration::from_millis(5));
    }
    for t in fg_tickets {
        t.wait().expect("answered");
    }
    background.join().expect("background submitter");

    let report = server.shutdown();
    report.model("fg").and_then(|m| m.latency).expect("fg requests completed").p95
}

/// Cluster scenario: a saturating interactive stream hits a "hot" model
/// while a "cold" model idles, under a fixed total replica budget of 4.
///
/// * `autoscaled = false` — the static split an operator would pick
///   without knowing the skew: 2 hot + 2 cold. Hot capacity (2 replicas ×
///   125 img/s) sits just under the offered rate, so its queue — and its
///   p95 — grows for the whole run.
/// * `autoscaled = true` — both pools start at 1 and an [`Autoscaler`]
///   reallocates the budget live: cold idles at `min_replicas`, hot grows
///   to 3 within the warmup window and the queue stays bounded.
///
/// Latencies are measured client-side (submit → response observed),
/// keeping only requests submitted after the warmup quarter of the run so
/// the autoscaled variant is scored on its steady state, not its cold
/// start. Service time is a synthetic per-batch delay, so the contrast is
/// reproducible on any host. Returns the steady-state p95 and the hot
/// pool's final replica count.
fn cluster_hot_cold_p95(net: &Network, autoscaled: bool, run: Duration) -> (Duration, usize) {
    let service = Duration::from_millis(8);
    let start_replicas = if autoscaled { 1 } else { 2 };
    let server = Server::builder()
        .config(ServerConfig { max_batch: 1, ..ServerConfig::default() })
        .model_with(
            "hot",
            net,
            ModelOptions::new().replicas(start_replicas).synthetic_delay(service),
        )
        .model_with(
            "cold",
            net,
            ModelOptions::new().replicas(start_replicas).synthetic_delay(service),
        )
        .start()
        .expect("valid server");
    let client = server.client();
    let stop = AtomicBool::new(false);
    let warmup = run / 4;

    let (p95, hot_replicas) = std::thread::scope(|scope| {
        let (stop, server) = (&stop, &server);
        let scaler = autoscaled.then(|| {
            let config = AutoscalerConfig::builder()
                .min_replicas(1)
                .max_replicas(3)
                .total_budget(4)
                .target_p95(Duration::from_millis(15))
                .backlog_per_replica(2)
                .interval(Duration::from_millis(10))
                .up_hysteresis(2)
                .down_hysteresis(50)
                .cooldown_ticks(1)
                .build()
                .expect("valid config");
            let scaler = Autoscaler::new(config, server);
            scope.spawn(move || scaler.run(server, stop))
        });

        // Drain tickets concurrently with the pacing loop so client-side
        // latency is observed close to when each response lands.
        let (tx, rx) = mpsc::channel::<(Ticket, Instant, bool)>();
        let drainer = scope.spawn(move || {
            let mut latencies = Vec::new();
            for (ticket, submitted, measured) in rx {
                ticket.wait().expect("answered");
                if measured {
                    latencies.push(submitted.elapsed());
                }
            }
            latencies
        });

        // ~285 interactive img/s at a 3.5 ms beat: above 2 × 125 img/s
        // (fixed hot capacity), below 3 × 125 img/s (scaled-up capacity).
        let mut rng = Rng::seed_from_u64(23);
        let started = Instant::now();
        while started.elapsed() < run {
            let img = Tensor3::from_fn(Shape3::square(8, 3), |_, _, _| {
                rng.gen_range(-127i8..=127)
            });
            let opts = SubmitOptions::model("hot").priority(Priority::Interactive);
            let submitted = Instant::now();
            let ticket = client.submit_with(img, opts).expect("admitted");
            let measured = started.elapsed() > warmup;
            tx.send((ticket, submitted, measured)).expect("drainer alive");
            std::thread::sleep(Duration::from_micros(3500));
        }
        drop(tx);
        let mut latencies = drainer.join().expect("drainer thread");
        let hot_replicas = server.load_window("hot").expect("known model").replicas;
        stop.store(true, Ordering::Release);
        if let Some(handle) = scaler {
            handle.join().expect("scaler thread");
        }
        latencies.sort();
        let p95 = latencies[(latencies.len() - 1) * 95 / 100];
        (p95, hot_replicas)
    });
    server.shutdown();
    (p95, hot_replicas)
}

fn main() {
    let net = Network::random(models::test_net(8, 4, 2), 42);
    let images = trace();
    let bench = Bench::from_env().with_iters(1, 7);

    let mut points = Vec::new();
    for replicas in [1usize, 2, 4] {
        let mut device_ips = 0.0f64;
        let mut host_ips = 0.0f64;
        bench.run(&format!("serve_throughput/replicas/{replicas}"), || {
            let report = serve_trace(&net, &images, replicas);
            device_ips = report.device_images_per_sec(MAIA_FCLK_MHZ);
            host_ips = host_ips.max(report.images_per_sec());
        });
        points.push((replicas, device_ips, host_ips));
    }

    let (base_dev, base_host) = (points[0].1, points[0].2);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|&(r, dev, host)| {
            vec![
                r.to_string(),
                format!("{dev:.0}"),
                format!("{:.2}x", dev / base_dev),
                format!("{:.0}%", 100.0 * dev / base_dev / r as f64),
                format!("{host:.1}"),
                format!("{:.2}x", host / base_host),
            ]
        })
        .collect();
    println!(
        "\n== serving scaling ({REQUESTS} requests, max_batch 2, device clock {MAIA_FCLK_MHZ} MHz) ==\n{}",
        render_table(
            &["replicas", "device img/s", "speedup", "efficiency", "host img/s", "host speedup"],
            &rows
        )
    );

    // Mixed-load scenario: interactive class isolation under batch
    // pressure. Quick mode runs each variant once (harness-rot check);
    // measurement mode takes the best of three to shrug off host jitter.
    let runs = if Bench::quick_mode() { 1 } else { 3 };
    let interactive_p95 = (0..runs)
        .map(|_| mixed_load_fg_p95(&net, true))
        .min()
        .expect("at least one run");
    let single_class_p95 = (0..runs)
        .map(|_| mixed_load_fg_p95(&net, false))
        .min()
        .expect("at least one run");
    println!(
        "\n== mixed load (fg trickle under bg batch pressure, two models) ==\n\
         fg p95 latency: interactive class {:.3} ms, single class {:.3} ms",
        interactive_p95.as_secs_f64() * 1e3,
        single_class_p95.as_secs_f64() * 1e3,
    );

    // Cluster scenario: same total replica budget, static split vs live
    // autoscaling, scored on steady-state client-side interactive p95.
    let cluster_run = if Bench::quick_mode() {
        Duration::from_millis(200)
    } else {
        Duration::from_millis(600)
    };
    let (fixed_p95, fixed_hot) = cluster_hot_cold_p95(&net, false, cluster_run);
    let (auto_p95, auto_hot) = cluster_hot_cold_p95(&net, true, cluster_run);
    const CLUSTER_P95_BOUND_MS: f64 = 30.0;
    println!(
        "\n== cluster budget reallocation (4-replica budget, hot/cold skew) ==\n\
         steady-state hot p95: fixed 2+2 split {:.3} ms (hot stays at {} replicas), \
         autoscaled {:.3} ms (hot ends at {} replicas); bound {CLUSTER_P95_BOUND_MS} ms",
        fixed_p95.as_secs_f64() * 1e3,
        fixed_hot,
        auto_p95.as_secs_f64() * 1e3,
        auto_hot,
    );

    if Bench::quick_mode() {
        println!("(quick mode: workloads executed once, assertions skipped)");
        return;
    }
    assert!(
        auto_p95.as_secs_f64() * 1e3 < CLUSTER_P95_BOUND_MS,
        "autoscaled steady-state p95 {auto_p95:?} breached the {CLUSTER_P95_BOUND_MS} ms bound"
    );
    assert!(
        fixed_p95.as_secs_f64() * 1e3 > CLUSTER_P95_BOUND_MS,
        "fixed split unexpectedly held the bound ({fixed_p95:?}) — the scenario no longer \
         saturates, raise the offered rate"
    );
    assert_eq!(auto_hot, 3, "autoscaler never reallocated the budget to the hot pool");
    let two = points.iter().find(|&&(r, ..)| r == 2).expect("2-replica row").1;
    let speedup = two / base_dev;
    println!("1 -> 2 replica device-clock speedup: {speedup:.2}x (target >= 1.7x)");
    assert!(speedup >= 1.7, "replica scaling regressed: {speedup:.2}x < 1.7x");
    assert!(
        interactive_p95 < single_class_p95,
        "interactive class lost its latency isolation: {interactive_p95:?} >= {single_class_p95:?}"
    );
}
