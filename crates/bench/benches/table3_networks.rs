//! Table III — AlexNet vs ResNet-18: resources, runtime, DFE count.
//!
//! The timing loop simulates scaled-down (56×56) variants of both network
//! families cycle-accurately so the bench finishes in seconds; the full
//! 224×224 analytic numbers and the paper's reported values are printed
//! alongside. For full-size cycle simulation use
//! `cargo run --release -p qnn-bench --bin paper-tables -- table3 --sim`.

use qnn::dfe::MAIA_FCLK_MHZ;
use qnn::hw::specs::paper;
use qnn::hw::{estimate_network, CycleModel};
use qnn::nn::models;
use qnn_bench::{place, render_table, simulate_one};
use qnn_testkit::Bench;

fn table3() {
    let mut rows = Vec::new();
    for spec in [models::alexnet(1000), models::resnet18(1000)] {
        let p = place(&spec);
        let u = estimate_network(&spec, p.num_dfes()).total;
        let ms = CycleModel::ms(CycleModel::analyze(&spec).latency(), MAIA_FCLK_MHZ);
        rows.push(vec![
            spec.name.clone(),
            u.luts.to_string(),
            u.bram_kbits.to_string(),
            u.ffs.to_string(),
            format!("{ms:.1}"),
            p.num_dfes().to_string(),
        ]);
    }
    rows.push(vec![
        "paper: AlexNet".into(),
        paper::ALEXNET_LUT.to_string(),
        paper::ALEXNET_BRAM_KBITS.to_string(),
        paper::ALEXNET_FF.to_string(),
        format!("{:.1}", paper::ALEXNET_TIME_MS),
        "3".into(),
    ]);
    rows.push(vec![
        "paper: ResNet-18".into(),
        paper::RESNET18_LUT.to_string(),
        paper::RESNET18_BRAM_KBITS.to_string(),
        paper::RESNET18_FF.to_string(),
        format!("{:.1}", paper::RESNET18_TIME_MS),
        "3".into(),
    ]);
    println!(
        "\n== Table III ==\n{}",
        render_table(&["network", "LUT", "BRAM Kbit", "FF", "time ms", "DFEs"], &rows)
    );
}

fn main() {
    table3();
    let data = qnn::data::Dataset { name: "proxy", side: 56, classes: 10 };
    // Residual-family proxy (skip connections) vs plain-conv family proxy.
    Bench::from_env().with_iters(2, 10).run("table3_sim_56x56_proxies/residual_family", || {
        simulate_one(&models::test_net(56, 10, 2), &data, 4)
    });
}
