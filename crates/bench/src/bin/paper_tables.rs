//! Regenerates every table and figure of the paper's evaluation section.
//!
//! ```text
//! cargo run --release -p qnn-bench --bin paper-tables            # fast set
//! cargo run --release -p qnn-bench --bin paper-tables -- all --sim
//! cargo run --release -p qnn-bench --bin paper-tables -- fig5 --sim
//! ```
//!
//! Artifacts: `table1 table2 table3 table4 fig5 fig6 fig7 fig8
//! scalability accuracy all`. The `--sim` flag replaces analytic latency
//! numbers with full cycle-accurate simulations where feasible (224×224
//! runs take a minute or two each in release mode).

use qnn::data::{CIFAR10, STL10, STL10_144};
use qnn::dfe::{MAIA_FCLK_MHZ, STRATIX_V_5SGSD8};
use qnn::hw::specs::{paper, FINN_CNV_CIFAR10};
use qnn::hw::{dfe_power_watts, estimate_network, CycleModel};
use qnn::nn::{models, Network, Stage};
use qnn_bench::{comparison_row, place, render_table, simulate_one, sweep_specs};

fn table1() {
    println!("== Table I: ResNet-18 architecture (verified against the builder) ==");
    let spec = models::resnet18(1000);
    let mut rows = Vec::new();
    for (i, stage) in spec.stages.iter().enumerate() {
        let (kind, params): (String, String) = match stage {
            Stage::ConvInput { geom } => (
                "conv1".into(),
                format!("{}×{}, {}, stride {}", geom.filter.k, geom.filter.k, geom.filter.o, geom.stride),
            ),
            Stage::Pool { k, stride, kind, .. } => {
                (format!("pool ({kind:?})"), format!("{k}×{k}, stride {stride}"))
            }
            Stage::Residual { geom } => (
                format!("residual block {i}"),
                format!(
                    "[3×3, {o}; 3×3, {o}]{}",
                    if geom.downsample.is_some() { " + 1×1 downsample" } else { "" },
                    o = geom.conv2.filter.o
                ),
            ),
            Stage::FullyConnected { out_features, .. } => {
                ("fc".into(), format!("{out_features}-d"))
            }
            Stage::Conv { geom } => ("conv".into(), format!("{:?}", geom.filter)),
            Stage::Encoder { geom } => (
                format!("encoder block {i}"),
                format!(
                    "{} heads × {}-d{}",
                    geom.heads,
                    geom.head_dim,
                    if geom.has_ffn() { ", ffn" } else { "" }
                ),
            ),
        };
        rows.push(vec![kind, format!("{}", stage.output_shape()), params]);
    }
    println!("{}", render_table(&["layer", "output size", "parameters"], &rows));
}

fn table2() {
    println!("== Table II: hardware specifications ==");
    let rows = vec![
        vec!["Tesla P100".into(), "Pascal".into(), "3584 cores".into(), "1480 MHz".into()],
        vec!["GTX 1080".into(), "Pascal".into(), "2560 cores".into(), "1733 MHz".into()],
        vec![
            STRATIX_V_5SGSD8.name.into(),
            "Stratix V".into(),
            format!("{} ALMs / {} M20K / {} FFs", STRATIX_V_5SGSD8.luts, STRATIX_V_5SGSD8.bram_blocks, STRATIX_V_5SGSD8.ffs),
            format!("{} MHz fabric", STRATIX_V_5SGSD8.fclk_mhz),
        ],
    ];
    println!("{}", render_table(&["device", "architecture", "compute", "clock"], &rows));
}

fn table3(sim: bool) {
    println!("== Table III: AlexNet vs ResNet-18 on the DFE ==");
    let mut rows = Vec::new();
    for spec in [models::alexnet(1000), models::resnet18(1000)] {
        let p = place(&spec);
        let usage = estimate_network(&spec, p.num_dfes()).total;
        let ms = if sim {
            println!("  [sim] running {} at 224×224 ...", spec.name);
            simulate_one(&spec, &qnn::data::IMAGENET, 42).1
        } else {
            CycleModel::ms(CycleModel::analyze(&spec).latency(), MAIA_FCLK_MHZ)
        };
        rows.push(vec![
            spec.name.clone(),
            usage.luts.to_string(),
            usage.bram_kbits.to_string(),
            usage.ffs.to_string(),
            format!("{ms:.1}"),
            p.num_dfes().to_string(),
        ]);
    }
    rows.push(vec![
        "paper AlexNet".into(),
        paper::ALEXNET_LUT.to_string(),
        paper::ALEXNET_BRAM_KBITS.to_string(),
        paper::ALEXNET_FF.to_string(),
        format!("{:.1}", paper::ALEXNET_TIME_MS),
        "3".into(),
    ]);
    rows.push(vec![
        "paper ResNet-18".into(),
        paper::RESNET18_LUT.to_string(),
        paper::RESNET18_BRAM_KBITS.to_string(),
        paper::RESNET18_FF.to_string(),
        format!("{:.1}", paper::RESNET18_TIME_MS),
        "3".into(),
    ]);
    println!(
        "{}",
        render_table(&["network", "LUT", "BRAM (Kbit)", "FF", "time (ms)", "DFEs"], &rows)
    );
}

fn table4(sim: bool) {
    println!("== Table IV: comparison with FINN (CNV @ 32×32, CIFAR-10) ==");
    // The faithful FINN topology, for the resource columns...
    let cnv = models::cnv_finn(10, 2);
    let cnv_p = place(&cnv);
    let cnv_usage = estimate_network(&cnv, cnv_p.num_dfes()).total;
    let cnv_ms = CycleModel::ms(CycleModel::analyze(&cnv).period(), MAIA_FCLK_MHZ);
    // ...and the size-parametric variant used across the Fig. 5/6 sweeps.
    let spec = models::vgg_like(32, 10, 2);
    let p = place(&spec);
    let usage = estimate_network(&spec, p.num_dfes()).total;
    let ms = if sim {
        simulate_one(&spec, &CIFAR10, 42).1
    } else {
        CycleModel::ms(CycleModel::analyze(&spec).latency(), MAIA_FCLK_MHZ)
    };
    let w = dfe_power_watts(usage, p.num_dfes(), &STRATIX_V_5SGSD8, MAIA_FCLK_MHZ).total();
    let rows = vec![
        vec![
            "FINN (published)".into(),
            format!("{:.4}", FINN_CNV_CIFAR10.time_ms),
            format!("{:.1}", FINN_CNV_CIFAR10.power_w),
            format!("{:.1}%", FINN_CNV_CIFAR10.accuracy * 100.0),
            FINN_CNV_CIFAR10.luts.to_string(),
            FINN_CNV_CIFAR10.bram_kbits.to_string(),
            "-".into(),
        ],
        vec![
            "DFE (this work, CNV)".into(),
            format!("{cnv_ms:.3}"),
            format!(
                "{:.1}",
                dfe_power_watts(cnv_usage, 1, &STRATIX_V_5SGSD8, MAIA_FCLK_MHZ).total()
            ),
            "see `accuracy`".into(),
            cnv_usage.luts.to_string(),
            cnv_usage.bram_kbits.to_string(),
            cnv_usage.ffs.to_string(),
        ],
        vec![
            "DFE (this work, VGG-like)".into(),
            format!("{ms:.3}"),
            format!("{w:.1}"),
            "see `accuracy`".into(),
            usage.luts.to_string(),
            usage.bram_kbits.to_string(),
            usage.ffs.to_string(),
        ],
        vec![
            "DFE (paper)".into(),
            format!("{:.1}", paper::VGG32_TIME_MS),
            format!("{:.1}", paper::VGG32_POWER_W),
            format!("{:.1}%", paper::VGG32_ACCURACY * 100.0),
            paper::VGG32_LUT.to_string(),
            paper::VGG32_BRAM_KBITS.to_string(),
            paper::VGG32_FF.to_string(),
        ],
    ];
    println!(
        "{}",
        render_table(
            &["system", "time (ms)", "power (W)", "accuracy", "LUT", "BRAM (Kbit)", "FF"],
            &rows
        )
    );
}

fn fig5(sim: bool) {
    println!("== Figure 5: runtime, DFE vs GPUs (ms/image) ==");
    let mut rows = Vec::new();
    for (label, spec) in sweep_specs() {
        let mut row = comparison_row(&label, &spec);
        if sim && spec.input.h <= 144 {
            let data = match spec.input.h {
                32 => CIFAR10,
                96 => STL10,
                _ => STL10_144,
            };
            println!("  [sim] {label} ...");
            row.dfe_ms = simulate_one(&spec, &data, 7).1;
        }
        rows.push(vec![
            row.label.clone(),
            format!("{:.3}{}", row.dfe_ms, if sim && spec.input.h <= 144 { " (sim)" } else { "" }),
            format!("{:.3}", row.p100_ms),
            format!("{:.3}", row.gtx_ms),
            row.dfes.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(&["workload", "DFE (ms)", "P100 (ms)", "GTX1080 (ms)", "DFEs"], &rows)
    );
    // §IV-B1's caveat: GPUs regain ground with minibatches (the DFE
    // processes one image at a time).
    println!("GPU minibatch amortization (P100, ms/image):");
    let mut brows = Vec::new();
    for (label, spec) in sweep_specs() {
        let gpu = qnn::hw::GpuModel::new(qnn::hw::P100);
        brows.push(vec![
            label.clone(),
            format!("{:.3}", gpu.time_ms(&spec)),
            format!("{:.3}", gpu.time_ms_batched(&spec, 128)),
            format!("{:.3}", gpu.time_ms_batched(&spec, 256)),
        ]);
    }
    println!("{}", render_table(&["workload", "batch 1", "batch 128", "batch 256"], &brows));
}

fn fig6() {
    println!("== Figure 6: resource utilization vs input size (Δ from 32×32) ==");
    let base = estimate_network(&models::vgg_like(32, 10, 2), 1).total;
    let mut rows = Vec::new();
    for side in [32usize, 64, 96, 144, 224] {
        let spec = models::vgg_like(side, 10, 2);
        let dfes = place(&spec).num_dfes();
        let u = estimate_network(&spec, 1).total;
        let pct = |a: u64, b: u64| 100.0 * (a as f64 / b as f64 - 1.0);
        rows.push(vec![
            format!("{side}×{side}"),
            format!("{:+.1}%", pct(u.luts, base.luts)),
            format!("{:+.1}%", pct(u.ffs, base.ffs)),
            format!("{:+.1}%", pct(u.bram_kbits, base.bram_kbits)),
            dfes.to_string(),
        ]);
    }
    println!("{}", render_table(&["input", "ΔLUT", "ΔFF", "ΔBRAM", "DFEs"], &rows));
}

fn fig7_fig8() {
    println!("== Figures 7 & 8: power (W) and energy per image (J) ==");
    let mut rows = Vec::new();
    for (label, spec) in sweep_specs() {
        let row = comparison_row(&label, &spec);
        rows.push(vec![
            row.label.clone(),
            format!("{:.1}", row.dfe_w),
            format!("{:.0}", row.p100_w),
            format!("{:.0}", row.gtx_w),
            format!("{:.4}", row.dfe_j()),
            format!("{:.4}", row.p100_j()),
            format!("{:.4}", row.gtx_j()),
            format!("{:.1}×", row.p100_j() / row.dfe_j()),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "workload",
                "DFE W",
                "P100 W",
                "GTX W",
                "DFE J",
                "P100 J",
                "GTX J",
                "energy gain",
            ],
            &rows
        )
    );
}

fn scalability() {
    println!("== §IV-B4 scalability: cycle estimates and Stratix 10 projection ==");
    let resnet = models::resnet18(1000);
    let m = CycleModel::analyze(&resnet);
    println!("ResNet-18 analytic latency: {:.3e} cycles (paper estimate 1.85e6)", m.latency() as f64);
    println!("  bottleneck: {} ({} busy cycles/image)", m.bottleneck().name, m.bottleneck().busy);
    println!("  at 105 MHz (Stratix V): {:.1} ms  (paper measured {} ms)",
        CycleModel::ms(m.latency(), MAIA_FCLK_MHZ), paper::RESNET18_TIME_MS);
    println!("  at 525 MHz (Stratix 10 projection): {:.1} ms  (paper projects 3-4 ms)",
        CycleModel::ms(m.latency(), 5.0 * MAIA_FCLK_MHZ));
    println!();
    println!("fps across the sweep (must exceed 60 for real-time, §V):");
    for (label, spec) in sweep_specs() {
        let ms = CycleModel::ms(CycleModel::analyze(&spec).latency(), MAIA_FCLK_MHZ);
        println!("  {label:<36} {:.0} fps", 1000.0 / ms);
    }
}

fn accuracy(n: usize) {
    println!("== Accuracy substitution: top-1 agreement with an 8-bit teacher ==");
    println!("(the paper's trained-accuracy rows are not reproducible without");
    println!(" ImageNet + training; this measures the activation-quantization");
    println!(" cost on the identical datapath, using the shallow probe network");
    println!(" — untrained deep nets collapse onto one class, an initialization");
    println!(" artifact, not a quantization effect — see DESIGN.md §1)");
    let mut rows = Vec::new();
    let (mut sum2, mut sum1, mut used) = (0.0, 0.0, 0);
    for seed in 1u64..=12 {
        if used == 4 {
            break;
        }
        let teacher = Network::random(models::probe32(10, 8), seed);
        // Random untrained networks occasionally collapse onto one class;
        // such a teacher defines no usable labels, so skip it (a trained
        // teacher never has this problem).
        let hist = qnn::data::per_class_histogram(&teacher, &CIFAR10, n);
        let distinct = hist.iter().filter(|&&c| c > 0).count();
        if distinct < 3 {
            continue;
        }
        used += 1;
        let s2 = Network::random(models::probe32(10, 2), seed);
        let s1 = Network::random(models::probe32(10, 1), seed);
        let a2 = qnn::data::agreement(&teacher, &s2, &CIFAR10, n);
        let a1 = qnn::data::agreement(&teacher, &s1, &CIFAR10, n);
        sum2 += a2;
        sum1 += a1;
        rows.push(vec![
            format!("seed {seed} ({distinct} classes)"),
            format!("{:.1}%", a2 * 100.0),
            format!("{:.1}%", a1 * 100.0),
        ]);
    }
    if used > 0 {
        rows.push(vec![
            "mean".into(),
            format!("{:.1}%", 100.0 * sum2 / used as f64),
            format!("{:.1}%", 100.0 * sum1 / used as f64),
        ]);
    }
    println!(
        "{}",
        render_table(&["weights", "2-bit activations (ours)", "1-bit (FINN-style)"], &rows)
    );
    println!("paper's corresponding orderings: AlexNet 51.03% (2-bit) vs 41.8% (1-bit);");
    println!("CNV 84.2% (DFE, 2-bit) vs 80.1% (FINN, 1-bit).");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let sim = args.iter().any(|a| a == "--sim");
    let what = args.iter().find(|a| !a.starts_with("--")).cloned().unwrap_or_else(|| "all".into());
    let n_acc = if sim { 40 } else { 16 };
    match what.as_str() {
        "table1" => table1(),
        "table2" => table2(),
        "table3" => table3(sim),
        "table4" => table4(sim),
        "fig5" => fig5(sim),
        "fig6" => fig6(),
        "fig7" | "fig8" | "fig7_fig8" => fig7_fig8(),
        "scalability" => scalability(),
        "accuracy" => accuracy(n_acc),
        "all" => {
            table1();
            table2();
            table3(sim);
            table4(sim);
            fig5(sim);
            fig6();
            fig7_fig8();
            scalability();
            println!();
            accuracy(n_acc);
        }
        other => {
            eprintln!("unknown artifact '{other}'; use table1..table4, fig5..fig8, scalability, accuracy, all");
            std::process::exit(2);
        }
    }
}
