//! Shared measurement helpers for the benchmark harness and the
//! `paper-tables` binary.
//!
//! Every table and figure of the paper's evaluation maps to one function
//! here (see DESIGN.md §4 for the experiment index); the criterion benches
//! and the binary both call these, so the printed artifacts and the timed
//! artifacts can never diverge.

use qnn::compiler::{partition, run_images, CompileOptions, Partition};
use qnn::data::Dataset;
use qnn::dfe::{MaxRing, MAIA_FCLK_MHZ, STRATIX_V_5SGSD8};
use qnn::hw::{
    dfe_power_watts, energy_joules, estimate_network, gpu_power_watts, CycleModel, GpuModel,
    GTX1080, P100,
};
use qnn::nn::{models, Network, NetworkSpec};

/// One row of a runtime/power/energy comparison (Figures 5, 7, 8).
#[derive(Clone, Debug)]
pub struct ComparisonRow {
    /// Workload label ("VGG-like @ 32×32", "ResNet-18 @ 224×224", …).
    pub label: String,
    /// DFE count required.
    pub dfes: usize,
    /// DFE time per image (ms) — analytic latency model.
    pub dfe_ms: f64,
    /// P100 time (ms).
    pub p100_ms: f64,
    /// GTX 1080 time (ms).
    pub gtx_ms: f64,
    /// DFE board power (W).
    pub dfe_w: f64,
    /// P100 power (W).
    pub p100_w: f64,
    /// GTX 1080 power (W).
    pub gtx_w: f64,
}

impl ComparisonRow {
    /// Energy per image on the DFE (J).
    pub fn dfe_j(&self) -> f64 {
        energy_joules(self.dfe_w, self.dfe_ms)
    }
    /// Energy per image on the P100 (J).
    pub fn p100_j(&self) -> f64 {
        energy_joules(self.p100_w, self.p100_ms)
    }
    /// Energy per image on the GTX 1080 (J).
    pub fn gtx_j(&self) -> f64 {
        energy_joules(self.gtx_w, self.gtx_ms)
    }
}

/// The Figure 5/7/8 workload sweep: VGG-like at 32², 96², 144² and the two
/// ImageNet networks at 224².
pub fn sweep_specs() -> Vec<(String, NetworkSpec)> {
    vec![
        ("VGG-like @ 32×32 (CIFAR-10)".into(), models::vgg_like(32, 10, 2)),
        ("VGG-like @ 96×96 (STL-10)".into(), models::vgg_like(96, 10, 2)),
        ("VGG-like @ 144×144 (STL-10)".into(), models::vgg_like(144, 10, 2)),
        ("AlexNet @ 224×224 (ImageNet)".into(), models::alexnet(1000)),
        ("ResNet-18 @ 224×224 (ImageNet)".into(), models::resnet18(1000)),
    ]
}

/// Partition a spec onto Stratix V DFEs.
pub fn place(spec: &NetworkSpec) -> Partition {
    partition(spec, &STRATIX_V_5SGSD8, &MaxRing::default()).expect("partition")
}

/// Build one comparison row from the analytic models.
pub fn comparison_row(label: &str, spec: &NetworkSpec) -> ComparisonRow {
    let p = place(spec);
    let usage = estimate_network(spec, p.num_dfes()).total;
    // The paper's runtime numbers average 50 000 consecutive images, i.e.
    // steady-state pipelined throughput — the model's period.
    let dfe_ms = CycleModel::ms(CycleModel::analyze(spec).period(), MAIA_FCLK_MHZ);
    ComparisonRow {
        label: label.to_string(),
        dfes: p.num_dfes(),
        dfe_ms,
        p100_ms: GpuModel::new(P100).time_ms(spec),
        gtx_ms: GpuModel::new(GTX1080).time_ms(spec),
        dfe_w: dfe_power_watts(usage, p.num_dfes(), &STRATIX_V_5SGSD8, MAIA_FCLK_MHZ).total(),
        p100_w: gpu_power_watts(&P100),
        gtx_w: gpu_power_watts(&GTX1080),
    }
}

/// Simulate `n` images of `data` through `spec` and return the measured
/// per-image milliseconds at the Maia clock (cycle-accurate, single DFE).
pub fn simulate_ms(spec: &NetworkSpec, data: &Dataset, n: usize, seed: u64) -> f64 {
    let net = Network::random(spec.clone(), seed);
    let sim = run_images(&net, &data.images(n), &CompileOptions::default()).expect("sim");
    sim.cycles() as f64 / n as f64 / (MAIA_FCLK_MHZ * 1e3)
}

/// Simulate and return (cycles, per-image ms) for a single image.
pub fn simulate_one(spec: &NetworkSpec, data: &Dataset, seed: u64) -> (u64, f64) {
    let net = Network::random(spec.clone(), seed);
    let sim =
        run_images(&net, &data.images(1), &CompileOptions::default()).expect("sim");
    (sim.cycles(), sim.cycles() as f64 / (MAIA_FCLK_MHZ * 1e3))
}

/// Render a plain-text table: header row + rows, columns padded.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| {
        let mut line = String::new();
        for (i, c) in cells.iter().enumerate() {
            line.push_str(&format!("{:<w$}  ", c, w = widths[i]));
        }
        line.trim_end().to_string()
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_all_figure5_workloads() {
        let specs = sweep_specs();
        assert_eq!(specs.len(), 5);
        assert!(specs.iter().any(|(l, _)| l.contains("ResNet")));
    }

    #[test]
    fn comparison_rows_are_self_consistent() {
        let (label, spec) = &sweep_specs()[0];
        let row = comparison_row(label, spec);
        assert!(row.dfe_ms > 0.0 && row.p100_ms > 0.0);
        assert!(row.dfe_j() > 0.0);
        assert!((row.dfe_j() - row.dfe_w * row.dfe_ms / 1e3).abs() < 1e-12);
    }

    #[test]
    fn render_table_pads_columns() {
        let t = render_table(
            &["a", "bbbb"],
            &[vec!["xx".into(), "y".into()], vec!["1".into(), "22222".into()]],
        );
        assert!(t.contains("a   bbbb"));
        assert!(t.lines().count() == 4);
    }
}
