//! The replica autoscaler: a control loop that grows and shrinks each
//! model's replica pool from its live load windows.
//!
//! ## Control law
//!
//! Every tick, for every model, the scaler reads one
//! [`LoadWindow`](qnn_serve::LoadWindow) and classifies it:
//!
//! * **breached** — the window's interactive p95 exceeds `target_p95`,
//!   *or* the backlog exceeds `backlog_per_replica × replicas` (the
//!   backlog test catches pure batch floods, which produce no
//!   interactive samples at all);
//! * **idle** — nothing in flight and nothing new submitted since the
//!   previous tick;
//! * **steady** — otherwise.
//!
//! A pool grows by one replica after `up_hysteresis` *consecutive*
//! breached ticks and shrinks by one after `down_hysteresis` consecutive
//! idle ticks; a steady tick resets both streaks. After any resize the
//! model holds for `cooldown_ticks` ticks. Growth stops at
//! `max_replicas` (and at the cluster-wide `total_budget`, when set);
//! shrink stops at `min_replicas`.
//!
//! ## Why hysteresis + cooldown suffice for stability
//!
//! A single noisy window can look breached (one slow batch) or idle (a
//! gap between arrivals), so acting on one sample oscillates. Requiring a
//! *streak* means a transient of length `< up_hysteresis` ticks never
//! scales; and because a resize resets the streak **and** starts a
//! cooldown longer than the pipeline's flush latency, the loop always
//! observes at least one window produced by the *new* pool shape before
//! acting again — the feedback path never chases its own tail. Up- and
//! down-thresholds are separated (`down_hysteresis` is deliberately the
//! longer default), giving the classic asymmetric deadband: quick to add
//! capacity when latency is burning, slow to give it back.

use crate::config::AutoscalerConfig;
use qnn_serve::{LoadWindow, Server};
use std::sync::atomic::{AtomicBool, Ordering};
use std::thread;

/// One resize the autoscaler performed (its audit trail; the pool change
/// itself already happened via `Server::resize_pool`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScaleAction {
    /// Grew `model` from `from` to `to` replicas.
    Up {
        /// The scaled model.
        model: String,
        /// Pool size before.
        from: usize,
        /// Pool size after.
        to: usize,
    },
    /// Shrank `model` from `from` to `to` replicas.
    Down {
        /// The scaled model.
        model: String,
        /// Pool size before.
        from: usize,
        /// Pool size after.
        to: usize,
    },
}

/// Per-model control-loop state.
struct ModelState {
    model: String,
    breach_streak: u32,
    idle_streak: u32,
    cooldown: u32,
    last_submitted: u64,
}

/// The control loop. Drive it manually with [`Autoscaler::tick`] (tests,
/// custom pacing) or hand it a thread with [`Autoscaler::run`].
pub struct Autoscaler {
    config: AutoscalerConfig,
    states: Vec<ModelState>,
}

impl Autoscaler {
    /// An autoscaler managing every model registered on `server`.
    pub fn new(config: AutoscalerConfig, server: &Server) -> Autoscaler {
        let states = server
            .models()
            .into_iter()
            .map(|model| ModelState {
                model,
                breach_streak: 0,
                idle_streak: 0,
                cooldown: 0,
                last_submitted: 0,
            })
            .collect();
        Autoscaler { config, states }
    }

    /// The config the loop runs under.
    pub fn config(&self) -> &AutoscalerConfig {
        &self.config
    }

    /// One control tick: sample every model's window, update streaks, and
    /// apply at most one resize per model. Returns the resizes performed.
    pub fn tick(&mut self, server: &Server) -> Vec<ScaleAction> {
        let mut actions = Vec::new();
        // Exactly one window read per model per tick — reading drains the
        // interactive sample buffer, so a second read would see an empty
        // window.
        let windows: Vec<Option<LoadWindow>> =
            self.states.iter().map(|s| server.load_window(&s.model)).collect();
        // Budget check sums the *current* pool sizes across all managed
        // models — a grow is refused when it would push the sum past the
        // shared hardware budget.
        let mut total: usize = windows.iter().flatten().map(|w| w.replicas).sum();
        for (state, window) in self.states.iter_mut().zip(windows) {
            let Some(window) = window else { continue };
            let replicas = window.replicas;

            let breached = window
                .interactive
                .map(|l| l.p95 > self.config.target_p95)
                .unwrap_or(false)
                || window.in_flight > self.config.backlog_per_replica * replicas as u64;
            let idle = window.in_flight == 0 && window.submitted == state.last_submitted;
            state.last_submitted = window.submitted;

            if breached {
                state.breach_streak += 1;
                state.idle_streak = 0;
            } else if idle {
                state.idle_streak += 1;
                state.breach_streak = 0;
            } else {
                state.breach_streak = 0;
                state.idle_streak = 0;
            }

            if state.cooldown > 0 {
                state.cooldown -= 1;
                continue;
            }

            let budget_ok = self.config.total_budget.map(|b| total < b).unwrap_or(true);
            if state.breach_streak >= self.config.up_hysteresis
                && replicas < self.config.max_replicas
                && budget_ok
            {
                if let Ok((from, to)) = server.resize_pool(&state.model, replicas + 1) {
                    total += to - from;
                    actions.push(ScaleAction::Up { model: state.model.clone(), from, to });
                    state.breach_streak = 0;
                    state.cooldown = self.config.cooldown_ticks;
                }
            } else if state.idle_streak >= self.config.down_hysteresis
                && replicas > self.config.min_replicas
            {
                if let Ok((from, to)) = server.resize_pool(&state.model, replicas - 1) {
                    total -= from - to;
                    actions.push(ScaleAction::Down { model: state.model.clone(), from, to });
                    state.idle_streak = 0;
                    state.cooldown = self.config.cooldown_ticks;
                }
            }
        }
        actions
    }

    /// Run ticks every `config.interval` until `stop` is set (check beat
    /// = one interval). Returns every action taken, in order.
    pub fn run(mut self, server: &Server, stop: &AtomicBool) -> Vec<ScaleAction> {
        let mut actions = Vec::new();
        while !stop.load(Ordering::Acquire) {
            actions.extend(self.tick(server));
            thread::sleep(self.config.interval);
        }
        actions
    }
}
