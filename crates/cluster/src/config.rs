//! Cluster configuration: the router's sharding/spillover knobs and the
//! shared validation error both the router and the autoscaler report
//! through (the same typed-builder pattern as `qnn_serve::ConfigError`).

use std::fmt;
use std::time::Duration;

/// Why a cluster configuration (router or autoscaler) was refused.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClusterConfigError {
    /// A router was built over zero backends.
    ZeroBackends,
    /// `vnodes == 0` — the consistent-hash ring would be empty, so no
    /// model name could ever resolve to a backend.
    EmptyHashRing,
    /// `spill_threshold == 0` — every backend would count as saturated
    /// before its first request, degenerating spillover into pure
    /// least-loaded dispatch.
    ZeroSpillThreshold,
    /// `min_replicas == 0` — the autoscaler may never scale a pool to
    /// zero (the serving runtime refuses zero-replica pools).
    MinReplicasZero,
    /// `min_replicas > max_replicas` — the replica bounds cross.
    MinExceedsMax {
        /// The configured floor.
        min: usize,
        /// The configured ceiling.
        max: usize,
    },
    /// `interval` is zero — the control loop would spin.
    ZeroInterval,
    /// An hysteresis window of zero ticks — the autoscaler would react to
    /// a single noisy sample, oscillating between grow and shrink.
    ZeroHysteresis,
}

impl fmt::Display for ClusterConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterConfigError::ZeroBackends => {
                write!(f, "a router needs at least one backend")
            }
            ClusterConfigError::EmptyHashRing => {
                write!(f, "vnodes must be positive; an empty hash ring routes nothing")
            }
            ClusterConfigError::ZeroSpillThreshold => {
                write!(f, "spill_threshold must be positive")
            }
            ClusterConfigError::MinReplicasZero => {
                write!(f, "min_replicas must be at least 1 (pools cannot be empty)")
            }
            ClusterConfigError::MinExceedsMax { min, max } => {
                write!(f, "min_replicas {min} exceeds max_replicas {max}")
            }
            ClusterConfigError::ZeroInterval => {
                write!(f, "the control interval must be positive")
            }
            ClusterConfigError::ZeroHysteresis => {
                write!(f, "hysteresis windows must be at least 1 tick")
            }
        }
    }
}

impl std::error::Error for ClusterConfigError {}

/// Sharding and spillover knobs for [`crate::Router`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RouterConfig {
    /// Virtual nodes per backend on the consistent-hash ring. More vnodes
    /// smooth the shard distribution; 16 is plenty for single-digit
    /// backend counts.
    pub vnodes: usize,
    /// Queue depth (in-flight requests) at which a backend counts as
    /// saturated and new traffic spills to the next ring node.
    pub spill_threshold: u64,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self { vnodes: 16, spill_threshold: 8 }
    }
}

impl RouterConfig {
    /// Start a builder from the defaults.
    pub fn builder() -> RouterConfigBuilder {
        RouterConfigBuilder { config: Self::default() }
    }

    /// Check the invariants the router relies on.
    pub fn validate(&self) -> Result<(), ClusterConfigError> {
        if self.vnodes == 0 {
            return Err(ClusterConfigError::EmptyHashRing);
        }
        if self.spill_threshold == 0 {
            return Err(ClusterConfigError::ZeroSpillThreshold);
        }
        Ok(())
    }
}

/// Builder for [`RouterConfig`]; `build` validates.
#[derive(Clone, Debug)]
pub struct RouterConfigBuilder {
    config: RouterConfig,
}

impl RouterConfigBuilder {
    /// Virtual nodes per backend on the hash ring.
    pub fn vnodes(mut self, vnodes: usize) -> Self {
        self.config.vnodes = vnodes;
        self
    }

    /// Queue depth at which spillover engages.
    pub fn spill_threshold(mut self, depth: u64) -> Self {
        self.config.spill_threshold = depth;
        self
    }

    /// Validate and produce the config.
    pub fn build(self) -> Result<RouterConfig, ClusterConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// Replica bounds and control-law knobs for [`crate::Autoscaler`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AutoscalerConfig {
    /// Per-model replica floor (never scaled below).
    pub min_replicas: usize,
    /// Per-model replica ceiling (never scaled above).
    pub max_replicas: usize,
    /// Optional cap on the *sum* of replicas across all scaled models —
    /// the fixed hardware budget the cluster shares. `None` leaves only
    /// the per-model ceiling.
    pub total_budget: Option<usize>,
    /// Interactive p95 the control loop defends; a window whose p95
    /// exceeds this counts as a breach.
    pub target_p95: Duration,
    /// Backlog a single replica is expected to absorb: `in_flight >
    /// backlog_per_replica * replicas` also counts as a breach, so purely
    /// batch-class floods (which produce no interactive samples) still
    /// trigger scaling.
    pub backlog_per_replica: u64,
    /// Wall-clock spacing of control ticks in [`crate::Autoscaler::run`].
    pub interval: Duration,
    /// Consecutive breached ticks required before growing a pool.
    pub up_hysteresis: u32,
    /// Consecutive idle ticks required before shrinking a pool.
    pub down_hysteresis: u32,
    /// Ticks to hold after any resize before acting again, letting the
    /// new pool shape show up in the next windows.
    pub cooldown_ticks: u32,
}

impl Default for AutoscalerConfig {
    fn default() -> Self {
        Self {
            min_replicas: 1,
            max_replicas: 4,
            total_budget: None,
            target_p95: Duration::from_millis(20),
            backlog_per_replica: 8,
            interval: Duration::from_millis(20),
            up_hysteresis: 2,
            down_hysteresis: 4,
            cooldown_ticks: 2,
        }
    }
}

impl AutoscalerConfig {
    /// Start a builder from the defaults.
    pub fn builder() -> AutoscalerConfigBuilder {
        AutoscalerConfigBuilder { config: Self::default() }
    }

    /// Check the invariants the control loop relies on.
    pub fn validate(&self) -> Result<(), ClusterConfigError> {
        if self.min_replicas == 0 {
            return Err(ClusterConfigError::MinReplicasZero);
        }
        if self.min_replicas > self.max_replicas {
            return Err(ClusterConfigError::MinExceedsMax {
                min: self.min_replicas,
                max: self.max_replicas,
            });
        }
        if self.interval.is_zero() {
            return Err(ClusterConfigError::ZeroInterval);
        }
        if self.up_hysteresis == 0 || self.down_hysteresis == 0 {
            return Err(ClusterConfigError::ZeroHysteresis);
        }
        Ok(())
    }
}

/// Builder for [`AutoscalerConfig`]; `build` validates.
#[derive(Clone, Debug)]
pub struct AutoscalerConfigBuilder {
    config: AutoscalerConfig,
}

impl AutoscalerConfigBuilder {
    /// Per-model replica floor.
    pub fn min_replicas(mut self, min: usize) -> Self {
        self.config.min_replicas = min;
        self
    }

    /// Per-model replica ceiling.
    pub fn max_replicas(mut self, max: usize) -> Self {
        self.config.max_replicas = max;
        self
    }

    /// Cap on the summed replica count across scaled models.
    pub fn total_budget(mut self, budget: usize) -> Self {
        self.config.total_budget = Some(budget);
        self
    }

    /// Interactive p95 to defend.
    pub fn target_p95(mut self, target: Duration) -> Self {
        self.config.target_p95 = target;
        self
    }

    /// Backlog one replica is expected to absorb.
    pub fn backlog_per_replica(mut self, backlog: u64) -> Self {
        self.config.backlog_per_replica = backlog;
        self
    }

    /// Control-tick spacing for the blocking loop.
    pub fn interval(mut self, interval: Duration) -> Self {
        self.config.interval = interval;
        self
    }

    /// Breached ticks before growing.
    pub fn up_hysteresis(mut self, ticks: u32) -> Self {
        self.config.up_hysteresis = ticks;
        self
    }

    /// Idle ticks before shrinking.
    pub fn down_hysteresis(mut self, ticks: u32) -> Self {
        self.config.down_hysteresis = ticks;
        self
    }

    /// Hold-off ticks after a resize.
    pub fn cooldown_ticks(mut self, ticks: u32) -> Self {
        self.config.cooldown_ticks = ticks;
        self
    }

    /// Validate and produce the config.
    pub fn build(self) -> Result<AutoscalerConfig, ClusterConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        assert_eq!(RouterConfig::default().validate(), Ok(()));
        assert_eq!(AutoscalerConfig::default().validate(), Ok(()));
    }

    #[test]
    fn router_rejects_degenerate_knobs() {
        assert_eq!(
            RouterConfig::builder().vnodes(0).build(),
            Err(ClusterConfigError::EmptyHashRing)
        );
        assert_eq!(
            RouterConfig::builder().spill_threshold(0).build(),
            Err(ClusterConfigError::ZeroSpillThreshold)
        );
    }

    #[test]
    fn autoscaler_rejects_crossed_bounds() {
        assert_eq!(
            AutoscalerConfig::builder().min_replicas(0).build(),
            Err(ClusterConfigError::MinReplicasZero)
        );
        assert_eq!(
            AutoscalerConfig::builder().min_replicas(5).max_replicas(2).build(),
            Err(ClusterConfigError::MinExceedsMax { min: 5, max: 2 })
        );
        assert_eq!(
            AutoscalerConfig::builder().interval(Duration::ZERO).build(),
            Err(ClusterConfigError::ZeroInterval)
        );
        assert_eq!(
            AutoscalerConfig::builder().up_hysteresis(0).build(),
            Err(ClusterConfigError::ZeroHysteresis)
        );
        assert_eq!(
            AutoscalerConfig::builder().down_hysteresis(0).build(),
            Err(ClusterConfigError::ZeroHysteresis)
        );
    }

    #[test]
    fn errors_render() {
        let errors = [
            ClusterConfigError::ZeroBackends,
            ClusterConfigError::EmptyHashRing,
            ClusterConfigError::ZeroSpillThreshold,
            ClusterConfigError::MinReplicasZero,
            ClusterConfigError::MinExceedsMax { min: 3, max: 1 },
            ClusterConfigError::ZeroInterval,
            ClusterConfigError::ZeroHysteresis,
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }
}
