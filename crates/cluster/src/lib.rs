//! `qnn-cluster` — the network and cluster layer over `qnn-serve`: a
//! wire protocol with a TCP edge, a sharding router, and a replica
//! autoscaler.
//!
//! The paper's dataflow platform scales out by putting **several**
//! accelerator cards behind one deployment; this crate is the host-side
//! machinery that makes a fleet of serving runtimes look like one
//! endpoint, in three layers (each usable alone):
//!
//! * **[`wire`]** + **[`NetServer`]/[`NetClient`]** — a versioned,
//!   length-prefixed binary frame format with strict, typed decoding
//!   ([`WireError`]; adversarial bytes never panic), and a TCP edge that
//!   submits decoded requests straight into a wrapped
//!   [`Server`](qnn_serve::Server). Responses stream back **out of
//!   order** by request id, and [`NetServer::shutdown`] reuses the
//!   runtime's drain, returning the usual
//!   [`ServerReport`](qnn_serve::ServerReport) with its admission-ledger
//!   guarantee intact. A single-backend edge is bit-identical to the
//!   in-process client: same logits, same weight-version semantics.
//! * **[`Router`]** — consistent hashing on the model name shards
//!   traffic across backends (local clients or remote connections
//!   behind one [`Backend`] enum), spilling to the next ring node when
//!   the primary's queue depth crosses the configured threshold, and
//!   respecting per-backend health ([`BackendHealth::Draining`] backends
//!   finish their work but take no new traffic).
//! * **[`Autoscaler`]** — a control loop over the serving runtime's live
//!   [`LoadWindow`](qnn_serve::LoadWindow)s that grows a model's replica
//!   pool when interactive p95 or backlog breaches its target and
//!   shrinks it when the model goes idle, with hysteresis and cooldown
//!   so a noisy window never causes oscillation (see [`autoscale`] for
//!   the stability argument).
//!
//! Everything is `std`-only (`std::net` + `std::thread`), per the
//! workspace's hermetic-build policy.
//!
//! ## Example: loopback edge, remote client
//!
//! ```
//! use qnn_cluster::{NetClient, NetServer};
//! use qnn_nn::{models, Network};
//! use qnn_serve::{Server, SubmitOptions};
//! use qnn_tensor::{Shape3, Tensor3};
//!
//! let net = Network::random(models::test_net(8, 4, 2), 42);
//! let server = Server::builder().model("mnist", &net).start().expect("valid server");
//! let edge = NetServer::bind(server, "127.0.0.1:0").expect("bind loopback");
//!
//! let client = NetClient::connect(edge.local_addr()).expect("connect");
//! let img = Tensor3::from_fn(Shape3::square(8, 3), |y, x, c| ((y * 31 + x * 7 + c) % 255) as i8);
//! let ticket = client.submit(img, SubmitOptions::model("mnist")).expect("submit");
//! let response = ticket.wait().expect("answered");
//! assert_eq!(response.logits.len(), 4);
//!
//! drop(client);
//! let report = edge.shutdown();
//! assert_eq!(report.completed, 1);
//! ```

pub mod autoscale;
pub mod config;
pub mod net;
pub mod router;
pub mod wire;

pub use autoscale::{Autoscaler, ScaleAction};
pub use config::{
    AutoscalerConfig, AutoscalerConfigBuilder, ClusterConfigError, RouterConfig,
    RouterConfigBuilder,
};
pub use net::{NetClient, NetError, NetResponse, NetServer, NetTicket};
pub use router::{
    Backend, BackendHealth, BackendStats, RouteDropped, RouteError, RouteResponse, RouteTicket,
    Router,
};
pub use wire::{
    ErrorCode, ErrorFrame, Frame, FrameBuffer, RequestFrame, ResponseFrame, WireError, MAGIC,
    MAX_FRAME, NO_REQUEST, VERSION,
};
