//! The TCP edge: [`NetServer`] exposes an in-process `qnn_serve::Server`
//! over the wire protocol, [`NetClient`] speaks it from the other end.
//!
//! Threading model, per connection:
//!
//! * a **reader** thread decodes frames out of a [`FrameBuffer`] and
//!   submits each request straight into the wrapped server (so admission,
//!   batching, and scheduling are exactly the in-process paths — the edge
//!   adds no queueing of its own);
//! * a **completion** thread holds the resulting tickets and writes each
//!   response the moment its ticket resolves — **out of order** by
//!   request id, so one slow batch never head-of-line-blocks the
//!   connection.
//!
//! Reads run under a short timeout so every blocked thread notices the
//! server's stop flag; the [`FrameBuffer`] keeps partial frames across
//! those timeouts, so a read boundary mid-frame loses nothing.
//!
//! [`NetServer::shutdown`] reuses the serving runtime's drain: it stops
//! the edge threads first, then drains the wrapped server, returning the
//! same [`ServerReport`] (with its admission-ledger guarantee) an
//! in-process deployment gets.

use crate::wire::{
    ErrorCode, ErrorFrame, Frame, FrameBuffer, RequestFrame, ResponseFrame, NO_REQUEST,
};
use qnn_compiler::Logits;
use qnn_serve::{
    Client, Dropped, Response, Server, ServerReport, SubmitError, SubmitOptions, Ticket,
};
use qnn_tensor::Tensor3;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Socket read timeout: the beat at which blocked reader threads check
/// the stop flag.
const READ_TIMEOUT: Duration = Duration::from_millis(50);
/// Read chunk size; frames larger than this reassemble across reads.
const READ_BUF: usize = 64 * 1024;
/// Bounded ticket hand-off between a connection's reader and its
/// completion thread; filling it backpressures the reader (and through
/// it, the TCP window) instead of buffering unboundedly.
const PENDING_DEPTH: usize = 1024;
/// Default [`NetServer`] guard against tickets that never resolve.
const DEFAULT_RESPONSE_TIMEOUT: Duration = Duration::from_secs(30);

/// A TCP front-end wrapping a [`Server`]. Dropping without
/// [`NetServer::shutdown`] leaks the report, so call it.
pub struct NetServer {
    server: Server,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: JoinHandle<()>,
}

impl NetServer {
    /// Bind `addr` (use port 0 for an OS-assigned loopback port) and
    /// start accepting connections for `server`.
    pub fn bind(server: Server, addr: impl ToSocketAddrs) -> io::Result<NetServer> {
        Self::bind_with(server, addr, DEFAULT_RESPONSE_TIMEOUT)
    }

    /// [`NetServer::bind`] with an explicit response timeout: a request
    /// whose ticket is still unresolved after this long is answered with
    /// [`ErrorCode::Timeout`] instead of pinning its connection forever.
    pub fn bind_with(
        server: Server,
        addr: impl ToSocketAddrs,
        response_timeout: Duration,
    ) -> io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let client = server.client();
        let accept = thread::Builder::new().name("qnn-net-accept".into()).spawn({
            let stop = Arc::clone(&stop);
            move || accept_loop(listener, client, stop, response_timeout)
        })?;
        Ok(NetServer { server, addr, stop, accept })
    }

    /// The bound address clients connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The wrapped serving runtime — weight publishes, pool resizes, and
    /// load windows go through here while the edge runs.
    pub fn server(&self) -> &Server {
        &self.server
    }

    /// Stop accepting, drain every connection's in-flight requests, then
    /// drain the wrapped server — the same end-state guarantees as
    /// [`Server::shutdown`], returned as the same [`ServerReport`].
    pub fn shutdown(self) -> ServerReport {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let _ = self.accept.join();
        self.server.shutdown()
    }
}

fn accept_loop(
    listener: TcpListener,
    client: Client,
    stop: Arc<AtomicBool>,
    response_timeout: Duration,
) {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    for incoming in listener.incoming() {
        if stop.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = incoming else { continue };
        let spawned = thread::Builder::new().name("qnn-net-conn".into()).spawn({
            let client = client.clone();
            let stop = Arc::clone(&stop);
            move || serve_conn(stream, client, stop, response_timeout)
        });
        if let Ok(handle) = spawned {
            conns.push(handle);
        }
        // Reap connections that already finished (handles of live ones
        // are kept for the final join).
        conns.retain(|h| !h.is_finished());
    }
    for handle in conns {
        let _ = handle.join();
    }
}

/// A ticket awaiting its response, tagged with the *wire* request id (the
/// client's id space, distinct from the server's internal ids).
struct Pending {
    wire_id: u64,
    ticket: Ticket,
    since: Instant,
}

fn serve_conn(
    stream: TcpStream,
    client: Client,
    stop: Arc<AtomicBool>,
    response_timeout: Duration,
) {
    if stream.set_read_timeout(Some(READ_TIMEOUT)).is_err() {
        return;
    }
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else { return };
    let writer = Arc::new(Mutex::new(write_half));
    let (tx, rx) = sync_channel::<Pending>(PENDING_DEPTH);
    let completion = thread::Builder::new().name("qnn-net-completion".into()).spawn({
        let writer = Arc::clone(&writer);
        move || completion_loop(rx, writer, response_timeout)
    });
    let Ok(completion) = completion else { return };

    let mut reader = stream;
    let mut frames = FrameBuffer::new();
    let mut chunk = [0u8; READ_BUF];
    'conn: while !stop.load(Ordering::Acquire) {
        match reader.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                frames.feed(&chunk[..n]);
                loop {
                    match frames.next_frame() {
                        Ok(None) => break,
                        Ok(Some(Frame::Request(req))) => {
                            if !handle_request(req, &client, &writer, &tx) {
                                break 'conn;
                            }
                        }
                        Ok(Some(_)) => {
                            // Only requests flow client → server.
                            write_frame(
                                &writer,
                                &error_frame(
                                    NO_REQUEST,
                                    ErrorCode::BadRequest,
                                    "only request frames flow client to server",
                                ),
                            );
                            break 'conn;
                        }
                        Err(e) => {
                            // An undecodable frame poisons the stream;
                            // report it and drop the connection.
                            write_frame(
                                &writer,
                                &error_frame(NO_REQUEST, ErrorCode::BadRequest, &e.to_string()),
                            );
                            break 'conn;
                        }
                    }
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        }
    }
    // Closing the hand-off lets the completion thread drain what is
    // already in flight and exit; admitted requests still resolve inside
    // the server, so the admission ledger balances even when the peer
    // disconnected mid-request.
    drop(tx);
    let _ = completion.join();
    let _ = reader.shutdown(Shutdown::Both);
}

/// Submit one decoded request. Returns `false` when the connection should
/// drop (the completion thread is gone).
fn handle_request(
    req: RequestFrame,
    client: &Client,
    writer: &Arc<Mutex<TcpStream>>,
    tx: &SyncSender<Pending>,
) -> bool {
    let RequestFrame { id: wire_id, model, priority, deadline_us, image } = req;
    let opts = SubmitOptions {
        model: if model.is_empty() { None } else { Some(model) },
        priority,
        deadline: deadline_us.map(Duration::from_micros),
    };
    match client.submit_with(image, opts) {
        Ok(ticket) => tx.send(Pending { wire_id, ticket, since: Instant::now() }).is_ok(),
        Err(e) => {
            let code = match &e {
                SubmitError::QueueFull(_) => ErrorCode::Rejected,
                SubmitError::UnknownModel { .. } => ErrorCode::UnknownModel,
                SubmitError::AmbiguousModel(_) => ErrorCode::BadRequest,
                SubmitError::Stopped => ErrorCode::Stopped,
            };
            write_frame(writer, &error_frame(wire_id, code, &e.to_string()));
            true
        }
    }
}

/// Stream responses back as tickets resolve, in resolution order — not
/// submission order.
fn completion_loop(
    rx: Receiver<Pending>,
    writer: Arc<Mutex<TcpStream>>,
    response_timeout: Duration,
) {
    let mut pending: Vec<Pending> = Vec::new();
    // Once a write fails the peer is gone; keep draining tickets (they
    // resolve inside the server regardless) but stop writing.
    let mut peer_alive = true;
    loop {
        if pending.is_empty() {
            // Idle: block until the reader hands over a ticket (or goes
            // away, which ends the connection's completion work).
            match rx.recv() {
                Ok(p) => pending.push(p),
                Err(_) => return,
            }
        }
        while let Ok(p) = rx.try_recv() {
            pending.push(p);
        }
        // Park briefly on the oldest ticket, then sweep the rest without
        // blocking — resolution order, not submission order.
        let head = pending[0].ticket.wait_timeout(Duration::from_millis(5));
        let mut done: Vec<usize> = Vec::new();
        if let Some(resolution) = head {
            if peer_alive && !write_resolution(&writer, pending[0].wire_id, resolution) {
                peer_alive = false;
            }
            done.push(0);
        }
        for (i, p) in pending.iter().enumerate().skip(1) {
            if let Some(resolution) = p.ticket.try_wait() {
                if peer_alive && !write_resolution(&writer, p.wire_id, resolution) {
                    peer_alive = false;
                }
                done.push(i);
            }
        }
        // Guard against tickets that will never resolve (e.g. a lost
        // worker): answer Timeout and forget them.
        for (i, p) in pending.iter().enumerate() {
            if !done.contains(&i) && p.since.elapsed() > response_timeout {
                if peer_alive {
                    write_frame(
                        &writer,
                        &error_frame(p.wire_id, ErrorCode::Timeout, "response timed out"),
                    );
                }
                done.push(i);
            }
        }
        done.sort_unstable();
        for i in done.into_iter().rev() {
            pending.remove(i);
        }
    }
}

/// Write one resolved ticket back; `false` when the peer is gone.
fn write_resolution(
    writer: &Arc<Mutex<TcpStream>>,
    wire_id: u64,
    resolution: Result<Response, Dropped>,
) -> bool {
    let frame = match resolution {
        Ok(resp) => Frame::Response(ResponseFrame {
            id: wire_id,
            weight_version: resp.stats.weight_version,
            replica: resp.stats.replica as u32,
            batch_size: resp.stats.batch_size as u32,
            logits: resp.logits,
        }),
        Err(Dropped::Deadline) => {
            error_frame(wire_id, ErrorCode::DeadlineShed, &Dropped::Deadline.to_string())
        }
        Err(Dropped::Stopped) => {
            error_frame(wire_id, ErrorCode::Stopped, &Dropped::Stopped.to_string())
        }
    };
    write_frame(writer, &frame)
}

fn error_frame(id: u64, code: ErrorCode, message: &str) -> Frame {
    Frame::Error(ErrorFrame { id, code, message: message.to_string() })
}

/// Serialize one frame onto the shared write half; `false` on any I/O
/// error (the peer hung up).
fn write_frame(writer: &Arc<Mutex<TcpStream>>, frame: &Frame) -> bool {
    let bytes = frame.encode();
    let mut stream = writer.lock().expect("connection writer poisoned");
    stream.write_all(&bytes).is_ok()
}

// ---------------------------------------------------------------------------
// Client side
// ---------------------------------------------------------------------------

/// Why a [`NetTicket`] resolved without a [`NetResponse`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetError {
    /// The server answered with an error frame.
    Remote {
        /// Machine-readable reason.
        code: ErrorCode,
        /// Human-readable detail from the server.
        message: String,
    },
    /// The connection died before the request was answered.
    Disconnected,
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Remote { code, message } => write!(f, "remote error {code:?}: {message}"),
            NetError::Disconnected => write!(f, "connection closed before the response"),
        }
    }
}

impl std::error::Error for NetError {}

/// One completed remote inference.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NetResponse {
    /// The request id this answers (client-assigned).
    pub id: u64,
    /// Weight version the batch ran on.
    pub weight_version: u64,
    /// Global replica id that executed the batch.
    pub replica: u32,
    /// Batch occupancy the request rode in.
    pub batch_size: u32,
    /// The image's logits.
    pub logits: Vec<i32>,
}

impl NetResponse {
    /// Index of the winning class (shared `Logits` tie-breaking: lowest
    /// index wins — bit-identical to the in-process path).
    pub fn argmax(&self) -> usize {
        Logits::new(&self.logits).argmax()
    }
}

type Resolution = Result<NetResponse, NetError>;

/// Claim ticket for an in-flight remote request.
pub struct NetTicket {
    id: u64,
    rx: Receiver<Resolution>,
}

impl NetTicket {
    /// The client-assigned request id this ticket redeems.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Block until the response (or error) arrives.
    pub fn wait(self) -> Resolution {
        self.rx.recv().unwrap_or(Err(NetError::Disconnected))
    }

    /// Bounded wait; `None` while the request is still in flight.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Resolution> {
        match self.rx.recv_timeout(timeout) {
            Ok(resolution) => Some(resolution),
            Err(RecvTimeoutError::Timeout) => None,
            Err(RecvTimeoutError::Disconnected) => Some(Err(NetError::Disconnected)),
        }
    }
}

struct ClientInner {
    writer: Mutex<TcpStream>,
    /// Requests awaiting a response, by client-assigned id. The reader
    /// thread resolves entries as frames arrive — out-of-order safe.
    pending: Mutex<HashMap<u64, SyncSender<Resolution>>>,
    next_id: AtomicU64,
    stop: AtomicBool,
}

/// A wire-protocol client: connect, submit, redeem [`NetTicket`]s.
/// Responses demultiplex by request id, so any number of requests may be
/// in flight and they resolve in whatever order the server answers.
pub struct NetClient {
    inner: Arc<ClientInner>,
    reader: Option<JoinHandle<()>>,
}

impl NetClient {
    /// Connect to a [`NetServer`].
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<NetClient> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let read_half = stream.try_clone()?;
        read_half.set_read_timeout(Some(READ_TIMEOUT))?;
        let inner = Arc::new(ClientInner {
            writer: Mutex::new(stream),
            pending: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(0),
            stop: AtomicBool::new(false),
        });
        let reader = thread::Builder::new().name("qnn-net-client".into()).spawn({
            let inner = Arc::clone(&inner);
            move || client_reader(read_half, inner)
        })?;
        Ok(NetClient { inner, reader: Some(reader) })
    }

    /// Submit one image; `opts` carries the model name, class, and
    /// deadline exactly as for the in-process `Client`.
    pub fn submit(&self, image: Tensor3<i8>, opts: SubmitOptions) -> io::Result<NetTicket> {
        if self.inner.stop.load(Ordering::Acquire) {
            return Err(io::Error::new(io::ErrorKind::NotConnected, "client closed"));
        }
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = sync_channel(1);
        self.inner.pending.lock().expect("pending map poisoned").insert(id, tx);
        let frame = Frame::Request(RequestFrame {
            id,
            model: opts.model.unwrap_or_default(),
            priority: opts.priority,
            deadline_us: opts.deadline.map(|d| d.as_micros() as u64),
            image,
        });
        let bytes = frame.encode();
        let result = {
            let mut writer = self.inner.writer.lock().expect("client writer poisoned");
            writer.write_all(&bytes)
        };
        if let Err(e) = result {
            self.inner.pending.lock().expect("pending map poisoned").remove(&id);
            return Err(e);
        }
        Ok(NetTicket { id, rx })
    }

    /// Requests submitted but not yet answered — the remote analogue of
    /// the in-process `Client::queue_depth`, read by the cluster router's
    /// spillover check.
    pub fn queue_depth(&self) -> u64 {
        self.inner.pending.lock().expect("pending map poisoned").len() as u64
    }

    /// Close the connection; unanswered tickets resolve to
    /// [`NetError::Disconnected`]. Dropping the client does the same.
    pub fn close(self) {
        // Drop runs the teardown.
    }

    fn teardown(&mut self) {
        self.inner.stop.store(true, Ordering::Release);
        {
            let writer = self.inner.writer.lock().expect("client writer poisoned");
            let _ = writer.shutdown(Shutdown::Both);
        }
        if let Some(reader) = self.reader.take() {
            let _ = reader.join();
        }
    }
}

impl Drop for NetClient {
    fn drop(&mut self) {
        self.teardown();
    }
}

fn resolve(inner: &ClientInner, id: u64, resolution: Resolution) {
    let entry = inner.pending.lock().expect("pending map poisoned").remove(&id);
    if let Some(tx) = entry {
        let _ = tx.send(resolution);
    }
}

fn fail_all(inner: &ClientInner, error: NetError) {
    let entries: Vec<_> =
        inner.pending.lock().expect("pending map poisoned").drain().collect();
    for (_, tx) in entries {
        let _ = tx.send(Err(error.clone()));
    }
}

fn client_reader(mut stream: TcpStream, inner: Arc<ClientInner>) {
    let mut frames = FrameBuffer::new();
    let mut chunk = [0u8; READ_BUF];
    while !inner.stop.load(Ordering::Acquire) {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                frames.feed(&chunk[..n]);
                loop {
                    match frames.next_frame() {
                        Ok(None) => break,
                        Ok(Some(Frame::Response(r))) => resolve(
                            &inner,
                            r.id,
                            Ok(NetResponse {
                                id: r.id,
                                weight_version: r.weight_version,
                                replica: r.replica,
                                batch_size: r.batch_size,
                                logits: r.logits,
                            }),
                        ),
                        Ok(Some(Frame::Error(e))) => {
                            let error =
                                NetError::Remote { code: e.code, message: e.message };
                            if e.id == NO_REQUEST {
                                // Connection-level error: everything in
                                // flight fails with it.
                                fail_all(&inner, error);
                                return;
                            }
                            resolve(&inner, e.id, Err(error));
                        }
                        Ok(Some(Frame::Request(_))) | Err(_) => {
                            // A server that sends requests (or garbage)
                            // has lost protocol sync; drop everything.
                            fail_all(&inner, NetError::Disconnected);
                            return;
                        }
                    }
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        }
    }
    fail_all(&inner, NetError::Disconnected);
}
