//! The cluster router: consistent hashing on the model name shards
//! traffic across several backends, with saturation-aware spillover.
//!
//! Each backend contributes `vnodes` points to a hash ring; a model's
//! traffic lands on the first healthy backend at or clockwise of the
//! model's own hash. Consistent hashing keeps that assignment stable as
//! backends come and go — only the shards adjacent to a removed backend
//! move. When the primary's queue depth reaches the spill threshold, the
//! request **spills** to the next distinct healthy ring node instead of
//! queueing behind the saturation; if every backend is saturated, the
//! least-loaded healthy one takes it (spilling exists to route around
//! hotspots, not to reject work — admission control stays with the
//! backends themselves).
//!
//! Health is per-backend: `Draining` backends finish what they have but
//! take no new traffic; `Down` backends are skipped entirely.

use crate::config::{ClusterConfigError, RouterConfig};
use crate::net::{NetClient, NetError, NetResponse, NetTicket};
use crate::wire::ErrorCode;
use qnn_compiler::Logits;
use qnn_serve::{Client, Dropped, Response, SubmitOptions, Ticket};
use qnn_tensor::Tensor3;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One dispatch target: an in-process serving runtime or a remote
/// [`NetServer`](crate::NetServer) spoken to over the wire.
pub enum Backend {
    /// A client handle of an in-process `Server`.
    Local(Client),
    /// A connection to a remote TCP edge.
    Remote(NetClient),
}

impl Backend {
    /// Requests admitted but not yet answered at this backend — the
    /// saturation signal the spillover check reads.
    fn queue_depth(&self) -> u64 {
        match self {
            Backend::Local(client) => client.queue_depth(),
            Backend::Remote(client) => client.queue_depth(),
        }
    }
}

/// Whether a backend takes new traffic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackendHealth {
    /// Takes new traffic.
    Healthy,
    /// Finishes in-flight work but takes no new traffic (the state to put
    /// a backend in before retiring it).
    Draining,
    /// Skipped entirely.
    Down,
}

/// Why the router could not place (or a backend answered without serving)
/// a request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RouteError {
    /// Every backend is `Draining` or `Down`.
    NoHealthyBackend,
    /// [`Router::set_health`] named an unknown backend.
    UnknownBackend(String),
    /// The chosen backend refused the submission (admission rejection,
    /// unknown model, or a stopped runtime — the message says which).
    Refused {
        /// The backend that refused.
        backend: String,
        /// The backend's own error text.
        message: String,
    },
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::NoHealthyBackend => write!(f, "no healthy backend"),
            RouteError::UnknownBackend(name) => {
                write!(f, "no backend named {name:?} is registered")
            }
            RouteError::Refused { backend, message } => {
                write!(f, "backend {backend:?} refused: {message}")
            }
        }
    }
}

impl std::error::Error for RouteError {}

/// Why a routed request resolved without a [`RouteResponse`] — the union
/// of the local and remote drop reasons, normalized so callers handle
/// one type regardless of where the backend lives.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RouteDropped {
    /// Shed at dispatch: the deadline passed before the batch flushed.
    Deadline,
    /// The backend's runtime stopped before answering.
    Stopped,
    /// The remote backend answered with some other error code.
    Remote {
        /// Machine-readable reason.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// The connection to the remote backend died mid-request.
    Disconnected,
}

impl fmt::Display for RouteDropped {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteDropped::Deadline => write!(f, "shed at dispatch: deadline exceeded"),
            RouteDropped::Stopped => write!(f, "backend stopped before answering"),
            RouteDropped::Remote { code, message } => {
                write!(f, "remote error {code:?}: {message}")
            }
            RouteDropped::Disconnected => write!(f, "connection lost mid-request"),
        }
    }
}

impl std::error::Error for RouteDropped {}

/// One completed routed inference, normalized across local and remote
/// backends.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RouteResponse {
    /// Name of the backend that served the request.
    pub backend: String,
    /// Weight version the batch ran on.
    pub weight_version: u64,
    /// The image's logits.
    pub logits: Vec<i32>,
}

impl RouteResponse {
    /// Index of the winning class (shared `Logits` tie-breaking).
    pub fn argmax(&self) -> usize {
        Logits::new(&self.logits).argmax()
    }
}

enum RouteTicketInner {
    Local(Ticket),
    Remote(NetTicket),
}

/// Claim ticket for a routed request.
pub struct RouteTicket {
    backend: String,
    inner: RouteTicketInner,
}

impl RouteTicket {
    /// Name of the backend the request was placed on.
    pub fn backend(&self) -> &str {
        &self.backend
    }

    /// Block until the request resolves.
    pub fn wait(self) -> Result<RouteResponse, RouteDropped> {
        let backend = self.backend;
        match self.inner {
            RouteTicketInner::Local(ticket) => match ticket.wait() {
                Ok(resp) => Ok(local_response(backend, resp)),
                Err(Dropped::Deadline) => Err(RouteDropped::Deadline),
                Err(Dropped::Stopped) => Err(RouteDropped::Stopped),
            },
            RouteTicketInner::Remote(ticket) => match ticket.wait() {
                Ok(resp) => Ok(remote_response(backend, resp)),
                Err(e) => Err(remote_drop(e)),
            },
        }
    }
}

fn local_response(backend: String, resp: Response) -> RouteResponse {
    RouteResponse { backend, weight_version: resp.stats.weight_version, logits: resp.logits }
}

fn remote_response(backend: String, resp: NetResponse) -> RouteResponse {
    RouteResponse { backend, weight_version: resp.weight_version, logits: resp.logits }
}

fn remote_drop(error: NetError) -> RouteDropped {
    match error {
        NetError::Remote { code: ErrorCode::DeadlineShed, .. } => RouteDropped::Deadline,
        NetError::Remote { code: ErrorCode::Stopped, .. } => RouteDropped::Stopped,
        NetError::Remote { code, message } => RouteDropped::Remote { code, message },
        NetError::Disconnected => RouteDropped::Disconnected,
    }
}

/// Routing counters for one backend, snapshotted by [`Router::stats`].
#[derive(Clone, Debug)]
pub struct BackendStats {
    /// Backend name.
    pub name: String,
    /// Current health state.
    pub health: BackendHealth,
    /// Requests placed on this backend (primary + spilled).
    pub routed: u64,
    /// Requests that landed here because their primary was saturated.
    pub spilled_in: u64,
    /// Current queue depth.
    pub queue_depth: u64,
}

struct BackendEntry {
    name: String,
    handle: Backend,
    health: Mutex<BackendHealth>,
    routed: AtomicU64,
    spilled_in: AtomicU64,
}

/// FNV-1a then a splitmix64 finalizer: cheap, deterministic, and well
/// mixed enough that vnode points spread evenly around the ring.
fn hash_str(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    let mut z = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Shards model traffic across backends — see the module docs for the
/// ring, spillover, and health rules.
pub struct Router {
    entries: Vec<BackendEntry>,
    /// `(point, backend index)` sorted by point.
    ring: Vec<(u64, usize)>,
    spill_threshold: u64,
}

impl Router {
    /// Build a router over named backends. Fails with
    /// [`ClusterConfigError::ZeroBackends`] on an empty backend list and
    /// propagates the config's own validation.
    pub fn new(
        config: RouterConfig,
        backends: Vec<(String, Backend)>,
    ) -> Result<Router, ClusterConfigError> {
        config.validate()?;
        if backends.is_empty() {
            return Err(ClusterConfigError::ZeroBackends);
        }
        let entries: Vec<BackendEntry> = backends
            .into_iter()
            .map(|(name, handle)| BackendEntry {
                name,
                handle,
                health: Mutex::new(BackendHealth::Healthy),
                routed: AtomicU64::new(0),
                spilled_in: AtomicU64::new(0),
            })
            .collect();
        let mut ring = Vec::with_capacity(entries.len() * config.vnodes);
        for (idx, entry) in entries.iter().enumerate() {
            for vnode in 0..config.vnodes {
                ring.push((hash_str(&format!("{}/{vnode}", entry.name)), idx));
            }
        }
        ring.sort_unstable();
        Ok(Router { entries, ring, spill_threshold: config.spill_threshold })
    }

    /// Backend names, in registration order.
    pub fn backends(&self) -> Vec<String> {
        self.entries.iter().map(|e| e.name.clone()).collect()
    }

    /// Set a backend's health state.
    pub fn set_health(&self, backend: &str, health: BackendHealth) -> Result<(), RouteError> {
        let entry = self
            .entries
            .iter()
            .find(|e| e.name == backend)
            .ok_or_else(|| RouteError::UnknownBackend(backend.to_string()))?;
        *entry.health.lock().expect("health state poisoned") = health;
        Ok(())
    }

    /// A backend's current health state.
    pub fn health(&self, backend: &str) -> Result<BackendHealth, RouteError> {
        let entry = self
            .entries
            .iter()
            .find(|e| e.name == backend)
            .ok_or_else(|| RouteError::UnknownBackend(backend.to_string()))?;
        Ok(*entry.health.lock().expect("health state poisoned"))
    }

    /// The healthy backends a request for `model` would consider, in ring
    /// order starting at the model's shard: the first entry is the
    /// primary, the rest are spill candidates.
    fn candidates(&self, model: &str) -> Vec<usize> {
        let point = hash_str(model);
        let start = self.ring.partition_point(|&(p, _)| p < point);
        let mut seen = Vec::new();
        for i in 0..self.ring.len() {
            let (_, idx) = self.ring[(start + i) % self.ring.len()];
            if seen.contains(&idx) {
                continue;
            }
            let health = *self.entries[idx].health.lock().expect("health state poisoned");
            if health == BackendHealth::Healthy {
                seen.push(idx);
            }
        }
        seen
    }

    /// The backend a request for `model` goes to right now: the model's
    /// shard primary, unless saturation spills it. Returns
    /// `(backend index, spilled)`.
    fn place(&self, model: &str) -> Result<(usize, bool), RouteError> {
        let candidates = self.candidates(model);
        let Some(&primary) = candidates.first() else {
            return Err(RouteError::NoHealthyBackend);
        };
        if self.entries[primary].handle.queue_depth() < self.spill_threshold {
            return Ok((primary, false));
        }
        for &idx in &candidates[1..] {
            if self.entries[idx].handle.queue_depth() < self.spill_threshold {
                return Ok((idx, true));
            }
        }
        // Everyone is saturated: take the least-loaded healthy backend
        // (ties to ring order) rather than refusing outright.
        let least = candidates
            .iter()
            .copied()
            .min_by_key(|&idx| self.entries[idx].handle.queue_depth())
            .expect("candidates non-empty");
        Ok((least, least != primary))
    }

    /// Which backend a request for `model` would be placed on right now
    /// (no submission) — exposed for tests and operational introspection.
    pub fn route(&self, model: &str) -> Result<String, RouteError> {
        self.place(model).map(|(idx, _)| self.entries[idx].name.clone())
    }

    /// Place and submit one request. The model name in `opts` drives the
    /// shard; requests without a model name hash the empty string (fine
    /// for single-model clusters, where every backend serves it anyway).
    pub fn submit(
        &self,
        image: Tensor3<i8>,
        opts: SubmitOptions,
    ) -> Result<RouteTicket, RouteError> {
        let model = opts.model.clone().unwrap_or_default();
        let (idx, spilled) = self.place(&model)?;
        let entry = &self.entries[idx];
        let ticket = match &entry.handle {
            Backend::Local(client) => match client.submit_with(image, opts) {
                Ok(ticket) => RouteTicketInner::Local(ticket),
                Err(e) => {
                    return Err(RouteError::Refused {
                        backend: entry.name.clone(),
                        message: e.to_string(),
                    })
                }
            },
            Backend::Remote(client) => match client.submit(image, opts) {
                Ok(ticket) => RouteTicketInner::Remote(ticket),
                Err(e) => {
                    return Err(RouteError::Refused {
                        backend: entry.name.clone(),
                        message: e.to_string(),
                    })
                }
            },
        };
        entry.routed.fetch_add(1, Ordering::Relaxed);
        if spilled {
            entry.spilled_in.fetch_add(1, Ordering::Relaxed);
        }
        Ok(RouteTicket { backend: entry.name.clone(), inner: ticket })
    }

    /// Snapshot the per-backend routing counters.
    pub fn stats(&self) -> Vec<BackendStats> {
        self.entries
            .iter()
            .map(|e| BackendStats {
                name: e.name.clone(),
                health: *e.health.lock().expect("health state poisoned"),
                routed: e.routed.load(Ordering::Relaxed),
                spilled_in: e.spilled_in.load(Ordering::Relaxed),
                queue_depth: e.handle.queue_depth(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic_and_spread() {
        assert_eq!(hash_str("mnist"), hash_str("mnist"));
        assert_ne!(hash_str("mnist"), hash_str("cifar"));
        // Vnode points of two backends interleave rather than clustering.
        let mut points: Vec<(u64, usize)> = Vec::new();
        for (idx, name) in ["a", "b"].iter().enumerate() {
            for v in 0..16 {
                points.push((hash_str(&format!("{name}/{v}")), idx));
            }
        }
        points.sort_unstable();
        let firsts = points.iter().filter(|&&(_, idx)| idx == 0).count();
        assert_eq!(firsts, 16);
        // At least one adjacency switches owners — i.e. not all of one
        // backend's points before all of the other's.
        assert!(points.windows(2).any(|w| w[0].1 != w[1].1));
    }
}
