//! The wire protocol: a versioned, length-prefixed binary frame format
//! shared by [`crate::NetServer`] and [`crate::NetClient`].
//!
//! Layout on the wire (all integers big-endian):
//!
//! ```text
//! [u32 body length] [body]
//!
//! body := magic "QN" (2) | version u8 | kind u8 | payload
//!
//! Request  payload: id u64 | priority u8 | deadline flag u8 |
//!                   deadline µs u64 | model len u16 | model bytes |
//!                   h u32 | w u32 | c u32 | pixels (h·w·c bytes, i8)
//! Response payload: id u64 | weight version u64 | replica u32 |
//!                   batch size u32 | logit count u32 | logits (i32 each)
//! Error    payload: id u64 | code u8 | message len u16 | message bytes
//! ```
//!
//! Responses are matched to requests by `id`, so a server may stream them
//! **out of order** — the whole point of the per-request-id design: a
//! slow batch never head-of-line-blocks a fast one on the same
//! connection.
//!
//! Decoding is strict and total: every malformed input maps to a typed
//! [`WireError`] (never a panic), and a frame must consume its body
//! exactly ([`WireError::TrailingBytes`]). The length prefix is bounded
//! by [`MAX_FRAME`] so a corrupt or hostile prefix cannot make the
//! receiver allocate unbounded memory.

use qnn_serve::Priority;
use qnn_tensor::{Shape3, Tensor3};
use std::fmt;

/// First two bytes of every frame body.
pub const MAGIC: [u8; 2] = *b"QN";
/// Current protocol version.
pub const VERSION: u8 = 1;
/// Upper bound on a frame body, enforced before any allocation: large
/// enough for a 2048×2048×16 i8 image, small enough to reject a hostile
/// length prefix outright.
pub const MAX_FRAME: usize = 1 << 26;

/// Sentinel request id for errors not tied to any request (e.g. an
/// undecodable frame).
pub const NO_REQUEST: u64 = u64::MAX;

/// Why a peer answered a request (or a whole connection) with an error.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request's deadline passed before dispatch; it was shed.
    DeadlineShed = 1,
    /// The server stopped before answering.
    Stopped = 2,
    /// The named model is not registered on the server.
    UnknownModel = 3,
    /// The submission queue was full and the admission policy rejects.
    Rejected = 4,
    /// The request frame was malformed (bad shape, bad payload size, or
    /// an undecodable frame — see the message text).
    BadRequest = 5,
    /// The server gave up waiting on the request (lost worker guard).
    Timeout = 6,
}

impl ErrorCode {
    fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            1 => ErrorCode::DeadlineShed,
            2 => ErrorCode::Stopped,
            3 => ErrorCode::UnknownModel,
            4 => ErrorCode::Rejected,
            5 => ErrorCode::BadRequest,
            6 => ErrorCode::Timeout,
            _ => return None,
        })
    }
}

/// Typed decode failure. Every variant is reachable from adversarial
/// bytes; none of them panic or allocate past [`MAX_FRAME`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The body ended before the field being decoded.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// The length prefix exceeds [`MAX_FRAME`].
    Oversized {
        /// The claimed body length.
        len: usize,
    },
    /// The body does not start with [`MAGIC`].
    BadMagic([u8; 2]),
    /// The version byte is not [`VERSION`].
    UnsupportedVersion(u8),
    /// The kind byte names no known frame kind.
    BadKind(u8),
    /// The priority byte names no scheduling class.
    BadPriority(u8),
    /// The deadline flag byte is neither 0 nor 1.
    BadDeadlineFlag(u8),
    /// The error-code byte names no [`ErrorCode`].
    BadErrorCode(u8),
    /// A string field is not valid UTF-8.
    BadUtf8,
    /// The pixel payload does not match the declared shape.
    PayloadMismatch {
        /// `h * w * c` from the declared shape.
        expected: usize,
        /// Pixel bytes present.
        got: usize,
    },
    /// The body is longer than the frame it encodes.
    TrailingBytes {
        /// Bytes left over after the frame.
        extra: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, got } => {
                write!(f, "truncated frame: needed {needed} bytes, got {got}")
            }
            WireError::Oversized { len } => {
                write!(f, "length prefix {len} exceeds the {MAX_FRAME}-byte frame cap")
            }
            WireError::BadMagic(m) => write!(f, "bad magic {m:?}"),
            WireError::UnsupportedVersion(v) => {
                write!(f, "unsupported protocol version {v} (speaking {VERSION})")
            }
            WireError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            WireError::BadPriority(p) => write!(f, "unknown priority {p}"),
            WireError::BadDeadlineFlag(d) => write!(f, "bad deadline flag {d}"),
            WireError::BadErrorCode(c) => write!(f, "unknown error code {c}"),
            WireError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            WireError::PayloadMismatch { expected, got } => {
                write!(f, "pixel payload holds {got} bytes, shape demands {expected}")
            }
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after the frame")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// One inference request as it travels the wire.
#[derive(Clone, PartialEq)]
pub struct RequestFrame {
    /// Request id, assigned by the client; responses echo it.
    pub id: u64,
    /// Target model name (empty = the server's sole model).
    pub model: String,
    /// Scheduling class.
    pub priority: Priority,
    /// Relative latency budget in microseconds (`None` never sheds).
    pub deadline_us: Option<u64>,
    /// The image, shape-carrying.
    pub image: Tensor3<i8>,
}

impl fmt::Debug for RequestFrame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RequestFrame")
            .field("id", &self.id)
            .field("model", &self.model)
            .field("priority", &self.priority)
            .field("deadline_us", &self.deadline_us)
            .field("shape", &self.image.shape())
            .finish()
    }
}

/// One completed inference as it travels the wire.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResponseFrame {
    /// The request id this answers.
    pub id: u64,
    /// Weight version the batch ran on.
    pub weight_version: u64,
    /// Global replica id that executed the batch.
    pub replica: u32,
    /// Batch occupancy the request rode in.
    pub batch_size: u32,
    /// The image's logits.
    pub logits: Vec<i32>,
}

/// A request (or connection) answered with an error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ErrorFrame {
    /// The request id this answers, or [`NO_REQUEST`].
    pub id: u64,
    /// Machine-readable reason.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

/// Any protocol frame.
#[derive(Clone, Debug, PartialEq)]
pub enum Frame {
    /// Client → server.
    Request(RequestFrame),
    /// Server → client, success.
    Response(ResponseFrame),
    /// Server → client, failure.
    Error(ErrorFrame),
}

const KIND_REQUEST: u8 = 1;
const KIND_RESPONSE: u8 = 2;
const KIND_ERROR: u8 = 3;

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

impl Frame {
    /// Encode this frame as a body (no length prefix).
    pub fn encode_body(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.extend_from_slice(&MAGIC);
        out.push(VERSION);
        match self {
            Frame::Request(r) => {
                out.push(KIND_REQUEST);
                put_u64(&mut out, r.id);
                out.push(match r.priority {
                    Priority::Interactive => 0,
                    Priority::Batch => 1,
                });
                out.push(u8::from(r.deadline_us.is_some()));
                put_u64(&mut out, r.deadline_us.unwrap_or(0));
                put_u16(&mut out, r.model.len() as u16);
                out.extend_from_slice(r.model.as_bytes());
                let shape = r.image.shape();
                put_u32(&mut out, shape.h as u32);
                put_u32(&mut out, shape.w as u32);
                put_u32(&mut out, shape.c as u32);
                out.extend(r.image.as_slice().iter().map(|&p| p as u8));
            }
            Frame::Response(r) => {
                out.push(KIND_RESPONSE);
                put_u64(&mut out, r.id);
                put_u64(&mut out, r.weight_version);
                put_u32(&mut out, r.replica);
                put_u32(&mut out, r.batch_size);
                put_u32(&mut out, r.logits.len() as u32);
                for &l in &r.logits {
                    out.extend_from_slice(&l.to_be_bytes());
                }
            }
            Frame::Error(e) => {
                out.push(KIND_ERROR);
                put_u64(&mut out, e.id);
                out.push(e.code as u8);
                put_u16(&mut out, e.message.len() as u16);
                out.extend_from_slice(e.message.as_bytes());
            }
        }
        out
    }

    /// Encode this frame with its length prefix — the exact byte sequence
    /// a peer writes to the socket.
    pub fn encode(&self) -> Vec<u8> {
        let body = self.encode_body();
        let mut out = Vec::with_capacity(4 + body.len());
        put_u32(&mut out, body.len() as u32);
        out.extend_from_slice(&body);
        out
    }

    /// Decode a frame body (the bytes after the length prefix). Strict:
    /// every byte of `body` must belong to the frame.
    pub fn decode_body(body: &[u8]) -> Result<Frame, WireError> {
        let mut cur = Cursor { buf: body, pos: 0 };
        let magic = cur.take::<2>()?;
        if magic != MAGIC {
            return Err(WireError::BadMagic(magic));
        }
        let version = cur.u8()?;
        if version != VERSION {
            return Err(WireError::UnsupportedVersion(version));
        }
        let kind = cur.u8()?;
        let frame = match kind {
            KIND_REQUEST => {
                let id = cur.u64()?;
                let priority = match cur.u8()? {
                    0 => Priority::Interactive,
                    1 => Priority::Batch,
                    p => return Err(WireError::BadPriority(p)),
                };
                let deadline_us = match cur.u8()? {
                    0 => {
                        cur.u64()?;
                        None
                    }
                    1 => Some(cur.u64()?),
                    d => return Err(WireError::BadDeadlineFlag(d)),
                };
                let model_len = cur.u16()? as usize;
                let model = String::from_utf8(cur.bytes(model_len)?.to_vec())
                    .map_err(|_| WireError::BadUtf8)?;
                let (h, w, c) = (cur.u32()? as usize, cur.u32()? as usize, cur.u32()? as usize);
                let expected = h
                    .checked_mul(w)
                    .and_then(|hw| hw.checked_mul(c))
                    .filter(|&n| n <= MAX_FRAME)
                    .ok_or(WireError::PayloadMismatch {
                        expected: usize::MAX,
                        got: cur.remaining(),
                    })?;
                if cur.remaining() != expected {
                    return Err(WireError::PayloadMismatch { expected, got: cur.remaining() });
                }
                let pixels: Vec<i8> =
                    cur.bytes(expected)?.iter().map(|&b| b as i8).collect();
                let image = Tensor3::from_vec(Shape3 { h, w, c }, pixels);
                Frame::Request(RequestFrame { id, model, priority, deadline_us, image })
            }
            KIND_RESPONSE => {
                let id = cur.u64()?;
                let weight_version = cur.u64()?;
                let replica = cur.u32()?;
                let batch_size = cur.u32()?;
                let count = cur.u32()? as usize;
                // Bound-check before allocating: each logit is 4 bytes.
                let needed = count.checked_mul(4).ok_or(WireError::Truncated {
                    needed: usize::MAX,
                    got: cur.remaining(),
                })?;
                if cur.remaining() < needed {
                    return Err(WireError::Truncated { needed, got: cur.remaining() });
                }
                let mut logits = Vec::with_capacity(count);
                for _ in 0..count {
                    logits.push(i32::from_be_bytes(cur.take::<4>()?));
                }
                Frame::Response(ResponseFrame { id, weight_version, replica, batch_size, logits })
            }
            KIND_ERROR => {
                let id = cur.u64()?;
                let code = cur.u8()?;
                let code = ErrorCode::from_u8(code).ok_or(WireError::BadErrorCode(code))?;
                let msg_len = cur.u16()? as usize;
                let message = String::from_utf8(cur.bytes(msg_len)?.to_vec())
                    .map_err(|_| WireError::BadUtf8)?;
                Frame::Error(ErrorFrame { id, code, message })
            }
            k => return Err(WireError::BadKind(k)),
        };
        if cur.remaining() != 0 {
            return Err(WireError::TrailingBytes { extra: cur.remaining() });
        }
        Ok(frame)
    }
}

/// Bounds-checked reader over a frame body.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated { needed: n, got: self.remaining() });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn take<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        Ok(self.bytes(N)?.try_into().expect("length checked"))
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take::<1>()?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_be_bytes(self.take::<2>()?))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_be_bytes(self.take::<4>()?))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_be_bytes(self.take::<8>()?))
    }
}

/// Incremental frame reassembly over a byte stream.
///
/// [`FrameBuffer::feed`] accepts arbitrary chunks (a TCP read boundary
/// never aligns with frames) and [`FrameBuffer::next_frame`] yields each
/// complete frame. A read timeout mid-frame therefore loses nothing: the
/// partial bytes stay buffered until the rest arrives.
#[derive(Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
}

impl FrameBuffer {
    /// An empty reassembly buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append freshly read bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed as frames — non-zero at EOF
    /// means the peer hung up mid-frame.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Decode the next complete frame, `Ok(None)` while more bytes are
    /// needed. An [`WireError::Oversized`] length prefix fails immediately
    /// (before the body arrives); any decode error poisons only the one
    /// frame — the buffer advances past it, though callers normally drop
    /// the connection.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, WireError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes(self.buf[..4].try_into().expect("4 bytes")) as usize;
        if len > MAX_FRAME {
            return Err(WireError::Oversized { len });
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        let body: Vec<u8> = self.buf.drain(..4 + len).skip(4).collect();
        Frame::decode_body(&body).map(Some)
    }

    /// What an EOF at this point means: clean (`None`) or a frame cut off
    /// mid-flight.
    pub fn eof_error(&self) -> Option<WireError> {
        if self.buf.is_empty() {
            return None;
        }
        if self.buf.len() >= 4 {
            let len = u32::from_be_bytes(self.buf[..4].try_into().expect("4 bytes")) as usize;
            if len > MAX_FRAME {
                return Some(WireError::Oversized { len });
            }
            return Some(WireError::Truncated { needed: 4 + len, got: self.buf.len() });
        }
        Some(WireError::Truncated { needed: 4, got: self.buf.len() })
    }
}
