//! Autoscaler control-law tests, driven tick by tick (no wall-clock
//! control loop) so every transition is deterministic: hysteresis holds
//! off transients, breaches grow pools, idleness shrinks them, and the
//! min/max/budget bounds are never crossed.

use qnn_cluster::{Autoscaler, AutoscalerConfig, ScaleAction};
use qnn_nn::{models, Network};
use qnn_serve::{ModelOptions, Server, ServerConfig, SubmitOptions, Ticket};
use qnn_tensor::{Shape3, Tensor3};
use qnn_testkit::Rng;
use std::time::{Duration, Instant};

fn image(seed: u64) -> Tensor3<i8> {
    let mut rng = Rng::seed_from_u64(seed);
    Tensor3::from_fn(Shape3::square(8, 3), |_, _, _| rng.gen_range(-127i8..=127))
}

/// A single-model server whose service time is dominated by a synthetic
/// per-batch delay — load behaviour is then reproducible on any host.
fn slow_server(delay: Duration) -> Server {
    let net = Network::random(models::test_net(8, 4, 2), 17);
    Server::builder()
        .config(ServerConfig { max_batch: 1, ..ServerConfig::default() })
        .model_with("mnist", &net, ModelOptions::new().replicas(1).synthetic_delay(delay))
        .start()
        .expect("valid server")
}

/// Flood `n` batch requests at the server, returning the tickets.
fn flood(server: &Server, n: usize) -> Vec<Ticket> {
    let client = server.client();
    (0..n)
        .map(|i| {
            client.submit_with(image(i as u64), SubmitOptions::model("mnist")).expect("admitted")
        })
        .collect()
}

/// Poll until the model's backlog drains (bounded wait).
fn wait_for_drain(server: &Server) {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let window = server.load_window("mnist").expect("known model");
        if window.in_flight == 0 {
            return;
        }
        assert!(Instant::now() < deadline, "backlog never drained");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn config() -> AutoscalerConfig {
    AutoscalerConfig::builder()
        .min_replicas(1)
        .max_replicas(3)
        .backlog_per_replica(2)
        .up_hysteresis(2)
        .down_hysteresis(3)
        .cooldown_ticks(1)
        .build()
        .expect("valid config")
}

#[test]
fn backlog_breach_grows_the_pool_after_hysteresis() {
    let server = slow_server(Duration::from_millis(60));
    let mut scaler = Autoscaler::new(config(), &server);

    let held = flood(&server, 12); // backlog 12 > 2 × 1 replica → breach
    assert_eq!(scaler.tick(&server), Vec::new(), "one breached tick must not scale yet");
    let actions = scaler.tick(&server);
    assert_eq!(
        actions,
        vec![ScaleAction::Up { model: "mnist".to_string(), from: 1, to: 2 }],
        "two consecutive breaches must grow the pool"
    );
    assert_eq!(server.load_window("mnist").expect("known model").replicas, 2);

    for t in held {
        t.wait().expect("flood completes");
    }
    server.shutdown();
}

#[test]
fn transients_shorter_than_the_hysteresis_never_scale() {
    let server = slow_server(Duration::from_millis(40));
    let mut scaler = Autoscaler::new(config(), &server);

    // Breach once, then drain: the streak must reset, so a later
    // single-tick breach doesn't scale either.
    let held = flood(&server, 8);
    assert_eq!(scaler.tick(&server), Vec::new());
    for t in held {
        t.wait().expect("completes");
    }
    wait_for_drain(&server);
    assert_eq!(scaler.tick(&server), Vec::new(), "steady/idle tick resets the breach streak");

    let held = flood(&server, 8);
    assert_eq!(scaler.tick(&server), Vec::new(), "streak must restart after the reset");
    for t in held {
        t.wait().expect("completes");
    }
    assert_eq!(server.load_window("mnist").expect("known model").replicas, 1);
    server.shutdown();
}

#[test]
fn cooldown_blocks_back_to_back_resizes() {
    let server = slow_server(Duration::from_millis(60));
    let mut scaler = Autoscaler::new(config(), &server);

    let held = flood(&server, 20);
    scaler.tick(&server);
    assert_eq!(scaler.tick(&server).len(), 1, "second breach scales");
    // Still heavily breached, but the cooldown tick must hold.
    assert_eq!(scaler.tick(&server), Vec::new(), "cooldown tick must not scale");

    for t in held {
        t.wait().expect("completes");
    }
    server.shutdown();
}

#[test]
fn idle_pool_shrinks_to_min_replicas_and_stops() {
    let server = slow_server(Duration::from_millis(30));
    let mut scaler = Autoscaler::new(config(), &server);

    // Grow to 2 first.
    let held = flood(&server, 12);
    scaler.tick(&server);
    assert_eq!(scaler.tick(&server).len(), 1);
    for t in held {
        t.wait().expect("completes");
    }
    wait_for_drain(&server);

    // Now idle: cooldown (1 tick) + down_hysteresis (3 idle ticks).
    let mut downs = Vec::new();
    for _ in 0..8 {
        downs.extend(scaler.tick(&server));
    }
    assert_eq!(
        downs,
        vec![ScaleAction::Down { model: "mnist".to_string(), from: 2, to: 1 }],
        "idleness must shrink back to min_replicas exactly once"
    );
    assert_eq!(server.load_window("mnist").expect("known model").replicas, 1);
    server.shutdown();
}

#[test]
fn growth_respects_max_replicas() {
    let server = slow_server(Duration::from_millis(80));
    let mut scaler = Autoscaler::new(config(), &server); // max 3
    let held = flood(&server, 60);
    let mut ups = 0;
    for _ in 0..20 {
        ups += scaler.tick(&server).len();
    }
    assert_eq!(ups, 2, "1 → 2 → 3 replicas and then the ceiling holds");
    assert_eq!(server.load_window("mnist").expect("known model").replicas, 3);
    for t in held {
        t.wait().expect("completes");
    }
    server.shutdown();
}

#[test]
fn total_budget_caps_growth_across_models() {
    let net = Network::random(models::test_net(8, 4, 2), 19);
    let server = Server::builder()
        .config(ServerConfig { max_batch: 1, ..ServerConfig::default() })
        .model_with(
            "hot",
            &net,
            ModelOptions::new().replicas(1).synthetic_delay(Duration::from_millis(60)),
        )
        .model_with("cold", &net, ModelOptions::new().replicas(1))
        .start()
        .expect("valid server");
    let config = AutoscalerConfig::builder()
        .min_replicas(1)
        .max_replicas(4)
        .total_budget(3) // hot may grow to 2 (2 + 1 cold = 3), never to 3
        .backlog_per_replica(2)
        .up_hysteresis(1)
        .down_hysteresis(10)
        .cooldown_ticks(0)
        .build()
        .expect("valid config");
    let mut scaler = Autoscaler::new(config, &server);

    let client = server.client();
    let held: Vec<Ticket> = (0..40)
        .map(|i| client.submit_with(image(i), SubmitOptions::model("hot")).expect("admitted"))
        .collect();
    let mut ups = 0;
    for _ in 0..10 {
        ups += scaler.tick(&server).len();
    }
    assert_eq!(ups, 1, "the shared budget admits exactly one grow");
    assert_eq!(server.load_window("hot").expect("known model").replicas, 2);
    assert_eq!(server.load_window("cold").expect("known model").replicas, 1);
    for t in held {
        t.wait().expect("completes");
    }
    server.shutdown();
}
