//! Loopback TCP tests for the wire edge. Everything binds `127.0.0.1:0`
//! (OS-assigned ports, no external network).
//!
//! The acceptance property: a single-backend [`NetServer`] is
//! **bit-identical** to the in-process client — the wire adds transport,
//! not arithmetic. Plus: out-of-order response streaming, typed errors
//! for unknown models / bad frames / unsupported versions over a real
//! socket, and a balanced admission ledger when the client disconnects
//! mid-request.

use qnn_cluster::wire::{ErrorCode, ErrorFrame, Frame, FrameBuffer, NO_REQUEST, VERSION};
use qnn_cluster::{NetClient, NetError, NetServer};
use qnn_compiler::{run_images, CompileOptions};
use qnn_nn::{models, Network};
use qnn_serve::{ModelOptions, Priority, Server, ServerConfig, SubmitOptions};
use qnn_tensor::{Shape3, Tensor3};
use qnn_testkit::Rng;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::thread;
use std::time::{Duration, Instant};

fn trace(n: usize, seed: u64) -> Vec<Tensor3<i8>> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..n)
        .map(|_| Tensor3::from_fn(Shape3::square(8, 3), |_, _, _| rng.gen_range(-127i8..=127)))
        .collect()
}

#[test]
fn single_backend_edge_is_bit_identical_to_in_process() {
    let net = Network::random(models::test_net(8, 4, 2), 21);
    let images = trace(6, 0xD57);
    let direct = run_images(&net, &images, &CompileOptions::default()).expect("direct");

    // One replica and a max_batch covering the trace, exactly like the
    // in-process determinism test — the edge must not perturb batching.
    let config = ServerConfig {
        replicas: 1,
        max_batch: images.len(),
        flush_deadline: Duration::from_secs(10),
        ..ServerConfig::default()
    };
    let server =
        Server::builder().config(config).model("mnist", &net).start().expect("valid server");
    let edge = NetServer::bind(server, "127.0.0.1:0").expect("bind loopback");

    let client = NetClient::connect(edge.local_addr()).expect("connect");
    let tickets: Vec<_> = images
        .iter()
        .map(|img| client.submit(img.clone(), SubmitOptions::model("mnist")).expect("submit"))
        .collect();
    let logits: Vec<Vec<i32>> =
        tickets.into_iter().map(|t| t.wait().expect("answered").logits).collect();
    assert_eq!(logits, direct.logits, "wire transport changed the bits");

    drop(client);
    let report = edge.shutdown();
    assert_eq!(report.completed, images.len() as u64);
    assert_eq!(report.completed + report.rejected + report.shed, report.submitted);
}

#[test]
fn responses_stream_out_of_order_by_request_id() {
    let fast = Network::random(models::test_net(8, 4, 2), 31);
    let slow = Network::random(models::test_net(8, 4, 2), 32);
    let server = Server::builder()
        .model("fast", &fast)
        .model_with(
            "slow",
            &slow,
            ModelOptions::new().synthetic_delay(Duration::from_millis(400)),
        )
        .start()
        .expect("valid server");
    let edge = NetServer::bind(server, "127.0.0.1:0").expect("bind loopback");
    let client = NetClient::connect(edge.local_addr()).expect("connect");

    let img = trace(1, 0xF00).pop().expect("one image");
    // Submit the slow request FIRST (lower id), then the fast one.
    let slow_ticket =
        client.submit(img.clone(), SubmitOptions::model("slow")).expect("submit slow");
    let fast_ticket = client.submit(img, SubmitOptions::model("fast")).expect("submit fast");
    assert!(slow_ticket.id() < fast_ticket.id());

    // The fast response overtakes the slow one on the same connection —
    // an in-order server would hold it behind the 400 ms batch.
    let fast_resp =
        fast_ticket.wait_timeout(Duration::from_secs(5)).expect("fast resolved").expect("ok");
    assert_eq!(
        slow_ticket.wait_timeout(Duration::ZERO),
        None,
        "slow request should still be in flight when the fast response lands"
    );
    assert!(!fast_resp.logits.is_empty());

    let slow_resp = slow_ticket.wait().expect("slow eventually answers");
    assert!(!slow_resp.logits.is_empty());

    drop(client);
    let report = edge.shutdown();
    assert_eq!(report.completed, 2);
}

#[test]
fn unknown_model_resolves_to_a_typed_remote_error() {
    let net = Network::random(models::test_net(8, 4, 2), 41);
    let server = Server::builder().model("mnist", &net).start().expect("valid server");
    let edge = NetServer::bind(server, "127.0.0.1:0").expect("bind loopback");
    let client = NetClient::connect(edge.local_addr()).expect("connect");

    let img = trace(1, 0xBAD).pop().expect("one image");
    let ticket = client.submit(img, SubmitOptions::model("nope")).expect("submit");
    match ticket.wait() {
        Err(NetError::Remote { code, .. }) => assert_eq!(code, ErrorCode::UnknownModel),
        other => panic!("expected a remote UnknownModel error, got {other:?}"),
    }

    drop(client);
    let report = edge.shutdown();
    // The refused request never entered admission: the ledger is all
    // zeros and still balances.
    assert_eq!(report.completed + report.rejected + report.shed, report.submitted);
}

#[test]
fn expired_deadline_sheds_over_the_wire() {
    let net = Network::random(models::test_net(8, 4, 2), 43);
    let server = Server::builder()
        .model_with(
            "mnist",
            &net,
            ModelOptions::new().synthetic_delay(Duration::from_millis(50)),
        )
        .start()
        .expect("valid server");
    let edge = NetServer::bind(server, "127.0.0.1:0").expect("bind loopback");
    let client = NetClient::connect(edge.local_addr()).expect("connect");

    let images = trace(4, 0x5EED);
    // First request occupies the replica; the rest carry an
    // already-tiny deadline and shed at dispatch.
    let opts = SubmitOptions::model("mnist");
    let head = client.submit(images[0].clone(), opts.clone()).expect("submit");
    let doomed: Vec<_> = images[1..]
        .iter()
        .map(|img| {
            client
                .submit(
                    img.clone(),
                    opts.clone().priority(Priority::Batch).deadline(Duration::from_micros(1)),
                )
                .expect("submit")
        })
        .collect();
    head.wait().expect("head completes");
    let mut sheds = 0u64;
    for t in doomed {
        match t.wait() {
            Err(NetError::Remote { code: ErrorCode::DeadlineShed, .. }) => sheds += 1,
            Ok(_) => {}
            other => panic!("expected DeadlineShed or success, got {other:?}"),
        }
    }
    assert!(sheds > 0, "a 1 µs deadline behind a 50 ms batch must shed");

    drop(client);
    let report = edge.shutdown();
    assert_eq!(report.shed, sheds);
    assert_eq!(report.completed + report.rejected + report.shed, report.submitted);
}

#[test]
fn client_disconnect_mid_request_keeps_the_ledger_balanced() {
    let net = Network::random(models::test_net(8, 4, 2), 51);
    let server = Server::builder()
        .model_with(
            "mnist",
            &net,
            ModelOptions::new().synthetic_delay(Duration::from_millis(100)),
        )
        .start()
        .expect("valid server");
    let edge = NetServer::bind(server, "127.0.0.1:0").expect("bind loopback");

    let client = NetClient::connect(edge.local_addr()).expect("connect");
    let n = 5;
    for img in trace(n, 0x0DD) {
        let _ = client.submit(img, SubmitOptions::model("mnist")).expect("submit");
    }
    // Submission only guarantees the frames left the client socket; wait
    // until the edge has actually admitted all five before hanging up
    // (an early close can RST away frames still in the receive buffer,
    // which would be a *different* scenario: a partially-heard client).
    let deadline = Instant::now() + Duration::from_secs(10);
    while edge.server().load_window("mnist").expect("known model").submitted < n as u64 {
        assert!(Instant::now() < deadline, "edge never admitted the submitted requests");
        thread::sleep(Duration::from_millis(2));
    }
    // Hang up with every request still in flight: the tickets die with
    // the connection, but the admitted requests must still be served (or
    // shed) inside the runtime.
    drop(client);

    let report = edge.shutdown();
    assert_eq!(report.submitted, n as u64);
    assert_eq!(
        report.completed + report.rejected + report.shed,
        report.submitted,
        "disconnect mid-request unbalanced the admission ledger"
    );
}

/// Read frames off a raw socket until it yields one (or EOF).
fn read_one_frame(stream: &mut TcpStream) -> Option<Frame> {
    let mut fb = FrameBuffer::new();
    let mut chunk = [0u8; 4096];
    loop {
        match fb.next_frame() {
            Ok(Some(frame)) => return Some(frame),
            Ok(None) => {}
            Err(_) => return None,
        }
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => return None,
            Ok(n) => fb.feed(&chunk[..n]),
        }
    }
}

#[test]
fn garbage_bytes_get_a_typed_error_frame_and_a_close() {
    let net = Network::random(models::test_net(8, 4, 2), 61);
    let server = Server::builder().model("mnist", &net).start().expect("valid server");
    let edge = NetServer::bind(server, "127.0.0.1:0").expect("bind loopback");

    let mut raw = TcpStream::connect(edge.local_addr()).expect("connect raw");
    // A well-framed body that is pure garbage: length prefix 8, body "XX…".
    raw.write_all(&8u32.to_be_bytes()).expect("write len");
    raw.write_all(b"XXXXXXXX").expect("write body");
    match read_one_frame(&mut raw) {
        Some(Frame::Error(ErrorFrame { id, code, .. })) => {
            assert_eq!(id, NO_REQUEST);
            assert_eq!(code, ErrorCode::BadRequest);
        }
        other => panic!("expected a BadRequest error frame, got {other:?}"),
    }
    // The server then drops the connection.
    let mut rest = Vec::new();
    let _ = raw.read_to_end(&mut rest);

    let report = edge.shutdown();
    assert_eq!(report.submitted, 0);
}

#[test]
fn unsupported_version_is_answered_with_bad_request() {
    let net = Network::random(models::test_net(8, 4, 2), 62);
    let server = Server::builder().model("mnist", &net).start().expect("valid server");
    let edge = NetServer::bind(server, "127.0.0.1:0").expect("bind loopback");

    let frame =
        Frame::Error(ErrorFrame { id: 4, code: ErrorCode::Stopped, message: String::new() });
    let mut bytes = frame.encode();
    bytes[4 + 2] = VERSION + 1; // version byte, after the 4-byte prefix and 2-byte magic
    let mut raw = TcpStream::connect(edge.local_addr()).expect("connect raw");
    raw.write_all(&bytes).expect("write frame");
    match read_one_frame(&mut raw) {
        Some(Frame::Error(ErrorFrame { id, code, message })) => {
            assert_eq!(id, NO_REQUEST);
            assert_eq!(code, ErrorCode::BadRequest);
            assert!(message.contains("version"), "message was: {message}");
        }
        other => panic!("expected a BadRequest error frame, got {other:?}"),
    }

    let report = edge.shutdown();
    assert_eq!(report.submitted, 0);
}

#[test]
fn oversized_length_prefix_is_rejected_without_allocation() {
    let net = Network::random(models::test_net(8, 4, 2), 63);
    let server = Server::builder().model("mnist", &net).start().expect("valid server");
    let edge = NetServer::bind(server, "127.0.0.1:0").expect("bind loopback");

    let mut raw = TcpStream::connect(edge.local_addr()).expect("connect raw");
    raw.write_all(&u32::MAX.to_be_bytes()).expect("write hostile prefix");
    match read_one_frame(&mut raw) {
        Some(Frame::Error(ErrorFrame { id, code, message })) => {
            assert_eq!(id, NO_REQUEST);
            assert_eq!(code, ErrorCode::BadRequest);
            assert!(message.contains("exceeds"), "message was: {message}");
        }
        other => panic!("expected a BadRequest error frame, got {other:?}"),
    }

    let report = edge.shutdown();
    assert_eq!(report.submitted, 0);
}

#[test]
fn hot_weight_swap_is_visible_through_the_wire() {
    let spec = models::test_net(8, 4, 2);
    let v0 = Network::random(spec.clone(), 71);
    let v1 = Network::random(spec, 72);
    let server = Server::builder().model("mnist", &v0).start().expect("valid server");
    let edge = NetServer::bind(server, "127.0.0.1:0").expect("bind loopback");
    let client = NetClient::connect(edge.local_addr()).expect("connect");

    let img = trace(1, 0x7E57).pop().expect("one image");
    let before = client
        .submit(img.clone(), SubmitOptions::model("mnist"))
        .expect("submit")
        .wait()
        .expect("answered");
    assert_eq!(before.weight_version, 0);

    let version = edge.server().publish_weights("mnist", v1.clone()).expect("publish");
    assert_eq!(version, 1);
    // Weight swaps are batch-atomic, not submission-atomic: wait for a
    // batch that actually ran on the new snapshot.
    let expected = v1.forward(&img).logits;
    let after = client
        .submit(img.clone(), SubmitOptions::model("mnist"))
        .expect("submit")
        .wait()
        .expect("answered");
    assert_eq!(after.weight_version, 1);
    assert_eq!(after.logits, expected, "post-swap logits must come from the new weights");

    drop(client);
    let report = edge.shutdown();
    assert_eq!(report.completed, 2);
}
