//! Cluster router behaviour: deterministic sharding, saturation
//! spillover, health states, and mixed local/remote backends (remote
//! ones over loopback TCP only).

use qnn_cluster::{
    Backend, BackendHealth, ClusterConfigError, NetClient, NetServer, RouteError, Router,
    RouterConfig,
};
use qnn_nn::{models, Network};
use qnn_serve::{ModelOptions, Server, ServerConfig, SubmitOptions};
use qnn_tensor::{Shape3, Tensor3};
use qnn_testkit::Rng;
use std::time::Duration;

fn image(seed: u64) -> Tensor3<i8> {
    let mut rng = Rng::seed_from_u64(seed);
    Tensor3::from_fn(Shape3::square(8, 3), |_, _, _| rng.gen_range(-127i8..=127))
}

/// Two local backends, each its own server hosting the same model.
fn two_local_backends(
    synthetic_delay: Option<Duration>,
) -> (Server, Server, Router) {
    let net = Network::random(models::test_net(8, 4, 2), 11);
    let mut options = ModelOptions::new().replicas(1);
    if let Some(delay) = synthetic_delay {
        options = options.synthetic_delay(delay);
    }
    let config = ServerConfig { max_batch: 1, ..ServerConfig::default() };
    let a = Server::builder()
        .config(config.clone())
        .model_with("mnist", &net, options.clone())
        .start()
        .expect("backend a");
    let b = Server::builder()
        .config(config)
        .model_with("mnist", &net, options)
        .start()
        .expect("backend b");
    let router = Router::new(
        RouterConfig::builder().spill_threshold(4).build().expect("valid config"),
        vec![
            ("a".to_string(), Backend::Local(a.client())),
            ("b".to_string(), Backend::Local(b.client())),
        ],
    )
    .expect("valid router");
    (a, b, router)
}

#[test]
fn construction_rejects_degenerate_configs() {
    assert_eq!(
        Router::new(RouterConfig::default(), Vec::new()).err(),
        Some(ClusterConfigError::ZeroBackends)
    );
    let net = Network::random(models::test_net(8, 4, 2), 11);
    let server = Server::builder().model("mnist", &net).start().expect("server");
    let result = Router::new(
        RouterConfig { vnodes: 0, spill_threshold: 4 },
        vec![("a".to_string(), Backend::Local(server.client()))],
    );
    assert_eq!(result.err(), Some(ClusterConfigError::EmptyHashRing));
    server.shutdown();
}

#[test]
fn sharding_is_deterministic_and_spreads_across_backends() {
    let (a, b, router) = two_local_backends(None);
    // Same model name → same backend, every time.
    let first = router.route("mnist").expect("routable");
    for _ in 0..10 {
        assert_eq!(router.route("mnist").expect("routable"), first);
    }
    // Across many names, both backends own at least one shard.
    let owners: Vec<String> = (0..32)
        .map(|i| router.route(&format!("model-{i}")).expect("routable"))
        .collect();
    assert!(owners.iter().any(|o| o == "a"), "backend a owns no shard");
    assert!(owners.iter().any(|o| o == "b"), "backend b owns no shard");
    a.shutdown();
    b.shutdown();
}

#[test]
fn requests_follow_the_shard_and_resolve() {
    let (a, b, router) = two_local_backends(None);
    let primary = router.route("mnist").expect("routable");
    let tickets: Vec<_> = (0..4)
        .map(|i| {
            router.submit(image(i), SubmitOptions::model("mnist")).expect("routed")
        })
        .collect();
    for t in tickets {
        let resp = t.wait().expect("answered");
        assert_eq!(resp.backend, primary, "unsaturated traffic must stay on its shard");
        assert_eq!(resp.logits.len(), 4);
    }
    let stats = router.stats();
    let primary_stats = stats.iter().find(|s| s.name == primary).expect("known backend");
    assert_eq!(primary_stats.routed, 4);
    assert_eq!(primary_stats.spilled_in, 0);
    a.shutdown();
    b.shutdown();
}

#[test]
fn saturation_spills_to_the_next_ring_node() {
    // Slow single-replica backends: queued work stays in flight long
    // enough for the spill check to see it.
    let (a, b, router) = two_local_backends(Some(Duration::from_millis(150)));
    let primary = router.route("mnist").expect("routable");
    let (primary_server, other_name) =
        if primary == "a" { (&a, "b") } else { (&b, "a") };

    // Saturate the primary directly (not via the router): its queue depth
    // crosses the spill threshold of 4.
    let direct = primary_server.client();
    let held: Vec<_> = (0..8)
        .map(|i| direct.submit_with(image(100 + i), SubmitOptions::model("mnist")).expect("held"))
        .collect();
    assert!(direct.queue_depth() >= 4);

    // The router now spills this model's traffic to the other backend.
    let spilled = router.submit(image(1), SubmitOptions::model("mnist")).expect("routed");
    assert_eq!(spilled.backend(), other_name, "saturated primary must spill");
    let resp = spilled.wait().expect("answered");
    assert_eq!(resp.backend, other_name);

    let stats = router.stats();
    let other_stats = stats.iter().find(|s| s.name == other_name).expect("known backend");
    assert_eq!(other_stats.spilled_in, 1);

    for t in held {
        t.wait().expect("held work completes");
    }
    a.shutdown();
    b.shutdown();
}

#[test]
fn draining_backends_take_no_new_traffic_and_down_means_no_backend() {
    let (a, b, router) = two_local_backends(None);
    let primary = router.route("mnist").expect("routable");
    let other = if primary == "a" { "b" } else { "a" };

    router.set_health(&primary, BackendHealth::Draining).expect("known backend");
    assert_eq!(router.route("mnist").expect("routable"), other);
    let t = router.submit(image(5), SubmitOptions::model("mnist")).expect("routed");
    assert_eq!(t.wait().expect("answered").backend, other);

    router.set_health(other, BackendHealth::Down).expect("known backend");
    assert_eq!(router.route("mnist").err(), Some(RouteError::NoHealthyBackend));

    // Recovery: healthy again → traffic returns to the shard owner.
    router.set_health(&primary, BackendHealth::Healthy).expect("known backend");
    router.set_health(other, BackendHealth::Healthy).expect("known backend");
    assert_eq!(router.route("mnist").expect("routable"), primary);

    assert_eq!(
        router.set_health("nope", BackendHealth::Down).err(),
        Some(RouteError::UnknownBackend("nope".to_string()))
    );
    a.shutdown();
    b.shutdown();
}

#[test]
fn remote_backends_mix_with_local_ones() {
    let net = Network::random(models::test_net(8, 4, 2), 13);
    let local = Server::builder().model("mnist", &net).start().expect("local backend");
    let remote_server = Server::builder().model("mnist", &net).start().expect("remote backend");
    let edge = NetServer::bind(remote_server, "127.0.0.1:0").expect("bind loopback");
    let remote = NetClient::connect(edge.local_addr()).expect("connect");

    let router = Router::new(
        RouterConfig::default(),
        vec![
            ("local".to_string(), Backend::Local(local.client())),
            ("remote".to_string(), Backend::Remote(remote)),
        ],
    )
    .expect("valid router");

    // Whatever the shard says, both submission paths produce the same
    // bits for the same image (same weights on both backends).
    let img = image(42);
    let expected = net.forward(&img).logits;
    // Unknown model names are refused by both backend kinds — locally at
    // submission, remotely via an error frame on the ticket.
    for i in 0..6 {
        match router.submit(img.clone(), SubmitOptions::model(format!("m{i}"))) {
            Err(RouteError::Refused { .. }) => {}
            Ok(t) => assert!(t.wait().is_err(), "unknown model must not serve"),
            Err(e) => panic!("unexpected routing error: {e:?}"),
        }
    }
    let t = router.submit(img.clone(), SubmitOptions::model("mnist")).expect("routed");
    let resp = t.wait().expect("answered");
    assert_eq!(resp.logits, expected);

    local.shutdown();
    edge.shutdown();
}
