//! Wire-protocol properties: random frames round-trip bit-exactly through
//! encode → chunked reassembly → decode, and adversarial byte streams —
//! truncations, oversized length prefixes, unknown versions, flipped
//! bytes, pure noise — always map to a typed [`WireError`], never a
//! panic.

use qnn_cluster::wire::{
    ErrorCode, ErrorFrame, Frame, FrameBuffer, RequestFrame, ResponseFrame, WireError, MAX_FRAME,
    VERSION,
};
use qnn_serve::Priority;
use qnn_tensor::{Shape3, Tensor3};
use qnn_testkit::prop::{any, vec};
use qnn_testkit::{prop_assert, prop_assert_eq, props};

/// Model-name palette: ASCII plus multibyte UTF-8, so the length-in-bytes
/// vs length-in-chars distinction is exercised.
const NAME_CHARS: &[char] = &['a', 'z', 'A', '0', '9', '-', '_', '.', 'µ', 'π', '名'];

fn model_name(len: usize, seed: u64) -> String {
    let mut s = seed | 1;
    (0..len)
        .map(|_| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            NAME_CHARS[(s >> 33) as usize % NAME_CHARS.len()]
        })
        .collect()
}

/// Push `bytes` through a [`FrameBuffer`] in `chunk`-sized pieces —
/// every frame must survive arbitrary TCP read boundaries.
fn reassemble(bytes: &[u8], chunk: usize) -> Result<Vec<Frame>, WireError> {
    let mut fb = FrameBuffer::new();
    let mut frames = Vec::new();
    for piece in bytes.chunks(chunk.max(1)) {
        fb.feed(piece);
        while let Some(frame) = fb.next_frame()? {
            frames.push(frame);
        }
    }
    assert_eq!(fb.pending(), 0, "whole-frame input must leave nothing buffered");
    assert_eq!(fb.eof_error(), None);
    Ok(frames)
}

props! {
    /// Request frames round-trip through chunked reassembly bit-exactly.
    #[test]
    fn request_frames_round_trip(
        id in any::<u64>(),
        name_len in 0usize..24,
        name_seed in any::<u64>(),
        interactive in any::<bool>(),
        has_deadline in any::<bool>(),
        deadline_us in any::<u64>(),
        (h, w, c) in (1usize..8, 1usize..8, 1usize..4),
        pix_seed in any::<u64>(),
        chunk in 1usize..48,
    ) {
        let image = Tensor3::from_fn(Shape3 { h, w, c }, |y, x, ch| {
            (pix_seed as usize)
                .wrapping_mul(31)
                .wrapping_add(y * 131 + x * 17 + ch * 7) as i8
        });
        let frame = Frame::Request(RequestFrame {
            id,
            model: model_name(name_len, name_seed),
            priority: if interactive { Priority::Interactive } else { Priority::Batch },
            deadline_us: has_deadline.then_some(deadline_us),
            image,
        });
        let decoded = reassemble(&frame.encode(), chunk).expect("well-formed");
        prop_assert_eq!(decoded, vec![frame]);
    }

    /// Response frames round-trip, including empty logit vectors.
    #[test]
    fn response_frames_round_trip(
        id in any::<u64>(),
        weight_version in any::<u64>(),
        replica in any::<u32>(),
        batch_size in any::<u32>(),
        logits in vec(-100_000i32..100_000, 0..40),
        chunk in 1usize..48,
    ) {
        let frame = Frame::Response(ResponseFrame {
            id, weight_version, replica, batch_size, logits,
        });
        let decoded = reassemble(&frame.encode(), chunk).expect("well-formed");
        prop_assert_eq!(decoded, vec![frame]);
    }

    /// Error frames round-trip for every error code.
    #[test]
    fn error_frames_round_trip(
        id in any::<u64>(),
        code_pick in 0usize..6,
        msg_len in 0usize..64,
        msg_seed in any::<u64>(),
        chunk in 1usize..48,
    ) {
        let code = [
            ErrorCode::DeadlineShed,
            ErrorCode::Stopped,
            ErrorCode::UnknownModel,
            ErrorCode::Rejected,
            ErrorCode::BadRequest,
            ErrorCode::Timeout,
        ][code_pick];
        let frame = Frame::Error(ErrorFrame {
            id,
            code,
            message: model_name(msg_len, msg_seed),
        });
        let decoded = reassemble(&frame.encode(), chunk).expect("well-formed");
        prop_assert_eq!(decoded, vec![frame]);
    }

    /// Several frames back to back on one stream all arrive, in order,
    /// under any chunking.
    #[test]
    fn back_to_back_frames_reassemble(
        n in 1usize..6,
        seed in any::<u64>(),
        chunk in 1usize..32,
    ) {
        let frames: Vec<Frame> = (0..n)
            .map(|i| Frame::Error(ErrorFrame {
                id: seed.wrapping_add(i as u64),
                code: ErrorCode::Stopped,
                message: model_name(i, seed),
            }))
            .collect();
        let bytes: Vec<u8> = frames.iter().flat_map(|f| f.encode()).collect();
        let decoded = reassemble(&bytes, chunk).expect("well-formed");
        prop_assert_eq!(decoded, frames);
    }

    /// Any strict prefix of a valid body fails with a typed error — and
    /// never panics.
    #[test]
    fn truncated_bodies_yield_typed_errors(
        cut_frac in 0u32..1000,
        logit_count in 1usize..20,
    ) {
        let frame = Frame::Response(ResponseFrame {
            id: 7,
            weight_version: 3,
            replica: 1,
            batch_size: 4,
            logits: (0..logit_count as i32).collect(),
        });
        let body = frame.encode_body();
        let cut = (cut_frac as usize * body.len() / 1000).min(body.len() - 1);
        let result = Frame::decode_body(&body[..cut]);
        prop_assert!(result.is_err(), "prefix of {cut}/{} bytes decoded", body.len());
    }

    /// Pure noise never panics the decoder; it either decodes (vanishingly
    /// unlikely but legal) or returns a typed error.
    #[test]
    fn random_bytes_never_panic(bytes in vec(any::<u8>(), 0..200)) {
        let _ = Frame::decode_body(&bytes);
        // Reaching here without a panic is the property.
        prop_assert!(true);
    }

    /// Flipping one byte of a valid frame never panics the decoder.
    #[test]
    fn single_byte_corruption_never_panics(
        pos_frac in 0u32..1000,
        flip in 1u16..256,
    ) {
        let frame = Frame::Request(RequestFrame {
            id: 9,
            model: "mnist".into(),
            priority: Priority::Interactive,
            deadline_us: Some(1500),
            image: Tensor3::from_fn(Shape3::square(8, 3), |y, x, c| (y + x + c) as i8),
        });
        let mut body = frame.encode_body();
        let pos = pos_frac as usize * body.len() / 1000;
        let pos = pos.min(body.len() - 1);
        body[pos] ^= flip as u8;
        let _ = Frame::decode_body(&body);
        prop_assert!(true);
    }
}

#[test]
fn oversized_length_prefix_fails_before_the_body_arrives() {
    let mut fb = FrameBuffer::new();
    let len = (MAX_FRAME + 1) as u32;
    fb.feed(&len.to_be_bytes());
    assert_eq!(fb.next_frame(), Err(WireError::Oversized { len: MAX_FRAME + 1 }));
}

#[test]
fn unknown_version_is_rejected() {
    let frame =
        Frame::Error(ErrorFrame { id: 1, code: ErrorCode::Stopped, message: String::new() });
    let mut body = frame.encode_body();
    body[2] = VERSION + 1;
    assert_eq!(Frame::decode_body(&body), Err(WireError::UnsupportedVersion(VERSION + 1)));
}

#[test]
fn bad_magic_and_bad_kind_are_rejected() {
    let frame =
        Frame::Error(ErrorFrame { id: 1, code: ErrorCode::Stopped, message: String::new() });
    let mut bad_magic = frame.encode_body();
    bad_magic[0] = b'X';
    assert!(matches!(Frame::decode_body(&bad_magic), Err(WireError::BadMagic(_))));
    let mut bad_kind = frame.encode_body();
    bad_kind[3] = 99;
    assert_eq!(Frame::decode_body(&bad_kind), Err(WireError::BadKind(99)));
}

#[test]
fn trailing_bytes_are_rejected() {
    let frame =
        Frame::Error(ErrorFrame { id: 1, code: ErrorCode::Stopped, message: String::new() });
    let mut body = frame.encode_body();
    body.push(0);
    assert_eq!(Frame::decode_body(&body), Err(WireError::TrailingBytes { extra: 1 }));
}

#[test]
fn shape_payload_mismatch_is_rejected() {
    let frame = Frame::Request(RequestFrame {
        id: 1,
        model: String::new(),
        priority: Priority::Batch,
        deadline_us: None,
        image: Tensor3::from_fn(Shape3::square(8, 3), |_, _, _| 0),
    });
    let mut body = frame.encode_body();
    // Shave one pixel off the payload: shape says 192, body holds 191.
    body.pop();
    assert_eq!(
        Frame::decode_body(&body),
        Err(WireError::PayloadMismatch { expected: 192, got: 191 })
    );
}

#[test]
fn eof_classification_distinguishes_clean_from_mid_frame() {
    let mut fb = FrameBuffer::new();
    assert_eq!(fb.eof_error(), None);
    fb.feed(&[0, 0]);
    assert_eq!(fb.eof_error(), Some(WireError::Truncated { needed: 4, got: 2 }));
    let mut fb = FrameBuffer::new();
    fb.feed(&8u32.to_be_bytes());
    fb.feed(&[1, 2, 3]);
    assert_eq!(fb.eof_error(), Some(WireError::Truncated { needed: 12, got: 7 }));
}
