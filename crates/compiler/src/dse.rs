//! Design-space exploration: folding × FIFO capacity × device cuts.
//!
//! The paper hand-picks one hardware configuration per network; FINN-R's
//! defining feature is *searching* that space against a resource budget.
//! This module does the estimate-sweep-pick loop over the knobs this
//! compiler exposes:
//!
//! * per-layer folding ([`FoldPlan`]) — searched by greedy bottleneck
//!   doubling: repeatedly take the busiest foldable layer of the
//!   fold-aware cycle model and double whichever lane knob (`pe`, `simd`,
//!   or both) shrinks it most, until the pipeline is limited by structures
//!   folding cannot touch (the host source, residual skip glue) or the
//!   resource budget;
//! * default FIFO capacity — a small candidate sweep (elasticity vs BRAM);
//! * device cuts — greedy contiguous first-fit of fold-aware per-stage
//!   resource estimates onto the budget's device type.
//!
//! Every candidate is scored analytically
//! (`hw_model::cycles::analyze_folded` + `estimate_stage_folded`),
//! dominated points are pruned, and the surviving Pareto frontier is
//! returned. [`pick`] is the one-call entry point: the fastest feasible
//! point under a budget. The differential battery in
//! `tests/dse_frontier.rs` compiles frontier points and checks the
//! estimator's promises against the cycle simulator.

use crate::lower::CompileOptions;
use dfe_platform::{DeviceSpec, ResourceUsage};
use hw_model::resources::{estimate_stage_folded, PER_DFE_INFRA_BRAM_KBITS};
use hw_model::{CycleModel, Fold, FoldPlan};
use qnn_nn::NetworkSpec;

/// What the design may spend.
#[derive(Clone, Copy, Debug)]
pub struct ResourceBudget {
    /// Device type to place onto.
    pub device: DeviceSpec,
    /// Maximum DFEs in the daisy chain.
    pub max_devices: usize,
}

impl ResourceBudget {
    /// A budget of `max_devices` devices of one type.
    pub fn new(device: DeviceSpec, max_devices: usize) -> Self {
        assert!(max_devices >= 1);
        Self { device, max_devices }
    }

    /// A single-device budget.
    pub fn single(device: DeviceSpec) -> Self {
        Self::new(device, 1)
    }
}

/// Search-shape knobs (defaults fit the paper's networks).
#[derive(Clone, Debug)]
pub struct DseConfig {
    /// Cap on either folding factor (power-of-two doubling never exceeds
    /// it).
    pub max_fold: usize,
    /// Default FIFO capacities to sweep.
    pub fifo_candidates: Vec<usize>,
    /// Maximum bottleneck-doubling steps.
    pub max_steps: usize,
}

impl Default for DseConfig {
    fn default() -> Self {
        Self { max_fold: 64, fifo_candidates: vec![256, 512, 1024], max_steps: 16 }
    }
}

/// One candidate configuration with its analytic score.
#[derive(Clone, Debug)]
pub struct DesignPoint {
    /// Per-layer folding.
    pub folding: FoldPlan,
    /// Default FIFO capacity (elements).
    pub fifo_capacity: usize,
    /// Device index per stage (contiguous, non-decreasing).
    pub stage_device: Vec<usize>,
    /// Analytic steady-state cycles per image.
    pub est_period: u64,
    /// Analytic single-image latency.
    pub est_latency: u64,
    /// Total usage across devices (infrastructure included).
    pub usage: ResourceUsage,
    /// Peak per-device utilization against the budget device (≤ 1 fits).
    pub utilization: f64,
}

impl DesignPoint {
    /// Number of DFEs this point occupies.
    pub fn num_devices(&self) -> usize {
        self.stage_device.iter().max().copied().unwrap_or(0) + 1
    }

    /// Compile options realizing this point (scheduler/datapath knobs stay
    /// at their defaults).
    pub fn compile_options(&self) -> CompileOptions {
        CompileOptions {
            fifo_capacity: self.fifo_capacity,
            stage_device: Some(self.stage_device.clone()),
            layer_folding: self.folding.clone(),
            ..CompileOptions::default()
        }
    }
}

/// The surviving non-dominated points, fastest first.
#[derive(Clone, Debug, Default)]
pub struct Frontier {
    /// Pareto-optimal points ordered by ascending `est_latency`.
    pub points: Vec<DesignPoint>,
}

impl Frontier {
    /// The fastest feasible point (`None` when nothing fit the budget).
    pub fn pick(&self) -> Option<&DesignPoint> {
        self.points.first()
    }

    /// The `k` fastest frontier points.
    pub fn top(&self, k: usize) -> &[DesignPoint] {
        &self.points[..k.min(self.points.len())]
    }
}

/// Layers the search may fold. The host source and residual skip glue are
/// fixed-rate; folding targets everything else.
fn foldable(name: &str) -> bool {
    name != "host.image" && !name.ends_with(".skip")
}

/// Greedy contiguous first-fit of fold-aware stage estimates, charging a
/// per-kernel FIFO BRAM term for the chosen default capacity. Returns the
/// per-stage device map and per-device usage, or `None` when any stage
/// alone (or the chain) exceeds the budget.
fn place(
    spec: &NetworkSpec,
    plan: &FoldPlan,
    fifo_capacity: usize,
    budget: &ResourceBudget,
) -> Option<(Vec<usize>, Vec<ResourceUsage>)> {
    let infra = ResourceUsage { luts: 0, ffs: 0, bram_kbits: PER_DFE_INFRA_BRAM_KBITS };
    let mut stage_device = Vec::with_capacity(spec.stages.len());
    let mut per_device: Vec<ResourceUsage> = vec![infra];
    for (i, stage) in spec.stages.iter().enumerate() {
        let est = estimate_stage_folded(stage, spec.act_bits, i, plan);
        let mut need = est.usage;
        // Each kernel's output FIFO holds `fifo_capacity` activation codes.
        need.bram_kbits +=
            est.kernels as u64 * (fifo_capacity as u64 * spec.act_bits as u64).div_ceil(1024);
        if !need.plus(infra).fits(&budget.device) {
            return None;
        }
        let cur = per_device.last_mut().expect("at least one device");
        if cur.plus(need).fits(&budget.device) {
            *cur = cur.plus(need);
        } else {
            per_device.push(infra.plus(need));
        }
        stage_device.push(per_device.len() - 1);
    }
    if per_device.len() > budget.max_devices {
        return None;
    }
    Some((stage_device, per_device))
}

fn evaluate(
    spec: &NetworkSpec,
    plan: &FoldPlan,
    fifo_capacity: usize,
    budget: &ResourceBudget,
) -> Option<DesignPoint> {
    let (stage_device, per_device) = place(spec, plan, fifo_capacity, budget)?;
    let model = CycleModel::analyze_folded(spec, plan);
    let usage: ResourceUsage = per_device.iter().copied().sum();
    let utilization = per_device
        .iter()
        .map(|u| u.utilization(&budget.device))
        .fold(0.0f64, f64::max);
    Some(DesignPoint {
        folding: plan.clone(),
        fifo_capacity,
        stage_device,
        est_period: model.period(),
        est_latency: model.latency(),
        usage,
        utilization,
    })
}

/// One bottleneck-doubling step: take the busiest foldable layer and
/// double the lane knob that shrinks it most. `None` when the pipeline is
/// already limited by unfoldable structures or the caps.
fn next_plan(spec: &NetworkSpec, plan: &FoldPlan, cfg: &DseConfig) -> Option<FoldPlan> {
    let model = CycleModel::analyze_folded(spec, plan);
    let floor = model
        .layers
        .iter()
        .filter(|l| !foldable(&l.name))
        .map(|l| l.busy)
        .max()
        .unwrap_or(0);
    let target = model.layers.iter().filter(|l| foldable(&l.name)).max_by_key(|l| l.busy)?;
    if target.busy <= floor {
        return None; // the host source / skip glue sets the period now
    }
    let f = plan.get(&target.name);
    let mut best: Option<(u64, u64, FoldPlan)> = None;
    for (pe, simd) in [(f.pe * 2, f.simd), (f.pe, f.simd * 2), (f.pe * 2, f.simd * 2)] {
        if pe > cfg.max_fold || simd > cfg.max_fold {
            continue;
        }
        let cand = plan.clone().with(&target.name, Fold::new(pe, simd));
        let m = CycleModel::analyze_folded(spec, &cand);
        let busy = m
            .layers
            .iter()
            .find(|l| l.name == target.name)
            .map(|l| l.busy)
            .unwrap_or(target.busy);
        if busy >= target.busy {
            continue; // this knob no longer moves the layer
        }
        let key = (m.period(), busy);
        if best.as_ref().is_none_or(|(p, b, _)| key < (*p, *b)) {
            best = Some((key.0, key.1, cand));
        }
    }
    best.map(|(_, _, c)| c)
}

/// Enumerate folding × FIFO × cut candidates under `budget`, score them
/// analytically, and return the Pareto frontier over
/// (latency, utilization, device count).
pub fn explore(spec: &NetworkSpec, budget: &ResourceBudget, cfg: &DseConfig) -> Frontier {
    let mut candidates = Vec::new();
    let mut plan = FoldPlan::new();
    for _ in 0..=cfg.max_steps {
        for &fifo in &cfg.fifo_candidates {
            if let Some(p) = evaluate(spec, &plan, fifo, budget) {
                candidates.push(p);
            }
        }
        match next_plan(spec, &plan, cfg) {
            Some(next) => plan = next,
            None => break,
        }
    }

    // Pareto prune: smaller latency, utilization, and device count win.
    let dominates = |a: &DesignPoint, b: &DesignPoint| {
        a.est_latency <= b.est_latency
            && a.utilization <= b.utilization + 1e-12
            && a.num_devices() <= b.num_devices()
            && (a.est_latency < b.est_latency
                || a.utilization + 1e-12 < b.utilization
                || a.num_devices() < b.num_devices())
    };
    let mut points: Vec<DesignPoint> = Vec::new();
    for c in &candidates {
        if candidates.iter().any(|o| dominates(o, c)) {
            continue;
        }
        if points
            .iter()
            .any(|p: &DesignPoint| p.folding == c.folding && p.fifo_capacity == c.fifo_capacity)
        {
            continue; // exact duplicate
        }
        points.push(c.clone());
    }
    points.sort_by(|a, b| {
        (a.est_latency, a.num_devices())
            .cmp(&(b.est_latency, b.num_devices()))
            .then(a.utilization.total_cmp(&b.utilization))
    });
    Frontier { points }
}

/// The fastest feasible design point under `budget` with the default
/// search shape (`None` when the network cannot fit).
pub fn pick(spec: &NetworkSpec, budget: &ResourceBudget) -> Option<DesignPoint> {
    explore(spec, budget, &DseConfig::default()).pick().cloned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfe_platform::{STRATIX_10_GX2800, STRATIX_V_5SGSD8};
    use qnn_nn::models;

    #[test]
    fn resnet18_frontier_beats_uniform() {
        let spec = models::resnet18(1000);
        let budget = ResourceBudget::new(STRATIX_10_GX2800, 2);
        let frontier = explore(&spec, &budget, &DseConfig::default());
        assert!(!frontier.points.is_empty(), "nothing fit the budget");
        let best = frontier.pick().expect("frontier non-empty");
        let uniform = CycleModel::analyze_folded(&spec, &FoldPlan::new());
        assert!(
            (best.est_latency as f64) < uniform.latency() as f64 / 1.5,
            "picked {} vs uniform {}",
            best.est_latency,
            uniform.latency()
        );
        // The picked plan folds the stem (the known bottleneck).
        assert!(!best.folding.is_uniform());
        assert!(best.utilization <= 1.0 + 1e-9);
    }

    #[test]
    fn frontier_is_pareto_minimal() {
        let spec = models::vgg_like(32, 10, 2);
        let budget = ResourceBudget::single(STRATIX_V_5SGSD8);
        let frontier = explore(&spec, &budget, &DseConfig::default());
        for (i, a) in frontier.points.iter().enumerate() {
            for (j, b) in frontier.points.iter().enumerate() {
                if i == j {
                    continue;
                }
                let dominates = a.est_latency <= b.est_latency
                    && a.utilization <= b.utilization
                    && a.num_devices() <= b.num_devices()
                    && (a.est_latency < b.est_latency
                        || a.utilization < b.utilization
                        || a.num_devices() < b.num_devices());
                assert!(!dominates, "point {j} dominated by point {i}");
            }
        }
    }

    #[test]
    fn tight_budget_prunes_or_empties() {
        // A tiny budget must never return an overfull point.
        let spec = models::resnet18(1000);
        let mut small = STRATIX_V_5SGSD8;
        small.luts /= 8;
        small.ffs /= 8;
        small.bram_kbits /= 8;
        let frontier = explore(&spec, &ResourceBudget::single(small), &DseConfig::default());
        for p in &frontier.points {
            assert!(p.utilization <= 1.0 + 1e-9);
            assert_eq!(p.num_devices(), 1);
        }
    }

    #[test]
    fn picked_point_compiles_to_valid_options() {
        let spec = models::test_net(8, 4, 2);
        let budget = ResourceBudget::single(STRATIX_10_GX2800);
        let point = pick(&spec, &budget).expect("test_net fits");
        let net = qnn_nn::Network::random(spec.clone(), 7);
        crate::lower::validate_options(&net, &point.compile_options()).expect("options valid");
    }
}
