//! Compiles a `qnn-nn` network into a DFE dataflow graph.
//!
//! The compiler mirrors the paper's Manager: "each layer is represented in
//! the DFE Manager by a single function call" (§III-B). Lowering walks the
//! validated spec and instantiates the streaming kernels of `qnn-kernels`,
//! wiring them with bounded streams; residual blocks become the Fig. 2
//! subgraph (split → conv → conv → adder → split → threshold) with a deep
//! skip-buffer FIFO absorbing the convolution path's delay.
//!
//! [`partition()`] places stages onto one or more DFEs (greedy, contiguous,
//! first-fit against the device's usable resources — §III-B6) and verifies
//! every cut against the MaxRing bandwidth budget. [`compile`] then builds
//! one [`dfe_platform::Graph`] per device, inserting channel-backed ring
//! hops at the cuts, so the same network runs on one device under the cycle
//! scheduler or across devices under the threaded executor — with
//! bit-identical results.

pub mod dse;
pub mod lower;
pub mod partition;
pub mod replicate;
pub mod run;

pub use dse::{explore, DesignPoint, DseConfig, Frontier, ResourceBudget};
pub use hw_model::{Fold, FoldPlan};
pub use lower::{compile, try_compile, validate_options, CompileOptions, CompiledNetwork, OptionsError};
pub use partition::{partition, partition_balanced, Partition, PartitionError};
pub use replicate::{compile_replicas, ArtifactCache, ModelArtifact, Replica, SpecMismatch};
pub use run::{run_image, run_images, Logits, SimResult};
