//! Lowering: network spec + parameters → streaming kernel graph(s).

use dfe_platform::threaded::link;
use dfe_platform::{
    Graph, HostSink, HostSource, Kernel, SchedulerMode, SinkHandle, StreamId, StreamSpec,
};
use hw_model::{Fold, FoldPlan};
use qnn_kernels::loader::encode_conv_params;
use qnn_kernels::{
    AddKernel, AttentionHeadKernel, ConcatKernel, ConvDatapath, ConvKernel, DotMode,
    HeadSplitKernel, LayerNormKernel, PadInserter, PoolKernel, PoolOp, SplitKernel,
    ThresholdKernel,
};
use qnn_nn::{Network, PoolKind, Stage, StageParams};
use qnn_quant::ThresholdUnit;
use qnn_tensor::{BinaryFilters, ConvGeometry, Shape3, Tensor3};

/// Compilation knobs.
///
/// `PartialEq`/`Eq` make options usable as an artifact-cache key
/// ([`crate::ArtifactCache`]): two registrations of a model with equal
/// options share one compiled snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompileOptions {
    /// Default FIFO capacity between kernels (elements). The paper's FMem
    /// buffers are small; 512 gives ample elasticity without hiding
    /// backpressure effects.
    pub fifo_capacity: usize,
    /// Capacity of cross-device ring channels (elements).
    pub ring_capacity: usize,
    /// Device index per stage (`None` ⇒ everything on one device). Obtain
    /// from [`crate::partition()`].
    pub stage_device: Option<Vec<usize>>,
    /// Stream parameters over per-kernel CPU links before inference
    /// (§III-B1a) instead of instantiating pre-filled caches. Functionally
    /// identical; adds the one-time load cycles to the run.
    pub stream_parameters: bool,
    /// Cycle-stepping strategy for every compiled device graph (and, via
    /// `compile_replicas`, every `qnn-serve` replica worker). Dense and
    /// ReadyList are bit-identical in outputs and reports; the default
    /// follows `QNN_SCHEDULER` (ReadyList when unset).
    pub scheduler: SchedulerMode,
    /// Busy-path datapath for every convolution kernel. Packed and
    /// ScalarReference are bit-identical in outputs and reports; the
    /// default follows `QNN_CONV_DATAPATH` (Packed when unset).
    pub conv_datapath: ConvDatapath,
    /// Macro-tick span dispatch for every compiled device graph: wake a
    /// kernel once per available span instead of once per element. On and
    /// off are bit-identical in outputs and reports; the default follows
    /// `QNN_MACRO_TICKS` (on when unset).
    pub macro_ticks: bool,
    /// Steady-state schedule replay for single-device graphs: record one
    /// image's wake/commit trace and replay it for subsequent images
    /// (see `dfe_platform::replay`). On and off are bit-identical in
    /// outputs and reports; the default follows `QNN_SCHED_REPLAY` (on
    /// when unset). Only takes effect under `ReadyList`; multi-device
    /// graphs are stepped by the lockstep executor and never engage it.
    pub schedule_replay: bool,
    /// Per-layer folding overrides, keyed by the lowering's stage labels
    /// (`conv0`, `pool1`, `fc5`, `res2.conv1`, `res3.ds`, …). Layers not
    /// mentioned run unfolded. Folding changes per-cycle lane widths only,
    /// never element order, so logits are bit-identical at any setting.
    /// Unknown labels and zero factors are rejected by [`try_compile`].
    pub layer_folding: FoldPlan,
    /// Per-stream FIFO capacity overrides, keyed by full stream name
    /// (`image`, `conv0.out`, `res2.skipbuf`, …). Streams not mentioned
    /// use `fifo_capacity` (or their structural default, e.g. skip
    /// buffers). Unknown names and zero capacities are rejected by
    /// [`try_compile`].
    pub fifo_overrides: Vec<(String, usize)>,
    /// Random stall injection `(seed, percent)`: wrap every lowered kernel
    /// in a `dfe_platform::StallInjector` with a per-kernel seed derived
    /// from `seed`, suppressing ~`percent`% of its ticks. A handshake-test
    /// instrument — logits must be bit-identical to the uninjected run at
    /// any setting. Injected stalls can produce legitimate full-stall
    /// cycles, so [`crate::run_images`] disables deadlock detection when
    /// this is set (the cycle budget still bounds the run); injectors also
    /// veto span dispatch and schedule replay for the wrapped kernels.
    pub stall_injection: Option<(u64, u8)>,
}

impl Default for CompileOptions {
    fn default() -> Self {
        Self {
            fifo_capacity: 512,
            ring_capacity: 4096,
            stage_device: None,
            stream_parameters: false,
            scheduler: SchedulerMode::default(),
            conv_datapath: ConvDatapath::default(),
            macro_ticks: dfe_platform::macro_ticks_default(),
            schedule_replay: dfe_platform::schedule_replay_default(),
            layer_folding: FoldPlan::new(),
            fifo_overrides: Vec::new(),
            stall_injection: None,
        }
    }
}

impl CompileOptions {
    /// Build options with every environment knob re-read *now*:
    /// `QNN_SCHEDULER`, `QNN_CONV_DATAPATH`, `QNN_MACRO_TICKS` and
    /// `QNN_SCHED_REPLAY` are parsed fresh from the current environment,
    /// while everything else keeps its built-in default.
    ///
    /// This is the one place the env-knob precedence lives: an explicit
    /// field set by the caller beats the environment, and the environment
    /// beats the built-in default. [`CompileOptions::default`] reads the
    /// same knobs but through per-process caches (resolved once at first
    /// use), which is what long-lived tools want; `from_env` is for
    /// harnesses that mutate the environment between compiles and expect
    /// the change to take effect.
    pub fn from_env() -> Self {
        Self {
            scheduler: SchedulerMode::from_env(),
            conv_datapath: ConvDatapath::from_env(),
            macro_ticks: dfe_platform::macro_ticks_from_env(),
            schedule_replay: dfe_platform::schedule_replay_from_env(),
            ..Self::default()
        }
    }
}

/// A rejected [`CompileOptions`] override (see [`try_compile`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OptionsError {
    /// A `layer_folding` label matched no foldable layer of this network.
    UnknownLayer(String),
    /// A `layer_folding` entry had `pe == 0` or `simd == 0`.
    ZeroFolding(String),
    /// A `fifo_overrides` name matched no stream of this network.
    UnknownStream(String),
    /// A `fifo_overrides` entry had capacity 0.
    ZeroFifoCapacity(String),
}

impl std::fmt::Display for OptionsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OptionsError::UnknownLayer(l) => {
                write!(f, "layer_folding names unknown layer {l:?} (labels follow the lowering: conv0, pool1, fc5, res2.conv1, …)")
            }
            OptionsError::ZeroFolding(l) => {
                write!(f, "layer_folding for {l:?} has a zero factor; pe and simd must be ≥ 1")
            }
            OptionsError::UnknownStream(s) => {
                write!(f, "fifo_overrides names unknown stream {s:?} (names follow the lowering: image, conv0.out, res2.skipbuf, …)")
            }
            OptionsError::ZeroFifoCapacity(s) => {
                write!(f, "fifo_overrides for {s:?} has capacity 0; streams need at least one slot")
            }
        }
    }
}

impl std::error::Error for OptionsError {}

/// A compiled network: one graph per device plus the logits sink handle.
pub struct CompiledNetwork {
    /// Device graphs in ring order. Length 1 for single-DFE builds.
    pub graphs: Vec<Graph>,
    /// Handle collecting `classes × images` logits.
    pub sink: SinkHandle,
    /// Number of images preloaded into the source.
    pub images: usize,
    /// Number of classes per image.
    pub classes: usize,
}

/// A stream endpoint: device index + stream id within that device's graph.
#[derive(Clone, Copy, Debug)]
struct Wire {
    device: usize,
    id: StreamId,
}

struct Builder {
    graphs: Vec<Graph>,
    fifo_capacity: usize,
    ring_capacity: usize,
    links: usize,
    stream_parameters: bool,
    act_bits: u32,
    conv_datapath: ConvDatapath,
    /// Folding overrides with a consumed flag; any entry still unconsumed
    /// after lowering names a layer this network does not have.
    folds: Vec<(String, Fold, bool)>,
    /// FIFO capacity overrides with a consumed flag, same discipline.
    fifos: Vec<(String, usize, bool)>,
    /// Stall-injection setting and a running kernel counter for per-kernel
    /// seed derivation.
    stall: Option<(u64, u8)>,
    kernel_seq: u64,
}

impl Builder {
    fn new(devices: usize, opts: &CompileOptions, act_bits: u32) -> Self {
        Self {
            graphs: (0..devices)
                .map(|_| {
                    let mut g = Graph::with_scheduler(opts.scheduler);
                    g.set_macro_ticks(opts.macro_ticks);
                    g.set_schedule_replay(opts.schedule_replay);
                    g
                })
                .collect(),
            fifo_capacity: opts.fifo_capacity,
            ring_capacity: opts.ring_capacity,
            links: 0,
            stream_parameters: opts.stream_parameters,
            act_bits,
            conv_datapath: opts.conv_datapath,
            folds: opts
                .layer_folding
                .entries()
                .iter()
                .map(|(l, f)| (l.clone(), *f, false))
                .collect(),
            fifos: opts
                .fifo_overrides
                .iter()
                .map(|(n, c)| (n.clone(), *c, false))
                .collect(),
            stall: opts.stall_injection,
            kernel_seq: 0,
        }
    }

    /// The fold for `label`, marking the override consumed.
    fn fold_for(&mut self, label: &str) -> Fold {
        for (l, f, used) in &mut self.folds {
            if l == label {
                *used = true;
                return *f;
            }
        }
        Fold::UNIT
    }

    fn stream(&mut self, device: usize, name: String, bits: u32, capacity: usize) -> Wire {
        let mut capacity = capacity;
        for (n, c, used) in &mut self.fifos {
            if *n == name {
                *used = true;
                capacity = *c;
            }
        }
        let id = self.graphs[device].add_stream(StreamSpec::new(name, bits, capacity));
        Wire { device, id }
    }

    fn kernel(&mut self, device: usize, k: Box<dyn Kernel>, inputs: &[Wire], outputs: &[Wire]) {
        // Stall injection wraps every kernel with its own splitmix-spread
        // seed, so each one sees an independent stall pattern.
        let k = match self.stall {
            Some((seed, pct)) => {
                let per_kernel = seed ^ self.kernel_seq.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                dfe_platform::StallInjector::wrap(k, per_kernel, pct)
            }
            None => k,
        };
        self.kernel_seq += 1;
        let ins: Vec<StreamId> = inputs
            .iter()
            .map(|w| {
                assert_eq!(
                    w.device, device,
                    "input wire crosses devices without a link"
                );
                w.id
            })
            .collect();
        let outs: Vec<StreamId> = outputs
            .iter()
            .map(|w| {
                assert_eq!(
                    w.device, device,
                    "output wire crosses devices without a link"
                );
                w.id
            })
            .collect();
        self.graphs[device].add_kernel(k, &ins, &outs);
    }

    /// Move `wire` to `device` through a MaxRing channel if needed.
    #[allow(clippy::wrong_self_convention)] // "to" = destination device, not a conversion
    fn to_device(&mut self, wire: Wire, device: usize, bits: u32, expected: u64) -> Wire {
        if wire.device == device {
            return wire;
        }
        let name = format!("ring{}", self.links);
        self.links += 1;
        let (egress, ingress) = link(&name, self.ring_capacity, expected);
        self.kernel(wire.device, Box::new(egress), &[wire], &[]);
        let out = self.stream(device, format!("{name}.out"), bits, self.fifo_capacity);
        self.kernel(device, Box::new(ingress), &[], &[out]);
        out
    }

    /// Pad (if needed) then convolve. Returns the output wire. `geom` is
    /// the logical geometry (possibly padded); the conv kernel itself sees
    /// the pre-padded equivalent.
    #[allow(clippy::too_many_arguments)]
    fn conv(
        &mut self,
        device: usize,
        label: &str,
        input: Wire,
        geom: &ConvGeometry,
        filters: &BinaryFilters,
        thresholds: Option<&[ThresholdUnit]>,
        mode: DotMode,
        out_bits: u32,
        out_capacity: usize,
    ) -> Wire {
        let in_bits = match mode {
            DotMode::I8 => 8,
            DotMode::Codes { bits } => bits,
        };
        let fold = self.fold_for(label);
        let conv_in = if geom.pad > 0 {
            let padded = self.stream(
                device,
                format!("{label}.padded"),
                in_bits,
                self.fifo_capacity,
            );
            // The pad inserter widens with the conv's input side so it
            // never throttles a folded consumer.
            self.kernel(
                device,
                Box::new(
                    PadInserter::new(format!("{label}.pad"), geom.input, geom.pad, 0)
                        .with_lanes(fold.simd),
                ),
                &[input],
                &[padded],
            );
            padded
        } else {
            input
        };
        let padded_geom = ConvGeometry::new(geom.padded_input(), geom.filter, geom.stride, 0);
        let out = self.stream(device, format!("{label}.out"), out_bits, out_capacity);
        if self.stream_parameters {
            // §III-B1a: caches are filled from a CPU parameter stream
            // before the first image; the kernel binarizes on arrival.
            let blob = encode_conv_params(filters, thresholds, self.act_bits);
            let params = self.stream(device, format!("{label}.params"), 32, self.fifo_capacity);
            self.kernel(
                device,
                Box::new(HostSource::new(format!("{label}.param_src"), blob)),
                &[],
                &[params],
            );
            self.kernel(
                device,
                Box::new(
                    ConvKernel::new_streamed(
                        label.to_string(),
                        padded_geom,
                        mode,
                        thresholds.is_some(),
                        self.act_bits,
                    )
                    .with_datapath(self.conv_datapath)
                    .with_folding(fold.pe, fold.simd),
                ),
                &[conv_in, params],
                &[out],
            );
        } else {
            self.kernel(
                device,
                Box::new(
                    ConvKernel::new(
                        label.to_string(),
                        padded_geom,
                        filters.clone(),
                        thresholds.map(<[ThresholdUnit]>::to_vec),
                        mode,
                    )
                    .with_datapath(self.conv_datapath)
                    .with_folding(fold.pe, fold.simd),
                ),
                &[conv_in],
                &[out],
            );
        }
        out
    }
}

/// Skip-buffer capacity covering the convolution path's worst-case lead:
/// both window fills plus one position of compute halts and slack.
fn skip_capacity(geom: &qnn_nn::ResidualGeometry) -> usize {
    let b1 = ConvGeometry::new(
        geom.conv1.padded_input(),
        geom.conv1.filter,
        geom.conv1.stride,
        0,
    )
    .depth_first_buffer();
    let b2 = ConvGeometry::new(
        geom.conv2.padded_input(),
        geom.conv2.filter,
        geom.conv2.stride,
        0,
    )
    .depth_first_buffer();
    b1 + b2 + geom.conv2.filter.o + 256
}

/// Compile a network over `images` into per-device graphs, panicking on
/// invalid per-layer overrides (see [`try_compile`] for the checked form).
pub fn compile(net: &Network, images: &[Tensor3<i8>], opts: &CompileOptions) -> CompiledNetwork {
    match try_compile(net, images, opts) {
        Ok(c) => c,
        Err(e) => panic!("invalid CompileOptions: {e}"),
    }
}

/// Validate `opts` against `net` without keeping the compiled graphs:
/// compiles one all-zero image and reports the first override error.
pub fn validate_options(net: &Network, opts: &CompileOptions) -> Result<(), OptionsError> {
    let zero = Tensor3::<i8>::zeros(net.spec.input);
    try_compile(net, &[zero], opts).map(|_| ())
}

/// Compile a network over `images` into per-device graphs, rejecting
/// invalid `layer_folding` / `fifo_overrides` entries with a typed error.
pub fn try_compile(
    net: &Network,
    images: &[Tensor3<i8>],
    opts: &CompileOptions,
) -> Result<CompiledNetwork, OptionsError> {
    for (label, fold) in opts.layer_folding.entries() {
        if fold.pe == 0 || fold.simd == 0 {
            return Err(OptionsError::ZeroFolding(label.clone()));
        }
    }
    for (name, capacity) in &opts.fifo_overrides {
        if *capacity == 0 {
            return Err(OptionsError::ZeroFifoCapacity(name.clone()));
        }
    }
    let spec = &net.spec;
    let n_images = images.len();
    assert!(n_images > 0, "compile needs at least one image");
    let act_bits = spec.act_bits;
    let stage_device: Vec<usize> = opts
        .stage_device
        .clone()
        .unwrap_or_else(|| vec![0; spec.stages.len()]);
    assert_eq!(
        stage_device.len(),
        spec.stages.len(),
        "one device per stage"
    );
    let devices = stage_device.iter().max().copied().unwrap_or(0) + 1;

    let mut b = Builder::new(devices, opts, act_bits);

    // Image source on the first device.
    let mut pixels = Vec::with_capacity(spec.input.len() * n_images);
    for img in images {
        assert_eq!(img.shape(), spec.input, "image shape mismatch");
        pixels.extend(img.as_slice().iter().map(|&p| i32::from(p)));
    }
    let mut prev = b.stream(stage_device[0], "image".into(), 8, opts.fifo_capacity);
    b.kernel(
        stage_device[0],
        Box::new(HostSource::new("host.src", pixels).with_period(spec.input.len())),
        &[],
        &[prev],
    );
    let mut prev_shape = spec.input;
    let mut prev_bits = 8u32;
    // Carried skip stream (produced by an identity-linked residual stage).
    let mut skip: Option<Wire> = None;

    let mut logits_wire: Option<Wire> = None;

    for (i, (stage, params)) in spec.stages.iter().zip(&net.params).enumerate() {
        let dev = stage_device[i];
        prev = b.to_device(prev, dev, prev_bits, (prev_shape.len() * n_images) as u64);
        if let Some(s) = skip {
            // Skip crosses the cut only when the consumer needs it.
            let consumed_here =
                matches!(stage, Stage::Residual { geom } if geom.downsample.is_none());
            if consumed_here && s.device != dev {
                skip = Some(b.to_device(s, dev, 16, (prev_shape.len() * n_images) as u64));
            }
        }
        // Does the *next* stage consume a carried skip?
        let next_wants_skip = matches!(
            spec.stages.get(i + 1),
            Some(Stage::Residual { geom }) if geom.downsample.is_none()
        );

        match (stage, params) {
            (
                Stage::ConvInput { geom },
                StageParams::Conv {
                    filters,
                    thresholds,
                },
            ) => {
                prev = b.conv(
                    dev,
                    &format!("conv{i}"),
                    prev,
                    geom,
                    filters,
                    Some(thresholds),
                    DotMode::I8,
                    act_bits,
                    opts.fifo_capacity,
                );
                prev_shape = geom.output();
                prev_bits = act_bits;
                skip = None;
            }
            (
                Stage::Conv { geom },
                StageParams::Conv {
                    filters,
                    thresholds,
                },
            ) => {
                prev = b.conv(
                    dev,
                    &format!("conv{i}"),
                    prev,
                    geom,
                    filters,
                    Some(thresholds),
                    DotMode::Codes { bits: act_bits },
                    act_bits,
                    opts.fifo_capacity,
                );
                prev_shape = geom.output();
                prev_bits = act_bits;
                skip = None;
            }
            (
                Stage::Pool {
                    input,
                    k,
                    stride,
                    pad,
                    kind,
                },
                StageParams::Pool,
            ) => {
                let fold = b.fold_for(&format!("pool{i}"));
                let pool_in = if *pad > 0 {
                    let padded =
                        b.stream(dev, format!("pool{i}.padded"), act_bits, opts.fifo_capacity);
                    b.kernel(
                        dev,
                        Box::new(
                            PadInserter::new(format!("pool{i}.pad"), *input, *pad, 0)
                                .with_lanes(fold.simd),
                        ),
                        &[prev],
                        &[padded],
                    );
                    padded
                } else {
                    prev
                };
                let padded_shape = Shape3::new(input.h + 2 * pad, input.w + 2 * pad, input.c);
                let op = match kind {
                    PoolKind::Max => PoolOp::Max,
                    PoolKind::AvgSum => PoolOp::AvgShift,
                };
                let kernel = PoolKernel::new(format!("pool{i}"), padded_shape, *k, *stride, op)
                    .with_folding(fold.pe, fold.simd);
                let out_shape = kernel.output_shape();
                let out = b.stream(dev, format!("pool{i}.out"), act_bits, opts.fifo_capacity);
                b.kernel(dev, Box::new(kernel), &[pool_in], &[out]);
                prev = out;
                prev_shape = out_shape;
                prev_bits = act_bits;
                skip = None;
            }
            (
                Stage::FullyConnected {
                    in_features,
                    out_features,
                    bn_act,
                },
                StageParams::FullyConnected {
                    filters,
                    thresholds,
                },
            ) => {
                // FC is literally a 1×1 convolution over the flattened map
                // (§III-B4); flattening is the identity in stream order.
                let geom = ConvGeometry::new(
                    Shape3::new(1, 1, *in_features),
                    qnn_tensor::FilterShape::new(1, *in_features, *out_features),
                    1,
                    0,
                );
                let (thr, out_bits) = if *bn_act {
                    (Some(thresholds.as_slice()), act_bits)
                } else {
                    (None, 32)
                };
                prev = b.conv(
                    dev,
                    &format!("fc{i}"),
                    prev,
                    &geom,
                    filters,
                    thr,
                    DotMode::Codes { bits: 8 },
                    out_bits,
                    opts.fifo_capacity,
                );
                prev_shape = Shape3::new(1, 1, *out_features);
                prev_bits = out_bits;
                skip = None;
                if !bn_act {
                    logits_wire = Some(prev);
                }
            }
            (
                Stage::Residual { geom },
                StageParams::Residual {
                    filters1,
                    thr_mid,
                    filters2,
                    thr_out,
                    downsample,
                },
            ) => {
                let elems = (prev_shape.len() * n_images) as u64;
                let _ = elems;
                // --- establish the conv-path input and the skip input ---
                let (conv_in, skip_in) = match (geom.downsample, downsample) {
                    (Some(ds_geom), Some(ds_filters)) => {
                        // Split the regular input; the skip path goes
                        // through the 1×1 strided downsample conv.
                        let a = b.stream(dev, format!("res{i}.a"), act_bits, opts.fifo_capacity);
                        let ds_in =
                            b.stream(dev, format!("res{i}.dsin"), act_bits, skip_capacity(geom));
                        b.kernel(
                            dev,
                            Box::new(SplitKernel::new(format!("res{i}.split_in"))),
                            &[prev],
                            &[a, ds_in],
                        );
                        let ds_out = b.conv(
                            dev,
                            &format!("res{i}.ds"),
                            ds_in,
                            &ds_geom,
                            ds_filters,
                            None,
                            DotMode::Codes { bits: act_bits },
                            16,
                            skip_capacity(geom),
                        );
                        // Any carried skip is superseded at downsampling
                        // blocks (shape changes); the lookahead logic never
                        // produces one in that case.
                        assert!(skip.is_none(), "carried skip into a downsample block");
                        (a, ds_out)
                    }
                    (None, None) => match skip.take() {
                        Some(s) => (prev, s),
                        None => {
                            // Chain head: skip is the widened regular input.
                            let a =
                                b.stream(dev, format!("res{i}.a"), act_bits, opts.fifo_capacity);
                            let s =
                                b.stream(dev, format!("res{i}.skipbuf"), 16, skip_capacity(geom));
                            b.kernel(
                                dev,
                                Box::new(SplitKernel::new(format!("res{i}.split_in"))),
                                &[prev],
                                &[a, s],
                            );
                            (a, s)
                        }
                    },
                    _ => unreachable!("spec/params downsample mismatch"),
                };

                // --- conv path: conv1 (+BN+act) → conv2 (raw) ---
                let mid = b.conv(
                    dev,
                    &format!("res{i}.conv1"),
                    conv_in,
                    &geom.conv1,
                    filters1,
                    Some(thr_mid),
                    DotMode::Codes { bits: act_bits },
                    act_bits,
                    opts.fifo_capacity,
                );
                let c2 = b.conv(
                    dev,
                    &format!("res{i}.conv2"),
                    mid,
                    &geom.conv2,
                    filters2,
                    None,
                    DotMode::Codes { bits: act_bits },
                    16,
                    opts.fifo_capacity,
                );

                // --- adder and the output split of Fig. 2 ---
                let z = b.stream(dev, format!("res{i}.z"), 16, opts.fifo_capacity);
                b.kernel(
                    dev,
                    Box::new(AddKernel::new(format!("res{i}.add"))),
                    &[c2, skip_in],
                    &[z],
                );

                let out_shape = geom.output();
                let thr_in = if next_wants_skip {
                    // Split z: one copy continues as the next block's skip,
                    // sized for that block's path delay.
                    let next_geom = match spec.stages[i + 1] {
                        Stage::Residual { geom } => geom,
                        _ => unreachable!("lookahead said residual"),
                    };
                    let z_a = b.stream(dev, format!("res{i}.z_a"), 16, opts.fifo_capacity);
                    let z_skip = b.stream(
                        dev,
                        format!("res{i}.skipbuf"),
                        16,
                        skip_capacity(&next_geom),
                    );
                    b.kernel(
                        dev,
                        Box::new(SplitKernel::new(format!("res{i}.split_out"))),
                        &[z],
                        &[z_a, z_skip],
                    );
                    skip = Some(z_skip);
                    z_a
                } else {
                    skip = None;
                    z
                };
                let out = b.stream(dev, format!("res{i}.out"), act_bits, opts.fifo_capacity);
                b.kernel(
                    dev,
                    Box::new(ThresholdKernel::new(format!("res{i}.thr"), thr_out.clone())),
                    &[thr_in],
                    &[out],
                );
                prev = out;
                prev_shape = out_shape;
                prev_bits = act_bits;
            }
            (Stage::Encoder { geom }, StageParams::Encoder(p)) => {
                let projs = geom.projection_geometries();
                let d = geom.d_model;
                let codes = DotMode::Codes { bits: act_bits };
                // The attention skip is consumed only after the whole
                // sequence has crossed the Q/K/V → heads → concat → proj
                // pipeline (attention needs every key before the first
                // output token), so the buffer must hold the full sequence
                // plus slack.
                let skip_cap = geom.seq_len * d + 2 * d + 64;

                // --- attention sublayer: split skip, fan out Q/K/V ---
                let a = b.stream(dev, format!("enc{i}.a"), act_bits, opts.fifo_capacity);
                let skip_s = b.stream(dev, format!("enc{i}.skipbuf"), 16, skip_cap);
                b.kernel(
                    dev,
                    Box::new(SplitKernel::new(format!("enc{i}.split_in"))),
                    &[prev],
                    &[a, skip_s],
                );
                let qa = b.stream(dev, format!("enc{i}.qa"), act_bits, opts.fifo_capacity);
                let kva = b.stream(dev, format!("enc{i}.kva"), act_bits, opts.fifo_capacity);
                b.kernel(
                    dev,
                    Box::new(SplitKernel::new(format!("enc{i}.split_q"))),
                    &[a],
                    &[qa, kva],
                );
                let ka = b.stream(dev, format!("enc{i}.ka"), act_bits, opts.fifo_capacity);
                let va = b.stream(dev, format!("enc{i}.va"), act_bits, opts.fifo_capacity);
                b.kernel(
                    dev,
                    Box::new(SplitKernel::new(format!("enc{i}.split_kv"))),
                    &[kva],
                    &[ka, va],
                );
                let q = b.conv(
                    dev, &format!("enc{i}.q"), qa, &projs[0], &p.wq, Some(&p.thr_q),
                    codes, act_bits, opts.fifo_capacity,
                );
                let k = b.conv(
                    dev, &format!("enc{i}.k"), ka, &projs[1], &p.wk, Some(&p.thr_k),
                    codes, act_bits, opts.fifo_capacity,
                );
                let v = b.conv(
                    dev, &format!("enc{i}.v"), va, &projs[2], &p.wv, Some(&p.thr_v),
                    codes, act_bits, opts.fifo_capacity,
                );

                // --- per-head fan-out, attention, and rejoin ---
                let mut head_wires: Vec<Vec<Wire>> = Vec::new();
                for (which, src) in [("q", q), ("k", k), ("v", v)] {
                    let outs: Vec<Wire> = (0..geom.heads)
                        .map(|h| {
                            b.stream(
                                dev,
                                format!("enc{i}.{which}.h{h}"),
                                act_bits,
                                opts.fifo_capacity,
                            )
                        })
                        .collect();
                    b.kernel(
                        dev,
                        Box::new(HeadSplitKernel::new(
                            format!("enc{i}.{which}.heads"),
                            geom.heads,
                            geom.head_dim,
                        )),
                        &[src],
                        &outs,
                    );
                    head_wires.push(outs);
                }
                let attn_outs: Vec<Wire> = (0..geom.heads)
                    .map(|h| {
                        let out = b.stream(
                            dev,
                            format!("enc{i}.attn{h}.out"),
                            act_bits,
                            opts.fifo_capacity,
                        );
                        b.kernel(
                            dev,
                            Box::new(AttentionHeadKernel::new(
                                format!("enc{i}.attn{h}"),
                                act_bits,
                                geom.seq_len,
                                geom.head_dim,
                            )),
                            &[head_wires[0][h], head_wires[1][h], head_wires[2][h]],
                            &[out],
                        );
                        out
                    })
                    .collect();
                let cat = b.stream(dev, format!("enc{i}.cat.out"), act_bits, opts.fifo_capacity);
                b.kernel(
                    dev,
                    Box::new(ConcatKernel::new(
                        format!("enc{i}.cat"),
                        geom.heads,
                        geom.head_dim,
                    )),
                    &attn_outs,
                    &[cat],
                );

                // --- output projection (raw), residual add, LayerNorm ---
                let proj = b.conv(
                    dev, &format!("enc{i}.proj"), cat, &projs[3], &p.wo, None,
                    codes, 16, opts.fifo_capacity,
                );
                let z = b.stream(dev, format!("enc{i}.z"), 16, opts.fifo_capacity);
                b.kernel(
                    dev,
                    Box::new(AddKernel::new(format!("enc{i}.add"))),
                    &[proj, skip_s],
                    &[z],
                );
                let ln_out = b.stream(dev, format!("enc{i}.ln.out"), act_bits, opts.fifo_capacity);
                b.kernel(
                    dev,
                    Box::new(LayerNormKernel::new(
                        format!("enc{i}.ln"),
                        p.ln_gain.clone(),
                        act_bits,
                    )),
                    &[z],
                    &[ln_out],
                );
                prev = ln_out;

                // --- optional feed-forward sublayer with its own skip ---
                if let Some(ffn) = &p.ffn {
                    // ff1/ff2 emit token t's output right after absorbing
                    // token t, so two tokens of each width cover the lead.
                    let ff_cap = 2 * (d + geom.ff_hidden) + 64;
                    let fa = b.stream(dev, format!("enc{i}.ffa"), act_bits, opts.fifo_capacity);
                    let fskip = b.stream(dev, format!("enc{i}.ffskip"), 16, ff_cap);
                    b.kernel(
                        dev,
                        Box::new(SplitKernel::new(format!("enc{i}.split_ff"))),
                        &[prev],
                        &[fa, fskip],
                    );
                    let f1 = b.conv(
                        dev, &format!("enc{i}.ff1"), fa, &projs[4], &ffn.w1, Some(&ffn.thr1),
                        codes, act_bits, opts.fifo_capacity,
                    );
                    let f2 = b.conv(
                        dev, &format!("enc{i}.ff2"), f1, &projs[5], &ffn.w2, None,
                        codes, 16, opts.fifo_capacity,
                    );
                    let z2 = b.stream(dev, format!("enc{i}.z2"), 16, opts.fifo_capacity);
                    b.kernel(
                        dev,
                        Box::new(AddKernel::new(format!("enc{i}.add2"))),
                        &[f2, fskip],
                        &[z2],
                    );
                    let ln2_out =
                        b.stream(dev, format!("enc{i}.ln2.out"), act_bits, opts.fifo_capacity);
                    b.kernel(
                        dev,
                        Box::new(LayerNormKernel::new(
                            format!("enc{i}.ln2"),
                            ffn.ln2_gain.clone(),
                            act_bits,
                        )),
                        &[z2],
                        &[ln2_out],
                    );
                    prev = ln2_out;
                }
                prev_shape = geom.shape();
                prev_bits = act_bits;
                skip = None;
            }
            _ => unreachable!("stage/params variant mismatch"),
        }
    }

    let logits = logits_wire.expect("network must end in a logits FC layer");
    let classes = spec.classes();
    let (sink, handle) = HostSink::new("host.sink", classes * n_images);
    let sink = sink.with_period(classes);
    b.kernel(logits.device, Box::new(sink), &[logits], &[]);
    // Arm the replay marker on the logits wire: one image boundary per
    // `classes` popped logits. Single-device only — multi-device graphs
    // are stepped by the lockstep executor, which bypasses `run`.
    if devices == 1 {
        b.graphs[logits.device].set_replay_marker(logits.id, classes as u64);
    }

    // Every override must have been consumed by the lowering; leftovers
    // name layers/streams this network does not have.
    if let Some((label, _, _)) = b.folds.iter().find(|(_, _, used)| !used) {
        return Err(OptionsError::UnknownLayer(label.clone()));
    }
    if let Some((name, _, _)) = b.fifos.iter().find(|(_, _, used)| !used) {
        return Err(OptionsError::UnknownStream(name.clone()));
    }

    Ok(CompiledNetwork {
        graphs: b.graphs,
        sink: handle,
        images: n_images,
        classes,
    })
}

#[cfg(test)]
mod from_env_tests {
    use super::*;
    use std::sync::Mutex;

    /// Env-var tests share the process environment, so they serialize on
    /// one lock and restore whatever value they found.
    static ENV_LOCK: Mutex<()> = Mutex::new(());

    fn with_env(key: &str, value: &str, f: impl FnOnce()) {
        let guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        // Force the process-wide caches to resolve *before* mutating the
        // environment: `Default::default()` must keep returning the value
        // it resolved at first use, whatever this test sets.
        let _ = CompileOptions::default();
        let saved = std::env::var(key).ok();
        std::env::set_var(key, value);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
        match saved {
            Some(v) => std::env::set_var(key, v),
            None => std::env::remove_var(key),
        }
        drop(guard);
        if let Err(e) = result {
            std::panic::resume_unwind(e);
        }
    }

    #[test]
    fn scheduler_knob_is_read_fresh() {
        with_env("QNN_SCHEDULER", "dense", || {
            assert_eq!(CompileOptions::from_env().scheduler, SchedulerMode::Dense);
        });
        with_env("QNN_SCHEDULER", "ready", || {
            assert_eq!(CompileOptions::from_env().scheduler, SchedulerMode::ReadyList);
        });
    }

    #[test]
    fn conv_datapath_knob_is_read_fresh() {
        with_env("QNN_CONV_DATAPATH", "scalar", || {
            assert_eq!(
                CompileOptions::from_env().conv_datapath,
                ConvDatapath::ScalarReference
            );
        });
        with_env("QNN_CONV_DATAPATH", "packed", || {
            assert_eq!(CompileOptions::from_env().conv_datapath, ConvDatapath::Packed);
        });
    }

    #[test]
    fn macro_ticks_knob_is_read_fresh() {
        with_env("QNN_MACRO_TICKS", "0", || {
            assert!(!CompileOptions::from_env().macro_ticks);
        });
        with_env("QNN_MACRO_TICKS", "1", || {
            assert!(CompileOptions::from_env().macro_ticks);
        });
    }

    #[test]
    fn schedule_replay_knob_is_read_fresh() {
        with_env("QNN_SCHED_REPLAY", "0", || {
            assert!(!CompileOptions::from_env().schedule_replay);
        });
        with_env("QNN_SCHED_REPLAY", "1", || {
            assert!(CompileOptions::from_env().schedule_replay);
        });
    }

    #[test]
    fn non_knob_fields_keep_their_defaults() {
        with_env("QNN_MACRO_TICKS", "0", || {
            let opts = CompileOptions::from_env();
            let defaults = CompileOptions::default();
            assert_eq!(opts.fifo_capacity, defaults.fifo_capacity);
            assert_eq!(opts.ring_capacity, defaults.ring_capacity);
            assert_eq!(opts.stage_device, defaults.stage_device);
            assert_eq!(opts.layer_folding, defaults.layer_folding);
            assert_eq!(opts.fifo_overrides, defaults.fifo_overrides);
        });
    }
}

#[cfg(test)]
mod options_tests {
    use super::*;
    use crate::run::run_images;
    use qnn_nn::models;
    use qnn_tensor::Shape3;

    fn net() -> Network {
        Network::random(models::test_net(8, 4, 2), 21)
    }

    fn image(seed: u64) -> Tensor3<i8> {
        Tensor3::from_fn(Shape3::square(8, 3), |y, x, c| {
            (y * 31 + x * 7 + c + seed as usize) as i8
        })
    }

    #[test]
    fn unknown_layer_is_a_typed_error() {
        let opts = CompileOptions {
            layer_folding: FoldPlan::new().with("conv99", Fold::new(2, 2)),
            ..CompileOptions::default()
        };
        assert_eq!(
            validate_options(&net(), &opts),
            Err(OptionsError::UnknownLayer("conv99".into()))
        );
        // The message tells the user what the labels look like.
        let msg = OptionsError::UnknownLayer("conv99".into()).to_string();
        assert!(msg.contains("conv99") && msg.contains("conv0"), "{msg}");
    }

    #[test]
    fn zero_folding_is_a_typed_error() {
        let opts = CompileOptions {
            layer_folding: FoldPlan::new().with("conv0", Fold { pe: 0, simd: 1 }),
            ..CompileOptions::default()
        };
        assert_eq!(
            validate_options(&net(), &opts),
            Err(OptionsError::ZeroFolding("conv0".into()))
        );
    }

    #[test]
    fn zero_fifo_capacity_is_a_typed_error() {
        let opts = CompileOptions {
            fifo_overrides: vec![("image".into(), 0)],
            ..CompileOptions::default()
        };
        assert_eq!(
            validate_options(&net(), &opts),
            Err(OptionsError::ZeroFifoCapacity("image".into()))
        );
    }

    #[test]
    fn unknown_stream_is_a_typed_error() {
        let opts = CompileOptions {
            fifo_overrides: vec![("conv0.out".into(), 64), ("nope.out".into(), 64)],
            ..CompileOptions::default()
        };
        assert_eq!(
            validate_options(&net(), &opts),
            Err(OptionsError::UnknownStream("nope.out".into()))
        );
    }

    #[test]
    fn compile_panics_with_the_typed_message() {
        let opts = CompileOptions {
            layer_folding: FoldPlan::new().with("fc99", Fold::new(2, 2)),
            ..CompileOptions::default()
        };
        let err = std::panic::catch_unwind(|| {
            let _ = compile(&net(), &[image(0)], &opts);
        })
        .expect_err("compile must reject the bad label");
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("fc99"), "{msg}");
    }

    /// `Default` equivalence: an explicit folding=1 entry for every layer
    /// plus explicit FIFO overrides restating the defaults compiles to
    /// artifacts that behave bit-identically — same logits, same cycle
    /// reports — as the untouched defaults.
    #[test]
    fn explicit_unit_overrides_match_default_artifacts() {
        let net = net();
        let images = [image(1), image(2)];
        let defaults = CompileOptions::default();
        let mut explicit = defaults.clone();
        for label in
            ["conv0", "pool1", "res2.conv1", "res2.conv2", "res3.conv1", "res3.conv2",
             "res3.ds", "pool4", "fc5", "fc6"]
        {
            explicit.layer_folding.set(label, Fold::UNIT);
        }
        explicit.fifo_overrides =
            vec![("image".into(), defaults.fifo_capacity), ("fc6.out".into(), defaults.fifo_capacity)];
        let base = run_images(&net, &images, &defaults).expect("default run");
        let explicit_run = run_images(&net, &images, &explicit).expect("explicit run");
        assert_eq!(base.logits, explicit_run.logits);
        assert_eq!(base.reports, explicit_run.reports);
    }
}
