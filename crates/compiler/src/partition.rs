//! Multi-DFE partitioning (paper §III-B6).
//!
//! Stages are placed onto DFEs greedily and contiguously: the pipeline
//! order is the placement order (the physical MaxRing is a daisy chain), a
//! new device is opened when the current one's usable budget would
//! overflow, and every cut is checked against the ring bandwidth — for the
//! paper's 2-bit streams at 105 MHz this is the 210 Mbps vs "several Gbps"
//! argument that makes the split essentially free.

use dfe_platform::{DeviceSpec, MaxRing, ResourceUsage};
use hw_model::resources::{estimate_stage, PER_DFE_INFRA_BRAM_KBITS};
use qnn_nn::{NetworkSpec, Stage};

/// Why partitioning failed.
#[derive(Debug)]
pub enum PartitionError {
    /// A single stage exceeds one device's usable budget (stage index,
    /// usage). The granularity of this compiler is the stage; the paper's
    /// networks never need intra-layer splits.
    StageTooLarge(usize, ResourceUsage),
    /// A cut between devices would exceed the MaxRing bandwidth.
    RingOverloaded {
        /// Stage index after the cut.
        at_stage: usize,
        /// Demanded bandwidth (Mbps).
        demand_mbps: f64,
    },
}

impl std::fmt::Display for PartitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartitionError::StageTooLarge(i, u) => {
                write!(f, "stage {i} alone exceeds the device budget: {u:?}")
            }
            PartitionError::RingOverloaded { at_stage, demand_mbps } => {
                write!(f, "cut before stage {at_stage} needs {demand_mbps} Mbps of MaxRing")
            }
        }
    }
}

impl std::error::Error for PartitionError {}

/// A stage→device assignment.
#[derive(Clone, Debug)]
pub struct Partition {
    /// Device index per stage (non-decreasing).
    pub stage_device: Vec<usize>,
    /// Per-device resource usage (including per-DFE infrastructure).
    pub per_device: Vec<ResourceUsage>,
    /// The device type placed against.
    pub device: DeviceSpec,
}

impl Partition {
    /// Number of DFEs used.
    pub fn num_dfes(&self) -> usize {
        self.per_device.len()
    }

    /// Total usage across devices.
    pub fn total_usage(&self) -> ResourceUsage {
        self.per_device.iter().copied().sum()
    }

    /// Stream widths crossing the cut before `stage` (activation codes,
    /// plus the 16-bit skip when both sides are identity-linked residual
    /// stages).
    fn cut_bits(spec: &NetworkSpec, stage: usize) -> Vec<u32> {
        let mut bits = vec![spec.act_bits];
        let prev_residual = matches!(spec.stages[stage - 1], Stage::Residual { .. });
        let next_identity = matches!(
            spec.stages[stage],
            Stage::Residual { geom } if geom.downsample.is_none()
        );
        if prev_residual && next_identity {
            bits.push(16);
        }
        bits
    }
}

/// Greedy contiguous first-fit placement of `spec` onto devices of type
/// `device`, honoring `ring` bandwidth on every cut.
pub fn partition(
    spec: &NetworkSpec,
    device: &DeviceSpec,
    ring: &MaxRing,
) -> Result<Partition, PartitionError> {
    let infra = ResourceUsage { luts: 0, ffs: 0, bram_kbits: PER_DFE_INFRA_BRAM_KBITS };
    let mut stage_device = Vec::with_capacity(spec.stages.len());
    let mut per_device: Vec<ResourceUsage> = vec![infra];

    for (i, stage) in spec.stages.iter().enumerate() {
        let need = estimate_stage(stage, spec.act_bits).usage;
        if !need.plus(infra).fits(device) {
            return Err(PartitionError::StageTooLarge(i, need));
        }
        let cur = per_device.last_mut().expect("at least one device");
        if cur.plus(need).fits(device) {
            *cur = cur.plus(need);
        } else {
            // Open a new device; the cut must fit the ring.
            let bits = Partition::cut_bits(spec, i);
            if !ring.supports(&bits, device.fclk_mhz) {
                return Err(PartitionError::RingOverloaded {
                    at_stage: i,
                    demand_mbps: MaxRing::demand_mbps(&bits, device.fclk_mhz),
                });
            }
            per_device.push(infra.plus(need));
        }
        stage_device.push(per_device.len() - 1);
    }
    Ok(Partition { stage_device, per_device, device: *device })
}

/// Utilization of a contiguous stage range placed on one device (against
/// *usable* budgets, so 1.0 means "exactly fits").
fn range_utilization(needs: &[ResourceUsage], a: usize, b: usize, device: &DeviceSpec) -> f64 {
    let infra = ResourceUsage { luts: 0, ffs: 0, bram_kbits: PER_DFE_INFRA_BRAM_KBITS };
    let total: ResourceUsage = needs[a..b].iter().copied().fold(infra, ResourceUsage::plus);
    let l = total.luts as f64 / device.usable_luts() as f64;
    let f = total.ffs as f64 / device.usable_ffs() as f64;
    let br = total.bram_kbits as f64 / device.usable_bram_kbits() as f64;
    l.max(f).max(br)
}

/// Balanced placement: the same minimal device count as [`partition`]
/// (greedy first-fit is optimal for contiguous placements), but with cut
/// points chosen by dynamic programming to minimize the most-utilized
/// device — spreading the load like a human floorplanner would, instead of
/// packing the first DFEs to the brim.
pub fn partition_balanced(
    spec: &NetworkSpec,
    device: &DeviceSpec,
    ring: &MaxRing,
) -> Result<Partition, PartitionError> {
    let greedy = partition(spec, device, ring)?;
    let k = greedy.num_dfes();
    if k == 1 {
        return Ok(greedy);
    }
    let needs: Vec<ResourceUsage> =
        spec.stages.iter().map(|st| estimate_stage(st, spec.act_bits).usage).collect();
    let n = needs.len();

    // dp[j][i] = minimal achievable max-utilization for stages[0..i] on j
    // devices; cut[j][i] records the chosen split point.
    let inf = f64::INFINITY;
    let mut dp = vec![vec![inf; n + 1]; k + 1];
    let mut cut = vec![vec![0usize; n + 1]; k + 1];
    dp[0][0] = 0.0;
    for j in 1..=k {
        for i in 1..=n {
            for p in (j - 1)..i {
                if dp[j - 1][p] == inf {
                    continue;
                }
                let u = range_utilization(&needs, p, i, device);
                if u > 1.0 {
                    continue; // this range does not fit one device
                }
                let m = dp[j - 1][p].max(u);
                if m < dp[j][i] {
                    dp[j][i] = m;
                    cut[j][i] = p;
                }
            }
        }
    }
    if dp[k][n] == inf {
        // Should not happen (greedy found a k-partition), but fall back.
        return Ok(greedy);
    }

    // Reconstruct the cut points and check the ring on each.
    let mut bounds = vec![n];
    let mut i = n;
    for j in (1..=k).rev() {
        i = cut[j][i];
        bounds.push(i);
    }
    bounds.reverse(); // [0, c1, c2, ..., n]
    let infra = ResourceUsage { luts: 0, ffs: 0, bram_kbits: PER_DFE_INFRA_BRAM_KBITS };
    let mut stage_device = vec![0usize; n];
    let mut per_device = Vec::with_capacity(k);
    for d in 0..k {
        let (a, b) = (bounds[d], bounds[d + 1]);
        if d > 0 {
            let bits = Partition::cut_bits(spec, a);
            if !ring.supports(&bits, device.fclk_mhz) {
                return Err(PartitionError::RingOverloaded {
                    at_stage: a,
                    demand_mbps: MaxRing::demand_mbps(&bits, device.fclk_mhz),
                });
            }
        }
        let mut usage = infra;
        for (s, need) in needs.iter().enumerate().take(b).skip(a) {
            stage_device[s] = d;
            usage = usage.plus(*need);
        }
        per_device.push(usage);
    }
    Ok(Partition { stage_device, per_device, device: *device })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfe_platform::{STRATIX_10_GX2800, STRATIX_V_5SGSD8};
    use qnn_nn::models;

    fn ring() -> MaxRing {
        MaxRing::default()
    }

    #[test]
    fn vgg32_fits_one_stratix_v() {
        // §V: "For inputs up to 144×144, resource utilization is small
        // enough to fit on a single Stratix V 5SGSD8 FPGA."
        for side in [32, 64, 96, 144] {
            let p = partition(&models::vgg_like(side, 10, 2), &STRATIX_V_5SGSD8, &ring())
                .expect("partition");
            assert_eq!(p.num_dfes(), 1, "VGG-{side} should fit one DFE");
        }
    }

    #[test]
    fn alexnet_needs_multiple_dfes() {
        // §IV-B1: "three DFEs are needed to fit the network" (AlexNet).
        let p = partition(&models::alexnet(1000), &STRATIX_V_5SGSD8, &ring()).expect("partition");
        assert!(
            (2..=3).contains(&p.num_dfes()),
            "AlexNet on {} DFEs (paper: 3)",
            p.num_dfes()
        );
    }

    #[test]
    fn resnet18_needs_multiple_dfes() {
        // Intro says two, §IV-B2 says three. Our placement granularity is
        // the stage, and a conv5_x residual block alone is ~130k LUTs, so
        // the two conv5 blocks can never share a device — with the
        // surrounding stages that makes four. Greedy contiguous first-fit
        // is optimal for contiguous placements, so 4 is the true minimum
        // at this granularity; see EXPERIMENTS.md.
        let p = partition(&models::resnet18(1000), &STRATIX_V_5SGSD8, &ring()).expect("partition");
        assert!(
            (2..=4).contains(&p.num_dfes()),
            "ResNet-18 on {} DFEs (paper: 2–3)",
            p.num_dfes()
        );
    }

    #[test]
    fn resnet18_fits_one_stratix_10() {
        // §IV-B4: Stratix 10 would "fit even bigger networks onto a single
        // FPGA".
        let p = partition(&models::resnet18(1000), &STRATIX_10_GX2800, &ring()).expect("partition");
        assert_eq!(p.num_dfes(), 1);
    }

    #[test]
    fn assignments_are_contiguous_and_complete() {
        let spec = models::resnet18(1000);
        let p = partition(&spec, &STRATIX_V_5SGSD8, &ring()).expect("partition");
        assert_eq!(p.stage_device.len(), spec.stages.len());
        for w in p.stage_device.windows(2) {
            assert!(w[1] == w[0] || w[1] == w[0] + 1, "non-contiguous placement");
        }
        for (d, usage) in p.per_device.iter().enumerate() {
            assert!(usage.fits(&STRATIX_V_5SGSD8), "device {d} overfull: {usage:?}");
        }
    }

    #[test]
    fn narrow_ring_rejects_the_cut() {
        // A ring with almost no bandwidth cannot host any cut.
        let tiny_ring = MaxRing { rate_gbps: 0.0001, latency_cycles: 4 };
        let err = partition(&models::resnet18(1000), &STRATIX_V_5SGSD8, &tiny_ring).unwrap_err();
        assert!(matches!(err, PartitionError::RingOverloaded { .. }), "{err}");
    }

    #[test]
    fn balanced_partition_reduces_peak_utilization() {
        for spec in [models::alexnet(1000), models::resnet18(1000)] {
            let greedy = partition(&spec, &STRATIX_V_5SGSD8, &ring()).expect("greedy");
            let balanced = partition_balanced(&spec, &STRATIX_V_5SGSD8, &ring()).expect("dp");
            assert_eq!(balanced.num_dfes(), greedy.num_dfes(), "{}", spec.name);
            let peak = |p: &Partition| {
                p.per_device
                    .iter()
                    .map(|u| u.utilization(&STRATIX_V_5SGSD8))
                    .fold(0.0f64, f64::max)
            };
            assert!(
                peak(&balanced) <= peak(&greedy) + 1e-9,
                "{}: balanced {} vs greedy {}",
                spec.name,
                peak(&balanced),
                peak(&greedy)
            );
            // Same total design either way (infra included per device).
            assert_eq!(balanced.total_usage(), greedy.total_usage());
        }
    }

    #[test]
    fn balanced_partition_is_contiguous_and_fits() {
        let spec = models::resnet18(1000);
        let p = partition_balanced(&spec, &STRATIX_V_5SGSD8, &ring()).expect("dp");
        for w in p.stage_device.windows(2) {
            assert!(w[1] == w[0] || w[1] == w[0] + 1);
        }
        for u in &p.per_device {
            assert!(u.fits(&STRATIX_V_5SGSD8), "{u:?}");
        }
    }

    #[test]
    fn balanced_single_device_is_identity() {
        let spec = models::vgg_like(32, 10, 2);
        let p = partition_balanced(&spec, &STRATIX_V_5SGSD8, &ring()).expect("dp");
        assert_eq!(p.num_dfes(), 1);
    }

    #[test]
    fn paper_cut_bandwidth_is_210_mbps() {
        // The canonical cut carries one 2-bit stream at 105 MHz.
        let spec = models::alexnet(1000);
        let p = partition(&spec, &STRATIX_V_5SGSD8, &ring()).expect("partition");
        assert!(p.num_dfes() > 1);
        let first_cut = p.stage_device.iter().position(|&d| d == 1).expect("cut exists");
        let bits = Partition::cut_bits(&spec, first_cut);
        assert_eq!(bits, vec![2]);
        assert!((MaxRing::demand_mbps(&bits, 105.0) - 210.0).abs() < 1e-9);
    }
}
