//! Pipeline replication for batch parallelism.
//!
//! The paper scales *one* image stream across devices (model parallelism
//! over MaxRing); a serving deployment additionally replicates the whole
//! compiled pipeline N times and shards *images* across the replicas —
//! FINN-R's "multiple accelerator instances" pattern. A [`Replica`] is an
//! independent instance of a partitioned pipeline: it owns a clone of the
//! network parameters and compile options (including any `stage_device`
//! placement), and materializes a fresh device graph per batch, because a
//! compiled [`crate::CompiledNetwork`] bakes the batch's pixels into its
//! `HostSource` (the PCIe burst of §III-B6).
//!
//! Replicas share nothing mutable, so they can run concurrently on worker
//! threads with bit-identical per-image results: each batch goes through
//! exactly the same [`crate::run_images`] path a direct single-pipeline run
//! uses.

use crate::lower::CompileOptions;
use crate::run::{run_images, SimResult};
use dfe_platform::RunError;
use qnn_nn::Network;
use qnn_tensor::Tensor3;

/// One independent instance of a compiled device pipeline.
pub struct Replica {
    id: usize,
    net: Network,
    opts: CompileOptions,
}

impl Replica {
    /// Replica index within its group (0-based).
    pub fn id(&self) -> usize {
        self.id
    }

    /// The network this replica serves.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Compile options (placement, FIFO sizing) this replica was built with.
    pub fn options(&self) -> &CompileOptions {
        &self.opts
    }

    /// Run one batch of images through this replica's pipeline.
    ///
    /// Identical to calling [`run_images`] on the replica's network and
    /// options directly — the serving runtime's 1-replica path is therefore
    /// bit-identical to direct execution (logits *and* cycle reports).
    pub fn run_batch(&self, images: &[Tensor3<i8>]) -> Result<SimResult, RunError> {
        run_images(&self.net, images, &self.opts)
    }
}

/// Clone a partitioned pipeline into `n` independent replica instances.
///
/// Each replica carries its own copy of the parameters and placement, so
/// the returned instances can be moved onto separate worker threads and
/// driven concurrently without any shared state.
///
/// # Panics
/// Panics when `n == 0` — a serving pool needs at least one pipeline.
pub fn compile_replicas(net: &Network, n: usize, opts: &CompileOptions) -> Vec<Replica> {
    assert!(n > 0, "a replica group needs at least one pipeline");
    (0..n)
        .map(|id| Replica { id, net: net.clone(), opts: opts.clone() })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnn_nn::models;
    use qnn_testkit::Rng;

    fn image(side: usize, seed: u64) -> Tensor3<i8> {
        let mut rng = Rng::seed_from_u64(seed);
        Tensor3::from_fn(qnn_tensor::Shape3::square(side, 3), |_, _, _| {
            rng.gen_range(-127i8..=127)
        })
    }

    #[test]
    fn replicas_match_direct_execution_bit_for_bit() {
        let net = Network::random(models::test_net(8, 4, 2), 21);
        let imgs: Vec<_> = (0..3).map(|s| image(8, s)).collect();
        let opts = CompileOptions::default();
        let direct = run_images(&net, &imgs, &opts).expect("direct");
        for r in compile_replicas(&net, 3, &opts) {
            let got = r.run_batch(&imgs).expect("replica");
            assert_eq!(got.logits, direct.logits, "replica {}", r.id());
            assert_eq!(got.reports, direct.reports, "replica {} cycle report", r.id());
        }
    }

    #[test]
    fn replicas_preserve_partitioned_placement() {
        let spec = models::test_net(8, 4, 2);
        let cut = spec.stages.len() / 2;
        let stage_device: Vec<usize> =
            (0..spec.stages.len()).map(|i| usize::from(i >= cut)).collect();
        let net = Network::random(spec, 22);
        let opts =
            CompileOptions { stage_device: Some(stage_device), ..CompileOptions::default() };
        let imgs = vec![image(8, 9)];
        let direct = run_images(&net, &imgs, &opts).expect("direct");
        assert_eq!(direct.reports.len(), 2, "expected a two-device split");
        let replicas = compile_replicas(&net, 2, &opts);
        for r in &replicas {
            let got = r.run_batch(&imgs).expect("replica");
            assert_eq!(got.reports.len(), 2, "replica {} lost the placement", r.id());
            assert_eq!(got.logits, direct.logits);
        }
    }

    #[test]
    fn replica_ids_are_sequential() {
        let net = Network::random(models::test_net(8, 3, 2), 23);
        let ids: Vec<usize> = compile_replicas(&net, 4, &CompileOptions::default())
            .iter()
            .map(Replica::id)
            .collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "at least one pipeline")]
    fn zero_replicas_rejected() {
        let net = Network::random(models::test_net(8, 3, 2), 24);
        let _ = compile_replicas(&net, 0, &CompileOptions::default());
    }
}
