//! Compiled model artifacts, replica pools, and the artifact cache.
//!
//! The paper scales *one* image stream across devices (model parallelism
//! over MaxRing); a serving deployment additionally replicates the whole
//! compiled pipeline N times and shards *images* across the replicas —
//! FINN-R's "multiple accelerator instances" pattern, generalized here to
//! a **portfolio of models** (FINN-R's own evolution: one hand-built
//! accelerator → a framework serving many quantized networks).
//!
//! A [`ModelArtifact`] is the unit the serving layer schedules against:
//! one immutable snapshot of (parameters, compile options, weight
//! version). Because a compiled [`crate::CompiledNetwork`] bakes the
//! batch's pixels into its `HostSource` (the PCIe burst of §III-B6), the
//! device graph itself is materialized per batch; the artifact owns what
//! is batch-invariant — the validated placement and the parameter set —
//! behind an `Arc`, so an entire replica pool shares **one** copy of the
//! weights instead of one per worker.
//!
//! Weight swapping is modeled exactly like the paper's PCIe parameter
//! streaming: publishing new weights produces a *new* artifact with a
//! bumped [`ModelArtifact::version`]; batches already dispatched keep
//! their `Arc` to the old snapshot and finish on it, later batches pick
//! up the new one — parameter versions can never mix inside one batch.
//!
//! [`ArtifactCache`] is the registration-time cache: per model name,
//! artifacts are keyed by their [`CompileOptions`], so registering the
//! same model again with the same options (or sizing a pool up) reuses
//! the existing snapshot instead of re-cloning parameters.

use crate::lower::CompileOptions;
use crate::run::{run_images, SimResult};
use dfe_platform::RunError;
use qnn_nn::Network;
use qnn_tensor::Tensor3;
use std::fmt;
use std::sync::Arc;

/// The published weights for a model do not fit the registered
/// architecture: hot swapping replaces parameters, never the spec.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpecMismatch;

impl fmt::Display for SpecMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "published weights belong to a different architecture")
    }
}

impl std::error::Error for SpecMismatch {}

/// One immutable compiled snapshot of a model: parameters + compile
/// options + weight version. Cheap to clone by handle (`Arc`), safe to
/// share across replica workers, and the unit of atomicity for weight
/// swaps (a batch runs entirely on the artifact it was dispatched with).
pub struct ModelArtifact {
    net: Arc<Network>,
    opts: CompileOptions,
    version: u64,
}

impl ModelArtifact {
    /// Build version-0 artifact for `net` under `opts`.
    ///
    /// Placement is validated eagerly — a bad `stage_device` vector fails
    /// here, at registration time, not on the first dispatched batch.
    ///
    /// # Panics
    /// Panics when `opts.stage_device` does not name every stage.
    pub fn compile(net: &Network, opts: &CompileOptions) -> Self {
        if let Some(sd) = &opts.stage_device {
            assert_eq!(
                sd.len(),
                net.spec.stages.len(),
                "stage_device must name every stage"
            );
        }
        Self { net: Arc::new(net.clone()), opts: opts.clone(), version: 0 }
    }

    /// A new artifact with `net`'s parameters and this artifact's options,
    /// at `version + 1` — the hot-swap step. Fails if `net` is a different
    /// architecture than the registered one.
    pub fn with_weights(&self, net: Network) -> Result<Self, SpecMismatch> {
        if net.spec != self.net.spec {
            return Err(SpecMismatch);
        }
        Ok(Self {
            net: Arc::new(net),
            opts: self.opts.clone(),
            version: self.version + 1,
        })
    }

    /// Weight version: 0 at registration, +1 per publish.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The parameter snapshot this artifact serves.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Compile options (placement, FIFO sizing) this artifact was built with.
    pub fn options(&self) -> &CompileOptions {
        &self.opts
    }

    /// Run one batch of images through this artifact's pipeline.
    ///
    /// Identical to calling [`run_images`] on the artifact's network and
    /// options directly — the serving runtime's 1-replica path is therefore
    /// bit-identical to direct execution (logits *and* cycle reports).
    pub fn run_batch(&self, images: &[Tensor3<i8>]) -> Result<SimResult, RunError> {
        run_images(&self.net, images, &self.opts)
    }
}

/// Registration-time artifact cache: per model name, keyed by
/// [`CompileOptions`]. Lets a server (or a bench loop re-registering the
/// same portfolio) share one parameter snapshot per (model, options)
/// instead of cloning the network once per replica.
#[derive(Default)]
pub struct ArtifactCache {
    entries: Vec<(String, CompileOptions, Arc<ModelArtifact>)>,
    hits: u64,
}

impl ArtifactCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The cached artifact for `(name, opts)`, compiling `net` on miss.
    ///
    /// The cache trusts the caller that one model *name* maps to one
    /// parameter set: publishing new weights for a name goes through
    /// [`Self::publish`], which replaces the name's entries.
    pub fn get_or_compile(
        &mut self,
        name: &str,
        net: &Network,
        opts: &CompileOptions,
    ) -> Arc<ModelArtifact> {
        if let Some((_, _, a)) =
            self.entries.iter().find(|(n, o, _)| n == name && o == opts)
        {
            self.hits += 1;
            return Arc::clone(a);
        }
        let artifact = Arc::new(ModelArtifact::compile(net, opts));
        self.entries.push((name.to_string(), opts.clone(), Arc::clone(&artifact)));
        artifact
    }

    /// Swap weights for every cached artifact of `name`, bumping each
    /// entry's version. Returns the new artifacts (empty if `name` has no
    /// entries).
    pub fn publish(
        &mut self,
        name: &str,
        net: &Network,
    ) -> Result<Vec<Arc<ModelArtifact>>, SpecMismatch> {
        let mut swapped = Vec::new();
        for (n, _, a) in &mut self.entries {
            if n == name {
                *a = Arc::new(a.with_weights(net.clone())?);
                swapped.push(Arc::clone(a));
            }
        }
        Ok(swapped)
    }

    /// Number of distinct (name, options) artifacts held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been compiled yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// How many lookups were answered from cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }
}

/// One worker's handle onto a compiled pipeline: a pool index plus a
/// shared [`ModelArtifact`]. All replicas of a pool hold the *same*
/// artifact `Arc` — they share parameters and placement, and materialize
/// independent device graphs per batch, so they can run concurrently on
/// worker threads with bit-identical per-image results.
pub struct Replica {
    id: usize,
    artifact: Arc<ModelArtifact>,
}

impl Replica {
    /// Replica index within its pool (0-based).
    pub fn id(&self) -> usize {
        self.id
    }

    /// The shared compiled snapshot this replica serves.
    pub fn artifact(&self) -> &Arc<ModelArtifact> {
        &self.artifact
    }

    /// The network this replica serves.
    pub fn network(&self) -> &Network {
        self.artifact.network()
    }

    /// Compile options (placement, FIFO sizing) this replica was built with.
    pub fn options(&self) -> &CompileOptions {
        self.artifact.options()
    }

    /// Run one batch of images through this replica's pipeline.
    pub fn run_batch(&self, images: &[Tensor3<i8>]) -> Result<SimResult, RunError> {
        self.artifact.run_batch(images)
    }
}

/// Build a pool of `n` replicas sharing one compiled artifact.
///
/// The returned instances can be moved onto separate worker threads and
/// driven concurrently without any shared mutable state; unlike the
/// pre-registry version, the parameters are stored once (`Arc`), not
/// cloned per replica.
///
/// # Panics
/// Panics when `n == 0` — a serving pool needs at least one pipeline.
pub fn compile_replicas(net: &Network, n: usize, opts: &CompileOptions) -> Vec<Replica> {
    assert!(n > 0, "a replica group needs at least one pipeline");
    let artifact = Arc::new(ModelArtifact::compile(net, opts));
    (0..n)
        .map(|id| Replica { id, artifact: Arc::clone(&artifact) })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnn_nn::models;
    use qnn_testkit::Rng;

    fn image(side: usize, seed: u64) -> Tensor3<i8> {
        let mut rng = Rng::seed_from_u64(seed);
        Tensor3::from_fn(qnn_tensor::Shape3::square(side, 3), |_, _, _| {
            rng.gen_range(-127i8..=127)
        })
    }

    #[test]
    fn replicas_match_direct_execution_bit_for_bit() {
        let net = Network::random(models::test_net(8, 4, 2), 21);
        let imgs: Vec<_> = (0..3).map(|s| image(8, s)).collect();
        let opts = CompileOptions::default();
        let direct = run_images(&net, &imgs, &opts).expect("direct");
        for r in compile_replicas(&net, 3, &opts) {
            let got = r.run_batch(&imgs).expect("replica");
            assert_eq!(got.logits, direct.logits, "replica {}", r.id());
            assert_eq!(got.reports, direct.reports, "replica {} cycle report", r.id());
        }
    }

    #[test]
    fn replicas_preserve_partitioned_placement() {
        let spec = models::test_net(8, 4, 2);
        let cut = spec.stages.len() / 2;
        let stage_device: Vec<usize> =
            (0..spec.stages.len()).map(|i| usize::from(i >= cut)).collect();
        let net = Network::random(spec, 22);
        let opts =
            CompileOptions { stage_device: Some(stage_device), ..CompileOptions::default() };
        let imgs = vec![image(8, 9)];
        let direct = run_images(&net, &imgs, &opts).expect("direct");
        assert_eq!(direct.reports.len(), 2, "expected a two-device split");
        let replicas = compile_replicas(&net, 2, &opts);
        for r in &replicas {
            let got = r.run_batch(&imgs).expect("replica");
            assert_eq!(got.reports.len(), 2, "replica {} lost the placement", r.id());
            assert_eq!(got.logits, direct.logits);
        }
    }

    #[test]
    fn replica_ids_are_sequential_and_share_one_artifact() {
        let net = Network::random(models::test_net(8, 3, 2), 23);
        let replicas = compile_replicas(&net, 4, &CompileOptions::default());
        let ids: Vec<usize> = replicas.iter().map(Replica::id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        for r in &replicas[1..] {
            assert!(
                Arc::ptr_eq(r.artifact(), replicas[0].artifact()),
                "pool replicas must share one parameter snapshot"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one pipeline")]
    fn zero_replicas_rejected() {
        let net = Network::random(models::test_net(8, 3, 2), 24);
        let _ = compile_replicas(&net, 0, &CompileOptions::default());
    }

    #[test]
    fn with_weights_bumps_version_and_swaps_parameters() {
        let spec = models::test_net(8, 4, 2);
        let old = Network::random(spec.clone(), 1);
        let new = Network::random(spec, 2);
        let a0 = ModelArtifact::compile(&old, &CompileOptions::default());
        assert_eq!(a0.version(), 0);
        let a1 = a0.with_weights(new.clone()).expect("same spec");
        assert_eq!(a1.version(), 1);
        let img = image(8, 5);
        let got_old = a0.run_batch(std::slice::from_ref(&img)).expect("old");
        let got_new = a1.run_batch(std::slice::from_ref(&img)).expect("new");
        assert_eq!(got_old.logits[0], old.forward(&img).logits);
        assert_eq!(got_new.logits[0], new.forward(&img).logits);
    }

    #[test]
    fn with_weights_rejects_a_different_architecture() {
        let a = ModelArtifact::compile(
            &Network::random(models::test_net(8, 4, 2), 1),
            &CompileOptions::default(),
        );
        let other = Network::random(models::test_net(8, 3, 2), 1);
        assert_eq!(a.with_weights(other).err(), Some(SpecMismatch));
    }

    #[test]
    fn artifact_cache_reuses_by_name_and_options() {
        let net = Network::random(models::test_net(8, 3, 2), 3);
        let mut cache = ArtifactCache::new();
        let opts = CompileOptions::default();
        let a = cache.get_or_compile("m", &net, &opts);
        let b = cache.get_or_compile("m", &net, &opts);
        assert!(Arc::ptr_eq(&a, &b), "same (name, options) must hit");
        assert_eq!(cache.hits(), 1);
        let streamed =
            CompileOptions { stream_parameters: true, ..CompileOptions::default() };
        let c = cache.get_or_compile("m", &net, &streamed);
        assert!(!Arc::ptr_eq(&a, &c), "different options are distinct artifacts");
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn artifact_cache_publish_replaces_a_name() {
        let spec = models::test_net(8, 3, 2);
        let old = Network::random(spec.clone(), 4);
        let new = Network::random(spec, 5);
        let mut cache = ArtifactCache::new();
        let a0 = cache.get_or_compile("m", &old, &CompileOptions::default());
        let swapped = cache.publish("m", &new).expect("same spec");
        assert_eq!(swapped.len(), 1);
        assert_eq!(swapped[0].version(), 1);
        let a1 = cache.get_or_compile("m", &new, &CompileOptions::default());
        assert!(Arc::ptr_eq(&swapped[0], &a1), "cache must serve the new weights");
        assert_eq!(a0.version(), 0, "dispatched handles keep the old snapshot");
    }
}
