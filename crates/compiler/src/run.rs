//! Convenience runners: compile + execute + collect logits.

use crate::lower::{compile, CompileOptions, CompiledNetwork};
use dfe_platform::{threaded, CycleReport, RunError};
use hw_model::CycleModel;
use qnn_nn::Network;
use qnn_tensor::Tensor3;

/// Borrowed view over one image's logits, carrying the post-processing
/// every surface shares. Both the simulator's [`SimResult`] and
/// `qnn-serve`'s `Response` delegate here, so tie-breaking is identical
/// everywhere: among equal scores, the lowest class index wins.
#[derive(Clone, Copy, Debug)]
pub struct Logits<'a>(&'a [i32]);

impl<'a> Logits<'a> {
    /// Wrap a raw logits slice.
    pub fn new(raw: &'a [i32]) -> Self {
        Self(raw)
    }

    /// The raw scores.
    pub fn raw(&self) -> &'a [i32] {
        self.0
    }

    /// Index of the winning class (lowest index on ties).
    ///
    /// # Panics
    /// Panics on an empty logits slice — a classifier has ≥ 1 class.
    pub fn argmax(&self) -> usize {
        assert!(!self.0.is_empty(), "argmax of zero classes");
        let mut best = 0;
        for (j, &v) in self.0.iter().enumerate() {
            if v > self.0[best] {
                best = j;
            }
        }
        best
    }

    /// The `k` best (class, score) pairs, best first; ties resolve to the
    /// lower class index, and `k` saturates at the class count.
    pub fn top_k(&self, k: usize) -> Vec<(usize, i32)> {
        let mut ranked: Vec<(usize, i32)> =
            self.0.iter().copied().enumerate().collect();
        // Stable sort by descending score keeps equal scores in index order.
        ranked.sort_by_key(|&(_, v)| std::cmp::Reverse(v));
        ranked.truncate(k);
        ranked
    }
}

/// Result of simulating one or more images.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Per-image logits.
    pub logits: Vec<Vec<i32>>,
    /// Per-device cycle reports (length 1 for single-DFE runs).
    /// Multi-device runs use the lockstep executor, so each device's count
    /// is its share of the one global clock and the reports are
    /// bit-identical across repeated runs of the same compile.
    pub reports: Vec<CycleReport>,
}

impl SimResult {
    /// Image `i`'s logits as a [`Logits`] view.
    pub fn logits_view(&self, i: usize) -> Logits<'_> {
        Logits::new(&self.logits[i])
    }

    /// Argmax of image `i`'s logits.
    pub fn argmax(&self, i: usize) -> usize {
        self.logits_view(i).argmax()
    }

    /// Cycles of the (single-device) run.
    pub fn cycles(&self) -> u64 {
        self.reports.iter().map(|r| r.cycles).max().unwrap_or(0)
    }
}

/// Generous cycle budget for a run: several times the fully serialized
/// bound (a correct pipeline finishes far earlier; a wedged one times out).
fn cycle_budget(net: &Network, images: usize) -> u64 {
    let serial = CycleModel::analyze(&net.spec).serial_bound();
    (serial * 8 + 2_000_000) * images as u64
}

/// Run `images` through the compiled streaming pipeline.
///
/// The cycle-stepping strategy comes from `opts.scheduler`
/// (`QNN_SCHEDULER` by default); Dense and ReadyList runs return
/// bit-identical logits and reports, differing only in wall-clock time.
pub fn run_images(
    net: &Network,
    images: &[Tensor3<i8>],
    opts: &CompileOptions,
) -> Result<SimResult, RunError> {
    let CompiledNetwork {
        mut graphs,
        sink,
        classes,
        ..
    } = compile(net, images, opts);
    let budget = cycle_budget(net, images.len());
    // Injected stalls can produce legitimate full-stall cycles, so runs
    // with stall injection rely on the budget alone to bound them.
    let detect_deadlock = opts.stall_injection.is_none();
    let reports = if graphs.len() == 1 {
        vec![graphs[0].run_opts(budget, detect_deadlock)?]
    } else {
        threaded::run_devices(graphs, budget)?
    };
    let flat = sink.take();
    assert_eq!(flat.len(), classes * images.len(), "sink under-filled");
    let logits = flat.chunks_exact(classes).map(<[i32]>::to_vec).collect();
    Ok(SimResult { logits, reports })
}

/// Run a single image on a single DFE.
pub fn run_image(net: &Network, image: &Tensor3<i8>) -> Result<SimResult, RunError> {
    run_images(net, std::slice::from_ref(image), &CompileOptions::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnn_nn::models;
    use qnn_testkit::Rng;

    fn image(side: usize, seed: u64) -> Tensor3<i8> {
        let mut rng = Rng::seed_from_u64(seed);
        Tensor3::from_fn(qnn_tensor::Shape3::square(side, 3), |_, _, _| {
            rng.gen_range(-127i8..=127)
        })
    }

    #[test]
    fn streaming_matches_reference_on_test_net() {
        let net = Network::random(models::test_net(8, 4, 2), 42);
        let img = image(8, 1);
        let expect = net.forward(&img).logits;
        let got = run_image(&net, &img).expect("sim run");
        assert_eq!(got.logits[0], expect);
    }

    #[test]
    fn streaming_matches_reference_multi_image() {
        let net = Network::random(models::test_net(8, 3, 2), 7);
        let imgs: Vec<_> = (0..3).map(|s| image(8, s)).collect();
        let got = run_images(&net, &imgs, &CompileOptions::default()).expect("sim run");
        for (i, img) in imgs.iter().enumerate() {
            assert_eq!(got.logits[i], net.forward(img).logits, "image {i}");
        }
    }

    #[test]
    fn binary_activation_network_matches_reference() {
        let net = Network::random(models::test_net(8, 4, 1), 9);
        let img = image(8, 2);
        let got = run_image(&net, &img).expect("sim run");
        assert_eq!(got.logits[0], net.forward(&img).logits);
    }
}

#[cfg(test)]
mod streamed_param_tests {
    use super::*;
    use qnn_nn::models;
    use qnn_testkit::Rng;

    fn image(side: usize, seed: u64) -> Tensor3<i8> {
        let mut rng = Rng::seed_from_u64(seed);
        Tensor3::from_fn(qnn_tensor::Shape3::square(side, 3), |_, _, _| {
            rng.gen_range(-127i8..=127)
        })
    }

    /// §III-B1a end to end: parameters streamed as 32-bit floats, binarized
    /// on the DFE, thresholds decoded from the wire — identical inference.
    #[test]
    fn streamed_parameters_match_preloaded_caches() {
        let net = Network::random(models::test_net(8, 4, 2), 33);
        let img = image(8, 1);
        let direct = run_image(&net, &img).expect("direct");
        let streamed = run_images(
            &net,
            std::slice::from_ref(&img),
            &CompileOptions {
                stream_parameters: true,
                ..CompileOptions::default()
            },
        )
        .expect("streamed");
        assert_eq!(direct.logits, streamed.logits);
        // The load phase costs cycles: roughly one per parameter word on
        // the critical path.
        assert!(
            streamed.cycles() > direct.cycles(),
            "parameter load should cost cycles: {} vs {}",
            streamed.cycles(),
            direct.cycles()
        );
    }

    /// The one-time load amortizes: per-image cycles drop sharply with
    /// more images ("loaded … only once, before inference of images
    /// starts"). Cycle counts are deterministic — measured factor 0.33,
    /// bound tightened from 0.7 in the conv-datapath PR.
    #[test]
    fn parameter_load_amortizes_over_images() {
        let net = Network::random(models::test_net(8, 4, 2), 34);
        let opts = CompileOptions {
            stream_parameters: true,
            ..CompileOptions::default()
        };
        let one = run_images(&net, &[image(8, 1)], &opts).expect("1 image");
        let four = run_images(
            &net,
            &(0..4).map(|s| image(8, s)).collect::<Vec<_>>(),
            &opts,
        )
        .expect("4 images");
        let per_image_four = four.cycles() as f64 / 4.0;
        assert!(
            per_image_four < one.cycles() as f64 * 0.45,
            "load did not amortize: {per_image_four} vs {}",
            one.cycles()
        );
    }

    #[test]
    fn streamed_parameters_work_with_binary_activations() {
        let net = Network::random(models::test_net(8, 3, 1), 35);
        let img = image(8, 2);
        let streamed = run_images(
            &net,
            std::slice::from_ref(&img),
            &CompileOptions {
                stream_parameters: true,
                ..CompileOptions::default()
            },
        )
        .expect("streamed");
        assert_eq!(streamed.logits[0], net.forward(&img).logits);
    }
}
