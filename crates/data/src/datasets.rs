//! Deterministic synthetic image generation shaped like the paper's
//! datasets (§IV: CIFAR-10, STL-10 — also resized to 144×144 — and
//! ImageNet).

use qnn_tensor::{Shape3, Tensor3};
use qnn_testkit::Rng;

/// A dataset descriptor: image geometry and label count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Dataset {
    /// Dataset name.
    pub name: &'static str,
    /// Square image side.
    pub side: usize,
    /// Number of classes.
    pub classes: usize,
}

/// CIFAR-10: 32×32, 10 classes.
pub const CIFAR10: Dataset = Dataset { name: "CIFAR-10", side: 32, classes: 10 };
/// STL-10: 96×96, 10 classes.
pub const STL10: Dataset = Dataset { name: "STL-10", side: 96, classes: 10 };
/// STL-10 resized to 144×144 (paper §IV-B: "STL-10 resized to 144 × 144").
pub const STL10_144: Dataset = Dataset { name: "STL-10@144", side: 144, classes: 10 };
/// ImageNet: 224×224 crops, 1000 classes.
pub const IMAGENET: Dataset = Dataset { name: "ImageNet", side: 224, classes: 1000 };

impl Dataset {
    /// Image shape (always 3-channel).
    pub fn shape(&self) -> Shape3 {
        Shape3::square(self.side, 3)
    }

    /// Generate image `index` deterministically: a sum of a few random
    /// low-frequency waves (spatial structure) plus pixel noise, quantized
    /// to signed 8-bit as the CPU would stream it over PCIe.
    pub fn image(&self, index: u64) -> Tensor3<i8> {
        let mut rng = Rng::seed_from_u64(
            (index + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ self.side as u64,
        );
        // Low-frequency components: random orientation, frequency, phase.
        const WAVES: usize = 4;
        let mut waves = [[0.0f32; 5]; WAVES];
        for w in &mut waves {
            *w = [
                rng.gen_range(-0.3f32..0.3),           // kx
                rng.gen_range(-0.3f32..0.3),           // ky
                rng.gen_range(0.0f32..std::f32::consts::TAU), // phase
                rng.gen_range(20.0f32..45.0),          // amplitude
                rng.gen_range(0.0f32..2.0),            // channel skew
            ];
        }
        let mut noise = Rng::seed_from_u64(index.wrapping_mul(0xD134_2543_DE82_EF95));
        Tensor3::from_fn(self.shape(), |y, x, c| {
            let mut v = 0.0f32;
            for [kx, ky, phase, amp, skew] in waves {
                v += amp * (kx * x as f32 + ky * y as f32 + phase + skew * c as f32).sin();
            }
            v += noise.gen_range(-12.0f32..12.0);
            v.clamp(-127.0, 127.0) as i8
        })
    }

    /// Generate the first `n` images.
    pub fn images(&self, n: usize) -> Vec<Tensor3<i8>> {
        (0..n as u64).map(|i| self.image(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_paper_datasets() {
        assert_eq!(CIFAR10.shape(), Shape3::square(32, 3));
        assert_eq!(STL10.shape(), Shape3::square(96, 3));
        assert_eq!(STL10_144.shape(), Shape3::square(144, 3));
        assert_eq!(IMAGENET.shape(), Shape3::square(224, 3));
        assert_eq!(IMAGENET.classes, 1000);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = CIFAR10.image(5);
        let b = CIFAR10.image(5);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn different_indices_differ() {
        let a = CIFAR10.image(0);
        let b = CIFAR10.image(1);
        assert_ne!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn images_have_spatial_structure_not_white_noise() {
        // Adjacent-pixel correlation should be clearly positive thanks to
        // the low-frequency waves.
        let img = CIFAR10.image(3);
        let (mut same, mut diff, mut n) = (0.0f64, 0.0f64, 0);
        for y in 0..31 {
            for x in 0..31 {
                let a = f64::from(img.get(y, x, 0));
                same += a * f64::from(img.get(y, x + 1, 0));
                diff += a * f64::from(img.get(31 - y, 31 - x, 0));
                n += 1;
            }
        }
        assert!(
            same / n as f64 > diff / n as f64 + 100.0,
            "no spatial correlation: {} vs {}",
            same / n as f64,
            diff / n as f64
        );
    }

    #[test]
    fn pixels_span_the_signed_range() {
        let img = STL10.image(0);
        let min = img.as_slice().iter().copied().min().unwrap();
        let max = img.as_slice().iter().copied().max().unwrap();
        assert!(min < -60 && max > 60, "dynamic range too small: [{min}, {max}]");
    }
}
