//! Teacher-agreement evaluation — the accuracy substitution.
//!
//! `agreement(teacher, student, images)` is the fraction of images on which
//! the two networks pick the same top-1 class. With the teacher set to an
//! 8-bit-activation variant sharing the student's weights, this isolates
//! exactly what the paper's accuracy comparison isolates: the cost of
//! activation quantization on an otherwise identical inference pipeline.

use crate::datasets::Dataset;
use qnn_nn::Network;

/// Fraction of `n` dataset images on which both networks agree on top-1.
///
/// # Panics
/// Panics if the networks disagree about input shape or class count.
pub fn agreement(teacher: &Network, student: &Network, data: &Dataset, n: usize) -> f64 {
    assert!(n > 0);
    assert_eq!(teacher.spec.input, student.spec.input, "input shapes differ");
    assert_eq!(teacher.spec.classes(), student.spec.classes(), "class counts differ");
    assert_eq!(teacher.spec.input, data.shape(), "dataset does not feed this network");
    let mut same = 0usize;
    for i in 0..n as u64 {
        let img = data.image(i);
        if teacher.classify(&img) == student.classify(&img) {
            same += 1;
        }
    }
    same as f64 / n as f64
}

/// Fraction of `n` images on which the student's top-1 class appears in
/// the teacher's top-k set — the ImageNet-style top-5 metric transplanted
/// to the agreement setting.
pub fn top_k_agreement(
    teacher: &Network,
    student: &Network,
    data: &Dataset,
    n: usize,
    k: usize,
) -> f64 {
    assert!(n > 0 && k > 0);
    assert_eq!(teacher.spec.input, data.shape(), "dataset does not feed this network");
    let mut hits = 0usize;
    for i in 0..n as u64 {
        let img = data.image(i);
        let t_logits = teacher.forward(&img).logits;
        let s_top = student.classify(&img);
        if qnn_nn::postprocess::in_top_k(&t_logits, s_top, k) {
            hits += 1;
        }
    }
    hits as f64 / n as f64
}

/// Histogram of a network's top-1 predictions over `n` dataset images —
/// used to check that a network is not collapsed onto one class (a dead
/// network would make every agreement number meaningless).
pub fn per_class_histogram(net: &Network, data: &Dataset, n: usize) -> Vec<usize> {
    let mut hist = vec![0usize; net.spec.classes()];
    for i in 0..n as u64 {
        hist[net.classify(&data.image(i))] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::Dataset;
    use qnn_nn::models;

    const TINY: Dataset = Dataset { name: "tiny", side: 16, classes: 6 };

    fn nets(act_bits: u32, seed: u64) -> Network {
        Network::random(models::test_net(16, 6, act_bits), seed)
    }

    #[test]
    fn self_agreement_is_one() {
        let net = nets(2, 3);
        assert_eq!(agreement(&net, &net, &TINY, 8), 1.0);
    }

    #[test]
    fn same_weights_more_bits_agree_better_than_fewer() {
        // The paper's ordering (§IV-B3): 2-bit activations track the
        // high-precision network better than 1-bit ones. Averaged over
        // several seeds to avoid single-draw flukes.
        let n = 24;
        let (mut a2_sum, mut a1_sum) = (0.0, 0.0);
        for seed in [11u64, 12, 13] {
            let teacher = nets(8, seed);
            a2_sum += agreement(&teacher, &nets(2, seed), &TINY, n);
            a1_sum += agreement(&teacher, &nets(1, seed), &TINY, n);
        }
        assert!(
            a2_sum >= a1_sum,
            "2-bit agreement {a2_sum} should beat 1-bit {a1_sum}"
        );
    }

    #[test]
    fn top_k_agreement_bounds_top_1() {
        // Top-5 agreement is always ≥ top-1 agreement, and both are ≤ 1.
        let teacher = nets(8, 11);
        let student = nets(2, 11);
        let a1 = agreement(&teacher, &student, &TINY, 16);
        let a5 = top_k_agreement(&teacher, &student, &TINY, 16, 5);
        assert!(a5 >= a1, "top-5 {a5} < top-1 {a1}");
        assert!(a5 <= 1.0);
    }

    #[test]
    fn top_k_with_all_classes_is_one() {
        let teacher = nets(8, 2);
        let student = nets(1, 2);
        assert_eq!(top_k_agreement(&teacher, &student, &TINY, 8, 6), 1.0);
    }

    #[test]
    fn histogram_counts_all_images() {
        let net = nets(2, 5);
        let h = per_class_histogram(&net, &TINY, 10);
        assert_eq!(h.iter().sum::<usize>(), 10);
        assert_eq!(h.len(), 6);
    }

    #[test]
    #[should_panic(expected = "dataset does not feed")]
    fn shape_mismatch_panics() {
        let net = nets(2, 1);
        let _ = agreement(&net, &net, &crate::datasets::CIFAR10, 2);
    }
}
