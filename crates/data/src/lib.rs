//! Synthetic dataset stand-ins and the teacher-agreement evaluation.
//!
//! The paper evaluates on CIFAR-10, STL-10 and ImageNet with pre-trained
//! weights from Hubara et al. Neither the datasets nor the training runs
//! are available here, so accuracy is *substituted* (see DESIGN.md §1):
//!
//! * [`datasets`] generates deterministic synthetic images with the same
//!   shapes as the paper's datasets (low-frequency structure + noise, so
//!   convolutions see realistic spatial correlation rather than white
//!   noise);
//! * [`eval`] measures **top-1 agreement with a high-precision teacher**:
//!   the teacher is the same network with 8-bit activations, the students
//!   are the 2-bit (ours) and 1-bit (FINN-style) variants sharing the same
//!   weights. The paper's claim "multi-bit activations have superior
//!   accuracy" (§IV-B3, Table IVa) becomes the testable ordering
//!   `agreement(2-bit) > agreement(1-bit)` on the identical inference
//!   datapath.

pub mod datasets;
pub mod eval;

pub use datasets::{Dataset, CIFAR10, IMAGENET, STL10, STL10_144};
pub use eval::{agreement, per_class_histogram, top_k_agreement};
