//! FPGA device descriptions and resource accounting (paper Table IIb).

/// Fabric clock of the MAX4 (Maia) DFE builds in the paper: 105 MHz.
pub const MAIA_FCLK_MHZ: f64 = 105.0;

/// Static description of an FPGA device.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DeviceSpec {
    /// Device name.
    pub name: &'static str,
    /// Logic elements (ALM-equivalent; the paper's "LUT" counts are on this
    /// scale for the Stratix V 5SGSD8's 262 400 ALMs).
    pub luts: u64,
    /// Flip-flops (registers).
    pub ffs: u64,
    /// Block-RAM capacity in Kbits (2567 M20K × 20 Kbit for the 5SGSD8).
    pub bram_kbits: u64,
    /// Number of physical BRAM blocks.
    pub bram_blocks: u64,
    /// Bits per BRAM block.
    pub bram_block_kbits: u64,
    /// Minimum addressable depth of one BRAM block; widths shallower than
    /// this waste the remainder (paper §III-B1a: "the minimal depth of a
    /// BRAM is 512").
    pub bram_min_depth: u64,
    /// Fabric clock in MHz.
    pub fclk_mhz: f64,
    /// Fraction of each resource that is realistically placeable/routable
    /// for a Maxeler design before timing closure fails. The paper's
    /// multi-DFE splits imply the usable fraction is well below 1.0.
    pub usable_fraction: f64,
}

/// Intel Stratix V 5SGSD8 — the FPGA inside each MAX4 (Maia) DFE
/// (Table IIb: 262 400 ALMs, 2 567 M20K blocks, 1 050 K FFs).
pub const STRATIX_V_5SGSD8: DeviceSpec = DeviceSpec {
    name: "Stratix V 5SGSD8",
    luts: 262_400,
    ffs: 1_050_000,
    bram_kbits: 2_567 * 20,
    bram_blocks: 2_567,
    bram_block_kbits: 20,
    bram_min_depth: 512,
    fclk_mhz: MAIA_FCLK_MHZ,
    usable_fraction: 0.85,
};

/// Intel Stratix 10 (GX 2800-class), the paper's §IV-B4 projection target:
/// "5× higher frequency … fit even bigger networks onto a single FPGA".
pub const STRATIX_10_GX2800: DeviceSpec = DeviceSpec {
    name: "Stratix 10 GX2800",
    luts: 933_120,
    ffs: 3_732_480,
    bram_kbits: 11_721 * 20,
    bram_blocks: 11_721,
    bram_block_kbits: 20,
    bram_min_depth: 512,
    fclk_mhz: 5.0 * MAIA_FCLK_MHZ,
    usable_fraction: 0.80,
};

impl DeviceSpec {
    /// Usable LUT budget for placement.
    pub fn usable_luts(&self) -> u64 {
        (self.luts as f64 * self.usable_fraction) as u64
    }

    /// Usable FF budget.
    pub fn usable_ffs(&self) -> u64 {
        (self.ffs as f64 * self.usable_fraction) as u64
    }

    /// Usable BRAM budget in Kbits.
    pub fn usable_bram_kbits(&self) -> u64 {
        (self.bram_kbits as f64 * self.usable_fraction) as u64
    }
}

/// Resource usage of a kernel, a DFE, or a whole design.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResourceUsage {
    /// Logic (ALM-equivalent LUTs).
    pub luts: u64,
    /// Flip-flops.
    pub ffs: u64,
    /// Allocated BRAM in Kbits (after block-shape quantization).
    pub bram_kbits: u64,
}

impl ResourceUsage {
    /// Zero usage.
    pub const ZERO: Self = Self { luts: 0, ffs: 0, bram_kbits: 0 };

    /// Component-wise sum.
    pub fn plus(self, other: Self) -> Self {
        Self {
            luts: self.luts + other.luts,
            ffs: self.ffs + other.ffs,
            bram_kbits: self.bram_kbits + other.bram_kbits,
        }
    }

    /// Does this usage fit within the usable budget of `dev`?
    pub fn fits(&self, dev: &DeviceSpec) -> bool {
        self.luts <= dev.usable_luts()
            && self.ffs <= dev.usable_ffs()
            && self.bram_kbits <= dev.usable_bram_kbits()
    }

    /// Highest utilization fraction across the three resource classes,
    /// relative to the device's raw capacity.
    pub fn utilization(&self, dev: &DeviceSpec) -> f64 {
        let l = self.luts as f64 / dev.luts as f64;
        let f = self.ffs as f64 / dev.ffs as f64;
        let b = self.bram_kbits as f64 / dev.bram_kbits as f64;
        l.max(f).max(b)
    }
}

impl std::iter::Sum for ResourceUsage {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, Self::plus)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stratix_v_matches_table2b() {
        assert_eq!(STRATIX_V_5SGSD8.luts, 262_400);
        assert_eq!(STRATIX_V_5SGSD8.bram_blocks, 2_567);
        assert_eq!(STRATIX_V_5SGSD8.ffs, 1_050_000);
        assert_eq!(STRATIX_V_5SGSD8.bram_kbits, 51_340);
    }

    #[test]
    fn stratix_10_projection_is_5x_clock() {
        assert_eq!(STRATIX_10_GX2800.fclk_mhz, 525.0);
        const { assert!(STRATIX_10_GX2800.luts > 3 * STRATIX_V_5SGSD8.luts) };
    }

    #[test]
    fn usage_arithmetic_and_fit() {
        let a = ResourceUsage { luts: 100_000, ffs: 200_000, bram_kbits: 10_000 };
        let b = ResourceUsage { luts: 50_000, ffs: 100_000, bram_kbits: 5_000 };
        let sum = a.plus(b);
        assert_eq!(sum.luts, 150_000);
        assert!(sum.fits(&STRATIX_V_5SGSD8));
        let too_big = ResourceUsage { luts: 300_000, ..ResourceUsage::ZERO };
        assert!(!too_big.fits(&STRATIX_V_5SGSD8));
    }

    #[test]
    fn utilization_takes_binding_resource() {
        let u = ResourceUsage { luts: 131_200, ffs: 105_000, bram_kbits: 25_670 };
        // LUTs 50%, FFs 10%, BRAM 50% ⇒ 0.5.
        assert!((u.utilization(&STRATIX_V_5SGSD8) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn sum_over_iterator() {
        let parts = vec![
            ResourceUsage { luts: 1, ffs: 2, bram_kbits: 3 },
            ResourceUsage { luts: 10, ffs: 20, bram_kbits: 30 },
        ];
        let total: ResourceUsage = parts.into_iter().sum();
        assert_eq!(total, ResourceUsage { luts: 11, ffs: 22, bram_kbits: 33 });
    }
}
