//! The kernel graph and the deterministic cycle scheduler.
//!
//! Two stepping strategies are available (see [`SchedulerMode`]); both are
//! cycle-accurate-equivalent — identical outputs, identical
//! [`CycleReport`]s — which `tests/scheduler_equivalence.rs` asserts over
//! randomized networks.

use crate::kernel::{Io, Kernel, Progress, WakeHint};
use crate::sched::SchedulerMode;
use crate::stream::{StreamSpec, StreamState};
use crate::trace::Trace;
use std::fmt;

/// Identifier of a stream within a [`Graph`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct StreamId(pub(crate) usize);

/// Identifier of a kernel within a [`Graph`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct KernelId(pub(crate) usize);

struct Node {
    kernel: Box<dyn Kernel>,
    inputs: Vec<usize>,
    outputs: Vec<usize>,
    read_used: Vec<bool>,
    write_used: Vec<bool>,
    busy: u64,
    stalled: u64,
}

/// Why a run stopped abnormally.
#[derive(Debug)]
pub enum RunError {
    /// No kernel made progress for a full cycle while sinks were incomplete.
    /// Carries a human-readable dump of stream occupancies.
    Deadlock {
        /// Cycle at which the deadlock was detected.
        cycle: u64,
        /// Diagnostic description of every stream's state.
        diagnostics: String,
    },
    /// `max_cycles` elapsed before the sinks completed.
    Timeout {
        /// The exhausted budget.
        max_cycles: u64,
    },
    /// The graph is malformed (unconnected stream, double writer, …).
    Invalid(String),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Deadlock { cycle, diagnostics } => {
                write!(f, "dataflow deadlock at cycle {cycle}:\n{diagnostics}")
            }
            RunError::Timeout { max_cycles } => {
                write!(f, "run exceeded {max_cycles} cycles")
            }
            RunError::Invalid(msg) => write!(f, "invalid graph: {msg}"),
        }
    }
}

impl std::error::Error for RunError {}

/// Per-kernel activity counters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KernelStats {
    /// Kernel name.
    pub name: String,
    /// Cycles in which the kernel did useful work.
    pub busy: u64,
    /// Cycles in which the kernel was blocked on I/O.
    pub stalled: u64,
}

/// Per-stream traffic counters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StreamStats {
    /// Stream name.
    pub name: String,
    /// Total elements transported.
    pub pushed: u64,
    /// High-water mark of occupancy.
    pub max_occupancy: usize,
    /// Configured capacity.
    pub capacity: usize,
}

/// Result of a completed run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CycleReport {
    /// Clock cycles until the last sink completed.
    pub cycles: u64,
    /// Per-kernel counters, index-aligned with kernel ids.
    pub kernels: Vec<KernelStats>,
    /// Per-stream counters, index-aligned with stream ids.
    pub streams: Vec<StreamStats>,
}

impl CycleReport {
    /// Wall-clock time for the run at a fabric clock of `fclk_mhz`.
    pub fn time_ms(&self, fclk_mhz: f64) -> f64 {
        self.cycles as f64 / (fclk_mhz * 1e3)
    }

    /// The busiest kernel (pipeline bottleneck).
    pub fn bottleneck(&self) -> Option<&KernelStats> {
        self.kernels.iter().max_by_key(|k| k.busy)
    }
}

/// A dataflow graph: kernels connected by bounded streams.
///
/// Build with [`Graph::add_stream`] / [`Graph::add_kernel`], then execute
/// with [`Graph::run`]. Every stream must end up with exactly one writer
/// and one reader (sources/sinks are kernels too).
pub struct Graph {
    nodes: Vec<Node>,
    streams: Vec<StreamState>,
    writers: Vec<Option<usize>>,
    readers: Vec<Option<usize>>,
    scheduler: SchedulerMode,
    /// Ready-list state: `Some((p, c))` means node `i` parked at cycle `c`
    /// with verdict `p`; `None` means it will be ticked next cycle. Stall
    /// credit for the skipped cycles is settled lazily at wake time (see
    /// [`Graph::step_cycle_ready`]), so parked nodes cost nothing per cycle.
    parked: Vec<Option<(Progress, u64)>>,
    /// Awake set as a bitmask (bit `i` set ⇔ `parked[i]` is `None`), so the
    /// ready-list tick loop skips parked stretches 64 nodes per word load
    /// instead of probing every node's park slot each cycle.
    awake: Vec<u64>,
    /// Scratch: streams written during the current cycle (ready-list mode
    /// commits only these).
    dirty: Vec<usize>,
    /// Cycle ordinal for lazy stall crediting; advanced only by the
    /// ready-list stepper (credits are differences, so the base is free).
    now: u64,
    /// Whether the last `step_cycle` saw a sink kernel report `Busy` —
    /// the only event that can flip [`Graph::complete`], so run loops
    /// re-check completion (an `is_done` call per sink, one of which takes
    /// a mutex) only when this is set.
    sink_progress: bool,
}

impl Default for Graph {
    /// Empty graph using the process-default [`SchedulerMode`] (the
    /// `QNN_SCHEDULER` environment variable; `ReadyList` when unset).
    fn default() -> Self {
        Self::with_scheduler(SchedulerMode::default())
    }
}

impl Graph {
    /// Empty graph with the process-default scheduler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty graph with an explicit scheduler mode.
    pub fn with_scheduler(scheduler: SchedulerMode) -> Self {
        Self {
            nodes: Vec::new(),
            streams: Vec::new(),
            writers: Vec::new(),
            readers: Vec::new(),
            scheduler,
            parked: Vec::new(),
            awake: Vec::new(),
            dirty: Vec::new(),
            now: 0,
            sink_progress: false,
        }
    }

    /// The active scheduler mode.
    pub fn scheduler(&self) -> SchedulerMode {
        self.scheduler
    }

    /// Switch scheduler mode. Safe at any point: pending park state is
    /// settled (outstanding stall credit lands on the counters) and
    /// cleared, so every kernel is ticked on the next cycle in either mode.
    pub fn set_scheduler(&mut self, scheduler: SchedulerMode) {
        self.scheduler = scheduler;
        for i in 0..self.nodes.len() {
            if let Some((verdict, since)) = self.parked[i].take() {
                if verdict == Progress::Stalled {
                    self.nodes[i].stalled += self.now - 1 - since;
                }
            }
        }
        // High bits beyond the node count are harmless: the tick loop stops
        // at `nodes.len()`.
        self.awake.iter_mut().for_each(|w| *w = !0);
    }

    /// Register a stream.
    pub fn add_stream(&mut self, spec: StreamSpec) -> StreamId {
        self.streams.push(StreamState::new(spec));
        self.writers.push(None);
        self.readers.push(None);
        StreamId(self.streams.len() - 1)
    }

    /// Register a kernel with its input and output streams (port order is
    /// the slice order).
    ///
    /// # Panics
    /// Panics if a stream already has a reader/writer.
    pub fn add_kernel(
        &mut self,
        kernel: Box<dyn Kernel>,
        inputs: &[StreamId],
        outputs: &[StreamId],
    ) -> KernelId {
        let id = self.nodes.len();
        for &StreamId(s) in inputs {
            assert!(
                self.readers[s].is_none(),
                "stream '{}' already has a reader",
                self.streams[s].spec.name
            );
            self.readers[s] = Some(id);
        }
        for &StreamId(s) in outputs {
            assert!(
                self.writers[s].is_none(),
                "stream '{}' already has a writer",
                self.streams[s].spec.name
            );
            self.writers[s] = Some(id);
        }
        self.nodes.push(Node {
            kernel,
            inputs: inputs.iter().map(|s| s.0).collect(),
            outputs: outputs.iter().map(|s| s.0).collect(),
            read_used: vec![false; inputs.len()],
            write_used: vec![false; outputs.len()],
            busy: 0,
            stalled: 0,
        });
        self.parked.push(None);
        if id % 64 == 0 {
            self.awake.push(0);
        }
        self.awake[id / 64] |= 1 << (id % 64);
        KernelId(id)
    }

    /// Number of kernels.
    pub fn num_kernels(&self) -> usize {
        self.nodes.len()
    }

    /// Number of streams.
    pub fn num_streams(&self) -> usize {
        self.streams.len()
    }

    /// Kernel name lookup.
    pub fn kernel_name(&self, id: KernelId) -> &str {
        self.nodes[id.0].kernel.name()
    }

    /// Total FMem bits of all stream FIFOs (for the resource model).
    pub fn total_fmem_bits(&self) -> usize {
        self.streams.iter().map(|s| s.spec.fmem_bits()).sum()
    }

    pub(crate) fn validate(&self) -> Result<(), RunError> {
        for (i, s) in self.streams.iter().enumerate() {
            if self.writers[i].is_none() {
                return Err(RunError::Invalid(format!(
                    "stream '{}' has no writer",
                    s.spec.name
                )));
            }
            if self.readers[i].is_none() {
                return Err(RunError::Invalid(format!(
                    "stream '{}' has no reader",
                    s.spec.name
                )));
            }
        }
        if self.nodes.is_empty() {
            return Err(RunError::Invalid("graph has no kernels".into()));
        }
        Ok(())
    }

    /// True when every sink kernel (no output ports) reports completion.
    pub(crate) fn complete(&self) -> bool {
        self.nodes
            .iter()
            .filter(|n| n.outputs.is_empty())
            .all(|n| n.kernel.is_done())
    }

    /// Execute until every sink completes or `max_cycles` elapse.
    pub fn run(&mut self, max_cycles: u64) -> Result<CycleReport, RunError> {
        self.run_opts(max_cycles, true)
    }

    /// Like [`Graph::run`], with deadlock detection optional.
    ///
    /// The threaded multi-DFE executor disables detection because a graph
    /// legitimately idles while waiting for elements from another device's
    /// clock domain; it yields the thread instead.
    pub fn run_opts(
        &mut self,
        max_cycles: u64,
        detect_deadlock: bool,
    ) -> Result<CycleReport, RunError> {
        self.run_inner(max_cycles, detect_deadlock, 0)
            .map(|(r, _)| r)
    }

    /// Run while sampling stream occupancy and kernel activity every
    /// `sample_every` cycles (see [`Trace`]).
    pub fn run_traced(
        &mut self,
        max_cycles: u64,
        sample_every: u64,
    ) -> Result<(CycleReport, Trace), RunError> {
        assert!(sample_every > 0, "sampling cadence must be positive");
        self.run_inner(max_cycles, true, sample_every)
            .map(|(r, t)| (r, t.expect("tracing was requested")))
    }

    fn run_inner(
        &mut self,
        max_cycles: u64,
        detect_deadlock: bool,
        sample_every: u64,
    ) -> Result<(CycleReport, Option<Trace>), RunError> {
        self.validate()?;
        let mut trace = (sample_every > 0).then(|| {
            Trace::new(
                sample_every,
                self.streams.iter().map(|s| s.spec.name.clone()).collect(),
                self.nodes
                    .iter()
                    .map(|n| n.kernel.name().to_string())
                    .collect(),
            )
        });
        let mut busy_at_last_sample: Vec<u64> = self.nodes.iter().map(|n| n.busy).collect();
        let mut cycle: u64 = 0;
        // `complete()` is re-evaluated only after cycles where a sink ticked
        // `Busy` — the sole event that can flip it (see [`Kernel::is_done`]).
        // Checking it every cycle would cost an O(kernels) scan plus a sink
        // mutex lock per simulated cycle, which dominates shallow cycles.
        if !self.complete() {
            loop {
                if cycle >= max_cycles {
                    return Err(RunError::Timeout { max_cycles });
                }
                let (any_progress, committed) = self.step_cycle();
                if !any_progress && !committed {
                    if detect_deadlock {
                        return Err(RunError::Deadlock {
                            cycle,
                            diagnostics: self.dump_streams(),
                        });
                    }
                    // Waiting on another clock domain: let its thread run.
                    std::thread::yield_now();
                }
                cycle += 1;
                if let Some(t) = &mut trace {
                    if cycle % sample_every == 0 {
                        t.occupancy
                            .push(self.streams.iter().map(|s| s.queue.len() as u32).collect());
                        t.busy_delta.push(
                            self.nodes
                                .iter()
                                .zip(&busy_at_last_sample)
                                .map(|(n, &prev)| (n.busy - prev) as u32)
                                .collect(),
                        );
                        for (slot, n) in busy_at_last_sample.iter_mut().zip(&self.nodes) {
                            *slot = n.busy;
                        }
                    }
                }
                if self.sink_progress && self.complete() {
                    break;
                }
            }
        }
        Ok((self.report(cycle), trace))
    }

    /// Advance the graph by one cycle and commit staged stream writes.
    ///
    /// Returns `(any_progress, committed)`: whether any kernel reported
    /// [`Progress::Busy`] and whether any stream element moved from staging
    /// into its FIFO. The lockstep multi-device executor drives this
    /// directly, one call per global clock edge. Dispatches on the active
    /// [`SchedulerMode`]; both variants produce bit-identical stream
    /// contents and counters.
    pub(crate) fn step_cycle(&mut self) -> (bool, bool) {
        match self.scheduler {
            SchedulerMode::Dense => self.step_cycle_dense(),
            SchedulerMode::ReadyList => self.step_cycle_ready(),
        }
    }

    /// Dense stepper: tick every kernel, commit every stream.
    fn step_cycle_dense(&mut self) -> (bool, bool) {
        let mut any_progress = false;
        let mut sink_progress = false;
        for node in &mut self.nodes {
            node.read_used.fill(false);
            node.write_used.fill(false);
            let mut io = Io::new(
                &mut self.streams,
                &node.inputs,
                &node.outputs,
                &mut node.read_used,
                &mut node.write_used,
            );
            let prog = node.kernel.tick(&mut io);
            check_progress_contract(node, prog);
            match prog {
                Progress::Busy => {
                    node.busy += 1;
                    any_progress = true;
                    sink_progress |= node.outputs.is_empty();
                }
                Progress::Stalled => node.stalled += 1,
                Progress::Idle => {}
            }
        }
        let mut committed = false;
        for s in &mut self.streams {
            committed |= s.commit() > 0;
        }
        self.sink_progress = sink_progress;
        (any_progress, committed)
    }

    /// Ready-list stepper: skip parked kernels, tick the rest in node
    /// order, commit only streams written this cycle.
    ///
    /// Equivalence to the dense stepper hinges on two points:
    ///
    /// * **Parking is a replay, not an omission.** A kernel parks only if
    ///   its `wake_hint` is [`WakeHint::Parkable`], whose contract makes a
    ///   non-`Busy` tick a fixed point: dense stepping would re-run the
    ///   identical tick every cycle until a stream event, getting the same
    ///   verdict and mutating nothing. So a parked `Stalled` node is
    ///   credited one stall per skipped cycle and a parked `Idle` node
    ///   credits nothing — exactly the counters dense would produce. The
    ///   credit is settled *lazily*: the park records the cycle ordinal and
    ///   the wake (or [`Graph::report`] / [`Graph::set_scheduler`], for
    ///   nodes still parked then) adds the whole span at once, so skipped
    ///   cycles cost nothing — not even a counter increment.
    /// * **Wakes happen at the dense-visible instant.** A reader's pop
    ///   mutates the queue immediately, so the stream's writer is woken
    ///   during the tick phase: a writer *after* the reader in node order
    ///   is ticked the same cycle (dense would see the freed slot this
    ///   cycle), one *before* was already credited and ticks next cycle
    ///   (dense saw the still-full stream this cycle). Staged writes only
    ///   become readable at commit, so readers are woken in the commit
    ///   phase and tick next cycle — the registered-output latency dense
    ///   exhibits.
    fn step_cycle_ready(&mut self) -> (bool, bool) {
        let c = self.now;
        let Self {
            nodes,
            streams,
            writers,
            readers,
            parked,
            awake,
            dirty,
            ..
        } = self;
        let n = nodes.len();
        let mut any_progress = false;
        let mut sink_progress = false;
        dirty.clear();
        let mut i = 0usize;
        while i < n {
            // Advance to the next awake node at or after `i`. The word is
            // re-read live each step, so a mid-cycle wake of a later node
            // (`w > i` pop-wake below) is picked up within the same cycle.
            let rest = awake[i / 64] >> (i % 64);
            if rest == 0 {
                i = (i / 64 + 1) * 64;
                continue;
            }
            i += rest.trailing_zeros() as usize;
            if i >= n {
                break;
            }
            let node = &mut nodes[i];
            node.read_used.fill(false);
            node.write_used.fill(false);
            let mut io = Io::new(
                streams,
                &node.inputs,
                &node.outputs,
                &mut node.read_used,
                &mut node.write_used,
            );
            let prog = node.kernel.tick(&mut io);
            check_progress_contract(node, prog);
            match prog {
                Progress::Busy => {
                    node.busy += 1;
                    any_progress = true;
                    sink_progress |= node.outputs.is_empty();
                }
                Progress::Stalled => node.stalled += 1,
                Progress::Idle => {}
            }
            if prog != Progress::Busy && node.kernel.wake_hint() == WakeHint::Parkable {
                parked[i] = Some((prog, c));
                awake[i / 64] &= !(1 << (i % 64));
            }
            for p in 0..nodes[i].read_used.len() {
                if nodes[i].read_used[p] {
                    // The pop freed a slot; wake the stream's writer. A
                    // writer later in node order (`w > i`) still ticks this
                    // cycle, so its credited span excludes cycle `c`; one
                    // earlier was already skipped this cycle and includes it.
                    if let Some(w) = writers[nodes[i].inputs[p]] {
                        if w != i {
                            if let Some((verdict, since)) = parked[w].take() {
                                awake[w / 64] |= 1 << (w % 64);
                                if verdict == Progress::Stalled {
                                    nodes[w].stalled +=
                                        if w > i { c - since - 1 } else { c - since };
                                }
                            }
                        }
                    }
                }
            }
            for p in 0..nodes[i].write_used.len() {
                if nodes[i].write_used[p] {
                    dirty.push(nodes[i].outputs[p]);
                }
            }
            i += 1;
        }
        let mut committed = false;
        for &s in dirty.iter() {
            if streams[s].commit() > 0 {
                committed = true;
                // Elements became readable; wake the stream's reader (its
                // credited span includes cycle `c`, which it skipped).
                if let Some(r) = readers[s] {
                    if let Some((verdict, since)) = parked[r].take() {
                        awake[r / 64] |= 1 << (r % 64);
                        if verdict == Progress::Stalled {
                            nodes[r].stalled += c - since;
                        }
                    }
                }
            }
        }
        self.now = c + 1;
        self.sink_progress = sink_progress;
        (any_progress, committed)
    }

    /// Outstanding lazy stall credit for node `i`: cycles skipped while
    /// parked `Stalled` that no wake has settled yet (report-time view).
    fn pending_stall_credit(&self, i: usize) -> u64 {
        match self.parked[i] {
            Some((Progress::Stalled, since)) => self.now - 1 - since,
            _ => 0,
        }
    }

    pub(crate) fn report(&self, cycles: u64) -> CycleReport {
        CycleReport {
            cycles,
            kernels: self
                .nodes
                .iter()
                .enumerate()
                .map(|(i, n)| KernelStats {
                    name: n.kernel.name().to_string(),
                    busy: n.busy,
                    stalled: n.stalled + self.pending_stall_credit(i),
                })
                .collect(),
            streams: self
                .streams
                .iter()
                .map(|s| StreamStats {
                    name: s.spec.name.clone(),
                    pushed: s.pushed,
                    max_occupancy: s.max_occupancy,
                    capacity: s.spec.capacity,
                })
                .collect(),
        }
    }

    /// Ready-list park state for kernel `id`: the last non-`Busy` verdict
    /// while parked, `None` while schedulable. Exposed for tests.
    pub fn parked_state(&self, id: KernelId) -> Option<Progress> {
        self.parked[id.0].map(|(p, _)| p)
    }

    /// Whether the last `step_cycle` saw a sink kernel tick `Busy` — the
    /// only event after which [`Graph::complete`] can newly hold, so the
    /// lockstep executor gates its completion re-check on this.
    pub(crate) fn made_sink_progress(&self) -> bool {
        self.sink_progress
    }

    pub(crate) fn dump_streams(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (i, s) in self.streams.iter().enumerate() {
            let _ = writeln!(
                out,
                "  stream {:3} '{}': {}/{} occupied, writer={:?} reader={:?}",
                i,
                s.spec.name,
                s.queue.len(),
                s.spec.capacity,
                self.writers[i].map(|k| self.nodes[k].kernel.name()),
                self.readers[i].map(|k| self.nodes[k].kernel.name()),
            );
        }
        out
    }
}

/// Debug-mode `Progress` contract check, applied by both steppers after
/// every tick:
///
/// * `Idle` must not have touched any port — an idle kernel that read or
///   wrote did observable work and must report `Busy` (this is also what
///   makes `Idle` parking sound).
/// * A [`WakeHint::Parkable`] kernel returning `Stalled` must not have
///   touched any port either: the ready-list scheduler replays the stall
///   verdict without re-running the tick, which is only valid if the
///   stalled tick was port-inert.
///
/// Compiled out in release builds (`cargo test` runs debug, so the tier-1
/// suite exercises it on every kernel in the workspace).
fn check_progress_contract(node: &Node, prog: Progress) {
    if cfg!(debug_assertions) && prog != Progress::Busy {
        let touched = node.read_used.iter().any(|&b| b) || node.write_used.iter().any(|&b| b);
        match prog {
            Progress::Idle => assert!(
                !touched,
                "kernel '{}' returned Idle after touching a port (Progress contract)",
                node.kernel.name()
            ),
            Progress::Stalled if node.kernel.wake_hint() == WakeHint::Parkable => assert!(
                !touched,
                "parkable kernel '{}' returned Stalled after touching a port \
                 (WakeHint::Parkable fixed-point contract)",
                node.kernel.name()
            ),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::{HostSink, HostSource};
    use crate::kernel::Progress;

    /// A pass-through kernel that adds a constant, one element per cycle.
    struct AddConst {
        c: i32,
    }
    impl Kernel for AddConst {
        fn name(&self) -> &str {
            "add-const"
        }
        fn tick(&mut self, io: &mut Io<'_>) -> Progress {
            if io.can_read(0) && io.can_write(0) {
                let v = io.read(0).expect("checked");
                io.write(0, v + self.c);
                Progress::Busy
            } else if io.can_read(0) || io.num_inputs() == 0 {
                Progress::Stalled
            } else {
                Progress::Idle
            }
        }
    }

    fn pipeline(data: Vec<i32>, stages: usize) -> (Graph, crate::host::SinkHandle) {
        let n = data.len();
        let mut g = Graph::new();
        let mut prev = g.add_stream(StreamSpec::new("s0", 8, 4));
        g.add_kernel(Box::new(HostSource::new("src", data)), &[], &[prev]);
        for i in 0..stages {
            let next = g.add_stream(StreamSpec::new(format!("s{}", i + 1), 8, 4));
            g.add_kernel(Box::new(AddConst { c: 1 }), &[prev], &[next]);
            prev = next;
        }
        let (sink, handle) = HostSink::new("dst", n);
        g.add_kernel(Box::new(sink), &[prev], &[]);
        (g, handle)
    }

    #[test]
    fn pipeline_computes_and_counts_cycles() {
        let (mut g, handle) = pipeline(vec![10, 20, 30], 2);
        let report = g.run(1000).expect("run ok");
        assert_eq!(handle.take(), vec![12, 22, 32]);
        // 3 elements through a 4-stage pipeline (src + 2 adders + sink):
        // latency ≈ depth + n; must be far below the serial bound yet > n.
        assert!(
            report.cycles >= 5 && report.cycles <= 20,
            "cycles = {}",
            report.cycles
        );
    }

    #[test]
    fn registered_outputs_cost_one_cycle_per_stage() {
        // A single element through k stages must take ≥ k+1 cycles.
        let (mut g, _h) = pipeline(vec![1], 5);
        let report = g.run(100).expect("run ok");
        assert!(
            report.cycles >= 6,
            "combinational ripple detected: {}",
            report.cycles
        );
    }

    #[test]
    fn throughput_is_one_element_per_cycle() {
        let n = 100;
        let (mut g, handle) = pipeline((0..n).collect(), 1);
        let report = g.run(10_000).expect("run ok");
        assert_eq!(handle.take().len(), n as usize);
        // Fully pipelined: cycles ≈ n + small latency.
        assert!(report.cycles < n as u64 + 10, "cycles = {}", report.cycles);
    }

    #[test]
    fn unconnected_stream_is_invalid() {
        let mut g = Graph::new();
        let s = g.add_stream(StreamSpec::new("dangling", 2, 4));
        g.add_kernel(Box::new(HostSource::new("src", vec![1])), &[], &[s]);
        match g.run(10) {
            Err(RunError::Invalid(msg)) => assert!(msg.contains("no reader")),
            other => panic!("expected Invalid, got {other:?}"),
        }
    }

    #[test]
    fn starved_sink_deadlocks_with_diagnostics() {
        // Sink expects 2 elements but the source provides 1.
        let mut g = Graph::new();
        let s = g.add_stream(StreamSpec::new("s", 8, 4));
        g.add_kernel(Box::new(HostSource::new("src", vec![7])), &[], &[s]);
        let (sink, _h) = HostSink::new("dst", 2);
        g.add_kernel(Box::new(sink), &[s], &[]);
        match g.run(1000) {
            Err(RunError::Deadlock { diagnostics, .. }) => {
                assert!(diagnostics.contains("'s'"));
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn timeout_is_reported() {
        let (mut g, _h) = pipeline(vec![1, 2, 3], 2);
        match g.run(2) {
            Err(RunError::Timeout { max_cycles: 2 }) => {}
            other => panic!("expected timeout, got {other:?}"),
        }
    }

    #[test]
    fn stats_account_busy_and_stalls() {
        let (mut g, _h) = pipeline((0..10).collect(), 1);
        let report = g.run(1000).expect("run ok");
        let adder = &report.kernels[1];
        assert_eq!(adder.name, "add-const");
        assert_eq!(adder.busy, 10, "one busy cycle per element");
        let src_stream = &report.streams[0];
        assert_eq!(src_stream.pushed, 10);
        assert!(src_stream.max_occupancy <= src_stream.capacity);
    }

    #[test]
    fn ready_list_matches_dense_on_pipeline() {
        let run_mode = |mode| {
            let (mut g, handle) = pipeline((0..25).collect(), 3);
            g.set_scheduler(mode);
            let report = g.run(10_000).expect("run ok");
            (handle.take(), report)
        };
        assert_eq!(
            run_mode(SchedulerMode::Dense),
            run_mode(SchedulerMode::ReadyList)
        );
    }

    /// A sink that ignores its input for `wait` cycles, then drains one
    /// element per cycle. The idle-wait is a timer (internal state advances
    /// with no port activity), so it correctly keeps the default
    /// `WakeHint::AlwaysTick` — parking it would sleep forever.
    struct LazySink {
        wait: u64,
        expect: usize,
        got: usize,
    }
    impl Kernel for LazySink {
        fn name(&self) -> &str {
            "lazy-dst"
        }
        fn tick(&mut self, io: &mut Io<'_>) -> Progress {
            if self.wait > 0 {
                self.wait -= 1;
                return Progress::Idle;
            }
            if self.got >= self.expect {
                return Progress::Idle;
            }
            match io.read(0) {
                Some(_) => {
                    self.got += 1;
                    Progress::Busy
                }
                None => Progress::Stalled,
            }
        }
        fn is_done(&self) -> bool {
            self.got >= self.expect
        }
    }

    /// Regression for `max_occupancy` accounting (sampled after commit):
    /// a two-kernel graph whose FIFO fills to capacity while the sink is
    /// lazy must pin identical occupancy stats in both scheduler modes.
    #[test]
    fn full_fifo_occupancy_stats_pinned_in_both_modes() {
        let run_mode = |mode| {
            let mut g = Graph::with_scheduler(mode);
            let s = g.add_stream(StreamSpec::new("s", 8, 2));
            g.add_kernel(
                Box::new(HostSource::new("src", (1..=6).collect())),
                &[],
                &[s],
            );
            g.add_kernel(
                Box::new(LazySink {
                    wait: 5,
                    expect: 6,
                    got: 0,
                }),
                &[s],
                &[],
            );
            // The lazy phase has legitimate full no-progress cycles, so
            // deadlock detection is off (identically in both modes).
            g.run_opts(1000, false).expect("run ok")
        };
        let dense = run_mode(SchedulerMode::Dense);
        let ready = run_mode(SchedulerMode::ReadyList);
        assert_eq!(dense, ready, "reports must be bit-identical");
        let s = &dense.streams[0];
        assert_eq!(
            s.max_occupancy, 2,
            "FIFO must fill to capacity during the lazy phase"
        );
        assert_eq!(s.pushed, 6, "every element crosses the stream exactly once");
        assert!(
            dense.kernels[0].stalled > 0,
            "source must stall on the full FIFO"
        );
    }

    /// Parking must actually happen (otherwise the ready-list mode is a
    /// silent no-op and its benchmark claims are vacuous).
    #[test]
    fn exhausted_source_parks_idle_under_ready_list() {
        let (mut g, _h) = pipeline(vec![1, 2, 3], 2);
        g.set_scheduler(SchedulerMode::ReadyList);
        g.run(1000).expect("run ok");
        assert_eq!(
            g.parked_state(KernelId(0)),
            Some(Progress::Idle),
            "drained source should end the run parked"
        );
    }

    /// Switching modes clears park state so no kernel sleeps through the
    /// next cycle.
    #[test]
    fn set_scheduler_unparks_everything() {
        let (mut g, _h) = pipeline(vec![1], 1);
        g.set_scheduler(SchedulerMode::ReadyList);
        g.run(1000).expect("run ok");
        assert!(g.parked_state(KernelId(0)).is_some());
        g.set_scheduler(SchedulerMode::Dense);
        assert_eq!(g.parked_state(KernelId(0)), None);
    }
}
