//! The kernel graph and the deterministic cycle scheduler.
//!
//! Two stepping strategies are available (see [`SchedulerMode`]); both are
//! cycle-accurate-equivalent — identical outputs, identical
//! [`CycleReport`]s — which `tests/scheduler_equivalence.rs` asserts over
//! randomized networks.

use crate::kernel::{Io, Kernel, Progress, SpanIo, SpanPlan, WakeHint, MAX_SPAN_PORTS};
use crate::replay::{ReplayDiag, ReplayPhase, ReplayState, Step};
use crate::sched::{macro_ticks_default, schedule_replay_default, SchedulerMode};
use crate::stream::{StreamSpec, StreamState};
use crate::trace::Trace;
use std::fmt;

/// Identifier of a stream within a [`Graph`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct StreamId(pub(crate) usize);

/// Identifier of a kernel within a [`Graph`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct KernelId(pub(crate) usize);

struct Node {
    kernel: Box<dyn Kernel>,
    inputs: Vec<usize>,
    outputs: Vec<usize>,
    /// Per-port elements moved this cycle, bounded by the lane counts
    /// below (1 for ordinary kernels, >1 for folded ones).
    read_used: Vec<u16>,
    write_used: Vec<u16>,
    read_lanes: u16,
    write_lanes: u16,
    busy: u64,
    stalled: u64,
}

/// Why a run stopped abnormally.
#[derive(Debug)]
pub enum RunError {
    /// No kernel made progress for a full cycle while sinks were incomplete.
    /// Carries a human-readable dump of stream occupancies.
    Deadlock {
        /// Cycle at which the deadlock was detected.
        cycle: u64,
        /// Diagnostic description of every stream's state.
        diagnostics: String,
    },
    /// `max_cycles` elapsed before the sinks completed.
    Timeout {
        /// The exhausted budget.
        max_cycles: u64,
    },
    /// The graph is malformed (unconnected stream, double writer, …).
    Invalid(String),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Deadlock { cycle, diagnostics } => {
                write!(f, "dataflow deadlock at cycle {cycle}:\n{diagnostics}")
            }
            RunError::Timeout { max_cycles } => {
                write!(f, "run exceeded {max_cycles} cycles")
            }
            RunError::Invalid(msg) => write!(f, "invalid graph: {msg}"),
        }
    }
}

impl std::error::Error for RunError {}

/// Per-kernel activity counters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KernelStats {
    /// Kernel name.
    pub name: String,
    /// Cycles in which the kernel did useful work.
    pub busy: u64,
    /// Cycles in which the kernel was blocked on I/O.
    pub stalled: u64,
}

/// Per-stream traffic counters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StreamStats {
    /// Stream name.
    pub name: String,
    /// Total elements transported.
    pub pushed: u64,
    /// High-water mark of occupancy.
    pub max_occupancy: usize,
    /// Configured capacity.
    pub capacity: usize,
}

/// Result of a completed run.
#[derive(Clone, Debug)]
pub struct CycleReport {
    /// Clock cycles until the last sink completed.
    pub cycles: u64,
    /// Per-kernel counters, index-aligned with kernel ids.
    pub kernels: Vec<KernelStats>,
    /// Per-stream counters, index-aligned with stream ids.
    pub streams: Vec<StreamStats>,
    /// Schedule-replay diagnostics (see [`crate::replay`]). Like
    /// [`Graph::bursts`], this describes how the run was *dispatched*, not
    /// what it computed — so it is excluded from report equality, which the
    /// differential batteries hold bit-identical across scheduler tiers.
    pub replay: ReplayDiag,
}

impl PartialEq for CycleReport {
    fn eq(&self, other: &Self) -> bool {
        self.cycles == other.cycles
            && self.kernels == other.kernels
            && self.streams == other.streams
    }
}

impl Eq for CycleReport {}

impl CycleReport {
    /// Wall-clock time for the run at a fabric clock of `fclk_mhz`.
    pub fn time_ms(&self, fclk_mhz: f64) -> f64 {
        self.cycles as f64 / (fclk_mhz * 1e3)
    }

    /// The busiest kernel (pipeline bottleneck).
    pub fn bottleneck(&self) -> Option<&KernelStats> {
        self.kernels.iter().max_by_key(|k| k.busy)
    }
}

/// A dataflow graph: kernels connected by bounded streams.
///
/// Build with [`Graph::add_stream`] / [`Graph::add_kernel`], then execute
/// with [`Graph::run`]. Every stream must end up with exactly one writer
/// and one reader (sources/sinks are kernels too).
pub struct Graph {
    nodes: Vec<Node>,
    streams: Vec<StreamState>,
    writers: Vec<Option<usize>>,
    readers: Vec<Option<usize>>,
    scheduler: SchedulerMode,
    /// Ready-list state: `Some((p, c))` means node `i` parked at cycle `c`
    /// with verdict `p`; `None` means it will be ticked next cycle. Stall
    /// credit for the skipped cycles is settled lazily at wake time (see
    /// [`Graph::step_cycle_ready`]), so parked nodes cost nothing per cycle.
    parked: Vec<Option<(Progress, u64)>>,
    /// Awake set as a bitmask (bit `i` set ⇔ `parked[i]` is `None`), so the
    /// ready-list tick loop skips parked stretches 64 nodes per word load
    /// instead of probing every node's park slot each cycle.
    awake: Vec<u64>,
    /// Scratch: streams written during the current cycle (ready-list mode
    /// commits only these).
    dirty: Vec<usize>,
    /// Cycle ordinal for lazy stall crediting; advanced only by the
    /// ready-list stepper (credits are differences, so the base is free).
    now: u64,
    /// Whether the last `step_cycle` saw a sink kernel report `Busy` —
    /// the only event that can flip [`Graph::complete`], so run loops
    /// re-check completion (an `is_done` call per sink, one of which takes
    /// a mutex) only when this is set.
    sink_progress: bool,
    /// Macro-tick span dispatch (see [`Graph::try_burst`]): when the graph
    /// steps itself under the ready-list scheduler, whole uniform spans of
    /// cycles are replayed in one dispatch per kernel. Bit-identical to
    /// per-element stepping by construction; defaults from
    /// `QNN_MACRO_TICKS`.
    macro_ticks: bool,
    /// Number of spans dispatched by [`Graph::try_burst`] — diagnostics
    /// only, deliberately not part of [`CycleReport`] (which must stay
    /// bit-identical across dispatch modes).
    bursts: u64,
    /// Total cycles covered by those spans (sum of every burst's `k`) —
    /// with [`Graph::bursts`], the coverage view: `burst_cycles / cycles`
    /// is the fraction of the run that skipped per-element stepping.
    burst_cycles: u64,
    /// Per-element cycles left before the next burst attempt. A failed
    /// attempt costs a full planning scan, and the graph states that fail
    /// (a kernel mid-row-transition, a trickle-fed consumer about to run
    /// dry) persist for stretches — so retrying every cycle roughly
    /// doubles the cost of uncovered regions. Failures back off
    /// exponentially ([`Graph::BURST_BACKOFF_CAP`]); any success resets.
    /// Purely a cost knob: skipping an attempt never changes semantics,
    /// bursts being optional replays of dense cycles.
    burst_cooldown: u64,
    /// Cooldown the *next* failure will impose (doubles up to the cap).
    burst_backoff: u64,
    /// Scratch for [`Graph::try_burst`]: the burst participants as
    /// `(node, plan, offset, demoted)` — awake kernels at offset 0, plus
    /// demoted awake kernels (`demoted = Some(blocked verdict)`) and
    /// recruited parked kernels, both at the offset dense stepping would
    /// first tick them `Busy` (`u64::MAX` until the relaxation pass
    /// resolves it).
    burst_plans: Vec<(usize, SpanPlan, u64, Option<Progress>)>,
    /// Scratch for [`Graph::try_burst`] phase 1: demoted awake kernels as
    /// `(node, plan, blocked verdict)`, buffered so `burst_plans` keeps its
    /// offset-0 prefix until the scan completes. Always empty between
    /// attempts.
    burst_demoted: Vec<(usize, SpanPlan, Progress)>,
    /// Scratch: `Idle`-blocked participants whose first masked-input
    /// arrival `f` lands before they run — dense flips them to a
    /// port-inert `Stalled` park at `f` (see the admission pass).
    burst_ripen: Vec<(usize, u64)>,
    /// Scratch: streams touched by the planned burst, as
    /// `(stream, start_len, pushes, pops)` — queue length at burst start and
    /// the element counts the dispatched span will move (for closed-form
    /// occupancy crediting).
    burst_streams: Vec<(usize, usize, u64, u64)>,
    /// Scratch, indexed by stream: burst read/write involvement flags
    /// (`BURST_W` / `BURST_R`). Always all-zero between burst attempts.
    stream_flags: Vec<u8>,
    /// Scratch, indexed by node: index into `burst_plans`, `u32::MAX` when
    /// the node is not a participant. Always all-`MAX` between attempts.
    part_of: Vec<u32>,
    /// Steady-state schedule replay — the third scheduler tier (see
    /// [`crate::replay`]). Inert until armed with a marker via
    /// [`Graph::set_replay_marker`].
    replay: ReplayState,
}

/// What a replay-tape step executed as (see [`Graph::try_replay_step`]).
enum ReplayOutcome {
    /// A recorded span was re-dispatched, advancing the clock `k` cycles.
    Span(u64),
    /// The tape step is a dense cycle: run the ordinary stepper.
    Dense,
    /// A guard failed; replay re-armed, step this cycle normally.
    Fallback,
}

/// `stream_flags` bit: the stream is written (one element per cycle) during
/// the planned burst.
const BURST_W: u8 = 1;
/// `stream_flags` bit: the stream is read during the planned burst.
const BURST_R: u8 = 2;

/// TEMP profiling counters (scratch instrumentation; removed before commit).
impl Default for Graph {
    /// Empty graph using the process-default [`SchedulerMode`] (the
    /// `QNN_SCHEDULER` environment variable; `ReadyList` when unset).
    fn default() -> Self {
        Self::with_scheduler(SchedulerMode::default())
    }
}

impl Graph {
    /// Longest stretch of per-element cycles a failed burst attempt can
    /// suppress retries for (see [`Graph::run_inner`]'s backoff). Low
    /// enough that a regime change re-engages spans within a typical row
    /// transition, high enough that a trickle equilibrium pays one
    /// planning scan per cap instead of one per cycle.
    const BURST_BACKOFF_CAP: u64 = 64;

    /// Smallest span worth dispatching as a burst. Planning a wavefront
    /// costs a couple of microseconds; below this many cycles the same
    /// work is cheaper stepped densely, so the attempt is treated as a
    /// failure (and backs off) instead. Correctness is unaffected — a
    /// rejected burst just falls back to per-element stepping.
    const MIN_BURST: u64 = 8;

    /// Span floor while a schedule-replay tape records. `min_burst` is an
    /// admission threshold, not a target — the feasibility scan returns the
    /// same large spans the default policy dispatches — so the lower floor
    /// only *adds* the short spans the default policy leaves to dense
    /// stepping. A recorded span's planning cost is paid once and then
    /// replayed for free every period, and after record-time pruning (only
    /// the participants that actually run survive) even a 2-cycle replayed
    /// span beats re-stepping those cycles densely on every image — raising
    /// this floor to 4 measurably slowed ResNet-18 replay by pushing the
    /// short-phase residue back to dense stepping.
    const REPLAY_MIN_BURST: u64 = 2;

    /// Empty graph with the process-default scheduler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty graph with an explicit scheduler mode.
    pub fn with_scheduler(scheduler: SchedulerMode) -> Self {
        Self {
            nodes: Vec::new(),
            streams: Vec::new(),
            writers: Vec::new(),
            readers: Vec::new(),
            scheduler,
            parked: Vec::new(),
            awake: Vec::new(),
            dirty: Vec::new(),
            now: 0,
            sink_progress: false,
            macro_ticks: macro_ticks_default(),
            bursts: 0,
            burst_cycles: 0,
            burst_cooldown: 0,
            burst_backoff: 1,
            burst_plans: Vec::new(),
            burst_demoted: Vec::new(),
            burst_ripen: Vec::new(),
            burst_streams: Vec::new(),
            stream_flags: Vec::new(),
            part_of: Vec::new(),
            replay: ReplayState::new(schedule_replay_default()),
        }
    }

    /// Whether macro-tick span dispatch is enabled (only effective under
    /// [`SchedulerMode::ReadyList`] in self-stepped runs).
    pub fn macro_ticks(&self) -> bool {
        self.macro_ticks
    }

    /// Enable or disable macro-tick span dispatch. Safe at any point,
    /// including mid-run: bursts leave no cross-cycle state behind (no
    /// staged writes, identical park bookkeeping), so the next cycle steps
    /// per-element or in spans indistinguishably. Any schedule-replay tape
    /// is dropped (it encodes the old dispatch policy's step sequence);
    /// replay re-arms and re-detects steady state.
    pub fn set_macro_ticks(&mut self, on: bool) {
        self.macro_ticks = on;
        self.replay.rearm();
    }

    /// Whether steady-state schedule replay is enabled (only effective on a
    /// marker-armed graph under [`SchedulerMode::ReadyList`] in self-stepped
    /// runs; see [`crate::replay`]).
    pub fn schedule_replay(&self) -> bool {
        self.replay.enabled
    }

    /// Enable or disable schedule replay. Safe at any point: the tape and
    /// fingerprint history are dropped, and the next cycle steps normally
    /// (diagnostics counters survive — they describe the whole run).
    pub fn set_schedule_replay(&mut self, on: bool) {
        self.replay.enabled = on;
        self.replay.rearm();
    }

    /// Arm schedule replay: watch `marker` (conventionally the logits
    /// stream) and treat every `period` elements popped from it as one
    /// image boundary, where steady state is fingerprinted (see
    /// [`crate::replay`]). Resets any previous tape.
    pub fn set_replay_marker(&mut self, marker: StreamId, period: u64) {
        assert!(period > 0, "replay period must be positive");
        let st = &self.streams[marker.0];
        let popped = st.pushed - st.total_len() as u64;
        self.replay.marker = Some((marker.0, period));
        self.replay.next_target = popped + period;
        self.replay.rearm();
    }

    /// Schedule-replay diagnostics so far (also surfaced on
    /// [`CycleReport::replay`]).
    pub fn replay_diag(&self) -> ReplayDiag {
        self.replay.diag
    }

    /// Spans dispatched so far (diagnostics; not part of [`CycleReport`]).
    pub fn bursts(&self) -> u64 {
        self.bursts
    }

    /// Total cycles covered by dispatched spans (diagnostics only).
    pub fn burst_cycles(&self) -> u64 {
        self.burst_cycles
    }

    /// The active scheduler mode.
    pub fn scheduler(&self) -> SchedulerMode {
        self.scheduler
    }

    /// Switch scheduler mode. Safe at any point: pending park state is
    /// settled (outstanding stall credit lands on the counters) and
    /// cleared, so every kernel is ticked on the next cycle in either mode.
    /// Any schedule-replay tape is dropped (replay re-arms; its tape
    /// encodes ready-list park state that the switch just settled).
    pub fn set_scheduler(&mut self, scheduler: SchedulerMode) {
        self.scheduler = scheduler;
        self.replay.rearm();
        for i in 0..self.nodes.len() {
            if let Some((verdict, since)) = self.parked[i].take() {
                if verdict == Progress::Stalled {
                    self.nodes[i].stalled += self.now - 1 - since;
                }
            }
        }
        // High bits beyond the node count are harmless: the tick loop stops
        // at `nodes.len()`.
        self.awake.iter_mut().for_each(|w| *w = !0);
    }

    /// Register a stream.
    pub fn add_stream(&mut self, spec: StreamSpec) -> StreamId {
        self.streams.push(StreamState::new(spec));
        self.writers.push(None);
        self.readers.push(None);
        self.stream_flags.push(0);
        StreamId(self.streams.len() - 1)
    }

    /// Committed queue length of a stream (conservation-ledger tests).
    pub fn stream_len(&self, id: StreamId) -> usize {
        self.streams[id.0].queue.len()
    }

    /// Register a kernel with its input and output streams (port order is
    /// the slice order).
    ///
    /// # Panics
    /// Panics if a stream already has a reader/writer.
    pub fn add_kernel(
        &mut self,
        kernel: Box<dyn Kernel>,
        inputs: &[StreamId],
        outputs: &[StreamId],
    ) -> KernelId {
        let id = self.nodes.len();
        for &StreamId(s) in inputs {
            assert!(
                self.readers[s].is_none(),
                "stream '{}' already has a reader",
                self.streams[s].spec.name
            );
            self.readers[s] = Some(id);
        }
        for &StreamId(s) in outputs {
            assert!(
                self.writers[s].is_none(),
                "stream '{}' already has a writer",
                self.streams[s].spec.name
            );
            self.writers[s] = Some(id);
        }
        let (read_lanes, write_lanes) = kernel.lanes();
        assert!(
            read_lanes >= 1 && write_lanes >= 1,
            "kernel '{}' declared a zero-lane stream interface",
            kernel.name()
        );
        if cfg!(debug_assertions) && (read_lanes != 1 || write_lanes != 1) {
            // Folded kernels run per-element: the burst planner's
            // feasibility math assumes one element per cycle per port.
            let zeros = vec![0usize; inputs.len()];
            debug_assert!(
                kernel.span_hint(&zeros).is_none(),
                "folded kernel '{}' must not offer SpanPlans",
                kernel.name()
            );
        }
        self.nodes.push(Node {
            kernel,
            inputs: inputs.iter().map(|s| s.0).collect(),
            outputs: outputs.iter().map(|s| s.0).collect(),
            read_used: vec![0; inputs.len()],
            write_used: vec![0; outputs.len()],
            read_lanes,
            write_lanes,
            busy: 0,
            stalled: 0,
        });
        self.parked.push(None);
        self.part_of.push(u32::MAX);
        if id % 64 == 0 {
            self.awake.push(0);
        }
        self.awake[id / 64] |= 1 << (id % 64);
        KernelId(id)
    }

    /// Number of kernels.
    pub fn num_kernels(&self) -> usize {
        self.nodes.len()
    }

    /// Number of streams.
    pub fn num_streams(&self) -> usize {
        self.streams.len()
    }

    /// Kernel name lookup.
    pub fn kernel_name(&self, id: KernelId) -> &str {
        self.nodes[id.0].kernel.name()
    }

    /// Total FMem bits of all stream FIFOs (for the resource model).
    pub fn total_fmem_bits(&self) -> usize {
        self.streams.iter().map(|s| s.spec.fmem_bits()).sum()
    }

    pub(crate) fn validate(&self) -> Result<(), RunError> {
        for (i, s) in self.streams.iter().enumerate() {
            if self.writers[i].is_none() {
                return Err(RunError::Invalid(format!(
                    "stream '{}' has no writer",
                    s.spec.name
                )));
            }
            if self.readers[i].is_none() {
                return Err(RunError::Invalid(format!(
                    "stream '{}' has no reader",
                    s.spec.name
                )));
            }
        }
        if self.nodes.is_empty() {
            return Err(RunError::Invalid("graph has no kernels".into()));
        }
        Ok(())
    }

    /// True when every sink kernel (no output ports) reports completion.
    pub(crate) fn complete(&self) -> bool {
        self.nodes
            .iter()
            .filter(|n| n.outputs.is_empty())
            .all(|n| n.kernel.is_done())
    }

    /// Execute until every sink completes or `max_cycles` elapse.
    pub fn run(&mut self, max_cycles: u64) -> Result<CycleReport, RunError> {
        self.run_opts(max_cycles, true)
    }

    /// Like [`Graph::run`], with deadlock detection optional.
    ///
    /// The threaded multi-DFE executor disables detection because a graph
    /// legitimately idles while waiting for elements from another device's
    /// clock domain; it yields the thread instead.
    pub fn run_opts(
        &mut self,
        max_cycles: u64,
        detect_deadlock: bool,
    ) -> Result<CycleReport, RunError> {
        self.run_inner(max_cycles, detect_deadlock, 0)
            .map(|(r, _)| r)
    }

    /// Run while sampling stream occupancy and kernel activity every
    /// `sample_every` cycles (see [`Trace`]).
    pub fn run_traced(
        &mut self,
        max_cycles: u64,
        sample_every: u64,
    ) -> Result<(CycleReport, Trace), RunError> {
        assert!(sample_every > 0, "sampling cadence must be positive");
        self.run_inner(max_cycles, true, sample_every)
            .map(|(r, t)| (r, t.expect("tracing was requested")))
    }

    fn run_inner(
        &mut self,
        max_cycles: u64,
        detect_deadlock: bool,
        sample_every: u64,
    ) -> Result<(CycleReport, Option<Trace>), RunError> {
        self.validate()?;
        let mut trace = (sample_every > 0).then(|| {
            Trace::new(
                sample_every,
                self.streams.iter().map(|s| s.spec.name.clone()).collect(),
                self.nodes
                    .iter()
                    .map(|n| n.kernel.name().to_string())
                    .collect(),
            )
        });
        let mut busy_at_last_sample: Vec<u64> = self.nodes.iter().map(|n| n.busy).collect();
        let mut cycle: u64 = 0;
        // `complete()` is re-evaluated only after cycles where a sink ticked
        // `Busy` — the sole event that can flip it (see [`Kernel::is_done`]).
        // Checking it every cycle would cost an O(kernels) scan plus a sink
        // mutex lock per simulated cycle, which dominates shallow cycles.
        // Macro-tick span dispatch is a self-stepped ready-list refinement;
        // traced runs sample per-cycle state and so step per-element.
        let burst_ok = self.macro_ticks
            && self.scheduler == SchedulerMode::ReadyList
            && trace.is_none();
        // Schedule replay (see [`crate::replay`]) rides the same
        // self-stepped ready-list path and needs a marker stream to observe
        // image boundaries; unarmed graphs skip every replay branch.
        let replay_ok = self.replay.enabled
            && self.replay.marker.is_some()
            && self.scheduler == SchedulerMode::ReadyList
            && trace.is_none();
        if !self.complete() {
            loop {
                if cycle >= max_cycles {
                    return Err(RunError::Timeout { max_cycles });
                }
                // Replay tier: execute the validated tape directly. A span
                // step advances the clock wholesale; a dense step falls
                // through to the ordinary stepper below (with the burst
                // planner bypassed — the tape already says this cycle is
                // dense); a guard failure re-arms and steps normally.
                let mut replay_dense = false;
                if replay_ok && matches!(self.replay.phase, ReplayPhase::Replaying { .. }) {
                    match self.try_replay_step(max_cycles - cycle) {
                        ReplayOutcome::Span(k) => {
                            cycle += k;
                            self.replay_boundary();
                            if self.sink_progress && self.complete() {
                                break;
                            }
                            continue;
                        }
                        ReplayOutcome::Dense => replay_dense = true,
                        ReplayOutcome::Fallback => {}
                    }
                }
                let recording = replay_ok && matches!(self.replay.phase, ReplayPhase::Recording);
                if burst_ok && !replay_dense {
                    if recording {
                        // While the tape records, mine aggressively: no
                        // cooldown and a lower span floor. `min_burst` only
                        // sets the admission threshold — the feasibility
                        // scan returns the same large `k` either way — so
                        // this keeps every span the default policy would
                        // dispatch and *additionally* converts the short
                        // residue it leaves to dense stepping into 2–7-cycle
                        // spans, which replay far cheaper than dense cycles.
                        // Burst policy is a pure cost knob (any admitted
                        // burst is an exact fast-forward of dense cycles),
                        // so this changes nothing observable — the planning
                        // cost is paid once here and replayed for free.
                        self.replay.snapshot_mask(&self.awake);
                        if let Ok(k) = self.try_burst(max_cycles - cycle, Self::REPLAY_MIN_BURST) {
                            let within_cap = self.replay.record_span(
                                k,
                                &self.burst_plans,
                                &self.burst_ripen,
                                &self.burst_streams,
                            );
                            if !within_cap {
                                // A period too irregular to record compactly
                                // will not amortize: permanently veto.
                                self.replay.rearm();
                                self.replay.phase = ReplayPhase::Vetoed;
                            }
                            cycle += k;
                            self.replay_boundary();
                            if self.sink_progress && self.complete() {
                                break;
                            }
                            continue;
                        }
                        // Failed attempt: step densely (recorded below).
                    } else if self.burst_cooldown == 0 {
                        match self.try_burst(max_cycles - cycle, Self::MIN_BURST) {
                            Ok(k) => {
                                cycle += k;
                                self.burst_backoff = 1;
                                if replay_ok {
                                    self.replay_boundary();
                                }
                                if self.sink_progress && self.complete() {
                                    break;
                                }
                                continue;
                            }
                            // A phase-bounded veto names the exact dense
                            // stretch to step through; retry right after it
                            // without escalating the blind backoff.
                            Err(hint) if hint > 0 => self.burst_cooldown = hint,
                            Err(_) => {
                                self.burst_cooldown = self.burst_backoff;
                                self.burst_backoff =
                                    (self.burst_backoff * 2).min(Self::BURST_BACKOFF_CAP);
                            }
                        }
                    } else {
                        self.burst_cooldown -= 1;
                    }
                }
                let (any_progress, committed) = self.step_cycle();
                if recording {
                    self.replay.record_dense();
                }
                if !any_progress && !committed {
                    if detect_deadlock {
                        return Err(RunError::Deadlock {
                            cycle,
                            diagnostics: self.dump_streams(),
                        });
                    }
                    // Waiting on another clock domain: let its thread run.
                    std::thread::yield_now();
                }
                cycle += 1;
                if replay_ok {
                    self.replay_boundary();
                }
                if let Some(t) = &mut trace {
                    if cycle % sample_every == 0 {
                        t.occupancy
                            .push(self.streams.iter().map(|s| s.queue.len() as u32).collect());
                        t.busy_delta.push(
                            self.nodes
                                .iter()
                                .zip(&busy_at_last_sample)
                                .map(|(n, &prev)| (n.busy - prev) as u32)
                                .collect(),
                        );
                        for (slot, n) in busy_at_last_sample.iter_mut().zip(&self.nodes) {
                            *slot = n.busy;
                        }
                    }
                }
                if self.sink_progress && self.complete() {
                    break;
                }
            }
        }
        Ok((self.report(cycle), trace))
    }

    /// Advance the graph by one cycle and commit staged stream writes.
    ///
    /// Returns `(any_progress, committed)`: whether any kernel reported
    /// [`Progress::Busy`] and whether any stream element moved from staging
    /// into its FIFO. The lockstep multi-device executor drives this
    /// directly, one call per global clock edge. Dispatches on the active
    /// [`SchedulerMode`]; both variants produce bit-identical stream
    /// contents and counters.
    pub(crate) fn step_cycle(&mut self) -> (bool, bool) {
        match self.scheduler {
            SchedulerMode::Dense => self.step_cycle_dense(),
            SchedulerMode::ReadyList => self.step_cycle_ready(),
        }
    }

    /// Dense stepper: tick every kernel, commit every stream.
    fn step_cycle_dense(&mut self) -> (bool, bool) {
        let mut any_progress = false;
        let mut sink_progress = false;
        for node in &mut self.nodes {
            node.read_used.fill(0);
            node.write_used.fill(0);
            let mut io = Io::new(
                &mut self.streams,
                &node.inputs,
                &node.outputs,
                &mut node.read_used,
                &mut node.write_used,
                node.read_lanes,
                node.write_lanes,
            );
            let prog = node.kernel.tick(&mut io);
            check_progress_contract(node, prog);
            match prog {
                Progress::Busy => {
                    node.busy += 1;
                    any_progress = true;
                    sink_progress |= node.outputs.is_empty();
                }
                Progress::Stalled => node.stalled += 1,
                Progress::Idle => {}
            }
        }
        let mut committed = false;
        for s in &mut self.streams {
            committed |= s.commit() > 0;
        }
        self.sink_progress = sink_progress;
        (any_progress, committed)
    }

    /// Ready-list stepper: skip parked kernels, tick the rest in node
    /// order, commit only streams written this cycle.
    ///
    /// Equivalence to the dense stepper hinges on two points:
    ///
    /// * **Parking is a replay, not an omission.** A kernel parks only if
    ///   its `wake_hint` is [`WakeHint::Parkable`], whose contract makes a
    ///   non-`Busy` tick a fixed point: dense stepping would re-run the
    ///   identical tick every cycle until a stream event, getting the same
    ///   verdict and mutating nothing. So a parked `Stalled` node is
    ///   credited one stall per skipped cycle and a parked `Idle` node
    ///   credits nothing — exactly the counters dense would produce. The
    ///   credit is settled *lazily*: the park records the cycle ordinal and
    ///   the wake (or [`Graph::report`] / [`Graph::set_scheduler`], for
    ///   nodes still parked then) adds the whole span at once, so skipped
    ///   cycles cost nothing — not even a counter increment.
    /// * **Wakes happen at the dense-visible instant.** A reader's pop
    ///   mutates the queue immediately, so the stream's writer is woken
    ///   during the tick phase: a writer *after* the reader in node order
    ///   is ticked the same cycle (dense would see the freed slot this
    ///   cycle), one *before* was already credited and ticks next cycle
    ///   (dense saw the still-full stream this cycle). Staged writes only
    ///   become readable at commit, so readers are woken in the commit
    ///   phase and tick next cycle — the registered-output latency dense
    ///   exhibits.
    fn step_cycle_ready(&mut self) -> (bool, bool) {
        let c = self.now;
        let Self {
            nodes,
            streams,
            writers,
            readers,
            parked,
            awake,
            dirty,
            ..
        } = self;
        let n = nodes.len();
        let mut any_progress = false;
        let mut sink_progress = false;
        dirty.clear();
        let mut i = 0usize;
        while i < n {
            // Advance to the next awake node at or after `i`. The word is
            // re-read live each step, so a mid-cycle wake of a later node
            // (`w > i` pop-wake below) is picked up within the same cycle.
            let rest = awake[i / 64] >> (i % 64);
            if rest == 0 {
                i = (i / 64 + 1) * 64;
                continue;
            }
            i += rest.trailing_zeros() as usize;
            if i >= n {
                break;
            }
            let node = &mut nodes[i];
            node.read_used.fill(0);
            node.write_used.fill(0);
            let mut io = Io::new(
                streams,
                &node.inputs,
                &node.outputs,
                &mut node.read_used,
                &mut node.write_used,
                node.read_lanes,
                node.write_lanes,
            );
            let prog = node.kernel.tick(&mut io);
            check_progress_contract(node, prog);
            match prog {
                Progress::Busy => {
                    node.busy += 1;
                    any_progress = true;
                    sink_progress |= node.outputs.is_empty();
                }
                Progress::Stalled => node.stalled += 1,
                Progress::Idle => {}
            }
            if prog != Progress::Busy && node.kernel.wake_hint() == WakeHint::Parkable {
                parked[i] = Some((prog, c));
                awake[i / 64] &= !(1 << (i % 64));
            }
            for p in 0..nodes[i].read_used.len() {
                if nodes[i].read_used[p] > 0 {
                    // The pop freed a slot; wake the stream's writer. A
                    // writer later in node order (`w > i`) still ticks this
                    // cycle, so its credited span excludes cycle `c`; one
                    // earlier was already skipped this cycle and includes it.
                    if let Some(w) = writers[nodes[i].inputs[p]] {
                        if w != i {
                            if let Some((verdict, since)) = parked[w].take() {
                                awake[w / 64] |= 1 << (w % 64);
                                if verdict == Progress::Stalled {
                                    nodes[w].stalled +=
                                        if w > i { c - since - 1 } else { c - since };
                                }
                            }
                        }
                    }
                }
            }
            for p in 0..nodes[i].write_used.len() {
                if nodes[i].write_used[p] > 0 {
                    dirty.push(nodes[i].outputs[p]);
                }
            }
            i += 1;
        }
        let mut committed = false;
        for &s in dirty.iter() {
            if streams[s].commit() > 0 {
                committed = true;
                // Elements became readable; wake the stream's reader (its
                // credited span includes cycle `c`, which it skipped).
                if let Some(r) = readers[s] {
                    if let Some((verdict, since)) = parked[r].take() {
                        awake[r / 64] |= 1 << (r % 64);
                        if verdict == Progress::Stalled {
                            nodes[r].stalled += c - since;
                        }
                    }
                }
            }
        }
        self.now = c + 1;
        self.sink_progress = sink_progress;
        (any_progress, committed)
    }

    /// Macro-tick span dispatch: attempt to replay a whole span of `k ≥ 2`
    /// cycles in one dispatch per participating kernel, advancing the clock
    /// by `k`. Returns the cycles advanced, or `None` when this cycle must
    /// be stepped per-element.
    ///
    /// A burst replays exactly the cycles the per-element ready-list
    /// stepper would execute, credited arithmetically. Its participants
    /// form a **wavefront**: each takes part from a per-kernel *offset*
    /// `o` — the first burst cycle dense stepping would tick it `Busy` —
    /// and runs the remaining `k − o` cycles uniformly.
    ///
    /// * Every **awake** kernel must offer a [`SpanPlan`] — a contract that
    ///   each of its next ticks reads/writes exactly one element on fixed
    ///   port sets and reports `Busy` whenever those ports are serviceable
    ///   (and is a port-inert fixed point when they are not, per
    ///   [`WakeHint::Parkable`]). One non-promising awake kernel (a
    ///   [`StallInjector`](crate::StallInjector), a shifting delay line, a
    ///   custom kernel) vetoes the burst; that is the per-element fallback.
    ///   Awake kernels participate at offset 0.
    /// * An awake kernel that is **currently blocked** — its plan declares
    ///   a dry read port ([`SpanPlan::blocked`]), or a masked output is
    ///   full with no earlier-ordered participant popping it this cycle
    ///   and the plan is halting ([`SpanPlan::halt`]) — is *demoted*
    ///   rather than vetoing: dense would tick it once (non-`Busy` and
    ///   port-inert), park it, and wake it like any recruit, so the burst
    ///   models exactly that — one blocked tick at the first cycle, a park
    ///   at `now`, and an offset solved by the relaxation pass. This is
    ///   what lets a wavefront advance past stragglers: an adder waiting
    ///   on a convolution mid-absorb, a writer into a full FIFO.
    /// * **Parked** kernels that a burst stream event would wake are
    ///   *recruited* instead of vetoing: a read stream's parked-`Stalled`
    ///   writer (dense wakes it at the first pop) and a written stream's
    ///   parked reader (woken at the first commit). A recruit's offset is
    ///   solved from per-port readiness — an empty input becomes
    ///   serviceable one cycle after its in-burst writer's first push
    ///   (`a + 1`, the registered-output latency), a full output when its
    ///   in-burst reader's pops free a slot (`b + 1`, or `b` when the
    ///   reader runs earlier in node order, freeing the slot within the
    ///   writer's own tick cycle). Offsets relax to a fixpoint; they only
    ///   decrease, so the loop terminates. The skipped cycles
    ///   `[since .. now + o)` settle with exactly the lazy credit
    ///   [`Graph::step_cycle_ready`]'s wakes apply — all three wake paths
    ///   reduce to `stalled += now + o − 1 − since` for a `Stalled` park,
    ///   nothing for `Idle`. Any intermediate wake/re-park oscillation
    ///   dense would perform is counter-invisible by the `Parkable`
    ///   fixed-point contract, so a recruit whose offset lands at or
    ///   beyond `k` simply stays parked, as does one whose plan has no
    ///   cycles to offer. A read stream's parked-**Idle** writer is *not*
    ///   recruited: `Idle` is input-driven (a kernel needing output space
    ///   reports `Stalled`, see [`Progress`]), so pops cannot un-idle it —
    ///   though the same kernel may still be recruited through another of
    ///   its streams.
    /// * **Feasibility** then caps `k` so every promised tick would have
    ///   succeeded under dense interleaving. For one stream with start
    ///   length `L`, capacity `C`, writer pushing from offset `a` and
    ///   reader popping from offset `b` (`∞` when inactive): pops need a
    ///   committed element — first missing at `b + L` when no same-burst
    ///   push lands in time (`a = ∞` or `b + L ≤ a`), at `a` when the
    ///   buffered lead runs out (`b < a` with `L ≤ a − b`), at `b` for the
    ///   rate-matched `a = b` case starting empty. Pushes need headroom at
    ///   the writer's tick — first full at `a + (C − L)` with no in-burst
    ///   pops, at `a` for the rate-matched case starting full (unless the
    ///   reader runs earlier in node order and frees the slot first), and
    ///   for a late reader (`b > a`) the queue plateaus at
    ///   `L + (b − a)` (one less for an earlier-ordered reader), capping
    ///   at `min(b, a + (C − L))` if that plateau would overflow. Finally,
    ///   the burst replays each participant's whole span in node order, so
    ///   a reader *earlier in node order* than its writer can only consume
    ///   the buffered lead: `k ≤ b + L`. A *suppressed opportunistic read*
    ///   ([`SpanPlan::opt_reads`] — a dry port the kernel promises not to
    ///   read while it stays dry) caps the span before the port refills:
    ///   `k ≤ a + 1`. Every cap shortens the burst below
    ///   what dense could overlap — which costs speed, never equivalence.
    ///
    /// Under those caps the dense outcome is exactly: participant `i`
    /// gains `busy += k − o_i` (plus its lazy stall settlement), each
    /// burst stream moves `k − a` pushes and `k − b` pops with its
    /// occupancy peak in closed form ([`StreamState::note_span`]), no
    /// other counter moves, and the clock advances `k`. That arithmetic is
    /// what this method applies; the differential battery
    /// (`tests/macro_tick_equivalence.rs`) holds it to bit-identity.
    /// `min_burst` is the smallest span worth dispatching on this attempt —
    /// [`Graph::MIN_BURST`] normally, [`Graph::REPLAY_MIN_BURST`] while a
    /// schedule-replay tape records (a pure cost knob; see the const docs).
    fn try_burst(&mut self, budget: u64, min_burst: u64) -> Result<u64, u64> {
        if budget < 2 {
            return Err(0);
        }
        let t_now = self.now;
        let Self {
            nodes,
            streams,
            writers,
            readers,
            parked,
            awake,
            burst_plans,
            burst_demoted,
            burst_ripen,
            burst_streams,
            stream_flags,
            part_of,
            ..
        } = self;
        let n = nodes.len();
        let mut k = budget;
        burst_plans.clear();
        burst_demoted.clear();
        burst_ripen.clear();
        burst_streams.clear();

        // On failure, the cycles until the vetoing kernel's current phase
        // ends — the earliest instant the graph can look different — or 0
        // when no such bound is known (caller falls back to exponential
        // backoff).
        let mut retry = 0u64;
        let planned = 'plan: {
            // Phase 1: every awake kernel must promise a span. A kernel
            // that is *currently blocked* — by its own declaration
            // ([`SpanPlan::blocked`], a dry read port) or by a full output
            // no earlier-ordered participant's same-cycle pop will clear
            // ([`SpanPlan::halt`]; only the planner can judge this, it
            // depends on node order) — does not veto: dense would tick it
            // once (non-`Busy`, port-inert by the `Parkable` contract) and
            // park it, so it is *demoted* to a recruit-like participant
            // whose offset the relaxation pass solves. Demoted entries are
            // buffered until the scan ends so `burst_plans[..awake_cnt]`
            // stays exactly the offset-0 set — which is also what the
            // write-block check scans for same-cycle pops.
            let mut i = 0usize;
            while i < n {
                let rest = awake[i / 64] >> (i % 64);
                if rest == 0 {
                    i = (i / 64 + 1) * 64;
                    continue;
                }
                i += rest.trailing_zeros() as usize;
                if i >= n {
                    break;
                }
                let lens = input_lens(streams, &nodes[i]);
                let plan = nodes[i].kernel.span_hint(&lens[..nodes[i].inputs.len()]);
                match plan {
                    Some(plan) if plan.cycles >= 1 => {
                        if let Some(v) = plan.blocked {
                            burst_demoted.push((i, plan, v));
                        } else {
                            let write_blocked = nodes[i].outputs.iter().enumerate().any(
                                |(p, &s)| {
                                    plan.writes & (1 << p) != 0
                                        && streams[s].queue.len() == streams[s].spec.capacity
                                        && !pops_at_start(s, i, readers, part_of, burst_plans, nodes)
                                },
                            );
                            if write_blocked {
                                if plan.halt {
                                    burst_demoted.push((i, plan, Progress::Stalled));
                                } else {
                                    break 'plan false;
                                }
                            } else if plan.cycles >= min_burst {
                                k = k.min(plan.cycles);
                                part_of[i] = burst_plans.len() as u32;
                                burst_plans.push((i, plan, 0, None));
                            } else {
                                // Too short to be worth a burst — but the
                                // phase boundary is exact: after this many
                                // dense cycles the kernel promises afresh.
                                retry = plan.cycles;
                                break 'plan false;
                            }
                        }
                    }
                    _ => {
                        break 'plan false;
                    }
                }
                i += 1;
            }
            let awake_cnt = burst_plans.len();
            if awake_cnt == 0 {
                // All-demoted (or no awake kernels at all): nothing runs at
                // offset 0, so a burst would only advance the clock. Fall
                // back to per-element stepping, which also keeps deadlock
                // detection live.
                break 'plan false;
            }
            for (i, plan, v) in burst_demoted.drain(..) {
                part_of[i] = burst_plans.len() as u32;
                burst_plans.push((i, plan, u64::MAX, Some(v)));
            }
            // Phase 2: flag burst streams, recruit parked neighbours the
            // burst's stream events would wake, and relax recruit offsets
            // to a fixpoint.
            let mut cursor = 0usize;
            loop {
                while cursor < burst_plans.len() {
                    let (i, plan, ..) = burst_plans[cursor];
                    let node = &nodes[i];
                    debug_assert!(
                        node.inputs.len() <= MAX_SPAN_PORTS
                            && node.outputs.len() <= MAX_SPAN_PORTS,
                        "span-capable kernel '{}' has too many ports",
                        node.kernel.name()
                    );
                    for (p, &s) in node.inputs.iter().enumerate() {
                        if plan.reads & (1 << p) != 0 {
                            if stream_flags[s] == 0 {
                                burst_streams.push((s, streams[s].queue.len(), 0, 0));
                            }
                            stream_flags[s] |= BURST_R;
                        }
                    }
                    for (p, &s) in node.outputs.iter().enumerate() {
                        if plan.writes & (1 << p) != 0 {
                            if stream_flags[s] == 0 {
                                burst_streams.push((s, streams[s].queue.len(), 0, 0));
                            }
                            stream_flags[s] |= BURST_W;
                        }
                    }
                    cursor += 1;
                }
                let before = burst_plans.len();
                for &(s, ..) in burst_streams.iter() {
                    let flags = stream_flags[s];
                    if flags & BURST_R != 0 {
                        let w = writers[s].expect("validated");
                        if part_of[w] == u32::MAX {
                            if let Some((Progress::Stalled, _)) = parked[w] {
                                let lens = input_lens(streams, &nodes[w]);
                                match nodes[w].kernel.span_hint(&lens[..nodes[w].inputs.len()]) {
                                    None | Some(SpanPlan { cycles: 0, .. }) => {
                                        break 'plan false;
                                    }
                                    Some(plan) => {
                                        part_of[w] = burst_plans.len() as u32;
                                        burst_plans.push((w, plan, u64::MAX, None));
                                    }
                                }
                            }
                        }
                    }
                    if flags & BURST_W != 0 {
                        let r = readers[s].expect("validated");
                        if part_of[r] == u32::MAX && parked[r].is_some() {
                            let lens = input_lens(streams, &nodes[r]);
                            match nodes[r].kernel.span_hint(&lens[..nodes[r].inputs.len()]) {
                                None | Some(SpanPlan { cycles: 0, .. }) => {
                                    break 'plan false;
                                }
                                Some(plan) => {
                                    part_of[r] = burst_plans.len() as u32;
                                    burst_plans.push((r, plan, u64::MAX, None));
                                }
                            }
                        }
                    }
                }
                if burst_plans.len() > before || cursor < burst_plans.len() {
                    continue;
                }
                let mut changed = false;
                for pi in awake_cnt..burst_plans.len() {
                    let (i, plan, old, _) = burst_plans[pi];
                    let mut o = 0u64;
                    for (p, &s) in nodes[i].inputs.iter().enumerate() {
                        if plan.reads & (1 << p) == 0 {
                            continue;
                        }
                        let ready = if !streams[s].queue.is_empty() {
                            0
                        } else {
                            let w = writers[s].expect("validated");
                            push_offset(s, w, part_of, burst_plans, nodes).saturating_add(1)
                        };
                        o = o.max(ready);
                    }
                    for (p, &s) in nodes[i].outputs.iter().enumerate() {
                        if plan.writes & (1 << p) == 0 {
                            continue;
                        }
                        let st = &streams[s];
                        let ready = if st.queue.len() < st.spec.capacity {
                            0
                        } else {
                            let r = readers[s].expect("validated");
                            let b = pop_offset(s, r, part_of, burst_plans, nodes);
                            if r < i {
                                b
                            } else {
                                b.saturating_add(1)
                            }
                        };
                        o = o.max(ready);
                    }
                    if o < old {
                        burst_plans[pi].2 = o;
                        changed = true;
                    }
                }
                if !changed {
                    break;
                }
            }
            // Phase 3: cap `k` so every promised tick would have succeeded.
            for &(_, plan, o, _) in burst_plans.iter() {
                k = k.min(o.saturating_add(plan.cycles));
            }
            for &(s, len, _, _) in burst_streams.iter() {
                let st = &streams[s];
                debug_assert!(st.staged.is_empty(), "staged writes between cycles");
                let l = len as u64;
                let cap = st.spec.capacity as u64;
                let w = writers[s].expect("validated");
                let r = readers[s].expect("validated");
                let a = push_offset(s, w, part_of, burst_plans, nodes);
                let b = pop_offset(s, r, part_of, burst_plans, nodes);
                // Pops at [b, k) must find a committed element.
                if b != u64::MAX {
                    if a == u64::MAX {
                        k = k.min(b.saturating_add(l));
                    } else if a > b {
                        if l > a - b {
                            // The buffered lead outlasts the push delay.
                        } else if b.saturating_add(l) <= a {
                            k = k.min(b.saturating_add(l));
                        } else {
                            k = k.min(a);
                        }
                    } else if a == b && l == 0 {
                        k = k.min(b);
                    }
                }
                // Pushes at [a, k) must find headroom at the writer's tick
                // (a pop by an earlier-ordered reader lands first).
                if a != u64::MAX {
                    let rb = b != u64::MAX && r < w;
                    if b == u64::MAX {
                        k = k.min(a.saturating_add(cap - l));
                    } else if b > a {
                        let plateau = l + (b - a) - rb as u64;
                        if plateau > cap - 1 {
                            k = k.min(b.min(a.saturating_add(cap - l)));
                        }
                    } else if b == a && !rb && l == cap {
                        k = k.min(a);
                    }
                }
                // The burst replays whole spans in node order, so a reader
                // earlier than its writer sees none of this burst's pushes.
                if a != u64::MAX && b != u64::MAX && r < w {
                    k = k.min(b.saturating_add(l));
                }
            }
            // A suppressed opportunistic read ([`SpanPlan::opt_reads`]) is
            // a promise that the port *stays* empty: an in-burst push at
            // writer offset `a` commits end-of-cycle `a` and turns readable
            // at `a + 1`, where dense stepping would resume the read, so
            // the span must end first (`k ≤ a + 1`). With no in-burst
            // writer the port cannot refill and the promise holds for any
            // `k`. A recruit holding such a promise needs no extra care:
            // its premise must hold from its offset `o`, and this cap
            // forces `o ≥ a + 1 ≥ k` whenever data would land first, which
            // keeps it from running at all.
            for &(i, plan, ..) in burst_plans.iter() {
                if plan.opt_reads == 0 {
                    continue;
                }
                for (p, &s) in nodes[i].inputs.iter().enumerate() {
                    if plan.opt_reads & (1 << p) == 0 {
                        continue;
                    }
                    debug_assert!(
                        streams[s].queue.is_empty(),
                        "opt_reads promised on non-empty stream '{}'",
                        streams[s].spec.name
                    );
                    let a =
                        push_offset(s, writers[s].expect("validated"), part_of, burst_plans, nodes);
                    if a != u64::MAX {
                        k = k.min(a + 1);
                    }
                }
            }
            if k < min_burst {
                // Stream-capped: the binding queue state clears (or the
                // verdict changes) only after the capped span elapses.
                retry = k.max(1);
                break 'plan false;
            }
            // Admission: inside the span, dense wakes a parked (or
            // demoted — its modelled park starts at the burst's first
            // cycle) kernel at every event on its streams and re-ticks it.
            // Those replayed ticks are accounted for only if they are
            // *verdict-stable* (each re-tick re-reports the parked verdict,
            // so the lazy credit telescopes) — true for a `Stalled` park
            // whose masked inputs all hold data (inputs only grow and the
            // offset-driving output stays blocked until `o`, so every
            // pre-offset tick re-stalls), or whose plan declares
            // [`SpanPlan::blocked`]`(Stalled)` (port-inert `Stalled` until
            // every masked port is serviceable, i.e. until the offset, by
            // that declaration's contract) — or if no event ticks it
            // strictly before its offset at all (the first tick is the
            // `Busy` one). One more trajectory is closed-form: a
            // participant declaring [`SpanPlan::blocked`]`(Idle)` (all
            // masked inputs dry; by that contract the tick flips to a
            // port-inert `Stalled` fixed point once *any* masked input
            // holds data, until every masked port is serviceable). Its
            // dense trajectory is `Idle` until the first masked-input
            // arrival `f`, `Stalled` on `[f, o)`, then `Busy` — one
            // explicit stall at `f` plus a lazy span whose credits
            // telescope, recorded in `burst_ripen` for the dispatch loop.
            // Anything else (an `Idle` park with no declared contract)
            // vetoes the burst.
            for pi in awake_cnt..burst_plans.len() {
                let (i, plan, o, demoted) = burst_plans[pi];
                let verdict = match demoted {
                    Some(v) => v,
                    None => parked[i].expect("recruits are parked").0,
                };
                let stable = verdict == Progress::Stalled
                    && (plan.blocked == Some(Progress::Stalled)
                        || nodes[i].inputs.iter().enumerate().all(|(p, &s)| {
                            plan.reads & (1 << p) == 0 || !streams[s].queue.is_empty()
                        }));
                if stable {
                    continue;
                }
                if verdict == Progress::Idle && plan.blocked == Some(Progress::Idle) {
                    let mut f = u64::MAX;
                    for (p, &s) in nodes[i].inputs.iter().enumerate() {
                        if plan.reads & (1 << p) == 0 {
                            continue;
                        }
                        debug_assert!(
                            streams[s].queue.is_empty(),
                            "blocked(Idle) declared with data on '{}'",
                            streams[s].spec.name
                        );
                        let a = push_offset(
                            s,
                            writers[s].expect("validated"),
                            part_of,
                            burst_plans,
                            nodes,
                        );
                        f = f.min(a.saturating_add(1));
                    }
                    if f < o.min(k) {
                        burst_ripen.push((i, f));
                    }
                    continue;
                }
                let mut first_tick = u64::MAX;
                for &s in nodes[i].inputs.iter() {
                    let a =
                        push_offset(s, writers[s].expect("validated"), part_of, burst_plans, nodes);
                    first_tick = first_tick.min(a.saturating_add(1));
                }
                for &s in nodes[i].outputs.iter() {
                    let r = readers[s].expect("validated");
                    let b = pop_offset(s, r, part_of, burst_plans, nodes);
                    first_tick = first_tick.min(if i > r { b } else { b.saturating_add(1) });
                }
                if first_tick < o.min(k) {
                    break 'plan false;
                }
            }
            // A recruit or demoted kernel that never runs (`o ≥ k`) must
            // still end the burst
            // in the park state dense would leave it in: awake when a
            // last-cycle event wakes it for the cycle after the burst — a
            // commit from a writer pushing through `k − 1`, or a pop by a
            // later-ordered reader (an *earlier*-ordered reader's pop wakes
            // it within cycle `k − 1`, where it re-parks). Encode the
            // decision in the offset: `k` wakes at burst end, `MAX` stays
            // parked.
            for pi in awake_cnt..burst_plans.len() {
                let (i, _, o, _) = burst_plans[pi];
                if o < k {
                    continue;
                }
                let end_awake = nodes[i].inputs.iter().any(|&s| {
                    push_offset(s, writers[s].expect("validated"), part_of, burst_plans, nodes) < k
                }) || nodes[i].outputs.iter().any(|&s| {
                    let r = readers[s].expect("validated");
                    i < r && pop_offset(s, r, part_of, burst_plans, nodes) < k
                });
                burst_plans[pi].2 = if end_awake { k } else { u64::MAX };
            }
            // Record each stream's span traffic against the final `k`.
            for bs in burst_streams.iter_mut() {
                let s = bs.0;
                let a = push_offset(s, writers[s].expect("validated"), part_of, burst_plans, nodes);
                let b = pop_offset(s, readers[s].expect("validated"), part_of, burst_plans, nodes);
                bs.2 = k.saturating_sub(a);
                bs.3 = k.saturating_sub(b);
            }
            true
        };
        if !planned {
            for &(s, ..) in burst_streams.iter() {
                stream_flags[s] = 0;
            }
            for &(i, ..) in burst_plans.iter() {
                part_of[i] = u32::MAX;
            }
            return Err(retry);
        }
        // Phases 4+5 (dispatch + occupancy credit) are shared with schedule
        // replay: `dispatch_span` re-executes exactly this plan set, so a
        // recorded burst replays through the identical code path.
        burst_plans.sort_unstable_by_key(|&(i, ..)| i);
        for &(i, ..) in burst_plans.iter() {
            part_of[i] = u32::MAX;
        }
        let sink_progress = dispatch_span(
            nodes,
            streams,
            parked,
            awake,
            burst_plans,
            burst_ripen,
            burst_streams,
            t_now,
            k,
        );
        for &(s, ..) in burst_streams.iter() {
            stream_flags[s] = 0;
        }
        self.now += k;
        self.sink_progress = sink_progress;
        self.bursts += 1;
        self.burst_cycles += k;
        Ok(k)
    }

    /// Execute the replay-tape step under the cursor (see
    /// [`crate::replay`]). Span steps re-check their guards — the live
    /// awake mask and every recorded stream's queue length must equal the
    /// recorded pre-dispatch state — and then re-dispatch the recorded plan
    /// set through [`dispatch_span`], the same code path a planned burst
    /// takes. Any guard failure re-arms replay and reports
    /// [`ReplayOutcome::Fallback`]; the caller steps the cycle normally.
    fn try_replay_step(&mut self, budget: u64) -> ReplayOutcome {
        let ReplayPhase::Replaying { step, done } = self.replay.phase else {
            return ReplayOutcome::Fallback;
        };
        let Some(&tape_step) = self.replay.tape.steps.get(step) else {
            // Cursor ran past the tape without a period boundary: the run
            // diverged from the recorded schedule.
            return self.replay_guard_fallback();
        };
        match tape_step {
            Step::Dense(n) => {
                let done = done + 1;
                self.replay.phase = if done >= n {
                    ReplayPhase::Replaying {
                        step: step + 1,
                        done: 0,
                    }
                } else {
                    ReplayPhase::Replaying { step, done }
                };
                ReplayOutcome::Dense
            }
            Step::Span(ix) => {
                let t_now = self.now;
                let Self {
                    nodes,
                    streams: live_streams,
                    parked,
                    awake,
                    replay,
                    ..
                } = self;
                let tape = &replay.tape;
                let rec = tape.span_recs[ix as usize];
                // A replayed span must not overrun the run's cycle budget —
                // dense stepping would time out mid-span, and the timeout
                // arithmetic must match it exactly.
                if rec.k > budget
                    || tape.mask(&rec) != &awake[..]
                    || tape
                        .streams(&rec)
                        .iter()
                        .any(|&(s, start_len, ..)| live_streams[s].queue.len() != start_len)
                {
                    return self.replay_guard_fallback();
                }
                // Guards passed: re-dispatch the recorded pool windows
                // directly — no per-step gathering, and consecutive steps
                // read consecutive pool ranges. The plan set was admitted
                // by the planner against this exact scheduler-visible state
                // (same awake set, same queue lengths, same kernel control
                // state per the boundary fingerprint), so the dispatch is
                // the same fast-forward of dense cycles it was originally.
                let k = rec.k;
                let sink_progress = dispatch_span(
                    nodes,
                    live_streams,
                    parked,
                    awake,
                    tape.plans(&rec),
                    tape.ripen(&rec),
                    tape.streams(&rec),
                    t_now,
                    k,
                );
                self.now += k;
                self.sink_progress = sink_progress;
                self.bursts += 1;
                self.burst_cycles += k;
                self.replay.diag.spans_bypassed += 1;
                self.replay.phase = ReplayPhase::Replaying {
                    step: step + 1,
                    done: 0,
                };
                ReplayOutcome::Span(k)
            }
        }
    }

    /// A replay guard failed: count it and re-arm (normal stepping resumes
    /// and steady state is re-detected from scratch).
    fn replay_guard_fallback(&mut self) -> ReplayOutcome {
        self.replay.diag.guard_fallbacks += 1;
        self.replay.rearm();
        ReplayOutcome::Fallback
    }

    /// Check for a period boundary on the marker stream and drive the
    /// replay state machine (see [`crate::replay`]'s protocol docs). Called
    /// after every clock advance of a replay-eligible run; cheap until the
    /// marker's popped count crosses the next period multiple.
    fn replay_boundary(&mut self) {
        if matches!(self.replay.phase, ReplayPhase::Vetoed) {
            return;
        }
        let Some((m, period)) = self.replay.marker else {
            return;
        };
        let st = &self.streams[m];
        let popped = st.pushed - st.total_len() as u64;
        if popped < self.replay.next_target {
            return;
        }
        // One state-machine event per detection even if a span crossed
        // several period multiples at once (the tape period then covers
        // several images — still a valid periodic unit).
        while self.replay.next_target <= popped {
            self.replay.next_target += period;
        }
        if !self.compute_fingerprint() {
            // A kernel without a replay token: permanently off.
            self.replay.rearm();
            self.replay.phase = ReplayPhase::Vetoed;
            return;
        }
        let fp_matches = self.replay.fp_scratch == self.replay.prev_fp;
        // Boundary tracing (QNN_REPLAY_DEBUG=1): which fingerprint slots
        // moved between periods — the first question when a stream that
        // should replay never leaves `Armed`.
        static DEBUG: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
        if *DEBUG.get_or_init(|| std::env::var("QNN_REPLAY_DEBUG").is_ok()) {
            let diff: Vec<usize> = (0..self.replay.fp_scratch.len().max(self.replay.prev_fp.len()))
                .filter(|&i| self.replay.fp_scratch.get(i) != self.replay.prev_fp.get(i))
                .collect();
            eprintln!(
                "replay boundary popped={} phase={:?} match={} diff_idx={:?}",
                popped,
                self.replay.phase,
                fp_matches,
                &diff[..diff.len().min(20)]
            );
        }
        match self.replay.phase {
            ReplayPhase::Vetoed => {}
            ReplayPhase::Armed { have_prev } => {
                if have_prev && fp_matches {
                    // Steady state: the machine state at this boundary
                    // recurs. Record the next period's schedule.
                    self.replay.tape.clear();
                    self.replay.pending_dense = 0;
                    self.replay.phase = ReplayPhase::Recording;
                } else {
                    std::mem::swap(&mut self.replay.prev_fp, &mut self.replay.fp_scratch);
                    self.replay.phase = ReplayPhase::Armed { have_prev: true };
                }
            }
            ReplayPhase::Recording => {
                self.replay.flush_dense();
                if fp_matches && !self.replay.tape.steps.is_empty() {
                    // The recorded period closed on the same fingerprint:
                    // the tape is a valid periodic unit. Replay it.
                    self.replay.diag.tape_len = self.replay.tape.steps.len() as u64;
                    self.replay.phase = ReplayPhase::Replaying { step: 0, done: 0 };
                } else {
                    // Diverged mid-recording (e.g. ramp not actually
                    // settled): drop the tape, keep watching.
                    self.replay.tape.clear();
                    std::mem::swap(&mut self.replay.prev_fp, &mut self.replay.fp_scratch);
                    self.replay.phase = ReplayPhase::Armed { have_prev: true };
                }
            }
            ReplayPhase::Replaying { step, done } => {
                // Every replayed period re-checks the fingerprint — this is
                // the macro guard that catches the non-periodic tail (the
                // source entering its final-period drain fingerprints
                // differently by construction, see `host::drain_token`).
                let at_end = step == self.replay.tape.steps.len() && done == 0;
                if at_end && fp_matches {
                    self.replay.diag.images_replayed += 1;
                    self.replay.phase = ReplayPhase::Replaying { step: 0, done: 0 };
                } else {
                    self.replay.diag.guard_fallbacks += 1;
                    self.replay.rearm();
                }
            }
        }
    }

    /// Fill `replay.fp_scratch` with the boundary fingerprint: every
    /// kernel's replay token and park verdict, then every stream's
    /// committed queue length. Park *instants* are excluded — the
    /// fingerprint must be invariant under time shift, that is the whole
    /// point. Returns `false` when a kernel has no token (replay must be
    /// vetoed: its control state cannot be attested).
    fn compute_fingerprint(&mut self) -> bool {
        let Self {
            nodes,
            streams,
            parked,
            replay,
            ..
        } = self;
        let fp = &mut replay.fp_scratch;
        fp.clear();
        for (i, n) in nodes.iter().enumerate() {
            let Some(token) = n.kernel.replay_token() else {
                return false;
            };
            fp.push(token);
            fp.push(match parked[i] {
                None => 0,
                Some((Progress::Busy, _)) => 1,
                Some((Progress::Stalled, _)) => 2,
                Some((Progress::Idle, _)) => 3,
            });
        }
        for s in streams.iter() {
            fp.push(s.queue.len() as u64);
        }
        true
    }

    /// Outstanding lazy stall credit for node `i`: cycles skipped while
    /// parked `Stalled` that no wake has settled yet (report-time view).
    fn pending_stall_credit(&self, i: usize) -> u64 {
        match self.parked[i] {
            Some((Progress::Stalled, since)) => self.now - 1 - since,
            _ => 0,
        }
    }

    pub(crate) fn report(&self, cycles: u64) -> CycleReport {
        CycleReport {
            cycles,
            replay: self.replay.diag,
            kernels: self
                .nodes
                .iter()
                .enumerate()
                .map(|(i, n)| KernelStats {
                    name: n.kernel.name().to_string(),
                    busy: n.busy,
                    stalled: n.stalled + self.pending_stall_credit(i),
                })
                .collect(),
            streams: self
                .streams
                .iter()
                .map(|s| StreamStats {
                    name: s.spec.name.clone(),
                    pushed: s.pushed,
                    max_occupancy: s.max_occupancy,
                    capacity: s.spec.capacity,
                })
                .collect(),
        }
    }

    /// Ready-list park state for kernel `id`: the last non-`Busy` verdict
    /// while parked, `None` while schedulable. Exposed for tests.
    pub fn parked_state(&self, id: KernelId) -> Option<Progress> {
        self.parked[id.0].map(|(p, _)| p)
    }

    /// Whether the last `step_cycle` saw a sink kernel tick `Busy` — the
    /// only event after which [`Graph::complete`] can newly hold, so the
    /// lockstep executor gates its completion re-check on this.
    pub(crate) fn made_sink_progress(&self) -> bool {
        self.sink_progress
    }

    pub(crate) fn dump_streams(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (i, s) in self.streams.iter().enumerate() {
            let _ = writeln!(
                out,
                "  stream {:3} '{}': {}/{} occupied, writer={:?} reader={:?}",
                i,
                s.spec.name,
                s.queue.len(),
                s.spec.capacity,
                self.writers[i].map(|k| self.nodes[k].kernel.name()),
                self.readers[i].map(|k| self.nodes[k].kernel.name()),
            );
        }
        out
    }
}

/// Execute an admitted span plan set: dispatch participants in node order
/// from their offsets (demotion ticks, ripening, lazy-credit settlement,
/// `run_span` calls), then credit stream occupancy peaks in closed form.
/// Returns whether a sink kernel ran.
///
/// Shared by [`Graph::try_burst`] (which just planned `plans`) and
/// [`Graph::try_replay_step`] (which recorded them on a schedule-replay
/// tape) — replayed spans go through the identical mutation path as planned
/// ones, which is what keeps them bit-identical. `plans` must be sorted by
/// node index with offsets finalized, and `ripen`/`span_streams` must be
/// the matching scratch the planner produced.
#[allow(clippy::too_many_arguments)]
fn dispatch_span(
    nodes: &mut [Node],
    streams: &mut [StreamState],
    parked: &mut [Option<(Progress, u64)>],
    awake: &mut [u64],
    plans: &[(usize, SpanPlan, u64, Option<Progress>)],
    ripen: &[(usize, u64)],
    span_streams: &[(usize, usize, u64, u64)],
    t_now: u64,
    k: u64,
) -> bool {
    let mut sink_progress = false;
    for &(i, ref plan, o, demoted) in plans.iter() {
        if let Some(v) = demoted {
            // Replay dense's first burst cycle for a demoted kernel:
            // one blocked, port-inert tick (counted here) and a park at
            // `t_now`. The shared paths below then treat it exactly
            // like a recruit — wake at its offset with the lazy credit
            // settled, run any busy span, or stay parked.
            if v == Progress::Stalled {
                nodes[i].stalled += 1;
            }
            awake[i / 64] &= !(1 << (i % 64));
            parked[i] = Some((v, t_now));
        }
        if let Some(&(_, f)) = (!ripen.is_empty())
            .then(|| ripen.iter().find(|&&(j, _)| j == i))
            .flatten()
        {
            // An `Idle` park ripens: the first in-burst arrival on a
            // masked input flips the fixed point to `Stalled` — dense
            // ticks it `Stalled` once at `f` and re-parks there; later
            // re-wakes telescope into the lazy credit settled below
            // (at the run offset, or at burst end via `o == k`).
            nodes[i].stalled += 1;
            parked[i] = Some((Progress::Stalled, t_now + f));
        }
        if o >= k {
            if o == k {
                // Dense's last-cycle event leaves this recruit awake
                // entering the next cycle without ever running it;
                // settle its lazy credit at the wake instant.
                if let Some((verdict, since)) = parked[i].take() {
                    awake[i / 64] |= 1 << (i % 64);
                    if verdict == Progress::Stalled {
                        nodes[i].stalled += t_now + k - 1 - since;
                    }
                }
            }
            // Otherwise dense would only wake-and-repark it inside the
            // span; staying parked is counter-invisible (lazy credit).
            continue;
        }
        let span = k - o;
        if let Some((verdict, since)) = parked[i].take() {
            awake[i / 64] |= 1 << (i % 64);
            if verdict == Progress::Stalled {
                nodes[i].stalled += t_now + o - 1 - since;
            }
        }
        let node = &mut nodes[i];
        let mut sio = SpanIo::new(streams, &node.inputs, &node.outputs, plan.opt_reads);
        node.kernel.run_span(&mut sio, span);
        #[cfg(debug_assertions)]
        {
            let (reads, writes) = sio.counts();
            for (p, &got) in reads.iter().enumerate().take(node.inputs.len()) {
                let want = if plan.reads & (1 << p) != 0 { span } else { 0 };
                assert_eq!(
                    got,
                    want,
                    "kernel '{}' popped {got} from port {p}, promised {want} (SpanPlan contract)",
                    node.kernel.name()
                );
            }
            for (p, &got) in writes.iter().enumerate().take(node.outputs.len()) {
                let want = if plan.writes & (1 << p) != 0 { span } else { 0 };
                assert_eq!(
                    got,
                    want,
                    "kernel '{}' pushed {got} to port {p}, promised {want} (SpanPlan contract)",
                    node.kernel.name()
                );
            }
        }
        node.busy += span;
        sink_progress |= node.outputs.is_empty();
    }
    for &(s, start_len, pushes, pops) in span_streams.iter() {
        streams[s].note_span(start_len, pushes, pops);
    }
    sink_progress
}

/// Committed input-queue lengths of `node`'s ports, for
/// [`Kernel::span_hint`]'s availability argument. Fixed-size so the planner
/// hot path never allocates; callers slice to `node.inputs.len()`.
/// Does an already-admitted offset-0 participant earlier in node order than
/// `w` pop stream `s` at the burst's first cycle? Pops are immediate, so
/// such a pop frees a slot within `w`'s own tick cycle — the one case where
/// a full output is *not* write-blocking. Only valid during the phase-1
/// ascending scan, where `burst_plans` holds exactly the offset-0
/// participants decided so far (all with node index < the node under
/// decision).
fn pops_at_start(
    s: usize,
    w: usize,
    readers: &[Option<usize>],
    part_of: &[u32],
    burst_plans: &[(usize, SpanPlan, u64, Option<Progress>)],
    nodes: &[Node],
) -> bool {
    let Some(r) = readers[s] else { return false };
    if r >= w || part_of[r] == u32::MAX {
        return false;
    }
    let (_, plan, _, _) = burst_plans[part_of[r] as usize];
    let port = nodes[r]
        .inputs
        .iter()
        .position(|&x| x == s)
        .expect("stream's reader lacks a port for it");
    plan.reads & (1 << port) != 0
}

fn input_lens(streams: &[StreamState], node: &Node) -> [usize; MAX_SPAN_PORTS] {
    let mut lens = [0; MAX_SPAN_PORTS];
    for (p, &s) in node.inputs.iter().enumerate() {
        lens[p] = streams[s].queue.len();
    }
    lens
}

/// First burst cycle at which node `w` pushes to stream `s`: the offset of
/// `w`'s burst participation, or `u64::MAX` when `w` is not a participant
/// or its [`SpanPlan`] does not write `s`. Helper for [`Graph::try_burst`].
fn push_offset(
    s: usize,
    w: usize,
    part_of: &[u32],
    burst_plans: &[(usize, SpanPlan, u64, Option<Progress>)],
    nodes: &[Node],
) -> u64 {
    match part_of[w] {
        u32::MAX => u64::MAX,
        wp => {
            let (_, plan, o, _) = burst_plans[wp as usize];
            let port = nodes[w]
                .outputs
                .iter()
                .position(|&x| x == s)
                .expect("stream's writer lacks a port for it");
            if plan.writes & (1 << port) != 0 {
                o
            } else {
                u64::MAX
            }
        }
    }
}

/// First burst cycle at which node `r` pops from stream `s` (see
/// [`push_offset`]).
fn pop_offset(
    s: usize,
    r: usize,
    part_of: &[u32],
    burst_plans: &[(usize, SpanPlan, u64, Option<Progress>)],
    nodes: &[Node],
) -> u64 {
    match part_of[r] {
        u32::MAX => u64::MAX,
        rp => {
            let (_, plan, o, _) = burst_plans[rp as usize];
            let port = nodes[r]
                .inputs
                .iter()
                .position(|&x| x == s)
                .expect("stream's reader lacks a port for it");
            if plan.reads & (1 << port) != 0 {
                o
            } else {
                u64::MAX
            }
        }
    }
}

/// Debug-mode `Progress` contract check, applied by both steppers after
/// every tick:
///
/// * `Idle` must not have touched any port — an idle kernel that read or
///   wrote did observable work and must report `Busy` (this is also what
///   makes `Idle` parking sound).
/// * A [`WakeHint::Parkable`] kernel returning `Stalled` must not have
///   touched any port either: the ready-list scheduler replays the stall
///   verdict without re-running the tick, which is only valid if the
///   stalled tick was port-inert.
///
/// Compiled out in release builds (`cargo test` runs debug, so the tier-1
/// suite exercises it on every kernel in the workspace).
fn check_progress_contract(node: &Node, prog: Progress) {
    if cfg!(debug_assertions) && prog != Progress::Busy {
        let touched =
            node.read_used.iter().any(|&n| n > 0) || node.write_used.iter().any(|&n| n > 0);
        match prog {
            Progress::Idle => assert!(
                !touched,
                "kernel '{}' returned Idle after touching a port (Progress contract)",
                node.kernel.name()
            ),
            Progress::Stalled if node.kernel.wake_hint() == WakeHint::Parkable => assert!(
                !touched,
                "parkable kernel '{}' returned Stalled after touching a port \
                 (WakeHint::Parkable fixed-point contract)",
                node.kernel.name()
            ),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::{HostSink, HostSource};
    use crate::kernel::Progress;

    /// A pass-through kernel that adds a constant, one element per cycle.
    struct AddConst {
        c: i32,
    }
    impl Kernel for AddConst {
        fn name(&self) -> &str {
            "add-const"
        }
        fn tick(&mut self, io: &mut Io<'_>) -> Progress {
            if io.can_read(0) && io.can_write(0) {
                let v = io.read(0).expect("checked");
                io.write(0, v + self.c);
                Progress::Busy
            } else if io.can_read(0) || io.num_inputs() == 0 {
                Progress::Stalled
            } else {
                Progress::Idle
            }
        }
    }

    fn pipeline(data: Vec<i32>, stages: usize) -> (Graph, crate::host::SinkHandle) {
        let n = data.len();
        let mut g = Graph::new();
        let mut prev = g.add_stream(StreamSpec::new("s0", 8, 4));
        g.add_kernel(Box::new(HostSource::new("src", data)), &[], &[prev]);
        for i in 0..stages {
            let next = g.add_stream(StreamSpec::new(format!("s{}", i + 1), 8, 4));
            g.add_kernel(Box::new(AddConst { c: 1 }), &[prev], &[next]);
            prev = next;
        }
        let (sink, handle) = HostSink::new("dst", n);
        g.add_kernel(Box::new(sink), &[prev], &[]);
        (g, handle)
    }

    #[test]
    fn pipeline_computes_and_counts_cycles() {
        let (mut g, handle) = pipeline(vec![10, 20, 30], 2);
        let report = g.run(1000).expect("run ok");
        assert_eq!(handle.take(), vec![12, 22, 32]);
        // 3 elements through a 4-stage pipeline (src + 2 adders + sink):
        // latency ≈ depth + n; must be far below the serial bound yet > n.
        assert!(
            report.cycles >= 5 && report.cycles <= 20,
            "cycles = {}",
            report.cycles
        );
    }

    #[test]
    fn registered_outputs_cost_one_cycle_per_stage() {
        // A single element through k stages must take ≥ k+1 cycles.
        let (mut g, _h) = pipeline(vec![1], 5);
        let report = g.run(100).expect("run ok");
        assert!(
            report.cycles >= 6,
            "combinational ripple detected: {}",
            report.cycles
        );
    }

    #[test]
    fn throughput_is_one_element_per_cycle() {
        let n = 100;
        let (mut g, handle) = pipeline((0..n).collect(), 1);
        let report = g.run(10_000).expect("run ok");
        assert_eq!(handle.take().len(), n as usize);
        // Fully pipelined: cycles ≈ n + small latency.
        assert!(report.cycles < n as u64 + 10, "cycles = {}", report.cycles);
    }

    #[test]
    fn unconnected_stream_is_invalid() {
        let mut g = Graph::new();
        let s = g.add_stream(StreamSpec::new("dangling", 2, 4));
        g.add_kernel(Box::new(HostSource::new("src", vec![1])), &[], &[s]);
        match g.run(10) {
            Err(RunError::Invalid(msg)) => assert!(msg.contains("no reader")),
            other => panic!("expected Invalid, got {other:?}"),
        }
    }

    #[test]
    fn starved_sink_deadlocks_with_diagnostics() {
        // Sink expects 2 elements but the source provides 1.
        let mut g = Graph::new();
        let s = g.add_stream(StreamSpec::new("s", 8, 4));
        g.add_kernel(Box::new(HostSource::new("src", vec![7])), &[], &[s]);
        let (sink, _h) = HostSink::new("dst", 2);
        g.add_kernel(Box::new(sink), &[s], &[]);
        match g.run(1000) {
            Err(RunError::Deadlock { diagnostics, .. }) => {
                assert!(diagnostics.contains("'s'"));
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn timeout_is_reported() {
        let (mut g, _h) = pipeline(vec![1, 2, 3], 2);
        match g.run(2) {
            Err(RunError::Timeout { max_cycles: 2 }) => {}
            other => panic!("expected timeout, got {other:?}"),
        }
    }

    #[test]
    fn stats_account_busy_and_stalls() {
        let (mut g, _h) = pipeline((0..10).collect(), 1);
        let report = g.run(1000).expect("run ok");
        let adder = &report.kernels[1];
        assert_eq!(adder.name, "add-const");
        assert_eq!(adder.busy, 10, "one busy cycle per element");
        let src_stream = &report.streams[0];
        assert_eq!(src_stream.pushed, 10);
        assert!(src_stream.max_occupancy <= src_stream.capacity);
    }

    #[test]
    fn ready_list_matches_dense_on_pipeline() {
        let run_mode = |mode| {
            let (mut g, handle) = pipeline((0..25).collect(), 3);
            g.set_scheduler(mode);
            let report = g.run(10_000).expect("run ok");
            (handle.take(), report)
        };
        assert_eq!(
            run_mode(SchedulerMode::Dense),
            run_mode(SchedulerMode::ReadyList)
        );
    }

    /// A sink that ignores its input for `wait` cycles, then drains one
    /// element per cycle. The idle-wait is a timer (internal state advances
    /// with no port activity), so it correctly keeps the default
    /// `WakeHint::AlwaysTick` — parking it would sleep forever.
    struct LazySink {
        wait: u64,
        expect: usize,
        got: usize,
    }
    impl Kernel for LazySink {
        fn name(&self) -> &str {
            "lazy-dst"
        }
        fn tick(&mut self, io: &mut Io<'_>) -> Progress {
            if self.wait > 0 {
                self.wait -= 1;
                return Progress::Idle;
            }
            if self.got >= self.expect {
                return Progress::Idle;
            }
            match io.read(0) {
                Some(_) => {
                    self.got += 1;
                    Progress::Busy
                }
                None => Progress::Stalled,
            }
        }
        fn is_done(&self) -> bool {
            self.got >= self.expect
        }
    }

    /// Regression for `max_occupancy` accounting (sampled after commit):
    /// a two-kernel graph whose FIFO fills to capacity while the sink is
    /// lazy must pin identical occupancy stats in both scheduler modes.
    #[test]
    fn full_fifo_occupancy_stats_pinned_in_both_modes() {
        let run_mode = |mode| {
            let mut g = Graph::with_scheduler(mode);
            let s = g.add_stream(StreamSpec::new("s", 8, 2));
            g.add_kernel(
                Box::new(HostSource::new("src", (1..=6).collect())),
                &[],
                &[s],
            );
            g.add_kernel(
                Box::new(LazySink {
                    wait: 5,
                    expect: 6,
                    got: 0,
                }),
                &[s],
                &[],
            );
            // The lazy phase has legitimate full no-progress cycles, so
            // deadlock detection is off (identically in both modes).
            g.run_opts(1000, false).expect("run ok")
        };
        let dense = run_mode(SchedulerMode::Dense);
        let ready = run_mode(SchedulerMode::ReadyList);
        assert_eq!(dense, ready, "reports must be bit-identical");
        let s = &dense.streams[0];
        assert_eq!(
            s.max_occupancy, 2,
            "FIFO must fill to capacity during the lazy phase"
        );
        assert_eq!(s.pushed, 6, "every element crosses the stream exactly once");
        assert!(
            dense.kernels[0].stalled > 0,
            "source must stall on the full FIFO"
        );
    }

    /// Parking must actually happen (otherwise the ready-list mode is a
    /// silent no-op and its benchmark claims are vacuous).
    #[test]
    fn exhausted_source_parks_idle_under_ready_list() {
        let (mut g, _h) = pipeline(vec![1, 2, 3], 2);
        g.set_scheduler(SchedulerMode::ReadyList);
        g.run(1000).expect("run ok");
        assert_eq!(
            g.parked_state(KernelId(0)),
            Some(Progress::Idle),
            "drained source should end the run parked"
        );
    }

    /// Switching modes clears park state so no kernel sleeps through the
    /// next cycle.
    #[test]
    fn set_scheduler_unparks_everything() {
        let (mut g, _h) = pipeline(vec![1], 1);
        g.set_scheduler(SchedulerMode::ReadyList);
        g.run(1000).expect("run ok");
        assert!(g.parked_state(KernelId(0)).is_some());
        g.set_scheduler(SchedulerMode::Dense);
        assert_eq!(g.parked_state(KernelId(0)), None);
    }
}

