//! The kernel graph and the deterministic cycle scheduler.

use crate::kernel::{Io, Kernel, Progress};
use crate::stream::{StreamSpec, StreamState};
use crate::trace::Trace;
use std::fmt;

/// Identifier of a stream within a [`Graph`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct StreamId(pub(crate) usize);

/// Identifier of a kernel within a [`Graph`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct KernelId(pub(crate) usize);

struct Node {
    kernel: Box<dyn Kernel>,
    inputs: Vec<usize>,
    outputs: Vec<usize>,
    read_used: Vec<bool>,
    write_used: Vec<bool>,
    busy: u64,
    stalled: u64,
}

/// Why a run stopped abnormally.
#[derive(Debug)]
pub enum RunError {
    /// No kernel made progress for a full cycle while sinks were incomplete.
    /// Carries a human-readable dump of stream occupancies.
    Deadlock {
        /// Cycle at which the deadlock was detected.
        cycle: u64,
        /// Diagnostic description of every stream's state.
        diagnostics: String,
    },
    /// `max_cycles` elapsed before the sinks completed.
    Timeout {
        /// The exhausted budget.
        max_cycles: u64,
    },
    /// The graph is malformed (unconnected stream, double writer, …).
    Invalid(String),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Deadlock { cycle, diagnostics } => {
                write!(f, "dataflow deadlock at cycle {cycle}:\n{diagnostics}")
            }
            RunError::Timeout { max_cycles } => {
                write!(f, "run exceeded {max_cycles} cycles")
            }
            RunError::Invalid(msg) => write!(f, "invalid graph: {msg}"),
        }
    }
}

impl std::error::Error for RunError {}

/// Per-kernel activity counters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KernelStats {
    /// Kernel name.
    pub name: String,
    /// Cycles in which the kernel did useful work.
    pub busy: u64,
    /// Cycles in which the kernel was blocked on I/O.
    pub stalled: u64,
}

/// Per-stream traffic counters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StreamStats {
    /// Stream name.
    pub name: String,
    /// Total elements transported.
    pub pushed: u64,
    /// High-water mark of occupancy.
    pub max_occupancy: usize,
    /// Configured capacity.
    pub capacity: usize,
}

/// Result of a completed run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CycleReport {
    /// Clock cycles until the last sink completed.
    pub cycles: u64,
    /// Per-kernel counters, index-aligned with kernel ids.
    pub kernels: Vec<KernelStats>,
    /// Per-stream counters, index-aligned with stream ids.
    pub streams: Vec<StreamStats>,
}

impl CycleReport {
    /// Wall-clock time for the run at a fabric clock of `fclk_mhz`.
    pub fn time_ms(&self, fclk_mhz: f64) -> f64 {
        self.cycles as f64 / (fclk_mhz * 1e3)
    }

    /// The busiest kernel (pipeline bottleneck).
    pub fn bottleneck(&self) -> Option<&KernelStats> {
        self.kernels.iter().max_by_key(|k| k.busy)
    }
}

/// A dataflow graph: kernels connected by bounded streams.
///
/// Build with [`Graph::add_stream`] / [`Graph::add_kernel`], then execute
/// with [`Graph::run`]. Every stream must end up with exactly one writer
/// and one reader (sources/sinks are kernels too).
#[derive(Default)]
pub struct Graph {
    nodes: Vec<Node>,
    streams: Vec<StreamState>,
    writers: Vec<Option<usize>>,
    readers: Vec<Option<usize>>,
}

impl Graph {
    /// Empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a stream.
    pub fn add_stream(&mut self, spec: StreamSpec) -> StreamId {
        self.streams.push(StreamState::new(spec));
        self.writers.push(None);
        self.readers.push(None);
        StreamId(self.streams.len() - 1)
    }

    /// Register a kernel with its input and output streams (port order is
    /// the slice order).
    ///
    /// # Panics
    /// Panics if a stream already has a reader/writer.
    pub fn add_kernel(
        &mut self,
        kernel: Box<dyn Kernel>,
        inputs: &[StreamId],
        outputs: &[StreamId],
    ) -> KernelId {
        let id = self.nodes.len();
        for &StreamId(s) in inputs {
            assert!(
                self.readers[s].is_none(),
                "stream '{}' already has a reader",
                self.streams[s].spec.name
            );
            self.readers[s] = Some(id);
        }
        for &StreamId(s) in outputs {
            assert!(
                self.writers[s].is_none(),
                "stream '{}' already has a writer",
                self.streams[s].spec.name
            );
            self.writers[s] = Some(id);
        }
        self.nodes.push(Node {
            kernel,
            inputs: inputs.iter().map(|s| s.0).collect(),
            outputs: outputs.iter().map(|s| s.0).collect(),
            read_used: vec![false; inputs.len()],
            write_used: vec![false; outputs.len()],
            busy: 0,
            stalled: 0,
        });
        KernelId(id)
    }

    /// Number of kernels.
    pub fn num_kernels(&self) -> usize {
        self.nodes.len()
    }

    /// Number of streams.
    pub fn num_streams(&self) -> usize {
        self.streams.len()
    }

    /// Kernel name lookup.
    pub fn kernel_name(&self, id: KernelId) -> &str {
        self.nodes[id.0].kernel.name()
    }

    /// Total FMem bits of all stream FIFOs (for the resource model).
    pub fn total_fmem_bits(&self) -> usize {
        self.streams.iter().map(|s| s.spec.fmem_bits()).sum()
    }

    pub(crate) fn validate(&self) -> Result<(), RunError> {
        for (i, s) in self.streams.iter().enumerate() {
            if self.writers[i].is_none() {
                return Err(RunError::Invalid(format!("stream '{}' has no writer", s.spec.name)));
            }
            if self.readers[i].is_none() {
                return Err(RunError::Invalid(format!("stream '{}' has no reader", s.spec.name)));
            }
        }
        if self.nodes.is_empty() {
            return Err(RunError::Invalid("graph has no kernels".into()));
        }
        Ok(())
    }

    /// True when every sink kernel (no output ports) reports completion.
    pub(crate) fn complete(&self) -> bool {
        self.nodes
            .iter()
            .filter(|n| n.outputs.is_empty())
            .all(|n| n.kernel.is_done())
    }

    /// Execute until every sink completes or `max_cycles` elapse.
    pub fn run(&mut self, max_cycles: u64) -> Result<CycleReport, RunError> {
        self.run_opts(max_cycles, true)
    }

    /// Like [`Graph::run`], with deadlock detection optional.
    ///
    /// The threaded multi-DFE executor disables detection because a graph
    /// legitimately idles while waiting for elements from another device's
    /// clock domain; it yields the thread instead.
    pub fn run_opts(
        &mut self,
        max_cycles: u64,
        detect_deadlock: bool,
    ) -> Result<CycleReport, RunError> {
        self.run_inner(max_cycles, detect_deadlock, 0).map(|(r, _)| r)
    }

    /// Run while sampling stream occupancy and kernel activity every
    /// `sample_every` cycles (see [`Trace`]).
    pub fn run_traced(
        &mut self,
        max_cycles: u64,
        sample_every: u64,
    ) -> Result<(CycleReport, Trace), RunError> {
        assert!(sample_every > 0, "sampling cadence must be positive");
        self.run_inner(max_cycles, true, sample_every)
            .map(|(r, t)| (r, t.expect("tracing was requested")))
    }

    fn run_inner(
        &mut self,
        max_cycles: u64,
        detect_deadlock: bool,
        sample_every: u64,
    ) -> Result<(CycleReport, Option<Trace>), RunError> {
        self.validate()?;
        let mut trace = (sample_every > 0).then(|| {
            Trace::new(
                sample_every,
                self.streams.iter().map(|s| s.spec.name.clone()).collect(),
                self.nodes.iter().map(|n| n.kernel.name().to_string()).collect(),
            )
        });
        let mut busy_at_last_sample: Vec<u64> = self.nodes.iter().map(|n| n.busy).collect();
        let mut cycle: u64 = 0;
        while !self.complete() {
            if cycle >= max_cycles {
                return Err(RunError::Timeout { max_cycles });
            }
            let (any_progress, committed) = self.step_cycle();
            if !any_progress && !committed {
                if detect_deadlock {
                    return Err(RunError::Deadlock { cycle, diagnostics: self.dump_streams() });
                }
                // Waiting on another clock domain: let its thread run.
                std::thread::yield_now();
            }
            cycle += 1;
            if let Some(t) = &mut trace {
                if cycle % sample_every == 0 {
                    t.occupancy.push(self.streams.iter().map(|s| s.queue.len() as u32).collect());
                    t.busy_delta.push(
                        self.nodes
                            .iter()
                            .zip(&busy_at_last_sample)
                            .map(|(n, &prev)| (n.busy - prev) as u32)
                            .collect(),
                    );
                    for (slot, n) in busy_at_last_sample.iter_mut().zip(&self.nodes) {
                        *slot = n.busy;
                    }
                }
            }
        }
        Ok((self.report(cycle), trace))
    }

    /// Advance every kernel by one cycle and commit staged stream writes.
    ///
    /// Returns `(any_progress, committed)`: whether any kernel reported
    /// [`Progress::Busy`] and whether any stream element moved from staging
    /// into its FIFO. The lockstep multi-device executor drives this
    /// directly, one call per global clock edge.
    pub(crate) fn step_cycle(&mut self) -> (bool, bool) {
        let mut any_progress = false;
        for node in &mut self.nodes {
            node.read_used.fill(false);
            node.write_used.fill(false);
            let mut io = Io::new(
                &mut self.streams,
                &node.inputs,
                &node.outputs,
                &mut node.read_used,
                &mut node.write_used,
            );
            match node.kernel.tick(&mut io) {
                Progress::Busy => {
                    node.busy += 1;
                    any_progress = true;
                }
                Progress::Stalled => node.stalled += 1,
                Progress::Idle => {}
            }
        }
        let mut committed = false;
        for s in &mut self.streams {
            if !s.staged.is_empty() {
                committed = true;
            }
            s.commit();
        }
        (any_progress, committed)
    }

    pub(crate) fn report(&self, cycles: u64) -> CycleReport {
        CycleReport {
            cycles,
            kernels: self
                .nodes
                .iter()
                .map(|n| KernelStats {
                    name: n.kernel.name().to_string(),
                    busy: n.busy,
                    stalled: n.stalled,
                })
                .collect(),
            streams: self
                .streams
                .iter()
                .map(|s| StreamStats {
                    name: s.spec.name.clone(),
                    pushed: s.pushed,
                    max_occupancy: s.max_occupancy,
                    capacity: s.spec.capacity,
                })
                .collect(),
        }
    }

    pub(crate) fn dump_streams(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (i, s) in self.streams.iter().enumerate() {
            let _ = writeln!(
                out,
                "  stream {:3} '{}': {}/{} occupied, writer={:?} reader={:?}",
                i,
                s.spec.name,
                s.queue.len(),
                s.spec.capacity,
                self.writers[i].map(|k| self.nodes[k].kernel.name()),
                self.readers[i].map(|k| self.nodes[k].kernel.name()),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::{HostSink, HostSource};
    use crate::kernel::Progress;

    /// A pass-through kernel that adds a constant, one element per cycle.
    struct AddConst {
        c: i32,
    }
    impl Kernel for AddConst {
        fn name(&self) -> &str {
            "add-const"
        }
        fn tick(&mut self, io: &mut Io<'_>) -> Progress {
            if io.can_read(0) && io.can_write(0) {
                let v = io.read(0).expect("checked");
                io.write(0, v + self.c);
                Progress::Busy
            } else if io.can_read(0) || io.num_inputs() == 0 {
                Progress::Stalled
            } else {
                Progress::Idle
            }
        }
    }

    fn pipeline(data: Vec<i32>, stages: usize) -> (Graph, crate::host::SinkHandle) {
        let n = data.len();
        let mut g = Graph::new();
        let mut prev = g.add_stream(StreamSpec::new("s0", 8, 4));
        g.add_kernel(Box::new(HostSource::new("src", data)), &[], &[prev]);
        for i in 0..stages {
            let next = g.add_stream(StreamSpec::new(format!("s{}", i + 1), 8, 4));
            g.add_kernel(Box::new(AddConst { c: 1 }), &[prev], &[next]);
            prev = next;
        }
        let (sink, handle) = HostSink::new("dst", n);
        g.add_kernel(Box::new(sink), &[prev], &[]);
        (g, handle)
    }

    #[test]
    fn pipeline_computes_and_counts_cycles() {
        let (mut g, handle) = pipeline(vec![10, 20, 30], 2);
        let report = g.run(1000).expect("run ok");
        assert_eq!(handle.take(), vec![12, 22, 32]);
        // 3 elements through a 4-stage pipeline (src + 2 adders + sink):
        // latency ≈ depth + n; must be far below the serial bound yet > n.
        assert!(report.cycles >= 5 && report.cycles <= 20, "cycles = {}", report.cycles);
    }

    #[test]
    fn registered_outputs_cost_one_cycle_per_stage() {
        // A single element through k stages must take ≥ k+1 cycles.
        let (mut g, _h) = pipeline(vec![1], 5);
        let report = g.run(100).expect("run ok");
        assert!(report.cycles >= 6, "combinational ripple detected: {}", report.cycles);
    }

    #[test]
    fn throughput_is_one_element_per_cycle() {
        let n = 100;
        let (mut g, handle) = pipeline((0..n).collect(), 1);
        let report = g.run(10_000).expect("run ok");
        assert_eq!(handle.take().len(), n as usize);
        // Fully pipelined: cycles ≈ n + small latency.
        assert!(report.cycles < n as u64 + 10, "cycles = {}", report.cycles);
    }

    #[test]
    fn unconnected_stream_is_invalid() {
        let mut g = Graph::new();
        let s = g.add_stream(StreamSpec::new("dangling", 2, 4));
        g.add_kernel(Box::new(HostSource::new("src", vec![1])), &[], &[s]);
        match g.run(10) {
            Err(RunError::Invalid(msg)) => assert!(msg.contains("no reader")),
            other => panic!("expected Invalid, got {other:?}"),
        }
    }

    #[test]
    fn starved_sink_deadlocks_with_diagnostics() {
        // Sink expects 2 elements but the source provides 1.
        let mut g = Graph::new();
        let s = g.add_stream(StreamSpec::new("s", 8, 4));
        g.add_kernel(Box::new(HostSource::new("src", vec![7])), &[], &[s]);
        let (sink, _h) = HostSink::new("dst", 2);
        g.add_kernel(Box::new(sink), &[s], &[]);
        match g.run(1000) {
            Err(RunError::Deadlock { diagnostics, .. }) => {
                assert!(diagnostics.contains("'s'"));
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn timeout_is_reported() {
        let (mut g, _h) = pipeline(vec![1, 2, 3], 2);
        match g.run(2) {
            Err(RunError::Timeout { max_cycles: 2 }) => {}
            other => panic!("expected timeout, got {other:?}"),
        }
    }

    #[test]
    fn stats_account_busy_and_stalls() {
        let (mut g, _h) = pipeline((0..10).collect(), 1);
        let report = g.run(1000).expect("run ok");
        let adder = &report.kernels[1];
        assert_eq!(adder.name, "add-const");
        assert_eq!(adder.busy, 10, "one busy cycle per element");
        let src_stream = &report.streams[0];
        assert_eq!(src_stream.pushed, 10);
        assert!(src_stream.max_occupancy <= src_stream.capacity);
    }
}
