//! Host-side source and sink kernels — the PCIe boundary of the DFE.
//!
//! The paper streams images from the CPU over PCIe and reads logits back;
//! these kernels model that boundary at one element per fabric cycle (the
//! PCIe link is far faster than 8 bits × 105 MHz, so the fabric clock is
//! the binding constraint).

use crate::kernel::{Io, Kernel, Progress, SpanIo, SpanPlan, WakeHint};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex, MutexGuard};

/// Feeds a preloaded buffer into its single output stream, one element per
/// cycle.
pub struct HostSource {
    name: String,
    data: VecDeque<i32>,
    /// Elements per image for the schedule-replay token (see
    /// [`HostSource::with_period`]).
    period: Option<u64>,
}

impl HostSource {
    /// Create a source over `data` (already in stream order).
    pub fn new(name: impl Into<String>, data: Vec<i32>) -> Self {
        Self {
            name: name.into(),
            data: data.into(),
            period: None,
        }
    }

    /// Declare the stream periodic with `elems` elements per image, letting
    /// the replay token quantize its remaining-count modulo the period — at
    /// identical points of successive images the token then repeats, which
    /// is what lets a multi-image run fingerprint as steady-state.
    pub fn with_period(mut self, elems: usize) -> Self {
        assert!(elems > 0, "period must be positive");
        self.period = Some(elems as u64);
        self
    }
}

/// Period-quantized replay token for a draining counter: mid-stream states
/// repeat every `period` elements, while the final-period drain (`remaining
/// < period`) and exhaustion are kept in *disjoint* token ranges — a nearly
/// dry source must never fingerprint equal to a mid-stream one, or replay
/// would dispatch a recorded span past the end of the buffer.
fn drain_token(remaining: u64, period: Option<u64>) -> u64 {
    const TAG: u64 = 1 << 63;
    match period {
        _ if remaining == 0 => u64::MAX,
        Some(p) if remaining >= p => remaining % p,
        _ => TAG | remaining,
    }
}

impl Kernel for HostSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, io: &mut Io<'_>) -> Progress {
        if self.data.is_empty() {
            return Progress::Idle;
        }
        if io.can_write(0) {
            let v = self.data.pop_front().expect("checked non-empty");
            io.write(0, v);
            Progress::Busy
        } else {
            Progress::Stalled
        }
    }

    fn is_done(&self) -> bool {
        self.data.is_empty()
    }

    /// Stalls only on a full output (woken by the reader's pop); idles only
    /// once exhausted (never wakes again). Both are port-inert fixed points.
    fn wake_hint(&self) -> WakeHint {
        WakeHint::Parkable
    }

    /// One element out per cycle until the buffer empties. Halting: a full
    /// output freezes the tick at `Stalled`.
    fn span_hint(&self, _in_len: &[usize]) -> Option<SpanPlan> {
        if self.data.is_empty() {
            None
        } else {
            Some(SpanPlan::new(self.data.len() as u64, 0, 1).halting())
        }
    }

    fn run_span(&mut self, io: &mut SpanIo<'_>, n: u64) {
        for _ in 0..n {
            io.push(0, self.data.pop_front().expect("span within buffer"));
        }
    }

    /// Remaining-count token, period-quantized (see [`drain_token`]): the
    /// buffer length is the only control state.
    fn replay_token(&self) -> Option<u64> {
        Some(drain_token(self.data.len() as u64, self.period))
    }
}

#[derive(Default)]
struct SinkState {
    collected: Vec<i32>,
}

/// Shared handle to a [`HostSink`]'s collected output.
#[derive(Clone)]
pub struct SinkHandle {
    state: Arc<Mutex<SinkState>>,
    expected: usize,
}

/// Lock a sink's state, surviving poisoning: a panicking device thread
/// must not hide the elements already collected from the test harness.
fn lock_state(state: &Mutex<SinkState>) -> MutexGuard<'_, SinkState> {
    state
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl SinkHandle {
    /// Take the collected elements (leaves the sink buffer empty).
    pub fn take(&self) -> Vec<i32> {
        std::mem::take(&mut lock_state(&self.state).collected)
    }

    /// Elements collected so far.
    pub fn len(&self) -> usize {
        lock_state(&self.state).collected.len()
    }

    /// True when nothing has been collected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when all expected elements arrived.
    pub fn is_complete(&self) -> bool {
        self.len() == self.expected
    }
}

/// Collects a known number of elements from its single input stream.
pub struct HostSink {
    name: String,
    expected: usize,
    /// Elements per image for the schedule-replay token (see
    /// [`HostSource::with_period`]).
    period: Option<u64>,
    state: Arc<Mutex<SinkState>>,
}

impl HostSink {
    /// Create a sink expecting `expected` elements, returning the kernel and
    /// a handle for retrieving results after the run.
    pub fn new(name: impl Into<String>, expected: usize) -> (Self, SinkHandle) {
        let state = Arc::new(Mutex::new(SinkState::default()));
        let handle = SinkHandle {
            state: Arc::clone(&state),
            expected,
        };
        (
            Self {
                name: name.into(),
                expected,
                period: None,
                state,
            },
            handle,
        )
    }

    /// Declare the stream periodic with `elems` collected elements per
    /// image (see [`HostSource::with_period`]).
    pub fn with_period(mut self, elems: usize) -> Self {
        assert!(elems > 0, "period must be positive");
        self.period = Some(elems as u64);
        self
    }
}

impl Kernel for HostSink {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, io: &mut Io<'_>) -> Progress {
        let state = lock_state(&self.state);
        if state.collected.len() >= self.expected {
            return Progress::Idle;
        }
        drop(state);
        match io.read(0) {
            Some(v) => {
                let mut state = lock_state(&self.state);
                state.collected.push(v);
                Progress::Busy
            }
            None => Progress::Stalled,
        }
    }

    fn is_done(&self) -> bool {
        lock_state(&self.state).collected.len() >= self.expected
    }

    /// Stalls only on an empty input (woken by the writer's commit); idles
    /// only once complete.
    fn wake_hint(&self) -> WakeHint {
        WakeHint::Parkable
    }

    /// One element in per cycle until the expected count is reached — the
    /// span promise stops exactly at completion, so `is_done` flips at the
    /// same cycle as under per-element stepping.
    fn span_hint(&self, in_len: &[usize]) -> Option<SpanPlan> {
        let remaining = self.expected - lock_state(&self.state).collected.len();
        if remaining == 0 {
            None
        } else {
            let plan = SpanPlan::new(remaining as u64, 1, 0);
            Some(if in_len[0] == 0 {
                plan.blocked(Progress::Stalled)
            } else {
                plan
            })
        }
    }

    fn run_span(&mut self, io: &mut SpanIo<'_>, n: u64) {
        let mut state = lock_state(&self.state);
        for _ in 0..n {
            state.collected.push(io.pop(0));
        }
    }

    /// Remaining-count token, period-quantized (see [`drain_token`]).
    fn replay_token(&self) -> Option<u64> {
        let remaining = self.expected - lock_state(&self.state).collected.len();
        Some(drain_token(remaining as u64, self.period))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use crate::stream::StreamSpec;

    #[test]
    fn source_to_sink_roundtrip() {
        let mut g = Graph::new();
        let s = g.add_stream(StreamSpec::new("s", 8, 2));
        g.add_kernel(
            Box::new(HostSource::new("src", vec![1, 2, 3, 4])),
            &[],
            &[s],
        );
        let (sink, handle) = HostSink::new("dst", 4);
        g.add_kernel(Box::new(sink), &[s], &[]);
        let report = g.run(100).expect("run ok");
        assert_eq!(handle.take(), vec![1, 2, 3, 4]);
        // One element per cycle through a capacity-2 FIFO: n + latency.
        assert!(report.cycles <= 10);
    }

    #[test]
    fn sink_handle_tracks_completion() {
        let (_sink, handle) = HostSink::new("dst", 2);
        assert!(!handle.is_complete());
        assert!(handle.is_empty());
    }

    #[test]
    fn empty_source_is_immediately_done() {
        let src = HostSource::new("src", vec![]);
        assert!(src.is_done());
    }

    #[test]
    fn drain_tokens_keep_final_period_disjoint() {
        // Mid-stream states one period apart share a token…
        assert_eq!(drain_token(250, Some(100)), drain_token(150, Some(100)));
        // …but the final-period drain must NOT collide with them: if
        // remaining=50 matched remaining=150, a fingerprint could validate
        // on the last image and replay a span past the end of the buffer.
        assert_ne!(drain_token(50, Some(100)), drain_token(150, Some(100)));
        assert_ne!(drain_token(0, Some(100)), drain_token(100, Some(100)));
        // Without a period hint every distinct remaining-count is distinct.
        assert_ne!(drain_token(3, None), drain_token(103, None));
    }
}
