//! The kernel abstraction: a clocked state machine with ports.

use crate::stream::StreamState;

/// What a kernel accomplished during one tick; used for busy/stall
/// accounting and deadlock detection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Progress {
    /// Read or wrote at least one element, or performed internal work.
    Busy,
    /// Wanted to work but was blocked on an empty input or full output.
    Stalled,
    /// Nothing to do (e.g. source exhausted, sink complete).
    Idle,
}

/// How the ready-list scheduler may treat a kernel whose tick did not
/// report [`Progress::Busy`] (see [`Kernel::wake_hint`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum WakeHint {
    /// Tick the kernel every cycle regardless of stream events — the safe
    /// default, behaviourally identical to the dense stepper. Required for
    /// kernels whose tick has effects beyond the ports: advancing an
    /// internal clock or RNG, polling an external channel, shifting a
    /// non-empty delay line.
    #[default]
    AlwaysTick,
    /// The kernel may be *parked* after a `Stalled`/`Idle` tick and not
    /// ticked again until an input stream commits an element or an output
    /// stream's reader frees space.
    ///
    /// Contract (checked by a debug assertion in the scheduler): a tick
    /// that returns `Stalled` or `Idle` must be a **fixed point** — it
    /// must not have read or written any port, and re-running the kernel
    /// against unchanged stream state would return the same verdict with
    /// no internal-state change. Under that contract, skipping the
    /// repeated ticks is unobservable and the per-kernel busy/stall
    /// counters can be replayed exactly.
    Parkable,
}

/// Port-level I/O context handed to a kernel on each tick.
///
/// Enforces the clocked contract: at most one read per input port and one
/// write per output port per tick. Writes are staged and become visible to
/// the consumer on the next cycle.
pub struct Io<'a> {
    streams: &'a mut [StreamState],
    inputs: &'a [usize],
    outputs: &'a [usize],
    read_used: &'a mut [bool],
    write_used: &'a mut [bool],
}

impl<'a> Io<'a> {
    pub(crate) fn new(
        streams: &'a mut [StreamState],
        inputs: &'a [usize],
        outputs: &'a [usize],
        read_used: &'a mut [bool],
        write_used: &'a mut [bool],
    ) -> Self {
        Self {
            streams,
            inputs,
            outputs,
            read_used,
            write_used,
        }
    }

    /// Number of input ports.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of output ports.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Is an element available on input port `p` this cycle?
    pub fn can_read(&self, p: usize) -> bool {
        !self.read_used[p] && self.streams[self.inputs[p]].can_read()
    }

    /// Consume one element from input port `p`. Returns `None` when the
    /// port is empty or already read this cycle.
    pub fn read(&mut self, p: usize) -> Option<i32> {
        if self.read_used[p] {
            return None;
        }
        let s = &mut self.streams[self.inputs[p]];
        let v = s.queue.pop_front()?;
        self.read_used[p] = true;
        Some(v)
    }

    /// Is there space to write on output port `p` this cycle?
    pub fn can_write(&self, p: usize) -> bool {
        !self.write_used[p] && self.streams[self.outputs[p]].can_write()
    }

    /// Produce one element on output port `p`.
    ///
    /// # Panics
    /// Panics when the port is full or already written this cycle — kernels
    /// must check [`Io::can_write`] first (a real kernel physically cannot
    /// emit into a full FIFO).
    pub fn write(&mut self, p: usize, v: i32) {
        assert!(
            !self.write_used[p],
            "output port {p} written twice in one cycle"
        );
        let s = &mut self.streams[self.outputs[p]];
        assert!(
            s.can_write(),
            "write into full stream '{}' — kernel must check can_write",
            s.spec.name
        );
        s.staged.push(v);
        s.pushed += 1;
        self.write_used[p] = true;
    }
}

/// A clocked dataflow kernel.
///
/// One `tick` models one fabric clock cycle. Implementations hold all layer
/// state (shift registers, weight caches, position counters) internally,
/// exactly like a MaxJ kernel holds it in FMem/FFs.
pub trait Kernel: Send {
    /// Kernel instance name for reports.
    fn name(&self) -> &str;

    /// Advance one clock cycle.
    fn tick(&mut self, io: &mut Io<'_>) -> Progress;

    /// True once the kernel will never produce further output (used by the
    /// threaded executor for shutdown; the cycle scheduler stops on sink
    /// completion instead).
    ///
    /// Contract: for a sink kernel (no output streams), the value may only
    /// change as a result of a tick that returned [`Progress::Busy`]. Run
    /// loops rely on this to re-check graph completion only after a cycle
    /// with sink progress; every in-tree sink completes by collecting its
    /// final element, which is a `Busy` tick.
    fn is_done(&self) -> bool {
        false
    }

    /// May the ready-list scheduler park this kernel after a non-`Busy`
    /// tick? Consulted at park time, so the answer may depend on current
    /// internal state (a delay line is parkable only while empty).
    ///
    /// Defaults to [`WakeHint::AlwaysTick`], which preserves the dense
    /// stepper's every-cycle ticking for custom kernels; override to
    /// [`WakeHint::Parkable`] only if the kernel honours the fixed-point
    /// contract documented on [`WakeHint`].
    fn wake_hint(&self) -> WakeHint {
        WakeHint::AlwaysTick
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{StreamSpec, StreamState};

    fn setup() -> Vec<StreamState> {
        vec![
            StreamState::new(StreamSpec::new("in", 8, 4)),
            StreamState::new(StreamSpec::new("out", 8, 1)),
        ]
    }

    #[test]
    fn read_is_once_per_cycle() {
        let mut streams = setup();
        streams[0].queue.push_back(1);
        streams[0].queue.push_back(2);
        let (inputs, outputs) = (vec![0usize], vec![1usize]);
        let mut ru = vec![false];
        let mut wu = vec![false];
        let mut io = Io::new(&mut streams, &inputs, &outputs, &mut ru, &mut wu);
        assert_eq!(io.read(0), Some(1));
        assert!(!io.can_read(0), "second read in same cycle must be refused");
        assert_eq!(io.read(0), None);
    }

    #[test]
    fn write_is_staged_not_committed() {
        let mut streams = setup();
        let (inputs, outputs) = (vec![0usize], vec![1usize]);
        let mut ru = vec![false];
        let mut wu = vec![false];
        let mut io = Io::new(&mut streams, &inputs, &outputs, &mut ru, &mut wu);
        assert!(io.can_write(0));
        io.write(0, 9);
        assert!(!io.can_write(0));
        assert!(!streams[1].can_read());
        streams[1].commit();
        assert_eq!(streams[1].queue.front(), Some(&9));
    }

    #[test]
    #[should_panic(expected = "full stream")]
    fn write_into_full_stream_panics() {
        let mut streams = setup();
        streams[1].queue.push_back(0); // capacity 1 ⇒ full
        let (inputs, outputs) = (vec![0usize], vec![1usize]);
        let mut ru = vec![false];
        let mut wu = vec![false];
        let mut io = Io::new(&mut streams, &inputs, &outputs, &mut ru, &mut wu);
        io.write(0, 1);
    }
}
