//! The kernel abstraction: a clocked state machine with ports.

use crate::stream::StreamState;

/// What a kernel accomplished during one tick; used for busy/stall
/// accounting and deadlock detection.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Progress {
    /// Read or wrote at least one element, or performed internal work.
    Busy,
    /// Wanted to work but was blocked on an empty input or full output.
    Stalled,
    /// Nothing to do (e.g. source exhausted, sink complete).
    Idle,
}

/// How the ready-list scheduler may treat a kernel whose tick did not
/// report [`Progress::Busy`] (see [`Kernel::wake_hint`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum WakeHint {
    /// Tick the kernel every cycle regardless of stream events — the safe
    /// default, behaviourally identical to the dense stepper. Required for
    /// kernels whose tick has effects beyond the ports: advancing an
    /// internal clock or RNG, polling an external channel, shifting a
    /// non-empty delay line.
    #[default]
    AlwaysTick,
    /// The kernel may be *parked* after a `Stalled`/`Idle` tick and not
    /// ticked again until an input stream commits an element or an output
    /// stream's reader frees space.
    ///
    /// Contract (checked by a debug assertion in the scheduler): a tick
    /// that returns `Stalled` or `Idle` must be a **fixed point** — it
    /// must not have read or written any port, and re-running the kernel
    /// against unchanged stream state would return the same verdict with
    /// no internal-state change. Under that contract, skipping the
    /// repeated ticks is unobservable and the per-kernel busy/stall
    /// counters can be replayed exactly.
    Parkable,
}

/// Port-level I/O context handed to a kernel on each tick.
///
/// Enforces the clocked contract: at most [`Kernel::lanes`] reads per input
/// port and writes per output port per tick (one each for ordinary kernels;
/// a folded kernel widens its stream interface). Writes are staged and
/// become visible to the consumer on the next cycle.
pub struct Io<'a> {
    streams: &'a mut [StreamState],
    inputs: &'a [usize],
    outputs: &'a [usize],
    read_used: &'a mut [u16],
    write_used: &'a mut [u16],
    read_lanes: u16,
    write_lanes: u16,
}

impl<'a> Io<'a> {
    pub(crate) fn new(
        streams: &'a mut [StreamState],
        inputs: &'a [usize],
        outputs: &'a [usize],
        read_used: &'a mut [u16],
        write_used: &'a mut [u16],
        read_lanes: u16,
        write_lanes: u16,
    ) -> Self {
        Self {
            streams,
            inputs,
            outputs,
            read_used,
            write_used,
            read_lanes,
            write_lanes,
        }
    }

    /// Number of input ports.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of output ports.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Is an element available on input port `p` this cycle (a read lane
    /// left and a committed element queued)?
    pub fn can_read(&self, p: usize) -> bool {
        self.read_used[p] < self.read_lanes && self.streams[self.inputs[p]].can_read()
    }

    /// Consume one element from input port `p`. Returns `None` when the
    /// port is empty or all its read lanes are used this cycle.
    pub fn read(&mut self, p: usize) -> Option<i32> {
        if self.read_used[p] >= self.read_lanes {
            return None;
        }
        let s = &mut self.streams[self.inputs[p]];
        let v = s.queue.pop_front()?;
        self.read_used[p] += 1;
        Some(v)
    }

    /// Is there space to write on output port `p` this cycle (a write lane
    /// left and FIFO headroom counting this cycle's staged pushes)?
    pub fn can_write(&self, p: usize) -> bool {
        self.write_used[p] < self.write_lanes && self.streams[self.outputs[p]].can_write()
    }

    /// Produce one element on output port `p`.
    ///
    /// # Panics
    /// Panics when the port is full or out of write lanes this cycle —
    /// kernels must check [`Io::can_write`] first (a real kernel physically
    /// cannot emit into a full FIFO).
    pub fn write(&mut self, p: usize, v: i32) {
        assert!(
            self.write_used[p] < self.write_lanes,
            "output port {p} exceeded its {} write lane(s) in one cycle",
            self.write_lanes
        );
        let s = &mut self.streams[self.outputs[p]];
        assert!(
            s.can_write(),
            "write into full stream '{}' — kernel must check can_write",
            s.spec.name
        );
        s.staged.push(v);
        s.pushed += 1;
        self.write_used[p] += 1;
    }
}

/// Maximum port count (inputs or outputs) of a span-capable kernel; the
/// per-port span counters are fixed-size arrays so a burst dispatch never
/// allocates. Every in-tree kernel has ≤ 2 ports per direction.
pub const MAX_SPAN_PORTS: usize = 8;

/// A **uniform-span promise** (see [`Kernel::span_hint`]): for up to
/// `cycles` consecutive cycles — provided every port in `reads` has an
/// element available and every port in `writes` has space available on each
/// of those cycles — every tick of this kernel would
///
/// * read exactly one element from each input port whose bit is set in
///   `reads`, and no element from any other input port,
/// * write exactly one element to each output port whose bit is set in
///   `writes`, and none to any other output port,
/// * return [`Progress::Busy`], and
/// * leave the kernel after cycle `n ≤ cycles` in exactly the state `n`
///   consecutive `tick` calls would have.
///
/// The macro-tick scheduler uses the promise to replay a whole span of
/// cycles in one [`Kernel::run_span`] dispatch with the busy/stall counters
/// and stream statistics credited arithmetically, which is what keeps
/// [`CycleReport`](crate::CycleReport)s bit-identical to dense stepping.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SpanPlan {
    /// Maximum cycles the promise covers (`u64::MAX` ⇒ unbounded; the
    /// scheduler caps it by stream feasibility). Must be ≥ 1.
    pub cycles: u64,
    /// Bitmask of input ports read once per cycle.
    pub reads: u32,
    /// Bitmask of output ports written once per cycle.
    pub writes: u32,
    /// Bitmask of **suppressed opportunistic reads**: input ports the
    /// kernel *would* read once per cycle if data were present, promised
    /// unread because the port's queue is empty at plan time (the
    /// `in_len` argument of [`Kernel::span_hint`]). A kernel that keeps
    /// making progress while such a port starves — a convolution emitting
    /// precomputed filters, a pool draining pending outputs — uses this to
    /// promise the dense starved-tick behaviour instead of a read it
    /// cannot get. The promise is conditional on the port *staying* empty:
    /// the scheduler caps the span so no element becomes readable there
    /// (an in-burst push at writer offset `a` commits end-of-cycle `a`
    /// and turns readable at `a + 1`, so `k ≤ a + 1`), and never treats
    /// the port as a read for recruitment or feasibility.
    pub opt_reads: u32,
    /// Kernel-declared **current blockage**: `Some(v)` asserts that with
    /// the availability shown in `in_len` the kernel's next tick performs
    /// no port action and returns verdict `v` — typically because a
    /// read-masked port is dry. The masks then describe the ticks once the
    /// blockage clears. The scheduler *demotes* such a kernel from an
    /// offset-0 participant to a recruit-like one: its modelled trajectory
    /// is one dense tick of verdict `v` at the burst's first cycle, a park,
    /// and (if its ports become serviceable in-burst) a busy span from the
    /// solved offset.
    ///
    /// Contract for `Some(Stalled)`: ticks stay port-inert `Stalled` until
    /// **every** masked port is serviceable, not merely the ports dry at
    /// plan time (an all-or-nothing kernel satisfies this trivially; a
    /// partially-opportunistic one may declare it only in states where the
    /// opportunism is off, e.g. a convolution mid-absorb). `Some(Idle)`
    /// carries no stability promise; the scheduler admits it only when no
    /// stream event can re-tick the kernel before its offset.
    pub blocked: Option<Progress>,
    /// Asserts the plan's ports are **halting** on backpressure: whenever
    /// every masked read port holds data but some masked write port is
    /// full, the kernel's tick performs no port action and returns
    /// `Stalled`. Lets the scheduler demote a backpressured kernel (the
    /// write-full case of [`SpanPlan::blocked`], which only the scheduler
    /// can judge — a same-cycle pop by an earlier-ordered reader unblocks
    /// the writer within its own tick). False for plans that keep working
    /// under backpressure, e.g. a convolution absorbing input while its
    /// emit is blocked.
    pub halt: bool,
}

impl SpanPlan {
    /// Promise `cycles` uniform cycles reading the ports in `reads` and
    /// writing the ports in `writes` (bitmasks, bit `p` = port `p`).
    pub fn new(cycles: u64, reads: u32, writes: u32) -> Self {
        Self {
            cycles,
            reads,
            writes,
            opt_reads: 0,
            blocked: None,
            halt: false,
        }
    }

    /// Mark `mask` ports as suppressed opportunistic reads (see
    /// [`SpanPlan::opt_reads`]). The mask must be disjoint from `reads`.
    pub fn with_opt_reads(mut self, mask: u32) -> Self {
        debug_assert_eq!(self.reads & mask, 0, "opt_reads overlaps reads");
        self.opt_reads = mask;
        self
    }

    /// Declare the kernel currently blocked with verdict `v` (see
    /// [`SpanPlan::blocked`]).
    pub fn blocked(mut self, v: Progress) -> Self {
        debug_assert_ne!(v, Progress::Busy, "a blocked tick is non-Busy");
        self.blocked = Some(v);
        self
    }

    /// Declare the plan halting on backpressure (see [`SpanPlan::halt`]).
    pub fn halting(mut self) -> Self {
        self.halt = true;
        self
    }
}

/// Batched port access handed to [`Kernel::run_span`].
///
/// Unlike [`Io`], elements move directly through the FIFO queues: the
/// scheduler has already proven (from the [`SpanPlan`]s of every awake
/// kernel plus stream occupancies) that the dense per-cycle interleaving
/// would succeed for the whole span, so the per-cycle staging buffer is
/// bypassed and occupancy statistics are credited arithmetically by the
/// scheduler afterwards. Per-port FIFO order is preserved exactly; the
/// interleaving of `pop`/`push` calls across ports within one dispatch is
/// unobservable.
pub struct SpanIo<'a> {
    streams: &'a mut [StreamState],
    inputs: &'a [usize],
    outputs: &'a [usize],
    suppressed: u32,
    #[cfg(debug_assertions)]
    reads_done: [u64; MAX_SPAN_PORTS],
    #[cfg(debug_assertions)]
    writes_done: [u64; MAX_SPAN_PORTS],
}

impl<'a> SpanIo<'a> {
    pub(crate) fn new(
        streams: &'a mut [StreamState],
        inputs: &'a [usize],
        outputs: &'a [usize],
        suppressed: u32,
    ) -> Self {
        assert!(
            inputs.len() <= MAX_SPAN_PORTS && outputs.len() <= MAX_SPAN_PORTS,
            "span dispatch supports at most {MAX_SPAN_PORTS} ports per direction"
        );
        Self {
            streams,
            inputs,
            outputs,
            suppressed,
            #[cfg(debug_assertions)]
            reads_done: [0; MAX_SPAN_PORTS],
            #[cfg(debug_assertions)]
            writes_done: [0; MAX_SPAN_PORTS],
        }
    }

    /// Whether the dispatched [`SpanPlan`] suppressed input port `p` as an
    /// opportunistic read (see [`SpanPlan::opt_reads`]). A kernel whose
    /// `tick` reads such a port whenever data is present must consult this
    /// instead of live queue state: dispatch runs whole spans in node
    /// order, so an upstream writer may already have pushed elements that
    /// dense stepping would only expose *after* this span ends.
    pub fn read_suppressed(&self, p: usize) -> bool {
        self.suppressed & (1 << p) != 0
    }

    /// Consume the next element from input port `p`.
    ///
    /// # Panics
    /// Panics if the queue is empty — the scheduler guarantees availability
    /// for exactly the promised reads, so an empty pop is a broken
    /// [`SpanPlan`] contract, not a stall.
    pub fn pop(&mut self, p: usize) -> i32 {
        // Contract bookkeeping for the dispatcher's debug audit only — the
        // counter arrays don't even exist in release builds.
        #[cfg(debug_assertions)]
        {
            self.reads_done[p] += 1;
        }
        self.streams[self.inputs[p]]
            .queue
            .pop_front()
            .expect("span pop from empty stream (SpanPlan contract violation)")
    }

    /// Produce the next element on output port `p`.
    pub fn push(&mut self, p: usize, v: i32) {
        let s = &mut self.streams[self.outputs[p]];
        s.queue.push_back(v);
        s.pushed += 1;
        #[cfg(debug_assertions)]
        {
            self.writes_done[p] += 1;
        }
    }

    /// Consume the next `n` elements from input port `p`, feeding each to
    /// `f` in FIFO order. Equivalent to `n` [`SpanIo::pop`] calls, but the
    /// queue is drained once instead of re-resolved per element — worth it
    /// on the long single-phase spans (loader words, window fills) where
    /// per-element port bookkeeping is the only cost left.
    ///
    /// # Panics
    /// Panics if fewer than `n` elements are queued (a broken
    /// [`SpanPlan`] contract, as with [`SpanIo::pop`]).
    pub fn pop_n(&mut self, p: usize, n: u64, mut f: impl FnMut(i32)) {
        #[cfg(debug_assertions)]
        {
            self.reads_done[p] += n;
        }
        let q = &mut self.streams[self.inputs[p]].queue;
        assert!(
            q.len() as u64 >= n,
            "span pop_n past queue end (SpanPlan contract violation)"
        );
        for v in q.drain(..n as usize) {
            f(v);
        }
    }

    /// Produce the next `n` elements on output port `p` from `f`, appended
    /// with a single reservation. Equivalent to `n` [`SpanIo::push`] calls.
    pub fn push_n(&mut self, p: usize, n: u64, mut f: impl FnMut() -> i32) {
        #[cfg(debug_assertions)]
        {
            self.writes_done[p] += n;
        }
        let s = &mut self.streams[self.outputs[p]];
        s.pushed += n;
        s.queue.reserve(n as usize);
        s.queue.extend((0..n).map(|_| f()));
    }

    /// Elements read from / written to each port so far (scheduler-side
    /// contract verification; debug builds only — release builds omit the
    /// counters entirely so span dispatch never zeroes or bumps them).
    #[cfg(debug_assertions)]
    pub(crate) fn counts(&self) -> (&[u64; MAX_SPAN_PORTS], &[u64; MAX_SPAN_PORTS]) {
        (&self.reads_done, &self.writes_done)
    }
}

/// A clocked dataflow kernel.
///
/// One `tick` models one fabric clock cycle. Implementations hold all layer
/// state (shift registers, weight caches, position counters) internally,
/// exactly like a MaxJ kernel holds it in FMem/FFs.
pub trait Kernel: Send {
    /// Kernel instance name for reports.
    fn name(&self) -> &str;

    /// Advance one clock cycle.
    fn tick(&mut self, io: &mut Io<'_>) -> Progress;

    /// True once the kernel will never produce further output (used by the
    /// threaded executor for shutdown; the cycle scheduler stops on sink
    /// completion instead).
    ///
    /// Contract: for a sink kernel (no output streams), the value may only
    /// change as a result of a tick that returned [`Progress::Busy`]. Run
    /// loops rely on this to re-check graph completion only after a cycle
    /// with sink progress; every in-tree sink completes by collecting its
    /// final element, which is a `Busy` tick.
    fn is_done(&self) -> bool {
        false
    }

    /// Stream-interface width as `(read_lanes, write_lanes)`: how many
    /// elements this kernel may move per port per tick. The default `(1, 1)`
    /// is the paper's one-element-per-clock stream contract; a *folded*
    /// kernel (PE/SIMD unrolling) widens it, modelling the wider stream
    /// interface the unrolled datapath would synthesize to.
    ///
    /// Captured once at [`Graph::add_kernel`](crate::Graph::add_kernel) —
    /// the width is a hardware-elaboration property and must not change at
    /// runtime. A kernel with lanes > 1 must not offer [`SpanPlan`]s: the
    /// burst planner's feasibility arithmetic assumes one element per cycle
    /// per port, so folded kernels return `None` from
    /// [`Kernel::span_hint`] and run per-element.
    fn lanes(&self) -> (u16, u16) {
        (1, 1)
    }

    /// May the ready-list scheduler park this kernel after a non-`Busy`
    /// tick? Consulted at park time, so the answer may depend on current
    /// internal state (a delay line is parkable only while empty).
    ///
    /// Defaults to [`WakeHint::AlwaysTick`], which preserves the dense
    /// stepper's every-cycle ticking for custom kernels; override to
    /// [`WakeHint::Parkable`] only if the kernel honours the fixed-point
    /// contract documented on [`WakeHint`].
    fn wake_hint(&self) -> WakeHint {
        WakeHint::AlwaysTick
    }

    /// Offer a uniform-span promise for the kernel's *current* state, or
    /// `None` (the default) if the next tick's port behaviour cannot be
    /// predicted. Consulted by the macro-tick scheduler every cycle; must be
    /// cheap. A kernel returning `Some` must honour the [`SpanPlan`]
    /// contract and implement [`Kernel::run_span`].
    ///
    /// `in_len` holds the committed queue length of each input port at plan
    /// time. Most kernels ignore it; a kernel that reads opportunistically
    /// (keeps ticking `Busy` without the read when a port is dry) uses it
    /// to decide between promising the read and suppressing it
    /// ([`SpanPlan::opt_reads`]) — the masks must describe what dense
    /// stepping will actually do, and for such kernels that depends on
    /// availability.
    ///
    /// The promise may be conservative: any `cycles ≥ 1` prefix of a longer
    /// uniform run is valid, and returning `None` merely falls the graph
    /// back to per-element ticking for that cycle.
    fn span_hint(&self, in_len: &[usize]) -> Option<SpanPlan> {
        let _ = in_len;
        None
    }

    /// A compact summary of the kernel's **control state** for the
    /// schedule-replay fingerprint (see [`crate::replay`]), or `None` (the
    /// default) to veto replay for any graph containing this kernel.
    ///
    /// Contract: the token must cover every piece of internal state that
    /// influences *port behaviour* — which ports the next ticks read/write,
    /// the tick verdicts, and any `span_hint` the kernel would offer. Two
    /// states with equal tokens (and equal visible stream state) must
    /// produce identical port traffic forever after. Position counters,
    /// absorb/emit phases, and pending-output depths belong in the token
    /// ([`crate::replay::token_mix`] folds several counters into one);
    /// element *values* do not, because port behaviour may not depend on
    /// them for a replayable kernel. Kernels with data-dependent control
    /// flow, external effects, or folded lanes must return `None`.
    fn replay_token(&self) -> Option<u64> {
        None
    }

    /// Process `n` cycles of the promised span in one dispatch: exactly `n`
    /// pops from each read-masked port, `n` pushes to each write-masked
    /// port, and the internal-state update of `n` consecutive `Busy` ticks.
    /// Only called with `1 ≤ n ≤ span_hint().cycles`; the default is
    /// unreachable for kernels that never return a promise.
    fn run_span(&mut self, io: &mut SpanIo<'_>, n: u64) {
        let _ = (io, n);
        unreachable!(
            "kernel '{}' offered a SpanPlan but does not implement run_span",
            self.name()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{StreamSpec, StreamState};

    fn setup() -> Vec<StreamState> {
        vec![
            StreamState::new(StreamSpec::new("in", 8, 4)),
            StreamState::new(StreamSpec::new("out", 8, 1)),
        ]
    }

    #[test]
    fn read_is_once_per_cycle() {
        let mut streams = setup();
        streams[0].queue.push_back(1);
        streams[0].queue.push_back(2);
        let (inputs, outputs) = (vec![0usize], vec![1usize]);
        let mut ru = vec![0u16];
        let mut wu = vec![0u16];
        let mut io = Io::new(&mut streams, &inputs, &outputs, &mut ru, &mut wu, 1, 1);
        assert_eq!(io.read(0), Some(1));
        assert!(!io.can_read(0), "second read in same cycle must be refused");
        assert_eq!(io.read(0), None);
    }

    #[test]
    fn write_is_staged_not_committed() {
        let mut streams = setup();
        let (inputs, outputs) = (vec![0usize], vec![1usize]);
        let mut ru = vec![0u16];
        let mut wu = vec![0u16];
        let mut io = Io::new(&mut streams, &inputs, &outputs, &mut ru, &mut wu, 1, 1);
        assert!(io.can_write(0));
        io.write(0, 9);
        assert!(!io.can_write(0));
        assert!(!streams[1].can_read());
        streams[1].commit();
        assert_eq!(streams[1].queue.front(), Some(&9));
    }

    #[test]
    #[should_panic(expected = "full stream")]
    fn write_into_full_stream_panics() {
        let mut streams = setup();
        streams[1].queue.push_back(0); // capacity 1 ⇒ full
        let (inputs, outputs) = (vec![0usize], vec![1usize]);
        let mut ru = vec![0u16];
        let mut wu = vec![0u16];
        let mut io = Io::new(&mut streams, &inputs, &outputs, &mut ru, &mut wu, 1, 1);
        io.write(0, 1);
    }

    #[test]
    fn multi_lane_io_moves_up_to_lane_count() {
        let mut streams = vec![
            StreamState::new(StreamSpec::new("in", 8, 8)),
            StreamState::new(StreamSpec::new("out", 8, 8)),
        ];
        for v in 0..3 {
            streams[0].queue.push_back(v);
        }
        let (inputs, outputs) = (vec![0usize], vec![1usize]);
        let mut ru = vec![0u16];
        let mut wu = vec![0u16];
        let mut io = Io::new(&mut streams, &inputs, &outputs, &mut ru, &mut wu, 2, 3);
        // Two read lanes: third same-cycle read refused even with data left.
        assert_eq!(io.read(0), Some(0));
        assert_eq!(io.read(0), Some(1));
        assert!(!io.can_read(0));
        assert_eq!(io.read(0), None);
        // Three write lanes, all staged until commit.
        io.write(0, 10);
        io.write(0, 11);
        assert!(io.can_write(0));
        io.write(0, 12);
        assert!(!io.can_write(0));
        assert!(!streams[1].can_read());
        streams[1].commit();
        assert_eq!(streams[1].queue.iter().copied().collect::<Vec<_>>(), vec![10, 11, 12]);
    }

    #[test]
    fn multi_lane_write_respects_capacity() {
        // Lane count above FIFO headroom: capacity still wins.
        let mut streams = vec![
            StreamState::new(StreamSpec::new("in", 8, 4)),
            StreamState::new(StreamSpec::new("out", 8, 2)),
        ];
        let (inputs, outputs) = (vec![0usize], vec![1usize]);
        let mut ru = vec![0u16];
        let mut wu = vec![0u16];
        let mut io = Io::new(&mut streams, &inputs, &outputs, &mut ru, &mut wu, 4, 4);
        io.write(0, 1);
        io.write(0, 2);
        assert!(!io.can_write(0), "staged writes count against capacity");
    }
}
