//! A cycle-approximate dataflow-engine (DFE) platform simulator — the
//! Maxeler MAX4 substitute used by this reproduction.
//!
//! The real platform runs MaxJ kernels on a Stratix V FPGA, connected by
//! on-chip streams, with multiple DFEs daisy-chained over MaxRing links.
//! This crate reproduces the *architectural* behaviour the paper's claims
//! rest on:
//!
//! * **Streams** are bounded FIFOs carrying one element per clock cycle.
//!   An element is one channel value of one pixel (depth-first order); the
//!   paper's own bandwidth arithmetic ("each pixel is represented by 2
//!   bits … 210 Mbps at 105 MHz", §III-B6) confirms this scalar
//!   channel-serial framing.
//! * **Kernels** are clocked state machines: each `tick` they may consume
//!   at most one element per input port and produce at most one element per
//!   output port, with writes becoming visible the *next* cycle (registered
//!   outputs). Backpressure is structural: a kernel cannot write into a
//!   full stream and therefore halts, exactly like the paper's
//!   halt-the-input convolution kernel.
//! * **The cycle scheduler** advances the graph one clock at a time and
//!   reports cycle counts, per-kernel busy/stall statistics and stream
//!   occupancies. It detects deadlock (no progress while sinks are
//!   incomplete). Two stepping strategies exist — the dense reference
//!   stepper and an event-driven ready-list stepper that parks
//!   stalled/idle kernels until a stream event — selected by
//!   [`SchedulerMode`] (env `QNN_SCHEDULER`); they are bit-identical in
//!   outputs and reports.
//! * **The multi-device executors** run the same kernel graph cut across
//!   devices connected by bounded channels. The lockstep default steps
//!   every device on one global clock, so outputs and cycle reports are
//!   bit-identical across runs; the free-running threaded variant (one OS
//!   thread per device) checks that the functional result is independent
//!   of the execution strategy.
//! * **Devices and MaxRing links** carry resource budgets and bandwidth
//!   limits so the compiler can place kernels onto multiple DFEs and verify
//!   link feasibility.

pub mod device;
pub mod graph;
pub mod host;
pub mod kernel;
pub mod replay;
pub mod ring;
pub mod sched;
pub mod stall;
pub mod stream;
pub mod threaded;
pub mod trace;

pub use device::{DeviceSpec, ResourceUsage, MAIA_FCLK_MHZ, STRATIX_10_GX2800, STRATIX_V_5SGSD8};
pub use graph::{CycleReport, Graph, KernelId, RunError, StreamId};
pub use host::{HostSink, HostSource, SinkHandle};
pub use kernel::{Io, Kernel, Progress, SpanIo, SpanPlan, WakeHint};
pub use replay::ReplayDiag;
pub use ring::MaxRing;
pub use sched::{
    macro_ticks_default, macro_ticks_from_env, schedule_replay_default, schedule_replay_from_env,
    SchedulerMode,
};
pub use stall::StallInjector;
pub use stream::StreamSpec;
pub use trace::Trace;
