//! Steady-state schedule replay — the third scheduler tier.
//!
//! The paper's pipeline is statically scheduled in hardware: every image
//! takes the identical path through the fabric, so at steady state the
//! simulator's scheduler re-derives the *same* wake/commit/burst decision
//! sequence once per image. This module records that sequence for one
//! period of the pipeline and replays it for subsequent identical periods,
//! skipping ready-list planning and `span_hint`/`try_burst` work entirely.
//!
//! ## Protocol
//!
//! A graph is *armed* with a marker stream and a period in elements
//! ([`Graph::set_replay_marker`](crate::Graph::set_replay_marker) — the
//! compiler uses the logits stream and the class count). Every time the
//! marker's popped-element count crosses a multiple of the period (a
//! **boundary**), the scheduler takes a *fingerprint*: every kernel's
//! [`replay_token`](crate::Kernel::replay_token), every park verdict, and
//! every stream's committed queue length. The state machine is then:
//!
//! * **Armed** — normal stepping; when two consecutive boundaries carry the
//!   same fingerprint the pipeline is periodic and recording starts.
//! * **Recording** — one period is stepped with an *aggressive* burst
//!   policy (`min_burst = 2`, no retry backoff) so even the short-phase
//!   residue that the default policy leaves to per-element stepping is
//!   mined into tiny spans — burst policy is a pure cost knob, so this is
//!   semantics-neutral. Each step (a dense cycle or a dispatched span with
//!   its participant plans, offsets, stream traffic, and pre-dispatch awake
//!   mask) is appended to the [`ScheduleTape`]. If the closing boundary's
//!   fingerprint still matches, the tape is valid and replay begins.
//! * **Replaying** — tape steps are executed directly: dense steps run the
//!   ordinary ready-list cycle (already event-driven), span steps re-check
//!   two cheap guards — the live awake mask equals the recorded one and
//!   every burst stream's queue length equals its recorded start length —
//!   and then re-dispatch the recorded plans through the same code path as
//!   a planned burst, with busy/stalled cycles and `max_occupancy` credited
//!   in closed form exactly as macro-ticks do. Any guard failure, a
//!   boundary arriving at the wrong tape position, or a fingerprint
//!   mismatch at a period boundary (e.g. the source running dry on the last
//!   image) falls the graph back to normal stepping and re-arms.
//! * **Vetoed** — any kernel without a replay token (a
//!   [`StallInjector`](crate::StallInjector), a cross-device channel, a
//!   folded-lane kernel, a custom kernel) permanently disables replay for
//!   the graph; boundaries are no longer even checked.
//!
//! ## Equivalence argument
//!
//! Replay inherits macro-ticks' bit-identity proof: a recorded span is
//! exactly a burst the planner admitted, and re-dispatching it is valid
//! whenever the graph state it was planned against recurs. The fingerprint
//! establishes that recurrence at period boundaries — equal tokens attest
//! equal *control* state (tokens must cover every counter that influences
//! port behaviour, which is why data-dependent kernels return `None`), and
//! equal queue lengths plus park verdicts pin the scheduler-visible state —
//! and determinism carries it forward step by step. The per-span guards are
//! belt-and-suspenders that also catch the non-periodic tail (final image,
//! mid-run reconfiguration) before any recorded plan could act on a state
//! it was not planned for. Dense steps are not replayed from the tape at
//! all — they run the ordinary stepper — so they cannot diverge.

use crate::kernel::{Progress, SpanPlan};

/// Schedule-replay diagnostics, surfaced on
/// [`CycleReport`](crate::CycleReport) next to the per-kernel counters.
/// Deliberately **excluded from report equality**: like
/// [`Graph::bursts`](crate::Graph::bursts), these describe how the run was
/// dispatched, not what it computed, and reports must stay bit-identical
/// across all three scheduler tiers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReplayDiag {
    /// Steps in the validated tape (dense runs + spans), 0 before a tape
    /// validates.
    pub tape_len: u64,
    /// Periods replayed to completion from the tape.
    pub images_replayed: u64,
    /// Guard-check failures that fell the graph back to normal stepping
    /// (span guards, tape-position checks, boundary fingerprint mismatches).
    pub guard_fallbacks: u64,
    /// Recorded spans re-dispatched without any planning.
    pub spans_bypassed: u64,
}

/// Fold `parts` into one 64-bit replay token (splitmix64-style mixing).
/// Helper for [`Kernel::replay_token`](crate::Kernel::replay_token)
/// implementations with more than one control counter.
pub fn token_mix(parts: &[u64]) -> u64 {
    let mut h = 0x9e37_79b9_7f4a_7c15u64;
    for &p in parts {
        let mut z = h ^ p.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        h = z ^ (z >> 31);
    }
    h
}

/// One recorded scheduler step.
#[derive(Clone, Copy)]
pub(crate) enum Step {
    /// `n` consecutive per-element ready-list cycles.
    Dense(u32),
    /// A dispatched span: an index into [`ScheduleTape::span_recs`].
    Span(u32),
}

/// One recorded span step: `(offset, len)` windows into the tape's flat
/// pools. Replay walks the tape front to back, so consecutive steps read
/// consecutive pool ranges — the layout keeps the replay loop's working set
/// sequential (an earlier interned-step variant deduplicated identical
/// steps into a shared pool, but steady-state spans rarely recur exactly —
/// offsets and stream lengths drift across the image — and the scattered
/// reads cost more than the ~25% of memory interning saved).
///
/// The recorded entries are *pruned*: participant entries whose dispatch is
/// a no-op (offset past the span end, no demotion, no ripen entry —
/// `dispatch_span` would skip them without touching any counter) and
/// streams with no span traffic are dropped. Pruning is what makes the
/// short mined spans cheap to replay — for a 3-cycle span most of the
/// planner's wavefront is exactly such dead weight.
#[derive(Clone, Copy)]
pub(crate) struct SpanRec {
    pub k: u64,
    pub plans: (u32, u32),
    pub ripen: (u32, u32),
    pub streams: (u32, u32),
    /// Awake-mask snapshot taken just before the recording burst attempt.
    pub mask: (u32, u32),
}

/// The recorded schedule of one steady-state period, as one `Step` list
/// plus flat side pools indexed by [`SpanRec`] windows.
#[derive(Default)]
pub(crate) struct ScheduleTape {
    pub steps: Vec<Step>,
    pub span_recs: Vec<SpanRec>,
    pub plan_pool: Vec<(usize, SpanPlan, u64, Option<Progress>)>,
    pub ripen_pool: Vec<(usize, u64)>,
    pub stream_pool: Vec<(usize, usize, u64, u64)>,
    pub mask_pool: Vec<u64>,
}

/// Recording aborts (vetoing replay) past this many pool entries — a
/// period too irregular to record compactly will not amortize anyway.
const TAPE_ENTRY_CAP: usize = 1 << 22;

fn window<T>(pool: &[T], w: (u32, u32)) -> &[T] {
    &pool[w.0 as usize..(w.0 + w.1) as usize]
}

impl ScheduleTape {
    pub fn clear(&mut self) {
        self.steps.clear();
        self.span_recs.clear();
        self.plan_pool.clear();
        self.ripen_pool.clear();
        self.stream_pool.clear();
        self.mask_pool.clear();
    }

    pub fn plans(&self, r: &SpanRec) -> &[(usize, SpanPlan, u64, Option<Progress>)] {
        window(&self.plan_pool, r.plans)
    }

    pub fn ripen(&self, r: &SpanRec) -> &[(usize, u64)] {
        window(&self.ripen_pool, r.ripen)
    }

    pub fn streams(&self, r: &SpanRec) -> &[(usize, usize, u64, u64)] {
        window(&self.stream_pool, r.streams)
    }

    pub fn mask(&self, r: &SpanRec) -> &[u64] {
        window(&self.mask_pool, r.mask)
    }

    fn entries(&self) -> usize {
        self.plan_pool.len() + self.ripen_pool.len() + self.stream_pool.len() + self.mask_pool.len()
    }

}

/// Replay control state machine (see the module docs).
#[derive(Debug)]
pub(crate) enum ReplayPhase {
    /// Watching boundary fingerprints for steady state.
    Armed { have_prev: bool },
    /// Appending steps to the tape until the next boundary validates it.
    Recording,
    /// Executing the tape; `step` is the cursor, `done` counts cycles
    /// already executed of a `Step::Dense` run.
    Replaying { step: usize, done: u32 },
    /// A kernel without a replay token — permanently off for this graph.
    Vetoed,
}

pub(crate) struct ReplayState {
    /// The `CompileOptions::schedule_replay` / `QNN_SCHED_REPLAY` knob.
    pub enabled: bool,
    /// Marker stream index and period in elements; `None` ⇒ never armed.
    pub marker: Option<(usize, u64)>,
    /// Next popped-count multiple that constitutes a boundary.
    pub next_target: u64,
    pub phase: ReplayPhase,
    pub tape: ScheduleTape,
    /// Dense cycles stepped since the last recorded span (flushed into one
    /// `Step::Dense` entry).
    pub pending_dense: u32,
    pub prev_fp: Vec<u64>,
    pub fp_scratch: Vec<u64>,
    /// Awake mask snapshot taken just before a recording burst attempt.
    pub mask_scratch: Vec<u64>,
    pub diag: ReplayDiag,
}

impl ReplayState {
    pub fn new(enabled: bool) -> Self {
        Self {
            enabled,
            marker: None,
            next_target: 0,
            phase: ReplayPhase::Armed { have_prev: false },
            tape: ScheduleTape::default(),
            pending_dense: 0,
            prev_fp: Vec::new(),
            fp_scratch: Vec::new(),
            mask_scratch: Vec::new(),
            diag: ReplayDiag::default(),
        }
    }

    /// Drop any tape and fingerprint history and return to `Armed` — the
    /// reset applied on guard failures and on mid-run reconfiguration
    /// (`set_scheduler` / `set_macro_ticks` / `set_schedule_replay`).
    /// Diagnostics counters survive (they describe the whole run).
    pub fn rearm(&mut self) {
        self.phase = ReplayPhase::Armed { have_prev: false };
        self.tape.clear();
        self.pending_dense = 0;
        self.prev_fp.clear();
    }

    pub fn snapshot_mask(&mut self, awake: &[u64]) {
        self.mask_scratch.clear();
        self.mask_scratch.extend_from_slice(awake);
    }

    pub fn record_dense(&mut self) {
        self.pending_dense += 1;
    }

    pub fn flush_dense(&mut self) {
        if self.pending_dense > 0 {
            self.tape.steps.push(Step::Dense(self.pending_dense));
            self.pending_dense = 0;
        }
    }

    /// Append a dispatched span (the scheduler's burst scratch, post-plan)
    /// to the tape, pruned of no-op participants and traffic-free streams
    /// (see [`SpanRec`]). Returns `false` when the tape overran its size
    /// cap — the caller vetoes replay for this graph.
    pub fn record_span(
        &mut self,
        k: u64,
        plans: &[(usize, SpanPlan, u64, Option<Progress>)],
        ripen: &[(usize, u64)],
        streams: &[(usize, usize, u64, u64)],
    ) -> bool {
        self.flush_dense();
        let t = &mut self.tape;
        let p0 = t.plan_pool.len() as u32;
        // A participant is replay-relevant when dispatch mutates state for
        // it: it runs (`o < k`), wakes at the span edge (`o == k`), replays
        // a demotion, or ripens. Anything else is `dispatch_span`'s bare
        // `continue` — dead weight on every future replay of this step.
        t.plan_pool.extend(plans.iter().copied().filter(|&(i, _, o, demoted)| {
            o <= k || demoted.is_some() || ripen.iter().any(|&(j, _)| j == i)
        }));
        let r0 = t.ripen_pool.len() as u32;
        t.ripen_pool.extend_from_slice(ripen);
        let s0 = t.stream_pool.len() as u32;
        t.stream_pool
            .extend(streams.iter().copied().filter(|&(.., pushes, pops)| pushes > 0 || pops > 0));
        let m0 = t.mask_pool.len() as u32;
        t.mask_pool.extend_from_slice(&self.mask_scratch);
        let ix = t.span_recs.len() as u32;
        t.span_recs.push(SpanRec {
            k,
            plans: (p0, t.plan_pool.len() as u32 - p0),
            ripen: (r0, t.ripen_pool.len() as u32 - r0),
            streams: (s0, t.stream_pool.len() as u32 - s0),
            mask: (m0, t.mask_pool.len() as u32 - m0),
        });
        t.steps.push(Step::Span(ix));
        t.entries() <= TAPE_ENTRY_CAP && t.steps.len() <= TAPE_ENTRY_CAP
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_mix_separates_nearby_states() {
        // Counter states differing by one element must not collide (the
        // fingerprint relies on it), and argument order must matter.
        let a = token_mix(&[10, 3, 0]);
        let b = token_mix(&[11, 3, 0]);
        let c = token_mix(&[3, 10, 0]);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, token_mix(&[10, 3, 0]), "deterministic");
    }

    #[test]
    fn tape_windows_recover_recorded_steps() {
        let mut st = ReplayState::new(true);
        let plan = SpanPlan::new(4, 0b1, 0b1);
        let plans_a = [(0usize, plan, 0u64, None)];
        let streams_a = [(0usize, 2usize, 4u64, 4u64)];
        let plans_b = [(1usize, plan, 0u64, None), (2usize, plan, 0u64, None)];
        let streams_b = [(1usize, 3usize, 6u64, 6u64)];
        st.snapshot_mask(&[0b01]);
        assert!(st.record_span(4, &plans_a, &[], &streams_a));
        st.snapshot_mask(&[0b110]);
        assert!(st.record_span(6, &plans_b, &[], &streams_b));
        assert_eq!(st.tape.steps.len(), 2);
        assert_eq!(st.tape.span_recs.len(), 2);
        let a = st.tape.span_recs[0];
        let b = st.tape.span_recs[1];
        assert_eq!(st.tape.plans(&a), plans_a);
        assert_eq!(st.tape.streams(&a), streams_a);
        assert_eq!(st.tape.mask(&a), [0b01]);
        assert_eq!(b.k, 6);
        assert_eq!(st.tape.plans(&b), plans_b);
        assert_eq!(st.tape.streams(&b), streams_b);
        assert_eq!(st.tape.mask(&b), [0b110]);
    }

    #[test]
    fn record_span_prunes_noop_participants_and_idle_streams() {
        let mut st = ReplayState::new(true);
        let plan = SpanPlan::new(4, 0b1, 0b1);
        let plans = [
            (0usize, plan, 0u64, None),                        // runs: kept
            (1usize, plan, 4u64, None),                        // wakes at edge: kept
            (2usize, plan, 7u64, None),                        // pure no-op: pruned
            (3usize, plan, u64::MAX, None),                    // pure no-op: pruned
            (4usize, plan, u64::MAX, Some(Progress::Stalled)), // demotion: kept
            (5usize, plan, u64::MAX, None),                    // ripens: kept
        ];
        let ripen = [(5usize, 2u64)];
        let streams = [
            (0usize, 3usize, 4u64, 4u64), // traffic: kept
            (1usize, 3usize, 0u64, 0u64), // no traffic: pruned
        ];
        st.snapshot_mask(&[0b111111]);
        assert!(st.record_span(4, &plans, &ripen, &streams));
        let rec = st.tape.span_recs[0];
        let kept: Vec<usize> = st.tape.plans(&rec).iter().map(|&(i, ..)| i).collect();
        assert_eq!(kept, [0, 1, 4, 5], "no-op participants pruned");
        assert_eq!(st.tape.streams(&rec).len(), 1, "traffic-free stream pruned");
        assert_eq!(st.tape.ripen(&rec), ripen);
    }

    #[test]
    fn dense_runs_flush_before_spans() {
        let mut st = ReplayState::new(true);
        st.record_dense();
        st.record_dense();
        st.snapshot_mask(&[0b1]);
        assert!(st.record_span(8, &[], &[], &[]));
        assert_eq!(st.tape.steps.len(), 2);
        assert!(matches!(st.tape.steps[0], Step::Dense(2)));
        assert!(matches!(st.tape.steps[1], Step::Span(0)));
    }
}
