//! MaxRing: the proprietary DFE-to-DFE link (paper §II-B, §III-B6).
//!
//! DFEs are daisy-chained; a design split across DFEs sends its cut streams
//! over the ring. The paper's feasibility argument: a 2-bit activation
//! stream at 105 MHz needs 210 Mbps, while the link "can be set to rates of
//! up to several Gbps" — so the cut is essentially free. [`MaxRing`] does
//! that arithmetic; [`DelayLine`] models the extra pipeline latency the hop
//! introduces in the cycle simulator.

use crate::kernel::{Io, Kernel, Progress, SpanIo, SpanPlan, WakeHint};
use std::collections::VecDeque;

/// A MaxRing link between two adjacent DFEs.
#[derive(Clone, Copy, Debug)]
pub struct MaxRing {
    /// Configured link rate in Gbps.
    pub rate_gbps: f64,
    /// One-way latency of the hop in fabric cycles.
    pub latency_cycles: u32,
}

impl Default for MaxRing {
    fn default() -> Self {
        // "up to several Gbps": a conservative 4 Gbps configuration, and a
        // realistic ~16-cycle serialization/deserialization latency.
        Self {
            rate_gbps: 4.0,
            latency_cycles: 16,
        }
    }
}

impl MaxRing {
    /// Bandwidth demanded by a cut of streams with the given widths (bits)
    /// at one element per cycle each, in Mbps.
    pub fn demand_mbps(stream_bits: &[u32], fclk_mhz: f64) -> f64 {
        stream_bits.iter().map(|&b| b as f64 * fclk_mhz).sum()
    }

    /// Can the link carry the cut?
    pub fn supports(&self, stream_bits: &[u32], fclk_mhz: f64) -> bool {
        Self::demand_mbps(stream_bits, fclk_mhz) <= self.rate_gbps * 1e3
    }

    /// Fraction of link capacity the cut uses.
    pub fn utilization(&self, stream_bits: &[u32], fclk_mhz: f64) -> f64 {
        Self::demand_mbps(stream_bits, fclk_mhz) / (self.rate_gbps * 1e3)
    }
}

/// A fixed-latency, full-throughput delay line: the cycle-simulator stand-in
/// for a MaxRing hop (or any deep pipeline register chain).
pub struct DelayLine {
    name: String,
    slots: VecDeque<Option<i32>>,
}

impl DelayLine {
    /// Create a delay line of `latency ≥ 1` cycles.
    pub fn new(name: impl Into<String>, latency: u32) -> Self {
        assert!(latency >= 1, "delay line needs at least one stage");
        Self {
            name: name.into(),
            slots: (0..latency).map(|_| None).collect(),
        }
    }
}

impl Kernel for DelayLine {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, io: &mut Io<'_>) -> Progress {
        let out_ready = self.slots.back().copied().flatten();
        if let Some(v) = out_ready {
            if !io.can_write(0) {
                // Output blocked: the whole line freezes this cycle.
                return Progress::Stalled;
            }
            io.write(0, v);
        }
        self.slots.pop_back();
        let incoming = io.read(0);
        let moved = incoming.is_some() || out_ready.is_some();
        self.slots.push_front(incoming);
        if moved {
            Progress::Busy
        } else {
            Progress::Idle
        }
    }

    /// A delay line is a timer: while elements are in flight, even a tick
    /// that touches no port shifts them toward the output, so it must keep
    /// ticking. Only a fully drained line is a fixed point.
    fn wake_hint(&self) -> WakeHint {
        if self.slots.iter().all(Option::is_none) {
            WakeHint::Parkable
        } else {
            WakeHint::AlwaysTick
        }
    }

    /// Uniform only when every slot is occupied: then each tick emits the
    /// back slot and refills the front, keeping the line full. A line with
    /// bubbles shifts them without port activity (that's the timer
    /// behaviour behind `AlwaysTick`), so it makes no promise.
    fn span_hint(&self, _in_len: &[usize]) -> Option<SpanPlan> {
        if self.slots.iter().all(Option::is_some) {
            Some(SpanPlan::new(u64::MAX, 1, 1))
        } else {
            None
        }
    }

    fn run_span(&mut self, io: &mut SpanIo<'_>, n: u64) {
        for _ in 0..n {
            let v = self
                .slots
                .pop_back()
                .flatten()
                .expect("span over a full delay line");
            io.push(0, v);
            self.slots.push_front(Some(io.pop(0)));
        }
    }

    /// The occupancy pattern (which slots hold an element) is the control
    /// state — the element values are data. Packed into 64-slot words and
    /// mixed; the cost is paid only at image boundaries, where fingerprints
    /// are taken.
    fn replay_token(&self) -> Option<u64> {
        let mut words = Vec::with_capacity(self.slots.len().div_ceil(64));
        let mut word = 0u64;
        for (i, slot) in self.slots.iter().enumerate() {
            if slot.is_some() {
                word |= 1 << (i % 64);
            }
            if i % 64 == 63 {
                words.push(word);
                word = 0;
            }
        }
        if self.slots.len() % 64 != 0 {
            words.push(word);
        }
        Some(crate::replay::token_mix(&words))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use crate::host::{HostSink, HostSource};
    use crate::stream::StreamSpec;

    #[test]
    fn paper_bandwidth_example_fits_easily() {
        let ring = MaxRing::default();
        // One 2-bit stream at 105 MHz = 210 Mbps ≪ 4 Gbps.
        assert!(ring.supports(&[2], 105.0));
        assert!((MaxRing::demand_mbps(&[2], 105.0) - 210.0).abs() < 1e-9);
        assert!(ring.utilization(&[2], 105.0) < 0.06);
    }

    #[test]
    fn wide_cut_can_saturate_ring() {
        let ring = MaxRing {
            rate_gbps: 1.0,
            latency_cycles: 16,
        };
        // Twenty 16-bit streams at 105 MHz = 33.6 Gbps > 1 Gbps.
        let cut = [16u32; 20];
        assert!(!ring.supports(&cut, 105.0));
    }

    #[test]
    fn delay_line_adds_exact_latency_and_keeps_throughput() {
        let n: usize = 50;
        let latency = 7;
        let mut g = Graph::new();
        let a = g.add_stream(StreamSpec::new("a", 8, 4));
        let b = g.add_stream(StreamSpec::new("b", 8, 4));
        g.add_kernel(
            Box::new(HostSource::new("src", (0..n as i32).collect())),
            &[],
            &[a],
        );
        g.add_kernel(Box::new(DelayLine::new("hop", latency)), &[a], &[b]);
        let (sink, handle) = HostSink::new("dst", n);
        g.add_kernel(Box::new(sink), &[b], &[]);
        let report = g.run(10_000).expect("run ok");
        assert_eq!(handle.take(), (0..n as i32).collect::<Vec<_>>());
        // Cycles ≈ n + latency + scheduler edges; throughput must stay 1/cycle.
        assert!(
            report.cycles as usize >= n + latency as usize,
            "latency unmodeled: {}",
            report.cycles
        );
        assert!(
            report.cycles as usize <= n + latency as usize + 5,
            "throughput lost: {}",
            report.cycles
        );
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn zero_latency_rejected() {
        let _ = DelayLine::new("bad", 0);
    }
}
