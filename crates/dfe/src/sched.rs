//! Scheduler mode selection for the cycle simulator.
//!
//! The graph executor has two cycle-stepping strategies that produce
//! **bit-identical** outputs and [`CycleReport`](crate::CycleReport)s:
//!
//! * [`SchedulerMode::Dense`] — the original stepper: every kernel is
//!   ticked on every cycle, in node order. Simple, obviously correct,
//!   and O(kernels) work per cycle even when the pipeline is mostly
//!   drained or starved.
//! * [`SchedulerMode::ReadyList`] — the event-driven stepper: a kernel
//!   that reported [`Stalled`](crate::Progress::Stalled) or
//!   [`Idle`](crate::Progress::Idle) and whose
//!   [`wake_hint`](crate::Kernel::wake_hint) is
//!   [`Parkable`](crate::kernel::WakeHint::Parkable) is *parked* and not
//!   ticked again until one of its streams sees an event (an input gains
//!   an element at commit, or an output gains free space when its reader
//!   pops). While parked, the kernel's last verdict is replayed into the
//!   busy/stall counters, so reports match the dense stepper exactly.
//!   See DESIGN.md §"Ready-list scheduler" for the equivalence argument.
//!
//! The default mode is read once from the `QNN_SCHEDULER` environment
//! variable (`dense` or `ready`; unset ⇒ `ready`) and cached for the
//! process, so every `Graph::new()` — including the ones built inside
//! `qnn-serve` replica workers — picks it up without plumbing. Call sites
//! that need a specific mode (the differential test battery, the
//! `scheduler_overhead` bench) set it explicitly via
//! [`Graph::set_scheduler`](crate::Graph::set_scheduler) or the
//! compiler's `CompileOptions::scheduler`.

use std::sync::OnceLock;

/// Which cycle-stepping strategy a [`Graph`](crate::Graph) uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SchedulerMode {
    /// Tick every kernel every cycle (the reference stepper).
    Dense,
    /// Skip parked kernels until a stream event wakes them.
    ReadyList,
}

impl SchedulerMode {
    /// Resolve the mode from `QNN_SCHEDULER` (`dense` / `ready`,
    /// case-insensitive; unset defaults to `ReadyList`).
    ///
    /// # Panics
    /// Panics on an unrecognized value — a typo silently falling back to a
    /// default would make benchmark A/B runs lie.
    pub fn from_env() -> Self {
        match std::env::var("QNN_SCHEDULER") {
            Ok(v) => match v.to_ascii_lowercase().as_str() {
                "dense" => SchedulerMode::Dense,
                "ready" | "readylist" | "ready-list" => SchedulerMode::ReadyList,
                other => panic!("QNN_SCHEDULER='{other}' (expected 'dense' or 'ready')"),
            },
            Err(_) => SchedulerMode::ReadyList,
        }
    }

    /// Process-wide default: `from_env`, resolved once and cached.
    pub(crate) fn default_mode() -> Self {
        static MODE: OnceLock<SchedulerMode> = OnceLock::new();
        *MODE.get_or_init(Self::from_env)
    }
}

impl Default for SchedulerMode {
    /// The process default (see [`SchedulerMode::from_env`]).
    fn default() -> Self {
        Self::default_mode()
    }
}

/// Resolve macro-tick span dispatch from `QNN_MACRO_TICKS` (`1`/`on`/`true`
/// enable, `0`/`off`/`false` disable, case-insensitive; unset defaults to
/// **enabled**). Macro-ticks only take effect under
/// [`SchedulerMode::ReadyList`]; the dense stepper ignores the flag.
///
/// # Panics
/// Panics on an unrecognized value — a typo silently falling back to a
/// default would make benchmark A/B runs lie (same rule as
/// [`SchedulerMode::from_env`]).
pub fn macro_ticks_from_env() -> bool {
    match std::env::var("QNN_MACRO_TICKS") {
        Ok(v) => match v.to_ascii_lowercase().as_str() {
            "1" | "on" | "true" => true,
            "0" | "off" | "false" => false,
            other => panic!("QNN_MACRO_TICKS='{other}' (expected '0' or '1')"),
        },
        Err(_) => true,
    }
}

/// Process-wide default for macro-ticks: `macro_ticks_from_env`, resolved
/// once and cached (same lifecycle as [`SchedulerMode::default`]).
pub fn macro_ticks_default() -> bool {
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(macro_ticks_from_env)
}

/// Resolve steady-state schedule replay from `QNN_SCHED_REPLAY`
/// (`1`/`on`/`true` enable, `0`/`off`/`false` disable, case-insensitive;
/// unset defaults to **enabled**). Replay only takes effect under
/// [`SchedulerMode::ReadyList`] on a graph armed with a replay marker (the
/// compiler arms single-device pipelines); see [`crate::replay`].
///
/// # Panics
/// Panics on an unrecognized value — a typo silently falling back to a
/// default would make benchmark A/B runs lie (same rule as
/// [`SchedulerMode::from_env`]).
pub fn schedule_replay_from_env() -> bool {
    match std::env::var("QNN_SCHED_REPLAY") {
        Ok(v) => match v.to_ascii_lowercase().as_str() {
            "1" | "on" | "true" => true,
            "0" | "off" | "false" => false,
            other => panic!("QNN_SCHED_REPLAY='{other}' (expected '0' or '1')"),
        },
        Err(_) => true,
    }
}

/// Process-wide default for schedule replay: `schedule_replay_from_env`,
/// resolved once and cached (same lifecycle as [`SchedulerMode::default`]).
pub fn schedule_replay_default() -> bool {
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(schedule_replay_from_env)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macro_ticks_default_on_when_env_unset() {
        if std::env::var("QNN_MACRO_TICKS").is_err() {
            assert!(macro_ticks_from_env(), "span dispatch defaults to on");
        }
    }

    #[test]
    fn schedule_replay_default_on_when_env_unset() {
        if std::env::var("QNN_SCHED_REPLAY").is_err() {
            assert!(schedule_replay_from_env(), "schedule replay defaults to on");
        }
    }

    #[test]
    fn default_is_ready_list_when_env_unset() {
        // The test harness does not set QNN_SCHEDULER; the cached default
        // must be the event-driven mode.
        if std::env::var("QNN_SCHEDULER").is_err() {
            assert_eq!(SchedulerMode::default(), SchedulerMode::ReadyList);
        }
    }
}
