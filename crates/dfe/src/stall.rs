//! Random stall injection — a test instrument for handshake correctness.
//!
//! [`StallInjector`] wraps any [`Kernel`] and, on a random subset of
//! cycles, withholds the tick entirely (returning [`Progress::Stalled`]
//! without touching the ports). To the rest of the graph this looks like
//! the wrapped kernel being flow-controlled by an invisible agent — the
//! clock-domain jitter, PCIe arbitration and MaxRing credit delays a real
//! DFE deployment exhibits. A kernel whose output depends only on the data
//! (as the clocked contract requires) must produce identical streams with
//! and without injection; the property suites assert exactly that.
//!
//! The injector embeds its own tiny splitmix64 generator rather than
//! depending on `qnn-testkit`, so the platform crate stays free of
//! dev-only dependencies and the stall pattern for a given seed is stable
//! no matter which harness drives the graph.
//!
//! Note on scheduling: the cycle scheduler's deadlock detector treats a
//! full no-progress cycle as fatal, and an injected stall can legitimately
//! produce one. Drive graphs containing injectors with
//! [`Graph::run_opts`](crate::Graph::run_opts) and deadlock detection
//! disabled (the timeout budget still bounds the run).

use crate::kernel::{Io, Kernel, Progress, WakeHint};

/// Wraps a kernel and randomly suppresses its ticks. See the module docs.
pub struct StallInjector {
    inner: Box<dyn Kernel>,
    state: u64,
    stall_percent: u8,
    injected: u64,
}

impl StallInjector {
    /// Wrap `inner`, stalling it on ~`stall_percent`% of cycles with a
    /// pattern derived deterministically from `seed`.
    ///
    /// # Panics
    /// Panics when `stall_percent >= 100` — a kernel that never ticks
    /// cannot make progress and every run would time out.
    pub fn new(inner: Box<dyn Kernel>, seed: u64, stall_percent: u8) -> Self {
        assert!(
            stall_percent < 100,
            "stall_percent {stall_percent} leaves no progress cycles"
        );
        Self {
            inner,
            state: seed,
            stall_percent,
            injected: 0,
        }
    }

    /// Boxed convenience for `Graph::add_kernel` call sites.
    pub fn wrap(inner: Box<dyn Kernel>, seed: u64, stall_percent: u8) -> Box<dyn Kernel> {
        Box::new(Self::new(inner, seed, stall_percent))
    }

    /// Stalls injected so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    fn next(&mut self) -> u64 {
        // splitmix64: one add + two xor-multiply mixes; full period in the
        // 64-bit state, so the stall pattern never cycles within a run.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl Kernel for StallInjector {
    /// Transparent in reports: the injected stalls are accounted to the
    /// wrapped kernel's name, where a flow-control stall would appear.
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn tick(&mut self, io: &mut Io<'_>) -> Progress {
        if self.stall_percent > 0 && self.next() % 100 < u64::from(self.stall_percent) {
            self.injected += 1;
            return Progress::Stalled;
        }
        self.inner.tick(io)
    }

    fn is_done(&self) -> bool {
        self.inner.is_done()
    }

    /// Never parkable, whatever the wrapped kernel says: the injector's RNG
    /// advances on every tick, so skipping ticks would shift the stall
    /// pattern and change cycle timing relative to the dense scheduler.
    fn wake_hint(&self) -> WakeHint {
        WakeHint::AlwaysTick
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use crate::host::{HostSink, HostSource};
    use crate::stream::StreamSpec;

    /// Pass-through incrementer, one element per cycle.
    struct Inc;
    impl Kernel for Inc {
        fn name(&self) -> &str {
            "inc"
        }
        fn tick(&mut self, io: &mut Io<'_>) -> Progress {
            if io.can_read(0) && io.can_write(0) {
                let v = io.read(0).expect("checked");
                io.write(0, v + 1);
                Progress::Busy
            } else if io.can_read(0) {
                Progress::Stalled
            } else {
                Progress::Idle
            }
        }
    }

    fn run_inc(stall: Option<(u64, u8)>) -> (Vec<i32>, u64) {
        let mut g = Graph::new();
        let a = g.add_stream(StreamSpec::new("a", 16, 4));
        let b = g.add_stream(StreamSpec::new("b", 16, 4));
        g.add_kernel(
            Box::new(HostSource::new("src", (0..50).collect())),
            &[],
            &[a],
        );
        let inc: Box<dyn Kernel> = Box::new(Inc);
        let inc = match stall {
            Some((seed, pct)) => StallInjector::wrap(inc, seed, pct),
            None => inc,
        };
        g.add_kernel(inc, &[a], &[b]);
        let (sink, h) = HostSink::new("dst", 50);
        g.add_kernel(Box::new(sink), &[b], &[]);
        let report = g.run_opts(100_000, false).expect("run");
        (h.take(), report.cycles)
    }

    #[test]
    fn injection_preserves_the_data_stream() {
        let (clean, clean_cycles) = run_inc(None);
        let (stalled, stalled_cycles) = run_inc(Some((7, 40)));
        assert_eq!(clean, stalled);
        assert!(
            stalled_cycles > clean_cycles,
            "40% injection did not slow the run ({clean_cycles} vs {stalled_cycles})"
        );
    }

    #[test]
    fn same_seed_gives_identical_timing() {
        assert_eq!(run_inc(Some((123, 30))), run_inc(Some((123, 30))));
    }

    #[test]
    fn different_seeds_give_different_timing() {
        let (_, a) = run_inc(Some((1, 30)));
        let (_, b) = run_inc(Some((2, 30)));
        assert_ne!(a, b, "cycle counts should differ across stall patterns");
    }

    #[test]
    fn zero_percent_injects_nothing() {
        let inj = StallInjector::new(Box::new(Inc), 5, 0);
        let (clean, clean_cycles) = run_inc(None);
        let (stalled, stalled_cycles) = run_inc(Some((5, 0)));
        assert_eq!((clean, clean_cycles), (stalled, stalled_cycles));
        assert_eq!(inj.injected(), 0);
        assert_eq!(inj.name(), "inc");
    }

    #[test]
    #[should_panic(expected = "no progress cycles")]
    fn full_stall_rate_is_rejected() {
        let _ = StallInjector::new(Box::new(Inc), 0, 100);
    }
}
