//! Bounded streams: the FMem-backed FIFOs connecting kernels.

use std::collections::VecDeque;

/// Static description of a stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StreamSpec {
    /// Display name (used in reports and deadlock diagnostics).
    pub name: String,
    /// Payload width in bits — 2 for activation codes, 8 for input pixels,
    /// 16 for skip data, 32 for logits. Used for FMem sizing and MaxRing
    /// bandwidth checks, not for value storage (values are `i32` in the
    /// simulator).
    pub bits: u32,
    /// FIFO capacity in elements. The paper's inter-kernel buffers live in
    /// FMem and are small; the default used by the compiler is 512.
    pub capacity: usize,
}

impl StreamSpec {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, bits: u32, capacity: usize) -> Self {
        assert!(
            capacity > 0,
            "streams need capacity of at least one element"
        );
        assert!((1..=32).contains(&bits), "stream width must be 1..=32 bits");
        Self {
            name: name.into(),
            bits,
            capacity,
        }
    }

    /// FMem bits occupied by the full FIFO.
    pub fn fmem_bits(&self) -> usize {
        self.bits as usize * self.capacity
    }

    /// Bandwidth in megabits per second this stream needs at `fclk_mhz` when
    /// it carries one element per cycle (paper §III-B6's 2 bit × 105 MHz =
    /// 210 Mbps example).
    pub fn bandwidth_mbps(&self, fclk_mhz: f64) -> f64 {
        self.bits as f64 * fclk_mhz
    }
}

/// Runtime state of a stream inside the cycle scheduler.
///
/// Writes land in `staged` and are committed to `queue` at the end of the
/// cycle, modeling registered kernel outputs: a value written in cycle `t`
/// is readable in cycle `t+1`, regardless of kernel iteration order.
#[derive(Debug)]
pub(crate) struct StreamState {
    pub spec: StreamSpec,
    pub queue: VecDeque<i32>,
    pub staged: Vec<i32>,
    /// Total elements ever pushed (for throughput accounting).
    pub pushed: u64,
    /// High-water mark of committed occupancy.
    pub max_occupancy: usize,
}

impl StreamState {
    pub fn new(spec: StreamSpec) -> Self {
        let cap = spec.capacity;
        Self {
            spec,
            queue: VecDeque::with_capacity(cap),
            staged: Vec::with_capacity(4),
            pushed: 0,
            max_occupancy: 0,
        }
    }

    /// Committed + staged occupancy (what a writer must respect).
    pub fn total_len(&self) -> usize {
        self.queue.len() + self.staged.len()
    }

    pub fn can_write(&self) -> bool {
        self.total_len() < self.spec.capacity
    }

    pub fn can_read(&self) -> bool {
        !self.queue.is_empty()
    }

    /// Drain staged writes into the FIFO; returns how many elements were
    /// committed.
    ///
    /// `max_occupancy` is sampled *after* the drain, so the high-water mark
    /// reflects committed end-of-cycle occupancy. Both schedulers rely on
    /// this ordering: the ready-list stepper commits only streams written
    /// this cycle, which is safe exactly because occupancy can only grow at
    /// a commit — an uncommitted stream's queue either shrank (reader pop)
    /// or held still, so skipping its sample never misses a new maximum.
    pub fn commit(&mut self) -> usize {
        let n = self.staged.len();
        for v in self.staged.drain(..) {
            self.queue.push_back(v);
        }
        self.max_occupancy = self.max_occupancy.max(self.queue.len());
        n
    }

    /// Record the occupancy high-water mark of a **batched span commit**:
    /// `pushes` elements entered and `pops` left over a span of cycles at
    /// one element per cycle each, starting from committed length
    /// `start_len`.
    ///
    /// Sampling the live queue after a batch is wrong in both directions.
    /// The span dispatcher moves all of a writer's elements before its
    /// reader runs, so mid-batch the queue transiently holds
    /// `start_len + pushes` elements — a peak dense stepping never exhibits
    /// when the reader drains concurrently. And sampling after the reader's
    /// pops is only right by accident: dense samples at every end-of-cycle
    /// commit, so the true peak is the trajectory maximum over the span's
    /// commit cycles. The writer pushes one element per cycle over its last
    /// `pushes` cycles and the reader pops one over its last `pops` (the
    /// wavefront dispatcher starts them at different offsets), so on every
    /// sampled cycle the length moves by ±1 or holds — a trajectory whose
    /// maximum over sampled (push) cycles closes to
    /// `start_len + pushes − pops`, the final cycle's pre-drain length.
    /// `pops` may exceed `pushes` (a late-offset writer against a reader
    /// draining the buffered lead), which is why the peak is signed.
    /// Spans with no pushes commit nothing, so (matching
    /// [`StreamState::commit`]'s skip rule) they never sample at all.
    pub fn note_span(&mut self, start_len: usize, pushes: u64, pops: u64) {
        if pushes == 0 {
            return;
        }
        let peak = start_len as i64 + pushes as i64 - pops as i64;
        debug_assert!(
            0 <= peak && peak as usize <= self.spec.capacity,
            "span peak {} outside 0..={} on '{}'",
            peak,
            self.spec.capacity,
            self.spec.name
        );
        self.max_occupancy = self.max_occupancy.max(peak as usize);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_matches_paper_example() {
        // 2-bit pixels at 105 MHz ⇒ 210 Mbps (paper §III-B6).
        let s = StreamSpec::new("dfe-link", 2, 512);
        assert_eq!(s.bandwidth_mbps(105.0), 210.0);
    }

    #[test]
    fn staged_writes_are_invisible_until_commit() {
        let mut st = StreamState::new(StreamSpec::new("s", 2, 4));
        st.staged.push(7);
        assert!(!st.can_read());
        st.commit();
        assert!(st.can_read());
        assert_eq!(st.queue.pop_front(), Some(7));
    }

    #[test]
    fn capacity_counts_staged_elements() {
        let mut st = StreamState::new(StreamSpec::new("s", 2, 2));
        st.staged.push(1);
        st.staged.push(2);
        assert!(!st.can_write());
        st.commit();
        assert!(!st.can_write());
        st.queue.pop_front();
        assert!(st.can_write());
    }

    #[test]
    fn commit_reports_count_and_samples_occupancy_after_drain() {
        let mut st = StreamState::new(StreamSpec::new("s", 2, 8));
        st.staged.push(1);
        st.staged.push(2);
        assert_eq!(
            st.max_occupancy, 0,
            "occupancy must not count staged elements"
        );
        assert_eq!(st.commit(), 2);
        assert_eq!(st.max_occupancy, 2, "sampled after the drain");
        st.queue.pop_front();
        assert_eq!(st.commit(), 0, "empty commit moves nothing");
        assert_eq!(st.max_occupancy, 2, "high-water mark never regresses");
    }

    /// Regression (macro-tick span commits): a fill-while-drain batch must
    /// record the dense trajectory's peak — the start length when rates
    /// cancel — not the transient post-batch bulk and not the drained end
    /// state.
    #[test]
    fn span_commit_samples_trajectory_peak_not_batch_state() {
        let mut st = StreamState::new(StreamSpec::new("s", 2, 8));
        // Steady state: 3 elements queued, then a 4-cycle span in which the
        // writer pushes 4 and the reader pops 4 (dense: length pinned at 3).
        for v in 0..3 {
            st.queue.push_back(v);
        }
        st.note_span(3, 4, 4);
        assert_eq!(
            st.max_occupancy, 3,
            "rate-matched span must sample the constant dense length"
        );
        // Fill-only span: 2 more pushes with a parked reader peak at 5.
        st.note_span(3, 2, 0);
        assert_eq!(st.max_occupancy, 5, "fill-only span peaks at the end");
        // Drain-only span: no commits happen, so no sample is taken even
        // though the queue was longer at span start than the recorded max.
        st.max_occupancy = 0;
        st.note_span(5, 0, 4);
        assert_eq!(st.max_occupancy, 0, "pop-only spans never sample");
    }

    #[test]
    fn fmem_accounting() {
        let s = StreamSpec::new("s", 16, 1024);
        assert_eq!(s.fmem_bits(), 16 * 1024);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = StreamSpec::new("s", 2, 0);
    }
}
