//! Threaded multi-DFE execution: one OS thread per device graph, connected
//! by bounded channels standing in for MaxRing hops.
//!
//! Each DFE has its own clock domain (its own cycle-stepped scheduler); the
//! only coupling is the bounded channel, exactly like the real platform's
//! daisy-chained DFEs coupled by a rate-limited serial link. This executor
//! demonstrates the paper's scale-out claim: the same kernel graph, cut at
//! layer boundaries, runs across devices with results identical to the
//! single-device run.

use crate::graph::{CycleReport, Graph, RunError};
use crate::kernel::{Io, Kernel, Progress};
use crossbeam::channel::{bounded, Receiver, Sender, TryRecvError, TrySendError};

/// Create a channel-backed inter-device link of `capacity` elements,
/// returning the egress kernel (placed on the upstream device) and ingress
/// kernel (placed on the downstream device).
pub fn link(
    name: &str,
    capacity: usize,
    expected: u64,
) -> (ChannelEgress, ChannelIngress) {
    let (tx, rx) = bounded(capacity);
    (
        ChannelEgress { name: format!("{name}.tx"), tx, pending: None, sent: 0, expected },
        ChannelIngress { name: format!("{name}.rx"), rx, received: 0, expected },
    )
}

/// Sends its input stream into an inter-device channel.
pub struct ChannelEgress {
    name: String,
    tx: Sender<i32>,
    pending: Option<i32>,
    sent: u64,
    expected: u64,
}

impl Kernel for ChannelEgress {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, io: &mut Io<'_>) -> Progress {
        if self.pending.is_none() {
            self.pending = io.read(0);
        }
        match self.pending {
            Some(v) => match self.tx.try_send(v) {
                Ok(()) => {
                    self.pending = None;
                    self.sent += 1;
                    Progress::Busy
                }
                Err(TrySendError::Full(_)) => Progress::Stalled,
                Err(TrySendError::Disconnected(_)) => {
                    panic!("downstream device of '{}' hung up", self.name)
                }
            },
            None => {
                if self.sent >= self.expected {
                    Progress::Idle
                } else {
                    Progress::Stalled
                }
            }
        }
    }

    fn is_done(&self) -> bool {
        self.sent >= self.expected && self.pending.is_none()
    }
}

/// Feeds elements arriving from an inter-device channel into its output
/// stream.
pub struct ChannelIngress {
    name: String,
    rx: Receiver<i32>,
    received: u64,
    expected: u64,
}

impl Kernel for ChannelIngress {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, io: &mut Io<'_>) -> Progress {
        if self.received >= self.expected {
            return Progress::Idle;
        }
        if !io.can_write(0) {
            return Progress::Stalled;
        }
        match self.rx.try_recv() {
            Ok(v) => {
                io.write(0, v);
                self.received += 1;
                Progress::Busy
            }
            Err(TryRecvError::Empty) => Progress::Stalled,
            Err(TryRecvError::Disconnected) => {
                panic!("upstream device of '{}' hung up early", self.name)
            }
        }
    }
}

/// Run several device graphs concurrently, one thread each.
///
/// Returns each device's cycle report in input order. Deadlock detection is
/// disabled inside each device (cross-device waits are legitimate); a
/// `max_cycles` budget per device bounds runaway executions instead.
pub fn run_devices(
    graphs: Vec<Graph>,
    max_cycles: u64,
) -> Result<Vec<CycleReport>, RunError> {
    let results = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = graphs
            .into_iter()
            .map(|mut g| scope.spawn(move |_| g.run_opts(max_cycles, false)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("device thread panicked"))
            .collect::<Vec<_>>()
    })
    .expect("executor scope panicked");
    results.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::{HostSink, HostSource};
    use crate::stream::StreamSpec;

    /// Build a two-device pipeline: device 0 negates, device 1 doubles.
    fn two_device_setup(data: Vec<i32>) -> (Vec<Graph>, crate::host::SinkHandle) {
        struct Map(fn(i32) -> i32, &'static str);
        impl Kernel for Map {
            fn name(&self) -> &str {
                self.1
            }
            fn tick(&mut self, io: &mut Io<'_>) -> Progress {
                if io.can_read(0) && io.can_write(0) {
                    let v = io.read(0).expect("checked");
                    io.write(0, (self.0)(v));
                    Progress::Busy
                } else {
                    Progress::Stalled
                }
            }
        }

        let n = data.len();
        let (egress, ingress) = link("ring0", 64, n as u64);

        let mut d0 = Graph::new();
        let a = d0.add_stream(StreamSpec::new("a", 8, 8));
        let b = d0.add_stream(StreamSpec::new("b", 8, 8));
        d0.add_kernel(Box::new(HostSource::new("src", data)), &[], &[a]);
        d0.add_kernel(Box::new(Map(|v| -v, "negate")), &[a], &[b]);
        d0.add_kernel(Box::new(egress), &[b], &[]);

        let mut d1 = Graph::new();
        let c = d1.add_stream(StreamSpec::new("c", 8, 8));
        let d = d1.add_stream(StreamSpec::new("d", 8, 8));
        d1.add_kernel(Box::new(ingress), &[], &[c]);
        d1.add_kernel(Box::new(Map(|v| v * 2, "double")), &[c], &[d]);
        let (sink, handle) = HostSink::new("dst", n);
        d1.add_kernel(Box::new(sink), &[d], &[]);

        (vec![d0, d1], handle)
    }

    #[test]
    fn two_devices_compute_the_composition() {
        let (graphs, handle) = two_device_setup(vec![1, 2, 3, 4, 5]);
        let reports = run_devices(graphs, 1_000_000).expect("run ok");
        assert_eq!(reports.len(), 2);
        assert_eq!(handle.take(), vec![-2, -4, -6, -8, -10]);
    }

    #[test]
    fn cross_device_ordering_is_preserved_under_load() {
        let n = 2000;
        let (graphs, handle) = two_device_setup((0..n).collect());
        run_devices(graphs, 10_000_000).expect("run ok");
        let out = handle.take();
        assert_eq!(out.len(), n as usize);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, -2 * i as i32);
        }
    }
}
