//! Multi-DFE execution: device graphs connected by bounded channels
//! standing in for MaxRing hops.
//!
//! Two executors share the same [`link`] kernels:
//!
//! * [`run_devices`] — the default, **lockstep** executor. One global
//!   clock; every device is stepped exactly once per edge, in device
//!   order. Cycle reports (including per-kernel busy/stall tallies) are
//!   bit-identical across runs, which is what regression gating and the
//!   paper's cycle-count claims need.
//! * [`run_devices_threaded`] — one OS thread per device, each free-running
//!   its own clock domain, exactly like the real platform's daisy-chained
//!   DFEs coupled by a rate-limited serial link. Outputs are identical to
//!   the lockstep run (FIFO links preserve order), but cycle counts depend
//!   on OS scheduling, so reports are *not* reproducible.
//!
//! Both demonstrate the paper's scale-out claim: the same kernel graph,
//! cut at layer boundaries, runs across devices with results identical to
//! the single-device run.

use crate::graph::{CycleReport, Graph, RunError};
use crate::kernel::{Io, Kernel, Progress, WakeHint};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TryRecvError, TrySendError};

/// Create a channel-backed inter-device link of `capacity` elements,
/// returning the egress kernel (placed on the upstream device) and ingress
/// kernel (placed on the downstream device).
///
/// `std::sync::mpsc::sync_channel` is a bounded rendezvous-or-buffered
/// queue: `try_send` fails with `Full` once `capacity` elements are in
/// flight, which is exactly the MaxRing backpressure the egress kernel
/// translates into a pipeline stall.
pub fn link(name: &str, capacity: usize, expected: u64) -> (ChannelEgress, ChannelIngress) {
    assert!(capacity > 0, "a zero-capacity link can never make progress");
    let (tx, rx) = sync_channel(capacity);
    (
        ChannelEgress {
            name: format!("{name}.tx"),
            tx,
            pending: None,
            sent: 0,
            expected,
        },
        ChannelIngress {
            name: format!("{name}.rx"),
            rx,
            received: 0,
            expected,
        },
    )
}

/// Sends its input stream into an inter-device channel.
pub struct ChannelEgress {
    name: String,
    tx: SyncSender<i32>,
    pending: Option<i32>,
    sent: u64,
    expected: u64,
}

impl Kernel for ChannelEgress {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, io: &mut Io<'_>) -> Progress {
        if self.pending.is_none() {
            self.pending = io.read(0);
        }
        match self.pending {
            Some(v) => match self.tx.try_send(v) {
                Ok(()) => {
                    self.pending = None;
                    self.sent += 1;
                    Progress::Busy
                }
                Err(TrySendError::Full(_)) => Progress::Stalled,
                Err(TrySendError::Disconnected(_)) => {
                    panic!("downstream device of '{}' hung up", self.name)
                }
            },
            None => {
                if self.sent >= self.expected {
                    Progress::Idle
                } else {
                    Progress::Stalled
                }
            }
        }
    }

    fn is_done(&self) -> bool {
        self.sent >= self.expected && self.pending.is_none()
    }

    /// Never parkable: channel capacity is external state — the remote
    /// ingress draining the channel is invisible to this device's streams,
    /// so no local stream event would ever wake a parked egress. (Its
    /// stalled tick can also follow a successful read into `pending`.)
    fn wake_hint(&self) -> WakeHint {
        WakeHint::AlwaysTick
    }
}

/// Feeds elements arriving from an inter-device channel into its output
/// stream.
pub struct ChannelIngress {
    name: String,
    rx: Receiver<i32>,
    received: u64,
    expected: u64,
}

impl Kernel for ChannelIngress {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, io: &mut Io<'_>) -> Progress {
        if self.received >= self.expected {
            return Progress::Idle;
        }
        if !io.can_write(0) {
            return Progress::Stalled;
        }
        match self.rx.try_recv() {
            Ok(v) => {
                io.write(0, v);
                self.received += 1;
                Progress::Busy
            }
            Err(TryRecvError::Empty) => Progress::Stalled,
            Err(TryRecvError::Disconnected) => {
                panic!("upstream device of '{}' hung up early", self.name)
            }
        }
    }

    /// Never parkable: elements arrive on the external channel with no
    /// local stream event, so the ingress must poll every cycle.
    fn wake_hint(&self) -> WakeHint {
        WakeHint::AlwaysTick
    }
}

/// Run several device graphs in lockstep on one global clock.
///
/// Each global cycle steps every still-running device exactly once, in
/// device order; a device stops ticking once its sinks complete, so its
/// report covers only the cycles it was live. An element the upstream
/// egress sends on cycle `c` is visible to a *later-indexed* device's
/// ingress on the same cycle and to an earlier-indexed one on `c + 1` —
/// a fixed one-hop latency model, the same every run. The entire schedule
/// is a deterministic function of the graphs, so outputs **and** cycle
/// reports are bit-identical across runs.
///
/// Deadlock detection is global: if a full cycle passes in which no device
/// makes progress or commits a stream element, no future cycle can differ,
/// and the combined stream dump of every device is reported.
pub fn run_devices(mut graphs: Vec<Graph>, max_cycles: u64) -> Result<Vec<CycleReport>, RunError> {
    for g in &graphs {
        g.validate()?;
    }
    let mut done: Vec<bool> = graphs.iter().map(Graph::complete).collect();
    let mut device_cycles = vec![0u64; graphs.len()];
    let mut cycle: u64 = 0;
    while done.iter().any(|d| !d) {
        if cycle >= max_cycles {
            return Err(RunError::Timeout { max_cycles });
        }
        let mut any_activity = false;
        for (i, g) in graphs.iter_mut().enumerate() {
            if done[i] {
                continue;
            }
            let (progress, committed) = g.step_cycle();
            any_activity |= progress || committed;
            device_cycles[i] += 1;
            // Completion can only flip after a sink `Busy` tick, so skip
            // the O(kernels) + mutex re-check on all other cycles.
            if g.made_sink_progress() && g.complete() {
                done[i] = true;
            }
        }
        cycle += 1;
        if !any_activity {
            let mut diagnostics = String::new();
            for (i, g) in graphs.iter().enumerate() {
                diagnostics.push_str(&format!(" device {i}:\n{}", g.dump_streams()));
            }
            return Err(RunError::Deadlock { cycle, diagnostics });
        }
    }
    Ok(graphs
        .iter()
        .zip(device_cycles)
        .map(|(g, cycles)| g.report(cycles))
        .collect())
}

/// Run several device graphs concurrently, one free-running thread each.
///
/// Returns each device's cycle report in input order. Deadlock detection is
/// disabled inside each device (cross-device waits are legitimate); a
/// `max_cycles` budget per device bounds runaway executions instead.
///
/// Outputs match [`run_devices`] exactly (the links are FIFOs), but the
/// per-device cycle and stall counts depend on how the OS interleaves the
/// threads — use the lockstep executor when reports must be reproducible.
pub fn run_devices_threaded(
    graphs: Vec<Graph>,
    max_cycles: u64,
) -> Result<Vec<CycleReport>, RunError> {
    let results = std::thread::scope(|scope| {
        let handles: Vec<_> = graphs
            .into_iter()
            .map(|mut g| scope.spawn(move || g.run_opts(max_cycles, false)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("device thread panicked"))
            .collect::<Vec<_>>()
    });
    results.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::{HostSink, HostSource};
    use crate::stream::StreamSpec;

    /// Build a two-device pipeline: device 0 negates, device 1 doubles.
    fn two_device_setup(data: Vec<i32>) -> (Vec<Graph>, crate::host::SinkHandle) {
        struct Map(fn(i32) -> i32, &'static str);
        impl Kernel for Map {
            fn name(&self) -> &str {
                self.1
            }
            fn tick(&mut self, io: &mut Io<'_>) -> Progress {
                if io.can_read(0) && io.can_write(0) {
                    let v = io.read(0).expect("checked");
                    io.write(0, (self.0)(v));
                    Progress::Busy
                } else {
                    Progress::Stalled
                }
            }
        }

        let n = data.len();
        let (egress, ingress) = link("ring0", 64, n as u64);

        let mut d0 = Graph::new();
        let a = d0.add_stream(StreamSpec::new("a", 8, 8));
        let b = d0.add_stream(StreamSpec::new("b", 8, 8));
        d0.add_kernel(Box::new(HostSource::new("src", data)), &[], &[a]);
        d0.add_kernel(Box::new(Map(|v| -v, "negate")), &[a], &[b]);
        d0.add_kernel(Box::new(egress), &[b], &[]);

        let mut d1 = Graph::new();
        let c = d1.add_stream(StreamSpec::new("c", 8, 8));
        let d = d1.add_stream(StreamSpec::new("d", 8, 8));
        d1.add_kernel(Box::new(ingress), &[], &[c]);
        d1.add_kernel(Box::new(Map(|v| v * 2, "double")), &[c], &[d]);
        let (sink, handle) = HostSink::new("dst", n);
        d1.add_kernel(Box::new(sink), &[d], &[]);

        (vec![d0, d1], handle)
    }

    #[test]
    fn two_devices_compute_the_composition() {
        let (graphs, handle) = two_device_setup(vec![1, 2, 3, 4, 5]);
        let reports = run_devices(graphs, 1_000_000).expect("run ok");
        assert_eq!(reports.len(), 2);
        assert_eq!(handle.take(), vec![-2, -4, -6, -8, -10]);
    }

    #[test]
    fn cross_device_ordering_is_preserved_under_load() {
        let n = 2000;
        let (graphs, handle) = two_device_setup((0..n).collect());
        run_devices(graphs, 10_000_000).expect("run ok");
        let out = handle.take();
        assert_eq!(out.len(), n as usize);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, -2 * i as i32);
        }
    }

    #[test]
    fn threaded_executor_matches_lockstep_outputs() {
        let data: Vec<i32> = (0..500).collect();
        let (graphs, handle) = two_device_setup(data.clone());
        run_devices(graphs, 10_000_000).expect("lockstep ok");
        let lockstep_out = handle.take();

        let (graphs, handle) = two_device_setup(data);
        let reports = run_devices_threaded(graphs, 10_000_000).expect("threaded ok");
        assert_eq!(reports.len(), 2);
        assert_eq!(handle.take(), lockstep_out);
    }

    #[test]
    fn lockstep_reports_are_reproducible() {
        let run_once = || {
            let (graphs, handle) = two_device_setup((0..200).collect());
            let reports = run_devices(graphs, 10_000_000).expect("run ok");
            (reports, handle.take())
        };
        let (reports, out) = run_once();
        for _ in 0..3 {
            let (r, o) = run_once();
            assert_eq!(r, reports, "cycle reports must be bit-identical");
            assert_eq!(o, out);
        }
    }

    #[test]
    fn lockstep_detects_cross_device_deadlock() {
        // Device 0 promises 3 elements over the link but only sources 2;
        // device 1's sink then starves with both devices stalled.
        let (egress, ingress) = link("ring0", 4, 3);

        let mut d0 = Graph::new();
        let a = d0.add_stream(StreamSpec::new("a", 8, 8));
        d0.add_kernel(Box::new(HostSource::new("src", vec![1, 2])), &[], &[a]);
        d0.add_kernel(Box::new(egress), &[a], &[]);

        let mut d1 = Graph::new();
        let c = d1.add_stream(StreamSpec::new("c", 8, 8));
        d1.add_kernel(Box::new(ingress), &[], &[c]);
        let (sink, _handle) = HostSink::new("dst", 3);
        d1.add_kernel(Box::new(sink), &[c], &[]);

        match run_devices(vec![d0, d1], 1_000_000) {
            Err(RunError::Deadlock { diagnostics, .. }) => {
                assert!(diagnostics.contains("device 0"), "got:\n{diagnostics}");
                assert!(diagnostics.contains("device 1"), "got:\n{diagnostics}");
            }
            other => panic!("expected cross-device deadlock, got {other:?}"),
        }
    }
}
