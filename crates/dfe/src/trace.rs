//! Pipeline tracing: periodic samples of stream occupancy and kernel
//! activity during a cycle-scheduled run.
//!
//! The Maxeler toolchain exposes similar counters through its debug
//! infrastructure; here they are first-class, because buffer occupancy is
//! how several of the paper's claims are *checked* (the skip buffer's
//! "exactly one convolution buffer" sizing, the FMem elasticity argument,
//! the bottleneck analysis behind Table III).

/// A sampled timeline of one run.
#[derive(Clone, Debug)]
pub struct Trace {
    /// Cycles between samples.
    pub sample_every: u64,
    /// Stream names, column order of `occupancy`.
    pub streams: Vec<String>,
    /// Kernel names, column order of `busy_delta`.
    pub kernels: Vec<String>,
    /// Per-sample committed occupancy of each stream.
    pub occupancy: Vec<Vec<u32>>,
    /// Per-sample busy cycles each kernel accumulated since the previous
    /// sample (0..=sample_every — divide for utilization).
    pub busy_delta: Vec<Vec<u32>>,
}

impl Trace {
    pub(crate) fn new(sample_every: u64, streams: Vec<String>, kernels: Vec<String>) -> Self {
        Self { sample_every, streams, kernels, occupancy: Vec::new(), busy_delta: Vec::new() }
    }

    /// Number of samples captured.
    pub fn len(&self) -> usize {
        self.occupancy.len()
    }

    /// True when no samples were captured.
    pub fn is_empty(&self) -> bool {
        self.occupancy.is_empty()
    }

    /// Peak occupancy of the stream named `name` across the run.
    pub fn peak_occupancy(&self, name: &str) -> Option<u32> {
        let col = self.streams.iter().position(|s| s == name)?;
        self.occupancy.iter().map(|row| row[col]).max()
    }

    /// Mean utilization (busy fraction) of the kernel named `name`.
    pub fn mean_utilization(&self, name: &str) -> Option<f64> {
        let col = self.kernels.iter().position(|k| k == name)?;
        if self.busy_delta.is_empty() || self.sample_every == 0 {
            return None;
        }
        let total: u64 = self.busy_delta.iter().map(|row| u64::from(row[col])).sum();
        Some(total as f64 / (self.busy_delta.len() as u64 * self.sample_every) as f64)
    }

    /// Render the occupancy timeline as CSV (`cycle, <stream...>`).
    pub fn occupancy_csv(&self) -> String {
        let mut out = String::from("cycle");
        for s in &self.streams {
            out.push(',');
            out.push_str(s);
        }
        out.push('\n');
        for (i, row) in self.occupancy.iter().enumerate() {
            out.push_str(&(i as u64 * self.sample_every).to_string());
            for v in row {
                out.push(',');
                out.push_str(&v.to_string());
            }
            out.push('\n');
        }
        out
    }

    /// Render the kernel-utilization timeline as CSV
    /// (`cycle, <kernel...>` with busy fractions).
    pub fn utilization_csv(&self) -> String {
        let mut out = String::from("cycle");
        for k in &self.kernels {
            out.push(',');
            out.push_str(k);
        }
        out.push('\n');
        for (i, row) in self.busy_delta.iter().enumerate() {
            out.push_str(&(i as u64 * self.sample_every).to_string());
            for v in row {
                out.push(',');
                out.push_str(&format!("{:.3}", f64::from(*v) / self.sample_every as f64));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::graph::Graph;
    use crate::host::{HostSink, HostSource};
    use crate::stream::StreamSpec;

    fn traced_pipeline() -> (crate::graph::CycleReport, super::Trace) {
        let mut g = Graph::new();
        let s = g.add_stream(StreamSpec::new("wire", 8, 4));
        g.add_kernel(Box::new(HostSource::new("src", (0..100).collect())), &[], &[s]);
        let (sink, _h) = HostSink::new("dst", 100);
        g.add_kernel(Box::new(sink), &[s], &[]);
        g.run_traced(10_000, 10).expect("run")
    }

    #[test]
    fn trace_samples_at_the_requested_cadence() {
        let (report, trace) = traced_pipeline();
        assert_eq!(trace.sample_every, 10);
        let expected = (report.cycles / 10) as usize;
        assert!(
            trace.len() == expected || trace.len() == expected + 1,
            "{} samples for {} cycles",
            trace.len(),
            report.cycles
        );
        assert_eq!(trace.streams, vec!["wire".to_string()]);
        assert_eq!(trace.kernels, vec!["src".to_string(), "dst".to_string()]);
    }

    #[test]
    fn occupancy_respects_capacity_and_utilization_is_a_fraction() {
        let (_, trace) = traced_pipeline();
        assert!(trace.peak_occupancy("wire").expect("stream exists") <= 4);
        let u = trace.mean_utilization("src").expect("kernel exists");
        assert!(u > 0.5 && u <= 1.0, "source utilization {u}");
    }

    #[test]
    fn csv_rendering_has_header_and_rows() {
        let (_, trace) = traced_pipeline();
        let occ = trace.occupancy_csv();
        assert!(occ.starts_with("cycle,wire\n"));
        assert_eq!(occ.lines().count(), trace.len() + 1);
        let util = trace.utilization_csv();
        assert!(util.starts_with("cycle,src,dst\n"));
    }

    #[test]
    fn missing_names_return_none() {
        let (_, trace) = traced_pipeline();
        assert!(trace.peak_occupancy("nope").is_none());
        assert!(trace.mean_utilization("nope").is_none());
    }
}
