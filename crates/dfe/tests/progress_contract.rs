//! The `Progress` contract, enforced by a debug-mode check in both
//! schedulers (see `check_progress_contract` in `graph.rs`):
//!
//! * a tick returning `Idle` must not have read or written any port;
//! * a `WakeHint::Parkable` kernel returning `Stalled` must not have
//!   touched a port either (the ready-list stepper replays the verdict
//!   without re-running the tick).
//!
//! Violations would make ready-list parking unsound — a "skipped" tick
//! would have had observable effects — so they abort loudly in debug
//! builds, where the entire tier-1 suite runs.

use dfe_platform::{
    Graph, HostSink, HostSource, Io, Kernel, Progress, SchedulerMode, StreamSpec, WakeHint,
};
use qnn_testkit::{prop_assert_eq, props};

/// Consumes an element and then claims it did nothing — an accounting lie
/// the debug check must catch.
struct IdleLiar;
impl Kernel for IdleLiar {
    fn name(&self) -> &str {
        "idle-liar"
    }
    fn tick(&mut self, io: &mut Io<'_>) -> Progress {
        let _ = io.read(0);
        Progress::Idle
    }
}

/// Declares itself parkable but stages a write on a "stalled" tick,
/// breaking the fixed-point contract.
struct ParkableStallLiar;
impl Kernel for ParkableStallLiar {
    fn name(&self) -> &str {
        "stall-liar"
    }
    fn tick(&mut self, io: &mut Io<'_>) -> Progress {
        if io.can_write(0) {
            io.write(0, 1);
        }
        Progress::Stalled
    }
    fn wake_hint(&self) -> WakeHint {
        WakeHint::Parkable
    }
}

fn drive(kernel: Box<dyn Kernel>, mode: SchedulerMode) {
    let mut g = Graph::with_scheduler(mode);
    let a = g.add_stream(StreamSpec::new("a", 8, 4));
    let b = g.add_stream(StreamSpec::new("b", 8, 4));
    g.add_kernel(Box::new(HostSource::new("src", vec![1, 2, 3])), &[], &[a]);
    g.add_kernel(kernel, &[a], &[b]);
    let (sink, _h) = HostSink::new("dst", 3);
    g.add_kernel(Box::new(sink), &[b], &[]);
    // Liars never complete the pipeline; any termination path is fine —
    // the point is whether the contract check fires first.
    let _ = g.run_opts(100, false);
}

#[test]
#[cfg_attr(
    not(debug_assertions),
    ignore = "contract check compiles out in release"
)]
#[should_panic(expected = "returned Idle after touching a port")]
fn idle_after_read_is_caught_dense() {
    drive(Box::new(IdleLiar), SchedulerMode::Dense);
}

#[test]
#[cfg_attr(
    not(debug_assertions),
    ignore = "contract check compiles out in release"
)]
#[should_panic(expected = "returned Idle after touching a port")]
fn idle_after_read_is_caught_ready_list() {
    drive(Box::new(IdleLiar), SchedulerMode::ReadyList);
}

#[test]
#[cfg_attr(
    not(debug_assertions),
    ignore = "contract check compiles out in release"
)]
#[should_panic(expected = "Parkable fixed-point contract")]
fn parkable_stall_after_write_is_caught() {
    drive(Box::new(ParkableStallLiar), SchedulerMode::ReadyList);
}

#[test]
#[cfg_attr(
    not(debug_assertions),
    ignore = "contract check compiles out in release"
)]
#[should_panic(expected = "Parkable fixed-point contract")]
fn parkable_stall_after_write_is_caught_dense_too() {
    // The check is scheduler-independent: a dense run flags the same lie,
    // so a kernel author cannot ship a violation by testing under Dense.
    drive(Box::new(ParkableStallLiar), SchedulerMode::Dense);
}

/// An honest parkable stage for the positive property below.
struct Affine {
    mul: i32,
    add: i32,
}
impl Kernel for Affine {
    fn name(&self) -> &str {
        "affine"
    }
    fn tick(&mut self, io: &mut Io<'_>) -> Progress {
        if io.can_read(0) && io.can_write(0) {
            let v = io.read(0).expect("checked");
            io.write(0, v * self.mul + self.add);
            Progress::Busy
        } else if io.can_read(0) {
            Progress::Stalled
        } else {
            Progress::Idle
        }
    }
    fn wake_hint(&self) -> WakeHint {
        WakeHint::Parkable
    }
}

props! {
    /// Honest pipelines sail through the contract check in both modes and
    /// agree bit-for-bit — the positive side of the property: the check
    /// admits every lawful kernel, including ones that stall and idle
    /// under tight FIFOs.
    #[test]
    fn lawful_pipelines_pass_the_contract_in_both_modes(
        n in 1usize..60,
        stages in 1usize..8,
        fifo in 1usize..6,
        mul in 1i32..5,
    ) {
        let run_mode = |mode| {
            let mut g = Graph::with_scheduler(mode);
            let mut prev = g.add_stream(StreamSpec::new("s0", 8, fifo));
            g.add_kernel(
                Box::new(HostSource::new("src", (0..n as i32).collect())),
                &[],
                &[prev],
            );
            for i in 0..stages {
                let next = g.add_stream(StreamSpec::new(format!("s{}", i + 1), 8, fifo));
                g.add_kernel(Box::new(Affine { mul, add: i as i32 }), &[prev], &[next]);
                prev = next;
            }
            let (sink, handle) = HostSink::new("dst", n);
            g.add_kernel(Box::new(sink), &[prev], &[]);
            let report = g.run(1_000_000).expect("lawful pipeline completes");
            (handle.take(), report)
        };
        prop_assert_eq!(run_mode(SchedulerMode::Dense), run_mode(SchedulerMode::ReadyList));
    }
}
