//! Property suite for the dataflow platform (seeded via `qnn-testkit`):
//! random map-kernel pipelines at random FIFO capacities, random device
//! cuts, arbitrary payloads. Streaming must equal the composed reference
//! function on every configuration, the placement of the device cut must
//! be invisible in the output, and the lockstep multi-device executor must
//! produce bit-identical cycle reports across repeated runs.

use dfe_platform::threaded::{link, run_devices, run_devices_threaded};
use dfe_platform::{Graph, HostSink, HostSource, Io, Kernel, Progress, SinkHandle, StreamSpec};
use qnn_testkit::{prop_assert, prop_assert_eq, props, vec};

/// One-element-per-cycle affine map kernel: `v -> v * mul + add` with
/// wrapping arithmetic (the property cares about dataflow, not overflow).
struct Affine {
    mul: i32,
    add: i32,
    name: String,
}

impl Kernel for Affine {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, io: &mut Io<'_>) -> Progress {
        if io.can_read(0) && io.can_write(0) {
            let v = io.read(0).expect("checked");
            io.write(0, v.wrapping_mul(self.mul).wrapping_add(self.add));
            Progress::Busy
        } else {
            Progress::Stalled
        }
    }
}

/// What the pipeline must compute, evaluated directly.
fn reference(data: &[i32], stages: &[(i32, i32)]) -> Vec<i32> {
    data.iter()
        .map(|&v| {
            stages
                .iter()
                .fold(v, |acc, &(mul, add)| acc.wrapping_mul(mul).wrapping_add(add))
        })
        .collect()
}

/// Single-device chain: source → affine stages → sink.
fn build_chain(data: Vec<i32>, stages: &[(i32, i32)], cap: usize) -> (Graph, SinkHandle) {
    let n = data.len();
    let mut g = Graph::new();
    let mut prev = g.add_stream(StreamSpec::new("s0", 32, cap));
    g.add_kernel(Box::new(HostSource::new("src", data)), &[], &[prev]);
    for (i, &(mul, add)) in stages.iter().enumerate() {
        let next = g.add_stream(StreamSpec::new(format!("s{}", i + 1), 32, cap));
        g.add_kernel(Box::new(Affine { mul, add, name: format!("affine{i}") }), &[prev], &[next]);
        prev = next;
    }
    let (sink, handle) = HostSink::new("dst", n);
    g.add_kernel(Box::new(sink), &[prev], &[]);
    (g, handle)
}

/// The same chain cut into two devices after `cut` stages, joined by a
/// bounded channel link of `link_cap` elements.
fn build_split(
    data: Vec<i32>,
    stages: &[(i32, i32)],
    cut: usize,
    cap: usize,
    link_cap: usize,
) -> (Vec<Graph>, SinkHandle) {
    let n = data.len();
    let (egress, ingress) = link("ring0", link_cap, n as u64);

    let mut d0 = Graph::new();
    let mut prev = d0.add_stream(StreamSpec::new("a0", 32, cap));
    d0.add_kernel(Box::new(HostSource::new("src", data)), &[], &[prev]);
    for (i, &(mul, add)) in stages[..cut].iter().enumerate() {
        let next = d0.add_stream(StreamSpec::new(format!("a{}", i + 1), 32, cap));
        d0.add_kernel(Box::new(Affine { mul, add, name: format!("affine{i}") }), &[prev], &[next]);
        prev = next;
    }
    d0.add_kernel(Box::new(egress), &[prev], &[]);

    let mut d1 = Graph::new();
    let mut prev = d1.add_stream(StreamSpec::new("b0", 32, cap));
    d1.add_kernel(Box::new(ingress), &[], &[prev]);
    for (i, &(mul, add)) in stages[cut..].iter().enumerate() {
        let next = d1.add_stream(StreamSpec::new(format!("b{}", i + 1), 32, cap));
        d1.add_kernel(
            Box::new(Affine { mul, add, name: format!("affine{}", cut + i) }),
            &[prev],
            &[next],
        );
        prev = next;
    }
    let (sink, handle) = HostSink::new("dst", n);
    d1.add_kernel(Box::new(sink), &[prev], &[]);

    (vec![d0, d1], handle)
}

const BUDGET: u64 = 1_000_000;

props! {
    /// Any chain of map kernels at any FIFO capacity computes the composed
    /// function, and the stream counters account for every element.
    #[test]
    fn pipeline_matches_composed_reference(
        data in vec(-128i32..128, 1..40),
        stages in vec((-5i32..6, -100i32..101), 1..5),
        cap in 1usize..9,
    ) {
        let expect = reference(&data, &stages);
        let (mut g, handle) = build_chain(data.clone(), &stages, cap);
        let report = g.run(BUDGET).expect("chain must complete");
        prop_assert_eq!(handle.take(), expect);
        for s in &report.streams {
            prop_assert_eq!(s.pushed, data.len() as u64, "stream {} element count", s.name);
            prop_assert!(
                s.max_occupancy <= s.capacity,
                "stream {} overflowed: {} > {}", s.name, s.max_occupancy, s.capacity
            );
        }
    }

    /// Cutting the chain onto two devices at any point, with any link
    /// capacity, is invisible in the output (the paper's scale-out claim).
    #[test]
    fn device_cut_is_transparent(
        data in vec(-128i32..128, 1..30),
        stages in vec((-5i32..6, -100i32..101), 2..5),
        cut_pick in 0usize..16,
        cap in 1usize..9,
        link_cap in 1usize..9,
    ) {
        let cut = cut_pick % (stages.len() + 1);
        let expect = reference(&data, &stages);
        let (graphs, handle) = build_split(data, &stages, cut, cap, link_cap);
        run_devices(graphs, BUDGET).expect("split must complete");
        prop_assert_eq!(handle.take(), expect);
    }

    /// The lockstep executor is a deterministic function of the graphs:
    /// repeated runs give bit-identical outputs *and* cycle reports.
    #[test]
    fn lockstep_reports_are_deterministic(
        data in vec(-128i32..128, 1..20),
        stages in vec((-5i32..6, -100i32..101), 2..4),
        link_cap in 1usize..6,
    ) {
        let cut = stages.len() / 2;
        let (graphs, handle) = build_split(data.clone(), &stages, cut, 4, link_cap);
        let first = run_devices(graphs, BUDGET).expect("first run");
        let first_out = handle.take();
        let (graphs, handle) = build_split(data, &stages, cut, 4, link_cap);
        let second = run_devices(graphs, BUDGET).expect("second run");
        prop_assert_eq!(&second, &first, "cycle reports must be bit-identical");
        prop_assert_eq!(handle.take(), first_out);
    }

    /// The free-running threaded executor computes the same outputs as the
    /// lockstep one — the functional result is independent of execution
    /// strategy.
    #[test]
    fn threaded_outputs_match_lockstep(
        data in vec(-128i32..128, 1..20),
        stages in vec((-5i32..6, -100i32..101), 2..4),
        link_cap in 1usize..6,
    ) {
        let cut = stages.len() / 2;
        let (graphs, handle) = build_split(data.clone(), &stages, cut, 4, link_cap);
        run_devices(graphs, BUDGET).expect("lockstep run");
        let lockstep_out = handle.take();
        let (graphs, handle) = build_split(data, &stages, cut, 4, link_cap);
        run_devices_threaded(graphs, BUDGET).expect("threaded run");
        prop_assert_eq!(handle.take(), lockstep_out);
    }
}
