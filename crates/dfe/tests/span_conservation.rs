//! Span-conservation ledger for macro-tick dispatch (seeded via
//! `qnn-testkit`): random span-capable pipelines at random FIFO
//! capacities, with and without injected stalls. Whatever mix of
//! per-element steps and bursts a run takes, every element must be
//! accounted for — each map kernel's busy count equals the element
//! count it consumed, every stream commits exactly the elements pushed
//! through it, and every FIFO drains to empty. Reports must be
//! bit-identical to dense stepping on the same pipeline.

use dfe_platform::{
    Graph, HostSink, HostSource, Io, Kernel, Progress, SchedulerMode, SinkHandle, SpanIo,
    SpanPlan, StallInjector, StreamId, StreamSpec, WakeHint,
};
use qnn_testkit::{prop_assert, prop_assert_eq, props, vec};

/// Span-capable affine map kernel: `v -> v * mul + add`, one element per
/// cycle, uniform for any span length.
struct SpanAffine {
    mul: i32,
    add: i32,
    name: String,
}

impl Kernel for SpanAffine {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, io: &mut Io<'_>) -> Progress {
        if io.can_read(0) && io.can_write(0) {
            let v = io.read(0).expect("checked");
            io.write(0, v.wrapping_mul(self.mul).wrapping_add(self.add));
            Progress::Busy
        } else if io.can_read(0) {
            Progress::Stalled
        } else {
            Progress::Idle
        }
    }

    fn wake_hint(&self) -> WakeHint {
        WakeHint::Parkable
    }

    fn span_hint(&self, _in_len: &[usize]) -> Option<SpanPlan> {
        Some(SpanPlan::new(u64::MAX, 0b1, 0b1))
    }

    fn run_span(&mut self, io: &mut SpanIo<'_>, n: u64) {
        for _ in 0..n {
            let v = io.pop(0);
            io.push(0, v.wrapping_mul(self.mul).wrapping_add(self.add));
        }
    }
}

fn reference(data: &[i32], stages: &[(i32, i32)]) -> Vec<i32> {
    data.iter()
        .map(|&v| {
            stages
                .iter()
                .fold(v, |acc, &(mul, add)| acc.wrapping_mul(mul).wrapping_add(add))
        })
        .collect()
}

/// Source → span-affine stages → sink, optionally wrapping each stage in a
/// [`StallInjector`] (which, being `AlwaysTick` with no span promise,
/// vetoes every burst it is awake for — the per-element fallback path).
fn build_chain(
    data: Vec<i32>,
    stages: &[(i32, i32)],
    cap: usize,
    scheduler: SchedulerMode,
    macro_ticks: bool,
    stall: Option<(u64, u8)>,
) -> (Graph, SinkHandle, Vec<StreamId>) {
    let n = data.len();
    let mut g = Graph::with_scheduler(scheduler);
    g.set_macro_ticks(macro_ticks);
    let mut ids = Vec::new();
    let mut prev = g.add_stream(StreamSpec::new("s0", 32, cap));
    ids.push(prev);
    g.add_kernel(Box::new(HostSource::new("src", data)), &[], &[prev]);
    for (i, &(mul, add)) in stages.iter().enumerate() {
        let next = g.add_stream(StreamSpec::new(format!("s{}", i + 1), 32, cap));
        ids.push(next);
        let inner = Box::new(SpanAffine { mul, add, name: format!("affine{i}") });
        let kernel: Box<dyn Kernel> = match stall {
            Some((seed, pct)) => {
                Box::new(StallInjector::new(inner, seed.wrapping_add(i as u64), pct))
            }
            None => inner,
        };
        g.add_kernel(kernel, &[prev], &[next]);
        prev = next;
    }
    let (sink, handle) = HostSink::new("dst", n);
    g.add_kernel(Box::new(sink), &[prev], &[]);
    (g, handle, ids)
}

const BUDGET: u64 = 1_000_000;

/// The ledger proper: outputs correct, every stream committed exactly the
/// pipeline's element count and drained to empty, every stage was busy for
/// exactly one cycle per element, occupancy peaks within capacity.
fn assert_ledger(
    g: &Graph,
    report: &dfe_platform::CycleReport,
    ids: &[StreamId],
    n: usize,
    stages: usize,
) -> qnn_testkit::prop::CaseResult {
    for s in &report.streams {
        prop_assert_eq!(s.pushed, n as u64, "stream {} commit count", s.name);
        prop_assert!(
            s.max_occupancy <= s.capacity,
            "stream {} overflowed: {} > {}",
            s.name,
            s.max_occupancy,
            s.capacity
        );
    }
    for &id in ids {
        prop_assert_eq!(g.stream_len(id), 0, "stream not drained");
    }
    // kernels[0] is the source, last is the sink; both also move n elements.
    for k in &report.kernels {
        prop_assert_eq!(&k.busy, &(n as u64), "kernel {} element ledger", k.name);
    }
    prop_assert_eq!(report.kernels.len(), stages + 2);
    Ok(())
}

props! {
    /// Conservation under macro-tick dispatch: elements consumed equal
    /// elements committed downstream on every stream, and the run is
    /// bit-identical (report and output) to dense per-element stepping.
    #[test]
    fn span_ledger_accounts_every_element(
        data in vec(-128i32..128, 1..64),
        stages in vec((-5i32..6, -100i32..101), 1..5),
        cap in 1usize..17,
    ) {
        let n = data.len();
        let expect = reference(&data, &stages);
        let (mut g, handle, ids) =
            build_chain(data.clone(), &stages, cap, SchedulerMode::ReadyList, true, None);
        let report = g.run(BUDGET).expect("macro-tick chain must complete");
        prop_assert_eq!(handle.take(), expect.clone());
        assert_ledger(&g, &report, &ids, n, stages.len())?;

        let (mut gd, hd, _) =
            build_chain(data, &stages, cap, SchedulerMode::Dense, false, None);
        let dense = gd.run(BUDGET).expect("dense chain must complete");
        prop_assert_eq!(hd.take(), expect);
        prop_assert_eq!(report, dense, "macro-tick report diverges from dense");
    }

    /// The same ledger under random stall schedules: the injectors veto
    /// bursts they are awake for, so runs interleave spans with per-element
    /// stretches — conservation must survive the mixture.
    #[test]
    fn ledger_holds_under_stall_injection(
        data in vec(-128i32..128, 1..48),
        stages in vec((-5i32..6, -100i32..101), 1..4),
        cap in 1usize..9,
        seed in 0u64..u64::MAX,
        pct in 1u8..90,
    ) {
        let n = data.len();
        let expect = reference(&data, &stages);
        let (mut g, handle, ids) = build_chain(
            data,
            &stages,
            cap,
            SchedulerMode::ReadyList,
            true,
            Some((seed, pct)),
        );
        // Injected stalls can idle the whole graph for a cycle; that is not
        // a deadlock (same setting as the stall-injection suites).
        let report = g.run_opts(4_000_000, false).expect("stalled chain must complete");
        prop_assert_eq!(handle.take(), expect);
        assert_ledger(&g, &report, &ids, n, stages.len())?;
    }
}

/// Bursts must actually engage on a span-capable chain — otherwise the
/// whole macro-tick path is dead code that trivially "matches" dense.
#[test]
fn bursts_fire_on_a_span_capable_chain() {
    let data: Vec<i32> = (0..512).collect();
    let stages = [(3, 7), (-1, 11)];
    let (mut g, handle, _) =
        build_chain(data.clone(), &stages, 16, SchedulerMode::ReadyList, true, None);
    let report = g.run(BUDGET).expect("run");
    assert_eq!(handle.take(), reference(&data, &stages));
    assert!(
        g.bursts() > 0,
        "no burst fired on a fully span-capable pipeline"
    );
    // And the spans must have paid: far fewer dispatches than cycles.
    assert!(report.cycles >= 512);

    let (mut g_off, handle_off, _) =
        build_chain(data.clone(), &stages, 16, SchedulerMode::ReadyList, false, None);
    let report_off = g_off.run(BUDGET).expect("run");
    assert_eq!(handle_off.take(), reference(&data, &stages));
    assert_eq!(g_off.bursts(), 0, "macro_ticks=false must never burst");
    assert_eq!(report, report_off, "dispatch mode leaked into the report");
}

/// Mid-run mode switches are safe: bursts leave no cross-cycle state, so
/// toggling `set_macro_ticks` between segments of a multi-image run keeps
/// the stream contents coherent.
#[test]
fn mode_switch_mid_run_preserves_output() {
    let stages = [(5, -3)];
    let all: Vec<i32> = (-100..100).collect();
    let expect = reference(&all, &stages);
    // Run the first half with spans on, then flip them off and continue on
    // the same graph with the remaining input arriving via a second run.
    let (mut g, handle, _) =
        build_chain(all.clone(), &stages, 8, SchedulerMode::ReadyList, true, None);
    // Step a bounded prefix: too few cycles to finish, enough to burst.
    let _ = g.run_opts(64, false);
    g.set_macro_ticks(false);
    g.run_opts(BUDGET, false).expect("finish per-element");
    assert_eq!(handle.take(), expect);
}
