//! Analytic clock-cycle model (paper §IV-B4).
//!
//! Per kernel, one clock moves at most one input element into the window
//! buffer and emits at most one output (one filter result), and the two
//! overlap like in any MaxJ kernel — so a layer is busy for
//! ≈ `max(padded_inputs, outputs)` cycles per image. (The halt-strict
//! discipline of a literal §III-B1 reading costs `inputs + outputs` and is
//! kept as an ablation in `qnn-kernels`; the overlapped numbers are the
//! ones consistent with the paper's measurements.) The pipeline's
//! steady-state *period* is the maximum busy count over kernels; the
//! single-image *latency* adds each kernel's window-fill offset, because a
//! kernel cannot start until its first window arrives.
//!
//! The cycle simulator in `dfe-platform` is the ground truth; integration
//! tests pin this model to it on small networks, then the model scales to
//! the full-size estimates the benches report.

use crate::folding::FoldPlan;
use qnn_nn::{NetworkSpec, Stage};
use qnn_tensor::ConvGeometry;

/// Busy-cycle decomposition of one layer (one or more kernels).
#[derive(Clone, Debug)]
pub struct LayerCycles {
    /// Stage label.
    pub name: String,
    /// Input elements streamed per image (after padding).
    pub inputs: u64,
    /// Output elements (= compute halts for convolutions).
    pub outputs: u64,
    /// Busy cycles per image of the stage's busiest kernel.
    pub busy: u64,
    /// Cycles before the first output can appear (window fill).
    pub fill: u64,
}

fn conv_cycles(name: &str, geom: &ConvGeometry) -> LayerCycles {
    let padded = geom.padded_input();
    let inputs = padded.len() as u64;
    let out = geom.output();
    let outputs = out.len() as u64;
    // First window completes after ((K−1)·W + K) · I elements.
    let fill = ((geom.filter.k - 1) * padded.w + geom.filter.k) as u64 * padded.c as u64;
    LayerCycles { name: name.to_string(), inputs, outputs, busy: inputs.max(outputs), fill }
}

fn conv_cycles_folded(name: &str, geom: &ConvGeometry, pe: u64, simd: u64) -> LayerCycles {
    let padded = geom.padded_input();
    let inputs = padded.len() as u64;
    let out = geom.output();
    let outputs = out.len() as u64;
    let positions = (out.h * out.w) as u64;
    let o = geom.filter.o as u64;
    let fill = ((geom.filter.k - 1) * padded.w + geom.filter.k) as u64 * padded.c as u64;
    LayerCycles {
        name: name.to_string(),
        inputs,
        outputs,
        // `simd` lanes absorb the padded input stream; at each of the
        // `positions` halts, `pe` lanes emit the `O` filter results.
        busy: inputs.div_ceil(simd).max(positions * o.div_ceil(pe)),
        fill: fill.div_ceil(simd),
    }
}

/// Push one encoder stage's cycle entries: the 1×1 projections (foldable,
/// conv-like), the per-head attention tile engine, and the fixed-rate
/// split/add/LayerNorm glue. `plan == None` is the unfolded model; since
/// the attention and glue entries are fold-independent, an all-unit plan
/// matches the unfolded analysis exactly.
fn encoder_cycles(
    layers: &mut Vec<LayerCycles>,
    i: usize,
    geom: &qnn_nn::EncoderGeometry,
    plan: Option<&FoldPlan>,
) {
    let projs = geom.projection_geometries();
    let mut suffixes = vec!["q", "k", "v", "proj"];
    if geom.has_ffn() {
        suffixes.extend(["ff1", "ff2"]);
    }
    for (suffix, g) in suffixes.iter().zip(&projs) {
        let name = format!("enc{i}.{suffix}");
        match plan {
            Some(p) => {
                let f = p.get(&name);
                layers.push(conv_cycles_folded(&name, g, f.pe as u64, f.simd as u64));
            }
            None => layers.push(conv_cycles(&name, g)),
        }
    }
    // Heads run in parallel; one head's tile engine stands for all of
    // them. It absorbs its three seq×head_dim tiles (one element per port
    // per clock, so the gather overlaps across ports) and then emits one
    // tile — nothing can come out before the whole tile is in.
    let tile = (geom.seq_len * geom.head_dim) as u64;
    layers.push(LayerCycles {
        name: format!("enc{i}.attn"),
        inputs: 3 * tile,
        outputs: tile,
        busy: 2 * tile,
        fill: tile,
    });
    // Fixed-rate glue: splits, head fan-out/concat, adders and LayerNorm
    // all move one token-stream element per clock regardless of folding.
    let glue = (geom.seq_len * geom.d_model) as u64;
    layers.push(LayerCycles {
        name: format!("enc{i}.skip"),
        inputs: glue,
        outputs: glue,
        busy: glue,
        fill: 0,
    });
}

/// Whole-network cycle model.
#[derive(Clone, Debug)]
pub struct CycleModel {
    /// Per-stage busy/fill decomposition (residual blocks contribute their
    /// slowest internal conv).
    pub layers: Vec<LayerCycles>,
}

impl CycleModel {
    /// Analyze a network spec.
    pub fn analyze(spec: &NetworkSpec) -> Self {
        let mut layers = Vec::new();
        for (i, stage) in spec.stages.iter().enumerate() {
            match stage {
                Stage::ConvInput { geom } | Stage::Conv { geom } => {
                    layers.push(conv_cycles(&format!("conv{i}"), geom));
                }
                Stage::Pool { input, k, stride, pad, .. } => {
                    let ph = input.h + 2 * pad;
                    let pw = input.w + 2 * pad;
                    let inputs = (ph * pw * input.c) as u64;
                    let oh = (ph - k) / stride + 1;
                    let ow = (pw - k) / stride + 1;
                    let outputs = (oh * ow * input.c) as u64;
                    let fill = (((k - 1) * pw + k) * input.c) as u64;
                    layers.push(LayerCycles {
                        name: format!("pool{i}"),
                        inputs,
                        outputs,
                        // Pooling overlaps I/O (§III-B2).
                        busy: inputs.max(outputs),
                        fill,
                    });
                }
                Stage::FullyConnected { in_features, out_features, .. } => {
                    let inputs = *in_features as u64;
                    let outputs = *out_features as u64;
                    layers.push(LayerCycles {
                        name: format!("fc{i}"),
                        inputs,
                        outputs,
                        busy: inputs.max(outputs),
                        fill: inputs,
                    });
                }
                Stage::Residual { geom } => {
                    let c1 = conv_cycles(&format!("res{i}.conv1"), &geom.conv1);
                    let c2 = conv_cycles(&format!("res{i}.conv2"), &geom.conv2);
                    layers.push(c1);
                    layers.push(c2);
                    if let Some(ds) = &geom.downsample {
                        layers.push(conv_cycles(&format!("res{i}.ds"), ds));
                    }
                }
                Stage::Encoder { geom } => {
                    encoder_cycles(&mut layers, i, geom, None);
                }
            }
        }
        Self { layers }
    }

    /// Analyze a network under a per-layer [`FoldPlan`].
    ///
    /// This is the *rate-matched* variant the DSE scores against: folded
    /// layers cost `⌈elements / lanes⌉` cycles on each port, and two
    /// fixed-rate structures the plain model omits are made explicit,
    /// because folding can push a layer below them:
    ///
    /// * `host.image` — the host source feeds one element per clock, so no
    ///   fold can beat `input.len()` cycles per image at the pipe's head;
    /// * `res{i}.skip` — the split/add/threshold glue around a residual
    ///   block moves one element per clock regardless of conv folding. The
    ///   glue also carries the block's *ramp*: a folded conv1 still waits
    ///   its unfolded window-fill time for elements arriving at one per
    ///   clock, so the fill cycles folding "saved" inside the conv are
    ///   charged back here (`fill − ⌈fill/simd⌉`).
    ///
    /// With an all-unit plan, `period()` and `latency()` match
    /// [`CycleModel::analyze`] exactly (the extra terms are dominated by
    /// the unfolded convs that surround them, and the ramp is zero).
    pub fn analyze_folded(spec: &NetworkSpec, plan: &FoldPlan) -> Self {
        let mut layers = Vec::new();
        let image = spec.input.len() as u64;
        layers.push(LayerCycles {
            name: "host.image".to_string(),
            inputs: image,
            outputs: image,
            busy: image,
            fill: 0,
        });
        for (i, stage) in spec.stages.iter().enumerate() {
            match stage {
                Stage::ConvInput { geom } | Stage::Conv { geom } => {
                    let name = format!("conv{i}");
                    let f = plan.get(&name);
                    layers.push(conv_cycles_folded(&name, geom, f.pe as u64, f.simd as u64));
                }
                Stage::Pool { input, k, stride, pad, .. } => {
                    let name = format!("pool{i}");
                    let f = plan.get(&name);
                    let (pe, simd) = (f.pe as u64, f.simd as u64);
                    let ph = input.h + 2 * pad;
                    let pw = input.w + 2 * pad;
                    let inputs = (ph * pw * input.c) as u64;
                    let oh = (ph - k) / stride + 1;
                    let ow = (pw - k) / stride + 1;
                    let outputs = (oh * ow * input.c) as u64;
                    let fill = (((k - 1) * pw + k) * input.c) as u64;
                    layers.push(LayerCycles {
                        name,
                        inputs,
                        outputs,
                        busy: inputs.div_ceil(simd).max(outputs.div_ceil(pe)),
                        fill: fill.div_ceil(simd),
                    });
                }
                Stage::FullyConnected { in_features, out_features, .. } => {
                    let name = format!("fc{i}");
                    let f = plan.get(&name);
                    let inputs = *in_features as u64;
                    let outputs = *out_features as u64;
                    layers.push(LayerCycles {
                        name,
                        inputs,
                        outputs,
                        busy: inputs
                            .div_ceil(f.simd as u64)
                            .max(outputs.div_ceil(f.pe as u64)),
                        fill: inputs.div_ceil(f.simd as u64),
                    });
                }
                Stage::Residual { geom } => {
                    for (suffix, g) in [("conv1", Some(&geom.conv1)), ("conv2", Some(&geom.conv2))]
                        .into_iter()
                        .chain([("ds", geom.downsample.as_ref())])
                    {
                        let Some(g) = g else { continue };
                        let name = format!("res{i}.{suffix}");
                        let f = plan.get(&name);
                        layers.push(conv_cycles_folded(&name, g, f.pe as u64, f.simd as u64));
                    }
                    // Fixed-rate skip glue: the input split moves the block's
                    // input once, the adder/threshold its output once.
                    let glue = (geom.conv1.input.len() as u64)
                        .max(geom.conv2.output().len() as u64);
                    // Skip-path ramp: the split feeds conv1 at one element
                    // per clock no matter how the conv is folded, so the
                    // conv's first window still takes its *unfolded* fill
                    // time to arrive — the folded conv merely waits. Charge
                    // the difference here as the glue's fill so the latency
                    // sum sees what the simulator measures. Unit plans give
                    // `fill − ⌈fill/1⌉ = 0`, keeping `analyze_folded` equal
                    // to `analyze` at all-unit folding.
                    let c1 = &geom.conv1;
                    let c1_padded = c1.padded_input();
                    let c1_fill = ((c1.filter.k - 1) * c1_padded.w + c1.filter.k) as u64
                        * c1_padded.c as u64;
                    let c1_simd = plan.get(&format!("res{i}.conv1")).simd as u64;
                    layers.push(LayerCycles {
                        name: format!("res{i}.skip"),
                        inputs: glue,
                        outputs: glue,
                        busy: glue,
                        fill: c1_fill - c1_fill.div_ceil(c1_simd),
                    });
                }
                Stage::Encoder { geom } => {
                    encoder_cycles(&mut layers, i, geom, Some(plan));
                }
            }
        }
        Self { layers }
    }

    /// Steady-state cycles per image (pipeline period): the busiest kernel.
    pub fn period(&self) -> u64 {
        self.layers.iter().map(|l| l.busy).max().unwrap_or(0)
    }

    /// Single-image latency estimate: the bottleneck period plus every
    /// stage's fill offset (a stage starts only after its first window).
    pub fn latency(&self) -> u64 {
        self.period() + self.layers.iter().map(|l| l.fill).sum::<u64>()
    }

    /// Sum of all busy cycles — the fully serialized bound (what a
    /// layer-at-a-time accelerator would need).
    pub fn serial_bound(&self) -> u64 {
        self.layers.iter().map(|l| l.busy).sum()
    }

    /// Milliseconds for `cycles` at `fclk_mhz`.
    pub fn ms(cycles: u64, fclk_mhz: f64) -> f64 {
        cycles as f64 / (fclk_mhz * 1e3)
    }

    /// The bottleneck layer.
    pub fn bottleneck(&self) -> &LayerCycles {
        self.layers.iter().max_by_key(|l| l.busy).expect("non-empty model")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specs::paper;
    use dfe_platform::MAIA_FCLK_MHZ;
    use qnn_nn::models;

    #[test]
    fn resnet18_latency_is_in_the_papers_band() {
        // §IV-B4 estimates ≈1.85×10⁶ clocks/picture; the measured system at
        // 105 MHz does 16.1 ms ≈ 1.69×10⁶. Our overlapped-I/O model lands
        // below both (the paper's system carries extra per-layer overheads
        // our architecture-level model omits); require the same regime
        // within 2.5×.
        let m = CycleModel::analyze(&models::resnet18(1000));
        let est = m.latency() as f64;
        assert!(
            est > paper::RESNET18_CLOCKS_ESTIMATE / 2.5
                && est < paper::RESNET18_CLOCKS_ESTIMATE * 2.5,
            "latency {est:.3e} vs paper {:.3e}",
            paper::RESNET18_CLOCKS_ESTIMATE
        );
    }

    #[test]
    fn resnet_bottleneck_is_the_stem() {
        // conv1's 112×112×64 output traffic and the stem pool that consumes
        // it are tied for the bottleneck; either name is the stem.
        let m = CycleModel::analyze(&models::resnet18(1000));
        let b = &m.bottleneck().name;
        assert!(b.contains("conv0") || b.contains("pool1"), "bottleneck {b:?}");
        // The stem pool streams the padded 114×114×64 map.
        assert_eq!(m.period(), 114 * 114 * 64);
    }

    #[test]
    fn resnet_dfe_penalty_much_smaller_than_layer_ratio() {
        // ResNet-18 has ~2.5× the layer count of AlexNet but the streaming
        // latency grows far less (paper: +17.5%). Check the model's ratio
        // stays well under the serial ratio.
        let res = CycleModel::analyze(&models::resnet18(1000));
        let alex = CycleModel::analyze(&models::alexnet(1000));
        let latency_ratio = res.latency() as f64 / alex.latency() as f64;
        let serial_ratio = res.serial_bound() as f64 / alex.serial_bound() as f64;
        assert!(latency_ratio < serial_ratio, "overlap does not help?");
        // The paper reports +17.5%; our model gives more because its
        // AlexNet stem is far cheaper (stride-4 halts) while ResNet's
        // stride-2 stem dominates — see EXPERIMENTS.md for the discussion.
        assert!(
            (1.0..2.8).contains(&latency_ratio),
            "ResNet/AlexNet DFE latency ratio {latency_ratio}"
        );
    }

    #[test]
    fn stride_speedup_matches_section_3b1() {
        // AlexNet conv1 (stride 4): halting at every position instead of
        // only valid ones would cost ~13× more compute cycles (≈S²·share).
        let alex = models::alexnet(1000);
        let Stage::ConvInput { geom } = alex.stages[0] else { panic!("stem") };
        let strided = conv_cycles("s", &geom);
        let dense_outputs = {
            let p = geom.padded_input();
            ((p.h - geom.filter.k + 1) * (p.w - geom.filter.k + 1) * geom.filter.o) as u64
        };
        let speedup = dense_outputs as f64 / strided.outputs as f64;
        assert!((12.0..18.0).contains(&speedup), "stride-4 halt speedup {speedup:.1}");
    }

    #[test]
    fn vgg32_time_in_band() {
        // Table IV: 0.8 ms per image at 105 MHz for the 32×32 CNV.
        let m = CycleModel::analyze(&models::vgg_like(32, 10, 2));
        let ms = CycleModel::ms(m.latency(), MAIA_FCLK_MHZ);
        assert!(
            (0.1..2.0).contains(&ms),
            "VGG-32 latency {ms} ms vs paper {}",
            paper::VGG32_TIME_MS
        );
    }

    #[test]
    fn unit_fold_plan_matches_plain_analysis() {
        use crate::folding::{Fold, FoldPlan};
        for spec in
            [models::resnet18(1000), models::alexnet(1000), models::vgg_like(32, 10, 2)]
        {
            let plain = CycleModel::analyze(&spec);
            let unit = CycleModel::analyze_folded(&spec, &FoldPlan::new());
            assert_eq!(plain.period(), unit.period(), "{}", spec.name);
            assert_eq!(plain.latency(), unit.latency(), "{}", spec.name);
            // An explicit all-unit plan is the same as an empty one.
            let mut plan = FoldPlan::new();
            for l in &plain.layers {
                plan.set(&l.name, Fold::UNIT);
            }
            let explicit = CycleModel::analyze_folded(&spec, &plan);
            assert_eq!(unit.period(), explicit.period());
        }
    }

    #[test]
    fn residual_ramp_moves_fill_from_conv_to_skip_glue() {
        use crate::folding::{Fold, FoldPlan};
        let spec = models::resnet18(1000);
        let unit = CycleModel::analyze_folded(&spec, &FoldPlan::new());
        let plan = FoldPlan::new().with("res2.conv1", Fold::new(1, 4));
        let folded = CycleModel::analyze_folded(&spec, &plan);
        let fill_of = |m: &CycleModel, name: &str| {
            m.layers.iter().find(|l| l.name == name).expect(name).fill
        };
        // SIMD folding divides the conv's own window fill…
        let conv_unit = fill_of(&unit, "res2.conv1");
        let conv_folded = fill_of(&folded, "res2.conv1");
        assert_eq!(conv_folded, conv_unit.div_ceil(4));
        // …but the skip glue charges the saved cycles back: the split
        // still delivers the window at one element per clock.
        assert_eq!(fill_of(&unit, "res2.skip"), 0);
        assert_eq!(fill_of(&folded, "res2.skip"), conv_unit - conv_folded);
        // Net effect: the block's fill contribution is invariant under
        // SIMD folding — exactly what the simulator measures (the ramp
        // cannot be folded away).
        assert_eq!(
            fill_of(&folded, "res2.conv1") + fill_of(&folded, "res2.skip"),
            conv_unit
        );
    }

    #[test]
    fn folding_the_resnet_stem_cuts_the_period() {
        use crate::folding::{Fold, FoldPlan};
        let spec = models::resnet18(1000);
        let base = CycleModel::analyze_folded(&spec, &FoldPlan::new());
        let plan = FoldPlan::new()
            .with("conv0", Fold::new(4, 4))
            .with("pool1", Fold::new(4, 4));
        let folded = CycleModel::analyze_folded(&spec, &plan);
        // The 114·114·64 stem-pool stream drops out of the bottleneck; the
        // new period is set by the unfolded res-block convs.
        assert_eq!(base.period(), 114 * 114 * 64);
        assert!(
            folded.period() * 3 <= base.period(),
            "folded period {} vs base {}",
            folded.period(),
            base.period()
        );
        let b = &folded.bottleneck().name;
        assert!(!b.contains("conv0") && !b.contains("pool1"), "bottleneck {b}");
    }

    #[test]
    fn period_is_max_and_serial_is_sum() {
        let m = CycleModel::analyze(&models::vgg_like(32, 10, 2));
        let max = m.layers.iter().map(|l| l.busy).max().unwrap();
        let sum: u64 = m.layers.iter().map(|l| l.busy).sum();
        assert_eq!(m.period(), max);
        assert_eq!(m.serial_bound(), sum);
        assert!(m.latency() >= m.period());
    }
}
