//! Per-layer parallelism (folding) description.
//!
//! A streaming kernel's default shape moves one element per port per
//! clock. Folding widens that: `pe` output lanes (how many filter results
//! a convolution emits per clock at one window position — FINN's "PE"
//! knob) and `simd` input lanes (how many window elements it absorbs per
//! clock — FINN's "SIMD" knob). Folding never changes element *order*,
//! only per-cycle width, so logits stay bit-identical; the analytic
//! models in [`crate::cycles`] and [`crate::resources`] expose matching
//! fold-aware estimates that the DSE in `qnn-compiler` searches over.

/// Folding factors for one layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fold {
    /// Output lanes: filter results emitted per clock per window position.
    pub pe: usize,
    /// Input lanes: window elements absorbed per clock.
    pub simd: usize,
}

impl Fold {
    /// The no-folding identity (one element per port per clock).
    pub const UNIT: Fold = Fold { pe: 1, simd: 1 };

    /// A fold with the given lane counts (both must be ≥ 1).
    pub fn new(pe: usize, simd: usize) -> Self {
        assert!(pe >= 1 && simd >= 1, "folding factors must be ≥ 1");
        Fold { pe, simd }
    }

    /// True when this fold is the identity.
    pub fn is_unit(&self) -> bool {
        *self == Fold::UNIT
    }
}

impl Default for Fold {
    fn default() -> Self {
        Fold::UNIT
    }
}

/// A per-layer folding assignment, keyed by the lowering's stage labels
/// (`conv0`, `pool1`, `fc5`, `res2.conv1`, …). Layers not mentioned run
/// at [`Fold::UNIT`]. Stored as a sorted vector so the plan is `Eq` and
/// `Hash` (it participates in compiler artifact-cache keys).
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct FoldPlan {
    entries: Vec<(String, Fold)>,
}

impl FoldPlan {
    /// An empty plan: every layer at `Fold::UNIT`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the fold for `label`, replacing any previous entry.
    pub fn set(&mut self, label: &str, fold: Fold) -> &mut Self {
        match self.entries.binary_search_by(|(l, _)| l.as_str().cmp(label)) {
            Ok(i) => self.entries[i].1 = fold,
            Err(i) => self.entries.insert(i, (label.to_string(), fold)),
        }
        self
    }

    /// Builder-style [`FoldPlan::set`].
    pub fn with(mut self, label: &str, fold: Fold) -> Self {
        self.set(label, fold);
        self
    }

    /// The fold for `label` (`Fold::UNIT` when absent).
    pub fn get(&self, label: &str) -> Fold {
        self.entries
            .binary_search_by(|(l, _)| l.as_str().cmp(label))
            .map(|i| self.entries[i].1)
            .unwrap_or(Fold::UNIT)
    }

    /// All explicit entries, sorted by label.
    pub fn entries(&self) -> &[(String, Fold)] {
        &self.entries
    }

    /// True when no layer is folded (every entry is the identity).
    pub fn is_uniform(&self) -> bool {
        self.entries.iter().all(|(_, f)| f.is_unit())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_lookup_defaults_to_unit() {
        let plan = FoldPlan::new().with("conv0", Fold::new(4, 2));
        assert_eq!(plan.get("conv0"), Fold { pe: 4, simd: 2 });
        assert_eq!(plan.get("pool1"), Fold::UNIT);
        assert!(!plan.is_uniform());
        assert!(FoldPlan::new().is_uniform());
    }

    #[test]
    fn set_replaces_and_keeps_sorted() {
        let mut plan = FoldPlan::new();
        plan.set("fc5", Fold::new(2, 1));
        plan.set("conv0", Fold::new(8, 8));
        plan.set("fc5", Fold::new(4, 4));
        assert_eq!(plan.entries().len(), 2);
        assert_eq!(plan.entries()[0].0, "conv0");
        assert_eq!(plan.get("fc5"), Fold::new(4, 4));
    }

    #[test]
    #[should_panic(expected = "folding factors must be ≥ 1")]
    fn zero_fold_rejected() {
        let _ = Fold::new(0, 1);
    }
}
