//! GPU baseline latency model (paper Table IIa, §IV-A).
//!
//! The paper times Hubara et al.'s QNN code (Theano + cuDNN) on a Tesla
//! P100 and a GTX 1080. We have no GPU, so we model the two regimes the
//! paper's results exhibit:
//!
//! * a **per-layer launch/synchronization floor** — "each layer waits until
//!   the previous one finishes" (§IV-B2), which dominates small inputs and
//!   is why the DFE is 12% *faster* at 32×32 (§IV-B1, kernel-invocation
//!   overhead);
//! * an **effective-throughput term** `MACs / (peak · efficiency)` that
//!   dominates at 224×224, where the GPUs win.
//!
//! Layer time = `max(launch_floor, macs/throughput)`; image time is the
//! sum over launched ops. Minibatching amortizes the floor (the paper's
//! §IV-B1 remark about batches of 128–256).

use qnn_nn::{NetworkSpec, Stage};

/// GPU device description (Table IIa).
#[derive(Clone, Copy, Debug)]
pub struct GpuSpec {
    /// Device name.
    pub name: &'static str,
    /// CUDA cores.
    pub cuda_cores: u64,
    /// Core clock in MHz.
    pub core_clock_mhz: f64,
    /// Board TDP in watts (for the power model).
    pub tdp_w: f64,
}

/// Nvidia Tesla P100-12GB (Pascal).
pub const P100: GpuSpec = GpuSpec {
    name: "Tesla P100",
    cuda_cores: 3584,
    core_clock_mhz: 1480.0,
    tdp_w: 250.0,
};

/// Nvidia GeForce GTX 1080 (Pascal).
pub const GTX1080: GpuSpec = GpuSpec {
    name: "GTX 1080",
    cuda_cores: 2560,
    core_clock_mhz: 1733.0,
    tdp_w: 180.0,
};

/// Calibrated latency model for one GPU.
#[derive(Clone, Copy, Debug)]
pub struct GpuModel {
    /// The device.
    pub spec: GpuSpec,
    /// Per-launched-op floor in milliseconds (driver + Theano dispatch +
    /// inter-layer synchronization).
    pub launch_ms: f64,
    /// Fraction of peak FMA throughput the framework's QNN kernels reach.
    pub efficiency: f64,
}

impl GpuModel {
    /// Default calibration for a device (launch floor ~80 µs, 6% of peak —
    /// Theano-era single-image inference; the floor reproduces the paper's
    /// §IV-B1 observation that the DFE wins at 32×32 by ~12%).
    pub fn new(spec: GpuSpec) -> Self {
        let launch_ms = if spec.cuda_cores >= 3000 { 0.08 } else { 0.075 };
        Self { spec, launch_ms, efficiency: 0.06 }
    }

    /// Peak multiply–accumulate rate (FMA) in MAC/s.
    pub fn peak_macs_per_s(&self) -> f64 {
        self.spec.cuda_cores as f64 * self.spec.core_clock_mhz * 1e6 * 2.0
    }

    /// Effective throughput after the efficiency factor.
    pub fn effective_macs_per_s(&self) -> f64 {
        self.peak_macs_per_s() * self.efficiency
    }

    /// Launched ops for a network: one per convolution, pool and FC layer
    /// plus one per skip-connection add.
    pub fn launched_ops(spec: &NetworkSpec) -> Vec<(String, u64)> {
        let mut ops = Vec::new();
        for (i, stage) in spec.stages.iter().enumerate() {
            match stage {
                Stage::ConvInput { geom } | Stage::Conv { geom } => {
                    ops.push((format!("conv{i}"), geom.macs()));
                }
                Stage::Pool { .. } => ops.push((format!("pool{i}"), 0)),
                Stage::FullyConnected { in_features, out_features, .. } => {
                    ops.push((format!("fc{i}"), (*in_features * *out_features) as u64));
                }
                Stage::Residual { geom } => {
                    ops.push((format!("res{i}.conv1"), geom.conv1.macs()));
                    ops.push((format!("res{i}.conv2"), geom.conv2.macs()));
                    if let Some(ds) = &geom.downsample {
                        ops.push((format!("res{i}.ds"), ds.macs()));
                    }
                    ops.push((format!("res{i}.add"), 0));
                }
                Stage::Encoder { geom } => {
                    let mut suffixes = vec!["q", "k", "v", "proj"];
                    if geom.has_ffn() {
                        suffixes.extend(["ff1", "ff2"]);
                    }
                    for (suffix, g) in suffixes.iter().zip(geom.projection_geometries()) {
                        ops.push((format!("enc{i}.{suffix}"), g.macs()));
                    }
                    // One batched launch covers all heads' QKᵀ and AV.
                    ops.push((format!("enc{i}.attn"), geom.attention_macs()));
                    ops.push((format!("enc{i}.add"), 0));
                }
            }
        }
        ops
    }

    /// Single-image inference latency in milliseconds.
    pub fn time_ms(&self, spec: &NetworkSpec) -> f64 {
        let thru = self.effective_macs_per_s();
        Self::launched_ops(spec)
            .iter()
            .map(|(_, macs)| (*macs as f64 / thru * 1e3).max(self.launch_ms))
            .sum()
    }

    /// Per-image latency when `batch` images are processed together: the
    /// launch floor amortizes, the compute term does not.
    pub fn time_ms_batched(&self, spec: &NetworkSpec, batch: u32) -> f64 {
        assert!(batch >= 1);
        let thru = self.effective_macs_per_s();
        Self::launched_ops(spec)
            .iter()
            .map(|(_, macs)| {
                let compute = *macs as f64 * batch as f64 / thru * 1e3;
                compute.max(self.launch_ms) / batch as f64
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnn_nn::models;

    #[test]
    fn specs_match_table2a() {
        assert_eq!(P100.cuda_cores, 3584);
        assert_eq!(P100.core_clock_mhz, 1480.0);
        assert_eq!(GTX1080.cuda_cores, 2560);
        assert_eq!(GTX1080.core_clock_mhz, 1733.0);
    }

    #[test]
    fn small_input_is_launch_bound() {
        // At 32×32 every op sits at the launch floor; the total is ops × L.
        let m = GpuModel::new(P100);
        let spec = models::vgg_like(32, 10, 2);
        let ops = GpuModel::launched_ops(&spec).len() as f64;
        let t = m.time_ms(&spec);
        assert!(t >= ops * m.launch_ms * 0.9, "t={t}");
        assert!(t <= ops * m.launch_ms * 1.6, "t={t}");
    }

    #[test]
    fn large_input_is_compute_bound() {
        let m = GpuModel::new(P100);
        let alex = models::alexnet(1000);
        let t = m.time_ms(&alex);
        let floor = GpuModel::launched_ops(&alex).len() as f64 * m.launch_ms;
        assert!(t > 1.5 * floor, "AlexNet at 224² must exceed the launch floor: {t} vs {floor}");
    }

    #[test]
    fn gpu_depth_penalty_exceeds_dfe_penalty() {
        // §IV-B2: on GPUs, doubling layers costs ~42.5% more; on the DFE
        // only 17.5%. The model must show a substantial GPU depth penalty.
        let m = GpuModel::new(P100);
        let ratio = m.time_ms(&models::resnet18(1000)) / m.time_ms(&models::alexnet(1000));
        assert!(ratio > 1.3, "GPU ResNet/AlexNet ratio {ratio}");
    }

    #[test]
    fn batching_amortizes_launch_floor() {
        let m = GpuModel::new(P100);
        let spec = models::vgg_like(32, 10, 2);
        let single = m.time_ms(&spec);
        let batched = m.time_ms_batched(&spec, 256);
        assert!(
            batched < single / 3.0,
            "batching should slash per-image time: {single} → {batched}"
        );
        // At batch 256 the model is compute-bound, not launch-bound.
        let compute_bound: f64 = GpuModel::launched_ops(&spec)
            .iter()
            .map(|(_, macs)| *macs as f64 / m.effective_macs_per_s() * 1e3)
            .sum();
        assert!(batched >= compute_bound * 0.99);
        // And batched-by-1 equals single.
        assert!((m.time_ms_batched(&spec, 1) - single).abs() < 1e-12);
    }

    #[test]
    fn p100_beats_gtx1080_on_compute_bound_nets() {
        let res = models::resnet18(1000);
        let p = GpuModel::new(P100).time_ms(&res);
        let g = GpuModel::new(GTX1080).time_ms(&res);
        // P100 has ~20% more peak FMA.
        assert!(p < g, "P100 {p} vs GTX1080 {g}");
    }
}
