//! Analytic hardware models for the streaming QNN architecture.
//!
//! Three model families, all consuming the validated `qnn-nn` network IR:
//!
//! * [`resources`] — per-stage LUT/FF/BRAM estimates for the DFE design,
//!   built from the paper's own arithmetic (window-buffer sizes, weight
//!   cache geometry with the depth-512 BRAM quantization waste of
//!   §III-B1a) plus infrastructure constants calibrated against the three
//!   resource totals the paper reports (Tables III and IV).
//! * [`cycles`] — the clock-cycle model behind §IV-B4's "1.85×10⁶ clocks
//!   per picture" estimate: per-layer busy cycles (stream-in + halt-and-
//!   compute), pipeline fill latency, and steady-state period. The cycle
//!   simulator in `dfe-platform` is the ground truth; tests keep this model
//!   within tolerance of it.
//! * [`gpu`] / [`power`] — the GPU baseline latency model (per-layer launch
//!   overhead + effective GEMM throughput, specs from Table IIa) and the
//!   power/energy models for Figures 7 and 8.

pub mod cycles;
pub mod folding;
pub mod gpu;
pub mod lmem;
pub mod pcie;
pub mod power;
pub mod resources;
pub mod specs;

pub use cycles::{CycleModel, LayerCycles};
pub use folding::{Fold, FoldPlan};
pub use gpu::{GpuModel, GpuSpec, GTX1080, P100};
pub use power::{dfe_power_watts, energy_joules, gpu_power_watts, PowerBreakdown};
pub use resources::{
    estimate_network, estimate_network_folded, estimate_stage, estimate_stage_folded,
    NetworkResources, StageResources,
};
pub use specs::FinnReference;
