//! LMem (off-chip DRAM) alternative-design model.
//!
//! The paper deliberately uses only on-chip FMem: "in this work we used
//! only the memory that is embedded in the FPGA fabric" (§II-B), because
//! the compact QNN parameters fit and FMem supplies a full filter per
//! clock. This module quantifies the alternative the paper rejected —
//! weights resident in LMem — to show *why* the on-chip choice wins: a
//! convolution needs `K·K·I` weight bits per clock (one cache entry), and
//! for the paper's layers that per-kernel demand alone can exceed the
//! entire LMem interface.

use qnn_nn::{NetworkSpec, Stage};

/// LMem interface bandwidth per DFE in Gbit/s (MAX4: ~38 GB/s DDR3 ⇒
/// ≈300 Gbit/s peak; we use a realistic 240 Gbit/s sustained).
pub const LMEM_SUSTAINED_GBPS: f64 = 240.0;

/// Weight-fetch bandwidth one convolution kernel would demand with weights
/// in LMem, in Gbit/s: one `K·K·I`-bit cache row per output cycle.
pub fn conv_weight_demand_gbps(weights_per_filter: usize, fclk_mhz: f64) -> f64 {
    weights_per_filter as f64 * fclk_mhz / 1e3
}

/// Aggregate LMem weight-fetch demand of every convolution/FC kernel in
/// the design running concurrently (the streaming pipeline keeps all
/// layers active at once), in Gbit/s.
pub fn network_weight_demand_gbps(spec: &NetworkSpec, fclk_mhz: f64) -> f64 {
    spec.stages
        .iter()
        .flat_map(Stage::conv_geometries)
        .map(|g| conv_weight_demand_gbps(g.filter.weights_per_filter(), fclk_mhz))
        .sum()
}

/// Slowdown factor an LMem-weight design would suffer relative to the
/// on-chip design (1.0 = no slowdown): the pipeline throttles to the
/// available weight bandwidth.
pub fn lmem_slowdown(spec: &NetworkSpec, fclk_mhz: f64, dfes: usize) -> f64 {
    let demand = network_weight_demand_gbps(spec, fclk_mhz);
    let supply = LMEM_SUSTAINED_GBPS * dfes as f64;
    (demand / supply).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnn_nn::models;

    #[test]
    fn single_large_layer_already_strains_lmem() {
        // ResNet conv5_x: 4608-bit rows at 105 MHz ≈ 484 Gbit/s — more
        // than a whole DFE's LMem interface for one kernel.
        let demand = conv_weight_demand_gbps(4608, 105.0);
        assert!(demand > LMEM_SUSTAINED_GBPS, "demand {demand} Gbit/s");
    }

    #[test]
    fn resnet_lmem_design_would_be_several_times_slower() {
        let slow = lmem_slowdown(&models::resnet18(1000), 105.0, 3);
        assert!(slow > 3.0, "LMem slowdown only {slow}×");
    }

    #[test]
    fn on_chip_choice_is_justified_for_every_paper_network() {
        for spec in [
            models::vgg_like(32, 10, 2),
            models::alexnet(1000),
            models::resnet18(1000),
        ] {
            assert!(
                lmem_slowdown(&spec, 105.0, 3) > 1.0,
                "{}: LMem would have been free?!",
                spec.name
            );
        }
    }

    #[test]
    fn tiny_network_could_live_with_lmem() {
        // Sanity: the model is not a constant — a small-enough design fits.
        let spec = models::test_net(8, 4, 2);
        assert!((1.0..4.0).contains(&lmem_slowdown(&spec, 105.0, 1)));
    }
}
