//! PCIe host-link model: parameter loading and image streaming.
//!
//! The paper keeps all pre-trained weights and normalization parameters on
//! the CPU and loads them into the DFE caches "only once, before inference
//! of images starts" (§III-B1a); weights travel as 32-bit floats and are
//! binarized on arrival. Images stream over the same link during
//! inference. This module quantifies both, showing (a) why one-time
//! parameter load is negligible once amortized over the paper's 50 000
//! image runs, and (b) that PCIe never binds the pipeline — the fabric
//! consumes at most 8 bits × 105 MHz per image stream, far below even
//! PCIe 2.0 rates.

use qnn_nn::NetworkSpec;

/// Effective host→DFE bandwidth in Gbit/s. The MAX4's PCIe gen2 ×8 link
/// sustains ~3.2 GB/s in practice; we use a conservative 20 Gbit/s.
pub const PCIE_EFFECTIVE_GBPS: f64 = 20.0;

/// Bits sent over PCIe to load one network's parameters: weights travel as
/// 32-bit floats (binarized on the DFE, §III-B1a), normalization
/// parameters as one 64-bit word per neuron.
pub fn parameter_load_bits(spec: &NetworkSpec) -> u64 {
    let weight_bits = spec.total_weight_bits() as u64 * 32;
    let bn_bits = spec.total_bn_neurons() as u64 * 64;
    weight_bits + bn_bits
}

/// One-time parameter load in milliseconds.
pub fn parameter_load_ms(spec: &NetworkSpec) -> f64 {
    parameter_load_bits(spec) as f64 / (PCIE_EFFECTIVE_GBPS * 1e6)
}

/// Per-image input-stream time in milliseconds, if PCIe were the only
/// constraint (8-bit pixels).
pub fn image_stream_ms(spec: &NetworkSpec) -> f64 {
    (spec.input.len() as u64 * 8) as f64 / (PCIE_EFFECTIVE_GBPS * 1e6)
}

/// Fraction of total runtime spent on the one-time parameter load when
/// `images` are processed at `per_image_ms` each.
pub fn load_amortization(spec: &NetworkSpec, images: u64, per_image_ms: f64) -> f64 {
    let load = parameter_load_ms(spec);
    load / (load + images as f64 * per_image_ms)
}

/// Does the image stream fit the link at the fabric's consumption rate?
/// The fabric pulls one 8-bit element per cycle at `fclk_mhz`.
pub fn image_stream_fits(fclk_mhz: f64) -> bool {
    8.0 * fclk_mhz <= PCIE_EFFECTIVE_GBPS * 1e3
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnn_nn::models;

    #[test]
    fn resnet_parameter_load_is_tens_of_ms() {
        // ~11 Mbit of weights × 32-bit transport ≈ 360 Mbit ≈ 18 ms.
        let ms = parameter_load_ms(&models::resnet18(1000));
        assert!((5.0..60.0).contains(&ms), "load {ms} ms");
    }

    #[test]
    fn load_amortizes_below_one_percent_over_papers_run() {
        // 50 000 images (§IV-A) at the measured 16.1 ms each.
        let f = load_amortization(&models::resnet18(1000), 50_000, 16.1);
        assert!(f < 0.01, "parameter load is {:.3}% of the run", f * 100.0);
    }

    #[test]
    fn single_image_would_be_load_dominated() {
        // The flip side: a cold single-shot inference pays the load.
        let f = load_amortization(&models::resnet18(1000), 1, 16.1);
        assert!(f > 0.4, "cold start fraction {f}");
    }

    #[test]
    fn pcie_never_binds_the_image_stream() {
        assert!(image_stream_fits(105.0));
        assert!(image_stream_fits(5.0 * 105.0)); // even at Stratix 10 clocks
        // A 224×224×3 image is ~1.2 Mbit: well under 0.1 ms on the link.
        let ms = image_stream_ms(&models::resnet18(1000));
        assert!(ms < 0.1, "image stream {ms} ms");
    }

    #[test]
    fn bn_parameters_are_a_small_fraction() {
        let spec = models::resnet18(1000);
        let bn = spec.total_bn_neurons() as u64 * 64;
        assert!(bn * 20 < parameter_load_bits(&spec), "BN share too large");
    }
}
