//! Power and energy models (paper Figures 7 and 8).
//!
//! FPGA board power = per-DFE static power + a dynamic term proportional to
//! the occupied fabric (resource utilization is the standard first-order
//! proxy for switched capacitance at a fixed clock). Calibrated so a
//! single-DFE CNV design draws the 12 W of Table IVa.
//!
//! GPU inference power is a fixed fraction of TDP — single-image inference
//! keeps Pascal boards near their sustained gaming/compute draw, which is
//! how the paper's ≥15× power gap at 32×32 arises.

use crate::gpu::GpuSpec;
use dfe_platform::{DeviceSpec, ResourceUsage};

/// Static power drawn by one powered DFE regardless of design (board,
/// transceivers, configured-but-idle fabric).
pub const DFE_STATIC_W: f64 = 6.5;
/// Dynamic power at 100% fabric utilization and the 105 MHz clock.
pub const DFE_DYNAMIC_FULL_W: f64 = 9.5;
/// Fraction of TDP a Pascal GPU draws during single-image inference.
pub const GPU_INFERENCE_TDP_FRACTION: f64 = 0.72;

/// Static/dynamic decomposition of a DFE design's power.
#[derive(Clone, Copy, Debug)]
pub struct PowerBreakdown {
    /// Static watts (scales with DFE count).
    pub static_w: f64,
    /// Dynamic watts (scales with occupied fabric).
    pub dynamic_w: f64,
}

impl PowerBreakdown {
    /// Total board power.
    pub fn total(&self) -> f64 {
        self.static_w + self.dynamic_w
    }
}

/// Board power for a design occupying `usage` spread over `num_dfes`
/// devices of type `dev`, scaled to fabric clock `fclk_mhz`.
pub fn dfe_power_watts(
    usage: ResourceUsage,
    num_dfes: usize,
    dev: &DeviceSpec,
    fclk_mhz: f64,
) -> PowerBreakdown {
    assert!(num_dfes >= 1);
    // Switched-capacitance proxy over the whole deployed fabric: logic
    // toggles hardest, registers and BRAM contribute less per occupied bit
    // (standard early-power-estimation weighting).
    let n = num_dfes as f64;
    let lut_u = usage.luts as f64 / (dev.luts as f64 * n);
    let ff_u = usage.ffs as f64 / (dev.ffs as f64 * n);
    let bram_u = usage.bram_kbits as f64 / (dev.bram_kbits as f64 * n);
    let util = (0.6 * lut_u + 0.2 * ff_u + 0.2 * bram_u).min(1.0);
    let clock_scale = fclk_mhz / dev.fclk_mhz;
    PowerBreakdown {
        static_w: DFE_STATIC_W * n,
        dynamic_w: DFE_DYNAMIC_FULL_W * util * n * clock_scale,
    }
}

/// GPU board power during single-image inference.
pub fn gpu_power_watts(spec: &GpuSpec) -> f64 {
    spec.tdp_w * GPU_INFERENCE_TDP_FRACTION
}

/// Energy per image in joules for a device drawing `power_w` over
/// `time_ms`.
pub fn energy_joules(power_w: f64, time_ms: f64) -> f64 {
    power_w * time_ms / 1e3
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::{GTX1080, P100};
    use crate::specs::paper;
    use dfe_platform::{MAIA_FCLK_MHZ, STRATIX_V_5SGSD8};

    fn vgg32_usage() -> ResourceUsage {
        ResourceUsage {
            luts: paper::VGG32_LUT,
            ffs: paper::VGG32_FF,
            bram_kbits: paper::VGG32_BRAM_KBITS,
        }
    }

    #[test]
    fn single_dfe_cnv_draws_about_12_watts() {
        let p = dfe_power_watts(vgg32_usage(), 1, &STRATIX_V_5SGSD8, MAIA_FCLK_MHZ);
        assert!(
            (10.0..14.0).contains(&p.total()),
            "CNV DFE power {} vs Table IVa's 12 W",
            p.total()
        );
    }

    #[test]
    fn vgg_power_gap_is_at_least_15x() {
        // Fig. 7: DFE vs GPU power for VGG-like nets is ≥15×.
        let dfe = dfe_power_watts(vgg32_usage(), 1, &STRATIX_V_5SGSD8, MAIA_FCLK_MHZ).total();
        for gpu in [P100, GTX1080] {
            let g = gpu_power_watts(&gpu);
            assert!(g / dfe >= 10.0, "{}: {g}/{dfe}", gpu.name);
        }
        assert!(gpu_power_watts(&P100) / dfe >= 15.0);
    }

    #[test]
    fn multi_dfe_power_scales_with_devices() {
        let one = dfe_power_watts(vgg32_usage(), 1, &STRATIX_V_5SGSD8, MAIA_FCLK_MHZ).total();
        let three = dfe_power_watts(vgg32_usage(), 3, &STRATIX_V_5SGSD8, MAIA_FCLK_MHZ).total();
        assert!(three > 2.0 * one / 1.5, "static power must scale: {one} vs {three}");
        assert!(three < 3.0 * one, "same design on more DFEs is not 3× dynamic");
    }

    #[test]
    fn energy_is_power_times_time() {
        assert!((energy_joules(12.0, 0.8) - 0.0096).abs() < 1e-12);
        // Table IV regime: FINN 3.6 W × 0.0456 ms vs DFE 12 W × 0.8 ms.
        let finn = energy_joules(3.6, 0.0456);
        let dfe = energy_joules(12.0, 0.8);
        assert!(dfe > finn, "FINN's binary design is more energy-frugal per image");
    }

    #[test]
    fn gpu_power_fractions() {
        assert!((gpu_power_watts(&P100) - 180.0).abs() < 1.0);
        assert!((gpu_power_watts(&GTX1080) - 129.6).abs() < 1.0);
    }
}
