//! Per-stage FPGA resource estimation.
//!
//! The *structural* terms come straight from the paper's arithmetic:
//!
//! * window (shift-register) buffers of `I·(W·(K−1)+K)` elements — Fig. 4a;
//! * weight caches of `O` entries × `K·K·I` bits, mapped onto M20K BRAM in
//!   its 512×40 shape, so a cache with ≤384 entries wastes ≥25% of each
//!   block (§III-B1a);
//! * BatchNorm caches of `O` entries × 64 bits (§III-B1a);
//! * skip buffers sized like a convolution window buffer, carrying 16-bit
//!   data (§III-B5).
//!
//! The *infrastructure* terms (per-kernel stream controllers, manager glue,
//! pipelined popcount registers) are constants calibrated so that the model
//! lands on the paper's reported totals for all three networks (Table III
//! and Table IV); see `specs::paper` and the calibration tests.

use qnn_nn::{NetworkSpec, PoolKind, Stage};
use qnn_tensor::ConvGeometry;

use crate::folding::{Fold, FoldPlan};
use dfe_platform::ResourceUsage;

/// LUTs per datapath bit-plane bit: XNOR + pipelined popcount compressor
/// tree + routing, per window bit per activation plane.
const LUT_PER_DATAPATH_BIT: f64 = 5.5;
/// Fixed LUTs per major kernel (convolution/FC): stream control, counters,
/// address generators, Maxeler manager glue.
const LUT_MAJOR_FIXED: u64 = 6_300;
/// Fixed LUTs per minor kernel (pad, pool, add, split, threshold).
const LUT_MINOR_FIXED: u64 = 1_000;
/// Global FF multiplier (tool/pipeline overhead over the structural bits).
const FF_SCALE: f64 = 1.7;
/// FF base per major kernel.
const FF_MAJOR_FIXED: u64 = 5_000;
/// FF base per minor kernel.
const FF_MINOR_FIXED: u64 = 1_000;
/// M20K width when configured at its minimum depth of 512.
const BRAM_WIDTH_BITS: u64 = 40;
/// Minimum BRAM depth (paper §III-B1a).
const BRAM_MIN_DEPTH: u64 = 512;
/// Kbits per M20K block.
const BRAM_BLOCK_KBITS: u64 = 20;
/// Housekeeping BRAM per kernel (stream FIFOs, control) in blocks.
const BRAM_PER_KERNEL_BLOCKS: u64 = 4;
/// Per-DFE infrastructure BRAM (PCIe/DMA buffers, manager) in blocks.
const BRAM_PER_DFE_BLOCKS: u64 = 100;
/// LUTs per extra input (SIMD) lane: wider window-buffer write ports and
/// the lane-steering muxes in front of them.
const LUT_PER_SIMD_LANE: u64 = 150;
/// FF bits per extra lane (input staging registers), before `FF_SCALE`.
const FF_PER_LANE: u64 = 64;

/// Infrastructure BRAM charged per opened device, exposed so the
/// partitioner and the whole-network estimator stay in lock-step.
pub const PER_DFE_INFRA_BRAM_KBITS: u64 = BRAM_PER_DFE_BLOCKS * BRAM_BLOCK_KBITS;

/// Resource estimate of one pipeline stage, with its kernel count.
#[derive(Clone, Copy, Debug, Default)]
pub struct StageResources {
    /// Combined usage of every kernel the stage lowers to.
    pub usage: ResourceUsage,
    /// Number of dataflow kernels (major + minor).
    pub kernels: usize,
}

fn bram_blocks(width_bits: u64, entries: u64) -> u64 {
    width_bits.div_ceil(BRAM_WIDTH_BITS) * entries.div_ceil(BRAM_MIN_DEPTH)
}

/// Allocated Kbits for a `entries × width_bits` cache after block-shape
/// quantization.
pub fn cache_alloc_kbits(width_bits: u64, entries: u64) -> u64 {
    bram_blocks(width_bits, entries) * BRAM_BLOCK_KBITS
}

/// Fraction of allocated weight-cache BRAM that is wasted by shape
/// quantization — the §III-B1a "at least 25%" effect when `entries < 512`.
pub fn cache_waste_fraction(width_bits: u64, entries: u64) -> f64 {
    // A block physically stores 512 × 40 bits regardless of the logical
    // cache shape mapped onto it.
    let alloc = (bram_blocks(width_bits, entries) * BRAM_MIN_DEPTH * BRAM_WIDTH_BITS) as f64;
    let used = (width_bits * entries) as f64;
    1.0 - used / alloc
}

/// Estimate one convolution (geometry includes padding; an upstream pad
/// inserter is charged when `geom.pad > 0`).
fn conv_resources(geom: &ConvGeometry, elem_bits: u32, planes: u32, with_bn: bool) -> StageResources {
    conv_resources_folded(geom, elem_bits, planes, with_bn, Fold::UNIT)
}

/// Fold-aware convolution estimate. `pe` replicates the XNOR/popcount
/// datapath and banks the weight cache (`pe` banks of `⌈O/pe⌉` entries —
/// banking never shrinks the cache, block quantization only rounds up);
/// `simd` widens the window-buffer write side. At `Fold::UNIT` this is
/// exactly the unfolded estimate.
fn conv_resources_folded(
    geom: &ConvGeometry,
    elem_bits: u32,
    planes: u32,
    with_bn: bool,
    fold: Fold,
) -> StageResources {
    let padded = ConvGeometry::new(geom.padded_input(), geom.filter, geom.stride, 0);
    let n = geom.filter.weights_per_filter() as u64;
    let o = geom.filter.o as u64;
    // More emit lanes than filters buys nothing; the DSE never asks, but
    // the estimate must stay sane (and monotone) if a caller does.
    let pe = (fold.pe as u64).min(o).max(1);
    let simd = fold.simd as u64;
    let datapath_bits = n * planes as u64;
    let window_bits = padded.depth_first_buffer() as u64 * elem_bits as u64;

    let mut luts = (LUT_PER_DATAPATH_BIT * (datapath_bits * pe) as f64) as u64
        + LUT_MAJOR_FIXED
        + LUT_PER_SIMD_LANE * (simd - 1);
    let mut ffs = (FF_SCALE
        * (window_bits + 2 * datapath_bits * pe + FF_MAJOR_FIXED + FF_PER_LANE * (simd - 1))
            as f64) as u64;
    let mut bram = pe * bram_blocks(n, o.div_ceil(pe)); // banked weight cache
    if with_bn {
        bram += bram_blocks(64, o); // normalization cache
    }
    bram += BRAM_PER_KERNEL_BLOCKS;
    let mut kernels = 1;
    if geom.pad > 0 {
        luts += LUT_MINOR_FIXED + LUT_PER_SIMD_LANE * (simd - 1);
        ffs += (FF_SCALE * (FF_MINOR_FIXED + FF_PER_LANE * (simd - 1)) as f64) as u64;
        bram += BRAM_PER_KERNEL_BLOCKS;
        kernels += 1;
    }
    StageResources {
        usage: ResourceUsage { luts, ffs, bram_kbits: bram * BRAM_BLOCK_KBITS },
        kernels,
    }
}

fn minor_resources(window_bits: u64, count: usize) -> StageResources {
    StageResources {
        usage: ResourceUsage {
            luts: LUT_MINOR_FIXED * count as u64,
            ffs: (FF_SCALE * (window_bits + FF_MINOR_FIXED * count as u64) as f64) as u64,
            bram_kbits: BRAM_PER_KERNEL_BLOCKS * count as u64 * BRAM_BLOCK_KBITS,
        },
        kernels: count,
    }
}

/// Estimate one encoder stage: the 1×1 projection convolutions (foldable;
/// Q/K/V/ff1 carry fused thresholds, proj/ff2 emit raw accumulators), the
/// per-head attention tile engines with their gather/pending buffers, the
/// sequence-deep skip FIFOs in BRAM, and the stream glue (splits, head
/// fan-out/concat, adders, LayerNorm). `folds == None` is the unfolded
/// estimate; an all-unit plan matches it exactly.
fn encoder_resources(
    geom: &qnn_nn::EncoderGeometry,
    act_bits: u32,
    folds: Option<(&FoldPlan, usize)>,
) -> StageResources {
    let projs = geom.projection_geometries();
    let mut suffixes = vec![("q", true), ("k", true), ("v", true), ("proj", false)];
    if geom.has_ffn() {
        suffixes.extend([("ff1", true), ("ff2", false)]);
    }
    let mut r = StageResources::default();
    for ((suffix, with_bn), g) in suffixes.iter().zip(&projs) {
        let fold = match folds {
            Some((plan, index)) => plan.get(&format!("enc{index}.{suffix}")),
            None => Fold::UNIT,
        };
        let c = conv_resources_folded(g, act_bits, act_bits, *with_bn, fold);
        r.usage = r.usage.plus(c.usage);
        r.kernels += c.kernels;
    }
    // Attention heads: each buffers three gathered seq×head_dim code tiles
    // plus the pending output tile.
    let tile_bits = (geom.seq_len * geom.head_dim) as u64 * act_bits as u64;
    let heads = minor_resources(4 * tile_bits * geom.heads as u64, geom.heads);
    r.usage = r.usage.plus(heads.usage);
    r.kernels += heads.kernels;
    // Skip FIFOs: the attention skip holds the whole sequence (every key
    // must arrive before the first output token); the FFN skip holds two
    // tokens of each width. Both carry 16-bit accumulator data.
    let skip_elems = (geom.seq_len * geom.d_model + 2 * geom.d_model + 64) as u64;
    r.usage.bram_kbits += bram_blocks(16, skip_elems) * BRAM_BLOCK_KBITS;
    let mut glue = 3 + 3 + 1 + 1 + 1; // splits, head fan-outs, concat, add, LN
    if geom.has_ffn() {
        let ff_elems = 2 * (geom.d_model + geom.ff_hidden) as u64 + 64;
        r.usage.bram_kbits += bram_blocks(16, ff_elems) * BRAM_BLOCK_KBITS;
        glue += 3; // split_ff, add2, ln2
    }
    let g = minor_resources(0, glue);
    r.usage = r.usage.plus(g.usage);
    r.kernels += g.kernels;
    r
}

/// Estimate one pipeline stage.
pub fn estimate_stage(stage: &Stage, act_bits: u32) -> StageResources {
    match *stage {
        Stage::ConvInput { geom } => conv_resources(&geom, 8, 8, true),
        Stage::Conv { geom } => conv_resources(&geom, act_bits, act_bits, true),
        Stage::Pool { input, k, pad, kind, .. } => {
            let padded_w = (input.w + 2 * pad) as u64;
            let window_bits =
                input.c as u64 * (padded_w * (k as u64 - 1) + k as u64) * act_bits as u64;
            let kernels = if pad > 0 { 2 } else { 1 };
            let mut r = minor_resources(window_bits, kernels);
            if matches!(kind, PoolKind::AvgSum) {
                // Accumulator per channel.
                r.usage.luts += 500;
            }
            r
        }
        Stage::FullyConnected { in_features, out_features, bn_act } => {
            let geom = ConvGeometry::new(
                qnn_tensor::Shape3::new(1, 1, in_features),
                qnn_tensor::FilterShape::new(1, in_features, out_features),
                1,
                0,
            );
            // FC windows hold activation codes (the avg-pool widening is
            // folded into thresholds, not stored wider).
            conv_resources(&geom, act_bits, act_bits, bn_act)
        }
        Stage::Residual { geom } => {
            let mut r = conv_resources(&geom.conv1, act_bits, act_bits, true);
            let c2 = conv_resources(&geom.conv2, act_bits, act_bits, false);
            r.usage = r.usage.plus(c2.usage);
            r.kernels += c2.kernels;
            if let Some(ds) = geom.downsample {
                let d = conv_resources(&ds, act_bits, act_bits, false);
                r.usage = r.usage.plus(d.usage);
                r.kernels += d.kernels;
            }
            // Skip buffer: one convolution-sized buffer of 16-bit data in
            // BRAM (§III-B5), plus adder, two splits and the post-adder
            // threshold unit.
            let skip_elems = ConvGeometry::new(
                geom.conv2.padded_input(),
                geom.conv2.filter,
                geom.conv2.stride,
                0,
            )
            .depth_first_buffer() as u64;
            let skip_blocks = bram_blocks(16, skip_elems);
            r.usage.bram_kbits += skip_blocks * BRAM_BLOCK_KBITS;
            let glue = minor_resources(0, 4); // add + 2 splits + threshold
            r.usage = r.usage.plus(glue.usage);
            r.kernels += glue.kernels;
            r
        }
        Stage::Encoder { ref geom } => encoder_resources(geom, act_bits, None),
    }
}

/// Estimate one pipeline stage under a [`FoldPlan`]; `index` is the
/// stage's position in the spec (it determines the lowering labels the
/// plan is keyed by). With an all-unit plan this matches
/// [`estimate_stage`] exactly.
pub fn estimate_stage_folded(
    stage: &Stage,
    act_bits: u32,
    index: usize,
    plan: &FoldPlan,
) -> StageResources {
    match *stage {
        Stage::ConvInput { geom } => {
            conv_resources_folded(&geom, 8, 8, true, plan.get(&format!("conv{index}")))
        }
        Stage::Conv { geom } => conv_resources_folded(
            &geom,
            act_bits,
            act_bits,
            true,
            plan.get(&format!("conv{index}")),
        ),
        Stage::Pool { .. } => {
            let f = plan.get(&format!("pool{index}"));
            let lanes = (f.pe + f.simd - 2) as u64;
            let mut r = estimate_stage(stage, act_bits);
            // Wider comparator front-end and emit mux per extra lane.
            r.usage.luts += LUT_PER_SIMD_LANE * lanes;
            r.usage.ffs += (FF_SCALE * (FF_PER_LANE * lanes) as f64) as u64;
            r
        }
        Stage::FullyConnected { in_features, out_features, bn_act } => {
            let geom = ConvGeometry::new(
                qnn_tensor::Shape3::new(1, 1, in_features),
                qnn_tensor::FilterShape::new(1, in_features, out_features),
                1,
                0,
            );
            conv_resources_folded(
                &geom,
                act_bits,
                act_bits,
                bn_act,
                plan.get(&format!("fc{index}")),
            )
        }
        Stage::Residual { geom } => {
            let mut r = conv_resources_folded(
                &geom.conv1,
                act_bits,
                act_bits,
                true,
                plan.get(&format!("res{index}.conv1")),
            );
            let c2 = conv_resources_folded(
                &geom.conv2,
                act_bits,
                act_bits,
                false,
                plan.get(&format!("res{index}.conv2")),
            );
            r.usage = r.usage.plus(c2.usage);
            r.kernels += c2.kernels;
            if let Some(ds) = geom.downsample {
                let d = conv_resources_folded(
                    &ds,
                    act_bits,
                    act_bits,
                    false,
                    plan.get(&format!("res{index}.ds")),
                );
                r.usage = r.usage.plus(d.usage);
                r.kernels += d.kernels;
            }
            let skip_elems = ConvGeometry::new(
                geom.conv2.padded_input(),
                geom.conv2.filter,
                geom.conv2.stride,
                0,
            )
            .depth_first_buffer() as u64;
            r.usage.bram_kbits += bram_blocks(16, skip_elems) * BRAM_BLOCK_KBITS;
            let glue = minor_resources(0, 4); // add + 2 splits + threshold
            r.usage = r.usage.plus(glue.usage);
            r.kernels += glue.kernels;
            r
        }
        Stage::Encoder { ref geom } => encoder_resources(geom, act_bits, Some((plan, index))),
    }
}

/// Whole-network resource estimate.
#[derive(Clone, Debug)]
pub struct NetworkResources {
    /// Per-stage estimates, index-aligned with the spec.
    pub stages: Vec<StageResources>,
    /// Sum over stages (without per-DFE infrastructure).
    pub design: ResourceUsage,
    /// Total including per-DFE infrastructure for `num_dfes` devices.
    pub total: ResourceUsage,
    /// Number of DFEs assumed for the infrastructure term.
    pub num_dfes: usize,
}

/// Estimate a whole network assuming it is spread over `num_dfes` devices.
pub fn estimate_network(spec: &NetworkSpec, num_dfes: usize) -> NetworkResources {
    assert!(num_dfes >= 1);
    let stages: Vec<StageResources> =
        spec.stages.iter().map(|s| estimate_stage(s, spec.act_bits)).collect();
    let design: ResourceUsage = stages.iter().map(|s| s.usage).sum();
    let infra = ResourceUsage {
        luts: 0,
        ffs: 0,
        bram_kbits: BRAM_PER_DFE_BLOCKS * BRAM_BLOCK_KBITS * num_dfes as u64,
    };
    NetworkResources { stages, design, total: design.plus(infra), num_dfes }
}

/// Whole-network estimate under a [`FoldPlan`]. With an all-unit plan this
/// matches [`estimate_network`] exactly.
pub fn estimate_network_folded(
    spec: &NetworkSpec,
    num_dfes: usize,
    plan: &FoldPlan,
) -> NetworkResources {
    assert!(num_dfes >= 1);
    let stages: Vec<StageResources> = spec
        .stages
        .iter()
        .enumerate()
        .map(|(i, s)| estimate_stage_folded(s, spec.act_bits, i, plan))
        .collect();
    let design: ResourceUsage = stages.iter().map(|s| s.usage).sum();
    let infra = ResourceUsage {
        luts: 0,
        ffs: 0,
        bram_kbits: BRAM_PER_DFE_BLOCKS * BRAM_BLOCK_KBITS * num_dfes as u64,
    };
    NetworkResources { stages, design, total: design.plus(infra), num_dfes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specs::paper;
    use qnn_nn::models;

    fn within(actual: u64, reported: u64, tol: f64) -> bool {
        let (a, r) = (actual as f64, reported as f64);
        (a - r).abs() / r <= tol
    }

    /// Calibration: the model must land near the paper's Table III / IV
    /// totals. Tolerances are deliberately loose (these are estimates of a
    /// synthesis tool's output) but tight enough to catch regressions.
    #[test]
    fn alexnet_matches_table3_bands() {
        let r = estimate_network(&models::alexnet(1000), 3);
        assert!(within(r.total.luts, paper::ALEXNET_LUT, 0.30), "LUT {:?}", r.total);
        assert!(within(r.total.ffs, paper::ALEXNET_FF, 0.35), "FF {:?}", r.total);
        assert!(
            within(r.total.bram_kbits, paper::ALEXNET_BRAM_KBITS, 0.30),
            "BRAM {:?}",
            r.total
        );
    }

    #[test]
    fn resnet18_matches_table3_bands() {
        let r = estimate_network(&models::resnet18(1000), 3);
        assert!(within(r.total.luts, paper::RESNET18_LUT, 0.30), "LUT {:?}", r.total);
        assert!(within(r.total.ffs, paper::RESNET18_FF, 0.40), "FF {:?}", r.total);
        assert!(
            within(r.total.bram_kbits, paper::RESNET18_BRAM_KBITS, 0.45),
            "BRAM {:?}",
            r.total
        );
    }

    #[test]
    fn vgg32_matches_table4_bands() {
        let r = estimate_network(&models::vgg_like(32, 10, 2), 1);
        assert!(within(r.total.luts, paper::VGG32_LUT, 0.30), "LUT {:?}", r.total);
        assert!(within(r.total.ffs, paper::VGG32_FF, 0.30), "FF {:?}", r.total);
    }

    #[test]
    fn table3_orderings_reproduced() {
        let alex = estimate_network(&models::alexnet(1000), 3).total;
        let res = estimate_network(&models::resnet18(1000), 3).total;
        // ResNet: more LUTs and FFs (more layers); AlexNet: more BRAM (big
        // FC weight caches) — §IV-B2.
        assert!(res.luts > alex.luts);
        assert!(res.ffs > alex.ffs);
        assert!(alex.bram_kbits > res.bram_kbits);
        // "ResNet-18 requires ∼75% more LUTs": allow 40–120%.
        let ratio = res.luts as f64 / alex.luts as f64;
        assert!((1.4..2.2).contains(&ratio), "LUT ratio {ratio}");
    }

    #[test]
    fn bram_quantization_waste_is_at_least_25_percent() {
        // §III-B1a: max cache entries 384 < depth 512 ⇒ ≥25% waste.
        for o in [64u64, 128, 256, 384] {
            let waste = cache_waste_fraction(576, o);
            assert!(waste >= 0.25, "waste for O={o} is {waste}");
        }
        // A 512-entry cache has no depth waste (width may still waste).
        assert!(cache_waste_fraction(40 * 9, 512) < 0.01);
    }

    #[test]
    fn input_size_scaling_is_modest_for_vgg() {
        // Fig. 6: 32→96 increases resources by only ~5% (weights dominate
        // and are size-independent; only line buffers grow).
        let base = estimate_network(&models::vgg_like(32, 10, 2), 1).total;
        let big = estimate_network(&models::vgg_like(96, 10, 2), 1).total;
        let ff_growth = big.ffs as f64 / base.ffs as f64 - 1.0;
        let lut_growth = big.luts as f64 / base.luts as f64 - 1.0;
        let bram_growth = big.bram_kbits as f64 / base.bram_kbits as f64 - 1.0;
        assert!(lut_growth.abs() < 0.05, "LUT growth {lut_growth}");
        assert!(bram_growth.abs() < 0.05, "BRAM growth {bram_growth}");
        // FFs hold the line buffers, the only structure that scales with
        // the input width — they grow, but far less than the 9× pixel-count
        // increase. (The paper claims ~5% here even for FFs, which is hard
        // to reconcile with its own AlexNet FF total; see EXPERIMENTS.md.)
        assert!(ff_growth > 0.0 && ff_growth < 1.5, "FF growth {ff_growth}");
    }

    #[test]
    fn skip_connection_overhead_is_small() {
        // §III-B5: "the overhead of the addition of a skip connection is
        // negligible" in LUTs (one adder); the buffer costs BRAM.
        let full = estimate_network(&models::resnet18(1000), 3).total;
        let plain = estimate_network(&models::resnet18_plain(1000), 3).total;
        let lut_overhead = (full.luts as f64 - plain.luts as f64) / plain.luts as f64;
        assert!(
            lut_overhead < 0.15,
            "skip connections cost {:.1}% extra LUTs",
            lut_overhead * 100.0
        );
    }

    #[test]
    fn unit_fold_plan_matches_plain_estimate() {
        use crate::folding::FoldPlan;
        for spec in
            [models::resnet18(1000), models::alexnet(1000), models::vgg_like(32, 10, 2)]
        {
            let plain = estimate_network(&spec, 2);
            let unit = estimate_network_folded(&spec, 2, &FoldPlan::new());
            assert_eq!(plain.design, unit.design, "{}", spec.name);
            assert_eq!(plain.total, unit.total, "{}", spec.name);
        }
    }

    #[test]
    fn folding_costs_resources() {
        use crate::folding::{Fold, FoldPlan};
        let spec = models::resnet18(1000);
        let base = estimate_network_folded(&spec, 1, &FoldPlan::new());
        let plan = FoldPlan::new()
            .with("conv0", Fold::new(8, 4))
            .with("res2.conv1", Fold::new(4, 4));
        let folded = estimate_network_folded(&spec, 1, &plan);
        assert!(folded.design.luts > base.design.luts);
        assert!(folded.design.ffs > base.design.ffs);
        assert!(folded.design.bram_kbits >= base.design.bram_kbits);
        // A pe-8 stem conv replicates the 8-plane popcount datapath ~8×;
        // that must show up as a materially larger LUT bill.
        assert!(folded.design.luts as f64 > base.design.luts as f64 * 1.05);
    }

    #[test]
    fn stage_estimates_sum_to_design() {
        let spec = models::vgg_like(32, 10, 2);
        let r = estimate_network(&spec, 1);
        let sum: ResourceUsage = r.stages.iter().map(|s| s.usage).sum();
        assert_eq!(sum, r.design);
        assert!(r.total.bram_kbits > r.design.bram_kbits);
    }
}
