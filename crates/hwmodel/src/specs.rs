//! Published reference numbers used for comparison columns.

/// FINN's published results for the CNV network on CIFAR-10 (paper
/// Table IV, quoting Umuroglu et al.). These are *constants from the
/// paper*, not something we compute — FINN ran on a Xilinx part with
/// binary activations and on-chip input storage, so only trends are
/// comparable (as the paper itself cautions).
#[derive(Clone, Copy, Debug)]
pub struct FinnReference {
    /// Inference time per image, ms.
    pub time_ms: f64,
    /// Board power, W.
    pub power_w: f64,
    /// CIFAR-10 top-1 accuracy (binary activations).
    pub accuracy: f64,
    /// LUTs.
    pub luts: u64,
    /// BRAM in Kbits.
    pub bram_kbits: u64,
}

/// Table IV FINN column.
pub const FINN_CNV_CIFAR10: FinnReference = FinnReference {
    time_ms: 0.0456,
    power_w: 3.6,
    accuracy: 0.801,
    luts: 46_253,
    bram_kbits: 6_696,
};

/// Paper-reported DFE numbers, used by tests/benches to compare our model
/// outputs against the published Tables III and IV.
pub mod paper {
    /// Table III, AlexNet column.
    pub const ALEXNET_LUT: u64 = 343_295;
    /// Table III, AlexNet BRAM (Kbits).
    pub const ALEXNET_BRAM_KBITS: u64 = 34_600;
    /// Table III, AlexNet FFs.
    pub const ALEXNET_FF: u64 = 664_767;
    /// Table III, AlexNet runtime (ms).
    pub const ALEXNET_TIME_MS: f64 = 13.7;

    /// Table III, ResNet-18 column.
    pub const RESNET18_LUT: u64 = 596_081;
    /// Table III, ResNet-18 BRAM (Kbits).
    pub const RESNET18_BRAM_KBITS: u64 = 30_854;
    /// Table III, ResNet-18 FFs.
    pub const RESNET18_FF: u64 = 1_175_373;
    /// Table III, ResNet-18 runtime (ms).
    pub const RESNET18_TIME_MS: f64 = 16.1;

    /// Table IV, DFE column (VGG-like CNV at 32×32).
    pub const VGG32_LUT: u64 = 133_887;
    /// Table IV DFE BRAM (Kbits).
    pub const VGG32_BRAM_KBITS: u64 = 11_020;
    /// Table IV DFE FFs.
    pub const VGG32_FF: u64 = 278_501;
    /// Table IV DFE time (ms).
    pub const VGG32_TIME_MS: f64 = 0.8;
    /// Table IV DFE power (W).
    pub const VGG32_POWER_W: f64 = 12.0;
    /// Table IV DFE accuracy (2-bit activations).
    pub const VGG32_ACCURACY: f64 = 0.842;

    /// §IV-B4: theoretical clocks per picture for ResNet-18.
    pub const RESNET18_CLOCKS_ESTIMATE: f64 = 1.85e6;
    /// Abstract: ResNet-18 top-1 on ImageNet.
    pub const RESNET18_TOP1: f64 = 0.575;
    /// Abstract: AlexNet top-1 with 2-bit activations (vs 41.8% at 1-bit).
    pub const ALEXNET_TOP1_2BIT: f64 = 0.5103;
    /// Abstract: AlexNet top-1 with 1-bit activations.
    pub const ALEXNET_TOP1_1BIT: f64 = 0.418;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finn_constants_match_table4() {
        assert_eq!(FINN_CNV_CIFAR10.luts, 46_253);
        assert!((FINN_CNV_CIFAR10.time_ms - 0.0456).abs() < 1e-12);
    }

    #[test]
    fn paper_table3_ordering_holds() {
        // ResNet needs ~75% more LUTs than AlexNet; AlexNet needs more BRAM
        // (§IV-B2) — sanity-check the transcribed constants.
        let lut_ratio = paper::RESNET18_LUT as f64 / paper::ALEXNET_LUT as f64;
        assert!((1.6..1.9).contains(&lut_ratio));
        const { assert!(paper::ALEXNET_BRAM_KBITS > paper::RESNET18_BRAM_KBITS) };
        // DFE runtime penalty for the deeper net: 17.5%.
        let t_ratio = paper::RESNET18_TIME_MS / paper::ALEXNET_TIME_MS;
        assert!((t_ratio - 1.175).abs() < 0.01);
    }
}
