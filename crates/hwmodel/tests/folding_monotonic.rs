//! Property battery for the fold-aware analytic models: over random
//! specs and random fold assignments,
//!
//! * the cycle estimate is monotone **non-increasing** in either folding
//!   factor (more lanes never cost cycles — both per-layer busy counts
//!   and the whole-pipeline period/latency), and
//! * the resource estimate is monotone **non-decreasing** along the
//!   power-of-two doubling chains the DSE actually searches (BRAM block
//!   quantization guarantees `⌈x⌉ ≤ 2·⌈x/2⌉`, so doubling a bank count
//!   never shrinks the bill; arbitrary non-power steps can round either
//!   way and are deliberately out of scope).

use hw_model::resources::estimate_network_folded;
use hw_model::{CycleModel, Fold, FoldPlan};
use qnn_nn::specgen::spec_strategy;
use qnn_nn::NetworkSpec;
use qnn_testkit::{prop_assert, props};

/// The foldable layer labels of a spec, in model order.
fn foldable_layers(spec: &NetworkSpec) -> Vec<String> {
    CycleModel::analyze(spec).layers.iter().map(|l| l.name.clone()).collect()
}

/// A random fold plan: each layer gets power-of-two factors chosen by
/// consuming bits of `seed`.
fn random_plan(spec: &NetworkSpec, mut seed: u64) -> FoldPlan {
    let mut plan = FoldPlan::new();
    for label in foldable_layers(spec) {
        let pe = 1usize << (seed % 4); // 1..=8
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let simd = 1usize << (seed % 4);
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        plan.set(&label, Fold::new(pe, simd));
    }
    plan
}

props! {
    /// Cycles: doubling any one layer's pe or simd (from an arbitrary
    /// random starting plan) never increases that layer's busy count, the
    /// pipeline period, or the latency.
    #[test]
    fn cycle_estimate_monotone_non_increasing(
        spec in spec_strategy(),
        seed in 0u64..10_000,
        which in 0usize..8,
    ) {
        let Some(spec) = spec else {
            return Ok(());
        };
        let plan = random_plan(&spec, seed);
        let base = CycleModel::analyze_folded(&spec, &plan);
        let layers = foldable_layers(&spec);
        let label = &layers[which % layers.len()];
        let f = plan.get(label);
        for next in [Fold::new(f.pe * 2, f.simd), Fold::new(f.pe, f.simd * 2)] {
            let folded =
                CycleModel::analyze_folded(&spec, &plan.clone().with(label, next));
            prop_assert!(
                folded.period() <= base.period(),
                "period grew under {label}:{next:?}: {} > {}",
                folded.period(),
                base.period()
            );
            prop_assert!(
                folded.latency() <= base.latency(),
                "latency grew under {label}:{next:?}: {} > {}",
                folded.latency(),
                base.latency()
            );
            for (b, a) in base.layers.iter().zip(&folded.layers) {
                prop_assert!(
                    a.busy <= b.busy,
                    "layer {} busy grew: {} > {}",
                    a.name,
                    a.busy,
                    b.busy
                );
            }
        }
    }

    /// Resources: along the same doubling step, LUTs/FFs/BRAM never
    /// decrease.
    #[test]
    fn resource_estimate_monotone_non_decreasing(
        spec in spec_strategy(),
        seed in 0u64..10_000,
        which in 0usize..8,
    ) {
        let Some(spec) = spec else {
            return Ok(());
        };
        let plan = random_plan(&spec, seed);
        let base = estimate_network_folded(&spec, 1, &plan);
        let layers = foldable_layers(&spec);
        let label = &layers[which % layers.len()];
        let f = plan.get(label);
        for next in [
            Fold::new(f.pe * 2, f.simd),
            Fold::new(f.pe, f.simd * 2),
            Fold::new(f.pe * 2, f.simd * 2),
        ] {
            let folded =
                estimate_network_folded(&spec, 1, &plan.clone().with(label, next));
            prop_assert!(
                folded.design.luts >= base.design.luts,
                "LUTs shrank under {label}:{next:?}"
            );
            prop_assert!(
                folded.design.ffs >= base.design.ffs,
                "FFs shrank under {label}:{next:?}"
            );
            prop_assert!(
                folded.design.bram_kbits >= base.design.bram_kbits,
                "BRAM shrank under {label}:{next:?}"
            );
        }
    }

    /// Anchors of the chain: any random plan costs at least the unfolded
    /// design in resources and at most the unfolded pipeline in cycles.
    #[test]
    fn random_plan_bounded_by_unit_plan(
        spec in spec_strategy(),
        seed in 0u64..10_000,
    ) {
        let Some(spec) = spec else {
            return Ok(());
        };
        let plan = random_plan(&spec, seed);
        let unit = FoldPlan::new();
        prop_assert!(
            CycleModel::analyze_folded(&spec, &plan).latency()
                <= CycleModel::analyze_folded(&spec, &unit).latency()
        );
        let folded = estimate_network_folded(&spec, 1, &plan);
        let base = estimate_network_folded(&spec, 1, &unit);
        prop_assert!(folded.design.luts >= base.design.luts);
        prop_assert!(folded.design.ffs >= base.design.ffs);
        prop_assert!(folded.design.bram_kbits >= base.design.bram_kbits);
    }
}
