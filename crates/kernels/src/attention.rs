//! Streaming attention kernels: per-head fan-out, the attention head
//! itself (QKᵀ → threshold-softmax → AV), head concatenation, and integer
//! LayerNorm.
//!
//! An encoder block lowers to a *branching* kernel subgraph: the projected
//! Q/K/V token streams fan out across [`HeadSplitKernel`]s into one
//! [`AttentionHeadKernel`] per head, which rejoin at a [`ConcatKernel`]
//! before the output projection; [`LayerNormKernel`] normalizes the
//! post-residual accumulator stream back into activation codes.
//!
//! All four kernels keep the scalar one-element-per-clock stream contract,
//! so they compose with the conv/pool/elemwise kernels unchanged. None of
//! them overrides [`Kernel::span_hint`] or [`Kernel::replay_token`]: the
//! attention head gathers a whole `seq_len × head_dim` tile before it can
//! emit anything, so its port behaviour is phase-dependent in a way the
//! uniform-span planner cannot describe, and — matching the folded-kernel
//! precedent — the whole family vetoes both span dispatch and schedule
//! replay rather than promise contracts it cannot keep. Transformer graphs
//! therefore always run with live planning; CNN graphs are unaffected.
//!
//! The numeric core lives in `qnn_quant::attention` and is shared verbatim
//! with the reference interpreter, which is what makes the streaming and
//! reference paths bit-identical by construction.

use dfe_platform::{Io, Kernel, Progress, WakeHint};
use qnn_quant::{head_attention, layernorm_codes};

/// Routes a channel-innermost projected token stream onto one output port
/// per head: channel `c` of each token goes to port `c / head_dim`.
///
/// The inverse of [`ConcatKernel`]. One element per cycle; only the
/// destination port of the *current* channel needs room, so a slow head
/// back-pressures the split exactly at its own slice boundary.
pub struct HeadSplitKernel {
    name: String,
    heads: usize,
    head_dim: usize,
    channel: usize,
}

impl HeadSplitKernel {
    /// Create a head splitter for `heads` ports of `head_dim` channels.
    pub fn new(name: impl Into<String>, heads: usize, head_dim: usize) -> Self {
        assert!(heads >= 1 && head_dim >= 1, "head split needs heads, head_dim >= 1");
        Self { name: name.into(), heads, head_dim, channel: 0 }
    }
}

impl Kernel for HeadSplitKernel {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, io: &mut Io<'_>) -> Progress {
        let port = self.channel / self.head_dim;
        if io.can_read(0) && io.can_write(port) {
            let v = io.read(0).expect("checked");
            io.write(port, v);
            self.channel += 1;
            if self.channel == self.heads * self.head_dim {
                self.channel = 0;
            }
            Progress::Busy
        } else if io.can_read(0) {
            Progress::Stalled
        } else {
            Progress::Idle
        }
    }

    /// Port-inert when blocked: the channel counter only advances on a
    /// completed move, so a non-`Busy` tick is a fixed point.
    fn wake_hint(&self) -> WakeHint {
        WakeHint::Parkable
    }
}

/// One attention head: gathers the head's `seq_len × head_dim` Q, K and V
/// code tiles from three input ports, runs the integer
/// QKᵀ → threshold-softmax → AV pipeline, then emits the `seq_len ×
/// head_dim` output tile in token-major order.
///
/// Gather and emit are mutually exclusive phases: while the pending output
/// drains, no input is absorbed (the next sequence's codes simply wait in
/// the upstream FIFOs). Each input port fills independently, so skewed
/// arrival — e.g. V delayed behind Q — costs buffering, not correctness.
pub struct AttentionHeadKernel {
    name: String,
    act_bits: u32,
    seq_len: usize,
    head_dim: usize,
    q: Vec<u8>,
    k: Vec<u8>,
    v: Vec<u8>,
    pending: Vec<u8>,
    emitted: usize,
}

impl AttentionHeadKernel {
    /// Create a head over `seq_len` tokens of `head_dim` codes at
    /// `act_bits` activation precision.
    pub fn new(name: impl Into<String>, act_bits: u32, seq_len: usize, head_dim: usize) -> Self {
        assert!(seq_len >= 1 && head_dim >= 1, "attention head needs seq_len, head_dim >= 1");
        let tile = seq_len * head_dim;
        Self {
            name: name.into(),
            act_bits,
            seq_len,
            head_dim,
            q: Vec::with_capacity(tile),
            k: Vec::with_capacity(tile),
            v: Vec::with_capacity(tile),
            pending: Vec::new(),
            emitted: 0,
        }
    }

    fn tile(&self) -> usize {
        self.seq_len * self.head_dim
    }
}

impl Kernel for AttentionHeadKernel {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, io: &mut Io<'_>) -> Progress {
        // Emit phase: drain the computed tile before touching the inputs.
        if !self.pending.is_empty() {
            if io.can_write(0) {
                let v = self.pending[self.emitted];
                io.write(0, i32::from(v));
                self.emitted += 1;
                if self.emitted == self.pending.len() {
                    self.pending.clear();
                    self.emitted = 0;
                }
                return Progress::Busy;
            }
            return Progress::Stalled;
        }
        // Gather phase: absorb at most one element per port per cycle.
        let tile = self.tile();
        let mut moved = false;
        let mut waiting = false;
        for (port, buf) in [(0usize, &mut self.q), (1, &mut self.k), (2, &mut self.v)] {
            if buf.len() < tile && io.can_read(port) {
                let raw = io.read(port).expect("checked");
                let code = u8::try_from(raw).expect("activation code fits u8");
                buf.push(code);
                moved = true;
            } else if io.can_read(port) {
                waiting = true;
            }
        }
        if self.q.len() == tile && self.k.len() == tile && self.v.len() == tile {
            self.pending = head_attention(self.act_bits, self.head_dim, &self.q, &self.k, &self.v);
            self.q.clear();
            self.k.clear();
            self.v.clear();
        }
        if moved {
            Progress::Busy
        } else if waiting {
            Progress::Stalled
        } else {
            Progress::Idle
        }
    }

    /// Both phases only act on a stream event (new input while gathering,
    /// output space while emitting), so a non-`Busy` tick is a fixed
    /// point. A full-but-unread port cannot occur: buffers only stay full
    /// for the single tick in which the compute fires and clears them.
    fn wake_hint(&self) -> WakeHint {
        WakeHint::Parkable
    }
}

/// Concatenates per-head output tiles back into a channel-innermost token
/// stream: for each token, `head_dim` elements from port 0, then port 1,
/// and so on — the inverse of [`HeadSplitKernel`].
pub struct ConcatKernel {
    name: String,
    heads: usize,
    head_dim: usize,
    head: usize,
    idx: usize,
}

impl ConcatKernel {
    /// Create a concatenator over `heads` ports of `head_dim` channels.
    pub fn new(name: impl Into<String>, heads: usize, head_dim: usize) -> Self {
        assert!(heads >= 1 && head_dim >= 1, "concat needs heads, head_dim >= 1");
        Self { name: name.into(), heads, head_dim, head: 0, idx: 0 }
    }
}

impl Kernel for ConcatKernel {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, io: &mut Io<'_>) -> Progress {
        if io.can_read(self.head) && io.can_write(0) {
            let v = io.read(self.head).expect("checked");
            io.write(0, v);
            self.idx += 1;
            if self.idx == self.head_dim {
                self.idx = 0;
                self.head += 1;
                if self.head == self.heads {
                    self.head = 0;
                }
            }
            Progress::Busy
        } else if (0..self.heads).any(|p| io.can_read(p)) {
            Progress::Stalled
        } else {
            Progress::Idle
        }
    }

    /// Counters only advance on a completed move; data on a non-current
    /// port cannot unblock the kernel by itself, but it also changes
    /// nothing, so every non-`Busy` tick remains a fixed point until the
    /// *current* port or the output sees an event.
    fn wake_hint(&self) -> WakeHint {
        WakeHint::Parkable
    }
}

/// Integer LayerNorm over the post-residual accumulator stream: gathers
/// one token's `d_model` raw accumulators, normalizes them back into
/// `act_bits` activation codes (`qnn_quant::layernorm_codes`), and emits
/// the codes before absorbing the next token.
pub struct LayerNormKernel {
    name: String,
    gains: Vec<i32>,
    act_bits: u32,
    row: Vec<i32>,
    pending: Vec<u8>,
    emitted: usize,
}

impl LayerNormKernel {
    /// Create a LayerNorm kernel with one positive gain per channel; the
    /// gain count fixes `d_model`.
    pub fn new(name: impl Into<String>, gains: Vec<i32>, act_bits: u32) -> Self {
        assert!(!gains.is_empty(), "layernorm needs at least one channel gain");
        Self {
            name: name.into(),
            gains,
            act_bits,
            row: Vec::new(),
            pending: Vec::new(),
            emitted: 0,
        }
    }
}

impl Kernel for LayerNormKernel {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, io: &mut Io<'_>) -> Progress {
        if !self.pending.is_empty() {
            if io.can_write(0) {
                let v = self.pending[self.emitted];
                io.write(0, i32::from(v));
                self.emitted += 1;
                if self.emitted == self.pending.len() {
                    self.pending.clear();
                    self.emitted = 0;
                }
                return Progress::Busy;
            }
            return Progress::Stalled;
        }
        if io.can_read(0) {
            let v = io.read(0).expect("checked");
            self.row.push(v);
            if self.row.len() == self.gains.len() {
                self.pending = layernorm_codes(&self.row, &self.gains, self.act_bits);
                self.row.clear();
            }
            Progress::Busy
        } else {
            Progress::Idle
        }
    }

    /// Gather acts only on input arrival, emit only on output space: every
    /// non-`Busy` tick is a fixed point.
    fn wake_hint(&self) -> WakeHint {
        WakeHint::Parkable
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfe_platform::ring::DelayLine;
    use dfe_platform::{Graph, HostSink, HostSource, StreamSpec};

    #[test]
    fn head_split_routes_channel_slices() {
        // 2 heads × 2 dims: tokens [1,2,3,4] and [5,6,7,8].
        let mut g = Graph::new();
        let a = g.add_stream(StreamSpec::new("a", 16, 8));
        let h0 = g.add_stream(StreamSpec::new("h0", 16, 8));
        let h1 = g.add_stream(StreamSpec::new("h1", 16, 8));
        g.add_kernel(
            Box::new(HostSource::new("src", vec![1, 2, 3, 4, 5, 6, 7, 8])),
            &[],
            &[a],
        );
        g.add_kernel(Box::new(HeadSplitKernel::new("hs", 2, 2)), &[a], &[h0, h1]);
        let (s0, o0) = HostSink::new("d0", 4);
        let (s1, o1) = HostSink::new("d1", 4);
        g.add_kernel(Box::new(s0), &[h0], &[]);
        g.add_kernel(Box::new(s1), &[h1], &[]);
        g.run(1000).expect("run");
        assert_eq!(o0.take(), vec![1, 2, 5, 6]);
        assert_eq!(o1.take(), vec![3, 4, 7, 8]);
    }

    #[test]
    fn concat_is_the_inverse_of_head_split() {
        let mut g = Graph::new();
        let h0 = g.add_stream(StreamSpec::new("h0", 16, 8));
        let h1 = g.add_stream(StreamSpec::new("h1", 16, 8));
        let c = g.add_stream(StreamSpec::new("c", 16, 8));
        g.add_kernel(Box::new(HostSource::new("s0", vec![1, 2, 5, 6])), &[], &[h0]);
        g.add_kernel(Box::new(HostSource::new("s1", vec![3, 4, 7, 8])), &[], &[h1]);
        g.add_kernel(Box::new(ConcatKernel::new("cat", 2, 2)), &[h0, h1], &[c]);
        let (sink, out) = HostSink::new("dst", 8);
        g.add_kernel(Box::new(sink), &[c], &[]);
        g.run(1000).expect("run");
        assert_eq!(out.take(), vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn attention_head_matches_the_shared_math() {
        let (act_bits, seq_len, head_dim) = (2u32, 3usize, 2usize);
        let q: Vec<u8> = vec![3, 1, 0, 2, 1, 1];
        let k: Vec<u8> = vec![2, 2, 3, 0, 1, 3];
        let v: Vec<u8> = vec![0, 3, 1, 2, 3, 0];
        let want: Vec<i32> = head_attention(act_bits, head_dim, &q, &k, &v)
            .into_iter()
            .map(i32::from)
            .collect();

        let as_i32 = |s: &[u8]| s.iter().map(|&x| i32::from(x)).collect::<Vec<_>>();
        let mut g = Graph::new();
        let sq = g.add_stream(StreamSpec::new("q", 16, 8));
        let sk = g.add_stream(StreamSpec::new("k", 16, 8));
        let sv = g.add_stream(StreamSpec::new("v", 16, 8));
        let so = g.add_stream(StreamSpec::new("o", 16, 8));
        g.add_kernel(Box::new(HostSource::new("srcq", as_i32(&q))), &[], &[sq]);
        g.add_kernel(Box::new(HostSource::new("srck", as_i32(&k))), &[], &[sk]);
        g.add_kernel(Box::new(HostSource::new("srcv", as_i32(&v))), &[], &[sv]);
        g.add_kernel(
            Box::new(AttentionHeadKernel::new("attn", act_bits, seq_len, head_dim)),
            &[sq, sk, sv],
            &[so],
        );
        let (sink, out) = HostSink::new("dst", seq_len * head_dim);
        g.add_kernel(Box::new(sink), &[so], &[]);
        g.run(10_000).expect("run");
        assert_eq!(out.take(), want);
    }

    #[test]
    fn attention_head_resets_between_sequences_and_tolerates_skew() {
        // Two back-to-back sequences with V lagging far behind Q and K:
        // the head must keep the tiles aligned and reset cleanly.
        let (act_bits, seq_len, head_dim) = (2u32, 2usize, 2usize);
        let q: Vec<u8> = vec![1, 2, 3, 0, 2, 2, 0, 1];
        let k: Vec<u8> = vec![0, 3, 1, 1, 3, 3, 2, 0];
        let v: Vec<u8> = vec![2, 0, 1, 3, 0, 2, 3, 1];
        let tile = seq_len * head_dim;
        let mut want = Vec::new();
        for s in 0..2 {
            let r = s * tile..(s + 1) * tile;
            want.extend(
                head_attention(act_bits, head_dim, &q[r.clone()], &k[r.clone()], &v[r])
                    .into_iter()
                    .map(i32::from),
            );
        }

        let as_i32 = |s: &[u8]| s.iter().map(|&x| i32::from(x)).collect::<Vec<_>>();
        let mut g = Graph::new();
        let sq = g.add_stream(StreamSpec::new("q", 16, 16));
        let sk = g.add_stream(StreamSpec::new("k", 16, 16));
        let sv0 = g.add_stream(StreamSpec::new("v0", 16, 16));
        let sv = g.add_stream(StreamSpec::new("v", 16, 16));
        let so = g.add_stream(StreamSpec::new("o", 16, 16));
        g.add_kernel(Box::new(HostSource::new("srcq", as_i32(&q))), &[], &[sq]);
        g.add_kernel(Box::new(HostSource::new("srck", as_i32(&k))), &[], &[sk]);
        g.add_kernel(Box::new(HostSource::new("srcv", as_i32(&v))), &[], &[sv0]);
        g.add_kernel(Box::new(DelayLine::new("lag", 9)), &[sv0], &[sv]);
        g.add_kernel(
            Box::new(AttentionHeadKernel::new("attn", act_bits, seq_len, head_dim)),
            &[sq, sk, sv],
            &[so],
        );
        let (sink, out) = HostSink::new("dst", 2 * tile);
        g.add_kernel(Box::new(sink), &[so], &[]);
        // The delay line's in-flight gap looks like a quiet cycle to the
        // deadlock detector, so run with detection off.
        g.run_opts(10_000, false).expect("run");
        assert_eq!(out.take(), want);
    }

    #[test]
    fn layernorm_kernel_matches_the_shared_math() {
        let gains = vec![1, 2, 3, 1];
        let act_bits = 2u32;
        // Two tokens of raw accumulators, including negatives.
        let rows = [[40, -7, 13, 0], [-3, -3, 25, 8]];
        let mut want = Vec::new();
        for row in &rows {
            want.extend(layernorm_codes(row, &gains, act_bits).into_iter().map(i32::from));
        }

        let mut g = Graph::new();
        let a = g.add_stream(StreamSpec::new("a", 16, 8));
        let b = g.add_stream(StreamSpec::new("b", 16, 8));
        g.add_kernel(
            Box::new(HostSource::new("src", rows.concat())),
            &[],
            &[a],
        );
        g.add_kernel(
            Box::new(LayerNormKernel::new("ln", gains, act_bits)),
            &[a],
            &[b],
        );
        let (sink, out) = HostSink::new("dst", 8);
        g.add_kernel(Box::new(sink), &[b], &[]);
        g.run(1000).expect("run");
        assert_eq!(out.take(), want);
    }

    #[test]
    fn attention_family_vetoes_span_and_replay() {
        let hs = HeadSplitKernel::new("hs", 2, 2);
        let attn = AttentionHeadKernel::new("a", 2, 2, 2);
        let cat = ConcatKernel::new("c", 2, 2);
        let ln = LayerNormKernel::new("l", vec![1, 1], 2);
        let ks: [&dyn Kernel; 4] = [&hs, &attn, &cat, &ln];
        for k in ks {
            assert!(k.span_hint(&[8; 3]).is_none(), "{} must not offer spans", k.name());
            assert!(k.replay_token().is_none(), "{} must veto replay", k.name());
        }
    }
}
