//! The streaming convolution kernel (paper §III-B1, Fig. 3).
//!
//! Dataflow per clock cycle:
//!
//! * **Fill**: one stream element (one channel value, depth-first order)
//!   enters the shift-register window buffer of `I·(W·(K−1)+K)` elements —
//!   the Fig. 4a depth-first buffer, realized here as a ring indexed by the
//!   element's absolute stream position.
//! * **Compute**: once every element of the next valid window has arrived,
//!   the window is latched and the kernel emits one output per clock — one
//!   filter (XNOR-popcount against one weight-cache entry) per cycle, `O`
//!   cycles per position — optionally pushing each accumulator through its
//!   fused BatchNorm+activation thresholds.
//! * Invalid positions (borders already consumed by the upstream
//!   [`crate::PadInserter`], stride gaps) never cost compute cycles, which
//!   is where the stride-4 first layer gets its ~13× speedup (§III-B1).
//! * **Drain**: trailing input elements that no window needs (bottom rows
//!   under striding) are still consumed so the upstream never blocks, then
//!   the kernel resets for the next image.
//!
//! Two input-control disciplines are provided:
//!
//! * [`ConvKernel::new`] — **overlapped** (default): like any MaxJ kernel,
//!   one tick can simultaneously absorb an input element and emit an
//!   output, so a layer is busy for ≈ `max(inputs, outputs)` cycles per
//!   image. This is the discipline consistent with the paper's *measured*
//!   numbers (0.8 ms for CNV at 32², > 60 fps at 144²), which are below the
//!   serialized `inputs + outputs` bound.
//! * [`ConvKernel::new_halted`] — **halt-strict**: the literal reading of
//!   §III-B1 ("the kernel halts the input and calculates one output pixel
//!   per clock cycle"): no input is accepted while a position's filters are
//!   being emitted, giving `inputs + outputs` busy cycles. Kept as an
//!   ablation (`cargo bench -p qnn-bench --bench ablations`).
//!
//! # Busy-path datapaths
//!
//! The *modeled* cycle behavior above is fixed; how the simulator computes
//! each busy cycle's arithmetic is selected by [`ConvDatapath`]:
//!
//! * [`ConvDatapath::Packed`] (default) — pack-on-arrival: code-mode inputs
//!   land directly in a [`PlaneRing`] (O(bits) bit writes per input tick),
//!   a window latch is `K` contiguous bit-span copies per plane, and all
//!   `O` filter accumulators are precomputed in one weights-stationary
//!   blocked bit-GEMM ([`qnn_quant::conv_accumulate_all`]); each emit tick
//!   pops one. The i8 first layer keeps its scalar ring but still
//!   precomputes accumulators at latch time.
//! * [`ConvDatapath::ScalarReference`] — the original datapath: a scalar
//!   `Vec<i32>` ring, a gather-and-repack at every latch, and one full
//!   window dot product per emit tick.
//!
//! Both datapaths make identical `tick` I/O decisions and per-filter
//! arithmetic (`(2·agree − ones) << p`, planes ascending), so outputs *and*
//! [`CycleReport`](dfe_platform::CycleReport)s are bit-identical — enforced
//! by the `conv_datapath_equivalence` differential suite, the golden
//! vectors, and the scheduler-equivalence battery. The process default is
//! read once from `QNN_CONV_DATAPATH` (`packed` / `scalar`; unset ⇒
//! `packed`), mirroring `QNN_SCHEDULER`.

use crate::loader::{LoadStep, ParamLoader};
use dfe_platform::{Io, Kernel, Progress, SpanIo, SpanPlan, WakeHint};
use qnn_quant::{
    conv_accumulate_all, conv_accumulate_all_i8, dot_i8, ActPlanes, PlaneRing, ThresholdUnit,
};
use qnn_tensor::{BinaryFilters, BitVec, ConvGeometry};
use std::sync::OnceLock;

/// Input-operand flavor of the dot-product datapath.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DotMode {
    /// Signed 8-bit fixed-point pixels (the CPU-fed first layer).
    I8,
    /// n-bit activation codes, bit-plane decomposed.
    Codes {
        /// Activation bits (2 in the paper).
        bits: u32,
    },
}

/// How the simulator computes the arithmetic of each modeled busy cycle
/// (see the module docs — the cycle model itself is datapath-independent).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ConvDatapath {
    /// Pack-on-arrival plane ring + blocked accumulator precompute.
    Packed,
    /// Scalar window ring, one full window dot per emit tick. Kept callable
    /// for the differential suite and the `kernels_micro`/`conv_datapath`
    /// benches.
    ScalarReference,
}

impl ConvDatapath {
    /// Resolve the datapath from `QNN_CONV_DATAPATH` (`packed` / `scalar`,
    /// case-insensitive; unset defaults to `Packed`).
    ///
    /// # Panics
    /// Panics on an unrecognized value — a typo silently falling back to a
    /// default would make benchmark A/B runs lie.
    pub fn from_env() -> Self {
        match std::env::var("QNN_CONV_DATAPATH") {
            Ok(v) => match v.to_ascii_lowercase().as_str() {
                "packed" => ConvDatapath::Packed,
                "scalar" | "scalar-reference" | "reference" => ConvDatapath::ScalarReference,
                other => panic!("QNN_CONV_DATAPATH='{other}' (expected 'packed' or 'scalar')"),
            },
            Err(_) => ConvDatapath::Packed,
        }
    }

    /// Process-wide default: `from_env`, resolved once and cached.
    fn default_mode() -> Self {
        static MODE: OnceLock<ConvDatapath> = OnceLock::new();
        *MODE.get_or_init(Self::from_env)
    }
}

impl Default for ConvDatapath {
    /// The process default (see [`ConvDatapath::from_env`]).
    fn default() -> Self {
        Self::default_mode()
    }
}

/// The depth-first window buffer, in whichever representation the active
/// datapath uses. Slot `s` always holds the element whose stream index
/// satisfies `idx % capacity == s`.
enum WindowRing {
    Scalar(Vec<i32>),
    Packed(PlaneRing),
}

impl WindowRing {
    fn capacity(&self) -> usize {
        match self {
            WindowRing::Scalar(r) => r.len(),
            WindowRing::Packed(r) => r.capacity(),
        }
    }
}

/// The streaming convolution kernel.
pub struct ConvKernel {
    name: String,
    geom: ConvGeometry,
    filters: BinaryFilters,
    thresholds: Option<Vec<ThresholdUnit>>,
    mode: DotMode,
    datapath: ConvDatapath,
    // --- window buffer ---
    ring: WindowRing,
    /// Elements of the current image received so far.
    received: usize,
    /// Ring slot the next element lands in (≡ `received % ring.len()`,
    /// kept incrementally — the hot loop runs once per clock).
    wr: usize,
    /// Memo of the last `needed(pos)` query: `(pos, value)`. The tick loop
    /// asks about the same position for thousands of consecutive clocks,
    /// and the div/mod inside `needed` is measurable at ImageNet scale.
    needed_memo: (usize, usize),
    // --- output bookkeeping ---
    /// Linear output position (oy·W_out + ox) currently awaited/computed.
    out_pos: usize,
    /// Next filter to emit for the latched position (None ⇒ filling).
    emitting: Option<usize>,
    /// Halt the input while emitting (see the module docs).
    halt_input: bool,
    /// Output-channel unrolling: filter results emitted per tick (never
    /// crossing a position boundary), FINN's PE folding knob. 1 ⇒ the
    /// paper's one-output-per-clock datapath.
    pe: usize,
    /// Input-window unrolling: elements absorbed per tick, FINN's SIMD
    /// folding knob. 1 ⇒ one stream element per clock.
    simd: usize,
    /// Parameter loader, present until the CPU finishes streaming the
    /// weight/threshold caches over input port 1 (§III-B1a).
    loader: Option<ParamLoader>,
    // --- scratch (reused across positions, no per-cycle allocation) ---
    window_codes: Vec<u8>,
    window_i8: Vec<i8>,
    planes: ActPlanes,
    /// Accumulators precomputed at latch time (packed datapath); emit tick
    /// `o` pops `acc[o]`.
    acc: Vec<i32>,
}

impl ConvKernel {
    /// Create a convolution kernel.
    ///
    /// `geom.pad` must be zero: padding is inserted upstream by
    /// [`crate::PadInserter`], so the kernel sees the padded geometry.
    pub fn new(
        name: impl Into<String>,
        geom: ConvGeometry,
        filters: BinaryFilters,
        thresholds: Option<Vec<ThresholdUnit>>,
        mode: DotMode,
    ) -> Self {
        Self::build(name, geom, filters, thresholds, mode, false)
    }

    /// A kernel whose caches arrive over a second input port as a 32-bit
    /// parameter stream before inference begins (§III-B1a): weights as
    /// floats (binarized by `Sign` on arrival), then — when
    /// `with_thresholds` — the wire-encoded fused BatchNorm units.
    /// Port 0 is the feature-map stream, port 1 the parameter stream.
    pub fn new_streamed(
        name: impl Into<String>,
        geom: ConvGeometry,
        mode: DotMode,
        with_thresholds: bool,
        act_bits: u32,
    ) -> Self {
        let placeholder = BinaryFilters::from_rows(
            (0..geom.filter.o)
                .map(|_| BitVec::zeros(geom.filter.weights_per_filter()))
                .collect(),
        );
        let mut k = Self::build(name, geom, placeholder, None, mode, false);
        k.loader = Some(ParamLoader::new(
            geom.filter.weights_per_filter(),
            geom.filter.o,
            with_thresholds,
            act_bits,
        ));
        k
    }

    /// The halt-strict variant of §III-B1 (see the module docs).
    pub fn new_halted(
        name: impl Into<String>,
        geom: ConvGeometry,
        filters: BinaryFilters,
        thresholds: Option<Vec<ThresholdUnit>>,
        mode: DotMode,
    ) -> Self {
        Self::build(name, geom, filters, thresholds, mode, true)
    }

    fn build(
        name: impl Into<String>,
        geom: ConvGeometry,
        filters: BinaryFilters,
        thresholds: Option<Vec<ThresholdUnit>>,
        mode: DotMode,
        halt_input: bool,
    ) -> Self {
        assert_eq!(
            geom.pad, 0,
            "padding must be inserted upstream of ConvKernel"
        );
        assert_eq!(
            filters.num_filters(),
            geom.filter.o,
            "filter count mismatch"
        );
        assert_eq!(
            filters.bits_per_filter(),
            geom.filter.weights_per_filter(),
            "filter width mismatch"
        );
        if let Some(t) = &thresholds {
            assert_eq!(t.len(), geom.filter.o, "one threshold unit per output map");
        }
        let wsize = geom.filter.weights_per_filter();
        let bits = match mode {
            DotMode::Codes { bits } => bits,
            DotMode::I8 => 1, // planes unused in i8 mode
        };
        let datapath = ConvDatapath::default();
        Self {
            name: name.into(),
            geom,
            filters,
            thresholds,
            mode,
            datapath,
            ring: Self::make_ring(geom, mode, datapath),
            received: 0,
            wr: 0,
            needed_memo: (usize::MAX, 0),
            out_pos: 0,
            emitting: None,
            halt_input,
            pe: 1,
            simd: 1,
            loader: None,
            window_codes: vec![0; wsize],
            window_i8: vec![0; wsize],
            planes: ActPlanes::new(bits, wsize),
            acc: vec![0; geom.filter.o],
        }
    }

    /// The window buffer for a mode/datapath pair: code streams pack on
    /// arrival under the packed datapath; the i8 first layer and the scalar
    /// reference keep the `Vec<i32>` ring.
    fn make_ring(geom: ConvGeometry, mode: DotMode, datapath: ConvDatapath) -> WindowRing {
        match (mode, datapath) {
            (DotMode::Codes { bits }, ConvDatapath::Packed) => {
                WindowRing::Packed(PlaneRing::new(bits, geom.depth_first_buffer()))
            }
            _ => WindowRing::Scalar(vec![0; geom.depth_first_buffer()]),
        }
    }

    /// Rebuild this kernel with an explicit busy-path datapath (tests,
    /// the differential suite, and benches; production call sites take the
    /// process default). Must be applied before any input is streamed.
    pub fn with_datapath(mut self, datapath: ConvDatapath) -> Self {
        assert_eq!(self.received, 0, "datapath change mid-stream");
        self.datapath = datapath;
        self.ring = Self::make_ring(self.geom, self.mode, datapath);
        self
    }

    /// The active busy-path datapath.
    pub fn datapath(&self) -> ConvDatapath {
        self.datapath
    }

    /// Rebuild this kernel with PE/SIMD folding: emit up to `pe` filter
    /// results and absorb up to `simd` input elements per tick, through a
    /// correspondingly widened stream interface ([`Kernel::lanes`]).
    /// Output element order is unchanged — filters ascending within each
    /// position, positions in scan order — so results are bit-identical to
    /// the unfolded kernel at any folding. Must be applied before any input
    /// is streamed; the halt-strict ablation stays at folding 1.
    pub fn with_folding(mut self, pe: usize, simd: usize) -> Self {
        assert_eq!(self.received, 0, "folding change mid-stream");
        assert!(pe >= 1 && simd >= 1, "folding factors must be ≥ 1");
        assert!(
            !self.halt_input || (pe == 1 && simd == 1),
            "halt-strict ablation does not support folding"
        );
        assert!(
            pe <= u16::MAX as usize && simd <= u16::MAX as usize,
            "folding factor exceeds the lane-count range"
        );
        self.pe = pe;
        self.simd = simd;
        self
    }

    /// The active `(pe, simd)` folding factors.
    pub fn folding(&self) -> (usize, usize) {
        (self.pe, self.simd)
    }

    /// The window-buffer size in elements — the paper's `I·(W·(K−1)+K)`.
    pub fn buffer_elems(&self) -> usize {
        self.ring.capacity()
    }

    fn positions(&self) -> usize {
        let out = self.geom.output();
        out.h * out.w
    }

    fn total_inputs(&self) -> usize {
        self.geom.input.len()
    }

    /// Stream index of the last element of the window for output position
    /// `pos`, plus one (i.e. the `received` count at which it is complete).
    fn needed(&self, pos: usize) -> usize {
        let out_w = self.geom.output().w;
        let (oy, ox) = (pos / out_w, pos % out_w);
        let (ty, tx) = (oy * self.geom.stride, ox * self.geom.stride);
        let k = self.geom.filter.k;
        let w = self.geom.input.w;
        let i = self.geom.input.c;
        ((ty + k - 1) * w + tx + k - 1) * i + i
    }

    /// `needed(pos)` through the single-entry memo.
    #[inline]
    fn needed_cached(&mut self, pos: usize) -> usize {
        if self.needed_memo.0 != pos {
            self.needed_memo = (pos, self.needed(pos));
        }
        self.needed_memo.1
    }

    /// Latch the current window out of the ring. Scalar datapath: gather
    /// into scratch and (in code mode) repack the bit planes; accumulators
    /// are then computed one per emit tick. Packed datapath: span-copy the
    /// packed planes (or gather the i8 scratch) and precompute *all* filter
    /// accumulators now — the emit loop just pops them.
    fn latch_window(&mut self) {
        let out_w = self.geom.output().w;
        let (oy, ox) = (self.out_pos / out_w, self.out_pos % out_w);
        let (ty, tx) = (oy * self.geom.stride, ox * self.geom.stride);
        let k = self.geom.filter.k;
        let w = self.geom.input.w;
        let i = self.geom.input.c;
        match &self.ring {
            WindowRing::Packed(ring) => {
                // K contiguous bit-spans of K·I slots, one ring row apart.
                let start = ((ty * w + tx) * i) % ring.capacity();
                ring.extract_window(start, k, k * i, w * i, &mut self.planes);
                conv_accumulate_all(&self.filters, &self.planes, &mut self.acc);
            }
            WindowRing::Scalar(ring) => {
                let cap = ring.len();
                let mut at = 0;
                for ky in 0..k {
                    for kx in 0..k {
                        let base = ((ty + ky) * w + tx + kx) * i;
                        let mut idx = base % cap; // channels are contiguous: wrap incrementally
                        for _ in 0..i {
                            let v = ring[idx];
                            idx += 1;
                            if idx == cap {
                                idx = 0;
                            }
                            match self.mode {
                                DotMode::Codes { .. } => self.window_codes[at] = v as u8,
                                DotMode::I8 => self.window_i8[at] = v as i8,
                            }
                            at += 1;
                        }
                    }
                }
                match (self.mode, self.datapath) {
                    (DotMode::Codes { .. }, _) => self.planes.pack(&self.window_codes),
                    (DotMode::I8, ConvDatapath::Packed) => {
                        conv_accumulate_all_i8(&self.filters, &self.window_i8, &mut self.acc);
                    }
                    (DotMode::I8, ConvDatapath::ScalarReference) => {}
                }
            }
        }
    }

    /// Accumulator for filter `o` of the latched window.
    fn accumulate(&self, o: usize) -> i32 {
        match self.datapath {
            ConvDatapath::Packed => self.acc[o],
            ConvDatapath::ScalarReference => match self.mode {
                DotMode::Codes { .. } => self.planes.dot(self.filters.filter(o)),
                DotMode::I8 => dot_i8(self.filters.filter(o), &self.window_i8),
            },
        }
    }
}

impl Kernel for ConvKernel {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, io: &mut Io<'_>) -> Progress {
        // Parameter-loading phase: one cache word per clock from port 1;
        // the feature-map port backs up until the caches are complete.
        if let Some(loader) = &mut self.loader {
            return match io.read(1) {
                Some(word) => {
                    if let LoadStep::Done(filters, thresholds) = loader.push(word) {
                        self.filters = filters;
                        if thresholds.is_some() {
                            self.thresholds = thresholds;
                        }
                        self.loader = None;
                    }
                    Progress::Busy
                }
                None => Progress::Stalled,
            };
        }

        let mut progress = Progress::Idle;

        // Latch the next window as soon as it is complete.
        if self.emitting.is_none()
            && self.out_pos < self.positions()
            && self.received >= self.needed_cached(self.out_pos)
        {
            self.latch_window();
            self.emitting = Some(0);
        }

        // Emit up to `pe` filter results this clock (one for the unfolded
        // kernel), never crossing the position boundary — the next window
        // latches at the top of a later tick, keeping the per-position cost
        // at ⌈O/pe⌉ cycles exactly as the analytic model charges it.
        let mut did_emit = false;
        if self.emitting.is_some() {
            let mut emitted = 0;
            while let Some(o) = self.emitting {
                if emitted == self.pe || !io.can_write(0) {
                    break;
                }
                let acc = self.accumulate(o);
                let out = match &self.thresholds {
                    Some(t) => i32::from(t[o].activate(acc)),
                    None => acc,
                };
                io.write(0, out);
                emitted += 1;
                let next = o + 1;
                if next == self.geom.filter.o {
                    self.emitting = None;
                    self.out_pos += 1;
                } else {
                    self.emitting = Some(next);
                }
            }
            if emitted > 0 {
                progress = Progress::Busy;
                did_emit = true;
            } else {
                progress = Progress::Stalled;
            }
        }

        // Absorb one input element — up to the next unlatched window's last
        // element (prefetching further would evict ring data another window
        // still needs), or everything if only the drain remains. In
        // halt-strict mode no input moves in a cycle that produced output.
        let read_limit = if self.halt_input && (did_emit || self.emitting.is_some()) {
            0
        } else {
            let next_pos = self.out_pos + usize::from(self.emitting.is_some());
            if next_pos >= self.positions() {
                self.total_inputs()
            } else {
                self.needed_cached(next_pos)
            }
        };
        let mut absorbed = 0;
        while self.received < read_limit && absorbed < self.simd {
            match io.read(0) {
                Some(v) => {
                    match &mut self.ring {
                        WindowRing::Scalar(ring) => ring[self.wr] = v,
                        // Pack on arrival: O(bits) plane writes, high bits
                        // dropped exactly as the scalar repack drops them.
                        WindowRing::Packed(ring) => ring.set(self.wr, v as u8),
                    }
                    self.wr += 1;
                    if self.wr == self.ring.capacity() {
                        self.wr = 0;
                    }
                    self.received += 1;
                    absorbed += 1;
                    progress = Progress::Busy;
                }
                None => {
                    if progress == Progress::Idle {
                        progress = Progress::Stalled;
                    }
                    break;
                }
            }
        }

        // Image complete: reset for the next one.
        if self.out_pos == self.positions()
            && self.received == self.total_inputs()
            && self.emitting.is_none()
        {
            self.received = 0;
            self.wr = 0;
            self.out_pos = 0;
        }
        progress
    }

    /// Every non-`Busy` verdict (loader waiting on a parameter word, input
    /// starved, output or halt-strict window blocked) is port-inert and
    /// repeats unchanged until a stream event, so the kernel can park.
    /// This holds for folded ticks too: a non-`Busy` folded tick emitted
    /// and absorbed nothing, and re-running it against unchanged streams
    /// repeats the verdict.
    fn wake_hint(&self) -> WakeHint {
        WakeHint::Parkable
    }

    /// Folded stream-interface width: `simd` read lanes, `pe` write lanes.
    fn lanes(&self) -> (u16, u16) {
        (self.simd as u16, self.pe as u16)
    }

    /// Phase-bounded promises. Each phase has a constant per-tick port mask
    /// and the span length stops exactly at the next phase boundary:
    ///
    /// * loader — one port-1 word per tick for `remaining()` ticks;
    /// * emit (+ overlapped absorb) — `O − o` filter writes, reads capped at
    ///   the *next* window's completing element (`needed` is strictly
    ///   increasing in position, so the cap is never negative, and it is
    ///   invariant across the span because `next_pos` equals `out_pos + 1`
    ///   whether the final emit has advanced `out_pos` yet or not). With a
    ///   **dry input** the absorb is opportunistic — dense keeps emitting
    ///   `Busy` without the read — so the promise suppresses it
    ///   ([`SpanPlan::opt_reads`]) instead of claiming a read the starved
    ///   port cannot serve;
    /// * fill/drain — reads up to the current window's completing element
    ///   (the start-of-tick latch fires only on the tick *after* that).
    fn span_hint(&self, in_len: &[usize]) -> Option<SpanPlan> {
        // Folded kernels move several elements per port per tick, which the
        // burst planner's one-element-per-cycle feasibility math cannot
        // model; veto spans and run per-element (see [`Kernel::lanes`]).
        if self.pe > 1 || self.simd > 1 {
            return None;
        }
        if let Some(loader) = &self.loader {
            let plan = SpanPlan::new(loader.remaining() as u64, 0b10, 0);
            return Some(if in_len[1] == 0 {
                plan.blocked(Progress::Stalled)
            } else {
                plan
            });
        }
        // Where the emit phase stands after any start-of-tick latch. (The
        // memo needs `&mut self`; `needed` runs once per burst here.)
        let emit_from = match self.emitting {
            Some(o) => Some(o),
            None if self.out_pos < self.positions()
                && self.received >= self.needed(self.out_pos) =>
            {
                Some(0)
            }
            None => None,
        };
        match emit_from {
            Some(o) => {
                let emit_left = (self.geom.filter.o - o) as u64;
                if self.halt_input {
                    return Some(SpanPlan::new(emit_left, 0, 0b1).halting());
                }
                let next_pos = self.out_pos + 1;
                let read_limit = if next_pos >= self.positions() {
                    self.total_inputs()
                } else {
                    self.needed(next_pos)
                };
                let reads_left = (read_limit - self.received) as u64;
                if reads_left == 0 {
                    // No absorb possible: a blocked emit is a bare stall.
                    Some(SpanPlan::new(emit_left, 0, 0b1).halting())
                } else if in_len[0] == 0 {
                    // Dry input can't refill in-span (the opt_reads cap),
                    // so a blocked emit stalls here too.
                    Some(SpanPlan::new(emit_left, 0, 0b1).with_opt_reads(0b1).halting())
                } else {
                    // Not halting: a blocked emit still absorbs (`Busy`).
                    Some(SpanPlan::new(emit_left.min(reads_left), 0b1, 0b1))
                }
            }
            None => {
                let read_limit = if self.out_pos >= self.positions() {
                    self.total_inputs()
                } else {
                    self.needed(self.out_pos)
                };
                let reads_left = (read_limit - self.received) as u64;
                if reads_left == 0 {
                    None
                } else {
                    let plan = SpanPlan::new(reads_left, 0b1, 0);
                    Some(if in_len[0] == 0 {
                        plan.blocked(Progress::Stalled)
                    } else {
                        plan
                    })
                }
            }
        }
    }

    /// Control state is the phase machine: loader progress, absorb count,
    /// emit position and latch flag. The ring write index tracks `received`
    /// modulo the ring length and the latched window codes are data (they
    /// never alter port behaviour), so neither enters the token. Folded
    /// kernels veto replay for the same reason they veto spans — the
    /// per-tick port traffic is not one-element-per-port.
    fn replay_token(&self) -> Option<u64> {
        if self.pe > 1 || self.simd > 1 {
            return None;
        }
        Some(dfe_platform::replay::token_mix(&[
            self.received as u64,
            self.out_pos as u64,
            self.emitting.map_or(u64::MAX, |o| o as u64),
            self.loader.as_ref().map_or(u64::MAX, |l| l.remaining() as u64),
        ]))
    }

    /// Replicates `tick`'s state machine element by element — latch, emit,
    /// absorb, reset — with direct queue transfers in place of the staged
    /// `Io` port protocol. The span promise guarantees each iteration makes
    /// exactly the promised port accesses.
    fn run_span(&mut self, io: &mut SpanIo<'_>, n: u64) {
        let absorb_ok = !io.read_suppressed(0);
        if self.loader.is_some() {
            io.pop_n(1, n, |word| {
                let loader = self.loader.as_mut().expect("span within loader phase");
                if let LoadStep::Done(filters, thresholds) = loader.push(word) {
                    self.filters = filters;
                    if thresholds.is_some() {
                        self.thresholds = thresholds;
                    }
                    self.loader = None;
                }
            });
            return;
        }
        // Canonicalise a latch-ready entry state (the generic loop below
        // does this at the top of its first tick anyway) so the fast paths
        // see `emitting` directly.
        if self.emitting.is_none()
            && self.out_pos < self.positions()
            && self.received >= self.needed_cached(self.out_pos)
        {
            self.latch_window();
            self.emitting = Some(0);
        }
        // Emit-only spans — the long tail of every output position (strict
        // halt, dry/suppressed input, or a fully-absorbed next window) —
        // stream straight into the output queue. Absorb stays impossible
        // through the final tick: once the last filter emits, `out_pos`
        // advances to exactly the `next_pos` whose `needed` bound
        // `received` already meets.
        if let Some(o) = self.emitting {
            let next_pos = self.out_pos + 1;
            let read_limit = if next_pos >= self.positions() {
                self.total_inputs()
            } else {
                self.needed_cached(next_pos)
            };
            let pure = self.halt_input || !absorb_ok || self.received >= read_limit;
            if pure && n <= (self.geom.filter.o - o) as u64 {
                let conv = &*self;
                let mut f = o;
                io.push_n(0, n, || {
                    let acc = conv.accumulate(f);
                    let out = match &conv.thresholds {
                        Some(t) => i32::from(t[f].activate(acc)),
                        None => acc,
                    };
                    f += 1;
                    out
                });
                let end = o + n as usize;
                if end == self.geom.filter.o {
                    self.emitting = None;
                    self.out_pos += 1;
                } else {
                    self.emitting = Some(end);
                }
                if self.out_pos == self.positions()
                    && self.received == self.total_inputs()
                    && self.emitting.is_none()
                {
                    self.received = 0;
                    self.wr = 0;
                    self.out_pos = 0;
                }
                return;
            }
        } else if absorb_ok {
            // Fill/drain spans are all reads: no latch can fire mid-span
            // (`received` stays below the current window's bound until the
            // final pop, and the latch runs at the start of the next tick).
            let read_limit = if self.out_pos >= self.positions() {
                self.total_inputs()
            } else {
                self.needed_cached(self.out_pos)
            };
            if self.received + n as usize <= read_limit {
                let cap = self.ring.capacity();
                io.pop_n(0, n, |v| {
                    match &mut self.ring {
                        WindowRing::Scalar(ring) => ring[self.wr] = v,
                        WindowRing::Packed(ring) => ring.set(self.wr, v as u8),
                    }
                    self.wr += 1;
                    if self.wr == cap {
                        self.wr = 0;
                    }
                    self.received += 1;
                });
                if self.out_pos == self.positions() && self.received == self.total_inputs() {
                    self.received = 0;
                    self.wr = 0;
                    self.out_pos = 0;
                }
                return;
            }
        }
        for _ in 0..n {
            if self.emitting.is_none()
                && self.out_pos < self.positions()
                && self.received >= self.needed_cached(self.out_pos)
            {
                self.latch_window();
                self.emitting = Some(0);
            }

            let mut did_emit = false;
            if let Some(o) = self.emitting {
                let acc = self.accumulate(o);
                let out = match &self.thresholds {
                    Some(t) => i32::from(t[o].activate(acc)),
                    None => acc,
                };
                io.push(0, out);
                let next = o + 1;
                if next == self.geom.filter.o {
                    self.emitting = None;
                    self.out_pos += 1;
                } else {
                    self.emitting = Some(next);
                }
                did_emit = true;
            }

            let read_limit = if self.halt_input && (did_emit || self.emitting.is_some()) {
                0
            } else {
                let next_pos = self.out_pos + usize::from(self.emitting.is_some());
                if next_pos >= self.positions() {
                    self.total_inputs()
                } else {
                    self.needed_cached(next_pos)
                }
            };
            if absorb_ok && self.received < read_limit {
                let v = io.pop(0);
                match &mut self.ring {
                    WindowRing::Scalar(ring) => ring[self.wr] = v,
                    WindowRing::Packed(ring) => ring.set(self.wr, v as u8),
                }
                self.wr += 1;
                if self.wr == self.ring.capacity() {
                    self.wr = 0;
                }
                self.received += 1;
            }

            if self.out_pos == self.positions()
                && self.received == self.total_inputs()
                && self.emitting.is_none()
            {
                self.received = 0;
                self.wr = 0;
                self.out_pos = 0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfe_platform::{Graph, HostSink, HostSource, StreamSpec};
    use qnn_quant::{BnParams, QuantSpec};
    use qnn_tensor::{FilterShape, Shape3, Tensor3};

    fn filters_for(geom: &ConvGeometry, seed: u64) -> BinaryFilters {
        let w: Vec<f32> = (0..geom.filter.total_weights())
            .map(|i| {
                if (i as u64).wrapping_mul(seed * 2 + 1) % 5 < 2 {
                    1.0
                } else {
                    -1.0
                }
            })
            .collect();
        BinaryFilters::from_float_rows(&w, geom.filter.weights_per_filter())
    }

    /// Run one or more images through a lone conv kernel in the simulator.
    fn run_conv_kernel(
        kernel: ConvKernel,
        out_len: usize,
        images: Vec<Vec<i32>>,
    ) -> (Vec<i32>, dfe_platform::CycleReport) {
        let data: Vec<i32> = images.into_iter().flatten().collect();
        let mut g = Graph::new();
        let a = g.add_stream(StreamSpec::new("in", 8, 32));
        let b = g.add_stream(StreamSpec::new("out", 16, 32));
        g.add_kernel(Box::new(HostSource::new("src", data)), &[], &[a]);
        g.add_kernel(Box::new(kernel), &[a], &[b]);
        let (sink, handle) = HostSink::new("dst", out_len);
        g.add_kernel(Box::new(sink), &[b], &[]);
        let report = g.run(10_000_000).expect("conv run");
        (handle.take(), report)
    }

    fn run_conv(
        geom: ConvGeometry,
        filters: BinaryFilters,
        thresholds: Option<Vec<ThresholdUnit>>,
        mode: DotMode,
        images: Vec<Vec<i32>>,
    ) -> (Vec<i32>, dfe_platform::CycleReport) {
        let out_len = geom.output().len() * images.len();
        run_conv_kernel(
            ConvKernel::new("conv", geom, filters, thresholds, mode),
            out_len,
            images,
        )
    }

    fn run_conv_halted(
        geom: ConvGeometry,
        filters: BinaryFilters,
        mode: DotMode,
        images: Vec<Vec<i32>>,
    ) -> (Vec<i32>, dfe_platform::CycleReport) {
        let out_len = geom.output().len() * images.len();
        run_conv_kernel(
            ConvKernel::new_halted("conv", geom, filters, None, mode),
            out_len,
            images,
        )
    }

    #[test]
    fn matches_reference_conv_codes() {
        let geom = ConvGeometry::new(Shape3::new(6, 5, 3), FilterShape::new(3, 3, 4), 1, 0);
        let filters = filters_for(&geom, 3);
        let input = Tensor3::from_fn(geom.input, |y, x, c| ((y * 7 + x * 3 + c) % 4) as u8);
        let expect = qnn_nn::reference::conv_acc_codes(&geom, &input, &filters, 2);
        let (got, _) = run_conv(
            geom,
            filters,
            None,
            DotMode::Codes { bits: 2 },
            vec![input.as_slice().iter().map(|&q| i32::from(q)).collect()],
        );
        assert_eq!(got, expect.as_slice());
    }

    #[test]
    fn matches_reference_conv_i8() {
        let geom = ConvGeometry::new(Shape3::new(5, 5, 2), FilterShape::new(3, 2, 3), 1, 0);
        let filters = filters_for(&geom, 7);
        let input = Tensor3::from_fn(geom.input, |y, x, c| {
            ((y * 31 + x * 13 + c * 5) as i32 % 200 - 100) as i8
        });
        let expect = qnn_nn::reference::conv_acc_i8(&geom, &input, &filters);
        let (got, _) = run_conv(
            geom,
            filters,
            None,
            DotMode::I8,
            vec![input.as_slice().iter().map(|&p| i32::from(p)).collect()],
        );
        assert_eq!(got, expect.as_slice());
    }

    #[test]
    fn strided_conv_matches_reference_and_drains() {
        let geom = ConvGeometry::new(Shape3::new(7, 7, 2), FilterShape::new(3, 2, 2), 2, 0);
        let filters = filters_for(&geom, 11);
        let input = Tensor3::from_fn(geom.input, |y, x, c| ((y + 2 * x + c) % 4) as u8);
        let expect = qnn_nn::reference::conv_acc_codes(&geom, &input, &filters, 2);
        // Two images back to back: the drain/reset path must keep them aligned.
        let img: Vec<i32> = input.as_slice().iter().map(|&q| i32::from(q)).collect();
        let (got, _) = run_conv(
            geom,
            filters,
            None,
            DotMode::Codes { bits: 2 },
            vec![img.clone(), img],
        );
        let mut expect2 = expect.as_slice().to_vec();
        expect2.extend_from_slice(expect.as_slice());
        assert_eq!(got, expect2);
    }

    #[test]
    fn thresholded_output_matches_reference() {
        let geom = ConvGeometry::new(Shape3::new(5, 5, 2), FilterShape::new(3, 2, 3), 1, 0);
        let filters = filters_for(&geom, 5);
        let spec = QuantSpec::paper_2bit();
        let thresholds: Vec<ThresholdUnit> = (0..3)
            .map(|i| {
                ThresholdUnit::from_batchnorm(&BnParams::new(1.0, i as f32 - 1.0, 0.5, 1.0), &spec)
            })
            .collect();
        let input = Tensor3::from_fn(geom.input, |y, x, c| ((y * x + c) % 4) as u8);
        let acc = qnn_nn::reference::conv_acc_codes(&geom, &input, &filters, 2);
        let expect = qnn_nn::reference::apply_thresholds(&acc, &thresholds);
        let (got, _) = run_conv(
            geom,
            filters,
            Some(thresholds),
            DotMode::Codes { bits: 2 },
            vec![input.as_slice().iter().map(|&q| i32::from(q)).collect()],
        );
        let got_codes: Vec<u8> = got.iter().map(|&v| v as u8).collect();
        assert_eq!(got_codes, expect.as_slice());
    }

    #[test]
    fn halted_busy_cycles_are_inputs_plus_outputs() {
        // Halt-strict mode serializes: busy = inputs + outputs (§III-B1).
        let geom = ConvGeometry::new(Shape3::new(6, 6, 2), FilterShape::new(3, 2, 4), 1, 0);
        let filters = filters_for(&geom, 13);
        let input = Tensor3::from_fn(geom.input, |_, _, _| 1u8);
        let img: Vec<i32> = input.as_slice().iter().map(|&q| i32::from(q)).collect();
        let (_, report) = run_conv_halted(geom, filters, DotMode::Codes { bits: 2 }, vec![img]);
        let conv_stats = &report.kernels[1];
        let expect = geom.input.len() as u64 + geom.output().len() as u64;
        assert_eq!(conv_stats.busy, expect);
    }

    #[test]
    fn overlapped_mode_beats_halted_mode() {
        // Overlapped I/O finishes in ≈max(in, out) cycles; halted needs
        // in + out. Results must be identical either way.
        let geom = ConvGeometry::new(Shape3::new(8, 8, 2), FilterShape::new(3, 2, 4), 1, 0);
        let input = Tensor3::from_fn(geom.input, |y, x, c| ((y + x + c) % 4) as u8);
        let img: Vec<i32> = input.as_slice().iter().map(|&q| i32::from(q)).collect();
        let (out_o, rep_o) = run_conv(
            geom,
            filters_for(&geom, 13),
            None,
            DotMode::Codes { bits: 2 },
            vec![img.clone()],
        );
        let (out_h, rep_h) = run_conv_halted(
            geom,
            filters_for(&geom, 13),
            DotMode::Codes { bits: 2 },
            vec![img],
        );
        assert_eq!(out_o, out_h, "discipline must not change results");
        let (inputs, outputs) = (geom.input.len() as u64, geom.output().len() as u64);
        assert!(rep_o.cycles < rep_h.cycles, "overlap must be faster");
        assert!(rep_o.cycles >= inputs.max(outputs));
        assert!(rep_h.cycles >= inputs + outputs);
    }

    #[test]
    fn stride_skips_halts_giving_first_layer_speedup() {
        // §III-B1: with stride S the kernel halts at ~1/S² of positions.
        // Compare halted-mode busy cycles of stride 1 vs stride 2.
        let mk =
            |stride| ConvGeometry::new(Shape3::new(9, 9, 1), FilterShape::new(3, 1, 8), stride, 0);
        let input = Tensor3::from_fn(Shape3::new(9, 9, 1), |y, x, _| ((y + x) % 4) as u8);
        let img: Vec<i32> = input.as_slice().iter().map(|&q| i32::from(q)).collect();
        let mut busy = Vec::new();
        for stride in [1usize, 2] {
            let geom = mk(stride);
            let (_, report) = run_conv_halted(
                geom,
                filters_for(&geom, 17),
                DotMode::Codes { bits: 2 },
                vec![img.clone()],
            );
            busy.push(report.kernels[1].busy);
        }
        // stride 1: 81 + 49·8 = 473; stride 2: 81 + 16·8 = 209.
        assert_eq!(busy[0], 473);
        assert_eq!(busy[1], 209);
    }

    #[test]
    fn one_by_one_conv_acts_as_fully_connected() {
        // FC = 1×1 conv over a 1×1×F map (paper §III-B4).
        let f = 10;
        let geom = ConvGeometry::new(Shape3::new(1, 1, f), FilterShape::new(1, f, 4), 1, 0);
        let filters = filters_for(&geom, 23);
        let codes: Vec<u8> = (0..f).map(|i| (i % 4) as u8).collect();
        let expect = qnn_nn::reference::fully_connected(&codes, &filters, 2);
        let (got, _) = run_conv(
            geom,
            filters,
            None,
            DotMode::Codes { bits: 2 },
            vec![codes.iter().map(|&q| i32::from(q)).collect()],
        );
        assert_eq!(got, expect);
    }

    #[test]
    fn scalar_and_packed_datapaths_are_bit_identical() {
        // Same images, both datapaths, both dot modes: outputs AND cycle
        // reports must match exactly (the full property version lives in
        // tests/conv_datapath_equivalence.rs).
        let geom = ConvGeometry::new(Shape3::new(7, 6, 3), FilterShape::new(3, 3, 5), 2, 0);
        let filters = filters_for(&geom, 29);
        let input = Tensor3::from_fn(geom.input, |y, x, c| ((y * 11 + x * 5 + c * 3) % 4) as u8);
        let img: Vec<i32> = input.as_slice().iter().map(|&q| i32::from(q)).collect();
        for mode in [DotMode::Codes { bits: 2 }, DotMode::I8] {
            let out_len = geom.output().len() * 2;
            let mk = |dp| {
                ConvKernel::new("conv", geom, filters.clone(), None, mode).with_datapath(dp)
            };
            let (out_p, rep_p) = run_conv_kernel(
                mk(ConvDatapath::Packed),
                out_len,
                vec![img.clone(), img.clone()],
            );
            let (out_s, rep_s) = run_conv_kernel(
                mk(ConvDatapath::ScalarReference),
                out_len,
                vec![img.clone(), img.clone()],
            );
            assert_eq!(out_p, out_s, "{mode:?}: outputs diverge");
            assert_eq!(rep_p, rep_s, "{mode:?}: cycle reports diverge");
        }
    }

    #[test]
    fn folded_conv_is_bit_identical_and_faster() {
        // PE/SIMD folding must never change results (element order is
        // preserved) and must strictly reduce cycles once both absorb and
        // emit are unrolled.
        // Output-heavy geometry (O = 32 ⇒ outputs 1152 ≫ inputs 192): the
        // unfolded makespan is emit-bound, which PE folding attacks
        // directly; the source still feeds one element per cycle, so the
        // folded floor is the input length, not zero.
        let geom = ConvGeometry::new(Shape3::new(8, 8, 3), FilterShape::new(3, 3, 32), 1, 0);
        let filters = filters_for(&geom, 31);
        let input = Tensor3::from_fn(geom.input, |y, x, c| ((y * 13 + x * 7 + c) % 4) as u8);
        let img: Vec<i32> = input.as_slice().iter().map(|&q| i32::from(q)).collect();
        let out_len = geom.output().len() * 2;
        let mk = || ConvKernel::new("conv", geom, filters.clone(), None, DotMode::Codes { bits: 2 });
        // Unthrottled output FIFO: the stock helper's 32-deep FIFO plus the
        // one-pop-per-cycle host sink would cap the emit rate at one element
        // per cycle and hide the folded datapath's rate entirely.
        let run = |kernel: ConvKernel| {
            let data: Vec<i32> = [img.clone(), img.clone()].concat();
            let mut g = Graph::new();
            let a = g.add_stream(StreamSpec::new("in", 8, 32));
            let b = g.add_stream(StreamSpec::new("out", 16, out_len));
            g.add_kernel(Box::new(HostSource::new("src", data)), &[], &[a]);
            g.add_kernel(Box::new(kernel), &[a], &[b]);
            let (sink, handle) = HostSink::new("dst", out_len);
            g.add_kernel(Box::new(sink), &[b], &[]);
            let report = g.run(10_000_000).expect("conv run");
            (handle.take(), report)
        };
        let (base_out, base_rep) = run(mk());
        for (pe, simd) in [(2, 1), (1, 2), (4, 4), (8, 8), (16, 64)] {
            let (out, rep) = run(mk().with_folding(pe, simd));
            assert_eq!(out, base_out, "folding ({pe},{simd}) changed results");
            assert!(
                rep.kernels[1].busy <= base_rep.kernels[1].busy,
                "folding ({pe},{simd}) raised busy cycles: {} > {}",
                rep.kernels[1].busy,
                base_rep.kernels[1].busy
            );
        }
        // The makespan stays source-bound (the host feeds one element per
        // cycle), but the conv's own busy cycles must collapse once emit
        // and absorb are unrolled.
        let (_, rep44) = run(mk().with_folding(4, 4));
        assert!(
            rep44.kernels[1].busy * 2 < base_rep.kernels[1].busy,
            "4×4 folding should at least halve busy cycles: {} vs {}",
            rep44.kernels[1].busy,
            base_rep.kernels[1].busy
        );
    }

    #[test]
    #[should_panic(expected = "folding factors must be ≥ 1")]
    fn zero_folding_rejected() {
        let geom = ConvGeometry::new(Shape3::new(4, 4, 1), FilterShape::new(3, 1, 2), 1, 0);
        let _ = ConvKernel::new("c", geom, filters_for(&geom, 1), None, DotMode::Codes { bits: 2 })
            .with_folding(0, 1);
    }

    #[test]
    #[should_panic(expected = "halt-strict ablation does not support folding")]
    fn halted_folding_rejected() {
        let geom = ConvGeometry::new(Shape3::new(4, 4, 1), FilterShape::new(3, 1, 2), 1, 0);
        let _ =
            ConvKernel::new_halted("c", geom, filters_for(&geom, 1), None, DotMode::Codes { bits: 2 })
                .with_folding(2, 1);
    }

    #[test]
    #[should_panic(expected = "padding must be inserted upstream")]
    fn padded_geometry_rejected() {
        let geom = ConvGeometry::new(Shape3::new(4, 4, 1), FilterShape::new(3, 1, 1), 1, 1);
        let _ = ConvKernel::new(
            "c",
            geom,
            filters_for(&geom, 1),
            None,
            DotMode::Codes { bits: 2 },
        );
    }
}
