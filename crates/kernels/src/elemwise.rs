//! Element-wise kernels: the skip-connection adder and split (paper Fig. 2)
//! and the standalone fused BatchNorm + activation unit (§III-B3).

use dfe_platform::{Io, Kernel, Progress, SpanIo, SpanPlan, WakeHint};
use qnn_quant::ThresholdUnit;

/// Adds two streams element-wise — the skip-connection adder. One element
/// per cycle; both operands must be present (the skip buffer upstream
/// absorbs the path-delay mismatch).
pub struct AddKernel {
    name: String,
}

impl AddKernel {
    /// Create an adder.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into() }
    }
}

impl Kernel for AddKernel {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, io: &mut Io<'_>) -> Progress {
        if io.can_read(0) && io.can_read(1) && io.can_write(0) {
            let a = io.read(0).expect("checked");
            let b = io.read(1).expect("checked");
            io.write(0, a + b);
            Progress::Busy
        } else if io.can_read(0) || io.can_read(1) {
            Progress::Stalled
        } else {
            Progress::Idle
        }
    }

    /// Pure element-wise stage: every non-`Busy` tick is a port-inert
    /// fixed point, so the kernel can park until a stream event.
    fn wake_hint(&self) -> WakeHint {
        WakeHint::Parkable
    }

    /// Stateless two-in-one-out: uniform for any span length. All-or-
    /// nothing per tick, so the plan is halting; a dry operand blocks the
    /// whole tick — `Stalled` while the other operand waits, `Idle` when
    /// both run dry (mirroring `tick`'s verdicts exactly).
    fn span_hint(&self, in_len: &[usize]) -> Option<SpanPlan> {
        let plan = SpanPlan::new(u64::MAX, 0b11, 0b1).halting();
        Some(match (in_len[0] == 0, in_len[1] == 0) {
            (false, false) => plan,
            (true, true) => plan.blocked(Progress::Idle),
            _ => plan.blocked(Progress::Stalled),
        })
    }

    fn run_span(&mut self, io: &mut SpanIo<'_>, n: u64) {
        for _ in 0..n {
            let a = io.pop(0);
            let b = io.pop(1);
            io.push(0, a + b);
        }
    }

    /// Stateless: any two ticks with identical stream surroundings behave
    /// identically.
    fn replay_token(&self) -> Option<u64> {
        Some(0)
    }
}

/// Duplicates a stream onto two outputs — the post-adder split of Fig. 2
/// ("the result is split into two paths").
pub struct SplitKernel {
    name: String,
}

impl SplitKernel {
    /// Create a splitter.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into() }
    }
}

impl Kernel for SplitKernel {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, io: &mut Io<'_>) -> Progress {
        if io.can_read(0) && io.can_write(0) && io.can_write(1) {
            let v = io.read(0).expect("checked");
            io.write(0, v);
            io.write(1, v);
            Progress::Busy
        } else if io.can_read(0) {
            Progress::Stalled
        } else {
            Progress::Idle
        }
    }

    /// Pure element-wise stage: every non-`Busy` tick is a port-inert
    /// fixed point, so the kernel can park until a stream event.
    fn wake_hint(&self) -> WakeHint {
        WakeHint::Parkable
    }

    /// Stateless one-in-two-out: uniform for any span length, halting
    /// (both outputs must have room or nothing moves), `Idle` on a dry
    /// input — `tick` never reaches the output checks without an element.
    fn span_hint(&self, in_len: &[usize]) -> Option<SpanPlan> {
        let plan = SpanPlan::new(u64::MAX, 0b1, 0b11).halting();
        Some(if in_len[0] == 0 {
            plan.blocked(Progress::Idle)
        } else {
            plan
        })
    }

    fn run_span(&mut self, io: &mut SpanIo<'_>, n: u64) {
        for _ in 0..n {
            let v = io.pop(0);
            io.push(0, v);
            io.push(1, v);
        }
    }

    /// Stateless: any two ticks with identical stream surroundings behave
    /// identically.
    fn replay_token(&self) -> Option<u64> {
        Some(0)
    }
}

/// Fused BatchNorm + n-bit activation over an accumulator stream, one
/// element per cycle, cycling through the per-channel threshold units in
/// depth-first order (channel innermost).
pub struct ThresholdKernel {
    name: String,
    units: Vec<ThresholdUnit>,
    channel: usize,
}

impl ThresholdKernel {
    /// Create a threshold kernel with one unit per channel.
    pub fn new(name: impl Into<String>, units: Vec<ThresholdUnit>) -> Self {
        assert!(
            !units.is_empty(),
            "threshold kernel needs at least one unit"
        );
        Self {
            name: name.into(),
            units,
            channel: 0,
        }
    }
}

impl Kernel for ThresholdKernel {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, io: &mut Io<'_>) -> Progress {
        if io.can_read(0) && io.can_write(0) {
            let a = io.read(0).expect("checked");
            let q = self.units[self.channel].activate(a);
            io.write(0, i32::from(q));
            self.channel += 1;
            if self.channel == self.units.len() {
                self.channel = 0;
            }
            Progress::Busy
        } else if io.can_read(0) {
            Progress::Stalled
        } else {
            Progress::Idle
        }
    }

    /// Pure element-wise stage: every non-`Busy` tick is a port-inert
    /// fixed point, so the kernel can park until a stream event.
    fn wake_hint(&self) -> WakeHint {
        WakeHint::Parkable
    }

    /// One element per cycle with only the channel counter as state, which
    /// advances identically whatever the span length. Halting (the counter
    /// moves only on a completed read-write pair), `Idle` on a dry input.
    fn span_hint(&self, in_len: &[usize]) -> Option<SpanPlan> {
        let plan = SpanPlan::new(u64::MAX, 0b1, 0b1).halting();
        Some(if in_len[0] == 0 {
            plan.blocked(Progress::Idle)
        } else {
            plan
        })
    }

    fn run_span(&mut self, io: &mut SpanIo<'_>, n: u64) {
        for _ in 0..n {
            let a = io.pop(0);
            let q = self.units[self.channel].activate(a);
            io.push(0, i32::from(q));
            self.channel += 1;
            if self.channel == self.units.len() {
                self.channel = 0;
            }
        }
    }

    /// The channel counter is the only state (threshold parameters are
    /// fixed at construction).
    fn replay_token(&self) -> Option<u64> {
        Some(self.channel as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfe_platform::{Graph, HostSink, HostSource, StreamSpec};
    use qnn_quant::{BnParams, QuantSpec};

    #[test]
    fn adder_sums_aligned_streams() {
        let mut g = Graph::new();
        let a = g.add_stream(StreamSpec::new("a", 16, 8));
        let b = g.add_stream(StreamSpec::new("b", 16, 8));
        let c = g.add_stream(StreamSpec::new("c", 16, 8));
        g.add_kernel(Box::new(HostSource::new("sa", vec![1, 2, 3])), &[], &[a]);
        g.add_kernel(Box::new(HostSource::new("sb", vec![10, 20, 30])), &[], &[b]);
        g.add_kernel(Box::new(AddKernel::new("add")), &[a, b], &[c]);
        let (sink, h) = HostSink::new("dst", 3);
        g.add_kernel(Box::new(sink), &[c], &[]);
        g.run(1000).expect("run");
        assert_eq!(h.take(), vec![11, 22, 33]);
    }

    #[test]
    fn adder_waits_for_slow_operand() {
        // Operand B arrives through a delay line; the adder must stall, not
        // misalign.
        use dfe_platform::ring::DelayLine;
        let mut g = Graph::new();
        let a = g.add_stream(StreamSpec::new("a", 16, 64));
        let b0 = g.add_stream(StreamSpec::new("b0", 16, 8));
        let b = g.add_stream(StreamSpec::new("b", 16, 8));
        let c = g.add_stream(StreamSpec::new("c", 16, 8));
        g.add_kernel(
            Box::new(HostSource::new("sa", (0..20).collect())),
            &[],
            &[a],
        );
        g.add_kernel(
            Box::new(HostSource::new("sb", (0..20).map(|v| v * 100).collect())),
            &[],
            &[b0],
        );
        g.add_kernel(Box::new(DelayLine::new("lag", 10)), &[b0], &[b]);
        g.add_kernel(Box::new(AddKernel::new("add")), &[a, b], &[c]);
        let (sink, h) = HostSink::new("dst", 20);
        g.add_kernel(Box::new(sink), &[c], &[]);
        g.run(10_000).expect("run");
        let got = h.take();
        for (i, v) in got.iter().enumerate() {
            assert_eq!(*v, i as i32 * 101);
        }
    }

    #[test]
    fn split_duplicates_in_order() {
        let mut g = Graph::new();
        let a = g.add_stream(StreamSpec::new("a", 16, 8));
        let b = g.add_stream(StreamSpec::new("b", 16, 8));
        let c = g.add_stream(StreamSpec::new("c", 16, 8));
        g.add_kernel(Box::new(HostSource::new("src", vec![5, 6, 7])), &[], &[a]);
        g.add_kernel(Box::new(SplitKernel::new("split")), &[a], &[b, c]);
        let (s1, h1) = HostSink::new("d1", 3);
        let (s2, h2) = HostSink::new("d2", 3);
        g.add_kernel(Box::new(s1), &[b], &[]);
        g.add_kernel(Box::new(s2), &[c], &[]);
        g.run(1000).expect("run");
        assert_eq!(h1.take(), vec![5, 6, 7]);
        assert_eq!(h2.take(), vec![5, 6, 7]);
    }

    #[test]
    fn split_halts_until_both_outputs_have_room() {
        // Second output has capacity 1 and a sink that expects only after
        // stream fills: splitter must not lose elements.
        let mut g = Graph::new();
        let a = g.add_stream(StreamSpec::new("a", 16, 8));
        let b = g.add_stream(StreamSpec::new("b", 16, 1));
        let c = g.add_stream(StreamSpec::new("c", 16, 1));
        g.add_kernel(
            Box::new(HostSource::new("src", (0..10).collect())),
            &[],
            &[a],
        );
        g.add_kernel(Box::new(SplitKernel::new("split")), &[a], &[b, c]);
        let (s1, h1) = HostSink::new("d1", 10);
        let (s2, h2) = HostSink::new("d2", 10);
        g.add_kernel(Box::new(s1), &[b], &[]);
        g.add_kernel(Box::new(s2), &[c], &[]);
        g.run(10_000).expect("run");
        assert_eq!(h1.take(), (0..10).collect::<Vec<_>>());
        assert_eq!(h2.take(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn threshold_kernel_cycles_channels() {
        let spec = QuantSpec::paper_2bit();
        let units = vec![
            ThresholdUnit::from_batchnorm(&BnParams::IDENTITY, &spec),
            ThresholdUnit::from_batchnorm(&BnParams::new(1.0, 10.0, 1.0, 0.0), &spec),
        ];
        let mut g = Graph::new();
        let a = g.add_stream(StreamSpec::new("a", 16, 8));
        let b = g.add_stream(StreamSpec::new("b", 2, 8));
        // Stream of (c0, c1) pairs: [2, 12, 0, 10].
        g.add_kernel(
            Box::new(HostSource::new("src", vec![2, 12, 0, 10])),
            &[],
            &[a],
        );
        g.add_kernel(Box::new(ThresholdKernel::new("thr", units)), &[a], &[b]);
        let (sink, h) = HostSink::new("dst", 4);
        g.add_kernel(Box::new(sink), &[b], &[]);
        g.run(1000).expect("run");
        // c0 identity-clamps, c1 subtracts 10 first.
        assert_eq!(h.take(), vec![2, 2, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "at least one unit")]
    fn empty_threshold_units_rejected() {
        let _ = ThresholdKernel::new("t", vec![]);
    }
}
