//! Streaming QNN kernels for the DFE platform — the paper's §III
//! architecture, kernel by kernel.
//!
//! Every NN layer becomes a clocked dataflow kernel:
//!
//! * [`PadInserter`] — stops the real input and feeds border padding values
//!   into the stream (§III-B1: "inputs padding values into the buffer
//!   instead"; value 0 = the lowest code, the analogue of −1 padding).
//! * [`ConvKernel`] — the halt-and-compute convolution of Fig. 3: a
//!   shift-register window buffer sized `I·(W·(K−1)+K)` (depth-first scan,
//!   Fig. 4a), an XNOR-popcount datapath over the weight cache, one output
//!   pixel per clock while the input is halted, and optional fused
//!   BatchNorm+activation thresholds on the way out.
//! * [`PoolKernel`] — §III-B2 pooling: parameter-free, and output can be
//!   produced in the same clock cycle an input is consumed (no halt).
//! * [`ThresholdKernel`] — standalone fused BN + n-bit activation for the
//!   post-adder position in residual blocks.
//! * [`AddKernel`] / [`SplitKernel`] — the skip-connection adder and the
//!   two-way split of Fig. 2; the skip *buffer* is simply a deep stream
//!   FIFO, whose measured high-water mark the tests compare against the
//!   paper's "exactly one convolution buffer" claim.
//!
//! All kernels exchange scalar elements in depth-first order, so a layer's
//! output stream is directly the next layer's input stream — "we can treat
//! other layers as a black box that receives or provides pixels" (§III-B).

pub mod attention;
pub mod conv;
pub mod elemwise;
pub mod loader;
pub mod pad;
pub mod pool;

pub use attention::{AttentionHeadKernel, ConcatKernel, HeadSplitKernel, LayerNormKernel};
pub use conv::{ConvDatapath, ConvKernel, DotMode};
pub use loader::{encode_conv_params, ParamLoader};
pub use elemwise::{AddKernel, SplitKernel, ThresholdKernel};
pub use pad::PadInserter;
pub use pool::{PoolKernel, PoolOp};
