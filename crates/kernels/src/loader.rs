//! The CPU→DFE parameter-loading path (paper §III-B1a).
//!
//! "All the weights received by the FPGA are represented as 32-bit
//! floating point numbers. Before storing these parameters in the internal
//! memory cache, we transformed them into a 1-bit representation, using the
//! Sign function." And: "The weights and normalization parameters enter
//! each layer in depth-first order … loaded into their dedicated caches
//! only once, before inference of images starts."
//!
//! [`ParamLoader`] is the on-chip half: it consumes one 32-bit word per
//! clock from a parameter stream, binarizes weights with `Sign`, decodes
//! wire-encoded threshold units, and hands the finished caches to the
//! convolution kernel. The host-side encoders below produce the matching
//! wire format.

use qnn_quant::ThresholdUnit;
use qnn_tensor::{BinaryFilters, BitVec};

/// Host-side: encode a binary filter bank as the 32-bit float stream the
/// CPU sends (one ±1.0 float per weight, row-major in cache-entry order).
pub fn encode_weights(filters: &BinaryFilters) -> Vec<i32> {
    let mut out = Vec::with_capacity(filters.storage_bits());
    for row in filters.iter() {
        for bit in row.iter() {
            let f = if bit { 1.0f32 } else { -1.0f32 };
            out.push(f.to_bits() as i32);
        }
    }
    out
}

/// Host-side: encode per-channel threshold units (channel-major).
pub fn encode_thresholds(units: &[ThresholdUnit], act_bits: u32) -> Vec<i32> {
    units.iter().flat_map(|u| u.to_wire(act_bits)).collect()
}

/// Host-side: the full parameter blob for one convolution kernel —
/// weights first, then (optionally) thresholds, exactly the order the
/// loader consumes.
pub fn encode_conv_params(
    filters: &BinaryFilters,
    thresholds: Option<&[ThresholdUnit]>,
    act_bits: u32,
) -> Vec<i32> {
    let mut out = encode_weights(filters);
    if let Some(units) = thresholds {
        out.extend(encode_thresholds(units, act_bits));
    }
    out
}

/// Number of parameter words a conv kernel with `o` filters of
/// `weights_per_filter` bits expects (`with_thresholds` adds the fused
/// BatchNorm units).
pub fn param_words(
    weights_per_filter: usize,
    o: usize,
    with_thresholds: bool,
    act_bits: u32,
) -> usize {
    let w = weights_per_filter * o;
    if with_thresholds {
        w + o * ThresholdUnit::wire_words(act_bits)
    } else {
        w
    }
}

/// On-chip parameter loader state machine: one word per clock.
#[derive(Debug)]
pub struct ParamLoader {
    weights_per_filter: usize,
    o: usize,
    with_thresholds: bool,
    act_bits: u32,
    received: usize,
    rows: Vec<BitVec>,
    thr_buf: Vec<i32>,
}

/// What [`ParamLoader::push`] produced.
pub enum LoadStep {
    /// More words expected.
    Loading,
    /// Caches complete: the binarized weights and decoded thresholds.
    Done(BinaryFilters, Option<Vec<ThresholdUnit>>),
}

impl ParamLoader {
    /// Expect parameters for `o` filters of `weights_per_filter` bits.
    pub fn new(weights_per_filter: usize, o: usize, with_thresholds: bool, act_bits: u32) -> Self {
        assert!(weights_per_filter > 0 && o > 0);
        Self {
            weights_per_filter,
            o,
            with_thresholds,
            act_bits,
            received: 0,
            rows: (0..o).map(|_| BitVec::zeros(weights_per_filter)).collect(),
            thr_buf: Vec::new(),
        }
    }

    /// Total words expected.
    pub fn expected_words(&self) -> usize {
        param_words(self.weights_per_filter, self.o, self.with_thresholds, self.act_bits)
    }

    /// Words still outstanding.
    pub fn remaining(&self) -> usize {
        self.expected_words() - self.received
    }

    /// Consume one parameter word (one clock of the loading phase).
    ///
    /// # Panics
    /// Panics if called after completion.
    pub fn push(&mut self, word: i32) -> LoadStep {
        let weight_words = self.weights_per_filter * self.o;
        assert!(self.received < self.expected_words(), "loader overfed");
        if self.received < weight_words {
            // Sign binarization of the incoming 32-bit float (§III-B1a).
            let value = f32::from_bits(word as u32);
            let idx = self.received;
            self.rows[idx / self.weights_per_filter]
                .set(idx % self.weights_per_filter, value >= 0.0);
        } else {
            self.thr_buf.push(word);
        }
        self.received += 1;
        if self.received < self.expected_words() {
            return LoadStep::Loading;
        }
        let filters = BinaryFilters::from_rows(std::mem::take(&mut self.rows));
        let thresholds = if self.with_thresholds {
            let per = ThresholdUnit::wire_words(self.act_bits);
            Some(
                self.thr_buf
                    .chunks_exact(per)
                    .map(|c| ThresholdUnit::from_wire(c, self.act_bits))
                    .collect(),
            )
        } else {
            None
        };
        LoadStep::Done(filters, thresholds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnn_quant::{BnParams, QuantSpec};

    fn bank() -> BinaryFilters {
        let w: Vec<f32> = (0..24).map(|i| if i % 3 == 0 { 0.7 } else { -0.2 }).collect();
        BinaryFilters::from_float_rows(&w, 8)
    }

    fn units() -> Vec<ThresholdUnit> {
        let spec = QuantSpec::paper_2bit();
        vec![
            ThresholdUnit::from_batchnorm(&BnParams::IDENTITY, &spec),
            ThresholdUnit::from_batchnorm(&BnParams::new(-1.0, 2.0, 0.5, 1.0), &spec),
            ThresholdUnit::from_batchnorm(&BnParams::new(0.0, 0.0, 1.0, 2.2), &spec),
        ]
    }

    #[test]
    fn weights_roundtrip_through_the_float_wire() {
        let filters = bank();
        let blob = encode_weights(&filters);
        assert_eq!(blob.len(), 24);
        let mut loader = ParamLoader::new(8, 3, false, 2);
        let mut done = None;
        for w in blob {
            if let LoadStep::Done(f, t) = loader.push(w) {
                done = Some((f, t));
            }
        }
        let (f, t) = done.expect("load completes");
        assert!(t.is_none());
        for o in 0..3 {
            assert_eq!(f.filter(o), filters.filter(o), "row {o}");
        }
    }

    #[test]
    fn full_conv_blob_roundtrips_weights_and_thresholds() {
        let filters = bank();
        let thr = units();
        let blob = encode_conv_params(&filters, Some(&thr), 2);
        assert_eq!(blob.len(), param_words(8, 3, true, 2));
        let mut loader = ParamLoader::new(8, 3, true, 2);
        let mut done = None;
        for w in blob {
            if let LoadStep::Done(f, t) = loader.push(w) {
                done = Some((f, t));
            }
        }
        let (f, t) = done.expect("load completes");
        let t = t.expect("thresholds decoded");
        assert_eq!(t.len(), 3);
        for (got, want) in t.iter().zip(&thr) {
            for a in -50..=50 {
                assert_eq!(got.activate(a), want.activate(a));
            }
        }
        assert_eq!(f.filter(1), filters.filter(1));
    }

    #[test]
    fn remaining_counts_down() {
        let mut loader = ParamLoader::new(4, 2, true, 2);
        assert_eq!(loader.expected_words(), 8 + 2 * 4);
        let blob = encode_conv_params(&bank_small(), Some(&units()[..2]), 2);
        for (i, w) in blob.iter().enumerate() {
            assert_eq!(loader.remaining(), 16 - i);
            let _ = loader.push(*w);
        }
        assert_eq!(loader.remaining(), 0);
    }

    fn bank_small() -> BinaryFilters {
        let w: Vec<f32> = (0..8).map(|i| i as f32 - 4.0).collect();
        BinaryFilters::from_float_rows(&w, 4)
    }

    #[test]
    #[should_panic(expected = "overfed")]
    fn overfeeding_panics() {
        let mut loader = ParamLoader::new(2, 1, false, 2);
        let _ = loader.push(0);
        let _ = loader.push(0);
        let _ = loader.push(0);
    }
}
