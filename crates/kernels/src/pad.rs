//! Border-padding insertion (paper §III-B1).
//!
//! "If the image is padded, then, when the kernel is processing padding
//! pixels, it stops the input stream and inputs padding values into the
//! buffer instead." We factor that behaviour into its own kernel so the
//! convolution kernel always sees a pre-padded stream; the clock cost (one
//! cycle per padded element) is identical.

use dfe_platform::{Io, Kernel, Progress, SpanIo, SpanPlan, WakeHint};
use qnn_tensor::Shape3;

/// Inserts `pad` rows/columns of `fill` around each image of the stream.
pub struct PadInserter {
    name: String,
    input: Shape3,
    pad: usize,
    fill: i32,
    /// Position in the *padded* output image, kept as explicit (y, x, c)
    /// counters — the kernel runs once per clock, and deriving the
    /// coordinates from a linear index would cost two divisions per tick.
    y: usize,
    x: usize,
    c: usize,
    /// Elements passed through per tick (1 ⇒ the one-per-clock contract;
    /// more than 1 models the widened stream interface in front of a
    /// folded consumer).
    lanes: usize,
}

impl PadInserter {
    /// Create a pad inserter for images of shape `input`.
    pub fn new(name: impl Into<String>, input: Shape3, pad: usize, fill: i32) -> Self {
        assert!(pad > 0, "useless pad inserter (pad = 0)");
        Self {
            name: name.into(),
            input,
            pad,
            fill,
            y: 0,
            x: 0,
            c: 0,
            lanes: 1,
        }
    }

    /// Rebuild with a widened stream interface: pass up to `lanes` elements
    /// per tick. Element order is unchanged, so the padded stream is
    /// bit-identical at any width. Must be applied before streaming starts.
    pub fn with_lanes(mut self, lanes: usize) -> Self {
        assert!(
            (self.y, self.x, self.c) == (0, 0, 0),
            "lane change mid-stream"
        );
        assert!(
            (1..=u16::MAX as usize).contains(&lanes),
            "lane count out of range"
        );
        self.lanes = lanes;
        self
    }

    /// Shape of the padded output image.
    pub fn output_shape(&self) -> Shape3 {
        Shape3::new(
            self.input.h + 2 * self.pad,
            self.input.w + 2 * self.pad,
            self.input.c,
        )
    }

    /// Is the current (y, x) position a border (padding) element?
    fn is_border(&self) -> bool {
        let (y, x) = (self.y, self.x);
        y < self.pad || y >= self.pad + self.input.h || x < self.pad || x >= self.pad + self.input.w
    }

    /// Advance the (y, x, c) counters one element, wrapping at image end.
    fn advance(&mut self) {
        let out = self.output_shape();
        self.c += 1;
        if self.c == out.c {
            self.c = 0;
            self.x += 1;
            if self.x == out.w {
                self.x = 0;
                self.y += 1;
                if self.y == out.h {
                    self.y = 0; // next image
                }
            }
        }
    }
}

impl Kernel for PadInserter {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, io: &mut Io<'_>) -> Progress {
        let mut moved = 0;
        while moved < self.lanes {
            if !io.can_write(0) {
                break;
            }
            if self.is_border() {
                io.write(0, self.fill);
            } else {
                match io.read(0) {
                    Some(v) => io.write(0, v),
                    None => break,
                }
            }
            self.advance();
            moved += 1;
        }
        if moved > 0 {
            Progress::Busy
        } else {
            Progress::Stalled
        }
    }

    /// Stalls only on output backpressure or a starved interior pixel;
    /// both are port-inert and resolve only via stream events (a folded
    /// tick that moved nothing touched no port either).
    fn wake_hint(&self) -> WakeHint {
        WakeHint::Parkable
    }

    /// Widened stream interface (see [`PadInserter::with_lanes`]).
    fn lanes(&self) -> (u16, u16) {
        (self.lanes as u16, self.lanes as u16)
    }

    /// Uniform within a run of same-kind elements: border runs emit `fill`
    /// without reading, interior runs pass one element through per cycle.
    /// The promise stops at the next kind boundary (conservatively at row
    /// ends for border rows). Halting (a blocked port freezes the whole
    /// tick), with a starved interior pixel declared `Stalled` — exactly
    /// `tick`'s verdict.
    fn span_hint(&self, in_len: &[usize]) -> Option<SpanPlan> {
        // Folded kernels run per-element (see [`dfe_platform::Kernel::lanes`]).
        if self.lanes > 1 {
            return None;
        }
        let out = self.output_shape();
        let run = if self.is_border() {
            let in_row = self.y >= self.pad && self.y < self.pad + self.input.h;
            if in_row && self.x < self.pad {
                // Left border: runs up to the first interior pixel.
                (self.pad - self.x) * out.c - self.c
            } else {
                // Top/bottom border rows and the right border: run to the
                // row end (the next row may extend the border; a shorter
                // promise is still valid).
                (out.w - self.x) * out.c - self.c
            }
        } else {
            // Interior segment: up to the right border of this row.
            (self.pad + self.input.w - self.x) * out.c - self.c
        };
        let reads = u32::from(!self.is_border());
        let plan = SpanPlan::new(run as u64, reads, 0b1).halting();
        Some(if reads != 0 && in_len[0] == 0 {
            plan.blocked(Progress::Stalled)
        } else {
            plan
        })
    }

    fn run_span(&mut self, io: &mut SpanIo<'_>, n: u64) {
        for _ in 0..n {
            if self.is_border() {
                io.push(0, self.fill);
            } else {
                let v = io.pop(0);
                io.push(0, v);
            }
            self.advance();
        }
    }

    /// The scan position is the only state; linearize it over the padded
    /// image (it wraps at the image boundary, so the token is periodic
    /// across a steady-state image stream). Folded pads veto replay like
    /// they veto spans.
    fn replay_token(&self) -> Option<u64> {
        if self.lanes > 1 {
            return None;
        }
        let out = self.output_shape();
        Some(((self.y * out.w + self.x) * out.c + self.c) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfe_platform::{Graph, HostSink, HostSource, StreamSpec};
    use qnn_tensor::Tensor3;

    fn run_pad(input: Tensor3<i32>, pad: usize, fill: i32, images: usize) -> Vec<i32> {
        let shape = input.shape();
        let mut data = Vec::new();
        for _ in 0..images {
            data.extend_from_slice(input.as_slice());
        }
        let padded_len = (shape.h + 2 * pad) * (shape.w + 2 * pad) * shape.c * images;
        let mut g = Graph::new();
        let a = g.add_stream(StreamSpec::new("in", 8, 16));
        let b = g.add_stream(StreamSpec::new("out", 8, 16));
        g.add_kernel(Box::new(HostSource::new("src", data)), &[], &[a]);
        g.add_kernel(
            Box::new(PadInserter::new("pad", shape, pad, fill)),
            &[a],
            &[b],
        );
        let (sink, handle) = HostSink::new("dst", padded_len);
        g.add_kernel(Box::new(sink), &[b], &[]);
        g.run(1_000_000).expect("pad run");
        handle.take()
    }

    #[test]
    fn padded_stream_matches_tensor_pad() {
        let t = Tensor3::from_fn(Shape3::new(3, 4, 2), |y, x, c| {
            (y * 100 + x * 10 + c) as i32 + 1
        });
        let got = run_pad(t.clone(), 2, -1, 1);
        let expect = t.pad(2, -1);
        assert_eq!(got, expect.as_slice());
    }

    #[test]
    fn multi_image_padding_resets_between_images() {
        let t = Tensor3::from_fn(Shape3::new(2, 2, 1), |y, x, _| (y * 2 + x) as i32 + 5);
        let got = run_pad(t.clone(), 1, 0, 3);
        let one = t.pad(1, 0);
        let mut expect = Vec::new();
        for _ in 0..3 {
            expect.extend_from_slice(one.as_slice());
        }
        assert_eq!(got, expect);
    }

    #[test]
    fn widened_pad_is_bit_identical() {
        let t = Tensor3::from_fn(Shape3::new(3, 4, 2), |y, x, c| (y * 9 + x * 2 + c) as i32);
        let shape = t.shape();
        let padded_len = (shape.h + 2) * (shape.w + 2) * shape.c;
        let run = |lanes: usize| {
            let mut g = Graph::new();
            let a = g.add_stream(StreamSpec::new("in", 8, 16));
            let b = g.add_stream(StreamSpec::new("out", 8, 64));
            g.add_kernel(
                Box::new(HostSource::new("src", t.as_slice().to_vec())),
                &[],
                &[a],
            );
            g.add_kernel(
                Box::new(PadInserter::new("pad", shape, 1, -9).with_lanes(lanes)),
                &[a],
                &[b],
            );
            let (sink, handle) = HostSink::new("dst", padded_len);
            g.add_kernel(Box::new(sink), &[b], &[]);
            g.run(1_000_000).expect("pad run");
            handle.take()
        };
        let base = run(1);
        assert_eq!(base, t.pad(1, -9).as_slice());
        for lanes in [2, 3, 8] {
            assert_eq!(run(lanes), base, "lanes {lanes} changed padded stream");
        }
    }

    #[test]
    #[should_panic(expected = "useless pad")]
    fn zero_pad_rejected() {
        let _ = PadInserter::new("p", Shape3::new(2, 2, 1), 0, 0);
    }
}
