//! Border-padding insertion (paper §III-B1).
//!
//! "If the image is padded, then, when the kernel is processing padding
//! pixels, it stops the input stream and inputs padding values into the
//! buffer instead." We factor that behaviour into its own kernel so the
//! convolution kernel always sees a pre-padded stream; the clock cost (one
//! cycle per padded element) is identical.

use dfe_platform::{Io, Kernel, Progress};
use qnn_tensor::Shape3;

/// Inserts `pad` rows/columns of `fill` around each image of the stream.
pub struct PadInserter {
    name: String,
    input: Shape3,
    pad: usize,
    fill: i32,
    /// Linear index into the *padded* output stream of the current image.
    out_idx: usize,
}

impl PadInserter {
    /// Create a pad inserter for images of shape `input`.
    pub fn new(name: impl Into<String>, input: Shape3, pad: usize, fill: i32) -> Self {
        assert!(pad > 0, "useless pad inserter (pad = 0)");
        Self { name: name.into(), input, pad, fill, out_idx: 0 }
    }

    /// Shape of the padded output image.
    pub fn output_shape(&self) -> Shape3 {
        Shape3::new(self.input.h + 2 * self.pad, self.input.w + 2 * self.pad, self.input.c)
    }

    /// Is padded-stream element `idx` a border (padding) element?
    fn is_border(&self, idx: usize) -> bool {
        let out = self.output_shape();
        let (y, x, _) = out.coords(idx);
        y < self.pad || y >= self.pad + self.input.h || x < self.pad || x >= self.pad + self.input.w
    }
}

impl Kernel for PadInserter {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, io: &mut Io<'_>) -> Progress {
        if !io.can_write(0) {
            return Progress::Stalled;
        }
        let total = self.output_shape().len();
        if self.is_border(self.out_idx) {
            io.write(0, self.fill);
        } else {
            match io.read(0) {
                Some(v) => io.write(0, v),
                None => return Progress::Stalled,
            }
        }
        self.out_idx += 1;
        if self.out_idx == total {
            self.out_idx = 0; // next image
        }
        Progress::Busy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfe_platform::{Graph, HostSink, HostSource, StreamSpec};
    use qnn_tensor::Tensor3;

    fn run_pad(input: Tensor3<i32>, pad: usize, fill: i32, images: usize) -> Vec<i32> {
        let shape = input.shape();
        let mut data = Vec::new();
        for _ in 0..images {
            data.extend_from_slice(input.as_slice());
        }
        let padded_len = (shape.h + 2 * pad) * (shape.w + 2 * pad) * shape.c * images;
        let mut g = Graph::new();
        let a = g.add_stream(StreamSpec::new("in", 8, 16));
        let b = g.add_stream(StreamSpec::new("out", 8, 16));
        g.add_kernel(Box::new(HostSource::new("src", data)), &[], &[a]);
        g.add_kernel(Box::new(PadInserter::new("pad", shape, pad, fill)), &[a], &[b]);
        let (sink, handle) = HostSink::new("dst", padded_len);
        g.add_kernel(Box::new(sink), &[b], &[]);
        g.run(1_000_000).expect("pad run");
        handle.take()
    }

    #[test]
    fn padded_stream_matches_tensor_pad() {
        let t = Tensor3::from_fn(Shape3::new(3, 4, 2), |y, x, c| (y * 100 + x * 10 + c) as i32 + 1);
        let got = run_pad(t.clone(), 2, -1, 1);
        let expect = t.pad(2, -1);
        assert_eq!(got, expect.as_slice());
    }

    #[test]
    fn multi_image_padding_resets_between_images() {
        let t = Tensor3::from_fn(Shape3::new(2, 2, 1), |y, x, _| (y * 2 + x) as i32 + 5);
        let got = run_pad(t.clone(), 1, 0, 3);
        let one = t.pad(1, 0);
        let mut expect = Vec::new();
        for _ in 0..3 {
            expect.extend_from_slice(one.as_slice());
        }
        assert_eq!(got, expect);
    }

    #[test]
    #[should_panic(expected = "useless pad")]
    fn zero_pad_rejected() {
        let _ = PadInserter::new("p", Shape3::new(2, 2, 1), 0, 0);
    }
}
