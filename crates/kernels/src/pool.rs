//! Streaming pooling kernel (paper §III-B2).
//!
//! "Since the pooling has no parameters, output pixels are calculated as
//! soon as enough data is accumulated inside the internal buffers … we do
//! not need to wait until input is finished, but can produce output at the
//! same clock cycle at which the input is received." The kernel therefore
//! overlaps reading and writing: each tick it may consume one element *and*
//! emit one pending output.

use dfe_platform::{Io, Kernel, Progress, SpanIo, SpanPlan, WakeHint};
use qnn_tensor::Shape3;
use std::collections::VecDeque;

/// Pooling operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PoolOp {
    /// Maximum over the window (codes are order-preserving).
    Max,
    /// Window sum followed by a right shift of ⌊log₂ k²⌋ — the integral
    /// average pooling used before ResNet-18's classifier.
    AvgShift,
}

/// The streaming pooling kernel. Like the convolution kernel it scans
/// depth-first with an `I·(W·(K−1)+K)`-element window buffer, but per
/// channel and without weights. Input must be pre-padded (use
/// [`crate::PadInserter`]).
pub struct PoolKernel {
    name: String,
    input: Shape3,
    k: usize,
    stride: usize,
    op: PoolOp,
    shift: u32,
    ring: Vec<i32>,
    received: usize,
    /// Ring slot the next element lands in (≡ `received % ring.len()`).
    wr: usize,
    out_pos: usize,
    /// Memo of the last `needed(pos)` query: `(pos, value)` — same
    /// per-clock div/mod avoidance as the convolution kernel.
    needed_memo: (usize, usize),
    pending: VecDeque<i32>,
    /// Outputs emitted per tick (write-lane folding; 1 ⇒ one per clock).
    pe: usize,
    /// Inputs absorbed per tick (read-lane folding; 1 ⇒ one per clock).
    simd: usize,
}

impl PoolKernel {
    /// Create a pooling kernel over (pre-padded) images of shape `input`.
    pub fn new(
        name: impl Into<String>,
        input: Shape3,
        k: usize,
        stride: usize,
        op: PoolOp,
    ) -> Self {
        assert!(k >= 1 && stride >= 1);
        assert!(
            input.h >= k && input.w >= k,
            "pool window larger than input"
        );
        let buf = input.c * (input.w * (k - 1) + k);
        Self {
            name: name.into(),
            input,
            k,
            stride,
            op,
            shift: ((k * k) as u32).ilog2(),
            ring: vec![0; buf],
            received: 0,
            wr: 0,
            out_pos: 0,
            needed_memo: (usize::MAX, 0),
            pending: VecDeque::with_capacity(input.c),
            pe: 1,
            simd: 1,
        }
    }

    /// Rebuild with stream-width folding: absorb up to `simd` inputs and
    /// emit up to `pe` pending outputs per tick through a widened stream
    /// interface. Output order is unchanged, so results are bit-identical
    /// at any folding. Must be applied before any input is streamed.
    pub fn with_folding(mut self, pe: usize, simd: usize) -> Self {
        assert_eq!(self.received, 0, "folding change mid-stream");
        assert!(pe >= 1 && simd >= 1, "folding factors must be ≥ 1");
        assert!(
            pe <= u16::MAX as usize && simd <= u16::MAX as usize,
            "folding factor exceeds the lane-count range"
        );
        self.pe = pe;
        self.simd = simd;
        self
    }

    /// Output shape.
    pub fn output_shape(&self) -> Shape3 {
        Shape3::new(
            (self.input.h - self.k) / self.stride + 1,
            (self.input.w - self.k) / self.stride + 1,
            self.input.c,
        )
    }

    /// Window-buffer size in elements.
    pub fn buffer_elems(&self) -> usize {
        self.ring.len()
    }

    fn positions(&self) -> usize {
        let o = self.output_shape();
        o.h * o.w
    }

    fn needed(&self, pos: usize) -> usize {
        let out_w = self.output_shape().w;
        let (oy, ox) = (pos / out_w, pos % out_w);
        let (ty, tx) = (oy * self.stride, ox * self.stride);
        ((ty + self.k - 1) * self.input.w + tx + self.k - 1) * self.input.c + self.input.c
    }

    /// `needed(pos)` through the single-entry memo.
    #[inline]
    fn needed_cached(&mut self, pos: usize) -> usize {
        if self.needed_memo.0 != pos {
            self.needed_memo = (pos, self.needed(pos));
        }
        self.needed_memo.1
    }

    /// Compute all `I` channel outputs for the completed position.
    fn compute_position(&mut self) {
        let out_w = self.output_shape().w;
        let (oy, ox) = (self.out_pos / out_w, self.out_pos % out_w);
        let (ty, tx) = (oy * self.stride, ox * self.stride);
        let cap = self.ring.len();
        let i = self.input.c;
        for c in 0..i {
            let mut max = i32::MIN;
            let mut sum = 0i64;
            for ky in 0..self.k {
                for kx in 0..self.k {
                    let idx = ((ty + ky) * self.input.w + tx + kx) * i + c;
                    let v = self.ring[idx % cap];
                    max = max.max(v);
                    sum += i64::from(v);
                }
            }
            let out = match self.op {
                PoolOp::Max => max,
                PoolOp::AvgShift => (sum >> self.shift) as i32,
            };
            self.pending.push_back(out);
        }
        self.out_pos += 1;
    }
}

impl Kernel for PoolKernel {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, io: &mut Io<'_>) -> Progress {
        let mut progress = Progress::Idle;

        // Emit up to `pe` pending outputs (same cycle as reads — no halt).
        let mut emitted = 0;
        while emitted < self.pe {
            let Some(&v) = self.pending.front() else {
                break;
            };
            if io.can_write(0) {
                io.write(0, v);
                self.pending.pop_front();
                emitted += 1;
                progress = Progress::Busy;
            } else {
                if emitted == 0 {
                    progress = Progress::Stalled;
                }
                break;
            }
        }

        // Absorb up to `simd` inputs, each bounded by the completing element
        // of the current uncomputed position: element `e` overwrites ring
        // slot `e % buf`, and `needed(out_pos)` equals the window start plus
        // exactly `buf`, so reading beyond it would clobber window data
        // that `compute_position` still needs. (Gating on the *pending*
        // length instead is wrong: under output backpressure the queue can
        // sit partially drained for many cycles while reads run ahead.)
        // Completed positions are folded in between reads so a wide absorb
        // can cross a window boundary once backpressure allows it.
        let mut absorbed = 0;
        while absorbed < self.simd {
            let ahead_ok = self.out_pos >= self.positions()
                || self.received < self.needed_cached(self.out_pos);
            if !(ahead_ok && self.received < self.input.len()) {
                break;
            }
            match io.read(0) {
                Some(v) => {
                    self.ring[self.wr] = v;
                    self.wr += 1;
                    if self.wr == self.ring.len() {
                        self.wr = 0;
                    }
                    self.received += 1;
                    absorbed += 1;
                    progress = Progress::Busy;
                    while self.out_pos < self.positions()
                        && self.pending.is_empty()
                        && self.received >= self.needed_cached(self.out_pos)
                    {
                        self.compute_position();
                    }
                }
                None => {
                    if progress == Progress::Idle {
                        progress = Progress::Stalled;
                    }
                    break;
                }
            }
        }

        // Completed positions become pending outputs (combinational w.r.t.
        // this model's bookkeeping; the emit itself still costs a cycle).
        while self.out_pos < self.positions()
            && self.pending.is_empty()
            && self.received >= self.needed_cached(self.out_pos)
        {
            self.compute_position();
        }

        // Image finished: reset for the next one.
        if self.out_pos == self.positions()
            && self.received == self.input.len()
            && self.pending.is_empty()
        {
            self.received = 0;
            self.wr = 0;
            self.out_pos = 0;
        }
        progress
    }

    /// Pooling decisions are made within the tick that has the data; a
    /// stalled or idle tick touches nothing and repeats until its input
    /// commits or its output drains.
    fn wake_hint(&self) -> WakeHint {
        WakeHint::Parkable
    }

    /// Folded stream-interface width: `simd` read lanes, `pe` write lanes.
    fn lanes(&self) -> (u16, u16) {
        (self.simd as u16, self.pe as u16)
    }

    /// Three uniform phases, bounded so no mask change can occur mid-span:
    /// * emit + absorb while pending outputs and read headroom both last
    ///   (`min(pending, reads_left)` — a refill landing on the final tick
    ///   is inside that tick, after both ports fired). With a **dry input**
    ///   the absorb is opportunistic — dense keeps draining `pending`
    ///   without the read — so the promise suppresses it
    ///   ([`SpanPlan::opt_reads`]) instead of claiming a read the starved
    ///   port cannot serve;
    /// * emit-only while reads are capped at the current window boundary;
    /// * absorb-only while pending is empty — the promise runs up to the
    ///   read that completes the window, whose compute fires at span end.
    fn span_hint(&self, in_len: &[usize]) -> Option<SpanPlan> {
        // Folded kernels run per-element (see [`dfe_platform::Kernel::lanes`]).
        if self.pe > 1 || self.simd > 1 {
            return None;
        }
        let read_cap = if self.out_pos >= self.positions() {
            self.input.len()
        } else {
            // `needed` is a div/mod per *burst* here, not per tick, so the
            // memo (which needs `&mut self`) is not worth threading through.
            self.needed(self.out_pos)
        };
        let reads_left = read_cap - self.received;
        match (self.pending.len(), reads_left) {
            (0, 0) => None,
            (0, r) if in_len[0] == 0 => {
                Some(SpanPlan::new(r as u64, 0b1, 0).blocked(Progress::Stalled))
            }
            (0, r) => Some(SpanPlan::new(r as u64, 0b1, 0)),
            // Emit without absorb headroom: a blocked emit is a bare stall.
            (p, 0) => Some(SpanPlan::new(p as u64, 0, 0b1).halting()),
            // Dry input can't refill in-span (the opt_reads cap), so a
            // blocked emit stalls here too.
            (p, _) if in_len[0] == 0 => {
                Some(SpanPlan::new(p as u64, 0, 0b1).with_opt_reads(0b1).halting())
            }
            // Not halting: a blocked emit still absorbs (`Busy`).
            (p, r) => Some(SpanPlan::new(p.min(r) as u64, 0b1, 0b1)),
        }
    }

    /// Control state: absorb count, emit position and the number of queued
    /// results (their *values* are data). The ring write index tracks
    /// `received` modulo the ring length, so it adds nothing. Folded
    /// kernels veto replay like they veto spans.
    fn replay_token(&self) -> Option<u64> {
        if self.pe > 1 || self.simd > 1 {
            return None;
        }
        Some(dfe_platform::replay::token_mix(&[
            self.received as u64,
            self.out_pos as u64,
            self.pending.len() as u64,
        ]))
    }

    fn run_span(&mut self, io: &mut SpanIo<'_>, n: u64) {
        let absorb_ok = !io.read_suppressed(0);
        for _ in 0..n {
            if let Some(v) = self.pending.pop_front() {
                io.push(0, v);
            }
            let ahead_ok = absorb_ok
                && (self.out_pos >= self.positions()
                    || self.received < self.needed_cached(self.out_pos));
            if ahead_ok && self.received < self.input.len() {
                self.ring[self.wr] = io.pop(0);
                self.wr += 1;
                if self.wr == self.ring.len() {
                    self.wr = 0;
                }
                self.received += 1;
            }
            while self.out_pos < self.positions()
                && self.pending.is_empty()
                && self.received >= self.needed_cached(self.out_pos)
            {
                self.compute_position();
            }
            if self.out_pos == self.positions()
                && self.received == self.input.len()
                && self.pending.is_empty()
            {
                self.received = 0;
                self.wr = 0;
                self.out_pos = 0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfe_platform::{Graph, HostSink, HostSource, StreamSpec};
    use qnn_tensor::Tensor3;

    fn run_pool(
        input: &Tensor3<u8>,
        k: usize,
        stride: usize,
        op: PoolOp,
        images: usize,
    ) -> (Vec<i32>, dfe_platform::CycleReport) {
        let shape = input.shape();
        let kernel = PoolKernel::new("pool", shape, k, stride, op);
        let out_len = kernel.output_shape().len() * images;
        let mut data = Vec::new();
        for _ in 0..images {
            data.extend(input.as_slice().iter().map(|&q| i32::from(q)));
        }
        let mut g = Graph::new();
        let a = g.add_stream(StreamSpec::new("in", 2, 32));
        let b = g.add_stream(StreamSpec::new("out", 2, 32));
        g.add_kernel(Box::new(HostSource::new("src", data)), &[], &[a]);
        g.add_kernel(Box::new(kernel), &[a], &[b]);
        let (sink, handle) = HostSink::new("dst", out_len);
        g.add_kernel(Box::new(sink), &[b], &[]);
        let report = g.run(1_000_000).expect("pool run");
        (handle.take(), report)
    }

    #[test]
    fn max_pool_matches_reference() {
        let input = Tensor3::from_fn(Shape3::new(6, 6, 3), |y, x, c| {
            ((y * 5 + x * 2 + c) % 4) as u8
        });
        let expect = qnn_nn::reference::max_pool(&input, 2, 2, 0);
        let (got, _) = run_pool(&input, 2, 2, PoolOp::Max, 1);
        let got_u8: Vec<u8> = got.iter().map(|&v| v as u8).collect();
        assert_eq!(got_u8, expect.as_slice());
    }

    #[test]
    fn overlapping_max_pool_matches_reference() {
        // ResNet's stem pool is 3×3 stride 2 (overlapping windows).
        let input = Tensor3::from_fn(Shape3::new(7, 7, 2), |y, x, c| ((y + x + c) % 4) as u8);
        let expect = qnn_nn::reference::max_pool(&input, 3, 2, 0);
        let (got, _) = run_pool(&input, 3, 2, PoolOp::Max, 1);
        let got_u8: Vec<u8> = got.iter().map(|&v| v as u8).collect();
        assert_eq!(got_u8, expect.as_slice());
    }

    #[test]
    fn avg_shift_pool_matches_reference() {
        let input = Tensor3::from_fn(Shape3::new(7, 7, 4), |y, x, c| ((y * x + c) % 4) as u8);
        let expect = qnn_nn::reference::avg_sum_pool(&input, 7, 7);
        let (got, _) = run_pool(&input, 7, 7, PoolOp::AvgShift, 1);
        let got_u8: Vec<u8> = got.iter().map(|&v| v as u8).collect();
        assert_eq!(got_u8, expect.as_slice());
    }

    #[test]
    fn multi_image_pooling_stays_aligned() {
        let input = Tensor3::from_fn(Shape3::new(4, 4, 2), |y, x, c| ((3 * y + x + c) % 4) as u8);
        let expect = qnn_nn::reference::max_pool(&input, 2, 2, 0);
        let (got, _) = run_pool(&input, 2, 2, PoolOp::Max, 3);
        let mut expect3 = Vec::new();
        for _ in 0..3 {
            expect3.extend_from_slice(expect.as_slice());
        }
        let got_u8: Vec<u8> = got.iter().map(|&v| v as u8).collect();
        assert_eq!(got_u8, expect3);
    }

    #[test]
    fn pooling_overlaps_io_no_halt_penalty() {
        // Because reads and writes share cycles, a pool's makespan is close
        // to its input length, not input + output (§III-B2).
        let input = Tensor3::from_fn(Shape3::new(8, 8, 4), |y, x, c| ((y ^ x ^ c) % 4) as u8);
        let (_, report) = run_pool(&input, 2, 2, PoolOp::Max, 1);
        let n = input.shape().len() as u64;
        assert!(
            report.cycles <= n + 3 * (n / 4),
            "pooling serialized I/O: {} cycles for {} inputs",
            report.cycles,
            n
        );
    }

    #[test]
    fn folded_pool_is_bit_identical() {
        let input = Tensor3::from_fn(Shape3::new(8, 8, 3), |y, x, c| ((y * 5 + x * 3 + c) % 4) as u8);
        let shape = input.shape();
        let data: Vec<i32> = input.as_slice().iter().map(|&q| i32::from(q)).collect();
        let run = |pe: usize, simd: usize| {
            let kernel =
                PoolKernel::new("pool", shape, 3, 2, PoolOp::Max).with_folding(pe, simd);
            let out_len = kernel.output_shape().len();
            let mut g = Graph::new();
            let a = g.add_stream(StreamSpec::new("in", 2, 64));
            let b = g.add_stream(StreamSpec::new("out", 2, 64));
            g.add_kernel(Box::new(HostSource::new("src", data.clone())), &[], &[a]);
            g.add_kernel(Box::new(kernel), &[a], &[b]);
            let (sink, handle) = HostSink::new("dst", out_len);
            g.add_kernel(Box::new(sink), &[b], &[]);
            g.run(1_000_000).expect("pool run");
            handle.take()
        };
        let base = run(1, 1);
        for (pe, simd) in [(2, 2), (1, 4), (4, 1), (8, 8)] {
            assert_eq!(run(pe, simd), base, "folding ({pe},{simd}) changed pool output");
        }
    }

    #[test]
    #[should_panic(expected = "window larger")]
    fn oversize_window_rejected() {
        let _ = PoolKernel::new("p", Shape3::new(2, 2, 1), 3, 1, PoolOp::Max);
    }
}
