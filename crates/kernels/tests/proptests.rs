//! Property-based tests for the streaming kernels against the reference
//! interpreter, over randomized geometries and execution conditions.

use dfe_platform::{Graph, HostSink, HostSource, StreamSpec};
use qnn_testkit::{any, prop_assert_eq, prop_assume, props};
use qnn_kernels::{ConvKernel, DotMode, PadInserter, PoolKernel, PoolOp};
use qnn_tensor::{BinaryFilters, ConvGeometry, FilterShape, Shape3, Tensor3};

fn run_one(
    kernel: Box<dyn dfe_platform::Kernel>,
    input: Vec<i32>,
    out_len: usize,
    in_cap: usize,
) -> Vec<i32> {
    let mut g = Graph::new();
    let a = g.add_stream(StreamSpec::new("in", 8, in_cap));
    let b = g.add_stream(StreamSpec::new("out", 16, in_cap));
    g.add_kernel(Box::new(HostSource::new("src", input)), &[], &[a]);
    g.add_kernel(kernel, &[a], &[b]);
    let (sink, handle) = HostSink::new("dst", out_len);
    g.add_kernel(Box::new(sink), &[b], &[]);
    g.run(100_000_000).expect("kernel run");
    handle.take()
}

fn filters_for(geom: &ConvGeometry, seed: u64) -> BinaryFilters {
    let w: Vec<f32> = (0..geom.filter.total_weights())
        .map(|i| if (i as u64).wrapping_mul(seed | 1).wrapping_add(seed) % 7 < 3 { 1.0 } else { -1.0 })
        .collect();
    BinaryFilters::from_float_rows(&w, geom.filter.weights_per_filter())
}

props! {
    /// Random conv geometries (both I/O disciplines) match the reference.
    #[test]
    fn conv_kernel_matches_reference(
        h in 3usize..9,
        w in 3usize..9,
        c in 1usize..4,
        k in 1usize..4,
        o in 1usize..5,
        stride in 1usize..3,
        halted in any::<bool>(),
        seed in any::<u64>(),
    ) {
        prop_assume!(h >= k && w >= k);
        let geom = ConvGeometry::new(Shape3::new(h, w, c), FilterShape::new(k, c, o), stride, 0);
        let filters = filters_for(&geom, seed);
        let input = Tensor3::from_fn(geom.input, |y, x, ch| {
            ((seed as usize).wrapping_add(y * 31 + x * 7 + ch) % 4) as u8
        });
        let expect = qnn_nn::reference::conv_acc_codes(&geom, &input, &filters, 2);
        let kernel: Box<dyn dfe_platform::Kernel> = if halted {
            Box::new(ConvKernel::new_halted("c", geom, filters, None, DotMode::Codes { bits: 2 }))
        } else {
            Box::new(ConvKernel::new("c", geom, filters, None, DotMode::Codes { bits: 2 }))
        };
        let got = run_one(
            kernel,
            input.as_slice().iter().map(|&q| i32::from(q)).collect(),
            expect.shape().len(),
            16,
        );
        prop_assert_eq!(got.as_slice(), expect.as_slice());
    }

    /// Random pooling configurations match the reference (both ops).
    #[test]
    fn pool_kernel_matches_reference(
        side in 3usize..12,
        c in 1usize..5,
        k in 1usize..4,
        stride in 1usize..3,
        avg in any::<bool>(),
        seed in any::<u64>(),
    ) {
        prop_assume!(side >= k);
        let shape = Shape3::new(side, side, c);
        let input = Tensor3::from_fn(shape, |y, x, ch| {
            ((seed as usize).wrapping_add(y * 13 + x * 5 + ch * 3) % 4) as u8
        });
        let (op, expect) = if avg {
            (PoolOp::AvgShift, qnn_nn::reference::avg_sum_pool(&input, k, stride))
        } else {
            (PoolOp::Max, qnn_nn::reference::max_pool(&input, k, stride, 0))
        };
        let kernel = PoolKernel::new("p", shape, k, stride, op);
        let got = run_one(
            Box::new(kernel),
            input.as_slice().iter().map(|&q| i32::from(q)).collect(),
            expect.shape().len(),
            16,
        );
        let got_u8: Vec<u8> = got.iter().map(|&v| v as u8).collect();
        prop_assert_eq!(got_u8.as_slice(), expect.as_slice());
    }

    /// Pad inserter matches `Tensor3::pad` for random shapes, fills and
    /// image counts, at any FIFO capacity.
    #[test]
    fn pad_inserter_matches_tensor_pad(
        h in 1usize..7,
        w in 1usize..7,
        c in 1usize..4,
        pad in 1usize..3,
        fill in -2i32..2,
        images in 1usize..3,
        cap in 2usize..32,
    ) {
        let shape = Shape3::new(h, w, c);
        let t = Tensor3::from_fn(shape, |y, x, ch| (y * 100 + x * 10 + ch) as i32 + 1);
        let mut data = Vec::new();
        for _ in 0..images {
            data.extend_from_slice(t.as_slice());
        }
        let expect_one = t.pad(pad, fill);
        let got = run_one(
            Box::new(PadInserter::new("p", shape, pad, fill)),
            data,
            expect_one.shape().len() * images,
            cap,
        );
        for (i, chunk) in got.chunks_exact(expect_one.shape().len()).enumerate() {
            prop_assert_eq!(chunk, expect_one.as_slice(), "image {}", i);
        }
    }
}
