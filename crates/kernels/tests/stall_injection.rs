//! Stall-injection property suite: streaming kernels must be *timing
//! insensitive* — their output streams depend only on the data, never on
//! when elements happen to arrive or when downstream accepts them.
//!
//! Each property runs the same kernel cell twice at `Kernel::tick`
//! granularity: once clean, once with every node (sources, the kernel
//! under test, sinks) wrapped in a [`StallInjector`] that suppresses a
//! random subset of ticks. The injected pattern models clock-domain
//! jitter, PCIe arbitration and MaxRing credit delays; the outputs must be
//! bit-identical regardless. Deadlock detection is disabled because an
//! injected stall can legitimately produce a full no-progress cycle (see
//! the `dfe_platform::stall` module docs); the cycle budget still bounds
//! every run.

use dfe_platform::{Graph, HostSink, HostSource, Kernel, StallInjector, StreamSpec};
use qnn_kernels::{AddKernel, PoolKernel, PoolOp, SplitKernel, ThresholdKernel};
use qnn_quant::{BnParams, QuantSpec, ThresholdUnit};
use qnn_tensor::{Shape3, Tensor3};
use qnn_testkit::{any, prop_assert_eq, prop_assume, props};

const MAX_CYCLES: u64 = 100_000_000;

/// Derive a per-node injector seed so each node gets its own pattern.
fn node_seed(base: u64, node: u64) -> u64 {
    base ^ node.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Run one kernel between host sources and sinks, optionally with every
/// node stall-injected, and return each output stream.
fn run_cell(
    make: &dyn Fn() -> Box<dyn Kernel>,
    inputs: &[Vec<i32>],
    out_lens: &[usize],
    cap: usize,
    stall: Option<(u64, u8)>,
) -> Vec<Vec<i32>> {
    let inject = |k: Box<dyn Kernel>, node: u64| match stall {
        Some((seed, pct)) => StallInjector::wrap(k, node_seed(seed, node), pct),
        None => k,
    };
    let mut g = Graph::new();
    let ins: Vec<_> = inputs
        .iter()
        .enumerate()
        .map(|(i, data)| {
            let s = g.add_stream(StreamSpec::new(format!("in{i}"), 32, cap));
            let src = inject(Box::new(HostSource::new(format!("src{i}"), data.clone())), i as u64);
            g.add_kernel(src, &[], &[s]);
            s
        })
        .collect();
    let outs: Vec<_> = (0..out_lens.len())
        .map(|i| g.add_stream(StreamSpec::new(format!("out{i}"), 32, cap)))
        .collect();
    g.add_kernel(inject(make(), 100), &ins, &outs);
    let handles: Vec<_> = out_lens
        .iter()
        .zip(&outs)
        .enumerate()
        .map(|(i, (&n, &s))| {
            let (sink, h) = HostSink::new(format!("dst{i}"), n);
            g.add_kernel(inject(Box::new(sink), 200 + i as u64), &[s], &[]);
            h
        })
        .collect();
    g.run_opts(MAX_CYCLES, false).expect("cell run");
    handles.into_iter().map(|h| h.take()).collect()
}

props! {
    /// Pooling (both ops) is bit-identical under random stall injection,
    /// and still matches the analytic reference.
    #[test]
    fn pool_kernel_is_timing_insensitive(
        side in 3usize..10,
        c in 1usize..4,
        k in 1usize..4,
        stride in 1usize..3,
        avg in any::<bool>(),
        cap in 2usize..16,
        seed in any::<u64>(),
        stall in 5u8..60,
    ) {
        prop_assume!(side >= k);
        let shape = Shape3::new(side, side, c);
        let input = Tensor3::from_fn(shape, |y, x, ch| {
            ((seed as usize).wrapping_add(y * 13 + x * 5 + ch * 3) % 4) as u8
        });
        let (op, expect) = if avg {
            (PoolOp::AvgShift, qnn_nn::reference::avg_sum_pool(&input, k, stride))
        } else {
            (PoolOp::Max, qnn_nn::reference::max_pool(&input, k, stride, 0))
        };
        let data: Vec<i32> = input.as_slice().iter().map(|&q| i32::from(q)).collect();
        let make = || Box::new(PoolKernel::new("p", shape, k, stride, op)) as Box<dyn Kernel>;
        let out_len = expect.shape().len();
        let clean = run_cell(&make, std::slice::from_ref(&data), &[out_len], cap, None);
        let stalled = run_cell(&make, &[data], &[out_len], cap, Some((seed, stall)));
        prop_assert_eq!(&stalled, &clean, "stall injection changed the output");
        let clean_u8: Vec<u8> = clean[0].iter().map(|&v| v as u8).collect();
        prop_assert_eq!(clean_u8.as_slice(), expect.as_slice());
    }

    /// The fused BatchNorm+activation kernel is bit-identical under random
    /// stall injection for random per-channel parameters.
    #[test]
    fn threshold_kernel_is_timing_insensitive(
        c in 1usize..5,
        pixels in 2usize..40,
        cap in 2usize..16,
        seed in any::<u64>(),
        stall in 5u8..60,
    ) {
        let spec = QuantSpec::paper_2bit();
        let make = move || {
            let units: Vec<ThresholdUnit> = (0..c)
                .map(|ch| {
                    let bn = BnParams::new(
                        0.25 + 0.5 * ch as f32,
                        (seed % 11) as f32 - 5.0,
                        0.5,
                        0.1 * ch as f32,
                    );
                    ThresholdUnit::from_batchnorm(&bn, &spec)
                })
                .collect();
            Box::new(ThresholdKernel::new("thr", units)) as Box<dyn Kernel>
        };
        let data: Vec<i32> = (0..pixels * c)
            .map(|i| ((seed.wrapping_add(i as u64 * 37) % 41) as i32) - 20)
            .collect();
        let n = data.len();
        let clean = run_cell(&make, std::slice::from_ref(&data), &[n], cap, None);
        let stalled = run_cell(&make, &[data], &[n], cap, Some((seed, stall)));
        prop_assert_eq!(stalled, clean);
    }

    /// The skip-connection adder with two independently stalled operand
    /// streams never misaligns them.
    #[test]
    fn add_kernel_keeps_operands_aligned_under_stalls(
        n in 1usize..60,
        cap in 2usize..16,
        seed in any::<u64>(),
        stall in 5u8..60,
    ) {
        let a: Vec<i32> = (0..n).map(|i| (seed.wrapping_add(i as u64) % 100) as i32).collect();
        let b: Vec<i32> = (0..n).map(|i| (seed.wrapping_mul(3).wrapping_add(i as u64 * 7) % 100) as i32 * 100).collect();
        let expect: Vec<i32> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        let make = || Box::new(AddKernel::new("add")) as Box<dyn Kernel>;
        let stalled =
            run_cell(&make, &[a.clone(), b.clone()], &[n], cap, Some((seed, stall)));
        prop_assert_eq!(&stalled[0], &expect, "operand streams misaligned");
    }

    /// The post-adder split keeps both fan-out copies identical and
    /// in-order even when each path backpressures at random.
    #[test]
    fn split_kernel_duplicates_faithfully_under_stalls(
        n in 1usize..60,
        cap in 2usize..16,
        seed in any::<u64>(),
        stall in 5u8..60,
    ) {
        let data: Vec<i32> = (0..n).map(|i| (seed.wrapping_add(i as u64 * 13) % 1000) as i32).collect();
        let make = || Box::new(SplitKernel::new("split")) as Box<dyn Kernel>;
        let stalled = run_cell(&make, std::slice::from_ref(&data), &[n, n], cap, Some((seed, stall)));
        prop_assert_eq!(&stalled[0], &data, "first copy corrupted");
        prop_assert_eq!(&stalled[1], &data, "second copy corrupted");
    }
}

/// Whole skip cell (split → two paths → add) under independent stall
/// patterns on every node: the classic place where a flow-control bug
/// shows up as path misalignment.
#[test]
fn skip_cell_survives_independent_stall_patterns() {
    for seed in 0..8u64 {
        let n = 40usize;
        let data: Vec<i32> = (0..n as i32).map(|v| v * 3 + 1).collect();
        let mut g = Graph::new();
        let s_in = g.add_stream(StreamSpec::new("in", 32, 4));
        let s_a = g.add_stream(StreamSpec::new("path_a", 32, 4));
        let s_b = g.add_stream(StreamSpec::new("path_b", 32, 4));
        let s_out = g.add_stream(StreamSpec::new("out", 32, 4));
        let pct = 30 + (seed % 3) as u8 * 10;
        g.add_kernel(
            StallInjector::wrap(Box::new(HostSource::new("src", data.clone())), seed, pct),
            &[],
            &[s_in],
        );
        g.add_kernel(
            StallInjector::wrap(Box::new(SplitKernel::new("split")), seed ^ 1, pct),
            &[s_in],
            &[s_a, s_b],
        );
        g.add_kernel(
            StallInjector::wrap(Box::new(AddKernel::new("add")), seed ^ 2, pct),
            &[s_a, s_b],
            &[s_out],
        );
        let (sink, h) = HostSink::new("dst", n);
        g.add_kernel(StallInjector::wrap(Box::new(sink), seed ^ 3, pct), &[s_out], &[]);
        g.run_opts(MAX_CYCLES, false).expect("skip cell run");
        let expect: Vec<i32> = data.iter().map(|v| v * 2).collect();
        assert_eq!(h.take(), expect, "seed {seed}");
    }
}
