//! Derived op-graph view of a [`NetworkSpec`].
//!
//! The spec stores stages as an ordered list, but two stage kinds expand
//! into *branching* dataflow: residual blocks split off a skip path that
//! rejoins at an adder, and encoder blocks fan a token stream out across
//! Q/K/V projections and attention heads before concatenating them back.
//! [`NetworkSpec::op_graph`] materializes that structure as an explicit
//! DAG whose node labels match the streaming compiler's kernel labels
//! (`conv0`, `res2.conv1`, `enc1.attn0`, …), so tests and tools can reason
//! about fan-out/rejoin topology without re-deriving the lowering.
//!
//! This is a *view*: it is computed from the validated spec on demand and
//! carries no authority of its own. The compiler remains the single
//! source of truth for what is actually instantiated; the
//! `op_graph_matches_lowering` tests pin the two label sets together.

use crate::spec::{NetworkSpec, Stage};

/// What a node computes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// Host image/token source.
    Source,
    /// Convolution (including 1×1 projections and FC layers).
    Conv,
    /// Spatial pooling.
    Pool,
    /// Fused BatchNorm + activation thresholds.
    Threshold,
    /// Stream duplication (skip-path split).
    Split,
    /// Element-wise adder (skip rejoin).
    Add,
    /// Per-head slice fan-out of a projected token stream.
    HeadSplit,
    /// One attention head (QKᵀ → threshold-softmax → AV).
    Attention,
    /// Head concatenation (fan-in).
    Concat,
    /// Integer LayerNorm.
    LayerNorm,
    /// Host logits sink.
    Sink,
}

/// One node of the derived op graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OpNode {
    /// Label, matching the compiler's kernel label for the same op.
    pub label: String,
    /// Operation kind.
    pub kind: OpKind,
}

/// A directed acyclic op graph derived from a spec.
#[derive(Clone, Debug, Default)]
pub struct OpGraph {
    nodes: Vec<OpNode>,
    edges: Vec<(usize, usize)>,
}

impl OpGraph {
    fn node(&mut self, label: impl Into<String>, kind: OpKind) -> usize {
        self.nodes.push(OpNode { label: label.into(), kind });
        self.nodes.len() - 1
    }

    fn edge(&mut self, from: usize, to: usize) {
        self.edges.push((from, to));
    }

    /// All nodes, in insertion (dataflow) order.
    pub fn nodes(&self) -> &[OpNode] {
        &self.nodes
    }

    /// All `(from, to)` edges.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Node index by label, if present.
    pub fn find(&self, label: &str) -> Option<usize> {
        self.nodes.iter().position(|n| n.label == label)
    }

    /// Out-degree of a node.
    pub fn fan_out(&self, i: usize) -> usize {
        self.edges.iter().filter(|(f, _)| *f == i).count()
    }

    /// In-degree of a node.
    pub fn fan_in(&self, i: usize) -> usize {
        self.edges.iter().filter(|(_, t)| *t == i).count()
    }

    /// True when every edge points forward in insertion order — the
    /// builder only ever emits such edges, so this doubles as an internal
    /// consistency check in tests.
    pub fn is_forward_dag(&self) -> bool {
        self.edges.iter().all(|(f, t)| f < t)
    }
}

impl NetworkSpec {
    /// Materialize the branching op-graph view of this spec. Labels match
    /// the streaming compiler's kernel labels.
    pub fn op_graph(&self) -> OpGraph {
        let mut g = OpGraph::default();
        let mut prev = g.node("host.src", OpKind::Source);
        // Carried skip (produced by an identity-linked residual chain).
        let mut skip: Option<usize> = None;

        for (i, stage) in self.stages.iter().enumerate() {
            let next_wants_skip = matches!(
                self.stages.get(i + 1),
                Some(Stage::Residual { geom }) if geom.downsample.is_none()
            );
            match stage {
                Stage::ConvInput { .. } | Stage::Conv { .. } => {
                    let c = g.node(format!("conv{i}"), OpKind::Conv);
                    g.edge(prev, c);
                    prev = c;
                    skip = None;
                }
                Stage::Pool { .. } => {
                    let p = g.node(format!("pool{i}"), OpKind::Pool);
                    g.edge(prev, p);
                    prev = p;
                    skip = None;
                }
                Stage::FullyConnected { .. } => {
                    let c = g.node(format!("fc{i}"), OpKind::Conv);
                    g.edge(prev, c);
                    prev = c;
                    skip = None;
                }
                Stage::Residual { geom } => {
                    let (conv_in, skip_in) = if geom.downsample.is_some() {
                        let split = g.node(format!("res{i}.split_in"), OpKind::Split);
                        g.edge(prev, split);
                        let ds = g.node(format!("res{i}.ds"), OpKind::Conv);
                        g.edge(split, ds);
                        (split, ds)
                    } else if let Some(s) = skip.take() {
                        (prev, s)
                    } else {
                        let split = g.node(format!("res{i}.split_in"), OpKind::Split);
                        g.edge(prev, split);
                        (split, split)
                    };
                    let c1 = g.node(format!("res{i}.conv1"), OpKind::Conv);
                    g.edge(conv_in, c1);
                    let c2 = g.node(format!("res{i}.conv2"), OpKind::Conv);
                    g.edge(c1, c2);
                    let add = g.node(format!("res{i}.add"), OpKind::Add);
                    g.edge(c2, add);
                    g.edge(skip_in, add);
                    let thr_in = if next_wants_skip {
                        let split = g.node(format!("res{i}.split_out"), OpKind::Split);
                        g.edge(add, split);
                        skip = Some(split);
                        split
                    } else {
                        skip = None;
                        add
                    };
                    let thr = g.node(format!("res{i}.thr"), OpKind::Threshold);
                    g.edge(thr_in, thr);
                    prev = thr;
                }
                Stage::Encoder { geom } => {
                    // Attention sublayer: split the token stream into the
                    // residual skip and the Q/K/V projection fan-out.
                    let split_in = g.node(format!("enc{i}.split_in"), OpKind::Split);
                    g.edge(prev, split_in);
                    let split_q = g.node(format!("enc{i}.split_q"), OpKind::Split);
                    g.edge(split_in, split_q);
                    let split_kv = g.node(format!("enc{i}.split_kv"), OpKind::Split);
                    g.edge(split_q, split_kv);
                    let q = g.node(format!("enc{i}.q"), OpKind::Conv);
                    g.edge(split_q, q);
                    let k = g.node(format!("enc{i}.k"), OpKind::Conv);
                    g.edge(split_kv, k);
                    let v = g.node(format!("enc{i}.v"), OpKind::Conv);
                    g.edge(split_kv, v);
                    let hq = g.node(format!("enc{i}.q.heads"), OpKind::HeadSplit);
                    g.edge(q, hq);
                    let hk = g.node(format!("enc{i}.k.heads"), OpKind::HeadSplit);
                    g.edge(k, hk);
                    let hv = g.node(format!("enc{i}.v.heads"), OpKind::HeadSplit);
                    g.edge(v, hv);
                    let attn: Vec<usize> = (0..geom.heads)
                        .map(|h| {
                            let a = g.node(format!("enc{i}.attn{h}"), OpKind::Attention);
                            g.edge(hq, a);
                            g.edge(hk, a);
                            g.edge(hv, a);
                            a
                        })
                        .collect();
                    let cat = g.node(format!("enc{i}.cat"), OpKind::Concat);
                    for a in attn {
                        g.edge(a, cat);
                    }
                    let proj = g.node(format!("enc{i}.proj"), OpKind::Conv);
                    g.edge(cat, proj);
                    let add = g.node(format!("enc{i}.add"), OpKind::Add);
                    g.edge(proj, add);
                    g.edge(split_in, add);
                    let ln = g.node(format!("enc{i}.ln"), OpKind::LayerNorm);
                    g.edge(add, ln);
                    prev = ln;
                    // Optional feed-forward sublayer with its own skip.
                    if geom.has_ffn() {
                        let split_ff = g.node(format!("enc{i}.split_ff"), OpKind::Split);
                        g.edge(prev, split_ff);
                        let ff1 = g.node(format!("enc{i}.ff1"), OpKind::Conv);
                        g.edge(split_ff, ff1);
                        let ff2 = g.node(format!("enc{i}.ff2"), OpKind::Conv);
                        g.edge(ff1, ff2);
                        let add2 = g.node(format!("enc{i}.add2"), OpKind::Add);
                        g.edge(ff2, add2);
                        g.edge(split_ff, add2);
                        let ln2 = g.node(format!("enc{i}.ln2"), OpKind::LayerNorm);
                        g.edge(add2, ln2);
                        prev = ln2;
                    }
                    skip = None;
                }
            }
        }
        let sink = g.node("host.sink", OpKind::Sink);
        g.edge(prev, sink);
        g
    }
}

#[cfg(test)]
mod tests {
    use crate::models;

    #[test]
    fn cnn_graph_is_a_chain_with_residual_diamonds() {
        let g = models::test_net(8, 4, 2).op_graph();
        assert!(g.is_forward_dag());
        // Chain-head residual: split_in feeds both conv1 and (via the
        // carried-skip edge) an adder downstream.
        let split = g.find("res2.split_in").expect("chain-head split");
        assert_eq!(g.fan_out(split), 2, "skip fan-out");
        let add = g.find("res2.add").expect("rejoin adder");
        assert_eq!(g.fan_in(add), 2, "conv path + skip rejoin");
        // res3 is a downsample block: its split feeds conv1 and the 1×1
        // downsample conv, which rejoins at the adder.
        let split3 = g.find("res3.split_in").expect("downsample split");
        assert_eq!(g.fan_out(split3), 2);
        assert!(g.find("res3.ds").is_some(), "downsample conv on the skip path");
        assert_eq!(g.fan_in(g.find("res3.add").expect("res3 adder")), 2);
    }

    #[test]
    fn encoder_graph_fans_heads_out_and_rejoins() {
        let spec = models::tiny_transformer(6, 4, 2, 5, 2, 8);
        let g = spec.op_graph();
        assert!(g.is_forward_dag());
        let hq = g.find("enc1.q.heads").expect("query head split");
        assert_eq!(g.fan_out(hq), 4, "one edge per head");
        let cat = g.find("enc1.cat").expect("head concat");
        assert_eq!(g.fan_in(cat), 4, "heads rejoin at the concat");
        for h in 0..4 {
            let a = g.find(&format!("enc1.attn{h}")).expect("head node");
            assert_eq!(g.fan_in(a), 3, "q, k, v into each head");
        }
        // Residual rejoin around the attention sublayer.
        let add = g.find("enc1.add").expect("attention adder");
        assert_eq!(g.fan_in(add), 2);
        // FFN sublayer present with its own skip diamond.
        let add2 = g.find("enc1.add2").expect("ffn adder");
        assert_eq!(g.fan_in(add2), 2);
        assert!(g.find("enc1.ln2").is_some());
    }
}
