//! Deterministic random parameter initialization.
//!
//! We have no access to the paper's pre-trained ImageNet weights (they come
//! from Hubara et al.'s training runs), so networks are instantiated with
//! seeded random parameters whose *statistics* match a trained QNN closely
//! enough to exercise every datapath: ±1 weights are fair coin flips and
//! BatchNorm parameters are drawn so that the fused thresholds land inside
//! the actual accumulator distribution (otherwise every activation would
//! saturate and the comparison circuitry would be dead logic).

use qnn_quant::BnParams;
use qnn_testkit::Rng;

/// Seeded RNG used across the workspace for reproducible experiments.
pub fn rng(seed: u64) -> Rng {
    Rng::seed_from_u64(seed)
}

/// Random float weights in [−1, 1); the DFE binarizes them with `Sign` on
/// load, mirroring the CPU→FPGA parameter path of §III-B1a.
pub fn random_weights(rng: &mut Rng, count: usize) -> Vec<f32> {
    (0..count).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
}

/// Expected standard deviation of a conv accumulator with `fan_in` inputs.
///
/// * `code_levels = 2ⁿ` for hidden layers: inputs are codes `0..2ⁿ−1`,
///   weights ±1, so `Var[w·q] = E[q²] = Σ q²/2ⁿ`.
/// * For the first layer (`i8` pixels ~ U[−127,127]), `E[p²] ≈ 127²/3`.
fn accumulator_std(fan_in: usize, code_levels: Option<u32>) -> f32 {
    let e_sq = match code_levels {
        Some(levels) => {
            let l = levels as f32;
            // E[q²] for q uniform over {0..levels−1}: (l−1)(2l−1)/6.
            (l - 1.0) * (2.0 * l - 1.0) / 6.0
        }
        None => 127.0 * 127.0 / 3.0,
    };
    (fan_in as f32 * e_sq).sqrt()
}

/// Draw BatchNorm parameters for one neuron such that the fused thresholds
/// fall inside ±2σ of the accumulator distribution.
///
/// `code_levels` is `Some(2ⁿ)` when the layer's inputs are n-bit codes and
/// `None` for the first (fixed-point) layer. `act_levels` is the output
/// quantizer's level count (its range is `[0, act_levels)`).
pub fn random_bn(
    rng: &mut Rng,
    fan_in: usize,
    code_levels: Option<u32>,
    act_levels: u32,
) -> BnParams {
    let sigma = accumulator_std(fan_in.max(1), code_levels).max(1.0);
    let mu = rng.gen_range(-0.5f32..0.5) * sigma;
    let inv_sigma = 1.0 / sigma;
    // Scale γ with the quantizer's range so the normalized output sweeps
    // a comparable fraction of [0, act_levels) at every width — without
    // this, wide (e.g. 8-bit teacher) activations collapse into a few
    // codes and the network degenerates.
    let magnitude = rng.gen_range(0.8f32..2.5) * act_levels as f32 / 4.0;
    let gamma = if rng.gen_bool(0.15) { -magnitude } else { magnitude };
    // Center the affine output inside [0, act_levels).
    let beta = rng.gen_range(0.25f32..0.75) * act_levels as f32;
    BnParams::new(gamma, mu, inv_sigma, beta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnn_quant::{QuantSpec, ThresholdUnit};

    #[test]
    fn weights_are_reproducible() {
        let a = random_weights(&mut rng(7), 64);
        let b = random_weights(&mut rng(7), 64);
        assert_eq!(a, b);
        let c = random_weights(&mut rng(8), 64);
        assert_ne!(a, c);
    }

    #[test]
    fn weights_binarize_to_both_signs() {
        let w = random_weights(&mut rng(1), 1000);
        let pos = w.iter().filter(|&&x| x >= 0.0).count();
        assert!(pos > 300 && pos < 700, "sign balance off: {pos}/1000");
    }

    #[test]
    fn random_bn_produces_live_thresholds() {
        // With codes drawn from a realistic accumulator distribution, the
        // activation must emit more than one distinct code (not saturated).
        let mut r = rng(42);
        let fan_in = 3 * 3 * 64;
        let spec = QuantSpec::paper_2bit();
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..32 {
            let bn = random_bn(&mut r, fan_in, Some(4), spec.levels());
            let unit = ThresholdUnit::from_batchnorm(&bn, &spec);
            let sigma = accumulator_std(fan_in, Some(4));
            for t in -8..=8 {
                let a = (t as f32 * sigma / 4.0) as i32;
                distinct.insert(unit.activate(a));
            }
        }
        assert!(distinct.len() >= 3, "thresholds saturated: {distinct:?}");
    }

    #[test]
    fn accumulator_std_scales_with_fan_in() {
        let s1 = accumulator_std(100, Some(4));
        let s2 = accumulator_std(400, Some(4));
        assert!((s2 / s1 - 2.0).abs() < 1e-5);
    }
}
