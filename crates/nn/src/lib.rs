//! Reference (non-streaming) QNN layers, the network IR, and the paper's
//! three model architectures.
//!
//! This crate defines *what* a network computes; `qnn-kernels` +
//! `qnn-compiler` define *how* the DFE computes the same thing as a
//! streaming pipeline. The integration tests assert the two agree bit for
//! bit.
//!
//! Numeric conventions (see `qnn-quant`):
//! * weights are ±1 (bit-packed),
//! * hidden activations are unsigned n-bit codes (`n = 2` in the paper),
//!   with all affine scaling folded into the next layer's thresholds,
//! * the first layer consumes signed 8-bit pixels streamed from the CPU,
//! * skip connections carry raw pre-activation accumulators (the paper's
//!   16-bit integers; we compute in `i32` and *model* the 16-bit width,
//!   asserting the values stay in `i16` range).

pub mod graph;
pub mod init;
pub mod models;
pub mod network;
pub mod postprocess;
pub mod reference;
pub mod spec;
pub mod specgen;

pub use graph::{OpGraph, OpKind, OpNode};
pub use network::{EncoderFfn, EncoderParams, Network, StageParams};
pub use spec::{
    EncoderGeometry, NetworkSpec, PoolKind, ResidualGeometry, SpecBuilder, SpecError, Stage,
};
