//! The paper's three network architectures, plus ablation variants.
//!
//! * [`resnet18`] — Table I, for 224×224 ImageNet-class inputs.
//! * [`alexnet`] — §III-A; the FC width is 2048, which is the width that
//!   makes the total on-chip weight storage match the paper's reported
//!   34 600 Kbit BRAM budget for AlexNet (Table III) once the ≥25% BRAM
//!   shape-quantization waste of §III-B1a is applied. The classic 4096-wide
//!   FC stack would need ~58 Mbit of weights and could not have fit the
//!   reported budget, so the authors evidently used a slimmer variant.
//! * [`vgg_like`] — the CNV-style network "based on one proposed by
//!   Umuroglu et al." (§IV), three blocks of two convolutions + pooling and
//!   three FC layers. We insert a global average pool before the FC stack
//!   (the all-convolutional reduction of §III-B4) so the same topology
//!   accepts every input size the paper sweeps (32² … 224²) with
//!   near-constant resources — which is precisely the scaling behaviour
//!   Fig. 6 reports.
//! * [`resnet18_plain`] — ResNet-18 with skip connections removed, used by
//!   the skip-overhead ablation (§IV-B2).

use crate::spec::{EncoderGeometry, NetworkSpec, PoolKind, ResidualGeometry, SpecBuilder, Stage};
use qnn_tensor::{ConvGeometry, FilterShape, Shape3};

/// Number of ImageNet classes used throughout the paper.
pub const IMAGENET_CLASSES: usize = 1000;

fn conv(input: Shape3, k: usize, o: usize, stride: usize, pad: usize) -> ConvGeometry {
    ConvGeometry::new(input, FilterShape::new(k, input.c, o), stride, pad)
}

/// One ResNet basic-block pair geometry starting from `input`, producing
/// `o` channels; `stride` applies to the first conv (and the 1×1 downsample
/// when shapes change).
fn basic_block(input: Shape3, o: usize, stride: usize) -> ResidualGeometry {
    let conv1 = conv(input, 3, o, stride, 1);
    let conv2 = conv(conv1.output(), 3, o, 1, 1);
    let downsample = if stride != 1 || input.c != o {
        Some(ConvGeometry::new(input, FilterShape::new(1, input.c, o), stride, 0))
    } else {
        None
    };
    ResidualGeometry { conv1, conv2, downsample }
}

/// ResNet-18 exactly as in Table I: 7×7/64/s2 stem, 3×3 max pool /s2, four
/// stages of two basic blocks (64, 128, 256, 512), global average pool and
/// a 1000-way FC.
pub fn resnet18(classes: usize) -> NetworkSpec {
    let input = Shape3::square(224, 3);
    let stem = conv(input, 7, 64, 2, 3); // → 112×112×64
    let mut b = SpecBuilder::new("ResNet-18", input, 2)
        .conv_input(stem)
        .pool(stem.output(), 3, 2, 1, PoolKind::Max); // → 56×56×64

    let mut cur = Shape3::square(56, 64);
    for (o, first_stride) in [(64, 1), (128, 2), (256, 2), (512, 2)] {
        for blk in 0..2 {
            let stride = if blk == 0 { first_stride } else { 1 };
            let geom = basic_block(cur, o, stride);
            cur = geom.output();
            b = b.residual(geom);
        }
    }
    // 7×7 global average pool → 1×1×512, then the classifier.
    b.pool(cur, 7, 7, 0, PoolKind::AvgSum)
        .fully_connected(512, classes, false)
        .try_build()
        .expect("ResNet-18 spec")
}

/// ResNet-18 with every residual block flattened into two plain convolution
/// stages (identical compute, no skip buffers/adders) — the ablation
/// baseline for the skip-connection cost analysis.
pub fn resnet18_plain(classes: usize) -> NetworkSpec {
    let full = resnet18(classes);
    let mut b = SpecBuilder::new("ResNet-18-plain", full.input, full.act_bits);
    for stage in full.stages {
        b = match stage {
            Stage::Residual { geom } => b.conv(geom.conv1).conv(geom.conv2),
            s => b.stage(s),
        };
    }
    b.try_build().expect("plain ResNet-18 spec")
}

/// AlexNet for 224×224 inputs (see the module docs for the FC width note).
pub fn alexnet(classes: usize) -> NetworkSpec {
    alexnet_with_fc_width(classes, 2048)
}

/// AlexNet with a configurable FC width, used by the BRAM-budget ablation.
pub fn alexnet_with_fc_width(classes: usize, fc_width: usize) -> NetworkSpec {
    let input = Shape3::square(224, 3);
    let c1 = conv(input, 11, 96, 4, 2); // → 55×55×96
    let p1_in = c1.output();
    let c2 = conv(Shape3::square(27, 96), 5, 256, 1, 2); // → 27×27×256
    let c3 = conv(Shape3::square(13, 256), 3, 384, 1, 1);
    let c4 = conv(Shape3::square(13, 384), 3, 384, 1, 1);
    let c5 = conv(Shape3::square(13, 384), 3, 256, 1, 1);
    SpecBuilder::new("AlexNet", input, 2)
        .conv_input(c1)
        .pool(p1_in, 3, 2, 0, PoolKind::Max) // → 27×27×96
        .conv(c2)
        .pool(c2.output(), 3, 2, 0, PoolKind::Max) // → 13×13×256
        .conv(c3)
        .conv(c4)
        .conv(c5)
        .pool(c5.output(), 3, 2, 0, PoolKind::Max) // → 6×6×256
        .fully_connected(6 * 6 * 256, fc_width, true)
        .fully_connected(fc_width, fc_width, true)
        .fully_connected(fc_width, classes, false)
        .try_build()
        .expect("AlexNet spec")
}

/// The VGG-like CNV network of the evaluation (§IV), parameterized by input
/// side (32 for CIFAR-10, 96/144 for STL-10, 224 for the scaling sweep) and
/// by activation bits (2 for ours, 1 for the FINN comparison of Table IV).
pub fn vgg_like(side: usize, classes: usize, act_bits: u32) -> NetworkSpec {
    assert!(side >= 16 && side % 8 == 0, "vgg_like needs a side divisible by 8, got {side}");
    let input = Shape3::square(side, 3);
    let mut b = SpecBuilder::new(format!("VGG-like-{side}"), input, act_bits);
    let mut cur = input;
    for (i, o) in [64usize, 128, 256].into_iter().enumerate() {
        let g1 = conv(cur, 3, o, 1, 1);
        b = if i == 0 { b.conv_input(g1) } else { b.conv(g1) };
        let g2 = conv(g1.output(), 3, o, 1, 1);
        let pin = g2.output();
        b = b.conv(g2).pool(pin, 2, 2, 0, PoolKind::Max);
        cur = Shape3::new(pin.h / 2, pin.w / 2, o);
    }
    // Global average pool keeps the FC stack input-size independent.
    b.pool(cur, cur.h, cur.h, 0, PoolKind::AvgSum)
        .fully_connected(256, 512, true)
        .fully_connected(512, 512, true)
        .fully_connected(512, classes, false)
        .try_build()
        .expect("VGG-like spec")
}

/// The exact CNV topology of Umuroglu et al. (FINN), fixed at 32×32:
/// three blocks of two *unpadded* 3×3 convolutions with 2×2 max pooling
/// after the first two blocks (32→30→28→14→12→10→5→3→1), then the
/// 512-wide FC pair and the classifier. Unlike [`vgg_like`] (which adds a
/// global pool so one topology spans every input size of the Fig. 5/6
/// sweeps), this is the faithful Table IV network.
pub fn cnv_finn(classes: usize, act_bits: u32) -> NetworkSpec {
    let input = Shape3::square(32, 3);
    let c1 = conv(input, 3, 64, 1, 0); // → 30
    let c2 = conv(c1.output(), 3, 64, 1, 0); // → 28
    let p1 = Shape3::square(14, 64);
    let c3 = conv(p1, 3, 128, 1, 0); // → 12
    let c4 = conv(c3.output(), 3, 128, 1, 0); // → 10
    let p2 = Shape3::square(5, 128);
    let c5 = conv(p2, 3, 256, 1, 0); // → 3
    let c6 = conv(c5.output(), 3, 256, 1, 0); // → 1
    SpecBuilder::new("CNV", input, act_bits)
        .conv_input(c1)
        .conv(c2)
        .pool(c2.output(), 2, 2, 0, PoolKind::Max)
        .conv(c3)
        .conv(c4)
        .pool(c4.output(), 2, 2, 0, PoolKind::Max)
        .conv(c5)
        .conv(c6)
        .fully_connected(256, 512, true)
        .fully_connected(512, 512, true)
        .fully_connected(512, classes, false)
        .try_build()
        .expect("CNV spec")
}

/// A depth-doubled VGG-like variant (four convolutions per block instead
/// of two) used by the depth-penalty ablation: on a streaming architecture
/// extra layers mostly overlap, while a layer-serial device pays for each.
pub fn vgg_like_deep(side: usize, classes: usize, act_bits: u32) -> NetworkSpec {
    assert!(side >= 16 && side % 8 == 0, "vgg_like_deep needs a side divisible by 8");
    let input = Shape3::square(side, 3);
    let mut b = SpecBuilder::new(format!("VGG-like-deep-{side}"), input, act_bits);
    let mut cur = input;
    for (i, o) in [64usize, 128, 256].into_iter().enumerate() {
        for j in 0..4 {
            let g = conv(cur, 3, o, 1, 1);
            b = if i == 0 && j == 0 { b.conv_input(g) } else { b.conv(g) };
            cur = g.output();
        }
        b = b.pool(cur, 2, 2, 0, PoolKind::Max);
        cur = Shape3::new(cur.h / 2, cur.w / 2, o);
    }
    b.pool(cur, cur.h, cur.h, 0, PoolKind::AvgSum)
        .fully_connected(256, 512, true)
        .fully_connected(512, 512, true)
        .fully_connected(512, classes, false)
        .try_build()
        .expect("deep VGG-like spec")
}

/// A shallow probe network (two strided convolutions + classifier) for the
/// accuracy-substitution experiment: deep *untrained* networks contract
/// inter-image differences until every input maps to one class — an
/// artifact of random initialization, not of quantization. The probe stays
/// in the signal-preserving regime at every activation width, so teacher
/// agreement isolates exactly the quantization cost.
pub fn probe32(classes: usize, act_bits: u32) -> NetworkSpec {
    let g1 = ConvGeometry::new(Shape3::square(32, 3), FilterShape::new(3, 3, 16), 2, 1);
    let g2 = ConvGeometry::new(g1.output(), FilterShape::new(3, 16, 16), 2, 1);
    let n = g2.output().len();
    SpecBuilder::new("probe-32", Shape3::square(32, 3), act_bits)
        .conv_input(g1)
        .conv(g2)
        .fully_connected(n, classes, false)
        .try_build()
        .expect("probe spec")
}

/// A small fully featured network (input conv, hidden conv, residual block,
/// both pool kinds, FC stack) for fast tests: every datapath of the big
/// models on an 8× smaller canvas.
pub fn test_net(side: usize, classes: usize, act_bits: u32) -> NetworkSpec {
    assert!(side >= 8 && side % 4 == 0, "test_net needs side divisible by 4");
    let input = Shape3::square(side, 3);
    let stem = conv(input, 3, 8, 1, 1);
    let after_pool = Shape3::new(side / 2, side / 2, 8);
    let block1 = basic_block(after_pool, 8, 1);
    let block2 = basic_block(after_pool, 16, 2);
    let cur = block2.output();
    SpecBuilder::new(format!("test-net-{side}"), input, act_bits)
        .conv_input(stem)
        .pool(stem.output(), 2, 2, 0, PoolKind::Max)
        .residual(block1)
        .residual(block2)
        .pool(cur, cur.h, cur.h, 0, PoolKind::AvgSum)
        .fully_connected(16, 32, true)
        .fully_connected(32, classes, false)
        .try_build()
        .expect("test-net spec")
}

/// A small streaming transformer for fast tests and mixed-traffic serving:
/// a 1×1 "embedding" input convolution lifting 3-channel tokens to
/// `heads · head_dim`, two encoder blocks (the second carrying the
/// feed-forward sublayer when `ff_hidden > 0`), and a logits classifier
/// over the flattened sequence. Tokens stream as a `seq_len × 1 × c` map,
/// so the host interface is unchanged from the CNN models.
pub fn tiny_transformer(
    seq_len: usize,
    heads: usize,
    head_dim: usize,
    classes: usize,
    act_bits: u32,
    ff_hidden: usize,
) -> NetworkSpec {
    let d_model = heads * head_dim;
    let input = Shape3::new(seq_len, 1, 3);
    let embed = ConvGeometry::new(input, FilterShape::new(1, 3, d_model), 1, 0);
    let geom = EncoderGeometry { seq_len, d_model, heads, head_dim, ff_hidden: 0 };
    SpecBuilder::new(format!("tiny-txf-{seq_len}x{d_model}"), input, act_bits)
        .conv_input(embed)
        .encoder(EncoderGeometry { ff_hidden, ..geom })
        .encoder(geom)
        .fully_connected(seq_len * d_model, classes, false)
        .try_build()
        .expect("tiny transformer spec")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table I verification, stage by stage.
    #[test]
    fn resnet18_matches_table1() {
        let spec = resnet18(IMAGENET_CLASSES);
        assert_eq!(spec.input, Shape3::square(224, 3));
        // conv1 output 112×112.
        assert_eq!(spec.stages[0].output_shape(), Shape3::square(112, 64));
        // max pool output 56×56.
        assert_eq!(spec.stages[1].output_shape(), Shape3::square(56, 64));
        // conv2_x blocks at 56×56×64.
        assert_eq!(spec.stages[2].output_shape(), Shape3::square(56, 64));
        assert_eq!(spec.stages[3].output_shape(), Shape3::square(56, 64));
        // conv3_x at 28×28×128, conv4_x at 14×14×256, conv5_x at 7×7×512.
        assert_eq!(spec.stages[5].output_shape(), Shape3::square(28, 128));
        assert_eq!(spec.stages[7].output_shape(), Shape3::square(14, 256));
        assert_eq!(spec.stages[9].output_shape(), Shape3::square(7, 512));
        // Global pool + 1000-way classifier.
        assert_eq!(spec.stages[10].output_shape(), Shape3::new(1, 1, 512));
        assert_eq!(spec.classes(), 1000);
        // Eight residual blocks in total.
        assert_eq!(spec.num_skip_connections(), 8);
    }

    #[test]
    fn resnet18_downsample_blocks_are_marked() {
        let spec = resnet18(10);
        let mut downsamples = 0;
        for stage in &spec.stages {
            if let Stage::Residual { geom } = stage {
                if geom.downsample.is_some() {
                    downsamples += 1;
                }
            }
        }
        // conv3_1, conv4_1, conv5_1 change shape (Table I note).
        assert_eq!(downsamples, 3);
    }

    #[test]
    fn resnet18_weight_budget_is_about_11_mbit() {
        let bits = resnet18(IMAGENET_CLASSES).total_weight_bits();
        let mbit = bits as f64 / 1.0e6;
        assert!((10.0..13.0).contains(&mbit), "ResNet-18 weights = {mbit:.1} Mbit");
    }

    #[test]
    fn alexnet_weight_budget_matches_reported_bram_band() {
        // With 25% BRAM waste the weight storage must land near the paper's
        // 34 600 Kbit (Table III); see the module docs.
        let bits = alexnet(IMAGENET_CLASSES).total_weight_bits();
        let with_waste_kbit = bits as f64 * 1.25 / 1000.0;
        assert!(
            (30_000.0..40_000.0).contains(&with_waste_kbit),
            "AlexNet weights with waste = {with_waste_kbit:.0} Kbit"
        );
    }

    #[test]
    fn alexnet_shapes_chain() {
        let spec = alexnet(IMAGENET_CLASSES);
        assert_eq!(spec.stages[0].output_shape(), Shape3::square(55, 96));
        assert_eq!(spec.stages[1].output_shape(), Shape3::square(27, 96));
        assert_eq!(spec.stages[7].output_shape(), Shape3::square(6, 256));
        assert_eq!(spec.classes(), 1000);
        assert_eq!(spec.num_skip_connections(), 0);
    }

    #[test]
    fn plain_resnet_has_same_macs_but_no_skips() {
        let full = resnet18(10);
        let plain = resnet18_plain(10);
        assert_eq!(plain.num_skip_connections(), 0);
        // Plain variant drops only the downsample 1×1 convs and adders; the
        // main convolution work is identical.
        let full_main: u64 = full.total_macs();
        let plain_main: u64 = plain.total_macs();
        assert!(plain_main <= full_main);
        assert!(full_main - plain_main < full_main / 20, "downsample convs are <5% of MACs");
    }

    #[test]
    fn vgg_like_is_input_size_stable() {
        for side in [32, 64, 96, 144, 224] {
            let spec = vgg_like(side, 10, 2);
            assert_eq!(spec.classes(), 10);
            // Weight storage must not depend on the input side (Fig. 6's
            // near-flat BRAM curve).
            assert_eq!(spec.total_weight_bits(), vgg_like(32, 10, 2).total_weight_bits());
        }
    }

    #[test]
    fn vgg_like_binary_variant_for_finn() {
        let spec = vgg_like(32, 10, 1);
        assert_eq!(spec.act_bits, 1);
        assert_eq!(spec.activation_spec().levels(), 2);
    }

    #[test]
    fn probe32_shapes() {
        let spec = probe32(10, 2);
        assert_eq!(spec.stages[0].output_shape(), Shape3::square(16, 16));
        assert_eq!(spec.stages[1].output_shape(), Shape3::square(8, 16));
        assert_eq!(spec.classes(), 10);
    }

    #[test]
    fn cnv_finn_matches_published_shapes() {
        let spec = cnv_finn(10, 1);
        // 32→30→28→14→12→10→5→3→1 (Umuroglu et al., Table 1 of FINN).
        assert_eq!(spec.stages[0].output_shape(), Shape3::square(30, 64));
        assert_eq!(spec.stages[1].output_shape(), Shape3::square(28, 64));
        assert_eq!(spec.stages[2].output_shape(), Shape3::square(14, 64));
        assert_eq!(spec.stages[4].output_shape(), Shape3::square(10, 128));
        assert_eq!(spec.stages[5].output_shape(), Shape3::square(5, 128));
        assert_eq!(spec.stages[7].output_shape(), Shape3::square(1, 256));
        assert_eq!(spec.classes(), 10);
        // FINN's CNV holds ~1.6 M binary weights.
        let mbit = spec.total_weight_bits() as f64 / 1e6;
        assert!((1.2..2.2).contains(&mbit), "CNV weights {mbit} Mbit");
    }

    #[test]
    fn deep_variant_doubles_conv_count() {
        let base = vgg_like(32, 10, 2);
        let deep = vgg_like_deep(32, 10, 2);
        let convs = |s: &NetworkSpec| {
            s.stages
                .iter()
                .filter(|st| matches!(st, Stage::Conv { .. } | Stage::ConvInput { .. }))
                .count()
        };
        assert_eq!(convs(&deep), 2 * convs(&base));
        assert_eq!(deep.output_shape(), base.output_shape());
    }

    #[test]
    fn test_net_validates_and_is_small() {
        let spec = test_net(8, 4, 2);
        assert_eq!(spec.classes(), 4);
        assert!(spec.total_weight_bits() < 50_000);
        assert_eq!(spec.num_skip_connections(), 2);
    }
}
