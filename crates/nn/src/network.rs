//! A network = validated spec + quantized parameters.

use crate::init;
use crate::spec::{NetworkSpec, Stage};
use qnn_quant::{QuantSpec, ThresholdUnit};
use qnn_tensor::{BinaryFilters, ConvGeometry};
use qnn_testkit::Rng;

/// Parameters of one pipeline stage, mirroring [`Stage`].
#[derive(Clone, Debug)]
pub enum StageParams {
    /// Convolution (first-layer or hidden): binary filter bank + per-output-
    /// channel fused thresholds.
    Conv {
        /// Binarized weight cache contents.
        filters: BinaryFilters,
        /// One fused BatchNorm+activation unit per output feature map.
        thresholds: Vec<ThresholdUnit>,
    },
    /// Pooling has no parameters (paper §III-B2).
    Pool,
    /// Fully connected layer; `thresholds` is empty for the logits layer.
    FullyConnected {
        /// Binary weight rows (one per output neuron).
        filters: BinaryFilters,
        /// Fused thresholds (empty ⇒ raw logits output).
        thresholds: Vec<ThresholdUnit>,
    },
    /// Residual block: two convolutions, thresholds after conv1 (mid) and
    /// after the skip adder (out), optional downsample filters.
    Residual {
        /// conv1 weights.
        filters1: BinaryFilters,
        /// Fused BN+act applied to conv1 output (before conv2).
        thr_mid: Vec<ThresholdUnit>,
        /// conv2 weights.
        filters2: BinaryFilters,
        /// Fused BN+act applied after the skip adder.
        thr_out: Vec<ThresholdUnit>,
        /// 1×1 downsample weights for shape-changing blocks.
        downsample: Option<BinaryFilters>,
    },
    /// Encoder block parameters (boxed: the variant carries four filter
    /// banks plus LayerNorm gains and an optional FFN).
    Encoder(Box<EncoderParams>),
}

/// Parameters of one encoder block, mirroring [`crate::EncoderGeometry`].
#[derive(Clone, Debug)]
pub struct EncoderParams {
    /// Query projection weights (`d_model → d_model`, 1×1).
    pub wq: BinaryFilters,
    /// Fused BN+act quantizing the query accumulators to codes.
    pub thr_q: Vec<ThresholdUnit>,
    /// Key projection weights.
    pub wk: BinaryFilters,
    /// Fused BN+act quantizing the key accumulators to codes.
    pub thr_k: Vec<ThresholdUnit>,
    /// Value projection weights.
    pub wv: BinaryFilters,
    /// Fused BN+act quantizing the value accumulators to codes.
    pub thr_v: Vec<ThresholdUnit>,
    /// Output projection weights (raw accumulators into the skip adder).
    pub wo: BinaryFilters,
    /// Per-channel integer LayerNorm gains (positive).
    pub ln_gain: Vec<i32>,
    /// Feed-forward sublayer, when `ff_hidden > 0`.
    pub ffn: Option<EncoderFfn>,
}

/// Feed-forward sublayer parameters of an encoder block.
#[derive(Clone, Debug)]
pub struct EncoderFfn {
    /// First FFN projection (`d_model → ff_hidden`).
    pub w1: BinaryFilters,
    /// Fused BN+act after the first projection.
    pub thr1: Vec<ThresholdUnit>,
    /// Second FFN projection (`ff_hidden → d_model`, raw accumulators).
    pub w2: BinaryFilters,
    /// LayerNorm gains of the second sublayer.
    pub ln2_gain: Vec<i32>,
}

/// A complete, runnable network.
#[derive(Clone, Debug)]
pub struct Network {
    /// The validated architecture.
    pub spec: NetworkSpec,
    /// Per-stage parameters, index-aligned with `spec.stages`.
    pub params: Vec<StageParams>,
}

fn conv_filters(rng: &mut Rng, geom: &ConvGeometry) -> BinaryFilters {
    let w = init::random_weights(rng, geom.filter.total_weights());
    BinaryFilters::from_float_rows(&w, geom.filter.weights_per_filter())
}

fn conv_thresholds(
    rng: &mut Rng,
    geom: &ConvGeometry,
    code_levels: Option<u32>,
    act: &QuantSpec,
) -> Vec<ThresholdUnit> {
    (0..geom.filter.o)
        .map(|_| {
            let bn =
                init::random_bn(rng, geom.filter.weights_per_filter(), code_levels, act.levels());
            ThresholdUnit::from_batchnorm(&bn, act)
        })
        .collect()
}

impl Network {
    /// Instantiate a network with seeded random parameters (see
    /// `init` for why the distributions are shaped the way they are).
    pub fn random(spec: NetworkSpec, seed: u64) -> Self {
        let mut rng = init::rng(seed);
        let act = spec.activation_spec();
        let code_levels = Some(act.levels());
        let params = spec
            .stages
            .iter()
            .map(|stage| match *stage {
                Stage::ConvInput { geom } => StageParams::Conv {
                    filters: conv_filters(&mut rng, &geom),
                    thresholds: conv_thresholds(&mut rng, &geom, None, &act),
                },
                Stage::Conv { geom } => StageParams::Conv {
                    filters: conv_filters(&mut rng, &geom),
                    thresholds: conv_thresholds(&mut rng, &geom, code_levels, &act),
                },
                Stage::Pool { .. } => StageParams::Pool,
                Stage::FullyConnected { in_features, out_features, bn_act } => {
                    let w = init::random_weights(&mut rng, in_features * out_features);
                    let filters = BinaryFilters::from_float_rows(&w, in_features);
                    let thresholds = if bn_act {
                        (0..out_features)
                            .map(|_| {
                                let bn = init::random_bn(
                                    &mut rng,
                                    in_features,
                                    code_levels,
                                    act.levels(),
                                );
                                ThresholdUnit::from_batchnorm(&bn, &act)
                            })
                            .collect()
                    } else {
                        Vec::new()
                    };
                    StageParams::FullyConnected { filters, thresholds }
                }
                Stage::Residual { geom } => StageParams::Residual {
                    filters1: conv_filters(&mut rng, &geom.conv1),
                    thr_mid: conv_thresholds(&mut rng, &geom.conv1, code_levels, &act),
                    filters2: conv_filters(&mut rng, &geom.conv2),
                    thr_out: conv_thresholds(&mut rng, &geom.conv2, code_levels, &act),
                    downsample: geom.downsample.as_ref().map(|d| conv_filters(&mut rng, d)),
                },
                Stage::Encoder { geom } => {
                    let projs = geom.projection_geometries();
                    let gains = |rng: &mut Rng, n: usize| -> Vec<i32> {
                        (0..n).map(|_| rng.gen_range(1i32..=4)).collect()
                    };
                    let wq = conv_filters(&mut rng, &projs[0]);
                    let thr_q = conv_thresholds(&mut rng, &projs[0], code_levels, &act);
                    let wk = conv_filters(&mut rng, &projs[1]);
                    let thr_k = conv_thresholds(&mut rng, &projs[1], code_levels, &act);
                    let wv = conv_filters(&mut rng, &projs[2]);
                    let thr_v = conv_thresholds(&mut rng, &projs[2], code_levels, &act);
                    let wo = conv_filters(&mut rng, &projs[3]);
                    let ln_gain = gains(&mut rng, geom.d_model);
                    let ffn = geom.has_ffn().then(|| EncoderFfn {
                        w1: conv_filters(&mut rng, &projs[4]),
                        thr1: conv_thresholds(&mut rng, &projs[4], code_levels, &act),
                        w2: conv_filters(&mut rng, &projs[5]),
                        ln2_gain: (0..geom.d_model).map(|_| rng.gen_range(1i32..=4)).collect(),
                    });
                    StageParams::Encoder(Box::new(EncoderParams {
                        wq,
                        thr_q,
                        wk,
                        thr_k,
                        wv,
                        thr_v,
                        wo,
                        ln_gain,
                        ffn,
                    }))
                }
            })
            .collect();
        Self { spec, params }
    }
}

impl NetworkSpec {
    /// The activation quantizer implied by `act_bits`: codes over
    /// `[0, 2ⁿ)` so that code and value coincide (`d = 1`).
    pub fn activation_spec(&self) -> QuantSpec {
        QuantSpec::new(self.act_bits, 0.0, (1u32 << self.act_bits) as f32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::PoolKind;
    use qnn_tensor::{FilterShape, Shape3};

    fn spec() -> NetworkSpec {
        let g1 = ConvGeometry::new(Shape3::square(8, 3), FilterShape::new(3, 3, 4), 1, 1);
        NetworkSpec::new(
            "t",
            Shape3::square(8, 3),
            2,
            vec![
                Stage::ConvInput { geom: g1 },
                Stage::Pool {
                    input: Shape3::square(8, 4),
                    k: 2,
                    stride: 2,
                    pad: 0,
                    kind: PoolKind::Max,
                },
                Stage::FullyConnected { in_features: 64, out_features: 10, bn_act: false },
            ],
        )
    }

    #[test]
    fn random_network_is_deterministic_per_seed() {
        let a = Network::random(spec(), 5);
        let b = Network::random(spec(), 5);
        match (&a.params[0], &b.params[0]) {
            (
                StageParams::Conv { filters: fa, thresholds: ta },
                StageParams::Conv { filters: fb, thresholds: tb },
            ) => {
                assert_eq!(fa.filter(0), fb.filter(0));
                assert_eq!(ta, tb);
            }
            _ => panic!("expected conv params"),
        }
    }

    #[test]
    fn params_align_with_stages() {
        let n = Network::random(spec(), 1);
        assert_eq!(n.params.len(), n.spec.stages.len());
        assert!(matches!(n.params[1], StageParams::Pool));
        match &n.params[2] {
            StageParams::FullyConnected { filters, thresholds } => {
                assert_eq!(filters.num_filters(), 10);
                assert_eq!(filters.bits_per_filter(), 64);
                assert!(thresholds.is_empty(), "logits layer has no activation");
            }
            _ => panic!("expected fc params"),
        }
    }

    #[test]
    fn activation_spec_levels_match_bits() {
        assert_eq!(spec().activation_spec().levels(), 4);
    }
}
