//! Host-side post-processing: softmax and top-k.
//!
//! The paper's pipeline ends with "a 1000-way softmax, which produces a
//! distribution over the 1000 class labels" (§III-A), computed on the CPU
//! after the logits stream back over PCIe — monotone, so classification
//! itself only needs the integer logits, but downstream consumers (top-5
//! metrics, calibration) want the distribution.

/// Numerically stable softmax over integer logits.
///
/// Logits are scaled by `temperature` before exponentiation; the quantized
/// networks produce integer scores whose natural scale depends on fan-in,
/// so callers typically pass the reciprocal of the last layer's input
/// count.
pub fn softmax(logits: &[i32], temperature: f64) -> Vec<f64> {
    assert!(!logits.is_empty(), "softmax of an empty logit vector");
    assert!(temperature > 0.0, "temperature must be positive");
    let max = *logits.iter().max().expect("non-empty") as f64;
    let exps: Vec<f64> =
        logits.iter().map(|&v| ((v as f64 - max) * temperature).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.iter().map(|e| e / sum).collect()
}

/// Indices of the `k` largest logits, best first; ties break toward the
/// lower index (the same rule as `ForwardResult::argmax`).
pub fn top_k(logits: &[i32], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..logits.len()).collect();
    idx.sort_by(|&a, &b| logits[b].cmp(&logits[a]).then(a.cmp(&b)));
    idx.truncate(k);
    idx
}

/// Does `label` appear among the top-k logits? (Top-5 is the ImageNet
/// metric the paper's accuracy numbers accompany.)
pub fn in_top_k(logits: &[i32], label: usize, k: usize) -> bool {
    top_k(logits, k).contains(&label)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_is_a_distribution() {
        let p = softmax(&[3, 1, -2, 7], 0.5);
        assert_eq!(p.len(), 4);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p.iter().all(|&x| x > 0.0));
        // Largest logit → largest probability.
        assert!(p[3] > p[0] && p[0] > p[1] && p[1] > p[2]);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = softmax(&[1, 2, 3], 1.0);
        let b = softmax(&[101, 102, 103], 1.0);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn softmax_handles_extreme_logits_without_overflow() {
        let p = softmax(&[i32::MAX, i32::MIN, 0], 1.0);
        assert!((p[0] - 1.0).abs() < 1e-12);
        assert!(p.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn top_k_orders_and_breaks_ties_low_index_first() {
        let logits = [5, 9, 9, 1, 7];
        assert_eq!(top_k(&logits, 3), vec![1, 2, 4]);
        assert_eq!(top_k(&logits, 10), vec![1, 2, 4, 0, 3]);
    }

    #[test]
    fn in_top_k_matches_membership() {
        let logits = [10, 2, 8, 4];
        assert!(in_top_k(&logits, 0, 1));
        assert!(!in_top_k(&logits, 2, 1));
        assert!(in_top_k(&logits, 2, 2));
        assert!(!in_top_k(&logits, 1, 3));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_softmax_panics() {
        let _ = softmax(&[], 1.0);
    }
}
