//! Reference interpreter: executes a [`Network`] layer by layer on whole
//! tensors.
//!
//! This is the "golden model" the streaming DFE pipeline is tested against.
//! It favors clarity over speed but still uses the bit-plane dot products so
//! full-size networks run in reasonable time.
//!
//! **Canonical window order**: a convolution window is read `ky` (outer),
//! then `kx`, then channel (inner) — the same depth-first order the stream
//! arrives in. Weight cache rows are laid out identically, so the streaming
//! kernels and this interpreter index the same bit for the same weight.

use crate::network::{EncoderParams, Network, StageParams};
use crate::spec::{EncoderGeometry, PoolKind, Stage};
use qnn_quant::{dot_i8, head_attention, layernorm_codes, ActPlanes, ThresholdUnit};
use qnn_tensor::{BinaryFilters, ConvGeometry, Shape3, Tensor3};

/// Per-image forward statistics used by tests and the hardware models.
#[derive(Clone, Copy, Debug, Default)]
pub struct ForwardStats {
    /// Largest |skip value| seen on any skip connection; the paper carries
    /// skips as 16-bit integers, so tests assert this fits in `i16`.
    pub max_abs_skip: i64,
    /// Largest |accumulator| seen at any convolution output.
    pub max_abs_acc: i64,
}

impl ForwardStats {
    fn observe_acc(&mut self, t: &Tensor3<i32>) {
        for &v in t.as_slice() {
            self.max_abs_acc = self.max_abs_acc.max(i64::from(v).abs());
        }
    }
    fn observe_skip(&mut self, t: &Tensor3<i32>) {
        for &v in t.as_slice() {
            self.max_abs_skip = self.max_abs_skip.max(i64::from(v).abs());
        }
    }
}

/// Convolution over activation codes, returning raw accumulators.
/// Padding inserts code 0 — the lowest representable level, the analogue of
/// the paper's −1 padding for BNNs (§III-B1).
pub fn conv_acc_codes(
    geom: &ConvGeometry,
    input: &Tensor3<u8>,
    filters: &BinaryFilters,
    act_bits: u32,
) -> Tensor3<i32> {
    assert_eq!(input.shape(), geom.input, "conv input shape mismatch");
    assert_eq!(filters.num_filters(), geom.filter.o);
    assert_eq!(filters.bits_per_filter(), geom.filter.weights_per_filter());
    let padded = input.pad(geom.pad, 0u8);
    let out_shape = geom.output();
    let k = geom.filter.k;
    let i = geom.filter.i;
    let mut out = Tensor3::<i32>::zeros(out_shape);
    let mut window = vec![0u8; k * k * i];
    let mut planes = ActPlanes::new(act_bits, window.len());
    for oy in 0..out_shape.h {
        for ox in 0..out_shape.w {
            gather_window(&padded, oy * geom.stride, ox * geom.stride, k, &mut window);
            planes.pack(&window);
            for o in 0..geom.filter.o {
                out.set(oy, ox, o, planes.dot(filters.filter(o)));
            }
        }
    }
    out
}

/// First-layer convolution over signed 8-bit pixels. Padding inserts 0.
pub fn conv_acc_i8(
    geom: &ConvGeometry,
    input: &Tensor3<i8>,
    filters: &BinaryFilters,
) -> Tensor3<i32> {
    assert_eq!(input.shape(), geom.input, "conv input shape mismatch");
    let padded = input.pad(geom.pad, 0i8);
    let out_shape = geom.output();
    let k = geom.filter.k;
    let i = geom.filter.i;
    let mut out = Tensor3::<i32>::zeros(out_shape);
    let mut window = vec![0i8; k * k * i];
    for oy in 0..out_shape.h {
        for ox in 0..out_shape.w {
            gather_window(&padded, oy * geom.stride, ox * geom.stride, k, &mut window);
            for o in 0..geom.filter.o {
                out.set(oy, ox, o, dot_i8(filters.filter(o), &window));
            }
        }
    }
    out
}

/// Gather a `k × k × C` window starting at `(y0, x0)` of the padded input
/// into `buf`, in the canonical (ky, kx, c) order.
fn gather_window<T: Copy + Default>(padded: &Tensor3<T>, y0: usize, x0: usize, k: usize, buf: &mut [T]) {
    let c = padded.shape().c;
    debug_assert_eq!(buf.len(), k * k * c);
    let mut at = 0;
    for ky in 0..k {
        for kx in 0..k {
            buf[at..at + c].copy_from_slice(padded.pixel(y0 + ky, x0 + kx));
            at += c;
        }
    }
}

/// Apply per-channel fused thresholds to an accumulator tensor.
pub fn apply_thresholds(acc: &Tensor3<i32>, thresholds: &[ThresholdUnit]) -> Tensor3<u8> {
    assert_eq!(acc.shape().c, thresholds.len(), "one threshold unit per output channel");
    let shape = acc.shape();
    Tensor3::from_fn(shape, |y, x, c| thresholds[c].activate(acc.get(y, x, c)))
}

/// Max pooling over codes (monotone in the code order, so it commutes with
/// the threshold activation exactly as in the float network).
pub fn max_pool(input: &Tensor3<u8>, k: usize, stride: usize, pad: usize) -> Tensor3<u8> {
    let padded = input.pad(pad, 0u8);
    let p = padded.shape();
    let out_shape =
        Shape3::new((p.h - k) / stride + 1, (p.w - k) / stride + 1, p.c);
    Tensor3::from_fn(out_shape, |oy, ox, c| {
        let mut m = 0u8;
        for ky in 0..k {
            for kx in 0..k {
                m = m.max(padded.get(oy * stride + ky, ox * stride + kx, c));
            }
        }
        m
    })
}

/// The right shift used by [`avg_sum_pool`]: ⌊log₂(k²)⌋, keeping the output
/// in code range while staying integral (the residual divisor is folded into
/// downstream thresholds, like every other affine factor).
pub fn avg_pool_shift(k: usize) -> u32 {
    ((k * k) as u32).ilog2()
}

/// Average pooling as a window sum followed by a power-of-two shift.
pub fn avg_sum_pool(input: &Tensor3<u8>, k: usize, stride: usize) -> Tensor3<u8> {
    let p = input.shape();
    assert!(p.h >= k && p.w >= k, "avg pool window larger than input");
    let shift = avg_pool_shift(k);
    let out_shape = Shape3::new((p.h - k) / stride + 1, (p.w - k) / stride + 1, p.c);
    Tensor3::from_fn(out_shape, |oy, ox, c| {
        let mut sum = 0u32;
        for ky in 0..k {
            for kx in 0..k {
                sum += u32::from(input.get(oy * stride + ky, ox * stride + kx, c));
            }
        }
        let v = sum >> shift;
        debug_assert!(v <= u32::from(u8::MAX), "avg pool overflowed code width");
        v as u8
    })
}

/// Fully connected layer over the flattened (stream-order) codes.
///
/// Inputs are treated as full 8-bit codes: an average-sum pool can legally
/// emit values above the activation's 2ⁿ−1 ceiling, and unused planes cost
/// nothing (their popcounts are zero).
pub fn fully_connected(input: &[u8], filters: &BinaryFilters, _act_bits: u32) -> Vec<i32> {
    assert_eq!(input.len(), filters.bits_per_filter(), "fc input width mismatch");
    let planes = ActPlanes::from_codes(8, input);
    filters.iter().map(|row| planes.dot(row)).collect()
}

/// One encoder block over a `seq_len × 1 × d_model` code tensor.
///
/// Every arithmetic step routes through the shared integer primitives in
/// `qnn_quant::attention` (plane-pair QKᵀ, threshold-softmax ladder,
/// floor-average AV, integer LayerNorm) and the same `conv_acc_codes`
/// datapath as every CNN layer, so the streaming kernels compute the
/// identical integers by construction.
pub fn encoder_forward(
    geom: &EncoderGeometry,
    p: &EncoderParams,
    input: &Tensor3<u8>,
    act_bits: u32,
    stats: &mut ForwardStats,
) -> Tensor3<u8> {
    assert_eq!(input.shape(), geom.shape(), "encoder input shape mismatch");
    let projs = geom.projection_geometries();
    let (seq, hd) = (geom.seq_len, geom.head_dim);

    // Q/K/V projections: per-token 1×1 convolutions over codes.
    let q_acc = conv_acc_codes(&projs[0], input, &p.wq, act_bits);
    stats.observe_acc(&q_acc);
    let q = apply_thresholds(&q_acc, &p.thr_q);
    let k_acc = conv_acc_codes(&projs[1], input, &p.wk, act_bits);
    stats.observe_acc(&k_acc);
    let k = apply_thresholds(&k_acc, &p.thr_k);
    let v_acc = conv_acc_codes(&projs[2], input, &p.wv, act_bits);
    stats.observe_acc(&v_acc);
    let v = apply_thresholds(&v_acc, &p.thr_v);

    // Per-head attention over channel slices, rejoined by concatenation.
    let mut cat = Tensor3::<u8>::zeros(geom.shape());
    for h in 0..geom.heads {
        let slice = |t: &Tensor3<u8>| -> Vec<u8> {
            let mut out = Vec::with_capacity(seq * hd);
            for tok in 0..seq {
                out.extend_from_slice(&t.pixel(tok, 0)[h * hd..(h + 1) * hd]);
            }
            out
        };
        let head = head_attention(act_bits, hd, &slice(&q), &slice(&k), &slice(&v));
        for tok in 0..seq {
            for dch in 0..hd {
                cat.set(tok, 0, h * hd + dch, head[tok * hd + dch]);
            }
        }
    }

    // Output projection (raw accumulators), residual skip, LayerNorm.
    let mut z = conv_acc_codes(&projs[3], &cat, &p.wo, act_bits);
    stats.observe_acc(&z);
    for (zv, xv) in z.as_mut_slice().iter_mut().zip(input.as_slice()) {
        *zv += i32::from(*xv);
    }
    stats.observe_skip(&z);
    let mut y = Tensor3::<u8>::zeros(geom.shape());
    for tok in 0..seq {
        let row = layernorm_codes(z.pixel(tok, 0), &p.ln_gain, act_bits);
        for (c, &code) in row.iter().enumerate() {
            y.set(tok, 0, c, code);
        }
    }

    // Optional feed-forward sublayer with its own skip + LayerNorm.
    let Some(ffn) = &p.ffn else {
        return y;
    };
    let f_acc = conv_acc_codes(&projs[4], &y, &ffn.w1, act_bits);
    stats.observe_acc(&f_acc);
    let f = apply_thresholds(&f_acc, &ffn.thr1);
    let mut z2 = conv_acc_codes(&projs[5], &f, &ffn.w2, act_bits);
    stats.observe_acc(&z2);
    for (zv, yv) in z2.as_mut_slice().iter_mut().zip(y.as_slice()) {
        *zv += i32::from(*yv);
    }
    stats.observe_skip(&z2);
    let mut out = Tensor3::<u8>::zeros(geom.shape());
    for tok in 0..seq {
        let row = layernorm_codes(z2.pixel(tok, 0), &ffn.ln2_gain, act_bits);
        for (c, &code) in row.iter().enumerate() {
            out.set(tok, 0, c, code);
        }
    }
    out
}

/// Result of running one image through the reference interpreter.
#[derive(Clone, Debug)]
pub struct ForwardResult {
    /// Raw logits from the final layer.
    pub logits: Vec<i32>,
    /// Range statistics gathered along the way.
    pub stats: ForwardStats,
}

impl ForwardResult {
    /// Index of the largest logit (ties break toward the lower index, the
    /// same rule the DFE host code uses).
    pub fn argmax(&self) -> usize {
        let mut best = 0;
        for (i, &v) in self.logits.iter().enumerate() {
            if v > self.logits[best] {
                best = i;
            }
        }
        best
    }
}

impl Network {
    /// Run one image through the network, returning logits and statistics.
    pub fn forward(&self, image: &Tensor3<i8>) -> ForwardResult {
        assert_eq!(image.shape(), self.spec.input, "image shape mismatch");
        let act_bits = self.spec.act_bits;
        let mut stats = ForwardStats::default();
        let mut codes: Option<Tensor3<u8>> = None;
        let mut skip: Option<Tensor3<i32>> = None;
        let mut logits: Option<Vec<i32>> = None;

        for (stage, params) in self.spec.stages.iter().zip(&self.params) {
            assert!(logits.is_none(), "stages after the logits layer are not allowed");
            match (stage, params) {
                (Stage::ConvInput { geom }, StageParams::Conv { filters, thresholds }) => {
                    let acc = conv_acc_i8(geom, image, filters);
                    stats.observe_acc(&acc);
                    codes = Some(apply_thresholds(&acc, thresholds));
                    skip = None;
                }
                (Stage::Conv { geom }, StageParams::Conv { filters, thresholds }) => {
                    let input = codes.as_ref().expect("conv needs a predecessor");
                    let acc = conv_acc_codes(geom, input, filters, act_bits);
                    stats.observe_acc(&acc);
                    codes = Some(apply_thresholds(&acc, thresholds));
                    skip = None;
                }
                (Stage::Pool { k, stride, pad, kind, .. }, StageParams::Pool) => {
                    let input = codes.as_ref().expect("pool needs a predecessor");
                    codes = Some(match kind {
                        PoolKind::Max => max_pool(input, *k, *stride, *pad),
                        PoolKind::AvgSum => {
                            assert_eq!(*pad, 0, "avg pooling is unpadded in the paper's nets");
                            avg_sum_pool(input, *k, *stride)
                        }
                    });
                    skip = None;
                }
                (
                    Stage::FullyConnected { bn_act, .. },
                    StageParams::FullyConnected { filters, thresholds },
                ) => {
                    let input = codes.as_ref().expect("fc needs a predecessor");
                    let out = fully_connected(input.as_slice(), filters, act_bits);
                    if *bn_act {
                        let t = Tensor3::from_vec(Shape3::new(1, 1, out.len()), out);
                        stats.observe_acc(&t);
                        codes = Some(apply_thresholds(&t, thresholds));
                    } else {
                        logits = Some(out);
                    }
                    skip = None;
                }
                (
                    Stage::Residual { geom },
                    StageParams::Residual { filters1, thr_mid, filters2, thr_out, downsample },
                ) => {
                    let a_in = codes.take().expect("residual block needs a predecessor");
                    // Skip input: carried pre-activation, or (for shape-
                    // changing blocks) the 1×1 strided conv of the regular
                    // input; at a chain head, the widened codes themselves.
                    let s_in = match (&geom.downsample, downsample) {
                        (Some(ds_geom), Some(ds_filters)) => {
                            conv_acc_codes(ds_geom, &a_in, ds_filters, act_bits)
                        }
                        (None, None) => skip
                            .take()
                            .unwrap_or_else(|| a_in.map(i32::from)),
                        _ => unreachable!("spec/params downsample mismatch"),
                    };
                    let m = conv_acc_codes(&geom.conv1, &a_in, filters1, act_bits);
                    stats.observe_acc(&m);
                    let am = apply_thresholds(&m, thr_mid);
                    let mut z = conv_acc_codes(&geom.conv2, &am, filters2, act_bits);
                    for (zv, sv) in z.as_mut_slice().iter_mut().zip(s_in.as_slice()) {
                        *zv += *sv;
                    }
                    stats.observe_acc(&z);
                    stats.observe_skip(&z);
                    codes = Some(apply_thresholds(&z, thr_out));
                    skip = Some(z);
                }
                (Stage::Encoder { geom }, StageParams::Encoder(p)) => {
                    let input = codes.take().expect("encoder needs a predecessor");
                    codes = Some(encoder_forward(geom, p, &input, act_bits, &mut stats));
                    skip = None;
                }
                _ => unreachable!("stage/params variant mismatch"),
            }
        }
        ForwardResult { logits: logits.expect("network must end in a logits layer"), stats }
    }

    /// Convenience: forward + argmax.
    pub fn classify(&self, image: &Tensor3<i8>) -> usize {
        self.forward(image).argmax()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnn_quant::BnParams;
    use qnn_tensor::{BitVec, FilterShape};

    #[test]
    fn conv_acc_codes_matches_hand_example() {
        // 2×2 input, 1 channel, one 2×2 filter of all +1, no padding:
        // accumulator = sum of codes.
        let input = Tensor3::from_vec(Shape3::new(2, 2, 1), vec![1u8, 2, 3, 0]);
        let geom = ConvGeometry::new(Shape3::new(2, 2, 1), FilterShape::new(2, 1, 1), 1, 0);
        let filters = BinaryFilters::from_rows(vec![BitVec::from_bools(&[true; 4])]);
        let acc = conv_acc_codes(&geom, &input, &filters, 2);
        assert_eq!(acc.get(0, 0, 0), 6);
    }

    #[test]
    fn conv_padding_uses_code_zero() {
        // All-ones filter over an all-3 input with pad 1: corner windows see
        // three real pixels (border fill contributes 0).
        let input = Tensor3::from_vec(Shape3::new(2, 2, 1), vec![3u8, 3, 3, 3]);
        let geom = ConvGeometry::new(Shape3::new(2, 2, 1), FilterShape::new(2, 1, 1), 1, 1);
        let filters = BinaryFilters::from_rows(vec![BitVec::from_bools(&[true; 4])]);
        let acc = conv_acc_codes(&geom, &input, &filters, 2);
        assert_eq!(acc.shape(), Shape3::new(3, 3, 1));
        assert_eq!(acc.get(0, 0, 0), 3); // one real pixel
        assert_eq!(acc.get(1, 1, 0), 12); // all four
    }

    #[test]
    fn conv_window_order_is_ky_kx_c() {
        // Filter with exactly one −1 bit at position (ky=1, kx=0, c=1) of a
        // 2×2×2 window; verify the accumulator flips that specific input.
        let shape = Shape3::new(2, 2, 2);
        let input = Tensor3::from_fn(shape, |y, x, c| (y * 4 + x * 2 + c) as u8 % 4);
        let geom = ConvGeometry::new(shape, FilterShape::new(2, 2, 1), 1, 0);
        let flip_pos = (2 * 2) + 1; // (ky,kx,c) = (1,0,1) → index 5
        let mut bits = vec![true; 8];
        bits[flip_pos] = false;
        let filters = BinaryFilters::from_rows(vec![BitVec::from_bools(&bits)]);
        let acc = conv_acc_codes(&geom, &input, &filters, 2);
        let all: i32 = input.as_slice().iter().map(|&q| i32::from(q)).sum();
        let flipped = i32::from(input.get(1, 0, 1));
        assert_eq!(acc.get(0, 0, 0), all - 2 * flipped);
    }

    #[test]
    fn conv_i8_matches_naive() {
        let shape = Shape3::new(3, 3, 2);
        let input = Tensor3::from_fn(shape, |y, x, c| ((y * 31 + x * 7 + c * 3) as i32 - 10) as i8);
        let geom = ConvGeometry::new(shape, FilterShape::new(3, 2, 2), 1, 0);
        let rows: Vec<BitVec> = (0..2)
            .map(|o| BitVec::from_bools(&(0..18).map(|i| (i + o) % 3 != 0).collect::<Vec<_>>()))
            .collect();
        let filters = BinaryFilters::from_rows(rows.clone());
        let acc = conv_acc_i8(&geom, &input, &filters);
        for (o, row) in rows.iter().enumerate() {
            let mut expect = 0i32;
            let mut at = 0;
            for ky in 0..3 {
                for kx in 0..3 {
                    for c in 0..2 {
                        expect += row.sign(at) * i32::from(input.get(ky, kx, c));
                        at += 1;
                    }
                }
            }
            assert_eq!(acc.get(0, 0, o), expect);
        }
    }

    #[test]
    fn strided_conv_skips_positions() {
        let shape = Shape3::new(5, 5, 1);
        let input = Tensor3::from_fn(shape, |y, x, _| ((y * 5 + x) % 4) as u8);
        let geom = ConvGeometry::new(shape, FilterShape::new(3, 1, 1), 2, 0);
        let filters = BinaryFilters::from_rows(vec![BitVec::from_bools(&[true; 9])]);
        let acc = conv_acc_codes(&geom, &input, &filters, 2);
        assert_eq!(acc.shape(), Shape3::new(2, 2, 1));
        // Output (1,1) reads rows 2..5, cols 2..5.
        let mut expect = 0;
        for y in 2..5 {
            for x in 2..5 {
                expect += i32::from(input.get(y, x, 0));
            }
        }
        assert_eq!(acc.get(1, 1, 0), expect);
    }

    #[test]
    fn max_pool_basics() {
        let input = Tensor3::from_vec(Shape3::new(2, 2, 1), vec![1u8, 3, 0, 2]);
        let out = max_pool(&input, 2, 2, 0);
        assert_eq!(out.shape(), Shape3::new(1, 1, 1));
        assert_eq!(out.get(0, 0, 0), 3);
    }

    #[test]
    fn max_pool_is_per_channel() {
        let input = Tensor3::from_fn(Shape3::new(2, 2, 2), |y, x, c| {
            if c == 0 {
                (y + x) as u8
            } else {
                (3 - y - x) as u8
            }
        });
        let out = max_pool(&input, 2, 2, 0);
        assert_eq!(out.get(0, 0, 0), 2);
        assert_eq!(out.get(0, 0, 1), 3);
    }

    #[test]
    fn avg_sum_pool_uses_floor_shift() {
        // k = 2 ⇒ shift 2 (exact mean); sum 1+2+3+0 = 6 ⇒ 6 >> 2 = 1.
        let input = Tensor3::from_vec(Shape3::new(2, 2, 1), vec![1u8, 2, 3, 0]);
        let out = avg_sum_pool(&input, 2, 2);
        assert_eq!(out.get(0, 0, 0), 1);
        // k = 7 ⇒ shift 5 (49 → 32): an all-3 window sums to 147 → 4.
        let input = Tensor3::from_fn(Shape3::new(7, 7, 1), |_, _, _| 3u8);
        let out = avg_sum_pool(&input, 7, 7);
        assert_eq!(out.get(0, 0, 0), 4);
    }

    #[test]
    fn fc_equals_manual_dot() {
        let input: Vec<u8> = vec![0, 1, 2, 3, 2, 1];
        let row = BitVec::from_bools(&[true, false, true, false, true, true]);
        let filters = BinaryFilters::from_rows(vec![row.clone()]);
        let out = fully_connected(&input, &filters, 2);
        let expect: i32 =
            input.iter().enumerate().map(|(i, &q)| row.sign(i) * i32::from(q)).sum();
        assert_eq!(out, vec![expect]);
    }

    #[test]
    fn fc_handles_wide_codes_from_avg_pool() {
        // Codes above 2-bit range (e.g. 7) must still dot correctly.
        let input: Vec<u8> = vec![7, 5, 0, 9];
        let row = BitVec::from_bools(&[true, true, false, false]);
        let filters = BinaryFilters::from_rows(vec![row]);
        assert_eq!(fully_connected(&input, &filters, 2), vec![(7 + 5) - 9]);
    }

    #[test]
    fn threshold_application_is_per_channel() {
        let acc = Tensor3::from_vec(Shape3::new(1, 1, 2), vec![5, 5]);
        let spec = qnn_quant::QuantSpec::paper_2bit();
        let t0 = ThresholdUnit::from_batchnorm(&BnParams::IDENTITY, &spec);
        let t1 = ThresholdUnit::from_batchnorm(&BnParams::new(1.0, 4.0, 1.0, 0.0), &spec);
        let out = apply_thresholds(&acc, &[t0, t1]);
        assert_eq!(out.get(0, 0, 0), 3); // clamp(5)
        assert_eq!(out.get(0, 0, 1), 1); // 5−4 = 1
    }
}
