//! Network intermediate representation: an ordered list of stages with fully
//! resolved geometry.
//!
//! The spec is shape-checked at construction, so the streaming compiler, the
//! reference interpreter and the analytic hardware models all consume one
//! validated description and can never disagree about sizes.
//!
//! Construction goes through [`SpecBuilder`], whose `try_build` returns a
//! typed [`SpecError`] instead of panicking; [`NetworkSpec::new`] remains as
//! a thin panicking shim over the builder for existing callers. Stages are
//! still stored as an ordered list, but two of them — [`Stage::Residual`]
//! and [`Stage::Encoder`] — expand into *branching* op subgraphs (skip
//! splits, attention-head fan-out/rejoin); [`NetworkSpec::op_graph`] exposes
//! that structure explicitly (see `graph.rs`).

use qnn_tensor::{ConvGeometry, FilterShape, Shape3};

/// Pooling flavor. The paper uses max pooling everywhere except the final
/// global pooling of ResNet-18, which is an average (paper §III-B2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PoolKind {
    /// Maximum over the window.
    Max,
    /// Sum over the window (average with the divisor folded into the next
    /// layer's thresholds, keeping arithmetic integral).
    AvgSum,
}

/// Geometry of one residual building block (paper Fig. 2 / §III-B5): two
/// convolutions, an optional 1×1 strided downsample on the skip path, and
/// the skip buffer + adder.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResidualGeometry {
    /// First convolution (may be strided for downsampling blocks).
    pub conv1: ConvGeometry,
    /// Second convolution (always stride 1 in ResNet-18).
    pub conv2: ConvGeometry,
    /// Skip-path 1×1 convolution when shape changes (conv3_1, conv4_1,
    /// conv5_1 in Table I); `None` for identity skips.
    pub downsample: Option<ConvGeometry>,
}

impl ResidualGeometry {
    /// Output shape of the block.
    pub fn output(&self) -> Shape3 {
        self.conv2.output()
    }

    /// Input shape of the block.
    pub fn input(&self) -> Shape3 {
        self.conv1.input
    }

    /// Internal consistency as a typed result (builder path).
    fn check(&self) -> Result<(), String> {
        if self.conv1.output() != self.conv2.input {
            return Err("residual conv1 output must feed conv2".into());
        }
        match self.downsample {
            Some(ds) => {
                if ds.input != self.conv1.input {
                    return Err("downsample reads the block input".into());
                }
                if ds.output() != self.conv2.output() {
                    return Err("downsample must match block output".into());
                }
            }
            None => {
                if self.conv1.input != self.conv2.output() {
                    return Err("identity skip requires matching input/output shapes".into());
                }
            }
        }
        Ok(())
    }

    /// Validate internal consistency, panicking with the same messages the
    /// pre-builder API used.
    fn validate(&self) {
        if let Err(e) = self.check() {
            panic!("{e}");
        }
    }
}

/// Geometry of one streaming encoder block (quantized multi-head
/// attention + residual + LayerNorm, optionally followed by a
/// feed-forward sublayer with its own residual + LayerNorm).
///
/// The token sequence rides the existing tensor plumbing as a
/// `seq_len × 1 × d_model` map — one "pixel row" per token, channels
/// carrying the embedding — so every stream, kernel and host interface
/// built for images works unchanged.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EncoderGeometry {
    /// Tokens per sequence (the map height).
    pub seq_len: usize,
    /// Embedding width (the map channel count); `heads · head_dim`.
    pub d_model: usize,
    /// Attention heads. Bounded by the per-kernel stream fan-out limit
    /// (`dfe_platform::MAX_SPAN_PORTS` = 8).
    pub heads: usize,
    /// Per-head feature width.
    pub head_dim: usize,
    /// Hidden width of the optional feed-forward sublayer; `0` disables
    /// the FFN (attention + LayerNorm only).
    pub ff_hidden: usize,
}

impl EncoderGeometry {
    /// Input and output shape of the block (encoders preserve shape).
    pub fn shape(&self) -> Shape3 {
        Shape3::new(self.seq_len, 1, self.d_model)
    }

    /// Whether the feed-forward sublayer is present.
    pub fn has_ffn(&self) -> bool {
        self.ff_hidden > 0
    }

    /// Internal consistency as a typed result (builder path).
    fn check(&self) -> Result<(), String> {
        if self.seq_len == 0 {
            return Err("encoder needs at least one token".into());
        }
        if self.heads == 0 || self.head_dim == 0 {
            return Err("encoder needs at least one head of positive width".into());
        }
        if self.heads > 8 {
            return Err(format!(
                "encoder fan-out of {} heads exceeds the 8-port stream limit",
                self.heads
            ));
        }
        if self.d_model != self.heads * self.head_dim {
            return Err(format!(
                "d_model {} must equal heads {} × head_dim {}",
                self.d_model, self.heads, self.head_dim
            ));
        }
        Ok(())
    }

    /// The 1×1 projection geometries of the block, in dataflow order:
    /// Q, K, V, output projection, then FF1/FF2 when the FFN is present.
    /// Each is a per-token matvec, which is exactly a 1×1 convolution
    /// over the `seq_len × 1 × d_model` map.
    pub fn projection_geometries(&self) -> Vec<ConvGeometry> {
        let proj = |in_c: usize, out_c: usize| {
            ConvGeometry::new(
                Shape3::new(self.seq_len, 1, in_c),
                FilterShape::new(1, in_c, out_c),
                1,
                0,
            )
        };
        let mut v = vec![
            proj(self.d_model, self.d_model), // Q
            proj(self.d_model, self.d_model), // K
            proj(self.d_model, self.d_model), // V
            proj(self.d_model, self.d_model), // output projection
        ];
        if self.has_ffn() {
            v.push(proj(self.d_model, self.ff_hidden));
            v.push(proj(self.ff_hidden, self.d_model));
        }
        v
    }

    /// Multiply–accumulates of the attention core itself (QKᵀ + AV),
    /// excluded from `conv_geometries` because they are not convolutions.
    pub fn attention_macs(&self) -> u64 {
        let per_head = 2 * self.seq_len * self.seq_len * self.head_dim;
        (self.heads * per_head) as u64
    }
}

/// One pipeline stage. Every stage knows its input shape; output shapes are
/// derived.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// First-layer convolution over signed 8-bit pixels streamed from the
    /// CPU. `bn_act` is always true in the paper's networks.
    ConvInput {
        /// Convolution geometry.
        geom: ConvGeometry,
    },
    /// Hidden convolution over activation codes, followed by fused
    /// BatchNorm + n-bit activation.
    Conv {
        /// Convolution geometry.
        geom: ConvGeometry,
    },
    /// Spatial pooling (no parameters, paper §III-B2).
    Pool {
        /// Input feature-map shape.
        input: Shape3,
        /// Window side.
        k: usize,
        /// Stride.
        stride: usize,
        /// Symmetric padding (max pooling pads with code 0, the lowest
        /// representable level, mirroring the paper's −1 padding).
        pad: usize,
        /// Max or average-sum.
        kind: PoolKind,
    },
    /// Fully connected layer, implemented as a 1×1 convolution over the
    /// flattened map (paper §III-B4). When `bn_act` is false this is the
    /// output layer and produces raw logits.
    FullyConnected {
        /// Flattened input features.
        in_features: usize,
        /// Output neurons.
        out_features: usize,
        /// Apply fused BatchNorm + activation (false for the logits layer).
        bn_act: bool,
    },
    /// Residual building block (two convolutions + skip, paper §III-B5).
    Residual {
        /// Block geometry.
        geom: ResidualGeometry,
    },
    /// Streaming encoder block: quantized multi-head attention with a
    /// threshold-softmax, residual skip, integer LayerNorm, and an
    /// optional feed-forward sublayer. Lowers to a branching kernel
    /// subgraph (heads fan out and rejoin).
    Encoder {
        /// Block geometry.
        geom: EncoderGeometry,
    },
}

impl Stage {
    /// Shape of the tensor this stage consumes. FC layers consume the
    /// flattened form, reported as `1×1×in_features`.
    pub fn input_shape(&self) -> Shape3 {
        match *self {
            Stage::ConvInput { geom } | Stage::Conv { geom } => geom.input,
            Stage::Pool { input, .. } => input,
            Stage::FullyConnected { in_features, .. } => Shape3::new(1, 1, in_features),
            Stage::Residual { geom } => geom.input(),
            Stage::Encoder { geom } => geom.shape(),
        }
    }

    /// Shape of the tensor this stage produces.
    pub fn output_shape(&self) -> Shape3 {
        match *self {
            Stage::ConvInput { geom } | Stage::Conv { geom } => geom.output(),
            Stage::Pool { input, k, stride, pad, .. } => {
                let ph = input.h + 2 * pad;
                let pw = input.w + 2 * pad;
                Shape3::new((ph - k) / stride + 1, (pw - k) / stride + 1, input.c)
            }
            Stage::FullyConnected { out_features, .. } => Shape3::new(1, 1, out_features),
            Stage::Residual { geom } => geom.output(),
            Stage::Encoder { geom } => geom.shape(),
        }
    }

    /// Binary weights held by this stage (0 for pooling).
    pub fn weight_bits(&self) -> usize {
        match *self {
            Stage::ConvInput { geom } | Stage::Conv { geom } => geom.filter.total_weights(),
            Stage::Pool { .. } => 0,
            Stage::FullyConnected { in_features, out_features, .. } => in_features * out_features,
            Stage::Residual { geom } => {
                geom.conv1.filter.total_weights()
                    + geom.conv2.filter.total_weights()
                    + geom.downsample.map_or(0, |d| d.filter.total_weights())
            }
            Stage::Encoder { geom } => geom
                .projection_geometries()
                .iter()
                .map(|g| g.filter.total_weights())
                .sum(),
        }
    }

    /// Number of neurons carrying BatchNorm threshold parameters.
    pub fn bn_neurons(&self) -> usize {
        match *self {
            Stage::ConvInput { geom } | Stage::Conv { geom } => geom.filter.o,
            Stage::Pool { .. } => 0,
            Stage::FullyConnected { out_features, bn_act, .. } => {
                if bn_act {
                    out_features
                } else {
                    0
                }
            }
            // Mid BN after conv1 and output BN after the adder.
            Stage::Residual { geom } => geom.conv1.filter.o + geom.conv2.filter.o,
            // Thresholded Q/K/V projections, plus the FF1 activation.
            Stage::Encoder { geom } => 3 * geom.d_model + geom.ff_hidden,
        }
    }

    /// Convolution geometries contained in this stage, in dataflow order.
    pub fn conv_geometries(&self) -> Vec<ConvGeometry> {
        match *self {
            Stage::ConvInput { geom } | Stage::Conv { geom } => vec![geom],
            Stage::Pool { .. } => Vec::new(),
            Stage::FullyConnected { in_features, out_features, .. } => {
                // FC as a 1×1 convolution over a 1×1×in_features map.
                vec![ConvGeometry::new(
                    Shape3::new(1, 1, in_features),
                    FilterShape::new(1, in_features, out_features),
                    1,
                    0,
                )]
            }
            Stage::Residual { geom } => {
                let mut v = vec![geom.conv1, geom.conv2];
                if let Some(d) = geom.downsample {
                    v.push(d);
                }
                v
            }
            Stage::Encoder { geom } => geom.projection_geometries(),
        }
    }
}

/// Why a [`SpecBuilder`] rejected a stage list.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpecError {
    /// The stage list was empty.
    Empty,
    /// The first stage was not the fixed-point input convolution.
    FirstStageNotInput,
    /// Consecutive stages disagree about shapes.
    ShapeMismatch {
        /// Index of the offending stage.
        index: usize,
        /// Debug rendering of the offending stage.
        stage: String,
        /// The shape the stage declares it consumes.
        expected: Shape3,
        /// The shape the previous stage actually produces.
        found: Shape3,
    },
    /// A residual or encoder block is internally inconsistent.
    InvalidStage {
        /// Index of the offending stage.
        index: usize,
        /// What is wrong with it.
        reason: String,
    },
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::Empty => write!(f, "network needs at least one stage"),
            SpecError::FirstStageNotInput => {
                write!(f, "first stage must be the fixed-point input convolution")
            }
            SpecError::ShapeMismatch { index, stage, expected, found } => write!(
                f,
                "stage {index} of {stage} expects input {expected:?} but receives {found:?}"
            ),
            SpecError::InvalidStage { index, reason } => {
                write!(f, "stage {index}: {reason}")
            }
        }
    }
}

impl std::error::Error for SpecError {}

/// Typed constructor for [`NetworkSpec`]: accumulate stages, then
/// [`try_build`](SpecBuilder::try_build) shape-checks the chain and
/// returns a typed [`SpecError`] instead of panicking. The per-stage
/// helpers (`conv`, `pool`, `residual`, `encoder`, …) replace the
/// hand-assembled `Vec<Stage>` literals the model zoo used to carry.
#[derive(Clone, Debug)]
pub struct SpecBuilder {
    name: String,
    input: Shape3,
    act_bits: u32,
    stages: Vec<Stage>,
}

impl SpecBuilder {
    /// Start a spec: model name, input shape, activation bits.
    pub fn new(name: impl Into<String>, input: Shape3, act_bits: u32) -> Self {
        Self { name: name.into(), input, act_bits, stages: Vec::new() }
    }

    /// Append an arbitrary stage.
    pub fn stage(mut self, stage: Stage) -> Self {
        self.stages.push(stage);
        self
    }

    /// Append the fixed-point input convolution.
    pub fn conv_input(self, geom: ConvGeometry) -> Self {
        self.stage(Stage::ConvInput { geom })
    }

    /// Append a hidden convolution (fused BN + activation).
    pub fn conv(self, geom: ConvGeometry) -> Self {
        self.stage(Stage::Conv { geom })
    }

    /// Append a pooling stage.
    pub fn pool(self, input: Shape3, k: usize, stride: usize, pad: usize, kind: PoolKind) -> Self {
        self.stage(Stage::Pool { input, k, stride, pad, kind })
    }

    /// Append a residual block.
    pub fn residual(self, geom: ResidualGeometry) -> Self {
        self.stage(Stage::Residual { geom })
    }

    /// Append a streaming encoder block.
    pub fn encoder(self, geom: EncoderGeometry) -> Self {
        self.stage(Stage::Encoder { geom })
    }

    /// Append a fully connected layer.
    pub fn fully_connected(self, in_features: usize, out_features: usize, bn_act: bool) -> Self {
        self.stage(Stage::FullyConnected { in_features, out_features, bn_act })
    }

    /// Shape-check the chain and build the spec.
    ///
    /// FC layers accept any predecessor whose element count matches (the
    /// flatten is the identity in stream order); every other stage must
    /// match shapes exactly.
    pub fn try_build(self) -> Result<NetworkSpec, SpecError> {
        let Self { name, input, act_bits, stages } = self;
        if stages.is_empty() {
            return Err(SpecError::Empty);
        }
        if !matches!(stages[0], Stage::ConvInput { .. }) {
            return Err(SpecError::FirstStageNotInput);
        }
        let mut cur = input;
        for (i, stage) in stages.iter().enumerate() {
            let block_check = match stage {
                Stage::Residual { geom } => geom.check(),
                Stage::Encoder { geom } => geom.check(),
                _ => Ok(()),
            };
            if let Err(reason) = block_check {
                return Err(SpecError::InvalidStage { index: i, reason });
            }
            let expect = stage.input_shape();
            let ok = if matches!(stage, Stage::FullyConnected { .. }) {
                expect.len() == cur.len()
            } else {
                expect == cur
            };
            if !ok {
                return Err(SpecError::ShapeMismatch {
                    index: i,
                    stage: format!("{stage:?}"),
                    expected: expect,
                    found: cur,
                });
            }
            cur = stage.output_shape();
        }
        Ok(NetworkSpec { name, input, act_bits, stages })
    }
}

/// A validated network description.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NetworkSpec {
    /// Human-readable model name (used in reports and tables).
    pub name: String,
    /// Image input shape (H×W×3 for the paper's datasets); encoders use
    /// `seq_len × 1 × channels` token sequences.
    pub input: Shape3,
    /// Hidden activation bits (2 in the paper; 1 for the FINN comparison).
    pub act_bits: u32,
    /// Stages in dataflow order.
    pub stages: Vec<Stage>,
}

impl NetworkSpec {
    /// Build and shape-check a spec — a thin panicking shim over
    /// [`SpecBuilder::try_build`] kept for existing callers.
    ///
    /// # Panics
    /// Panics when consecutive stages disagree about shapes (FC layers accept
    /// any predecessor whose element count matches).
    pub fn new(name: impl Into<String>, input: Shape3, act_bits: u32, stages: Vec<Stage>) -> Self {
        // Keep the legacy panic messages: residual geometry first (the
        // pre-builder API validated blocks before chaining shapes).
        for stage in &stages {
            if let Stage::Residual { geom } = stage {
                geom.validate();
            }
        }
        let mut b = SpecBuilder::new(name, input, act_bits);
        for stage in stages {
            b = b.stage(stage);
        }
        match b.try_build() {
            Ok(spec) => spec,
            Err(e) => panic!("{e}"),
        }
    }

    /// Final output shape (1×1×classes for the paper's networks).
    pub fn output_shape(&self) -> Shape3 {
        self.stages.last().expect("validated non-empty").output_shape()
    }

    /// Number of classes (channels of the final stage).
    pub fn classes(&self) -> usize {
        self.output_shape().len()
    }

    /// Total binary weights in the model.
    pub fn total_weight_bits(&self) -> usize {
        self.stages.iter().map(Stage::weight_bits).sum()
    }

    /// Total BatchNorm-carrying neurons.
    pub fn total_bn_neurons(&self) -> usize {
        self.stages.iter().map(Stage::bn_neurons).sum()
    }

    /// All convolution geometries in dataflow order (FC included as 1×1).
    pub fn conv_geometries(&self) -> Vec<ConvGeometry> {
        self.stages.iter().flat_map(Stage::conv_geometries).collect()
    }

    /// Total multiply–accumulate operations per image (attention QKᵀ/AV
    /// cores included).
    pub fn total_macs(&self) -> u64 {
        let conv: u64 = self.conv_geometries().iter().map(ConvGeometry::macs).sum();
        let attn: u64 = self
            .stages
            .iter()
            .map(|s| match s {
                Stage::Encoder { geom } => geom.attention_macs(),
                _ => 0,
            })
            .sum();
        conv + attn
    }

    /// Count of residual blocks (skip connections); encoder blocks carry
    /// one skip per sublayer.
    pub fn num_skip_connections(&self) -> usize {
        self.stages
            .iter()
            .map(|s| match s {
                Stage::Residual { .. } => 1,
                Stage::Encoder { geom } => 1 + usize::from(geom.has_ffn()),
                _ => 0,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> NetworkSpec {
        let g1 = ConvGeometry::new(Shape3::square(8, 3), FilterShape::new(3, 3, 4), 1, 1);
        let g2 = ConvGeometry::new(Shape3::square(8, 4), FilterShape::new(3, 4, 4), 1, 1);
        NetworkSpec::new(
            "tiny",
            Shape3::square(8, 3),
            2,
            vec![
                Stage::ConvInput { geom: g1 },
                Stage::Conv { geom: g2 },
                Stage::Pool { input: Shape3::square(8, 4), k: 2, stride: 2, pad: 0, kind: PoolKind::Max },
                Stage::FullyConnected { in_features: 4 * 4 * 4, out_features: 10, bn_act: false },
            ],
        )
    }

    #[test]
    fn tiny_spec_shapes_chain() {
        let spec = tiny_spec();
        assert_eq!(spec.output_shape(), Shape3::new(1, 1, 10));
        assert_eq!(spec.classes(), 10);
    }

    #[test]
    fn weight_and_bn_counts() {
        let spec = tiny_spec();
        // conv1: 3·3·3·4 = 108; conv2: 3·3·4·4 = 144; fc: 64·10 = 640.
        assert_eq!(spec.total_weight_bits(), 108 + 144 + 640);
        // BN on conv1 (4) + conv2 (4); the logits FC has none.
        assert_eq!(spec.total_bn_neurons(), 8);
    }

    #[test]
    fn macs_are_summed_over_stages() {
        let spec = tiny_spec();
        let expected: u64 = (8 * 8 * 4 * 27) + (8 * 8 * 4 * 36) + (10 * 64);
        assert_eq!(spec.total_macs(), expected);
    }

    #[test]
    fn residual_geometry_validation_accepts_table1_block() {
        let c1 = ConvGeometry::new(Shape3::square(56, 64), FilterShape::new(3, 64, 64), 1, 1);
        let c2 = c1;
        let geom = ResidualGeometry { conv1: c1, conv2: c2, downsample: None };
        geom.validate();
        assert_eq!(geom.output(), Shape3::square(56, 64));
    }

    #[test]
    fn residual_downsample_block_validates() {
        let c1 = ConvGeometry::new(Shape3::square(56, 64), FilterShape::new(3, 64, 128), 2, 1);
        let c2 = ConvGeometry::new(Shape3::square(28, 128), FilterShape::new(3, 128, 128), 1, 1);
        let ds = ConvGeometry::new(Shape3::square(56, 64), FilterShape::new(1, 64, 128), 2, 0);
        let geom = ResidualGeometry { conv1: c1, conv2: c2, downsample: Some(ds) };
        geom.validate();
        assert_eq!(geom.output(), Shape3::square(28, 128));
    }

    #[test]
    #[should_panic(expected = "identity skip")]
    fn residual_shape_change_without_downsample_panics() {
        let c1 = ConvGeometry::new(Shape3::square(56, 64), FilterShape::new(3, 64, 128), 2, 1);
        let c2 = ConvGeometry::new(Shape3::square(28, 128), FilterShape::new(3, 128, 128), 1, 1);
        let geom = ResidualGeometry { conv1: c1, conv2: c2, downsample: None };
        geom.validate();
    }

    #[test]
    #[should_panic(expected = "expects input")]
    fn shape_mismatch_between_stages_panics() {
        let g1 = ConvGeometry::new(Shape3::square(8, 3), FilterShape::new(3, 3, 4), 1, 1);
        let g2 = ConvGeometry::new(Shape3::square(7, 4), FilterShape::new(3, 4, 4), 1, 1);
        let _ = NetworkSpec::new(
            "bad",
            Shape3::square(8, 3),
            2,
            vec![Stage::ConvInput { geom: g1 }, Stage::Conv { geom: g2 }],
        );
    }

    #[test]
    #[should_panic(expected = "first stage")]
    fn network_must_start_with_input_conv() {
        let g = ConvGeometry::new(Shape3::square(8, 3), FilterShape::new(3, 3, 4), 1, 1);
        let _ = NetworkSpec::new("bad", Shape3::square(8, 3), 2, vec![Stage::Conv { geom: g }]);
    }

    fn encoder_geom(seq: usize, heads: usize, head_dim: usize, ff: usize) -> EncoderGeometry {
        EncoderGeometry {
            seq_len: seq,
            d_model: heads * head_dim,
            heads,
            head_dim,
            ff_hidden: ff,
        }
    }

    #[test]
    fn builder_accepts_an_encoder_chain() {
        let d = 8;
        let embed = ConvGeometry::new(Shape3::new(6, 1, 3), FilterShape::new(1, 3, d), 1, 0);
        let spec = SpecBuilder::new("txf", Shape3::new(6, 1, 3), 2)
            .conv_input(embed)
            .encoder(encoder_geom(6, 2, 4, 0))
            .encoder(encoder_geom(6, 4, 2, 16))
            .fully_connected(6 * d, 5, false)
            .try_build()
            .expect("valid transformer spec");
        assert_eq!(spec.output_shape(), Shape3::new(1, 1, 5));
        // Per plain encoder: 4 d² projections; FFN adds 2·d·ff.
        let enc_bits = 4 * d * d;
        assert_eq!(
            spec.total_weight_bits(),
            3 * d + enc_bits + (enc_bits + 2 * d * 16) + 6 * d * 5
        );
        assert_eq!(spec.num_skip_connections(), 3);
        // Attention macs: per encoder 2·heads·seq²·head_dim = 2·seq²·d.
        assert!(spec.total_macs() > 2 * 2 * 36 * 8);
    }

    #[test]
    fn builder_rejects_mismatched_encoder_geometry() {
        let embed = ConvGeometry::new(Shape3::new(4, 1, 3), FilterShape::new(1, 3, 8), 1, 0);
        let bad = EncoderGeometry { seq_len: 4, d_model: 8, heads: 3, head_dim: 2, ff_hidden: 0 };
        let err = SpecBuilder::new("bad", Shape3::new(4, 1, 3), 2)
            .conv_input(embed)
            .encoder(bad)
            .fully_connected(32, 4, false)
            .try_build()
            .unwrap_err();
        assert!(matches!(err, SpecError::InvalidStage { index: 1, .. }), "{err}");
    }

    #[test]
    fn builder_reports_shape_mismatch_as_typed_error() {
        let g1 = ConvGeometry::new(Shape3::square(8, 3), FilterShape::new(3, 3, 4), 1, 1);
        let g2 = ConvGeometry::new(Shape3::square(7, 4), FilterShape::new(3, 4, 4), 1, 1);
        let err = SpecBuilder::new("bad", Shape3::square(8, 3), 2)
            .conv_input(g1)
            .conv(g2)
            .try_build()
            .unwrap_err();
        assert!(matches!(err, SpecError::ShapeMismatch { index: 1, .. }), "{err}");
        assert!(err.to_string().contains("expects input"));
    }

    #[test]
    fn builder_rejects_empty_and_headless_chains() {
        assert_eq!(
            SpecBuilder::new("e", Shape3::square(8, 3), 2).try_build().unwrap_err(),
            SpecError::Empty
        );
        let g = ConvGeometry::new(Shape3::square(8, 3), FilterShape::new(3, 3, 4), 1, 1);
        assert_eq!(
            SpecBuilder::new("h", Shape3::square(8, 3), 2).conv(g).try_build().unwrap_err(),
            SpecError::FirstStageNotInput
        );
    }

    #[test]
    fn builder_and_shim_agree_on_a_cnn_chain() {
        let g1 = ConvGeometry::new(Shape3::square(8, 3), FilterShape::new(3, 3, 4), 1, 1);
        let built = SpecBuilder::new("tiny", Shape3::square(8, 3), 2)
            .conv_input(g1)
            .fully_connected(8 * 8 * 4, 10, false)
            .try_build()
            .expect("valid");
        let shimmed = NetworkSpec::new(
            "tiny",
            Shape3::square(8, 3),
            2,
            vec![
                Stage::ConvInput { geom: g1 },
                Stage::FullyConnected { in_features: 8 * 8 * 4, out_features: 10, bn_act: false },
            ],
        );
        assert_eq!(built, shimmed);
    }
}
