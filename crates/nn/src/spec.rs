//! Network intermediate representation: an ordered list of stages with fully
//! resolved geometry.
//!
//! The spec is shape-checked at construction, so the streaming compiler, the
//! reference interpreter and the analytic hardware models all consume one
//! validated description and can never disagree about sizes.

use qnn_tensor::{ConvGeometry, FilterShape, Shape3};

/// Pooling flavor. The paper uses max pooling everywhere except the final
/// global pooling of ResNet-18, which is an average (paper §III-B2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PoolKind {
    /// Maximum over the window.
    Max,
    /// Sum over the window (average with the divisor folded into the next
    /// layer's thresholds, keeping arithmetic integral).
    AvgSum,
}

/// Geometry of one residual building block (paper Fig. 2 / §III-B5): two
/// convolutions, an optional 1×1 strided downsample on the skip path, and
/// the skip buffer + adder.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResidualGeometry {
    /// First convolution (may be strided for downsampling blocks).
    pub conv1: ConvGeometry,
    /// Second convolution (always stride 1 in ResNet-18).
    pub conv2: ConvGeometry,
    /// Skip-path 1×1 convolution when shape changes (conv3_1, conv4_1,
    /// conv5_1 in Table I); `None` for identity skips.
    pub downsample: Option<ConvGeometry>,
}

impl ResidualGeometry {
    /// Output shape of the block.
    pub fn output(&self) -> Shape3 {
        self.conv2.output()
    }

    /// Input shape of the block.
    pub fn input(&self) -> Shape3 {
        self.conv1.input
    }

    /// Validate internal consistency.
    fn validate(&self) {
        assert_eq!(
            self.conv1.output(),
            self.conv2.input,
            "residual conv1 output must feed conv2"
        );
        match self.downsample {
            Some(ds) => {
                assert_eq!(ds.input, self.conv1.input, "downsample reads the block input");
                assert_eq!(ds.output(), self.conv2.output(), "downsample must match block output");
            }
            None => assert_eq!(
                self.conv1.input,
                self.conv2.output(),
                "identity skip requires matching input/output shapes"
            ),
        }
    }
}

/// One pipeline stage. Every stage knows its input shape; output shapes are
/// derived.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// First-layer convolution over signed 8-bit pixels streamed from the
    /// CPU. `bn_act` is always true in the paper's networks.
    ConvInput {
        /// Convolution geometry.
        geom: ConvGeometry,
    },
    /// Hidden convolution over activation codes, followed by fused
    /// BatchNorm + n-bit activation.
    Conv {
        /// Convolution geometry.
        geom: ConvGeometry,
    },
    /// Spatial pooling (no parameters, paper §III-B2).
    Pool {
        /// Input feature-map shape.
        input: Shape3,
        /// Window side.
        k: usize,
        /// Stride.
        stride: usize,
        /// Symmetric padding (max pooling pads with code 0, the lowest
        /// representable level, mirroring the paper's −1 padding).
        pad: usize,
        /// Max or average-sum.
        kind: PoolKind,
    },
    /// Fully connected layer, implemented as a 1×1 convolution over the
    /// flattened map (paper §III-B4). When `bn_act` is false this is the
    /// output layer and produces raw logits.
    FullyConnected {
        /// Flattened input features.
        in_features: usize,
        /// Output neurons.
        out_features: usize,
        /// Apply fused BatchNorm + activation (false for the logits layer).
        bn_act: bool,
    },
    /// Residual building block (two convolutions + skip, paper §III-B5).
    Residual {
        /// Block geometry.
        geom: ResidualGeometry,
    },
}

impl Stage {
    /// Shape of the tensor this stage consumes. FC layers consume the
    /// flattened form, reported as `1×1×in_features`.
    pub fn input_shape(&self) -> Shape3 {
        match *self {
            Stage::ConvInput { geom } | Stage::Conv { geom } => geom.input,
            Stage::Pool { input, .. } => input,
            Stage::FullyConnected { in_features, .. } => Shape3::new(1, 1, in_features),
            Stage::Residual { geom } => geom.input(),
        }
    }

    /// Shape of the tensor this stage produces.
    pub fn output_shape(&self) -> Shape3 {
        match *self {
            Stage::ConvInput { geom } | Stage::Conv { geom } => geom.output(),
            Stage::Pool { input, k, stride, pad, .. } => {
                let ph = input.h + 2 * pad;
                let pw = input.w + 2 * pad;
                Shape3::new((ph - k) / stride + 1, (pw - k) / stride + 1, input.c)
            }
            Stage::FullyConnected { out_features, .. } => Shape3::new(1, 1, out_features),
            Stage::Residual { geom } => geom.output(),
        }
    }

    /// Binary weights held by this stage (0 for pooling).
    pub fn weight_bits(&self) -> usize {
        match *self {
            Stage::ConvInput { geom } | Stage::Conv { geom } => geom.filter.total_weights(),
            Stage::Pool { .. } => 0,
            Stage::FullyConnected { in_features, out_features, .. } => in_features * out_features,
            Stage::Residual { geom } => {
                geom.conv1.filter.total_weights()
                    + geom.conv2.filter.total_weights()
                    + geom.downsample.map_or(0, |d| d.filter.total_weights())
            }
        }
    }

    /// Number of neurons carrying BatchNorm threshold parameters.
    pub fn bn_neurons(&self) -> usize {
        match *self {
            Stage::ConvInput { geom } | Stage::Conv { geom } => geom.filter.o,
            Stage::Pool { .. } => 0,
            Stage::FullyConnected { out_features, bn_act, .. } => {
                if bn_act {
                    out_features
                } else {
                    0
                }
            }
            // Mid BN after conv1 and output BN after the adder.
            Stage::Residual { geom } => geom.conv1.filter.o + geom.conv2.filter.o,
        }
    }

    /// Convolution geometries contained in this stage, in dataflow order.
    pub fn conv_geometries(&self) -> Vec<ConvGeometry> {
        match *self {
            Stage::ConvInput { geom } | Stage::Conv { geom } => vec![geom],
            Stage::Pool { .. } => Vec::new(),
            Stage::FullyConnected { in_features, out_features, .. } => {
                // FC as a 1×1 convolution over a 1×1×in_features map.
                vec![ConvGeometry::new(
                    Shape3::new(1, 1, in_features),
                    FilterShape::new(1, in_features, out_features),
                    1,
                    0,
                )]
            }
            Stage::Residual { geom } => {
                let mut v = vec![geom.conv1, geom.conv2];
                if let Some(d) = geom.downsample {
                    v.push(d);
                }
                v
            }
        }
    }
}

/// A validated network description.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NetworkSpec {
    /// Human-readable model name (used in reports and tables).
    pub name: String,
    /// Image input shape (H×W×3 for the paper's datasets).
    pub input: Shape3,
    /// Hidden activation bits (2 in the paper; 1 for the FINN comparison).
    pub act_bits: u32,
    /// Stages in dataflow order.
    pub stages: Vec<Stage>,
}

impl NetworkSpec {
    /// Build and shape-check a spec.
    ///
    /// # Panics
    /// Panics when consecutive stages disagree about shapes (FC layers accept
    /// any predecessor whose element count matches).
    pub fn new(name: impl Into<String>, input: Shape3, act_bits: u32, stages: Vec<Stage>) -> Self {
        assert!(!stages.is_empty(), "network needs at least one stage");
        assert!(
            matches!(stages[0], Stage::ConvInput { .. }),
            "first stage must be the fixed-point input convolution"
        );
        let mut cur = input;
        for (i, stage) in stages.iter().enumerate() {
            if let Stage::Residual { geom } = stage {
                geom.validate();
            }
            let expect = stage.input_shape();
            let ok = if matches!(stage, Stage::FullyConnected { .. }) {
                expect.len() == cur.len()
            } else {
                expect == cur
            };
            assert!(
                ok,
                "stage {i} of {:?} expects input {expect:?} but receives {cur:?}",
                stage
            );
            cur = stage.output_shape();
        }
        Self { name: name.into(), input, act_bits, stages }
    }

    /// Final output shape (1×1×classes for the paper's networks).
    pub fn output_shape(&self) -> Shape3 {
        self.stages.last().expect("validated non-empty").output_shape()
    }

    /// Number of classes (channels of the final stage).
    pub fn classes(&self) -> usize {
        self.output_shape().len()
    }

    /// Total binary weights in the model.
    pub fn total_weight_bits(&self) -> usize {
        self.stages.iter().map(Stage::weight_bits).sum()
    }

    /// Total BatchNorm-carrying neurons.
    pub fn total_bn_neurons(&self) -> usize {
        self.stages.iter().map(Stage::bn_neurons).sum()
    }

    /// All convolution geometries in dataflow order (FC included as 1×1).
    pub fn conv_geometries(&self) -> Vec<ConvGeometry> {
        self.stages.iter().flat_map(Stage::conv_geometries).collect()
    }

    /// Total multiply–accumulate operations per image.
    pub fn total_macs(&self) -> u64 {
        self.conv_geometries().iter().map(ConvGeometry::macs).sum()
    }

    /// Count of residual blocks (skip connections).
    pub fn num_skip_connections(&self) -> usize {
        self.stages.iter().filter(|s| matches!(s, Stage::Residual { .. })).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> NetworkSpec {
        let g1 = ConvGeometry::new(Shape3::square(8, 3), FilterShape::new(3, 3, 4), 1, 1);
        let g2 = ConvGeometry::new(Shape3::square(8, 4), FilterShape::new(3, 4, 4), 1, 1);
        NetworkSpec::new(
            "tiny",
            Shape3::square(8, 3),
            2,
            vec![
                Stage::ConvInput { geom: g1 },
                Stage::Conv { geom: g2 },
                Stage::Pool { input: Shape3::square(8, 4), k: 2, stride: 2, pad: 0, kind: PoolKind::Max },
                Stage::FullyConnected { in_features: 4 * 4 * 4, out_features: 10, bn_act: false },
            ],
        )
    }

    #[test]
    fn tiny_spec_shapes_chain() {
        let spec = tiny_spec();
        assert_eq!(spec.output_shape(), Shape3::new(1, 1, 10));
        assert_eq!(spec.classes(), 10);
    }

    #[test]
    fn weight_and_bn_counts() {
        let spec = tiny_spec();
        // conv1: 3·3·3·4 = 108; conv2: 3·3·4·4 = 144; fc: 64·10 = 640.
        assert_eq!(spec.total_weight_bits(), 108 + 144 + 640);
        // BN on conv1 (4) + conv2 (4); the logits FC has none.
        assert_eq!(spec.total_bn_neurons(), 8);
    }

    #[test]
    fn macs_are_summed_over_stages() {
        let spec = tiny_spec();
        let expected: u64 = (8 * 8 * 4 * 27) + (8 * 8 * 4 * 36) + (10 * 64);
        assert_eq!(spec.total_macs(), expected);
    }

    #[test]
    fn residual_geometry_validation_accepts_table1_block() {
        let c1 = ConvGeometry::new(Shape3::square(56, 64), FilterShape::new(3, 64, 64), 1, 1);
        let c2 = c1;
        let geom = ResidualGeometry { conv1: c1, conv2: c2, downsample: None };
        geom.validate();
        assert_eq!(geom.output(), Shape3::square(56, 64));
    }

    #[test]
    fn residual_downsample_block_validates() {
        let c1 = ConvGeometry::new(Shape3::square(56, 64), FilterShape::new(3, 64, 128), 2, 1);
        let c2 = ConvGeometry::new(Shape3::square(28, 128), FilterShape::new(3, 128, 128), 1, 1);
        let ds = ConvGeometry::new(Shape3::square(56, 64), FilterShape::new(1, 64, 128), 2, 0);
        let geom = ResidualGeometry { conv1: c1, conv2: c2, downsample: Some(ds) };
        geom.validate();
        assert_eq!(geom.output(), Shape3::square(28, 128));
    }

    #[test]
    #[should_panic(expected = "identity skip")]
    fn residual_shape_change_without_downsample_panics() {
        let c1 = ConvGeometry::new(Shape3::square(56, 64), FilterShape::new(3, 64, 128), 2, 1);
        let c2 = ConvGeometry::new(Shape3::square(28, 128), FilterShape::new(3, 128, 128), 1, 1);
        let geom = ResidualGeometry { conv1: c1, conv2: c2, downsample: None };
        geom.validate();
    }

    #[test]
    #[should_panic(expected = "expects input")]
    fn shape_mismatch_between_stages_panics() {
        let g1 = ConvGeometry::new(Shape3::square(8, 3), FilterShape::new(3, 3, 4), 1, 1);
        let g2 = ConvGeometry::new(Shape3::square(7, 4), FilterShape::new(3, 4, 4), 1, 1);
        let _ = NetworkSpec::new(
            "bad",
            Shape3::square(8, 3),
            2,
            vec![Stage::ConvInput { geom: g1 }, Stage::Conv { geom: g2 }],
        );
    }

    #[test]
    #[should_panic(expected = "first stage")]
    fn network_must_start_with_input_conv() {
        let g = ConvGeometry::new(Shape3::square(8, 3), FilterShape::new(3, 3, 4), 1, 1);
        let _ = NetworkSpec::new("bad", Shape3::square(8, 3), 2, vec![Stage::Conv { geom: g }]);
    }
}
