//! Randomized [`NetworkSpec`] generation for property and differential
//! test suites.
//!
//! Lives in `qnn-nn` (rather than `qnn-testkit`) because spec construction
//! needs the network types and `qnn-nn` already depends on the testkit —
//! the reverse dependency would be a cycle. Used by
//! `tests/property_streaming.rs` (bit-exactness vs the reference
//! interpreter) and `tests/scheduler_equivalence.rs` (Dense vs ReadyList
//! differential battery).

use crate::spec::{EncoderGeometry, NetworkSpec, PoolKind, SpecBuilder, Stage};
use qnn_tensor::{ConvGeometry, FilterShape, Shape3};
use qnn_testkit::{map, Strategy};

/// A random two-conv network with a pool and a classifier, or `None` when
/// the sampled geometry is inconsistent (kernel larger than its padded
/// input, pool window not fitting, …).
#[allow(clippy::too_many_arguments)] // mirrors the property parameter tuple
pub fn random_spec(
    side: usize,
    k1: usize,
    stride1: usize,
    pad1: usize,
    c1: usize,
    k2: usize,
    pad2: usize,
    c2: usize,
    act_bits: u32,
) -> Option<NetworkSpec> {
    if side + 2 * pad1 < k1 {
        return None;
    }
    let input = Shape3::square(side, 3);
    let g1 = ConvGeometry::new(input, FilterShape::new(k1, 3, c1), stride1, pad1);
    let s1 = g1.output();
    if s1.h + 2 * pad2 < k2 || s1.w + 2 * pad2 < k2 {
        return None;
    }
    let g2 = ConvGeometry::new(s1, FilterShape::new(k2, c1, c2), 1, pad2);
    let s2 = g2.output();
    if s2.h < 2 || s2.w < 2 {
        return None;
    }
    let pool_out = Shape3::new((s2.h - 2) / 2 + 1, (s2.w - 2) / 2 + 1, c2);
    Some(
        SpecBuilder::new("prop", input, act_bits)
            .conv_input(g1)
            .conv(g2)
            .pool(s2, 2, 2, 0, PoolKind::Max)
            .fully_connected(pool_out.len(), 5, false)
            .try_build()
            .expect("geometry pre-checked"),
    )
}

/// A random single-encoder transformer: 1×1 embedding, one encoder block,
/// logits over the flattened sequence. All sampled parameters are valid by
/// construction (`d_model` is derived as `heads · head_dim`), so unlike
/// [`random_spec`] there is no rejection path.
pub fn random_encoder_spec(
    seq_len: usize,
    heads: usize,
    head_dim: usize,
    ff_hidden: usize,
    act_bits: u32,
) -> NetworkSpec {
    let d_model = heads * head_dim;
    let input = Shape3::new(seq_len, 1, 3);
    let embed = ConvGeometry::new(input, FilterShape::new(1, 3, d_model), 1, 0);
    SpecBuilder::new("prop-encoder", input, act_bits)
        .conv_input(embed)
        .encoder(EncoderGeometry { seq_len, d_model, heads, head_dim, ff_hidden })
        .fully_connected(seq_len * d_model, 4, false)
        .try_build()
        .expect("derived encoder geometry is always consistent")
}

/// Strategy over single-encoder transformer specs, shrink-aware like
/// [`spec_strategy`]: failures shrink toward one head, one token, narrow
/// widths, no FFN.
pub fn encoder_spec_strategy() -> impl Strategy<Value = NetworkSpec> {
    map(
        (
            1usize..8, // seq_len
            1usize..5, // heads
            1usize..5, // head_dim
            0usize..9, // ff_hidden (0 disables the FFN)
            1u32..4,   // act_bits
        ),
        |(seq_len, heads, head_dim, ff_hidden, act_bits)| {
            random_encoder_spec(seq_len, heads, head_dim, ff_hidden, act_bits)
        },
        |spec| {
            let Stage::Encoder { geom } = spec.stages[1] else {
                return None;
            };
            Some((geom.seq_len, geom.heads, geom.head_dim, geom.ff_hidden, spec.act_bits))
        },
    )
}

/// Strategy over whole network specs: a geometry tuple mapped through
/// [`random_spec`], with the inverse recovering the tuple from the built
/// spec so a failing network shrinks toward small sides/kernels/channels
/// (plain mapping would freeze shrinking at the first failing geometry).
pub fn spec_strategy() -> impl Strategy<Value = Option<NetworkSpec>> {
    map(
        (
            5usize..12, // side
            1usize..4,  // k1
            1usize..3,  // stride1
            0usize..2,  // pad1
            1usize..5,  // c1
            1usize..3,  // k2
            0usize..2,  // pad2
            1usize..4,  // c2
            1u32..4,    // act_bits
        ),
        |(side, k1, stride1, pad1, c1, k2, pad2, c2, act_bits)| {
            random_spec(side, k1, stride1, pad1, c1, k2, pad2, c2, act_bits)
        },
        |spec| {
            let spec = spec.as_ref()?;
            let (Stage::ConvInput { geom: g1 }, Stage::Conv { geom: g2 }) =
                (&spec.stages[0], &spec.stages[1])
            else {
                return None;
            };
            Some((
                spec.input.h,
                g1.filter.k,
                g1.stride,
                g1.pad,
                g1.filter.o,
                g2.filter.k,
                g2.pad,
                g2.filter.o,
                spec.act_bits,
            ))
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degenerate_geometries_are_rejected() {
        // Kernel bigger than the padded input.
        assert!(random_spec(5, 6, 1, 0, 1, 1, 0, 1, 2).is_none());
        // Second conv bigger than the first conv's output.
        assert!(random_spec(5, 4, 1, 0, 1, 3, 0, 1, 2).is_none());
        // A sane small geometry builds.
        let spec = random_spec(8, 3, 1, 1, 2, 2, 0, 2, 2).expect("valid spec");
        assert_eq!(spec.stages.len(), 4);
    }
}
