//! End-to-end reference interpreter tests on small networks.

use qnn_nn::models;
use qnn_nn::Network;
use qnn_tensor::Tensor3;
use qnn_testkit::Rng;

fn random_image(side: usize, seed: u64) -> Tensor3<i8> {
    let mut rng = Rng::seed_from_u64(seed);
    Tensor3::from_fn(qnn_tensor::Shape3::square(side, 3), |_, _, _| rng.gen_range(-127i8..=127))
}

#[test]
fn test_net_forward_produces_logits() {
    let net = Network::random(models::test_net(8, 4, 2), 11);
    let out = net.forward(&random_image(8, 0));
    assert_eq!(out.logits.len(), 4);
    assert!(out.argmax() < 4);
}

#[test]
fn forward_is_deterministic() {
    let net = Network::random(models::test_net(8, 5, 2), 3);
    let img = random_image(8, 9);
    assert_eq!(net.forward(&img).logits, net.forward(&img).logits);
}

#[test]
fn different_images_usually_give_different_logits() {
    let net = Network::random(models::test_net(12, 6, 2), 4);
    let a = net.forward(&random_image(12, 1)).logits;
    let b = net.forward(&random_image(12, 2)).logits;
    assert_ne!(a, b, "network output is insensitive to its input");
}

#[test]
fn skip_values_fit_sixteen_bits() {
    // The paper passes skip data as 16-bit integers (§III-B5); the reference
    // interpreter records the worst case so we can check the claim holds for
    // realistic parameter scales.
    let net = Network::random(models::test_net(16, 4, 2), 7);
    let stats = net.forward(&random_image(16, 5)).stats;
    assert!(stats.max_abs_skip > 0, "skip path never exercised");
    assert!(
        stats.max_abs_skip <= i64::from(i16::MAX),
        "skip value {} overflows the paper's 16-bit path",
        stats.max_abs_skip
    );
}

#[test]
fn vgg_like_small_forward() {
    let net = Network::random(models::vgg_like(32, 10, 2), 21);
    let out = net.forward(&random_image(32, 4));
    assert_eq!(out.logits.len(), 10);
    // Logits should not all be identical (dead network).
    assert!(out.logits.iter().any(|&v| v != out.logits[0]));
}

#[test]
fn binary_activation_variant_runs() {
    let net = Network::random(models::vgg_like(32, 10, 1), 22);
    let out = net.forward(&random_image(32, 6));
    assert_eq!(out.logits.len(), 10);
}

#[test]
fn classify_agrees_with_argmax() {
    let net = Network::random(models::test_net(8, 4, 2), 2);
    let img = random_image(8, 3);
    assert_eq!(net.classify(&img), net.forward(&img).argmax());
}
