//! # qnn — streaming quantized neural networks on a simulated FPGA dataflow platform
//!
//! A Rust reproduction of *Baskin et al., "Streaming Architecture for
//! Large-Scale Quantized Neural Networks on an FPGA-Based Dataflow
//! Platform"* (2018). This facade re-exports the whole workspace:
//!
//! | module | contents |
//! |---|---|
//! | [`tensor`] | HWC tensors, bit-packed binary weights |
//! | [`quant`] | XNOR-popcount dot products, threshold-form BatchNorm+activation |
//! | [`nn`] | network IR, reference interpreter, ResNet-18 / AlexNet / CNV builders |
//! | [`dfe`] | the Maxeler-substitute dataflow platform (streams, kernels, schedulers, devices) |
//! | [`kernels`] | streaming conv / pool / threshold / skip kernels |
//! | [`compiler`] | lowering, multi-DFE partitioning, run helpers |
//! | [`hw`] | resource / cycle / power models and the GPU baseline |
//! | [`data`] | synthetic datasets and teacher-agreement evaluation |
//! | [`serve`] | multi-model serving runtime: registry, priority scheduling, hot weight swaps |
//! | [`cluster`] | cluster serving: wire protocol, TCP edges, sharding router, replica autoscaler |
//!
//! ## Quickstart
//!
//! ```
//! use qnn::nn::{models, Network};
//! use qnn::compiler::run_image;
//! use qnn::data::CIFAR10;
//!
//! // A small network with every architectural feature (conv, pool,
//! // residual blocks with skip connections, FC stack).
//! let net = Network::random(models::test_net(8, 4, 2), 42);
//! let img = qnn::tensor::Tensor3::from_fn(
//!     qnn::tensor::Shape3::square(8, 3),
//!     |y, x, c| ((y * 31 + x * 7 + c) % 255) as i8,
//! );
//! // Cycle-accurate streaming inference on the simulated DFE...
//! let sim = run_image(&net, &img).expect("simulation");
//! // ...matches the reference interpreter bit for bit.
//! assert_eq!(sim.logits[0], net.forward(&img).logits);
//! let _ = CIFAR10.image(0);
//! ```

pub use dfe_platform as dfe;
pub use qnn_cluster as cluster;
pub use hw_model as hw;
pub use qnn_compiler as compiler;
pub use qnn_data as data;
pub use qnn_kernels as kernels;
pub use qnn_nn as nn;
pub use qnn_quant as quant;
pub use qnn_serve as serve;
pub use qnn_tensor as tensor;
