//! Integer-exact attention arithmetic: activation×activation bit-plane
//! dot products (QKᵀ), a threshold-form softmax approximation, and an
//! integer LayerNorm — the numeric core of the quantized encoder block.
//!
//! Everything here is shared between the reference interpreter
//! (`qnn_nn::reference`) and the streaming kernels
//! (`qnn_kernels::attention`), so streaming-vs-reference bit-exactness
//! holds by construction: both sides call the *same* integer functions on
//! the same operands, in the same order.
//!
//! The softmax replacement follows the threshold-ladder idea used for
//! BatchNorm+activation elsewhere in this codebase (and in FINN-style
//! flows): instead of `exp(s − m)/Σexp`, each row score is mapped through
//! a **monotone integer weight ladder** keyed on its deficit from the row
//! maximum, and the attention output is the floor-division weighted
//! average of the value codes. The map is per-row shift-invariant (it
//! depends only on `m − s`), monotone in the score, and preserves the
//! row argmax — the properties the `./ci.sh soak` battery pins down.

use crate::planes::ActPlanes;

/// Bit width of the threshold-softmax weights: ladder outputs lie in
/// `0 ..= 2^SOFTMAX_WEIGHT_BITS − 1`. Four bits (15 levels) keeps the
/// weighted-average numerator comfortably inside `i64` for any geometry
/// this repo lowers while giving the ladder enough resolution that
/// distinct scores usually get distinct weights.
pub const SOFTMAX_WEIGHT_BITS: u32 = 4;

/// Activation×activation dot product over bit planes — the QKᵀ primitive.
///
/// With `q = Σ_i 2^i·q_i` and `k = Σ_j 2^j·k_j` (binary planes), the dot
/// product decomposes into plane pairs:
/// `q·k = Σ_{i,j} 2^{i+j} · popcount(q_i AND k_j)` — the same
/// AND-popcount datapath the weight·activation path uses, squared. This
/// is exactly `Σ_t q[t]·k[t]` for non-negative codes, so a scalar
/// multiply-accumulate reference agrees bit-for-bit.
pub fn dot_codes_pair(q: &ActPlanes, k: &ActPlanes) -> i32 {
    assert_eq!(q.len(), k.len(), "QKᵀ operand length mismatch");
    let mut acc: i64 = 0;
    for (i, qp) in q.planes().iter().enumerate() {
        for (j, kp) in k.planes().iter().enumerate() {
            acc += i64::from(qp.and_popcount(kp)) << (i + j);
        }
    }
    i32::try_from(acc).expect("QKᵀ accumulator overflow")
}

/// The monotone per-row threshold ladder replacing softmax.
///
/// For a row with maximum `m`, score `s` gets weight
/// `max(0, W_MAX − (m − s)/step)` — equivalently, the deficit `m − s` is
/// run down a ladder of `W_MAX` equally spaced integer thresholds
/// (`step, 2·step, …`), each crossing shedding one weight level. The row
/// maximum always lands on `W_MAX`, so the weight sum is never zero.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SoftmaxLadder {
    step: i32,
}

impl SoftmaxLadder {
    /// Ladder for QKᵀ scores of `head_dim`-wide rows of `act_bits` codes:
    /// the step spreads the worst-case score range
    /// `(2^act_bits − 1)² · head_dim` across the available weight levels.
    pub fn for_scores(act_bits: u32, head_dim: usize) -> Self {
        let code_max = (1i64 << act_bits) - 1;
        let max_score = code_max * code_max * head_dim as i64;
        let levels = (1i64 << SOFTMAX_WEIGHT_BITS) - 1;
        let step = (max_score / levels).max(1);
        Self {
            step: i32::try_from(step).expect("ladder step overflow"),
        }
    }

    /// Deficit per weight decrement (≥ 1).
    pub fn step(&self) -> i32 {
        self.step
    }

    /// Weight for a score `deficit` below the row maximum (deficit ≥ 0).
    pub fn weight(&self, deficit: i32) -> i32 {
        debug_assert!(deficit >= 0, "deficit must be relative to the row max");
        let w_max = (1i32 << SOFTMAX_WEIGHT_BITS) - 1;
        (w_max - deficit / self.step).max(0)
    }

    /// Weights for one score row (non-empty), each in `0 ..= 2^b − 1`,
    /// with the row maximum mapped to `2^b − 1`.
    pub fn weights_row(&self, scores: &[i32]) -> Vec<i32> {
        let m = scores.iter().copied().max().expect("non-empty score row");
        scores.iter().map(|&s| self.weight(m - s)).collect()
    }
}

/// Floor-division weighted average of value codes — the AV primitive.
/// `value(u)` supplies the value code of sequence position `u`. The
/// result is again a valid activation code (a weighted average never
/// escapes the operand range), so no re-quantization step is needed.
///
/// # Panics
/// Panics when all weights are zero; [`SoftmaxLadder::weights_row`]
/// guarantees at least the row maximum carries full weight.
pub fn weighted_average<F: Fn(usize) -> u8>(weights: &[i32], value: F) -> u8 {
    let mut num: i64 = 0;
    let mut den: i64 = 0;
    for (u, &w) in weights.iter().enumerate() {
        num += i64::from(w) * i64::from(value(u));
        den += i64::from(w);
    }
    assert!(den > 0, "softmax weight row summed to zero");
    u8::try_from(num / den).expect("weighted average escaped code range")
}

/// Integer square root: `⌊√x⌋` by Newton iteration on `u64`.
pub fn isqrt(x: u64) -> u64 {
    if x < 2 {
        return x;
    }
    let mut r = 1u64 << (x.ilog2() / 2 + 1);
    loop {
        let next = (r + x / r) / 2;
        if next >= r {
            return r;
        }
        r = next;
    }
}

/// Integer LayerNorm over one token's accumulator row, emitting codes.
///
/// Brainsmith-style normalize-then-requantize, all in integers:
/// `μ = ⌊Σx/n⌋`, `σ = ⌊√(Σ(x−μ)²/n)⌋ + 1` (the +1 keeps the divisor
/// positive and is absorbed by the learned gains), then each channel maps
/// through the monotone clamp
/// `clamp(⌊(x − μ)·g_c / 2σ⌋ + 2^(b−1), 0, 2^b − 1)` — centering the mean
/// on the mid code and spreading ±2σ/g across the code range. Euclidean
/// division keeps the map monotone across the sign change.
pub fn layernorm_codes(row: &[i32], gains: &[i32], act_bits: u32) -> Vec<u8> {
    assert_eq!(row.len(), gains.len(), "one gain per channel");
    assert!(!row.is_empty(), "LayerNorm over an empty row");
    let n = row.len() as i64;
    let sum: i64 = row.iter().map(|&x| i64::from(x)).sum();
    let mean = sum.div_euclid(n);
    let var: i64 = row
        .iter()
        .map(|&x| {
            let d = i64::from(x) - mean;
            d * d
        })
        .sum::<i64>()
        / n;
    let sigma = isqrt(var as u64) as i64 + 1;
    let levels = 1i64 << act_bits;
    let half = levels / 2;
    row.iter()
        .zip(gains)
        .map(|(&x, &g)| {
            assert!(g > 0, "LayerNorm gains must be positive");
            let centered = (i64::from(x) - mean) * i64::from(g);
            let q = centered.div_euclid(2 * sigma) + half;
            q.clamp(0, levels - 1) as u8
        })
        .collect()
}

/// One attention head over a full sequence, integer-exact.
///
/// `q`/`k`/`v` are `seq_len × head_dim` code rows (token-major, row
/// `t` at `t·head_dim ..`). Returns the `seq_len × head_dim` output codes
/// in the same layout. This is the single implementation both the
/// reference interpreter and `AttentionHeadKernel` execute.
pub fn head_attention(act_bits: u32, head_dim: usize, q: &[u8], k: &[u8], v: &[u8]) -> Vec<u8> {
    assert!(head_dim > 0, "head_dim must be positive");
    assert_eq!(q.len(), k.len());
    assert_eq!(q.len(), v.len());
    assert_eq!(q.len() % head_dim, 0, "rows must tile the sequence");
    let seq_len = q.len() / head_dim;
    let ladder = SoftmaxLadder::for_scores(act_bits, head_dim);
    let k_planes: Vec<ActPlanes> = (0..seq_len)
        .map(|u| ActPlanes::from_codes(act_bits, &k[u * head_dim..(u + 1) * head_dim]))
        .collect();
    let mut out = Vec::with_capacity(q.len());
    for t in 0..seq_len {
        let q_planes = ActPlanes::from_codes(act_bits, &q[t * head_dim..(t + 1) * head_dim]);
        let scores: Vec<i32> = k_planes
            .iter()
            .map(|kp| dot_codes_pair(&q_planes, kp))
            .collect();
        let weights = ladder.weights_row(&scores);
        for d in 0..head_dim {
            out.push(weighted_average(&weights, |u| v[u * head_dim + d]));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn planes(bits: u32, codes: &[u8]) -> ActPlanes {
        ActPlanes::from_codes(bits, codes)
    }

    #[test]
    fn plane_pair_dot_matches_scalar_multiply() {
        let q = [3u8, 0, 1, 2, 3, 1];
        let k = [1u8, 2, 3, 0, 2, 2];
        let expect: i32 = q.iter().zip(&k).map(|(&a, &b)| i32::from(a) * i32::from(b)).sum();
        assert_eq!(dot_codes_pair(&planes(2, &q), &planes(2, &k)), expect);
    }

    #[test]
    fn plane_pair_dot_binary_codes() {
        let q = [1u8, 0, 1, 1];
        let k = [1u8, 1, 0, 1];
        assert_eq!(dot_codes_pair(&planes(1, &q), &planes(1, &k)), 2);
    }

    #[test]
    fn ladder_is_monotone_and_tops_out_at_zero_deficit() {
        let ladder = SoftmaxLadder::for_scores(2, 8);
        assert_eq!(ladder.weight(0), 15);
        let mut prev = i32::MAX;
        for d in 0..200 {
            let w = ladder.weight(d);
            assert!(w <= prev, "ladder must be non-increasing in deficit");
            assert!((0..=15).contains(&w));
            prev = w;
        }
    }

    #[test]
    fn weights_row_is_shift_invariant() {
        let ladder = SoftmaxLadder::for_scores(2, 4);
        let row = [5, 17, 9, 17, 0];
        let shifted: Vec<i32> = row.iter().map(|s| s + 11).collect();
        assert_eq!(ladder.weights_row(&row), ladder.weights_row(&shifted));
    }

    #[test]
    fn weighted_average_stays_in_operand_range() {
        let w = [15, 3, 0, 7];
        let v = [3u8, 1, 0, 2];
        let avg = weighted_average(&w, |u| v[u]);
        assert!(avg <= 3);
        // Exact: (15·3 + 3·1 + 0 + 7·2) / 25 = 62/25 = 2.
        assert_eq!(avg, 2);
    }

    #[test]
    fn isqrt_is_exact_floor() {
        for x in 0u64..5000 {
            let r = isqrt(x);
            assert!(r * r <= x && (r + 1) * (r + 1) > x, "isqrt({x}) = {r}");
        }
        assert_eq!(isqrt(u64::MAX), (1u64 << 32) - 1);
    }

    #[test]
    fn layernorm_is_monotone_in_each_channel() {
        let gains = vec![2, 1, 3, 1];
        let row_lo = [-40, 10, 0, 25];
        let mut row_hi = row_lo;
        row_hi[2] += 13;
        let lo = layernorm_codes(&row_lo, &gains, 2);
        let hi = layernorm_codes(&row_hi, &gains, 2);
        assert!(hi[2] >= lo[2], "raising a channel cannot lower its code");
    }

    #[test]
    fn layernorm_codes_are_in_range_and_constant_rows_map_to_mid() {
        let gains = vec![1; 6];
        let row = [7; 6];
        let codes = layernorm_codes(&row, &gains, 2);
        assert_eq!(codes, vec![2; 6], "zero deviation lands on the mid code");
        let wild = [i32::MAX / 4, i32::MIN / 4, 0, 1, -1, 100];
        for &c in &layernorm_codes(&wild, &gains, 2) {
            assert!(c <= 3);
        }
    }

    #[test]
    fn head_attention_uniform_keys_average_values() {
        // All keys identical ⇒ all scores equal ⇒ all weights equal ⇒
        // plain floor-average of the value column.
        let q = [1u8, 2, 3, 0, 1, 2];
        let k = [2u8, 2, 2, 2, 2, 2];
        let v = [0u8, 1, 3, 2, 1, 0];
        let out = head_attention(2, 3, &q, &k, &v);
        // Columns: d0 ∈ {0,2} → 1; d1 ∈ {1,1} → 1; d2 ∈ {3,0} → 1.
        assert_eq!(out, vec![1, 1, 1, 1, 1, 1]);
    }

    #[test]
    fn head_attention_sharp_max_selects_matching_value_row() {
        // One key aligned with the query and one orthogonal, with a score
        // gap wider than the full ladder ⇒ the aligned row dominates.
        let head_dim = 16;
        let q = vec![3u8; head_dim];
        let mut k = vec![3u8; head_dim];
        k.extend(std::iter::repeat_n(0u8, head_dim));
        let mut q2 = q.clone();
        q2.extend(std::iter::repeat_n(3u8, head_dim));
        let mut v = vec![3u8; head_dim];
        v.extend(std::iter::repeat_n(0u8, head_dim));
        let out = head_attention(2, head_dim, &q2, &k, &v);
        assert_eq!(&out[..head_dim], vec![3u8; head_dim].as_slice());
    }
}
