//! Batch-normalization parameters in the paper's notation.

/// Per-neuron BatchNorm parameters Θₖ = (γₖ, µₖ, iₖ, Bₖ) (paper §III-B3,
/// following FINN's notation):
///
/// `BatchNorm(a, Θ) = γ · (a − µ) · i + B`
///
/// where `i = 1/σ` is the reciprocal of the running standard deviation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BnParams {
    /// Scale γ.
    pub gamma: f32,
    /// Running mean µ.
    pub mu: f32,
    /// Reciprocal standard deviation i = 1/σ.
    pub inv_sigma: f32,
    /// Shift B.
    pub beta: f32,
}

impl BnParams {
    /// Identity normalization (γ=1, µ=0, i=1, B=0).
    pub const IDENTITY: Self = Self { gamma: 1.0, mu: 0.0, inv_sigma: 1.0, beta: 0.0 };

    /// Construct from the four raw parameters.
    pub fn new(gamma: f32, mu: f32, inv_sigma: f32, beta: f32) -> Self {
        Self { gamma, mu, inv_sigma, beta }
    }

    /// Apply the affine normalization to a pre-activation value.
    #[inline]
    pub fn apply(&self, a: f32) -> f32 {
        self.gamma * (a - self.mu) * self.inv_sigma + self.beta
    }

    /// Combined slope `γ·i` of the affine map. Its sign decides whether the
    /// map is monotonically increasing or decreasing, which the threshold
    /// unit must honor.
    #[inline]
    pub fn slope(&self) -> f32 {
        self.gamma * self.inv_sigma
    }

    /// The zero crossing τ = µ − B/(γ·i) (paper §III-B3). `None` when the
    /// slope is zero (degenerate constant normalization).
    pub fn tau(&self) -> Option<f32> {
        let s = self.slope();
        if s == 0.0 {
            None
        } else {
            Some(self.mu - self.beta / s)
        }
    }

    /// The pre-activation value solving `BatchNorm(t, Θ) = y`:
    /// `t = τ + y/(γ·i)`. `None` when the slope is zero.
    pub fn preimage(&self, y: f32) -> Option<f32> {
        let s = self.slope();
        if s == 0.0 {
            None
        } else {
            Some(self.mu + (y - self.beta) / s)
        }
    }

    /// On-chip storage footprint in bits: the paper stores the two derived
    /// parameters (τ and the range step) as one 64-bit word per neuron
    /// (§III-B1a: "stored as a single 64-bit number").
    pub const STORAGE_BITS: usize = 64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_identity() {
        for a in [-3.5f32, 0.0, 1.0, 100.25] {
            assert_eq!(BnParams::IDENTITY.apply(a), a);
        }
    }

    #[test]
    fn apply_matches_formula() {
        let bn = BnParams::new(2.0, 1.0, 0.5, -3.0);
        // 2·(5−1)·0.5 − 3 = 1
        assert_eq!(bn.apply(5.0), 1.0);
    }

    #[test]
    fn tau_is_zero_crossing() {
        let bn = BnParams::new(1.5, 2.0, 0.25, -0.75);
        let tau = bn.tau().unwrap();
        assert!(bn.apply(tau).abs() < 1e-6);
    }

    #[test]
    fn preimage_inverts_apply() {
        let bn = BnParams::new(-0.8, 3.0, 1.2, 0.4);
        for y in [-2.0f32, 0.0, 1.0, 7.5] {
            let t = bn.preimage(y).unwrap();
            assert!((bn.apply(t) - y).abs() < 1e-4, "y={y} t={t}");
        }
    }

    #[test]
    fn degenerate_slope_yields_none() {
        let bn = BnParams::new(0.0, 1.0, 1.0, 0.5);
        assert_eq!(bn.tau(), None);
        assert_eq!(bn.preimage(1.0), None);
    }

    #[test]
    fn preimage_step_is_d_over_slope() {
        // Endpoints are τ + α·[d/(γ·i)] (paper §III-B3): consecutive
        // preimages must differ by exactly d/slope.
        let bn = BnParams::new(1.3, -0.7, 0.9, 0.2);
        let d = 0.5f32;
        let t1 = bn.preimage(d).unwrap();
        let t2 = bn.preimage(2.0 * d).unwrap();
        assert!(((t2 - t1) - d / bn.slope()).abs() < 1e-5);
    }
}
