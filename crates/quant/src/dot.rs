//! Dot products between binary (±1) weights and the three operand kinds that
//! occur in the paper's networks.
//!
//! | operand | where it appears | primitive |
//! |---|---|---|
//! | ±1 activations | pure BNN layers (FINN comparison) | XNOR-popcount |
//! | n-bit codes `{0..2ⁿ−1}` | hidden layers with 2-bit activations | per-plane AND-popcount |
//! | `i8` fixed-point pixels | first layer (image input streamed from CPU) | signed add/sub |

use qnn_tensor::BitVec;

/// ±1 · ±1 dot product via XNOR-popcount: `2·agreements − n` (paper §III-B1).
#[inline]
pub fn dot_pm1(weights: &BitVec, acts: &BitVec) -> i32 {
    2 * weights.xnor_popcount(acts) as i32 - weights.len() as i32
}

/// ±1 weights against one unsigned binary plane (`{0,1}` per element):
/// `Σ w·b = 2·popcount(w ∧ b) − popcount(b)`.
#[inline]
pub fn dot_plane(weights: &BitVec, plane: &BitVec) -> i32 {
    2 * weights.and_popcount(plane) as i32 - plane.count_ones() as i32
}

/// ±1 weights against n-bit unsigned activation codes decomposed into bit
/// planes (`planes[p]` holds bit `p` of every code):
/// `Σ w·q = Σ_p 2ᵖ · (Σ w·b_p)`.
#[inline]
pub fn dot_planes(weights: &BitVec, planes: &[BitVec]) -> i32 {
    planes
        .iter()
        .enumerate()
        .map(|(p, plane)| dot_plane(weights, plane) << p)
        .sum()
}

/// Reference (slow) version of [`dot_planes`] operating on raw codes.
#[inline]
pub fn dot_codes(weights: &BitVec, codes: &[u8]) -> i32 {
    assert_eq!(weights.len(), codes.len(), "dot_codes length mismatch");
    codes
        .iter()
        .enumerate()
        .map(|(i, &q)| weights.sign(i) * i32::from(q))
        .sum()
}

/// ±1 weights against signed 8-bit fixed-point inputs — the first-layer path,
/// where images are streamed from the CPU at full precision (paper §IV-B3).
#[inline]
pub fn dot_i8(weights: &BitVec, pixels: &[i8]) -> i32 {
    assert_eq!(weights.len(), pixels.len(), "dot_i8 length mismatch");
    pixels
        .iter()
        .enumerate()
        .map(|(i, &v)| weights.sign(i) * i32::from(v))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnn_tensor::BitVec;

    fn mk_weights(n: usize, seed: u64) -> (BitVec, Vec<i32>) {
        let bools: Vec<bool> = (0..n).map(|i| (i as u64).wrapping_mul(seed) % 7 < 3).collect();
        let signs = bools.iter().map(|&b| if b { 1 } else { -1 }).collect();
        (BitVec::from_bools(&bools), signs)
    }

    #[test]
    fn dot_pm1_matches_naive() {
        let n = 147; // 7·7·3, the ResNet conv1 filter size
        let (w, ws) = mk_weights(n, 11);
        let (x, xs) = mk_weights(n, 29);
        let naive: i32 = ws.iter().zip(&xs).map(|(a, b)| a * b).sum();
        assert_eq!(dot_pm1(&w, &x), naive);
    }

    #[test]
    fn dot_planes_matches_dot_codes_2bit() {
        let n = 576; // 3·3·64
        let (w, _) = mk_weights(n, 13);
        let codes: Vec<u8> = (0..n).map(|i| ((i * 5) % 4) as u8).collect();
        let plane0 = BitVec::from_bools(&codes.iter().map(|q| q & 1 == 1).collect::<Vec<_>>());
        let plane1 = BitVec::from_bools(&codes.iter().map(|q| q & 2 == 2).collect::<Vec<_>>());
        assert_eq!(dot_planes(&w, &[plane0, plane1]), dot_codes(&w, &codes));
    }

    #[test]
    fn dot_planes_handles_more_bits() {
        let n = 100;
        let (w, _) = mk_weights(n, 17);
        let codes: Vec<u8> = (0..n).map(|i| ((i * 7) % 16) as u8).collect();
        let planes: Vec<BitVec> = (0..4)
            .map(|p| BitVec::from_bools(&codes.iter().map(|q| (q >> p) & 1 == 1).collect::<Vec<_>>()))
            .collect();
        assert_eq!(dot_planes(&w, &planes), dot_codes(&w, &codes));
    }

    #[test]
    fn dot_i8_matches_naive() {
        let n = 363; // 11·11·3, AlexNet conv1
        let (w, ws) = mk_weights(n, 23);
        let pixels: Vec<i8> = (0..n).map(|i| ((i as i32 * 37) % 255 - 127) as i8).collect();
        let naive: i32 = ws.iter().zip(&pixels).map(|(s, &p)| s * i32::from(p)).sum();
        assert_eq!(dot_i8(&w, &pixels), naive);
    }

    #[test]
    fn all_zero_codes_give_zero() {
        let (w, _) = mk_weights(64, 3);
        assert_eq!(dot_codes(&w, &[0u8; 64]), 0);
        assert_eq!(dot_planes(&w, &[BitVec::zeros(64), BitVec::zeros(64)]), 0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_codes_length_mismatch() {
        let (w, _) = mk_weights(8, 3);
        let _ = dot_codes(&w, &[0u8; 9]);
    }
}
