//! Blocked accumulator precompute: all `O` filter accumulators of one
//! latched convolution window in a single weights-stationary pass.
//!
//! The emit loop of the streaming conv kernel produces one filter result
//! per modeled clock (paper §III-B1: one weight-cache address per cycle).
//! The scalar datapath re-walks the packed window once *per emit tick*;
//! here the whole `O × (K·K·I)` bit-GEMM runs once at latch time, register-
//! blocked over filters so each window word is loaded once per
//! [`FILTER_BLOCK`] filters, and the filter rows — the big operand, the
//! paper's weight cache — stream through exactly once. Each emit tick then
//! pops a precomputed accumulator.
//!
//! Per filter the arithmetic is *identical* to [`ActPlanes::dot`]
//! (AND-popcount per plane, `(2·agree − ones) << p`, planes summed in
//! ascending order), so accumulators — and therefore outputs and modeled
//! cycle counts — are bit-identical to the scalar datapath. That identity
//! is enforced by unit tests here, the kernel-level differential property
//! suite, and the golden vectors.

use crate::planes::ActPlanes;
use qnn_tensor::BinaryFilters;

/// Filters processed per register block of the word-level pass.
const FILTER_BLOCK: usize = 4;

/// Compute every filter's accumulator for one packed window:
/// `acc[o] = window.dot(filters.filter(o))` for all `o`, in one blocked
/// word-level pass.
///
/// # Panics
/// Panics if `acc.len() != filters.num_filters()` or the filter width
/// differs from the window length.
pub fn conv_accumulate_all(filters: &BinaryFilters, window: &ActPlanes, acc: &mut [i32]) {
    assert_eq!(acc.len(), filters.num_filters(), "one accumulator per filter");
    assert_eq!(
        filters.bits_per_filter(),
        window.len(),
        "filter width must match the window"
    );
    let nf = filters.num_filters();
    let mut o = 0;
    while o + FILTER_BLOCK <= nf {
        let (a0, a1, a2, a3) = block4(
            filters.filter(o).words(),
            filters.filter(o + 1).words(),
            filters.filter(o + 2).words(),
            filters.filter(o + 3).words(),
            window,
        );
        acc[o] = a0;
        acc[o + 1] = a1;
        acc[o + 2] = a2;
        acc[o + 3] = a3;
        o += FILTER_BLOCK;
    }
    // Tail filters: per-filter dots, arithmetically the same plane sum.
    for (t, a) in acc.iter_mut().enumerate().skip(o) {
        *a = window.dot(filters.filter(t));
    }
}

/// One register block: four filters against every plane of the window.
/// Slicing all four rows to the plane's word count up front lets the inner
/// loop run bounds-check-free, and four independent accumulator chains keep
/// the popcount unit busy — this is where the blocked pass beats four
/// sequential [`ActPlanes::dot`] calls.
///
/// Per filter the result is exactly `Σ_p (2·agreeₚ − onesₚ) << p` with
/// planes ascending — the [`ActPlanes::dot`] formula, term for term.
fn block4(r0: &[u64], r1: &[u64], r2: &[u64], r3: &[u64], window: &ActPlanes) -> (i32, i32, i32, i32) {
    let (mut s0, mut s1, mut s2, mut s3) = (0i32, 0i32, 0i32, 0i32);
    for (p, plane) in window.planes().iter().enumerate() {
        let w = plane.words();
        let n = w.len();
        let (r0, r1, r2, r3) = (&r0[..n], &r1[..n], &r2[..n], &r3[..n]);
        let (mut a0, mut a1, mut a2, mut a3) = (0u32, 0u32, 0u32, 0u32);
        for j in 0..n {
            let x = w[j];
            a0 += (r0[j] & x).count_ones();
            a1 += (r1[j] & x).count_ones();
            a2 += (r2[j] & x).count_ones();
            a3 += (r3[j] & x).count_ones();
        }
        let ones = window.plane_ones(p);
        s0 += (2 * a0 as i32 - ones) << p;
        s1 += (2 * a1 as i32 - ones) << p;
        s2 += (2 * a2 as i32 - ones) << p;
        s3 += (2 * a3 as i32 - ones) << p;
    }
    (s0, s1, s2, s3)
}

/// Expand 8 filter bits into 8 byte lanes of `0xFF`/`0x00` — the select
/// mask of the SWAR first-layer kernel. Built at compile time.
const fn byte_masks() -> [u64; 256] {
    let mut table = [0u64; 256];
    let mut b = 0usize;
    while b < 256 {
        let mut m = 0u64;
        let mut j = 0;
        while j < 8 {
            if (b >> j) & 1 == 1 {
                m |= 0xFF << (8 * j);
            }
            j += 1;
        }
        table[b] = m;
        b += 1;
    }
    table
}
const BYTE_MASKS: [u64; 256] = byte_masks();

/// First-layer (i8 pixel) counterpart: `acc[o] = dot_i8(filters.filter(o),
/// pixels)` for all `o`.
///
/// A ±1 dot over signed pixels is `2·S₁ − T`, where `T = Σ pxⱼ` is
/// filter-independent (computed once per window) and `S₁ = Σ_{wⱼ=1} pxⱼ`
/// is a masked byte sum: pixels are offset to unsigned bytes once, then
/// each 8-bit filter chunk selects its 8 pixel bytes via a mask table and
/// a SWAR horizontal add folds them — ~8 ops per 8 pixels against
/// [`dot_i8`]'s ~5 per pixel. Every step is exact integer arithmetic
/// (`S₁ = S₁ᵤ − 128·popcount(w)`, no lane can overflow), so the values are
/// bit-identical to the scalar datapath's per-emit-tick [`dot_i8`].
///
/// # Panics
/// Panics if `acc.len() != filters.num_filters()` or the filter width
/// differs from the pixel count.
pub fn conv_accumulate_all_i8(filters: &BinaryFilters, pixels: &[i8], acc: &mut [i32]) {
    assert_eq!(acc.len(), filters.num_filters(), "one accumulator per filter");
    assert_eq!(
        filters.bits_per_filter(),
        pixels.len(),
        "filter width must match the window"
    );
    let n = pixels.len();
    // Pixels offset by +128 into unsigned byte lanes, 8 per word, in the
    // same element order as the filter bits; padding bytes stay zero and
    // are never selected (trailing filter bits are zero by invariant).
    let mut px = vec![0u64; n.div_ceil(8)];
    for (i, &p) in pixels.iter().enumerate() {
        px[i / 8] |= ((p as i32 + 128) as u64) << (8 * (i % 8));
    }
    let total: i32 = pixels.iter().map(|&p| i32::from(p)).sum();
    const LANES: u64 = 0x00FF_00FF_00FF_00FF;
    for (o, a) in acc.iter_mut().enumerate() {
        let row = filters.filter(o).words();
        let mut s1u = 0u32; // Σ over set filter bits of (px + 128)
        let mut ones = 0u32;
        for (c, &w) in row.iter().enumerate() {
            ones += w.count_ones();
            let mut wb = w;
            for &chunk in px[c * 8..].iter().take(8) {
                let sel = chunk & BYTE_MASKS[(wb & 0xFF) as usize];
                wb >>= 8;
                // Bytes → u16 lanes → one u16 horizontal sum (≤ 8·255).
                let pair = (sel & LANES) + ((sel >> 8) & LANES);
                s1u += (pair.wrapping_mul(0x0001_0001_0001_0001) >> 48) as u32;
            }
        }
        *a = 2 * (s1u as i32 - 128 * ones as i32) - total;
    }
}

/// Scalar-reference mirror of [`conv_accumulate_all`] for tests and the
/// `kernels_micro` bench: the per-emit-tick loop the packed datapath
/// replaces, one full window dot per filter.
pub fn conv_accumulate_all_reference(filters: &BinaryFilters, window: &ActPlanes, acc: &mut [i32]) {
    assert_eq!(acc.len(), filters.num_filters(), "one accumulator per filter");
    for (o, a) in acc.iter_mut().enumerate() {
        *a = window.dot(filters.filter(o));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dot::dot_i8;

    fn bank(o: usize, n: usize, seed: u64) -> BinaryFilters {
        let w: Vec<f32> = (0..o * n)
            .map(|i| {
                if (i as u64).wrapping_mul(seed * 2 + 1) % 5 < 2 {
                    1.0
                } else {
                    -1.0
                }
            })
            .collect();
        BinaryFilters::from_float_rows(&w, n)
    }

    #[test]
    fn blocked_gemm_matches_per_filter_dot() {
        // Filter counts around the block size and widths around word
        // boundaries, 1–3 activation bits.
        for &o in &[1usize, 3, 4, 5, 8, 17] {
            for &n in &[1usize, 63, 64, 65, 147, 576] {
                for bits in 1..=3u32 {
                    let filters = bank(o, n, (o + n) as u64);
                    let codes: Vec<u8> =
                        (0..n).map(|i| ((i * 7 + o) % (1 << bits)) as u8).collect();
                    let window = ActPlanes::from_codes(bits, &codes);
                    let mut got = vec![0; o];
                    let mut expect = vec![0; o];
                    conv_accumulate_all(&filters, &window, &mut got);
                    conv_accumulate_all_reference(&filters, &window, &mut expect);
                    assert_eq!(got, expect, "o={o} n={n} bits={bits}");
                }
            }
        }
    }

    #[test]
    fn i8_precompute_matches_per_filter_dot() {
        // Widths across byte and word boundaries (the SWAR path selects
        // 8 pixels per mask lookup), extreme pixel values included.
        for &n in &[1usize, 7, 8, 9, 63, 64, 65, 147, 363] {
            for &o in &[1usize, 5, 6] {
                let filters = bank(o, n, (3 * o + n) as u64);
                let pixels: Vec<i8> = (0..n)
                    .map(|i| match i % 5 {
                        0 => 127,
                        1 => -127,
                        _ => ((i as i32 * 37) % 255 - 127) as i8,
                    })
                    .collect();
                let mut got = vec![0; o];
                conv_accumulate_all_i8(&filters, &pixels, &mut got);
                for (idx, &a) in got.iter().enumerate() {
                    assert_eq!(
                        a,
                        dot_i8(filters.filter(idx), &pixels),
                        "o={o} n={n} filter {idx}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "filter width must match")]
    fn i8_precompute_rejects_window_size_mismatch() {
        let filters = bank(4, 8, 1);
        conv_accumulate_all_i8(&filters, &[0; 9], &mut [0; 4]);
    }

    #[test]
    #[should_panic(expected = "one accumulator per filter")]
    fn gemm_rejects_wrong_accumulator_count() {
        let filters = bank(4, 8, 1);
        let window = ActPlanes::from_codes(2, &[0; 8]);
        conv_accumulate_all(&filters, &window, &mut [0; 3]);
    }

    #[test]
    #[should_panic(expected = "filter width must match")]
    fn gemm_rejects_window_size_mismatch() {
        let filters = bank(4, 8, 1);
        let window = ActPlanes::from_codes(2, &[0; 9]);
        conv_accumulate_all(&filters, &window, &mut [0; 4]);
    }
}
