//! Quantization arithmetic for the streaming QNN architecture.
//!
//! Implements the numeric core of Baskin et al.:
//!
//! * **1-bit weights** via the `Sign` transform (bit 1 ⇔ +1, bit 0 ⇔ −1),
//!   with element-wise multiply–accumulate replaced by **XNOR-popcount**
//!   (paper §III-B1).
//! * **n-bit uniform activations** (the paper uses n = 2): the activation
//!   value *is* its integer code `q ∈ {0, …, 2ⁿ−1}`; affine scale/offset is
//!   absorbed into the next layer's batch-normalization thresholds, exactly
//!   as in FINN and its multi-bit extension (paper §III-B3).
//! * **Threshold-form BatchNorm + activation**: BatchNorm followed by n-bit
//!   quantization collapses into `2ⁿ−1` precomputed integer thresholds and a
//!   binary search — two stored parameters (τ and d/(γ·i)) per neuron.
//! * **Bit-plane dot products** for multi-bit activations: a 2-bit activation
//!   splits into two binary planes with weights 1 and 2, each handled by an
//!   AND-popcount against the weight bits.
//!
//! Every fast path here has a slow, obviously-correct reference counterpart
//! and a test (or property test) proving equality.

pub mod attention;
pub mod batchnorm;
pub mod dot;
pub mod gemm;
pub mod planes;
pub mod ring;
pub mod threshold;

pub use attention::{
    dot_codes_pair, head_attention, isqrt, layernorm_codes, weighted_average, SoftmaxLadder,
    SOFTMAX_WEIGHT_BITS,
};
pub use batchnorm::BnParams;
pub use dot::{dot_codes, dot_i8, dot_planes, dot_pm1};
pub use gemm::{conv_accumulate_all, conv_accumulate_all_i8, conv_accumulate_all_reference};
pub use planes::ActPlanes;
pub use ring::PlaneRing;
pub use threshold::{QuantSpec, ThresholdUnit};
