//! Bit-plane packing of n-bit activation codes.
//!
//! A window of `K·K·I` activation codes is decomposed into `n` binary planes
//! so the convolution can run one AND-popcount per plane per filter — the
//! multi-bit generalization of the XNOR-popcount pipeline (paper Fig. 3
//! shows the 2-bit case).

use crate::dot;
use qnn_tensor::BitVec;

/// A reusable set of `n` bit planes over a fixed element count.
#[derive(Clone, Debug)]
pub struct ActPlanes {
    planes: Vec<BitVec>,
    len: usize,
}

impl ActPlanes {
    /// Allocate planes for `len` codes of `bits` bits each.
    pub fn new(bits: u32, len: usize) -> Self {
        assert!((1..=8).contains(&bits), "activation bits must be in 1..=8");
        Self { planes: (0..bits).map(|_| BitVec::zeros(len)).collect(), len }
    }

    /// Pack codes into the planes, reusing storage. `codes.len()` must equal
    /// the configured length.
    pub fn pack(&mut self, codes: &[u8]) {
        assert_eq!(codes.len(), self.len, "ActPlanes::pack length mismatch");
        for (p, plane) in self.planes.iter_mut().enumerate() {
            for (i, &q) in codes.iter().enumerate() {
                plane.set(i, (q >> p) & 1 == 1);
            }
        }
    }

    /// Convenience constructor: allocate and pack in one step.
    pub fn from_codes(bits: u32, codes: &[u8]) -> Self {
        let mut s = Self::new(bits, codes.len());
        s.pack(codes);
        s
    }

    /// Number of planes (activation bits).
    #[inline]
    pub fn bits(&self) -> u32 {
        self.planes.len() as u32
    }

    /// Number of codes per plane.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the planes hold no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The underlying planes, least-significant first.
    #[inline]
    pub fn planes(&self) -> &[BitVec] {
        &self.planes
    }

    /// Dot product of ±1 weights against the packed codes.
    #[inline]
    pub fn dot(&self, weights: &BitVec) -> i32 {
        dot::dot_planes(weights, &self.planes)
    }

    /// Recover the code at position `i` (for debugging/verification).
    pub fn code(&self, i: usize) -> u8 {
        self.planes
            .iter()
            .enumerate()
            .map(|(p, plane)| u8::from(plane.get(i)) << p)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        let codes: Vec<u8> = (0..50).map(|i| (i % 4) as u8).collect();
        let planes = ActPlanes::from_codes(2, &codes);
        for (i, &q) in codes.iter().enumerate() {
            assert_eq!(planes.code(i), q);
        }
    }

    #[test]
    fn dot_equals_reference() {
        let codes: Vec<u8> = (0..129).map(|i| ((i * 3) % 4) as u8).collect();
        let planes = ActPlanes::from_codes(2, &codes);
        let wbools: Vec<bool> = (0..129).map(|i| i % 5 < 2).collect();
        let w = BitVec::from_bools(&wbools);
        assert_eq!(planes.dot(&w), dot::dot_codes(&w, &codes));
    }

    #[test]
    fn repack_overwrites_previous_contents() {
        let mut planes = ActPlanes::new(2, 8);
        planes.pack(&[3, 3, 3, 3, 3, 3, 3, 3]);
        planes.pack(&[0, 1, 2, 3, 0, 1, 2, 3]);
        assert_eq!(planes.code(0), 0);
        assert_eq!(planes.code(3), 3);
        assert_eq!(planes.code(6), 2);
    }

    #[test]
    fn binary_planes_have_one_plane() {
        let planes = ActPlanes::from_codes(1, &[0, 1, 1, 0]);
        assert_eq!(planes.bits(), 1);
        assert_eq!(planes.code(1), 1);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn pack_wrong_length_panics() {
        let mut planes = ActPlanes::new(2, 4);
        planes.pack(&[0, 1, 2]);
    }
}
