//! Bit-plane packing of n-bit activation codes.
//!
//! A window of `K·K·I` activation codes is decomposed into `n` binary planes
//! so the convolution can run one AND-popcount per plane per filter — the
//! multi-bit generalization of the XNOR-popcount pipeline (paper Fig. 3
//! shows the 2-bit case).

use qnn_tensor::bits::WORD_BITS;
use qnn_tensor::BitVec;

/// A reusable set of `n` bit planes over a fixed element count.
#[derive(Clone, Debug)]
pub struct ActPlanes {
    planes: Vec<BitVec>,
    /// Per-plane popcount, maintained by [`ActPlanes::pack`] so the dot
    /// product does not rescan the plane once per filter — all `O` filters
    /// of a convolution share one packed window.
    ones: Vec<i32>,
    len: usize,
}

impl ActPlanes {
    /// Allocate planes for `len` codes of `bits` bits each.
    pub fn new(bits: u32, len: usize) -> Self {
        assert!((1..=8).contains(&bits), "activation bits must be in 1..=8");
        Self {
            planes: (0..bits).map(|_| BitVec::zeros(len)).collect(),
            ones: vec![0; bits as usize],
            len,
        }
    }

    /// Pack codes into the planes, reusing storage. `codes.len()` must equal
    /// the configured length. Packing is word-at-a-time: each plane word is
    /// assembled in a register and stored once, and the per-plane popcount
    /// is accumulated on the way through.
    pub fn pack(&mut self, codes: &[u8]) {
        assert_eq!(codes.len(), self.len, "ActPlanes::pack length mismatch");
        for (p, (plane, ones)) in self.planes.iter_mut().zip(&mut self.ones).enumerate() {
            let mut count = 0u32;
            let words = plane.words_mut();
            for (w, chunk) in codes.chunks(WORD_BITS).enumerate() {
                let mut word = 0u64;
                for (b, &q) in chunk.iter().enumerate() {
                    word |= u64::from((q >> p) & 1) << b;
                }
                words[w] = word;
                count += word.count_ones();
            }
            *ones = count as i32;
        }
    }

    /// Convenience constructor: allocate and pack in one step.
    pub fn from_codes(bits: u32, codes: &[u8]) -> Self {
        let mut s = Self::new(bits, codes.len());
        s.pack(codes);
        s
    }

    /// Number of planes (activation bits).
    #[inline]
    pub fn bits(&self) -> u32 {
        self.planes.len() as u32
    }

    /// Number of codes per plane.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the planes hold no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The underlying planes, least-significant first.
    #[inline]
    pub fn planes(&self) -> &[BitVec] {
        &self.planes
    }

    /// Cached popcount of plane `p` (maintained by [`ActPlanes::pack`] and
    /// by [`crate::PlaneRing::extract_window`]).
    #[inline]
    pub fn plane_ones(&self, p: usize) -> i32 {
        self.ones[p]
    }

    /// Mutable access to the planes and their cached popcounts for bulk
    /// rewrites (the plane-ring window extractor). Callers must leave each
    /// `ones[p]` equal to plane `p`'s popcount and keep trailing bits zero.
    #[inline]
    pub(crate) fn parts_mut(&mut self) -> (&mut [BitVec], &mut [i32]) {
        (&mut self.planes, &mut self.ones)
    }

    /// Dot product of ±1 weights against the packed codes.
    ///
    /// Identical to [`crate::dot::dot_planes`] over [`ActPlanes::planes`], but uses
    /// the popcounts cached at pack time instead of rescanning each plane.
    #[inline]
    pub fn dot(&self, weights: &BitVec) -> i32 {
        self.planes
            .iter()
            .zip(&self.ones)
            .enumerate()
            .map(|(p, (plane, &ones))| (2 * weights.and_popcount(plane) as i32 - ones) << p)
            .sum()
    }

    /// Recover the code at position `i` (for debugging/verification).
    pub fn code(&self, i: usize) -> u8 {
        self.planes
            .iter()
            .enumerate()
            .map(|(p, plane)| u8::from(plane.get(i)) << p)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dot;

    #[test]
    fn pack_unpack_roundtrip() {
        let codes: Vec<u8> = (0..50).map(|i| (i % 4) as u8).collect();
        let planes = ActPlanes::from_codes(2, &codes);
        for (i, &q) in codes.iter().enumerate() {
            assert_eq!(planes.code(i), q);
        }
    }

    #[test]
    fn dot_equals_reference() {
        let codes: Vec<u8> = (0..129).map(|i| ((i * 3) % 4) as u8).collect();
        let planes = ActPlanes::from_codes(2, &codes);
        let wbools: Vec<bool> = (0..129).map(|i| i % 5 < 2).collect();
        let w = BitVec::from_bools(&wbools);
        assert_eq!(planes.dot(&w), dot::dot_codes(&w, &codes));
        assert_eq!(planes.dot(&w), dot::dot_planes(&w, planes.planes()));
    }

    #[test]
    fn cached_popcounts_survive_repacking() {
        // `dot` relies on the per-plane popcounts being refreshed by `pack`.
        let mut planes = ActPlanes::new(2, 70);
        let w = BitVec::from_bools(&(0..70).map(|i| i % 3 == 0).collect::<Vec<_>>());
        for round in 0..3u8 {
            let codes: Vec<u8> = (0..70)
                .map(|i| ((i as u8).wrapping_mul(round + 1)) % 4)
                .collect();
            planes.pack(&codes);
            assert_eq!(planes.dot(&w), dot::dot_planes(&w, planes.planes()));
            assert_eq!(planes.dot(&w), dot::dot_codes(&w, &codes));
        }
    }

    #[test]
    fn repack_overwrites_previous_contents() {
        let mut planes = ActPlanes::new(2, 8);
        planes.pack(&[3, 3, 3, 3, 3, 3, 3, 3]);
        planes.pack(&[0, 1, 2, 3, 0, 1, 2, 3]);
        assert_eq!(planes.code(0), 0);
        assert_eq!(planes.code(3), 3);
        assert_eq!(planes.code(6), 2);
    }

    #[test]
    fn binary_planes_have_one_plane() {
        let planes = ActPlanes::from_codes(1, &[0, 1, 1, 0]);
        assert_eq!(planes.bits(), 1);
        assert_eq!(planes.code(1), 1);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn pack_wrong_length_panics() {
        let mut planes = ActPlanes::new(2, 4);
        planes.pack(&[0, 1, 2]);
    }
}
