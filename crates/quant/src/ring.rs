//! Pack-on-arrival plane rings for the streaming convolution window.
//!
//! The scalar conv datapath keeps the depth-first window buffer as a
//! `Vec<i32>` ring and re-packs all `K·K·I` codes into bit planes at every
//! latched output position. [`PlaneRing`] moves the packing to the *input*
//! side: each arriving n-bit activation code costs O(n) bit writes into n
//! packed ring planes, and a window latch becomes `K` contiguous bit-span
//! copies per plane ([`qnn_tensor::BitVec::copy_bitrange_from`]) instead of
//! `K·K·I` scalar loads plus a repack — the word-parallel structure of the
//! paper's Fig. 3 datapath (and of FINN-R's bit-serial matrix multiply).
//!
//! Codes are never stored unpacked, so the ring also models the hardware
//! more faithfully: the Fig. 4a shift-register buffer holds exactly the
//! quantized wire bits.

use crate::planes::ActPlanes;
use qnn_tensor::BitVec;

/// A ring of `n` packed bit planes over `capacity` slots — the depth-first
/// window buffer of one convolution kernel, stored quantized.
///
/// Slot `s` holds the activation code whose stream index `idx` satisfies
/// `idx % capacity == s`, exactly mirroring the scalar `Vec<i32>` ring it
/// replaces; the two layouts are interchangeable element-for-element, which
/// is what the scalar-vs-packed differential suite checks end to end.
#[derive(Clone, Debug)]
pub struct PlaneRing {
    planes: Vec<BitVec>,
    capacity: usize,
}

impl PlaneRing {
    /// A ring of `bits` planes over `capacity` slots, all zero.
    pub fn new(bits: u32, capacity: usize) -> Self {
        assert!((1..=8).contains(&bits), "activation bits must be in 1..=8");
        assert!(capacity > 0, "plane ring needs at least one slot");
        Self {
            planes: (0..bits).map(|_| BitVec::zeros(capacity)).collect(),
            capacity,
        }
    }

    /// Number of planes (activation bits).
    #[inline]
    pub fn bits(&self) -> u32 {
        self.planes.len() as u32
    }

    /// Slots per plane.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Store `code` in slot `slot`, overwriting whatever was there — the
    /// O(bits) per-input-tick write. Bits of `code` above [`Self::bits`]
    /// are ignored, matching the scalar datapath's plane packer.
    #[inline]
    pub fn set(&mut self, slot: usize, code: u8) {
        debug_assert!(slot < self.capacity);
        for (p, plane) in self.planes.iter_mut().enumerate() {
            plane.set(slot, (code >> p) & 1 == 1);
        }
    }

    /// Read back the code at `slot` (tests and debugging).
    pub fn code(&self, slot: usize) -> u8 {
        self.planes
            .iter()
            .enumerate()
            .map(|(p, plane)| u8::from(plane.get(slot)) << p)
            .sum()
    }

    /// Latch a convolution window into `out`: `rows` spans of `row_len`
    /// slots, row `r` starting at ring slot `(start + r·row_stride) %
    /// capacity` (wrap-aware), written contiguously into `out`'s planes
    /// with per-plane popcounts refreshed.
    ///
    /// For a `K×K×I` window over a `W`-wide input this is `start =
    /// (ty·W + tx)·I`, `rows = K`, `row_len = K·I`, `row_stride = W·I` —
    /// `K` span copies per plane in place of the scalar datapath's
    /// `K·K·I`-element gather-and-repack.
    ///
    /// # Panics
    /// Panics if `out`'s plane count differs from the ring's, if
    /// `rows·row_len` differs from `out.len()`, or if `row_len` exceeds
    /// the ring capacity.
    pub fn extract_window(
        &self,
        start: usize,
        rows: usize,
        row_len: usize,
        row_stride: usize,
        out: &mut ActPlanes,
    ) {
        assert_eq!(out.bits(), self.bits(), "plane count mismatch");
        assert_eq!(rows * row_len, out.len(), "window size mismatch");
        assert!(row_len <= self.capacity, "window row exceeds ring capacity");
        let (planes, ones) = out.parts_mut();
        for r in 0..rows {
            let src = (start + r * row_stride) % self.capacity;
            let dst = r * row_len;
            let first = row_len.min(self.capacity - src);
            for (ring_plane, window_plane) in self.planes.iter().zip(planes.iter_mut()) {
                window_plane.copy_bitrange_from(dst, ring_plane, src, first);
                if first < row_len {
                    // The span wraps: finish from the ring's slot 0.
                    window_plane.copy_bitrange_from(dst + first, ring_plane, 0, row_len - first);
                }
            }
        }
        for (plane, ones) in planes.iter().zip(ones.iter_mut()) {
            *ones = plane.count_ones() as i32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scalar mirror of the ring: write codes by stream index, gather a
    /// window the way the scalar conv datapath does.
    fn scalar_window(
        codes_by_index: &[u8],
        start: usize,
        rows: usize,
        row_len: usize,
        row_stride: usize,
    ) -> Vec<u8> {
        let mut out = Vec::with_capacity(rows * row_len);
        for r in 0..rows {
            for j in 0..row_len {
                out.push(codes_by_index[start + r * row_stride + j]);
            }
        }
        out
    }

    #[test]
    fn set_then_code_roundtrips_and_masks_high_bits() {
        let mut ring = PlaneRing::new(2, 10);
        ring.set(3, 2);
        ring.set(9, 7); // bit 2 dropped: only planes 0 and 1 exist
        assert_eq!(ring.code(3), 2);
        assert_eq!(ring.code(9), 3);
        ring.set(3, 0); // overwrite clears both planes
        assert_eq!(ring.code(3), 0);
    }

    #[test]
    fn extract_window_matches_scalar_gather_without_wrap() {
        let cap = 64;
        let codes: Vec<u8> = (0..cap).map(|i| ((i * 5 + 1) % 4) as u8).collect();
        let mut ring = PlaneRing::new(2, cap);
        for (s, &q) in codes.iter().enumerate() {
            ring.set(s, q);
        }
        // 3 rows of 6 slots, stride 12, starting at slot 2.
        let mut window = ActPlanes::new(2, 18);
        ring.extract_window(2, 3, 6, 12, &mut window);
        let expect = scalar_window(&codes, 2, 3, 6, 12);
        for (i, &q) in expect.iter().enumerate() {
            assert_eq!(window.code(i), q, "element {i}");
        }
        for p in 0..2 {
            assert_eq!(
                window.plane_ones(p),
                expect.iter().filter(|&&q| (q >> p) & 1 == 1).count() as i32
            );
        }
    }

    #[test]
    fn extract_window_wraps_rows_across_the_ring_seam() {
        // Stream longer than the ring: later indices overwrite slot idx%cap,
        // and window rows that straddle the seam come out in stream order.
        let cap = 20;
        let total = 70;
        let codes: Vec<u8> = (0..total).map(|i| ((i * 3 + 2) % 4) as u8).collect();
        let mut ring = PlaneRing::new(2, cap);
        for (idx, &q) in codes.iter().enumerate() {
            ring.set(idx % cap, q);
        }
        // Window rows over stream indices 56..63 and 63..70: both live (no
        // later write overwrote their slots) and the first crosses slot 0.
        let (start, rows, row_len, row_stride) = (56usize, 2usize, 7usize, 7usize);
        let mut window = ActPlanes::new(2, rows * row_len);
        ring.extract_window(start % cap, rows, row_len, row_stride, &mut window);
        let expect = scalar_window(&codes, start, rows, row_len, row_stride);
        for (i, &q) in expect.iter().enumerate() {
            assert_eq!(window.code(i), q, "element {i}");
        }
    }

    #[test]
    #[should_panic(expected = "window size mismatch")]
    fn extract_window_rejects_size_mismatch() {
        let ring = PlaneRing::new(2, 16);
        let mut window = ActPlanes::new(2, 9);
        ring.extract_window(0, 2, 4, 8, &mut window);
    }

    #[test]
    #[should_panic(expected = "plane count mismatch")]
    fn extract_window_rejects_plane_mismatch() {
        let ring = PlaneRing::new(2, 16);
        let mut window = ActPlanes::new(1, 8);
        ring.extract_window(0, 2, 4, 8, &mut window);
    }
}
